// Minimal recursive-descent JSON reader (objects, arrays, strings,
// numbers, true/false/null) — the grammar CI's `python3 -m json.tool`
// check accepts, kept dependency-free on purpose. Shared between
// perf_diff (ledger validation/comparison) and the test suite (strict
// parsing of the exported Chrome trace).
//
// Number lexemes are retained verbatim in `text` so 64-bit fingerprints
// compare exactly instead of through a lossy double.
#pragma once

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace jsonmini {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;  // string value, or the raw lexeme for numbers
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses the whole input as one JSON value; throws std::runtime_error
  /// (with a byte offset) on any syntax error or trailing garbage.
  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error(what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', found '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(const char* w) {
    const std::size_t n = std::string(w).size();
    if (text_.compare(pos_, n, w) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    JsonValue v;
    const char c = peek();
    if (c == '{') return object_value();
    if (c == '[') return array_value();
    if (c == '"') {
      v.type = JsonValue::Type::kString;
      v.text = string_value();
      return v;
    }
    if (consume_word("true")) {
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_word("false")) {
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (consume_word("null")) return v;
    return number_value();
  }

  JsonValue object_value() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      std::string key = string_value();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return v;
    }
  }

  JsonValue array_value() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return v;
    }
  }

  std::string string_value() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // Neither the ledger nor the trace exporter emits \u escapes;
            // accept and keep them verbatim.
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            out += "\\u" + text_.substr(pos_, 4);
            pos_ += 4;
            break;
          default: fail("bad escape character");
        }
        continue;
      }
      out += c;
    }
  }

  JsonValue number_value() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a JSON value");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.text = text_.substr(start, pos_ - start);
    char* end = nullptr;
    v.number = std::strtod(v.text.c_str(), &end);
    if (end != v.text.c_str() + v.text.size()) fail("malformed number");
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace jsonmini
