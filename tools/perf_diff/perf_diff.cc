// perf_diff: validate and compare BENCH_attribution.json perf ledgers.
//
//   perf_diff --check LEDGER
//       Parse the ledger and validate every record's structure (required
//       fields, share values in [0, 1]). Exit 0 on success, 2 on error.
//
//   perf_diff LEDGER
//       For each case label, compare the last record against the previous
//       one in the same ledger (a local before/after history).
//
//   perf_diff OLD_LEDGER NEW_LEDGER
//       For each case label in NEW, compare its last record against the
//       last record of the same case in OLD.
//
//   Options: --throughput-band PCT (default 5), --p99-band PCT (default
//   10). A comparison flags a regression when throughput drops by more
//   than the throughput band or p99 rises by more than the p99 band.
//   Records whose config or trace fingerprints differ are reported as
//   incomparable and skipped (changing the config is not a regression).
//   Exit 1 when any regression was flagged, 0 otherwise.
//
// JSON parsing lives in json_mini.h (shared with the test suite's
// Chrome-trace validation); number lexemes are retained verbatim there
// so 64-bit fingerprints compare exactly instead of through a lossy
// double.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "json_mini.h"

namespace {

using jsonmini::JsonParser;
using jsonmini::JsonValue;

// --- Ledger access ---------------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

const char* const kRequiredNumbers[] = {
    "config_fingerprint", "trace_fingerprint", "requests",
    "throughput_rps",     "p50_ns",            "p99_ns",
    "p999_ns",            "mean_ns"};

/// Throws std::runtime_error when `rec` is not a well-formed ledger
/// record.
void validate_record(const JsonValue& rec, std::size_t index) {
  const std::string where = "record " + std::to_string(index);
  if (rec.type != JsonValue::Type::kObject) {
    throw std::runtime_error(where + " is not an object");
  }
  const JsonValue* label = rec.find("case");
  if (label == nullptr || label->type != JsonValue::Type::kString ||
      label->text.empty()) {
    throw std::runtime_error(where + " has no \"case\" label");
  }
  for (const char* field : kRequiredNumbers) {
    const JsonValue* v = rec.find(field);
    if (v == nullptr || v->type != JsonValue::Type::kNumber) {
      throw std::runtime_error(where + " (" + label->text +
                               ") lacks numeric field \"" + field + "\"");
    }
  }
  const JsonValue* shares = rec.find("component_share");
  if (shares == nullptr || shares->type != JsonValue::Type::kObject ||
      shares->object.empty()) {
    throw std::runtime_error(where + " (" + label->text +
                             ") lacks the component_share object");
  }
  double total = 0.0;
  for (const auto& [name, share] : shares->object) {
    if (share.type != JsonValue::Type::kNumber || share.number < 0.0 ||
        share.number > 1.0) {
      throw std::runtime_error(where + " (" + label->text +
                               ") share \"" + name + "\" is not in [0, 1]");
    }
    total += share.number;
  }
  if (total > 1.0 + 1e-6) {
    throw std::runtime_error(where + " (" + label->text +
                             ") shares sum above 1");
  }
}

/// Parses a ledger file into (case label -> records in file order).
/// Validates every record on the way.
std::map<std::string, std::vector<const JsonValue*>> load_ledger(
    const JsonValue& root, const std::string& path) {
  if (root.type != JsonValue::Type::kObject) {
    throw std::runtime_error(path + ": top level is not an object");
  }
  const JsonValue* records = root.find("records");
  if (records == nullptr || records->type != JsonValue::Type::kArray) {
    throw std::runtime_error(path + ": no \"records\" array");
  }
  std::map<std::string, std::vector<const JsonValue*>> by_case;
  for (std::size_t i = 0; i < records->array.size(); ++i) {
    const JsonValue& rec = records->array[i];
    validate_record(rec, i);
    by_case[rec.find("case")->text].push_back(&rec);
  }
  return by_case;
}

// --- Comparison ------------------------------------------------------------

struct Bands {
  double throughput_pct = 5.0;
  double p99_pct = 10.0;
};

double number_of(const JsonValue& rec, const char* field) {
  return rec.find(field)->number;
}

/// Compares one case's old/new records; returns true when a regression
/// was flagged. Deterministic fixed-point output.
bool compare_case(const std::string& label, const JsonValue& before,
                  const JsonValue& after, const Bands& bands) {
  if (before.find("config_fingerprint")->text !=
          after.find("config_fingerprint")->text ||
      before.find("trace_fingerprint")->text !=
          after.find("trace_fingerprint")->text) {
    std::printf("SKIP  %-24s fingerprints differ (config changed)\n",
                label.c_str());
    return false;
  }
  const double tput_before = number_of(before, "throughput_rps");
  const double tput_after = number_of(after, "throughput_rps");
  const double p99_before = number_of(before, "p99_ns");
  const double p99_after = number_of(after, "p99_ns");
  const double tput_delta_pct =
      tput_before == 0.0
          ? 0.0
          : (tput_after - tput_before) / tput_before * 100.0;
  const double p99_delta_pct =
      p99_before == 0.0 ? 0.0
                        : (p99_after - p99_before) / p99_before * 100.0;
  const bool tput_regressed = tput_delta_pct < -bands.throughput_pct;
  const bool p99_regressed = p99_delta_pct > bands.p99_pct;
  std::printf("%s  %-24s throughput %+.2f%% (band %.0f%%), p99 %+.2f%% "
              "(band %.0f%%)\n",
              tput_regressed || p99_regressed ? "FAIL" : "OK  ",
              label.c_str(), tput_delta_pct, bands.throughput_pct,
              p99_delta_pct, bands.p99_pct);
  return tput_regressed || p99_regressed;
}

int usage() {
  std::cerr
      << "usage: perf_diff --check LEDGER\n"
         "       perf_diff [--throughput-band PCT] [--p99-band PCT] LEDGER\n"
         "       perf_diff [--throughput-band PCT] [--p99-band PCT] OLD NEW\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) try {
  bool check_only = false;
  Bands bands;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check_only = true;
    } else if (arg == "--throughput-band" && i + 1 < argc) {
      bands.throughput_pct = std::strtod(argv[++i], nullptr);
    } else if (arg == "--p99-band" && i + 1 < argc) {
      bands.p99_pct = std::strtod(argv[++i], nullptr);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty() || paths.size() > 2 || (check_only && paths.size() != 1)) {
    return usage();
  }

  const std::string first_text = read_file(paths[0]);
  const JsonValue first_root = JsonParser(first_text).parse();
  const auto first = load_ledger(first_root, paths[0]);

  if (check_only) {
    std::size_t records = 0;
    for (const auto& [label, recs] : first) records += recs.size();
    std::printf("OK: %zu records across %zu cases in %s\n", records,
                first.size(), paths[0].c_str());
    return 0;
  }

  bool regressed = false;
  std::size_t compared = 0;
  if (paths.size() == 1) {
    // Within one ledger: last record vs the previous one, per case.
    for (const auto& [label, recs] : first) {
      if (recs.size() < 2) continue;
      regressed |= compare_case(label, *recs[recs.size() - 2], *recs.back(),
                                bands);
      ++compared;
    }
  } else {
    const std::string second_text = read_file(paths[1]);
    const JsonValue second_root = JsonParser(second_text).parse();
    const auto second = load_ledger(second_root, paths[1]);
    for (const auto& [label, recs] : second) {
      const auto it = first.find(label);
      if (it == first.end()) {
        std::printf("NEW   %-24s no baseline record\n", label.c_str());
        continue;
      }
      regressed |= compare_case(label, *it->second.back(), *recs.back(),
                                bands);
      ++compared;
    }
  }
  if (compared == 0) {
    std::printf("nothing to compare (need two records per case)\n");
  }
  return regressed ? 1 : 0;
} catch (const std::exception& e) {
  std::cerr << "perf_diff: " << e.what() << "\n";
  return 2;
}
