#!/usr/bin/env sh
# One-command local gate mirroring CI: determinism lint -> clang-tidy ->
# build -> ctest. Stops at the first failure. clang-tidy is skipped with
# a notice when not installed (the custom lint and the test suite still
# run); CI always runs it.
#
# Usage: tools/check.sh [build-dir]      (default: build)
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-build}
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

cd "$repo"

echo "== configure ($build) =="
cmake -B "$build" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON

echo "== reqblock-lint (determinism gate, empty baseline) =="
cmake --build "$build" -j "$jobs" --target reqblock-lint
"$build"/tools/reqblock-lint/reqblock-lint src bench examples

echo "== clang-tidy =="
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "$build" -quiet "src/.*\.cc$"
elif command -v clang-tidy >/dev/null 2>&1; then
  # No run-clang-tidy wrapper: drive clang-tidy directly over src/.
  find src -name '*.cc' -exec clang-tidy -p "$build" -quiet {} +
else
  echo "clang-tidy not installed; skipping (CI runs it)"
fi

echo "== build =="
cmake --build "$build" -j "$jobs"

echo "== ctest =="
ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo "check.sh: all gates passed"
