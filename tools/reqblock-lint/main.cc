// reqblock-lint CLI.
//
//   reqblock-lint [options] <path>...
//
//   --baseline FILE        suppress findings recorded in FILE (multiset
//                          semantics; CI gates on an *empty* baseline)
//   --write-baseline FILE  freeze the current findings into FILE
//   --disable RULES        comma-separated rule ids to switch off
//   --no-suppressions      ignore REQB_LINT_ALLOW comments
//   --fix-suggestions      append a per-rule remediation summary
//   --list-rules           print the rule catalog and exit
//
// Exit status: 0 clean, 1 findings, 2 usage or I/O error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"
#include "util/atomic_file.h"

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: reqblock-lint [--baseline FILE] [--write-baseline FILE]\n"
        "                     [--disable RULE[,RULE...]] [--no-suppressions]\n"
        "                     [--fix-suggestions] [--list-rules] <path>...\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reqblock::lint;
  Options options;
  std::vector<std::string> paths;
  std::string baseline_path;
  std::string write_baseline_path;
  bool fix_suggestions = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "reqblock-lint: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--list-rules") {
      for (const RuleInfo& r : rule_catalog()) {
        std::cout << r.id << "\n  " << r.summary << "\n  fix: "
                  << r.fix_suggestion << "\n";
      }
      return 0;
    }
    if (arg == "--baseline") {
      const char* v = value("--baseline");
      if (v == nullptr) return 2;
      baseline_path = v;
      continue;
    }
    if (arg == "--write-baseline") {
      const char* v = value("--write-baseline");
      if (v == nullptr) return 2;
      write_baseline_path = v;
      continue;
    }
    if (arg == "--disable") {
      const char* v = value("--disable");
      if (v == nullptr) return 2;
      std::istringstream rules(v);
      std::string id;
      while (std::getline(rules, id, ',')) {
        if (id.empty()) continue;
        if (!is_known_rule(id)) {
          std::cerr << "reqblock-lint: unknown rule '" << id
                    << "' (see --list-rules)\n";
          return 2;
        }
        options.disabled.insert(id);
      }
      continue;
    }
    if (arg == "--no-suppressions") {
      options.honor_suppressions = false;
      continue;
    }
    if (arg == "--fix-suggestions") {
      fix_suggestions = true;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "reqblock-lint: unknown option " << arg << "\n";
      return usage(std::cerr, 2);
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::cerr << "reqblock-lint: no paths given\n";
    return usage(std::cerr, 2);
  }

  std::string error;
  Report report = lint_paths(paths, options, &error);
  if (!error.empty()) {
    std::cerr << "reqblock-lint: " << error << "\n";
    return 2;
  }

  if (!write_baseline_path.empty()) {
    try {
      reqblock::write_file_atomic(write_baseline_path,
                                  render_baseline(report.findings));
    } catch (const std::exception& e) {
      std::cerr << "reqblock-lint: " << e.what() << "\n";
      return 2;
    }
    std::cout << "reqblock-lint: baseline with " << report.findings.size()
              << " finding(s) written to " << write_baseline_path << "\n";
    return 0;
  }

  int baselined = 0;
  std::vector<Finding> fresh = report.findings;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::cerr << "reqblock-lint: cannot read baseline " << baseline_path
                << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    fresh = apply_baseline(report.findings, buf.str(), &baselined);
  }

  for (const Finding& f : fresh) {
    std::cout << f.file << ":" << f.line << ": " << f.rule << ": "
              << f.message << "\n";
  }

  if (fix_suggestions && !fresh.empty()) {
    std::cout << "\nFix suggestions:\n";
    for (const RuleInfo& r : rule_catalog()) {
      bool hit = false;
      for (const Finding& f : fresh) {
        if (f.rule == r.id) {
          hit = true;
          break;
        }
      }
      if (hit) std::cout << "  " << r.id << ": " << r.fix_suggestion << "\n";
    }
  }

  std::cout << "reqblock-lint: " << fresh.size() << " finding(s) ("
            << report.suppressed << " suppressed, " << baselined
            << " baselined) across " << report.files_scanned << " file(s)\n";
  return fresh.empty() ? 0 : 1;
}
