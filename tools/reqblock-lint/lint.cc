#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

namespace reqblock::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule catalog
// ---------------------------------------------------------------------------

constexpr const char* kNoWallclock = "no-wallclock";
constexpr const char* kNoAmbientRng = "no-ambient-rng";
constexpr const char* kNoRawOfstream = "no-raw-ofstream";
constexpr const char* kNoUnorderedSer = "no-unordered-serialization";
constexpr const char* kNoRawFloatFormat = "no-raw-float-format";
constexpr const char* kCheckMacroHygiene = "check-macro-hygiene";

const std::vector<RuleInfo> kRules = {
    {kNoWallclock,
     "wall-clock time sources are forbidden in simulation code",
     "derive every timestamp from SimTime ticks; profiler wall-clock "
     "sites carry // REQB_LINT_ALLOW(no-wallclock): <why>"},
    {kNoAmbientRng,
     "ambient RNG (rand(), <random> engines, random_device) is forbidden",
     "draw from the per-run seeded xoshiro256** stream in util/rng.h so "
     "equal seeds replay byte-identically"},
    {kNoRawOfstream,
     "raw file-output primitives bypass crash-consistent writes",
     "route artifacts through write_file_atomic (util/atomic_file.h) or "
     "the snapshot SnapshotWriter"},
    {kNoUnorderedSer,
     "iterating an unordered container inside an emission function leaks "
     "hash order into the output bytes",
     "copy the keys into a std::vector and std::sort before writing, or "
     "keep a deterministically ordered sibling structure"},
    {kNoRawFloatFormat,
     "raw float formatting is locale- and precision-dependent",
     "format every floating-point value with format_double(value, "
     "decimals) from util/strings.h"},
    {kCheckMacroHygiene,
     "side effects inside REQB_DCHECK/REQB_AUDIT disappear when the "
     "macro is compiled out",
     "hoist the mutation out of the macro argument; check-macro "
     "arguments must be pure expressions"},
};

// ---------------------------------------------------------------------------
// FNV-1a 64 (local copy: the tool stays dependency-free on purpose)
// ---------------------------------------------------------------------------

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class Tok {
  kIdent,
  kNumber,      // integral literal
  kFloat,       // floating literal (has '.', exponent, or f suffix)
  kString,      // text is the literal's contents, quotes stripped
  kChar,
  kPunct,
  kInclude,     // text is the include path, brackets/quotes stripped
};

struct Token {
  Tok kind;
  std::string text;
  int line;
};

struct Comment {
  int start_line;
  int end_line;
  bool trails_code;  // something other than whitespace precedes it
  std::string text;
};

struct Lexed {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::set<int> code_lines;          // lines owning at least one token
  std::vector<std::string> raw_lines;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators, longest first so max-munch works.
const char* kPuncts[] = {"<<=", ">>=", "...", "->*", "::", "->", "++", "--",
                         "<<",  ">>",  "<=",  ">=",  "==", "!=", "&&", "||",
                         "+=",  "-=",  "*=",  "/=",  "%=", "&=", "|=", "^="};

Lexed lex(const std::string& src) {
  Lexed out;
  {
    std::istringstream ls(src);
    std::string l;
    while (std::getline(ls, l)) out.raw_lines.push_back(l);
  }
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  bool line_has_code = false;

  auto push = [&](Tok kind, std::string text, int at_line) {
    out.tokens.push_back(Token{kind, std::move(text), at_line});
    out.code_lines.insert(at_line);
    line_has_code = true;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      line_has_code = false;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && (src[i + 1] == '/' || src[i + 1] == '*')) {
      const int start = line;
      const bool trails = line_has_code;
      std::string text;
      if (src[i + 1] == '/') {
        i += 2;
        while (i < n && src[i] != '\n') text.push_back(src[i++]);
      } else {
        i += 2;
        while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
          if (src[i] == '\n') ++line;
          text.push_back(src[i++]);
        }
        i = (i + 1 < n) ? i + 2 : n;
      }
      out.comments.push_back(Comment{start, line, trails, std::move(text)});
      continue;
    }
    // Preprocessor directive: special-case #include, swallow the rest of
    // the logical line (honoring backslash continuations) so macro bodies
    // never reach the rules.
    if (c == '#' && !line_has_code) {
      std::size_t j = i + 1;
      while (j < n && (src[j] == ' ' || src[j] == '\t')) ++j;
      std::string word;
      while (j < n && ident_char(src[j])) word.push_back(src[j++]);
      if (word == "include") {
        while (j < n && (src[j] == ' ' || src[j] == '\t')) ++j;
        if (j < n && (src[j] == '<' || src[j] == '"')) {
          const char close = src[j] == '<' ? '>' : '"';
          std::string path;
          ++j;
          while (j < n && src[j] != close && src[j] != '\n')
            path.push_back(src[j++]);
          push(Tok::kInclude, path, line);
        }
      }
      while (j < n && src[j] != '\n') {
        if (src[j] == '\\' && j + 1 < n && src[j + 1] == '\n') {
          ++line;
          j += 2;
          continue;
        }
        ++j;
      }
      i = j;
      continue;
    }
    // String literals (incl. raw strings).
    if (c == '"' ||
        (c == 'R' && i + 1 < n && src[i + 1] == '"')) {
      const int at = line;
      std::string text;
      if (c == 'R') {
        std::size_t j = i + 2;
        std::string delim;
        while (j < n && src[j] != '(') delim.push_back(src[j++]);
        const std::string closer = ")" + delim + "\"";
        ++j;  // past '('
        const std::size_t end = src.find(closer, j);
        const std::size_t stop = end == std::string::npos ? n : end;
        for (std::size_t k = j; k < stop; ++k) {
          if (src[k] == '\n') ++line;
          text.push_back(src[k]);
        }
        i = end == std::string::npos ? n : end + closer.size();
      } else {
        std::size_t j = i + 1;
        while (j < n && src[j] != '"') {
          if (src[j] == '\\' && j + 1 < n) {
            text.push_back(src[j]);
            text.push_back(src[j + 1]);
            j += 2;
            continue;
          }
          if (src[j] == '\n') ++line;  // unterminated; be forgiving
          text.push_back(src[j++]);
        }
        i = j < n ? j + 1 : n;
      }
      push(Tok::kString, std::move(text), at);
      continue;
    }
    if (c == '\'') {
      std::size_t j = i + 1;
      std::string text;
      while (j < n && src[j] != '\'') {
        if (src[j] == '\\' && j + 1 < n) {
          text.push_back(src[j]);
          text.push_back(src[j + 1]);
          j += 2;
          continue;
        }
        text.push_back(src[j++]);
      }
      push(Tok::kChar, std::move(text), line);
      i = j < n ? j + 1 : n;
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::string text;
      bool is_float = c == '.';
      const bool hex = c == '0' && i + 1 < n &&
                       (src[i + 1] == 'x' || src[i + 1] == 'X');
      std::size_t j = i;
      while (j < n) {
        const char d = src[j];
        if (ident_char(d) || d == '.' || d == '\'') {
          if (d == '.') is_float = true;
          if (!hex && (d == 'e' || d == 'E')) is_float = true;
          if (hex && (d == 'p' || d == 'P')) is_float = true;
          if (!hex && (d == 'f' || d == 'F') && j > i) is_float = true;
          text.push_back(d);
          ++j;
          // Exponent signs: 1e-3, 0x1p+2.
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') && j < n &&
              (src[j] == '+' || src[j] == '-') && !hex) {
            text.push_back(src[j++]);
          } else if (hex && (d == 'p' || d == 'P') && j < n &&
                     (src[j] == '+' || src[j] == '-')) {
            text.push_back(src[j++]);
          }
          continue;
        }
        break;
      }
      push(is_float ? Tok::kFloat : Tok::kNumber, std::move(text), line);
      i = j;
      continue;
    }
    // Identifiers.
    if (ident_start(c)) {
      std::string text;
      std::size_t j = i;
      while (j < n && ident_char(src[j])) text.push_back(src[j++]);
      push(Tok::kIdent, std::move(text), line);
      i = j;
      continue;
    }
    // Punctuators, longest first.
    bool matched = false;
    for (const char* p : kPuncts) {
      const std::size_t len = std::char_traits<char>::length(p);
      if (src.compare(i, len, p) == 0) {
        push(Tok::kPunct, p, line);
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    push(Tok::kPunct, std::string(1, c), line);
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions: REQB_LINT_ALLOW(rule-id[, rule-id]) in a comment covers the
// comment's own lines when it trails code, otherwise the whole statement
// that follows (through the next ';' or '{' so multi-line expressions
// need only one comment).
// ---------------------------------------------------------------------------

std::map<std::string, std::set<int>> suppressed_lines(const Lexed& lx) {
  std::map<std::string, std::set<int>> out;
  for (const Comment& c : lx.comments) {
    std::size_t pos = 0;
    while ((pos = c.text.find("REQB_LINT_ALLOW(", pos)) !=
           std::string::npos) {
      pos += std::char_traits<char>::length("REQB_LINT_ALLOW(");
      const std::size_t close = c.text.find(')', pos);
      if (close == std::string::npos) break;
      std::istringstream rules(c.text.substr(pos, close - pos));
      std::string id;
      while (std::getline(rules, id, ',')) {
        const auto b = id.find_first_not_of(" \t");
        const auto e = id.find_last_not_of(" \t");
        if (b == std::string::npos) continue;
        id = id.substr(b, e - b + 1);
        std::set<int>& lines = out[id];
        if (c.trails_code) {
          for (int l = c.start_line; l <= c.end_line; ++l) lines.insert(l);
        } else {
          const auto it = lx.code_lines.upper_bound(c.end_line);
          if (it == lx.code_lines.end()) continue;
          const int first = *it;
          int last = first;
          for (const Token& t : lx.tokens) {
            if (t.line < first) continue;
            last = t.line;
            if (t.kind == Tok::kPunct &&
                (t.text == ";" || t.text == "{")) {
              break;
            }
          }
          for (int l = first; l <= last; ++l) lines.insert(l);
        }
      }
      pos = close;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Scope / function-context pass
// ---------------------------------------------------------------------------

// Substrings that make a function an "emission context": its output is
// part of the byte-identity contract (serialization, reports, CSV/JSON
// artifacts, operator<<).
const char* kEmissionNames[] = {"serialize", "report", "csv",  "export",
                                "summary",   "dump",   "print", "emit",
                                "json",      "write"};

bool is_emission_name(const std::string& fn) {
  std::string lower(fn.size(), '\0');
  std::transform(fn.begin(), fn.end(), lower.begin(), [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  });
  for (const char* s : kEmissionNames) {
    if (lower.find(s) != std::string::npos) return true;
  }
  return false;
}

const std::set<std::string> kControlKeywords = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "alignof", "decltype", "static_assert"};
const std::set<std::string> kPostSigQualifiers = {
    "const", "noexcept", "override", "final", "mutable", "volatile",
    "throw", "try"};

struct TokenCtx {
  int fn_id = -1;           // -1: not inside a function body
  bool emission = false;    // inside an emission-context function
};

struct ScopeInfo {
  int fn_id;
  bool emission;
  bool is_function_root;  // this brace opened the function body itself
};

// Walks back from tokens[open_brace - 1] and decides whether this '{'
// opens a function body; returns the function name or nullopt.
// Handles trailing return types, cv/noexcept qualifiers, constructor
// initializer lists and lambdas (lambdas report "" = inherit).
struct BraceClass {
  enum Kind { kFunction, kLambda, kTypeOrNamespace, kPlainBlock } kind;
  std::string name;  // for kFunction
};

int match_paren_back(const std::vector<Token>& t, int close) {
  int depth = 0;
  for (int j = close; j >= 0; --j) {
    if (t[static_cast<std::size_t>(j)].kind != Tok::kPunct) continue;
    const std::string& x = t[static_cast<std::size_t>(j)].text;
    if (x == ")") ++depth;
    if (x == "(") {
      --depth;
      if (depth == 0) return j;
    }
  }
  return -1;
}

BraceClass classify_brace(const std::vector<Token>& t, int brace) {
  auto tok = [&](int j) -> const Token& {
    return t[static_cast<std::size_t>(j)];
  };
  int j = brace - 1;
  // Skip post-signature qualifiers and trailing return types.
  int guard = 0;
  while (j >= 0 && guard++ < 24) {
    const Token& tk = tok(j);
    if (tk.kind == Tok::kIdent && kPostSigQualifiers.count(tk.text)) {
      --j;
      continue;
    }
    // Trailing return "-> Type": skip type tokens back to "->".
    if (tk.kind == Tok::kIdent || (tk.kind == Tok::kPunct &&
                                   (tk.text == "::" || tk.text == "<" ||
                                    tk.text == ">" || tk.text == "*" ||
                                    tk.text == "&"))) {
      // Only keep skipping if a "->" appears shortly before.
      int k = j;
      int inner = 0;
      bool arrow = false;
      while (k >= 0 && inner++ < 12) {
        if (tok(k).kind == Tok::kPunct && tok(k).text == "->") {
          arrow = true;
          break;
        }
        if (tok(k).kind == Tok::kPunct &&
            (tok(k).text == ")" || tok(k).text == "{" || tok(k).text == ";"))
          break;
        --k;
      }
      if (arrow) {
        j = k - 1;
        continue;
      }
    }
    break;
  }
  if (j < 0) return {BraceClass::kPlainBlock, ""};

  // Constructor initializer lists: repeatedly hop over `name(...)` or
  // `name{...}` members preceded by ',' or ':'.
  int hops = 0;
  while (j >= 0 && hops++ < 64) {
    if (tok(j).kind != Tok::kPunct || tok(j).text != ")") break;
    const int open = match_paren_back(t, j);
    if (open <= 0) return {BraceClass::kPlainBlock, ""};
    int name_end = open - 1;
    if (tok(name_end).kind == Tok::kPunct && tok(name_end).text == "]") {
      return {BraceClass::kLambda, ""};
    }
    // operator<< and friends.
    if (tok(name_end).kind == Tok::kPunct && name_end > 0 &&
        tok(name_end - 1).kind == Tok::kIdent &&
        tok(name_end - 1).text == "operator") {
      return {BraceClass::kFunction, "operator" + tok(name_end).text};
    }
    if (tok(name_end).kind != Tok::kIdent)
      return {BraceClass::kPlainBlock, ""};
    const std::string name = tok(name_end).text;
    if (kControlKeywords.count(name)) return {BraceClass::kPlainBlock, ""};
    // Walk a qualified-name chain (Foo::Bar::name, ~Foo) to its start.
    int name_start = name_end;
    while (name_start >= 2 && tok(name_start - 1).kind == Tok::kPunct &&
           tok(name_start - 1).text == "::" &&
           tok(name_start - 2).kind == Tok::kIdent) {
      name_start -= 2;
    }
    if (name_start >= 1 && tok(name_start - 1).kind == Tok::kPunct &&
        tok(name_start - 1).text == "~") {
      --name_start;
    }
    const int pre = name_start - 1;
    if (pre >= 0 && tok(pre).kind == Tok::kPunct &&
        (tok(pre).text == "," || tok(pre).text == ":")) {
      // Initializer-list member; the real signature is further back.
      // ":" is preceded by the ctor's ")" — continue the loop from there.
      j = pre - 1;
      continue;
    }
    return {BraceClass::kFunction, name};
  }

  // No ')' directly before the brace. Distinguish type/namespace scopes
  // from plain blocks by scanning back to the statement start.
  int k = j;
  int guard2 = 0;
  while (k >= 0 && guard2++ < 64) {
    const Token& tk = tok(k);
    if (tk.kind == Tok::kPunct &&
        (tk.text == ";" || tk.text == "{" || tk.text == "}")) {
      break;
    }
    if (tk.kind == Tok::kIdent &&
        (tk.text == "namespace" || tk.text == "class" ||
         tk.text == "struct" || tk.text == "union" || tk.text == "enum")) {
      return {BraceClass::kTypeOrNamespace, ""};
    }
    --k;
  }
  return {BraceClass::kPlainBlock, ""};
}

struct ContextPass {
  std::vector<TokenCtx> ctx;                 // parallel to tokens
  std::unordered_map<int, bool> fn_has_sort; // fn_id -> contains sort(
  std::unordered_map<int, std::string> fn_name;
};

ContextPass build_context(const std::vector<Token>& t,
                          bool whole_file_emission) {
  ContextPass out;
  out.ctx.resize(t.size());
  std::vector<ScopeInfo> stack;
  int next_fn_id = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const bool in_fn = !stack.empty() && stack.back().fn_id >= 0;
    out.ctx[i].fn_id = in_fn ? stack.back().fn_id : -1;
    out.ctx[i].emission = in_fn && stack.back().emission;
    if (t[i].kind != Tok::kPunct) {
      if (in_fn && t[i].kind == Tok::kIdent &&
          t[i].text.find("sort") != std::string::npos) {
        out.fn_has_sort[stack.back().fn_id] = true;
      }
      continue;
    }
    if (t[i].text == "{") {
      const BraceClass bc = classify_brace(t, static_cast<int>(i));
      ScopeInfo s{};
      switch (bc.kind) {
        case BraceClass::kFunction: {
          s.fn_id = next_fn_id++;
          s.emission = is_emission_name(bc.name) || whole_file_emission;
          s.is_function_root = true;
          out.fn_name[s.fn_id] = bc.name;
          break;
        }
        case BraceClass::kLambda: {
          // Lambda bodies inherit the enclosing context: a lambda defined
          // inside serialize() writes the same bytes serialize() does.
          if (in_fn) {
            s = stack.back();
            s.is_function_root = false;
          } else {
            s.fn_id = next_fn_id++;
            s.emission = whole_file_emission;
            s.is_function_root = true;
            out.fn_name[s.fn_id] = "<lambda>";
          }
          break;
        }
        case BraceClass::kTypeOrNamespace:
          s.fn_id = -1;
          s.emission = false;
          s.is_function_root = false;
          break;
        case BraceClass::kPlainBlock:
          if (in_fn) {
            s = stack.back();
            s.is_function_root = false;
          } else {
            s.fn_id = -1;
            s.emission = false;
            s.is_function_root = false;
          }
          break;
      }
      stack.push_back(s);
      // The brace token itself belongs to the scope it opens.
      out.ctx[i].fn_id = s.fn_id;
      out.ctx[i].emission = s.fn_id >= 0 && s.emission;
    } else if (t[i].text == "}") {
      if (!stack.empty()) stack.pop_back();
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Declaration pre-pass: per-file sets of float-typed names, double-returning
// functions, and unordered_{map,set} variables.
// ---------------------------------------------------------------------------

struct Decls {
  std::unordered_set<std::string> float_vars;
  std::unordered_set<std::string> float_fns;
  std::unordered_set<std::string> unordered_vars;
};

Decls collect_decls(const std::vector<Token>& t) {
  Decls out;
  auto at = [&](std::size_t j) -> const Token* {
    return j < t.size() ? &t[j] : nullptr;
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    const std::string& name = t[i].text;
    if (name == "double" || name == "float") {
      // Skip declarator decorations, then record `double x` / `double f(`.
      std::size_t j = i + 1;
      while (const Token* tk = at(j)) {
        if (tk->kind == Tok::kPunct && (tk->text == "&" || tk->text == "*"))
          ++j;
        else if (tk->kind == Tok::kIdent && tk->text == "const")
          ++j;
        else
          break;
      }
      const Token* id = at(j);
      if (id == nullptr || id->kind != Tok::kIdent) continue;
      const Token* after = at(j + 1);
      if (after != nullptr && after->kind == Tok::kPunct &&
          after->text == "(") {
        out.float_fns.insert(id->text);
      } else {
        out.float_vars.insert(id->text);
      }
    } else if (name == "unordered_map" || name == "unordered_set") {
      const Token* open = at(i + 1);
      if (open == nullptr || open->kind != Tok::kPunct || open->text != "<")
        continue;
      // Skip the balanced template argument list (">>" closes two).
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < t.size(); ++j) {
        if (t[j].kind != Tok::kPunct) continue;
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">") --depth;
        if (t[j].text == ">>") depth -= 2;
        if (depth <= 0) break;
      }
      ++j;
      while (const Token* tk = at(j)) {
        if (tk->kind == Tok::kPunct && (tk->text == "&" || tk->text == "*"))
          ++j;
        else if (tk->kind == Tok::kIdent && tk->text == "const")
          ++j;
        else
          break;
      }
      const Token* id = at(j);
      if (id != nullptr && id->kind == Tok::kIdent) {
        out.unordered_vars.insert(id->text);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule helpers
// ---------------------------------------------------------------------------

bool path_contains(const std::string& path, const char* dir) {
  return path.find(dir) != std::string::npos;
}

bool prev_is_member_access(const std::vector<Token>& t, std::size_t i) {
  if (i == 0) return false;
  const Token& p = t[i - 1];
  return p.kind == Tok::kPunct && (p.text == "." || p.text == "->");
}

// A preceding identifier usually means `SomeType name(` — a declaration,
// not a call — except for statement keywords like `return time(...)`.
bool prev_ident_is_declaration(const std::vector<Token>& t, std::size_t i) {
  if (i == 0 || t[i - 1].kind != Tok::kIdent) return false;
  static const std::set<std::string> kStatementKeywords = {
      "return", "co_return", "co_yield", "case", "throw", "else", "do"};
  return kStatementKeywords.count(t[i - 1].text) == 0;
}

bool next_is(const std::vector<Token>& t, std::size_t i, const char* text) {
  return i + 1 < t.size() && t[i + 1].kind == Tok::kPunct &&
         t[i + 1].text == text;
}

/// True when a printf-style format string contains a floating conversion
/// (%f %F %e %E %g %G %a %A, with optional flags/width/precision).
bool has_float_conversion(const std::string& fmt) {
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] != '%') continue;
    std::size_t j = i + 1;
    if (j < fmt.size() && fmt[j] == '%') {
      i = j;
      continue;
    }
    while (j < fmt.size() &&
           (std::isdigit(static_cast<unsigned char>(fmt[j])) ||
            fmt[j] == '-' || fmt[j] == '+' || fmt[j] == ' ' ||
            fmt[j] == '#' || fmt[j] == '.' || fmt[j] == '*' ||
            fmt[j] == 'l' || fmt[j] == 'h' || fmt[j] == 'L')) {
      ++j;
    }
    if (j < fmt.size() && std::strchr("fFeEgGaA", fmt[j]) != nullptr)
      return true;
  }
  return false;
}

// Forbidden-identifier tables.

const std::set<std::string> kWallclockIdents = {
    "system_clock",  "steady_clock", "high_resolution_clock",
    "gettimeofday",  "clock_gettime", "localtime", "localtime_r",
    "gmtime",        "gmtime_r",      "strftime",  "asctime",
    "ctime",         "mktime",        "timespec_get"};

// Ambient-RNG *types*: flagged wherever they appear.
const std::set<std::string> kRngTypes = {
    "random_device", "mt19937",        "mt19937_64",
    "minstd_rand",   "minstd_rand0",   "default_random_engine",
    "ranlux24",      "ranlux24_base",  "ranlux48",
    "ranlux48_base", "knuth_b",        "random_shuffle"};

// Ambient-RNG *functions*: flagged only in call position to spare
// same-named members.
const std::set<std::string> kRngCalls = {"rand",    "srand",  "rand_r",
                                         "drand48", "lrand48", "mrand48",
                                         "random",  "srandom"};

const std::set<std::string> kRawOutputIdents = {
    "ofstream", "fopen", "freopen", "fwrite", "fputs", "fputc"};

const std::set<std::string> kPrintfFamily = {
    "printf", "fprintf", "sprintf", "snprintf", "vsnprintf", "vfprintf"};

const std::set<std::string> kCheckedMacros = {"REQB_DCHECK", "REQB_AUDIT",
                                              "REQB_AUDIT_MSG"};

const std::set<std::string> kMutatingMembers = {
    "insert",    "erase",      "emplace",   "emplace_back",
    "push_back", "push_front", "pop_back",  "pop_front",
    "clear",     "reset",      "release",   "assign",
    "resize",    "swap"};

const std::set<std::string> kAssignPuncts = {
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};

// ---------------------------------------------------------------------------
// The linter proper
// ---------------------------------------------------------------------------

class FileLinter {
 public:
  FileLinter(const std::string& path, const Lexed& lx, const Options& opt,
             Report* out)
      : path_(path),
        lx_(lx),
        opt_(opt),
        out_(out),
        decls_(collect_decls(lx.tokens)),
        ctx_(build_context(lx.tokens,
                           path_contains(path, "bench/") ||
                               path_contains(path, "examples/"))),
        allow_(suppressed_lines(lx)) {}

  void run() {
    const std::vector<Token>& t = lx_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      rule_wallclock(i);
      rule_ambient_rng(i);
      rule_raw_ofstream(i);
      rule_unordered_serialization(i);
      rule_raw_float_format(i);
      rule_check_macro_hygiene(i);
    }
  }

 private:
  bool enabled(const char* rule) const {
    return opt_.disabled.count(rule) == 0;
  }

  void emit(const char* rule, int line, std::string message) {
    if (opt_.honor_suppressions) {
      const auto it = allow_.find(rule);
      if (it != allow_.end() && it->second.count(line) != 0) {
        ++out_->suppressed;
        return;
      }
    }
    Finding f;
    f.file = path_;
    f.line = line;
    f.rule = rule;
    f.message = std::move(message);
    if (line >= 1 &&
        static_cast<std::size_t>(line) <= lx_.raw_lines.size()) {
      const std::string& raw =
          lx_.raw_lines[static_cast<std::size_t>(line - 1)];
      const auto b = raw.find_first_not_of(" \t");
      f.line_text = b == std::string::npos ? "" : raw.substr(b);
    }
    out_->findings.push_back(std::move(f));
  }

  // --- rule 1 -------------------------------------------------------------
  void rule_wallclock(std::size_t i) {
    if (!enabled(kNoWallclock)) return;
    const std::vector<Token>& t = lx_.tokens;
    if (t[i].kind != Tok::kIdent) return;
    const std::string& name = t[i].text;
    if (kWallclockIdents.count(name) != 0) {
      emit(kNoWallclock, t[i].line,
           "'" + name +
               "' is a wall-clock source; simulation output must be a pure "
               "function of config + trace (use SimTime, or suppress for "
               "profiler-only timing)");
      return;
    }
    if ((name == "time" || name == "clock") && next_is(t, i, "(") &&
        !prev_is_member_access(t, i)) {
      // `std::time(...)` / `::time(...)` / bare call; a preceding
      // identifier means this is a declaration (`SimTime time(...)`).
      const bool declared = prev_ident_is_declaration(t, i);
      const bool std_qualified =
          i >= 2 && t[i - 1].kind == Tok::kPunct && t[i - 1].text == "::" &&
          t[i - 2].kind == Tok::kIdent && t[i - 2].text == "std";
      const bool other_qualified = i > 0 && t[i - 1].kind == Tok::kPunct &&
                                   t[i - 1].text == "::" && !std_qualified;
      if (std_qualified || (!other_qualified && !declared)) {
        emit(kNoWallclock, t[i].line,
             "'" + name + "()' reads the wall clock; derive timestamps "
             "from SimTime instead");
      }
    }
  }

  // --- rule 2 -------------------------------------------------------------
  void rule_ambient_rng(std::size_t i) {
    if (!enabled(kNoAmbientRng)) return;
    const std::vector<Token>& t = lx_.tokens;
    if (t[i].kind == Tok::kInclude && t[i].text == "random") {
      emit(kNoAmbientRng, t[i].line,
           "#include <random> pulls in implementation-defined engines and "
           "distributions; use util/rng.h (xoshiro256**) instead");
      return;
    }
    if (t[i].kind != Tok::kIdent) return;
    const std::string& name = t[i].text;
    if (kRngTypes.count(name) != 0) {
      emit(kNoAmbientRng, t[i].line,
           "'" + name + "' is ambient RNG; all randomness must flow "
           "through the per-run seeded xoshiro256** stream (util/rng.h)");
      return;
    }
    if (kRngCalls.count(name) != 0 && next_is(t, i, "(") &&
        !prev_is_member_access(t, i) && !prev_ident_is_declaration(t, i)) {
      emit(kNoAmbientRng, t[i].line,
           "'" + name + "()' is ambient RNG seeded outside run config; use "
           "the xoshiro256** stream (util/rng.h)");
    }
  }

  // --- rule 3 -------------------------------------------------------------
  void rule_raw_ofstream(std::size_t i) {
    if (!enabled(kNoRawOfstream)) return;
    const std::vector<Token>& t = lx_.tokens;
    if (t[i].kind != Tok::kIdent) return;
    const std::string& name = t[i].text;
    if (kRawOutputIdents.count(name) == 0) return;
    if (prev_is_member_access(t, i)) return;
    emit(kNoRawOfstream, t[i].line,
         "'" + name + "' writes files non-atomically; a crash mid-write "
         "leaves a truncated artifact — use write_file_atomic "
         "(util/atomic_file.h) or SnapshotWriter");
  }

  // --- rule 4 -------------------------------------------------------------
  void rule_unordered_serialization(std::size_t i) {
    if (!enabled(kNoUnorderedSer)) return;
    const std::vector<Token>& t = lx_.tokens;
    if (t[i].kind != Tok::kIdent || t[i].text != "for") return;
    if (!next_is(t, i, "(")) return;
    if (!ctx_.ctx[i].emission) return;
    // Find the ':' of a range-for at paren depth 1.
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      if (t[j].kind != Tok::kPunct) continue;
      if (t[j].text == "(") ++depth;
      if (t[j].text == ")") {
        --depth;
        if (depth == 0) {
          close = j;
          break;
        }
      }
      if (t[j].text == ":" && depth == 1 && colon == 0) colon = j;
      if (t[j].text == ";" && depth == 1) return;  // classic for
    }
    if (colon == 0 || close == 0) return;
    // Base identifier of the range expression: the last plain identifier
    // not followed by '(' (so `m`, `obj.map_`, `this->counts_` resolve,
    // `make_map()` stays unknown).
    std::string base;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (t[j].kind == Tok::kIdent && !next_is(t, j, "(")) base = t[j].text;
    }
    if (base.empty() || decls_.unordered_vars.count(base) == 0) return;
    // "Sorts first" exemption: the surrounding function sorts somewhere
    // (collect-into-vector-then-sort is the sanctioned pattern).
    const int fn = ctx_.ctx[i].fn_id;
    const auto sorted = ctx_.fn_has_sort.find(fn);
    if (sorted != ctx_.fn_has_sort.end() && sorted->second) return;
    const auto fname = ctx_.fn_name.find(fn);
    emit(kNoUnorderedSer, t[i].line,
         "iterating unordered container '" + base + "' inside emission "
         "function '" +
             (fname != ctx_.fn_name.end() ? fname->second : "?") +
             "' leaks hash order into the output; sort the keys first");
  }

  // --- rule 5 -------------------------------------------------------------
  void rule_raw_float_format(std::size_t i) {
    if (!enabled(kNoRawFloatFormat)) return;
    const std::vector<Token>& t = lx_.tokens;
    // (a) precision manipulators, anywhere.
    if (t[i].kind == Tok::kIdent &&
        (t[i].text == "setprecision" || t[i].text == "hexfloat")) {
      emit(kNoRawFloatFormat, t[i].line,
           "'" + t[i].text + "' formats floats stream-locally; use "
           "format_double(value, decimals) for byte-stable output");
      return;
    }
    if (t[i].kind == Tok::kIdent &&
        (t[i].text == "fixed" || t[i].text == "scientific") && i >= 2 &&
        t[i - 1].kind == Tok::kPunct && t[i - 1].text == "::" &&
        t[i - 2].kind == Tok::kIdent && t[i - 2].text == "std") {
      emit(kNoRawFloatFormat, t[i].line,
           "'std::" + t[i].text + "' formats floats stream-locally; use "
           "format_double(value, decimals) for byte-stable output");
      return;
    }
    // (b) printf-family with a float conversion, anywhere.
    if (t[i].kind == Tok::kIdent && kPrintfFamily.count(t[i].text) != 0 &&
        next_is(t, i, "(") && !prev_is_member_access(t, i)) {
      int depth = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].kind == Tok::kPunct) {
          if (t[j].text == "(") ++depth;
          if (t[j].text == ")") {
            if (--depth == 0) break;
          }
        }
        if (t[j].kind == Tok::kString && has_float_conversion(t[j].text)) {
          emit(kNoRawFloatFormat, t[i].line,
               "'" + t[i].text + "' with a %f/%e/%g conversion honors the "
               "process locale; use format_double(value, decimals)");
          break;
        }
      }
      return;
    }
    // (c) streaming a float-typed expression in an emission context.
    if (t[i].kind != Tok::kPunct || t[i].text != "<<") return;
    if (!ctx_.ctx[i].emission) return;
    if (i > 0 && t[i - 1].kind == Tok::kIdent &&
        t[i - 1].text == "operator") {
      return;  // operator<< declaration, not an insertion
    }
    // Segment: tokens up to the next '<<' / ';' at depth 0.
    int depth = 0;
    bool evidence = false;
    bool exempt = false;
    std::string what;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      const Token& tk = t[j];
      if (tk.kind == Tok::kPunct) {
        if (tk.text == "(") ++depth;
        if (tk.text == ")") {
          if (depth == 0) break;
          --depth;
        }
        if (depth == 0 &&
            (tk.text == "<<" || tk.text == ";" || tk.text == ","))
          break;
        continue;
      }
      if (tk.kind == Tok::kFloat) {
        evidence = true;
        if (what.empty()) what = "float literal " + tk.text;
      }
      if (tk.kind == Tok::kIdent) {
        if (tk.text == "format_double" || tk.text == "format_bytes" ||
            tk.text == "to_string") {
          // to_string on integral values is exact; float args will carry
          // their own evidence tokens and still flag below only if they
          // are NOT wrapped — to_string(double) prints %f, so treat a
          // float-evidence argument inside to_string as raw too.
          if (tk.text != "to_string") exempt = true;
        }
        if (tk.text == "static_cast" && j + 2 < t.size() &&
            t[j + 1].kind == Tok::kPunct && t[j + 1].text == "<" &&
            t[j + 2].kind == Tok::kIdent &&
            (t[j + 2].text == "double" || t[j + 2].text == "float")) {
          evidence = true;
          if (what.empty()) what = "static_cast<" + t[j + 2].text + ">";
        }
        if (decls_.float_vars.count(tk.text) != 0 &&
            !prev_is_member_access(t, j) && !next_is(t, j, "(")) {
          evidence = true;
          if (what.empty()) what = "double variable '" + tk.text + "'";
        }
        if (decls_.float_fns.count(tk.text) != 0 && next_is(t, j, "(")) {
          evidence = true;
          if (what.empty()) what = "double-returning '" + tk.text + "()'";
        }
      }
    }
    if (evidence && !exempt) {
      emit(kNoRawFloatFormat, t[i].line,
           "streaming " + what + " uses the stream's locale-dependent "
           "default precision; wrap it in format_double(value, decimals)");
    }
  }

  // --- rule 6 -------------------------------------------------------------
  void rule_check_macro_hygiene(std::size_t i) {
    if (!enabled(kCheckMacroHygiene)) return;
    const std::vector<Token>& t = lx_.tokens;
    if (t[i].kind != Tok::kIdent || kCheckedMacros.count(t[i].text) == 0)
      return;
    if (!next_is(t, i, "(")) return;
    const std::string& macro = t[i].text;
    int depth = 0;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      const Token& tk = t[j];
      if (tk.kind == Tok::kPunct) {
        if (tk.text == "(") ++depth;
        if (tk.text == ")") {
          if (--depth == 0) break;
        }
        if (tk.text == "++" || tk.text == "--" ||
            kAssignPuncts.count(tk.text) != 0) {
          emit(kCheckMacroHygiene, tk.line,
               "'" + tk.text + "' inside " + macro + " is a side effect "
               "that vanishes when the macro is compiled out; hoist it "
               "out of the check");
          return;
        }
        if ((tk.text == "." || tk.text == "->") && j + 2 < t.size() &&
            t[j + 1].kind == Tok::kIdent &&
            kMutatingMembers.count(t[j + 1].text) != 0 &&
            t[j + 2].kind == Tok::kPunct && t[j + 2].text == "(") {
          emit(kCheckMacroHygiene, tk.line,
               "'" + t[j + 1].text + "()' mutates state inside " + macro +
                   "; the call disappears when the macro is compiled out");
          return;
        }
      }
    }
  }

  const std::string& path_;
  const Lexed& lx_;
  const Options& opt_;
  Report* out_;
  Decls decls_;
  ContextPass ctx_;
  std::map<std::string, std::set<int>> allow_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rule_catalog() { return kRules; }

bool is_known_rule(const std::string& id) {
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const RuleInfo& r) { return id == r.id; });
}

std::vector<std::string> collect_sources(const std::vector<std::string>& paths,
                                         std::string* error) {
  namespace fs = std::filesystem;
  const std::set<std::string> exts = {".h", ".hpp", ".cc", ".cpp", ".cxx"};
  std::vector<std::string> out;
  for (const std::string& p : paths) {
    std::error_code ec;
    const fs::file_status st = fs::status(p, ec);
    if (ec || st.type() == fs::file_type::not_found) {
      if (error != nullptr) *error = "no such file or directory: " + p;
      return {};
    }
    if (fs::is_directory(st)) {
      for (fs::recursive_directory_iterator it(p, ec), end;
           !ec && it != end; it.increment(ec)) {
        const fs::path& entry = it->path();
        const std::string name = entry.filename().string();
        if (it->is_directory() &&
            (name == "build" || (!name.empty() && name[0] == '.'))) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() &&
            exts.count(entry.extension().string()) != 0) {
          out.push_back(entry.string());
        }
      }
      if (ec && error != nullptr) {
        *error = "while scanning " + p + ": " + ec.message();
        return {};
      }
    } else {
      out.push_back(p);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void lint_content(const std::string& path, const std::string& content,
                  const Options& options, Report* out) {
  const Lexed lx = lex(content);
  FileLinter linter(path, lx, options, out);
  linter.run();
  ++out->files_scanned;
}

bool lint_file(const std::string& path, const Options& options, Report* out,
               std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  lint_content(path, buf.str(), options, out);
  return true;
}

Report lint_paths(const std::vector<std::string>& paths,
                  const Options& options, std::string* error) {
  Report out;
  const std::vector<std::string> files = collect_sources(paths, error);
  if (error != nullptr && !error->empty()) return out;
  for (const std::string& f : files) {
    if (!lint_file(f, options, &out, error)) return out;
  }
  std::sort(out.findings.begin(), out.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return out;
}

std::string baseline_key(const Finding& f) {
  return f.file + "|" + f.rule + "|" + hex64(fnv1a64(f.line_text));
}

std::string render_baseline(const std::vector<Finding>& findings) {
  std::vector<std::string> keys;
  keys.reserve(findings.size());
  for (const Finding& f : findings) keys.push_back(baseline_key(f));
  std::sort(keys.begin(), keys.end());
  std::string out = "# reqblock-lint baseline v1\n";
  for (const std::string& k : keys) {
    out += k;
    out += '\n';
  }
  return out;
}

std::vector<Finding> apply_baseline(const std::vector<Finding>& findings,
                                    const std::string& baseline_text,
                                    int* baselined) {
  std::multiset<std::string> keys;
  std::istringstream in(baseline_text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    keys.insert(line);
  }
  std::vector<Finding> fresh;
  int absorbed = 0;
  for (const Finding& f : findings) {
    const auto it = keys.find(baseline_key(f));
    if (it != keys.end()) {
      keys.erase(it);
      ++absorbed;
    } else {
      fresh.push_back(f);
    }
  }
  if (baselined != nullptr) *baselined = absorbed;
  return fresh;
}

}  // namespace reqblock::lint
