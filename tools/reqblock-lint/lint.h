// reqblock-lint — project-specific determinism & serialization linter.
//
// The whole simulator rests on one contract: equal logical state must
// produce equal bytes, on any host, at any thread count, in any locale.
// The runtime side of that contract is enforced by the cmp-style
// determinism tests; this tool enforces the *source* side, at review
// time, with a token/AST-lite scan over src/, bench/ and examples/:
//
//   no-wallclock               wall-clock time sources outside the
//                              profiler allowlist
//   no-ambient-rng             rand()/<random> engines instead of the
//                              seeded xoshiro stream in util/rng.h
//   no-raw-ofstream            file output that bypasses
//                              util/atomic_file or SnapshotWriter
//   no-unordered-serialization hash-order iteration inside an emission
//                              (serialize/report/CSV) function
//   no-raw-float-format        locale/precision-dependent float
//                              formatting instead of format_double
//   check-macro-hygiene        side effects inside compiled-out
//                              REQB_DCHECK / REQB_AUDIT macros
//
// A finding is suppressed by a comment `// REQB_LINT_ALLOW(rule-id):
// justification` on the offending line or on a line of its own directly
// above it. The library half (this header) is what the fixture tests
// link against; tools/reqblock-lint/main.cc is the thin CLI.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace reqblock::lint {

/// One diagnostic. `line_text` is the trimmed source line the finding
/// anchors to; baseline keys hash it instead of the line number so a
/// baseline survives unrelated edits above the finding.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string line_text;
};

struct Options {
  /// Rule ids whose detection logic is switched off entirely.
  std::set<std::string> disabled;
  /// When false, REQB_LINT_ALLOW comments are ignored (used by the
  /// fixture tests to prove a suppressed violation is still detected).
  bool honor_suppressions = true;
};

struct Report {
  std::vector<Finding> findings;
  int suppressed = 0;
  int files_scanned = 0;
};

struct RuleInfo {
  const char* id;
  const char* summary;
  const char* fix_suggestion;
};

/// The full rule catalog, in stable documentation order.
const std::vector<RuleInfo>& rule_catalog();
bool is_known_rule(const std::string& id);

/// Expands files/directories into the sorted list of C++ sources to scan
/// (.h/.hpp/.cc/.cpp/.cxx; hidden directories and build/ are skipped).
/// On error returns an empty list and sets *error.
std::vector<std::string> collect_sources(const std::vector<std::string>& paths,
                                         std::string* error);

/// Lints one in-memory translation unit; appends to out->findings and
/// bumps the suppression counter. `path` is used for diagnostics and for
/// the handful of path-scoped heuristics (bench/examples are report
/// contexts end to end).
void lint_content(const std::string& path, const std::string& content,
                  const Options& options, Report* out);

/// Reads and lints one file. Returns false (and sets *error) if the file
/// cannot be read.
bool lint_file(const std::string& path, const Options& options, Report* out,
               std::string* error);

/// collect_sources + lint_file over every hit, findings sorted by
/// (file, line, rule).
Report lint_paths(const std::vector<std::string>& paths,
                  const Options& options, std::string* error);

/// Baseline support: a baseline freezes today's accepted findings so CI
/// can gate on "no *new* findings". Keys are file|rule|fnv1a64(line_text),
/// deliberately line-number-free.
std::string baseline_key(const Finding& f);
std::string render_baseline(const std::vector<Finding>& findings);
/// Returns the findings not covered by the baseline text (multiset
/// semantics: N baseline entries absorb at most N identical findings).
/// *baselined (optional) receives the number absorbed.
std::vector<Finding> apply_baseline(const std::vector<Finding>& findings,
                                    const std::string& baseline_text,
                                    int* baselined);

}  // namespace reqblock::lint
