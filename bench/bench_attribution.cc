// Attribution perf ledger: replay the standard bursty usr_0/proj_0
// workloads with per-request latency attribution on and append one
// fingerprinted record per cell to BENCH_attribution.json.
//
// Each cell drives a spike/idle arrival cycle (the bench_overload shape)
// at 4x the base rate through a bounded host queue with GC throttling, so
// every attribution component — queue wait, throttle, eviction stall,
// FTL service, GC — carries real time. The ledger record captures the
// config and trace fingerprints, throughput, latency percentiles, and the
// per-component share of total latency; tools/perf_diff compares two
// ledgers (or two records of one) and flags regressions beyond a noise
// band.
//
// Ledger format (append-only): {"records": [ <record>, ... ]}. Every
// field of a record is deterministic except wall_unix_s, which sits on
// its own line so `grep -v wall_unix_s` yields byte-identical files for
// same-seed runs (CI proves exactly that).
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>

#include "bench_common.h"
#include "sim/session.h"
#include "util/atomic_file.h"

namespace reqblock::benchx {
namespace {

constexpr const char* kLedgerPath = "BENCH_attribution.json";

/// Request cap the registered cells ran with; report() rebuilds each case
/// with the same cap so the ledger fingerprints match the executed runs.
std::uint64_t g_request_cap = 0;
constexpr const char* kLedgerHead = "{\"records\": [\n";
constexpr const char* kLedgerTail = "\n]}\n";

const std::vector<std::string>& bench_traces() {
  static const std::vector<std::string> t = {"usr_0", "proj_0"};
  return t;
}

const std::vector<std::string>& bench_policies() {
  static const std::vector<std::string> p = {"reqblock", "lru", "bplru"};
  return p;
}

std::string cell_name(const std::string& trace, const std::string& policy) {
  return "attribution/" + trace + "/" + policy;
}

ExperimentCase attribution_case(const std::string& trace,
                                const std::string& policy,
                                std::uint64_t cap) {
  ExperimentCase c = make_case(trace, policy, 8, cap);
  // The bench_overload spike/idle cycle at 4x the base arrival rate:
  // bursts saturate the device, so queueing and eviction stalls show up.
  c.profile.burst_arrival_len = 500;
  c.profile.burst_arrival_period = 2500;
  c.profile.burst_arrival_factor = 10.0;
  c.profile.mean_interarrival_ns = static_cast<SimTime>(
      static_cast<double>(c.profile.mean_interarrival_ns) / 4.0);
  // Bounded queue + GC throttle (no deadline: nothing is shed, so the
  // ledger's request count equals the response histogram's).
  c.options.overload.queue_depth = 64;
  c.options.overload.throttle = true;
  c.options.telemetry.attribution = true;
  return c;
}

void register_benchmarks(std::uint64_t cap) {
  for (const auto& trace : bench_traces()) {
    for (const auto& policy : bench_policies()) {
      register_case(cell_name(trace, policy),
                    attribution_case(trace, policy, cap));
    }
  }
}

/// One ledger record. Multi-line so the wall-clock stamp can be filtered
/// out with a line-based tool; every other field is deterministic.
std::string ledger_record(const std::string& trace, const std::string& policy,
                          const ExperimentCase& c, const RunResult& r) {
  // REQB_LINT_ALLOW(no-wallclock): the ledger timestamp records *when*
  // the benchmark ran, for humans reading the cross-run history. It is
  // stamped after the deterministic run finished, lives on its own line,
  // and perf_diff never compares it.
  const std::int64_t wall_unix_s =
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  const double sim_seconds = static_cast<double>(r.sim_end) / 1e9;
  const double throughput =
      sim_seconds == 0.0 ? 0.0 : static_cast<double>(r.requests) / sim_seconds;
  std::ostringstream os;
  os << "{\n"
     << "\"case\": \"" << trace << "/" << policy << "\",\n"
     << "\"config_fingerprint\": " << config_fingerprint(c.options) << ",\n"
     << "\"trace_fingerprint\": "
     << SyntheticTraceSource(c.profile).identity_hash() << ",\n"
     << "\"wall_unix_s\": " << wall_unix_s << ",\n"
     << "\"requests\": " << r.requests << ",\n"
     << "\"throughput_rps\": " << format_double(throughput, 3) << ",\n"
     << "\"p50_ns\": " << r.response.p50() << ",\n"
     << "\"p99_ns\": " << r.response.p99() << ",\n"
     << "\"p999_ns\": " << r.response.p999() << ",\n"
     << "\"mean_ns\": " << static_cast<std::int64_t>(r.response.mean())
     << ",\n"
     << "\"component_share\": {";
  const AttributionResult& a = r.attribution;
  for (std::size_t i = 0; i < kAttrComponents; ++i) {
    const double share =
        a.total_ns == 0 ? 0.0
                        : static_cast<double>(a.component_ns[i]) /
                              static_cast<double>(a.total_ns);
    // Truncate, don't round: the exact shares sum to 1, and rounding each
    // of the 8 components up can push the printed sum past perf_diff's
    // sum-at-most-1 validation.
    const double floored = std::floor(share * 1e6) / 1e6;
    os << (i == 0 ? "" : ", ") << "\""
       << to_string(static_cast<AttrComponent>(i))
       << "\": " << format_double(floored, 6);
  }
  os << "}\n}";
  return os.str();
}

/// Appends `records` (comma-joined record texts) to the ledger, creating
/// it when missing. A file that does not look like a ledger is replaced
/// rather than corrupted further.
void append_to_ledger(const std::string& records) {
  std::string body;
  std::ifstream in(kLedgerPath);
  if (in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string existing = buf.str();
    const std::string head = kLedgerHead;
    const std::string tail = kLedgerTail;
    if (existing.size() > head.size() + tail.size() &&
        existing.compare(0, head.size(), head) == 0 &&
        existing.compare(existing.size() - tail.size(), tail.size(), tail) ==
            0) {
      body = existing.substr(head.size(),
                             existing.size() - head.size() - tail.size());
    }
  }
  if (!body.empty()) body += ",\n";
  body += records;
  write_file_atomic(kLedgerPath, kLedgerHead + body + kLedgerTail);
}

void report() {
  TextTable t({"Trace", "Policy", "p50 (ms)", "p99 (ms)", "p999 (ms)",
               "top component", "share"});
  std::string records;
  std::uint64_t cells = 0;
  for (const auto& trace : bench_traces()) {
    for (const auto& policy : bench_policies()) {
      const RunResult* r = RunStore::instance().find(cell_name(trace, policy));
      if (r == nullptr) continue;
      const AttributionResult& a = r->attribution;
      std::size_t top = 0;
      for (std::size_t i = 1; i < kAttrComponents; ++i) {
        if (a.component_ns[i] > a.component_ns[top]) top = i;
      }
      const double top_share =
          a.total_ns == 0 ? 0.0
                          : static_cast<double>(a.component_ns[top]) /
                                static_cast<double>(a.total_ns);
      t.add_row({trace, policy,
                 format_double(static_cast<double>(r->response.p50()) /
                                   kMillisecond, 2),
                 format_double(static_cast<double>(r->response.p99()) /
                                   kMillisecond, 2),
                 format_double(static_cast<double>(r->response.p999()) /
                                   kMillisecond, 2),
                 to_string(static_cast<AttrComponent>(top)),
                 format_double(top_share * 100.0, 1) + "%"});
      if (!records.empty()) records += ",\n";
      records += ledger_record(trace, policy,
                               attribution_case(trace, policy, g_request_cap),
                               *r);
      ++cells;
    }
  }
  t.print(std::cout);
  if (cells > 0) {
    append_to_ledger(records);
    std::cout << "Appended " << cells << " records to " << kLedgerPath
              << "\n";
  }
  expect_line("attribution exactness",
              "sum(components) == end-to-end latency per request",
              "audited under REQBLOCK_AUDIT=full; see tests");
}

}  // namespace
}  // namespace reqblock::benchx

int main(int argc, char** argv) {
  using namespace reqblock::benchx;
  g_request_cap = reqblock::bench_request_cap(60000);
  register_benchmarks(g_request_cap);
  return bench_main(argc, argv, report,
                    "Attribution: per-component latency ledger");
}
