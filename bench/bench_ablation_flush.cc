// Ablation A3: striped vs colocated batch flush (§4.2.4's parallelism
// claim), plus BPLRU's page-padding cost.
//
//   reqblock-striped     victim batch round-robins across all channels
//   reqblock-colocated   victim batch pinned to one channel
//   bplru                whole-block colocated flush (default, no padding)
//   bplru-padding        + read-and-rewrite the block's missing pages
//
// Expectation: striping the batch is the reason batch eviction improves
// response time; colocating Req-block's batches erases much of its
// latency advantage, and padding makes BPLRU strictly worse.
#include "bench_common.h"

namespace reqblock::benchx {
namespace {

void register_benchmarks(std::uint64_t cap) {
  for (const auto& trace : paper_traces()) {
    {
      ExperimentCase c = make_case(trace, "reqblock", 32, cap);
      register_case("ablation_flush/" + trace + "/reqblock-striped", c);
    }
    {
      ExperimentCase c = make_case(trace, "reqblock", 32, cap);
      c.options.policy.reqblock.colocate_flush = true;
      register_case("ablation_flush/" + trace + "/reqblock-colocated", c);
    }
    {
      ExperimentCase c = make_case(trace, "bplru", 32, cap);
      register_case("ablation_flush/" + trace + "/bplru", c);
    }
    {
      ExperimentCase c = make_case(trace, "bplru", 32, cap);
      c.options.policy.bplru.page_padding = true;
      register_case("ablation_flush/" + trace + "/bplru-padding", c);
    }
    {
      ExperimentCase c = make_case(trace, "bplru", 32, cap);
      c.options.policy.bplru.block_unit_allocation = true;
      register_case("ablation_flush/" + trace + "/bplru-unitalloc", c);
    }
  }
}

void report() {
  TextTable t({"Trace", "RB striped (ms)", "RB colocated (ms)",
               "BPLRU (ms)", "BPLRU+padding (ms)", "padding writes",
               "BPLRU unit-alloc hit%"});
  int striping_wins = 0;
  for (const auto& trace : paper_traces()) {
    auto get = [&](const std::string& v) {
      return RunStore::instance().find("ablation_flush/" + trace + "/" + v);
    };
    const RunResult* striped = get("reqblock-striped");
    const RunResult* colocated = get("reqblock-colocated");
    const RunResult* bplru = get("bplru");
    const RunResult* padded = get("bplru-padding");
    if (striped == nullptr || colocated == nullptr) continue;
    if (striped->response.mean() < colocated->response.mean()) {
      ++striping_wins;
    }
    t.add_row({trace, format_double(striped->mean_response_ms(), 3),
               format_double(colocated->mean_response_ms(), 3),
               bplru != nullptr ? format_double(bplru->mean_response_ms(), 3)
                                : "-",
               padded != nullptr
                   ? format_double(padded->mean_response_ms(), 3)
                   : "-",
               padded != nullptr
                   ? std::to_string(padded->cache.padding_pages)
                   : "-",
               get("bplru-unitalloc") != nullptr
                   ? format_double(
                         get("bplru-unitalloc")->hit_ratio() * 100, 2) +
                         "%"
                   : "-"});
  }
  t.print(std::cout);
  expect_line("striped flush faster than colocated",
              "channel-parallelism claim, §4.2.4",
              std::to_string(striping_wins) + "/6 traces");
}

}  // namespace
}  // namespace reqblock::benchx

int main(int argc, char** argv) {
  using namespace reqblock::benchx;
  register_benchmarks(reqblock::bench_request_cap(200000));
  return bench_main(argc, argv, report,
                    "Ablation A3: striped vs colocated batch flush");
}
