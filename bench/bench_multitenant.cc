// Multi-tenant fairness study: a latency-sensitive tenant sharing the
// device with a noisy neighbor, under each arbitration discipline.
//
// Tenant 0 is the victim: the base usr_0 stream compressed to 3x its
// natural rate, so it needs more than half of the saturated device.
// Tenant 1 is the aggressor: the same profile at 4x with an 8x
// burst-arrival spike every cycle. Arbitration order decides whose
// requests book the shared channel timelines first, which is where
// cross-tenant latency coupling lives — the per-tenant admission queues
// keep each tenant's backlog its own problem. The claim under test:
// deficit round-robin with a 4:1 weight entitles the victim to 80% of
// device service, so its demand fits and its p99 stays bounded; plain
// round-robin caps it at 50%, below its demand, and the aggressor's
// bursts push its tail out.
//
// Per-arbiter Jain's fairness index over weighted per-tenant throughput
// (served requests / weight) quantifies how evenly service tracked
// entitlement.
//
// Machine-readable output: BENCH_multitenant.json (written atomically to
// the working directory), one record per (arbiter, tenant) cell.
#include <sstream>

#include "bench_common.h"
#include "util/atomic_file.h"

namespace reqblock::benchx {
namespace {

constexpr const char* kTrace = "usr_0";

const std::vector<ArbiterKind>& arbiters() {
  static const std::vector<ArbiterKind> a = {
      ArbiterKind::kRoundRobin, ArbiterKind::kWeighted,
      ArbiterKind::kDeficit};
  return a;
}

std::string cell_name(ArbiterKind kind) {
  return std::string("multitenant/") + to_string(kind);
}

ExperimentCase tenant_case(ArbiterKind kind, std::uint64_t cap) {
  ExperimentCase c = make_case(kTrace, "reqblock", 8, cap);
  c.options.tenants.count = 2;
  c.options.tenants.arbiter = kind;
  TenantSpec victim;
  victim.weight = 4;
  victim.rate = 3.0;
  TenantSpec aggressor;
  aggressor.weight = 1;
  aggressor.rate = 4.0;
  aggressor.burst_len = 500;
  aggressor.burst_period = 2500;
  aggressor.burst_factor = 8.0;
  c.options.tenants.specs = {victim, aggressor};
  // The bounded queue is where contention becomes measurable wait.
  c.options.overload.queue_depth = 64;
  c.options.overload.deadline_ns = 50 * kMillisecond;
  return c;
}

double jain_index(const std::vector<double>& x) {
  double sum = 0.0, sum_sq = 0.0;
  for (const double v : x) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(x.size()) * sum_sq);
}

void register_benchmarks(std::uint64_t cap) {
  for (const ArbiterKind kind : arbiters()) {
    register_case(cell_name(kind), tenant_case(kind, cap));
  }
}

void report() {
  TextTable t({"Arbiter", "Tenant", "Requests", "Admitted", "Sheds",
               "q-wait p99 (ms)", "resp p99 (ms)", "Jain"});
  std::ostringstream json;
  json << "{\n  \"trace\": \"" << kTrace << "\",\n  \"tenants\": [\n";
  bool first = true;
  SimTime rr_victim_p99 = 0;
  SimTime drr_victim_p99 = 0;
  for (const ArbiterKind kind : arbiters()) {
    const RunResult* r = RunStore::instance().find(cell_name(kind));
    if (r == nullptr || r->tenants.empty()) continue;
    std::vector<double> weighted_share;
    const std::vector<std::uint32_t> weights = {4, 1};
    for (std::size_t i = 0; i < r->tenants.size(); ++i) {
      weighted_share.push_back(
          static_cast<double>(r->tenants[i].overload.admitted) /
          static_cast<double>(weights[i]));
    }
    const double jain = jain_index(weighted_share);
    for (std::size_t i = 0; i < r->tenants.size(); ++i) {
      const TenantResult& tn = r->tenants[i];
      t.add_row({to_string(kind), tn.name, std::to_string(tn.requests),
                 std::to_string(tn.overload.admitted),
                 std::to_string(tn.overload.sheds),
                 format_double(static_cast<double>(tn.queue_wait.p99()) /
                                   kMillisecond, 2),
                 format_double(static_cast<double>(tn.response.p99()) /
                                   kMillisecond, 2),
                 i == 0 ? format_double(jain, 4) : ""});
      if (!first) json << ",\n";
      first = false;
      json << "    {\"arbiter\": \"" << to_string(kind) << "\", \"tenant\": \""
           << tn.name << "\", \"requests\": " << tn.requests
           << ", \"admitted\": " << tn.overload.admitted
           << ", \"sheds\": " << tn.overload.sheds
           << ", \"queue_wait_p99_ns\": " << tn.queue_wait.p99()
           << ", \"resp_p99_ns\": " << tn.response.p99()
           << ", \"resp_mean_ns\": " << static_cast<std::int64_t>(
                  tn.response.mean())
           << ", \"jain_weighted\": " << format_double(jain, 6) << "}";
    }
    if (kind == ArbiterKind::kRoundRobin) {
      rr_victim_p99 = r->tenants[0].response.p99();
    }
    if (kind == ArbiterKind::kDeficit) {
      drr_victim_p99 = r->tenants[0].response.p99();
    }
  }
  json << "\n  ]\n}\n";
  t.print(std::cout);
  write_file_atomic("BENCH_multitenant.json", json.str());
  std::cout << "Wrote BENCH_multitenant.json\n";
  expect_line("DRR 4:1 bounds the victim tenant's p99 below round-robin",
              "weighted deficit service shields t0 from the x8 burst",
              "rr " +
                  format_double(static_cast<double>(rr_victim_p99) /
                                    kMillisecond, 2) +
                  "ms vs drr " +
                  format_double(static_cast<double>(drr_victim_p99) /
                                    kMillisecond, 2) +
                  "ms");
}

}  // namespace
}  // namespace reqblock::benchx

int main(int argc, char** argv) {
  using namespace reqblock::benchx;
  register_benchmarks(reqblock::bench_request_cap(60000));
  return bench_main(argc, argv, report,
                    "Multi-tenant: victim p99 vs arbiter, noisy neighbor");
}
