// Table 2: specifications of the six traces.
//
// Regenerates the trace-statistics columns (request count, write ratio,
// mean write size, frequent-address ratios) from the synthetic profiles
// and prints them next to the published values. The synthetic profiles
// substitute for the MSR/VDI traces (DESIGN.md §1), so request counts
// match exactly and the scalar statistics approximately.
#include <map>

#include "bench_common.h"
#include "trace/trace_stats.h"

namespace reqblock::benchx {
namespace {

std::map<std::string, TraceStats> g_stats;

void register_benchmarks(std::uint64_t cap) {
  for (const auto& name : paper_traces()) {
    benchmark::RegisterBenchmark(
        ("table2/" + name).c_str(),
        [name, cap](benchmark::State& state) {
          TraceStats stats;
          for (auto _ : state) {
            SyntheticTraceSource src(profiles::by_name(name).capped(cap));
            stats = TraceStatsCollector::collect(src);
          }
          state.counters["write_ratio_pct"] = stats.write_ratio() * 100.0;
          state.counters["write_kb"] = stats.mean_write_kb();
          g_stats[name] = stats;
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void report() {
  TextTable t({"Trace", "Req # (paper)", "Wr Ratio (paper)",
               "Wr Size (paper)", "Freq R (paper)", "Freq (Wr) (paper)"});
  for (const auto& name : paper_traces()) {
    const auto paper = profiles::paper_stats(name);
    const auto& m = g_stats[name];
    t.add_row({name,
               std::to_string(m.requests) + " (" +
                   std::to_string(paper.requests) + ")",
               format_double(m.write_ratio() * 100, 1) + "% (" +
                   format_double(paper.write_ratio * 100, 1) + "%)",
               format_double(m.mean_write_kb(), 1) + "KB (" +
                   format_double(paper.write_size_kb, 1) + "KB)",
               format_double(m.frequent_ratio * 100, 1) + "% (" +
                   format_double(paper.frequent_ratio * 100, 1) + "%)",
               format_double(m.frequent_write_ratio * 100, 1) + "% (" +
                   format_double(paper.frequent_write_ratio * 100, 1) +
                   "%)"});
  }
  t.print(std::cout);
  std::cout << "\nNotes: write ratio and mean write size are matched by\n"
               "construction; the frequent-address columns track the\n"
               "paper's relative ordering (lun_1 lowest reuse, src1_2\n"
               "highest) rather than absolute values — reuse in the\n"
               "generator is concentrated on page-level hotness, which is\n"
               "what the cache experiments consume.\n";
}

}  // namespace
}  // namespace reqblock::benchx

int main(int argc, char** argv) {
  using namespace reqblock::benchx;
  const std::uint64_t cap = reqblock::bench_request_cap(300000);
  register_benchmarks(cap);
  return bench_main(argc, argv, report, "Table 2: trace specifications");
}
