// Figure 7: sensitivity of Req-block's delta (the SRL size limit) on hit
// ratio and I/O response time, with a 32 MB cache, normalized to delta=1.
// The paper selects delta = 5 as its default.
#include "bench_common.h"

namespace reqblock::benchx {
namespace {

constexpr std::uint32_t kMaxDelta = 9;

void register_benchmarks(std::uint64_t cap) {
  for (const auto& trace : paper_traces()) {
    for (std::uint32_t delta = 1; delta <= kMaxDelta; ++delta) {
      register_case(
          "fig7/" + trace + "/delta" + std::to_string(delta),
          make_case(trace, "reqblock", 32, cap, delta));
    }
  }
}

void report() {
  TextTable hit({"Trace", "d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8",
                 "d9", "best"});
  TextTable resp({"Trace", "d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8",
                  "d9", "best"});
  std::vector<double> best_deltas;
  for (const auto& trace : paper_traces()) {
    std::vector<std::string> hrow{trace}, rrow{trace};
    double base_hit = 0.0, base_resp = 0.0;
    std::uint32_t best = 1;
    double best_hit = 0.0;
    for (std::uint32_t delta = 1; delta <= kMaxDelta; ++delta) {
      const RunResult* r = RunStore::instance().find(
          "fig7/" + trace + "/delta" + std::to_string(delta));
      if (r == nullptr) continue;
      if (delta == 1) {
        base_hit = r->hit_ratio();
        base_resp = r->response.mean();
      }
      if (r->hit_ratio() > best_hit) {
        best_hit = r->hit_ratio();
        best = delta;
      }
      hrow.push_back(format_double(r->hit_ratio() / base_hit, 3));
      rrow.push_back(format_double(r->response.mean() / base_resp, 3));
    }
    hrow.push_back("d" + std::to_string(best));
    rrow.push_back("d" + std::to_string(best));
    best_deltas.push_back(best);
    hit.add_row(hrow);
    resp.add_row(rrow);
  }
  std::cout << "Hit ratio normalized to delta=1:\n";
  hit.print(std::cout);
  std::cout << "\nMean response time normalized to delta=1:\n";
  resp.print(std::cout);
  expect_line("best delta", "5 for most traces",
              "per-trace best in the tables above (mean " +
                  format_double(mean_of(best_deltas), 1) + ")");
}

}  // namespace
}  // namespace reqblock::benchx

int main(int argc, char** argv) {
  using namespace reqblock::benchx;
  register_benchmarks(reqblock::bench_request_cap(150000));
  return bench_main(argc, argv, report,
                    "Fig. 7: delta sensitivity (Req-block, 32MB)");
}
