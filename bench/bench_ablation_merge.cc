// Ablation A2: downgraded merging (Fig. 6) on/off.
//
// Merging evicts a split block together with its IRL origin, enlarging
// flush batches (channel parallelism) and retiring spatially related cold
// data in one operation. Expectation: merging does not hurt hit ratio and
// modestly increases pages/eviction.
#include "bench_common.h"

namespace reqblock::benchx {
namespace {

std::string cell(const std::string& trace, bool merge) {
  return std::string("ablation_merge/") + trace + "/" +
         (merge ? "merge" : "no-merge");
}

void register_benchmarks(std::uint64_t cap) {
  for (const auto& trace : paper_traces()) {
    for (const bool merge : {true, false}) {
      ExperimentCase c = make_case(trace, "reqblock", 32, cap);
      c.options.policy.reqblock.merge_on_evict = merge;
      register_case(cell(trace, merge), c);
    }
  }
}

void report() {
  TextTable t({"Trace", "hit% (merge)", "hit% (no-merge)",
               "pages/evict (merge)", "pages/evict (no-merge)",
               "mean ms (merge)", "mean ms (no-merge)"});
  for (const auto& trace : paper_traces()) {
    const RunResult* on = RunStore::instance().find(cell(trace, true));
    const RunResult* off = RunStore::instance().find(cell(trace, false));
    if (on == nullptr || off == nullptr) continue;
    t.add_row({trace, format_double(on->hit_ratio() * 100, 2),
               format_double(off->hit_ratio() * 100, 2),
               format_double(on->cache.eviction_batch.mean(), 2),
               format_double(off->cache.eviction_batch.mean(), 2),
               format_double(on->mean_response_ms(), 3),
               format_double(off->mean_response_ms(), 3)});
  }
  t.print(std::cout);
  std::cout << "\nDesign claim (paper §3.3): merging batches spatially\n"
               "related cold pages into one striped flush without\n"
               "sacrificing hits.\n";
}

}  // namespace
}  // namespace reqblock::benchx

int main(int argc, char** argv) {
  using namespace reqblock::benchx;
  register_benchmarks(reqblock::bench_request_cap(200000));
  return bench_main(argc, argv, report,
                    "Ablation A2: downgraded merging on/off");
}
