// Figure 3: fraction of large-request pages that are re-accessed while
// cached (LRU, 16 MB). The paper reports 22.0%-37.2% across traces
// (Observation 2): only a minority of large-request pages earn their
// cache residency.
#include "bench_common.h"

namespace reqblock::benchx {
namespace {

void register_benchmarks(std::uint64_t cap) {
  for (const auto& trace : paper_traces()) {
    register_case("fig3/" + trace + "/lru/16MB",
                  make_case(trace, "lru", 16, cap));
  }
}

/// Share of pages inserted by requests larger than `threshold` pages that
/// were hit at least once before leaving the cache.
double large_reuse(const RunResult& r, std::uint32_t threshold) {
  std::uint64_t total = r.cache.pages_retired_by_req_size[0];
  std::uint64_t reused = r.cache.pages_reused_by_req_size[0];
  for (std::uint32_t s = threshold + 1;
       s < r.cache.pages_retired_by_req_size.size(); ++s) {
    total += r.cache.pages_retired_by_req_size[s];
    reused += r.cache.pages_reused_by_req_size[s];
  }
  return total == 0 ? 0.0
                    : static_cast<double>(reused) /
                          static_cast<double>(total);
}

void report() {
  TextTable t({"Trace", "large-req pages re-accessed", "paper band"});
  std::vector<double> values;
  for (const auto& trace : paper_traces()) {
    const RunResult* r =
        RunStore::instance().find("fig3/" + trace + "/lru/16MB");
    if (r == nullptr) continue;
    const auto paper = profiles::paper_stats(trace);
    const auto avg_pages =
        static_cast<std::uint32_t>(paper.write_size_kb / 4.0 + 0.5);
    const double v = large_reuse(*r, avg_pages);
    values.push_back(v);
    t.add_row({trace, format_double(v * 100, 1) + "%", "22.0% - 37.2%"});
  }
  t.print(std::cout);
  expect_line("large-request page reuse", "22.0%-37.2% across traces",
              format_double(*std::min_element(values.begin(), values.end()) *
                                100, 1) + "%-" +
                  format_double(*std::max_element(values.begin(),
                                                  values.end()) * 100, 1) +
                  "%");
  std::cout << "Shape check: in every trace only a minority of\n"
               "large-request pages is ever re-accessed, motivating the\n"
               "DRL split mechanism.\n";
}

}  // namespace
}  // namespace reqblock::benchx

int main(int argc, char** argv) {
  using namespace reqblock::benchx;
  register_benchmarks(reqblock::bench_request_cap(300000));
  return bench_main(argc, argv, report,
                    "Fig. 3: reuse of large-request pages (LRU, 16MB)");
}
