// Data-integrity sweep: fresh vs pre-aged device under the bit-error
// model, appended as fingerprinted records to BENCH_integrity.json.
//
// Each policy runs the same drifting workload twice with the full
// recovery hierarchy armed (ECC -> read retry -> plane-stripe parity,
// patrol scrub on). The *fresh* cell starts at zero wear, so the RBER
// sits at its base and recoveries are rare and cheap; the *aged* cell
// opens near its rated P/E budget, pushing the wear-boosted RBER up
// until retries, parity rebuilds, and scrub refreshes shape the tail.
// Identical traces and identical integrity knobs keep the fresh-vs-aged
// delta a pure recovery-mix effect.
//
// Ledger format matches BENCH_soak.json (tools/perf_diff reads both):
// {"records": [...]}, every field deterministic except wall_unix_s on
// its own line. Integrity records append the recovery-tier counters
// after the shared columns; perf_diff ignores fields it does not know.
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>

#include "bench_common.h"
#include "sim/session.h"
#include "util/atomic_file.h"

namespace reqblock::benchx {
namespace {

constexpr const char* kLedgerPath = "BENCH_integrity.json";
constexpr const char* kLedgerHead = "{\"records\": [\n";
constexpr const char* kLedgerTail = "\n]}\n";

/// Request cap the registered cells ran with; report() rebuilds each case
/// with the same cap so the ledger fingerprints match the executed runs.
std::uint64_t g_request_cap = 0;

const std::vector<std::string>& integrity_policies() {
  return paper_policies();
}

std::string cell_name(const std::string& policy, bool aged) {
  return "integrity/" + policy + (aged ? "/aged" : "/fresh");
}

ExperimentCase integrity_case(const std::string& policy, bool aged,
                              std::uint64_t cap) {
  ExperimentCase c = make_case("usr_0", policy, 8, cap);
  // Same 2 GB shrink as bench_soak: GC overwrites the free space several
  // times within the run, so the aged cell keeps consuming P/E cycles on
  // top of its pre-aged opening wear.
  c.profile.hot_extents = 2000;
  c.profile.cold_stream_pages = 1ULL << 16;
  c.options.ssd.capacity_bytes = 2ULL << 30;
  c.profile.drift_period = 50000;
  c.profile.drift_step = 211;
  c.options.telemetry.attribution = true;
  c.label = cell_name(policy, aged);
  FaultPlan& f = c.options.fault;
  f.seed = 0xecc5;
  // The bit-error model and recovery hierarchy are identical in both
  // cells; only the opening wear differs.
  IntegrityPlan& in = f.integrity;
  in.rber_base = 0.01;
  in.rber_pe_anchor = 3000;
  in.rber_pe_boost = 20.0;  // ~0.8x base extra at 90% of rated wear
  in.rber_read_anchor = 256;
  in.rber_read_boost = 2.0;
  in.ecc_escape = 0.10;
  in.read_retry_steps = 3;
  in.retry_relief = 0.25;
  in.stripe_pages = 8;
  in.scrub_every_requests = 20000;
  in.scrub_rber_threshold = 0.05;
  if (aged) {
    AgingPlan& ag = f.aging;
    // Open at 90% of rated wear (the integrity anchor tracks the rated
    // budget), with no injected fault classes: the delta is bit errors,
    // not program/erase failures.
    ag.rated_pe_cycles = 3000;
    ag.initial_pe_cycles = 2700;
  }
  return c;
}

void register_benchmarks(std::uint64_t cap) {
  for (const auto& policy : integrity_policies()) {
    for (const bool aged : {false, true}) {
      const std::string name = cell_name(policy, aged);
      ExperimentCase c = integrity_case(policy, aged, cap);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [name, c](benchmark::State& state) {
            RunResult result;
            for (auto _ : state) {
              SyntheticTraceSource trace(c.profile);
              Simulator sim(c.options);
              result = sim.run(trace);
            }
            const IntegrityMetrics& in = result.fault.integrity;
            state.counters["p99_ms"] =
                static_cast<double>(result.response.p99()) / kMillisecond;
            state.counters["ecc"] = static_cast<double>(in.ecc_attempts);
            state.counters["rebuilds"] =
                static_cast<double>(in.parity_rebuilds);
            state.counters["lost"] = static_cast<double>(in.host_reads_lost);
            RunStore::instance().add(name, std::move(result));
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

/// One ledger record; the shared fields mirror bench_soak so
/// tools/perf_diff compares integrity ledgers unchanged, and the
/// recovery-tier block rides behind them as extra (ignored) columns.
std::string ledger_record(const std::string& name, const ExperimentCase& c,
                          const RunResult& r) {
  // REQB_LINT_ALLOW(no-wallclock): the ledger timestamp records *when*
  // the benchmark ran, for humans reading the cross-run history. It is
  // stamped after the deterministic run finished, lives on its own line,
  // and perf_diff never compares it.
  const std::int64_t wall_unix_s =
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  const double sim_seconds = static_cast<double>(r.sim_end) / 1e9;
  const double throughput =
      sim_seconds == 0.0 ? 0.0 : static_cast<double>(r.requests) / sim_seconds;
  const IntegrityMetrics& in = r.fault.integrity;
  std::ostringstream os;
  os << "{\n"
     << "\"case\": \"" << name << "\",\n"
     << "\"config_fingerprint\": " << config_fingerprint(c.options) << ",\n"
     << "\"trace_fingerprint\": "
     << SyntheticTraceSource(c.profile).identity_hash() << ",\n"
     << "\"wall_unix_s\": " << wall_unix_s << ",\n"
     << "\"requests\": " << r.requests << ",\n"
     << "\"throughput_rps\": " << format_double(throughput, 3) << ",\n"
     << "\"p50_ns\": " << r.response.p50() << ",\n"
     << "\"p99_ns\": " << r.response.p99() << ",\n"
     << "\"p999_ns\": " << r.response.p999() << ",\n"
     << "\"mean_ns\": " << static_cast<std::int64_t>(r.response.mean())
     << ",\n"
     << "\"hit_pct\": " << format_double(r.hit_ratio() * 100.0, 3) << ",\n"
     << "\"erases\": " << r.flash.erases << ",\n"
     << "\"ecc_attempts\": " << in.ecc_attempts << ",\n"
     << "\"retry_corrected\": " << in.retry_corrected << ",\n"
     << "\"parity_rebuilds\": " << in.parity_rebuilds << ",\n"
     << "\"uncorrectable\": " << in.uncorrectable << ",\n"
     << "\"patrol_scrubs\": " << in.patrol_scrubs << ",\n"
     << "\"integrity_recovery_ns\": " << in.recovery_time_total << ",\n"
     << "\"component_share\": {";
  const AttributionResult& a = r.attribution;
  for (std::size_t i = 0; i < kAttrComponents; ++i) {
    const double share =
        a.total_ns == 0 ? 0.0
                        : static_cast<double>(a.component_ns[i]) /
                              static_cast<double>(a.total_ns);
    // Truncate, don't round: the exact shares sum to 1, and rounding each
    // component up can push the printed sum past perf_diff's
    // sum-at-most-1 validation.
    const double floored = std::floor(share * 1e6) / 1e6;
    os << (i == 0 ? "" : ", ") << "\""
       << to_string(static_cast<AttrComponent>(i))
       << "\": " << format_double(floored, 6);
  }
  os << "}\n}";
  return os.str();
}

/// Appends `records` (comma-joined record texts) to the ledger, creating
/// it when missing. A file that does not look like a ledger is replaced
/// rather than corrupted further.
void append_to_ledger(const std::string& records) {
  std::string body;
  std::ifstream in(kLedgerPath);
  if (in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string existing = buf.str();
    const std::string head = kLedgerHead;
    const std::string tail = kLedgerTail;
    if (existing.size() > head.size() + tail.size() &&
        existing.compare(0, head.size(), head) == 0 &&
        existing.compare(existing.size() - tail.size(), tail.size(), tail) ==
            0) {
      body = existing.substr(head.size(),
                             existing.size() - head.size() - tail.size());
    }
  }
  if (!body.empty()) body += ",\n";
  body += records;
  write_file_atomic(kLedgerPath, kLedgerHead + body + kLedgerTail);
}

void report() {
  TextTable t({"Policy", "device", "p99 (ms)", "ecc", "retry", "rebuilds",
               "uncorr", "scrubs", "recovery (ms)"});
  std::string records;
  std::uint64_t cells = 0;
  std::vector<std::string> deltas;
  for (const auto& policy : integrity_policies()) {
    const RunResult* fresh =
        RunStore::instance().find(cell_name(policy, false));
    const RunResult* aged = RunStore::instance().find(cell_name(policy, true));
    for (const bool is_aged : {false, true}) {
      const RunResult* r = is_aged ? aged : fresh;
      if (r == nullptr) continue;
      const IntegrityMetrics& in = r->fault.integrity;
      t.add_row({policy, is_aged ? "aged" : "fresh",
                 format_double(static_cast<double>(r->response.p99()) /
                                   kMillisecond, 2),
                 std::to_string(in.ecc_attempts),
                 std::to_string(in.retry_corrected),
                 std::to_string(in.parity_rebuilds),
                 std::to_string(in.uncorrectable),
                 std::to_string(in.patrol_scrubs),
                 format_double(static_cast<double>(in.recovery_time_total) /
                                   kMillisecond, 2)});
      if (!records.empty()) records += ",\n";
      records += ledger_record(cell_name(policy, is_aged),
                               integrity_case(policy, is_aged, g_request_cap),
                               *r);
      ++cells;
    }
    if (fresh != nullptr && aged != nullptr) {
      std::ostringstream d;
      d << policy << ": ecc " << fresh->fault.integrity.ecc_attempts
        << " -> " << aged->fault.integrity.ecc_attempts << ", rebuilds "
        << fresh->fault.integrity.parity_rebuilds << " -> "
        << aged->fault.integrity.parity_rebuilds << ", recovery "
        << format_double(
               static_cast<double>(
                   fresh->fault.integrity.recovery_time_total) /
                   kMillisecond, 2)
        << " -> "
        << format_double(
               static_cast<double>(
                   aged->fault.integrity.recovery_time_total) /
                   kMillisecond, 2)
        << " ms";
      deltas.push_back(d.str());
    }
  }
  t.print(std::cout);
  std::cout << "\nFresh -> aged recovery-mix deltas:\n";
  for (const auto& d : deltas) std::cout << "  " << d << "\n";
  if (cells > 0) {
    append_to_ledger(records);
    std::cout << "Appended " << cells << " records to " << kLedgerPath
              << "\n";
  }
  expect_line("recovery mix",
              "worn cells escalate: more retries, rebuilds, scrub refreshes",
              "see aged rows: ecc/rebuild counts above their fresh cells");
}

}  // namespace
}  // namespace reqblock::benchx

int main(int argc, char** argv) {
  using namespace reqblock::benchx;
  g_request_cap = reqblock::bench_request_cap(500000);
  register_benchmarks(g_request_cap);
  return bench_main(argc, argv, report,
                    "Integrity: fresh vs aged recovery mix, drifting "
                    "workload");
}
