// Figure 11: number of page writes reaching flash memory. The paper
// reports Req-block issuing the fewest flash writes — 8.6%, 4.3% and
// 1.1% fewer than LRU, BPLRU and VBBMS on average — because keeping hot
// pages buffered absorbs more overwrites.
#include "bench_common.h"

namespace reqblock::benchx {
namespace {

const std::uint64_t kCacheMbs[] = {16, 32, 64};

std::string cell(const std::string& trace, const std::string& policy,
                 std::uint64_t mb) {
  return "fig11/" + trace + "/" + policy + "/" + std::to_string(mb) + "MB";
}

void register_benchmarks(std::uint64_t cap) {
  for (const auto& trace : paper_traces()) {
    for (const std::uint64_t mb : kCacheMbs) {
      for (const auto& policy : paper_policies()) {
        register_case(cell(trace, policy, mb),
                      make_case(trace, policy, mb, cap));
      }
    }
  }
}

void report() {
  TextTable t({"Trace (32MB)", "LRU", "BPLRU", "VBBMS", "Req-block"});
  for (const auto& trace : paper_traces()) {
    std::vector<std::string> row{trace};
    for (const auto& policy : paper_policies()) {
      const RunResult* r = RunStore::instance().find(cell(trace, policy, 32));
      row.push_back(r == nullptr
                        ? "-"
                        : std::to_string(r->flash_write_count()));
    }
    t.add_row(row);
  }
  std::cout << "Flash page writes (32MB cache):\n";
  t.print(std::cout);

  std::vector<double> vs_lru, vs_bplru, vs_vbbms;
  for (const auto& trace : paper_traces()) {
    for (const std::uint64_t mb : kCacheMbs) {
      const RunResult* rb =
          RunStore::instance().find(cell(trace, "reqblock", mb));
      if (rb == nullptr) continue;
      auto cut = [&](const char* p) {
        const RunResult* base =
            RunStore::instance().find(cell(trace, p, mb));
        return base == nullptr || base->flash_write_count() == 0
                   ? 0.0
                   : (1.0 - static_cast<double>(rb->flash_write_count()) /
                                static_cast<double>(
                                    base->flash_write_count())) *
                         100.0;
      };
      vs_lru.push_back(cut("lru"));
      vs_bplru.push_back(cut("bplru"));
      vs_vbbms.push_back(cut("vbbms"));
    }
  }
  expect_line("Req-block flash-write reduction vs LRU", "8.6%",
              format_double(mean_of(vs_lru), 1) + "%");
  expect_line("Req-block flash-write reduction vs BPLRU", "4.3%",
              format_double(mean_of(vs_bplru), 1) + "%");
  expect_line("Req-block flash-write reduction vs VBBMS", "1.1%",
              format_double(mean_of(vs_vbbms), 1) + "%");
}

}  // namespace
}  // namespace reqblock::benchx

int main(int argc, char** argv) {
  using namespace reqblock::benchx;
  register_benchmarks(reqblock::bench_request_cap(200000));
  return bench_main(argc, argv, report, "Fig. 11: flash write count");
}
