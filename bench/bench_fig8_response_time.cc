// Figure 8: overall I/O response time of LRU / BPLRU / VBBMS / Req-block
// across six traces and three cache sizes (16/32/64 MB), normalized to
// LRU. The paper reports Req-block reducing mean response time by 23.8%,
// 11.3% and 7.7% versus LRU, BPLRU and VBBMS respectively.
#include "bench_common.h"

namespace reqblock::benchx {
namespace {

const std::uint64_t kCacheMbs[] = {16, 32, 64};

std::string cell(const std::string& trace, const std::string& policy,
                 std::uint64_t mb) {
  return "fig8/" + trace + "/" + policy + "/" + std::to_string(mb) + "MB";
}

void register_benchmarks(std::uint64_t cap) {
  for (const auto& trace : paper_traces()) {
    for (const std::uint64_t mb : kCacheMbs) {
      for (const auto& policy : paper_policies()) {
        register_case(cell(trace, policy, mb),
                      make_case(trace, policy, mb, cap));
      }
    }
  }
}

void report() {
  for (const std::uint64_t mb : kCacheMbs) {
    TextTable t({"Trace (" + std::to_string(mb) + "MB)", "LRU (abs ms)",
                 "BPLRU", "VBBMS", "Req-block"});
    for (const auto& trace : paper_traces()) {
      const RunResult* lru = RunStore::instance().find(cell(trace, "lru", mb));
      if (lru == nullptr) continue;
      std::vector<std::string> row{
          trace, format_double(lru->mean_response_ms(), 3)};
      for (const auto& policy : {"bplru", "vbbms", "reqblock"}) {
        const RunResult* r = RunStore::instance().find(cell(trace, policy, mb));
        row.push_back(r == nullptr
                          ? "-"
                          : format_double(
                                r->response.mean() / lru->response.mean(),
                                3));
      }
      t.add_row(row);
    }
    std::cout << "Normalized I/O response time, " << mb << "MB cache:\n";
    t.print(std::cout);
    std::cout << "\n";
  }

  // Aggregate reductions of Req-block versus each baseline.
  std::vector<double> vs_lru, vs_bplru, vs_vbbms;
  for (const auto& trace : paper_traces()) {
    for (const std::uint64_t mb : kCacheMbs) {
      const RunResult* rb =
          RunStore::instance().find(cell(trace, "reqblock", mb));
      if (rb == nullptr) continue;
      auto reduction = [&](const char* p) {
        const RunResult* base = RunStore::instance().find(cell(trace, p, mb));
        return base == nullptr
                   ? 0.0
                   : (1.0 - rb->response.mean() / base->response.mean()) *
                         100.0;
      };
      vs_lru.push_back(reduction("lru"));
      vs_bplru.push_back(reduction("bplru"));
      vs_vbbms.push_back(reduction("vbbms"));
    }
  }
  expect_line("Req-block mean response reduction vs LRU", "23.8%",
              format_double(mean_of(vs_lru), 1) + "%");
  expect_line("Req-block mean response reduction vs BPLRU", "11.3%",
              format_double(mean_of(vs_bplru), 1) + "%");
  expect_line("Req-block mean response reduction vs VBBMS", "7.7%",
              format_double(mean_of(vs_vbbms), 1) + "%");
  std::cout << "Shape check: Req-block fastest on average; LRU pays for\n"
               "page-at-a-time eviction; BPLRU pays for single-channel\n"
               "whole-block flushes (worst tails).\n";
}

}  // namespace
}  // namespace reqblock::benchx

int main(int argc, char** argv) {
  using namespace reqblock::benchx;
  register_benchmarks(reqblock::bench_request_cap(200000));
  return bench_main(argc, argv, report,
                    "Fig. 8: I/O response time (normalized to LRU)");
}
