// Figure 12: replacement-metadata footprint of each scheme as a share of
// the data-cache capacity (node-size model: LRU 12 B/page, BPLRU & VBBMS
// 24 B/(virtual) block, Req-block 32 B/request block). The paper reports
// averages of 0.29% (LRU), 0.32% (BPLRU), 0.53% (VBBMS) and 0.41%
// (Req-block) — all negligible.
#include "bench_common.h"

namespace reqblock::benchx {
namespace {

const std::uint64_t kCacheMbs[] = {16, 32, 64};

std::string cell(const std::string& trace, const std::string& policy,
                 std::uint64_t mb) {
  return "fig12/" + trace + "/" + policy + "/" + std::to_string(mb) + "MB";
}

void register_benchmarks(std::uint64_t cap) {
  for (const auto& trace : paper_traces()) {
    for (const std::uint64_t mb : kCacheMbs) {
      for (const auto& policy : paper_policies()) {
        register_case(cell(trace, policy, mb),
                      make_case(trace, policy, mb, cap));
      }
    }
  }
}

void report() {
  TextTable t({"Policy", "16MB", "32MB", "64MB", "avg %", "paper avg %",
               "avg KB"});
  const std::map<std::string, std::string> paper_pct = {
      {"lru", "0.29"}, {"bplru", "0.32"}, {"vbbms", "0.53"},
      {"reqblock", "0.41"}};
  for (const auto& policy : paper_policies()) {
    std::vector<std::string> row;
    std::vector<double> all_pct;
    double avg_bytes = 0.0;
    int n = 0;
    row.push_back(policy);
    for (const std::uint64_t mb : kCacheMbs) {
      std::vector<double> pcts;
      for (const auto& trace : paper_traces()) {
        const RunResult* r =
            RunStore::instance().find(cell(trace, policy, mb));
        if (r == nullptr) continue;
        pcts.push_back(metadata_percent(*r));
        all_pct.push_back(metadata_percent(*r));
        avg_bytes += r->cache.metadata_bytes.mean();
        ++n;
      }
      row.push_back(format_double(mean_of(pcts), 3) + "%");
    }
    row.push_back(format_double(mean_of(all_pct), 3) + "%");
    row.push_back(paper_pct.at(policy) + "%");
    row.push_back(format_double(avg_bytes / std::max(1, n) / 1024.0, 1) +
                  "KB");
    t.add_row(row);
  }
  std::cout << "Metadata footprint as % of data-cache capacity\n"
               "(averaged over traces):\n";
  t.print(std::cout);
  std::cout << "\nShape check: every scheme stays well below 1% of the\n"
               "cache; Req-block's 32-byte request-block nodes cost about\n"
               "as little as the page/block schemes (paper: 67.6-271.6 KB\n"
               "across 16-64MB caches).\n";
}

}  // namespace
}  // namespace reqblock::benchx

int main(int argc, char** argv) {
  using namespace reqblock::benchx;
  register_benchmarks(reqblock::bench_request_cap(200000));
  return bench_main(argc, argv, report, "Fig. 12: space overhead");
}
