// Overload study: p99 latency vs arrival rate under a bursty open-loop
// workload, with and without the watermark background flusher.
//
// Each curve point multiplies the profile's arrival rate (divides the mean
// interarrival gap) and replays the same bursty trace through reqblock,
// LRU and BPLRU twice — synchronous-only eviction vs background flushing
// at 0.75/0.50 dirty watermarks. The claim under test: pre-draining victim
// batches in the idle gaps absorbs the next spike, so the p99 *write*
// latency drops measurably for reqblock once the device saturates.
//
// Machine-readable output: BENCH_overload.json (written atomically to the
// working directory), one record per (policy, bg, rate) cell.
#include <sstream>

#include "bench_common.h"
#include "util/atomic_file.h"

namespace reqblock::benchx {
namespace {

constexpr const char* kTrace = "usr_0";
const std::vector<double>& rate_multipliers() {
  static const std::vector<double> r = {1.0, 2.0, 4.0, 8.0};
  return r;
}

std::string cell_name(const std::string& policy, bool bg, double rate) {
  return "overload/" + policy + (bg ? "/bg" : "/sync") + "/x" +
         format_double(rate, 0);
}

ExperimentCase overload_case(const std::string& policy, bool bg, double rate,
                             std::uint64_t cap) {
  ExperimentCase c = make_case(kTrace, policy, 8, cap);
  // Spike/idle cycle: a fifth of each period arrives 10x faster, the rest
  // at the base rate — the shape the watermark flusher is built for.
  c.profile.burst_arrival_len = 500;
  c.profile.burst_arrival_period = 2500;
  c.profile.burst_arrival_factor = 10.0;
  c.profile.mean_interarrival_ns = static_cast<SimTime>(
      static_cast<double>(c.profile.mean_interarrival_ns) / rate);
  if (bg) {
    c.options.overload.bg_flush_high = 0.75;
    c.options.overload.bg_flush_low = 0.50;
  }
  return c;
}

void register_benchmarks(std::uint64_t cap) {
  for (const auto& policy : {"reqblock", "lru", "bplru"}) {
    for (const bool bg : {false, true}) {
      for (const double rate : rate_multipliers()) {
        register_case(cell_name(policy, bg, rate),
                      overload_case(policy, bg, rate, cap));
      }
    }
  }
}

void report() {
  TextTable t({"Policy", "Mode", "Rate", "p99 (ms)", "p99 write (ms)",
               "bg batches", "bg pages"});
  std::ostringstream json;
  json << "{\n  \"trace\": \"" << kTrace << "\",\n  \"curve\": [\n";
  bool first = true;
  int reqblock_bg_wins = 0;
  int reqblock_points = 0;
  for (const auto& policy : {"reqblock", "lru", "bplru"}) {
    for (const bool bg : {false, true}) {
      for (const double rate : rate_multipliers()) {
        const RunResult* r =
            RunStore::instance().find(cell_name(policy, bg, rate));
        if (r == nullptr) continue;
        t.add_row({policy, bg ? "bg-flush" : "sync",
                   "x" + format_double(rate, 0),
                   format_double(static_cast<double>(r->response.p99()) /
                                     kMillisecond, 2),
                   format_double(static_cast<double>(r->write_response.p99()) /
                                     kMillisecond, 2),
                   std::to_string(r->cache.bg_flush_batches),
                   std::to_string(r->cache.bg_flush_pages)});
        if (!first) json << ",\n";
        first = false;
        json << "    {\"policy\": \"" << policy << "\", \"bg_flush\": "
             << (bg ? "true" : "false") << ", \"rate_x\": "
             << format_double(rate, 0)
             << ", \"p99_ns\": " << r->response.p99()
             << ", \"p99_write_ns\": " << r->write_response.p99()
             << ", \"mean_ns\": " << static_cast<std::int64_t>(
                    r->response.mean())
             << ", \"bg_flush_batches\": " << r->cache.bg_flush_batches
             << ", \"bg_flush_pages\": " << r->cache.bg_flush_pages << "}";
        if (bg) {
          const RunResult* sync =
              RunStore::instance().find(cell_name(policy, false, rate));
          if (sync != nullptr && std::string(policy) == "reqblock") {
            ++reqblock_points;
            if (r->write_response.p99() < sync->write_response.p99()) {
              ++reqblock_bg_wins;
            }
          }
        }
      }
    }
  }
  json << "\n  ]\n}\n";
  t.print(std::cout);
  write_file_atomic("BENCH_overload.json", json.str());
  std::cout << "Wrote BENCH_overload.json\n";
  expect_line("bg flush lowers reqblock p99 write latency",
              "watermark pre-drain absorbs the spike",
              std::to_string(reqblock_bg_wins) + "/" +
                  std::to_string(reqblock_points) + " rate points");
}

}  // namespace
}  // namespace reqblock::benchx

int main(int argc, char** argv) {
  using namespace reqblock::benchx;
  register_benchmarks(reqblock::bench_request_cap(60000));
  return bench_main(argc, argv, report,
                    "Overload: p99 vs arrival rate, bg flush on/off");
}
