// Figure 10: average number of pages flushed per eviction operation
// (32 MB cache). The paper's ordering: BPLRU (whole blocks) evicts the
// most pages per operation, VBBMS (3-4 page virtual blocks) the fewest,
// and Req-block (request blocks) sits in between — large enough to
// exploit channel parallelism, small enough to avoid flush congestion.
#include "bench_common.h"

namespace reqblock::benchx {
namespace {

std::string cell(const std::string& trace, const std::string& policy) {
  return "fig10/" + trace + "/" + policy + "/32MB";
}

void register_benchmarks(std::uint64_t cap) {
  for (const auto& trace : paper_traces()) {
    for (const auto& policy : paper_policies()) {
      register_case(cell(trace, policy), make_case(trace, policy, 32, cap));
    }
  }
}

void report() {
  TextTable t({"Trace", "LRU", "BPLRU", "VBBMS", "Req-block"});
  bool ordering_holds = true;
  for (const auto& trace : paper_traces()) {
    std::vector<std::string> row{trace};
    double bplru = 0, vbbms = 0, reqblock = 0;
    for (const auto& policy : paper_policies()) {
      const RunResult* r = RunStore::instance().find(cell(trace, policy));
      if (r == nullptr) {
        row.push_back("-");
        continue;
      }
      const double mean = r->cache.eviction_batch.mean();
      row.push_back(format_double(mean, 2));
      if (policy == "bplru") bplru = mean;
      if (policy == "vbbms") vbbms = mean;
      if (policy == "reqblock") reqblock = mean;
    }
    ordering_holds =
        ordering_holds && vbbms <= reqblock && reqblock <= bplru;
    t.add_row(row);
  }
  std::cout << "Mean pages per eviction operation (32MB cache):\n";
  t.print(std::cout);
  expect_line("ordering VBBMS <= Req-block <= BPLRU", "holds in Fig. 10",
              ordering_holds ? "holds on every trace" : "violated (see table)");
  std::cout << "LRU always evicts exactly one page.\n";
}

}  // namespace
}  // namespace reqblock::benchx

int main(int argc, char** argv) {
  using namespace reqblock::benchx;
  register_benchmarks(reqblock::bench_request_cap(200000));
  return bench_main(argc, argv, report,
                    "Fig. 10: pages per eviction operation");
}
