// Microbenchmarks (A4): CPU cost of the policy hot paths — insert, hit,
// and victim selection — for every cache policy. The paper argues
// Req-block's run-time overhead is O(log n) lookups plus O(1) list
// adjustments (§4.2.5); these benchmarks put cycle numbers on that claim
// and let regressions in the policy data structures show up directly.
#include <benchmark/benchmark.h>

#include <memory>

#include "cache/policy_factory.h"
#include "trace/io_request.h"
#include "util/rng.h"

namespace reqblock {
namespace {

constexpr std::uint64_t kCapacity = 8192;  // pages (32 MB)

PolicyConfig config_for(const std::string& name) {
  PolicyConfig cfg;
  cfg.name = name;
  cfg.capacity_pages = kCapacity;
  cfg.pages_per_block = 64;
  return cfg;
}

IoRequest request_for(std::uint64_t id, Lpn lpn, std::uint32_t pages) {
  IoRequest r;
  r.id = id;
  r.type = IoType::kWrite;
  r.lpn = lpn;
  r.pages = pages;
  return r;
}

/// Steady-state churn: one miss-insert (with eviction when full) per
/// iteration, mimicking the manager's write-miss path.
void bm_insert_evict(benchmark::State& state, const std::string& name) {
  auto policy = make_policy(config_for(name));
  Rng rng(1);
  std::uint64_t id = 0;
  Lpn next = 0;
  for (auto _ : state) {
    const IoRequest req = request_for(++id, next, 4);
    policy->begin_request(req);
    for (std::uint32_t i = 0; i < 4; ++i) {
      while (policy->pages() >= kCapacity) {
        auto victim = policy->select_victim();
        if (victim.empty()) break;
      }
      policy->on_insert(next++, req, true);
    }
  }
  state.SetItemsProcessed(state.iterations() * 4);
}

/// Hit path: repeated promotions of resident pages.
void bm_hit(benchmark::State& state, const std::string& name) {
  auto policy = make_policy(config_for(name));
  // Pre-fill with 4-page requests.
  std::uint64_t id = 0;
  for (Lpn l = 0; l < kCapacity; l += 4) {
    const IoRequest req = request_for(++id, l, 4);
    policy->begin_request(req);
    for (std::uint32_t i = 0; i < 4; ++i) policy->on_insert(l + i, req, true);
  }
  Rng rng(2);
  for (auto _ : state) {
    const Lpn lpn = rng.next_below(kCapacity);
    const IoRequest req = request_for(++id, lpn, 1);
    policy->begin_request(req);
    policy->on_hit(lpn, req, false);
  }
  state.SetItemsProcessed(state.iterations());
}

void register_all() {
  for (const auto& name : known_policy_names()) {
    benchmark::RegisterBenchmark(("insert_evict/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   bm_insert_evict(s, name);
                                 });
    benchmark::RegisterBenchmark(("hit/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   bm_hit(s, name);
                                 });
  }
}

}  // namespace
}  // namespace reqblock

int main(int argc, char** argv) {
  reqblock::register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
