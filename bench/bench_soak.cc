// Long-horizon soak: fresh-device vs end-of-life per-policy deltas on a
// GC-pressured device, appended as fingerprinted records to
// BENCH_soak.json.
//
// Each policy runs the same drifting workload twice. The *fresh* cell is
// a clean device; the *aged* cell opens near its rated P/E budget
// (AgingPlan::initial_pe_cycles) with wear-ramped program/erase faults,
// read-disturb migration, retention scrubbing, and the end-of-life
// read-mostly floors armed. Both cells rotate the hot set and cycle the
// arrival rate (drift/diurnal knobs), so the fresh-vs-aged delta
// isolates device aging under a workload that refuses to sit still.
//
// The footprint is shrunk onto a 2 GB device (same Table 1 geometry
// ratios) so a multi-million-request soak overwrites the free space
// several times: garbage collection, wear, and block retirement all
// accumulate within the run instead of needing billions of requests.
//
// Checkpointing: set REQBLOCK_SOAK_CHECKPOINT_DIR to checkpoint every
// cell (REQBLOCK_SOAK_CHECKPOINT_EVERY served requests, default 200000)
// into <dir>/<cell>/; a rerun after a kill resumes from the newest
// checkpoint and produces byte-identical results, exactly like
// trace_replay --checkpoint-dir.
//
// Ledger format matches BENCH_attribution.json (tools/perf_diff reads
// both): {"records": [...]}, every field deterministic except
// wall_unix_s on its own line. Soak records append aging columns
// (retired blocks, refresh traffic, shed writes) after the shared ones;
// perf_diff ignores fields it does not know.
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "bench_common.h"
#include "sim/checkpoint.h"
#include "sim/session.h"
#include "util/atomic_file.h"

namespace reqblock::benchx {
namespace {

constexpr const char* kLedgerPath = "BENCH_soak.json";
constexpr const char* kLedgerHead = "{\"records\": [\n";
constexpr const char* kLedgerTail = "\n]}\n";

/// Request cap the registered cells ran with; report() rebuilds each case
/// with the same cap so the ledger fingerprints match the executed runs.
std::uint64_t g_request_cap = 0;

const std::vector<std::string>& soak_policies() { return paper_policies(); }

std::string cell_name(const std::string& policy, bool aged) {
  return "soak/" + policy + (aged ? "/aged" : "/fresh");
}

ExperimentCase soak_case(const std::string& policy, bool aged,
                         std::uint64_t cap) {
  ExperimentCase c = make_case("usr_0", policy, 8, cap);
  // Shrink the usr_0 footprint (~1.5 GB logical) onto a 2 GB device so
  // the soak overwrites the free space repeatedly: GC erases, and with
  // them wear, happen by the tens of thousands within a few million
  // requests.
  c.profile.hot_extents = 2000;
  c.profile.cold_stream_pages = 1ULL << 16;
  c.options.ssd.capacity_bytes = 2ULL << 30;
  // Workload drift in BOTH cells: rotate the hot set a prime step every
  // 50k requests and swing the arrival rate +/-40% per 120k-request
  // diurnal cycle. Identical traces keep the fresh-vs-aged comparison a
  // pure device-aging delta.
  c.profile.drift_period = 50000;
  c.profile.drift_step = 211;
  c.profile.diurnal_period = 120000;
  c.profile.diurnal_amplitude = 0.4;
  c.options.telemetry.attribution = true;
  c.label = cell_name(policy, aged);
  if (aged) {
    FaultPlan& f = c.options.fault;
    f.seed = 0x50a7;
    f.program_fail_prob = 0.0005;
    f.read_fail_prob = 0.0002;
    f.erase_fail_prob = 0.001;
    AgingPlan& ag = f.aging;
    // Open at 90% of rated wear: the quadratic endurance ramp starts the
    // run at ~0.8x its maxima and keeps climbing as GC consumes cycles.
    ag.rated_pe_cycles = 3000;
    ag.initial_pe_cycles = 2700;
    ag.wear_program_fail_max = 0.01;
    ag.wear_erase_fail_max = 0.02;
    ag.read_disturb_limit = 128;
    ag.read_disturb_fail_max = 0.01;
    ag.retention_age_limit = 500000 * kMillisecond;  // 500 sim-seconds
    ag.retention_fail_max = 0.005;
    // End-of-life floors stay at their defaults (auto free-block floor,
    // no spare floor): the device degrades if retirement eats enough of
    // a plane, but is not forced read-mostly from the start.
  }
  return c;
}

/// Like bench_common's register_case, plus optional checkpointing via
/// REQBLOCK_SOAK_CHECKPOINT_DIR (each cell gets its own subdirectory;
/// reruns resume from the newest checkpoint).
void register_soak_case(const std::string& name, ExperimentCase c) {
  benchmark::RegisterBenchmark(
      name.c_str(),
      [name, c](benchmark::State& state) {
        std::string dir;
        if (const char* env = std::getenv("REQBLOCK_SOAK_CHECKPOINT_DIR");
            env != nullptr && *env != '\0') {
          dir = std::string(env) + "/";
          for (const char ch : name) dir += ch == '/' ? '_' : ch;
        }
        RunResult result;
        for (auto _ : state) {
          SyntheticTraceSource trace(c.profile);
          if (dir.empty()) {
            Simulator sim(c.options);
            result = sim.run(trace);
          } else {
            CheckpointOptions ckpt;
            ckpt.dir = dir;
            ckpt.every_n_requests = 200000;
            if (const char* every =
                    std::getenv("REQBLOCK_SOAK_CHECKPOINT_EVERY");
                every != nullptr && *every != '\0') {
              ckpt.every_n_requests = std::strtoull(every, nullptr, 10);
            }
            result = run_with_checkpoints(
                c.options, trace, ckpt, find_latest_checkpoint(dir, "run"));
          }
        }
        state.counters["hit_pct"] = result.hit_ratio() * 100.0;
        state.counters["p99_ms"] =
            static_cast<double>(result.response.p99()) / kMillisecond;
        state.counters["erases"] =
            static_cast<double>(result.flash.erases);
        state.counters["retired"] =
            static_cast<double>(result.fault.blocks_retired);
        RunStore::instance().add(name, std::move(result));
      })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

void register_benchmarks(std::uint64_t cap) {
  for (const auto& policy : soak_policies()) {
    register_soak_case(cell_name(policy, false), soak_case(policy, false, cap));
    register_soak_case(cell_name(policy, true), soak_case(policy, true, cap));
  }
}

double gc_share(const RunResult& r) {
  const AttributionResult& a = r.attribution;
  if (a.total_ns == 0) return 0.0;
  return static_cast<double>(
             a.component_ns[static_cast<std::size_t>(AttrComponent::kGc)]) /
         static_cast<double>(a.total_ns);
}

/// One ledger record; the shared fields mirror bench_attribution so
/// tools/perf_diff compares soak ledgers unchanged, and the aging block
/// rides behind them as extra (ignored) columns.
std::string ledger_record(const std::string& name, const ExperimentCase& c,
                          const RunResult& r) {
  // REQB_LINT_ALLOW(no-wallclock): the ledger timestamp records *when*
  // the benchmark ran, for humans reading the cross-run history. It is
  // stamped after the deterministic run finished, lives on its own line,
  // and perf_diff never compares it.
  const std::int64_t wall_unix_s =
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  const double sim_seconds = static_cast<double>(r.sim_end) / 1e9;
  const double throughput =
      sim_seconds == 0.0 ? 0.0 : static_cast<double>(r.requests) / sim_seconds;
  std::ostringstream os;
  os << "{\n"
     << "\"case\": \"" << name << "\",\n"
     << "\"config_fingerprint\": " << config_fingerprint(c.options) << ",\n"
     << "\"trace_fingerprint\": "
     << SyntheticTraceSource(c.profile).identity_hash() << ",\n"
     << "\"wall_unix_s\": " << wall_unix_s << ",\n"
     << "\"requests\": " << r.requests << ",\n"
     << "\"throughput_rps\": " << format_double(throughput, 3) << ",\n"
     << "\"p50_ns\": " << r.response.p50() << ",\n"
     << "\"p99_ns\": " << r.response.p99() << ",\n"
     << "\"p999_ns\": " << r.response.p999() << ",\n"
     << "\"mean_ns\": " << static_cast<std::int64_t>(r.response.mean())
     << ",\n"
     << "\"hit_pct\": " << format_double(r.hit_ratio() * 100.0, 3) << ",\n"
     << "\"erases\": " << r.flash.erases << ",\n"
     << "\"blocks_retired\": " << r.fault.blocks_retired << ",\n"
     << "\"read_disturb_migrations\": " << r.fault.read_disturb_migrations
     << ",\n"
     << "\"retention_scrubs\": " << r.fault.retention_scrubs << ",\n"
     << "\"degraded_write_sheds\": " << r.fault.degraded_write_sheds << ",\n"
     << "\"component_share\": {";
  const AttributionResult& a = r.attribution;
  for (std::size_t i = 0; i < kAttrComponents; ++i) {
    const double share =
        a.total_ns == 0 ? 0.0
                        : static_cast<double>(a.component_ns[i]) /
                              static_cast<double>(a.total_ns);
    // Truncate, don't round: the exact shares sum to 1, and rounding each
    // of the 8 components up can push the printed sum past perf_diff's
    // sum-at-most-1 validation.
    const double floored = std::floor(share * 1e6) / 1e6;
    os << (i == 0 ? "" : ", ") << "\""
       << to_string(static_cast<AttrComponent>(i))
       << "\": " << format_double(floored, 6);
  }
  os << "}\n}";
  return os.str();
}

/// Appends `records` (comma-joined record texts) to the ledger, creating
/// it when missing. A file that does not look like a ledger is replaced
/// rather than corrupted further.
void append_to_ledger(const std::string& records) {
  std::string body;
  std::ifstream in(kLedgerPath);
  if (in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string existing = buf.str();
    const std::string head = kLedgerHead;
    const std::string tail = kLedgerTail;
    if (existing.size() > head.size() + tail.size() &&
        existing.compare(0, head.size(), head) == 0 &&
        existing.compare(existing.size() - tail.size(), tail.size(), tail) ==
            0) {
      body = existing.substr(head.size(),
                             existing.size() - head.size() - tail.size());
    }
  }
  if (!body.empty()) body += ",\n";
  body += records;
  write_file_atomic(kLedgerPath, kLedgerHead + body + kLedgerTail);
}

void report() {
  TextTable t({"Policy", "device", "hit", "p99 (ms)", "GC share", "erases",
               "retired", "migr", "scrubs", "sheds"});
  std::string records;
  std::uint64_t cells = 0;
  std::vector<std::string> deltas;
  for (const auto& policy : soak_policies()) {
    const RunResult* fresh =
        RunStore::instance().find(cell_name(policy, false));
    const RunResult* aged = RunStore::instance().find(cell_name(policy, true));
    for (const bool is_aged : {false, true}) {
      const RunResult* r = is_aged ? aged : fresh;
      if (r == nullptr) continue;
      t.add_row({policy, is_aged ? "aged" : "fresh",
                 format_double(r->hit_ratio() * 100.0, 2) + "%",
                 format_double(static_cast<double>(r->response.p99()) /
                                   kMillisecond, 2),
                 format_double(gc_share(*r) * 100.0, 1) + "%",
                 std::to_string(r->flash.erases),
                 std::to_string(r->fault.blocks_retired),
                 std::to_string(r->fault.read_disturb_migrations),
                 std::to_string(r->fault.retention_scrubs),
                 std::to_string(r->fault.degraded_write_sheds)});
      if (!records.empty()) records += ",\n";
      records += ledger_record(cell_name(policy, is_aged),
                               soak_case(policy, is_aged, g_request_cap), *r);
      ++cells;
    }
    if (fresh != nullptr && aged != nullptr) {
      const double p99_fresh =
          static_cast<double>(fresh->response.p99()) / kMillisecond;
      const double p99_aged =
          static_cast<double>(aged->response.p99()) / kMillisecond;
      std::ostringstream d;
      d << policy << ": p99 " << format_double(p99_fresh, 2) << " -> "
        << format_double(p99_aged, 2) << " ms, hit "
        << format_double(fresh->hit_ratio() * 100.0, 2) << " -> "
        << format_double(aged->hit_ratio() * 100.0, 2) << "%, "
        << aged->fault.blocks_retired << " blocks retired";
      deltas.push_back(d.str());
    }
  }
  t.print(std::cout);
  std::cout << "\nFresh -> aged deltas:\n";
  for (const auto& d : deltas) std::cout << "  " << d << "\n";
  if (cells > 0) {
    append_to_ledger(records);
    std::cout << "Appended " << cells << " records to " << kLedgerPath
              << "\n";
  }
  expect_line("aging effect",
              "worn device retires blocks and lifts the tail",
              "see aged rows: retired > 0, p99(aged) >= p99(fresh)");
}

}  // namespace
}  // namespace reqblock::benchx

int main(int argc, char** argv) {
  using namespace reqblock::benchx;
  g_request_cap = reqblock::bench_request_cap(2000000);
  register_benchmarks(g_request_cap);
  return bench_main(argc, argv, report,
                    "Soak: fresh vs aged device, drifting workload");
}
