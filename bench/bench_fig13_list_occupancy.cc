// Figure 13: pages held by Req-block's three lists (IRL/SRL/DRL) over
// time, sampled every 10,000 requests on a 32 MB cache. The paper
// observes that SRL holds the most cached pages in most traces and DRL
// the fewest — confirming that small request blocks earn long residency
// while split-out fragments of large requests stay rare.
#include "bench_common.h"

namespace reqblock::benchx {
namespace {

void register_benchmarks(std::uint64_t cap) {
  for (const auto& trace : paper_traces()) {
    ExperimentCase c = make_case(trace, "reqblock", 32, cap);
    c.options.occupancy_log_interval = 10000;
    register_case("fig13/" + trace, c);
  }
}

void report() {
  int srl_largest = 0, drl_smallest = 0, total = 0;
  for (const auto& trace : paper_traces()) {
    const RunResult* r = RunStore::instance().find("fig13/" + trace);
    if (r == nullptr || r->occupancy_series.empty()) continue;
    std::cout << trace << " (pages in IRL/SRL/DRL every 10k requests):\n";
    TextTable t({"@requests", "IRL", "SRL", "DRL", "blocks(I/S/D)"});
    // Print up to 10 evenly spaced samples.
    const auto& series = r->occupancy_series;
    const std::size_t step = std::max<std::size_t>(1, series.size() / 10);
    for (std::size_t i = 0; i < series.size(); i += step) {
      const auto& o = series[i];
      t.add_row({std::to_string((i + 1) * 10000),
                 std::to_string(o.irl_pages), std::to_string(o.srl_pages),
                 std::to_string(o.drl_pages),
                 std::to_string(o.irl_blocks) + "/" +
                     std::to_string(o.srl_blocks) + "/" +
                     std::to_string(o.drl_blocks)});
    }
    t.print(std::cout);

    // Steady-state check over the second half of the series.
    double irl = 0, srl = 0, drl = 0;
    std::size_t n = 0;
    for (std::size_t i = series.size() / 2; i < series.size(); ++i) {
      irl += static_cast<double>(series[i].irl_pages);
      srl += static_cast<double>(series[i].srl_pages);
      drl += static_cast<double>(series[i].drl_pages);
      ++n;
    }
    if (n > 0) {
      ++total;
      if (srl >= irl && srl >= drl) ++srl_largest;
      if (drl <= irl && drl <= srl) ++drl_smallest;
    }
    std::cout << "\n";
  }
  expect_line("SRL holds the most cached pages", "in most traces",
              std::to_string(srl_largest) + "/" + std::to_string(total) +
                  " traces (steady state)");
  expect_line("DRL holds the fewest cached pages", "in all traces",
              std::to_string(drl_smallest) + "/" + std::to_string(total) +
                  " traces (steady state)");
}

}  // namespace
}  // namespace reqblock::benchx

int main(int argc, char** argv) {
  using namespace reqblock::benchx;
  register_benchmarks(reqblock::bench_request_cap(300000));
  return bench_main(argc, argv, report,
                    "Fig. 13: Req-block list occupancy over time");
}
