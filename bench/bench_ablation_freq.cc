// Ablation A1: which terms of the eviction score (Eq. 1) matter?
//
//   full        Access_cnt / (Page_num * age)   — the paper
//   no-time     Access_cnt / Page_num           — drop recency decay
//   no-size     Access_cnt / age                — drop the size bias
//   count-only  Access_cnt                      — pure frequency
//
// Run on every trace at 32 MB. Expectation: the full formula is the most
// robust across traces; dropping the size term hurts most on large-write
// traces (src1_2, proj_0) because big cold blocks stop being penalized.
#include "bench_common.h"

namespace reqblock::benchx {
namespace {

const FreqMode kModes[] = {FreqMode::kFull, FreqMode::kNoTime,
                           FreqMode::kNoSize, FreqMode::kCountOnly};

std::string cell(const std::string& trace, FreqMode mode) {
  return std::string("ablation_freq/") + trace + "/" + to_string(mode);
}

void register_benchmarks(std::uint64_t cap) {
  for (const auto& trace : paper_traces()) {
    for (const FreqMode mode : kModes) {
      ExperimentCase c = make_case(trace, "reqblock", 32, cap);
      c.options.policy.reqblock.freq_mode = mode;
      register_case(cell(trace, mode), c);
    }
  }
}

void report() {
  TextTable t({"Trace", "full (hit%)", "no-time", "no-size", "count-only"});
  int full_best_or_close = 0;
  for (const auto& trace : paper_traces()) {
    std::vector<std::string> row{trace};
    const RunResult* full = RunStore::instance().find(
        cell(trace, FreqMode::kFull));
    if (full == nullptr) continue;
    row[0] = trace;
    row.push_back(format_double(full->hit_ratio() * 100, 2) + "%");
    double best_other = 0.0;
    for (const FreqMode mode :
         {FreqMode::kNoTime, FreqMode::kNoSize, FreqMode::kCountOnly}) {
      const RunResult* r = RunStore::instance().find(cell(trace, mode));
      if (r == nullptr) {
        row.push_back("-");
        continue;
      }
      best_other = std::max(best_other, r->hit_ratio());
      row.push_back(format_double(r->hit_ratio() / full->hit_ratio(), 3));
    }
    if (full->hit_ratio() >= best_other * 0.98) ++full_best_or_close;
    t.add_row(row);
  }
  std::cout << "Hit ratio by Eq. 1 variant (normalized to full):\n";
  t.print(std::cout);
  expect_line("full Eq. 1 best or within 2% of best",
              "design claim (paper uses the full formula)",
              std::to_string(full_best_or_close) + "/6 traces");
}

}  // namespace
}  // namespace reqblock::benchx

int main(int argc, char** argv) {
  using namespace reqblock::benchx;
  register_benchmarks(reqblock::bench_request_cap(200000));
  return bench_main(argc, argv, report,
                    "Ablation A1: eviction-score variants");
}
