// Shared infrastructure for the per-figure benchmark binaries.
//
// Each binary registers one google-benchmark per experiment cell (a
// (trace, policy, cache size, ...) simulation, Iterations(1) — the runs
// are deterministic, so repetition buys nothing), collects the RunResults
// in a process-global store, and prints a paper-style table plus a
// paper-vs-measured comparison after google-benchmark finishes.
//
// Runtime is controlled by REQBLOCK_BENCH_REQUESTS (requests per trace,
// 0 = full-length traces) and standard --benchmark_filter flags.
#pragma once

#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "trace/profiles.h"
#include "util/strings.h"
#include "util/table.h"

namespace reqblock::benchx {

/// Results of every case executed so far, keyed by registration name.
class RunStore {
 public:
  static RunStore& instance() {
    static RunStore store;
    return store;
  }

  void add(const std::string& name, RunResult result) {
    order_.push_back(name);
    results_.emplace(name, std::move(result));
  }

  const RunResult* find(const std::string& name) const {
    const auto it = results_.find(name);
    return it == results_.end() ? nullptr : &it->second;
  }

  /// All results in registration order.
  std::vector<const RunResult*> all() const {
    std::vector<const RunResult*> out;
    out.reserve(order_.size());
    for (const auto& name : order_) out.push_back(&results_.at(name));
    return out;
  }

 private:
  std::map<std::string, RunResult> results_;
  std::vector<std::string> order_;
};

/// Registers a single-simulation benchmark. Counters exported: hit ratio,
/// mean/p99 response, flash writes, pages/eviction.
inline void register_case(const std::string& name, ExperimentCase c) {
  benchmark::RegisterBenchmark(
      name.c_str(),
      [name, c](benchmark::State& state) {
        RunResult result;
        for (auto _ : state) {
          SyntheticTraceSource trace(c.profile);
          Simulator sim(c.options);
          result = sim.run(trace);
        }
        state.counters["hit_pct"] = result.hit_ratio() * 100.0;
        state.counters["mean_ms"] = result.mean_response_ms();
        state.counters["p99_ms"] =
            static_cast<double>(result.response.p99()) / kMillisecond;
        state.counters["flash_writes"] =
            static_cast<double>(result.flash_write_count());
        state.counters["pages_per_evict"] =
            result.cache.eviction_batch.mean();
        RunStore::instance().add(name, std::move(result));
      })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

/// Builds a standard experiment cell.
inline ExperimentCase make_case(const std::string& trace_name,
                                const std::string& policy,
                                std::uint64_t cache_mb, std::uint64_t cap,
                                std::uint32_t delta = 5) {
  ExperimentCase c;
  c.profile = profiles::by_name(trace_name).capped(cap);
  c.options = make_sim_options(policy, cache_mb, delta);
  c.label = trace_name + "/" + policy;
  return c;
}

/// Paper policy display order.
inline const std::vector<std::string>& paper_policies() {
  static const std::vector<std::string> p = {"lru", "bplru", "vbbms",
                                             "reqblock"};
  return p;
}

inline const std::vector<std::string>& paper_traces() {
  static const std::vector<std::string> t = {"hm_1", "lun_1", "usr_0",
                                             "src1_2", "ts_0", "proj_0"};
  return t;
}

/// Runs google-benchmark, then the binary-specific report.
inline int bench_main(int argc, char** argv,
                      const std::function<void()>& report,
                      const std::string& title) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  std::cout << "=== " << title << " ===\n";
  std::cout << "Device: Table 1 geometry on a "
            << format_bytes(static_cast<double>(
                   SsdConfig::experiment_default().capacity_bytes))
            << " device (see DESIGN.md).\n"
            << "Requests per trace via REQBLOCK_BENCH_REQUESTS (0 = full "
               "traces).\n\n";
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::cout << "\n";
  report();
  return 0;
}

/// Convenience: mean over a set of per-trace ratios.
inline double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

/// Prints one paper-vs-measured line.
inline void expect_line(const std::string& what, const std::string& paper,
                        const std::string& measured) {
  std::cout << "  " << what << ": paper " << paper << " | measured "
            << measured << "\n";
}

}  // namespace reqblock::benchx
