// Figure 9: cache hit ratio of LRU / BPLRU / VBBMS / Req-block across six
// traces and three cache sizes, normalized to Req-block. The paper
// reports Req-block improving hits by 42.9%, 23.6% and 4.1% on average
// versus LRU, BPLRU and VBBMS, with BPLRU dropping below LRU on ts_0.
#include "bench_common.h"

namespace reqblock::benchx {
namespace {

const std::uint64_t kCacheMbs[] = {16, 32, 64};

std::string cell(const std::string& trace, const std::string& policy,
                 std::uint64_t mb) {
  return "fig9/" + trace + "/" + policy + "/" + std::to_string(mb) + "MB";
}

void register_benchmarks(std::uint64_t cap) {
  for (const auto& trace : paper_traces()) {
    for (const std::uint64_t mb : kCacheMbs) {
      for (const auto& policy : paper_policies()) {
        register_case(cell(trace, policy, mb),
                      make_case(trace, policy, mb, cap));
      }
    }
  }
}

void report() {
  for (const std::uint64_t mb : kCacheMbs) {
    TextTable t({"Trace (" + std::to_string(mb) + "MB)",
                 "Req-block (abs)", "LRU", "BPLRU", "VBBMS"});
    for (const auto& trace : paper_traces()) {
      const RunResult* rb =
          RunStore::instance().find(cell(trace, "reqblock", mb));
      if (rb == nullptr) continue;
      std::vector<std::string> row{
          trace, format_double(rb->hit_ratio() * 100, 2) + "%"};
      for (const auto& policy : {"lru", "bplru", "vbbms"}) {
        const RunResult* r =
            RunStore::instance().find(cell(trace, policy, mb));
        row.push_back(r == nullptr ? "-"
                                   : format_double(
                                         r->hit_ratio() / rb->hit_ratio(),
                                         3));
      }
      t.add_row(row);
    }
    std::cout << "Hit ratio normalized to Req-block, " << mb
              << "MB cache:\n";
    t.print(std::cout);
    std::cout << "\n";
  }

  std::vector<double> vs_lru, vs_bplru, vs_vbbms;
  bool bplru_below_lru_ts0 = false;
  for (const auto& trace : paper_traces()) {
    for (const std::uint64_t mb : kCacheMbs) {
      const RunResult* rb =
          RunStore::instance().find(cell(trace, "reqblock", mb));
      if (rb == nullptr) continue;
      auto gain = [&](const char* p) {
        const RunResult* base =
            RunStore::instance().find(cell(trace, p, mb));
        return base == nullptr
                   ? 0.0
                   : (rb->hit_ratio() / base->hit_ratio() - 1.0) * 100.0;
      };
      vs_lru.push_back(gain("lru"));
      vs_bplru.push_back(gain("bplru"));
      vs_vbbms.push_back(gain("vbbms"));
      if (trace == "ts_0") {
        const RunResult* lru = RunStore::instance().find(cell(trace, "lru", mb));
        const RunResult* bp =
            RunStore::instance().find(cell(trace, "bplru", mb));
        if (lru != nullptr && bp != nullptr &&
            bp->hit_ratio() < lru->hit_ratio()) {
          bplru_below_lru_ts0 = true;
        }
      }
    }
  }
  expect_line("Req-block hit gain vs LRU", "+42.9% avg (up to +100%)",
              "+" + format_double(mean_of(vs_lru), 1) + "% avg");
  expect_line("Req-block hit gain vs BPLRU", "+23.6% avg",
              "+" + format_double(mean_of(vs_bplru), 1) + "% avg");
  expect_line("Req-block hit gain vs VBBMS", "+4.1% avg",
              "+" + format_double(mean_of(vs_vbbms), 1) + "% avg");
  expect_line("BPLRU below LRU on ts_0 (small requests vs 64-page blocks)",
              "yes", bplru_below_lru_ts0 ? "yes" : "no");
}

}  // namespace
}  // namespace reqblock::benchx

int main(int argc, char** argv) {
  using namespace reqblock::benchx;
  register_benchmarks(reqblock::bench_request_cap(200000));
  return bench_main(argc, argv, report,
                    "Fig. 9: hit ratio (normalized to Req-block)");
}
