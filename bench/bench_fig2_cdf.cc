// Figure 2: CDF of page inserts and page hits as a function of the size
// of the write request that inserted the page (LRU, 16 MB cache).
//
// Reproduces the paper's motivation: pages written by small requests
// contribute the large majority of cache hits while occupying a small
// share of the cache, and the imbalance is strongest on hm_1 / proj_0.
#include "bench_common.h"

namespace reqblock::benchx {
namespace {

void register_benchmarks(std::uint64_t cap) {
  for (const auto& trace : paper_traces()) {
    register_case("fig2/" + trace + "/lru/16MB",
                  make_case(trace, "lru", 16, cap));
  }
}

struct Cdf {
  // cumulative fraction of inserts / hits attributable to requests of
  // size <= s pages, for a few representative s values.
  double insert_at(const RunResult& r, std::uint32_t s) const {
    return cum(r.cache.inserts_by_req_size, s);
  }
  double hit_at(const RunResult& r, std::uint32_t s) const {
    return cum(r.cache.hits_by_req_size, s);
  }

 private:
  static double cum(const std::vector<std::uint64_t>& by_size,
                    std::uint32_t s) {
    std::uint64_t below = 0, total = by_size[0];  // bucket 0 = oversized
    for (std::uint32_t i = 1; i < by_size.size(); ++i) {
      total += by_size[i];
      if (i <= s) below += by_size[i];
    }
    return total == 0 ? 0.0
                      : static_cast<double>(below) /
                            static_cast<double>(total);
  }
};

void report() {
  const Cdf cdf;
  TextTable t({"Trace", "avg-wr (pages)", "inserts<=avg", "hits<=avg",
               "inserts<=4p", "hits<=4p"});
  for (const auto& trace : paper_traces()) {
    const RunResult* r =
        RunStore::instance().find("fig2/" + trace + "/lru/16MB");
    if (r == nullptr) continue;
    const auto paper = profiles::paper_stats(trace);
    const auto avg_pages =
        static_cast<std::uint32_t>(paper.write_size_kb / 4.0 + 0.5);
    t.add_row({trace, std::to_string(avg_pages),
               format_double(cdf.insert_at(*r, avg_pages) * 100, 1) + "%",
               format_double(cdf.hit_at(*r, avg_pages) * 100, 1) + "%",
               format_double(cdf.insert_at(*r, 4) * 100, 1) + "%",
               format_double(cdf.hit_at(*r, 4) * 100, 1) + "%"});
  }
  t.print(std::cout);
  std::cout << "\nPaper (Fig. 2 / Observation 1): pages of small requests\n"
               "(size <= the trace's average) contribute ~80% of all page\n"
               "hits while small requests insert a clear minority of the\n"
               "cached pages; strongest on hm_1 and proj_0 (>80% of hits\n"
               "from <20% of inserts).\n";
}

}  // namespace
}  // namespace reqblock::benchx

int main(int argc, char** argv) {
  using namespace reqblock::benchx;
  register_benchmarks(reqblock::bench_request_cap(300000));
  return bench_main(argc, argv, report,
                    "Fig. 2: insert/hit CDF by request size (LRU, 16MB)");
}
