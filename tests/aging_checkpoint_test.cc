// Aged devices and drifting workloads under the determinism and
// checkpoint contracts: byte-identical CSVs at 1, 4, and hardware threads
// for fresh, aged, and aged+drift cells; a session snapshotted mid-soak
// with live wear state serializes byte-stably and resumes to
// byte-identical results; the config fingerprint covers every aging knob
// (and refuses per-knob mismatched restores); drift knobs ride the trace
// identity; and a disabled aging block leaves runs bit-identical to
// pre-aging builds.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "sim/checkpoint.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/session.h"
#include "snapshot/snapshot.h"
#include "test_util.h"
#include "trace/synthetic.h"
#include "util/audit.h"

namespace reqblock {
namespace {

namespace fs = std::filesystem;

struct FullAuditScope {
  AuditLevel previous = set_audit_level(AuditLevel::kFull);
  ~FullAuditScope() { set_audit_level(previous); }
};

std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/agingckpt_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

WorkloadProfile soak_profile(bool drift, std::uint64_t requests = 3000) {
  WorkloadProfile p;
  p.name = "aging-soak";
  p.total_requests = requests;
  p.seed = 31;
  p.write_ratio = 0.6;
  p.hot_extents = 96;
  p.cold_stream_pages = 1 << 15;
  p.mean_interarrival_ns = 140 * kMicrosecond;
  if (drift) {
    p.drift_period = 400;
    p.drift_step = 7;
    p.diurnal_period = 900;
    p.diurnal_amplitude = 0.5;
  }
  return p;
}

SimOptions aged_options(bool faults) {
  SimOptions o;
  o.ssd = testing::tiny_ssd();
  o.policy.name = "reqblock";
  o.policy.capacity_pages = 256;
  o.policy.pages_per_block = o.ssd.pages_per_block;
  o.cache.capacity_pages = 256;
  o.telemetry_env_override = false;
  o.fault.aging.rated_pe_cycles = 5000;
  o.fault.aging.initial_pe_cycles = 4800;
  o.fault.aging.wear_program_fail_max = 0.02;
  o.fault.aging.wear_erase_fail_max = 0.05;
  o.fault.aging.read_disturb_limit = 16;
  o.fault.aging.read_disturb_fail_max = 0.01;
  o.fault.aging.retention_age_limit = 50 * kMillisecond;
  o.fault.aging.retention_fail_max = 0.005;
  if (faults) {
    o.fault.seed = 9;
    o.fault.program_fail_prob = 0.01;
    o.fault.read_fail_prob = 0.005;
    o.fault.power_loss_every_requests = 800;
  }
  return o;
}

std::string csvs_of(const std::vector<RunResult>& results) {
  std::ostringstream os;
  write_results_csv(os, results);
  return os.str();
}

TEST(AgingDeterminismTest, CsvByteIdenticalAcrossThreadCounts) {
  std::vector<ExperimentCase> cases;
  for (const bool aged : {false, true}) {
    for (const bool drift : {false, true}) {
      ExperimentCase c;
      c.profile = soak_profile(drift, 1500);
      c.options = aged ? aged_options(true) : aged_options(false);
      if (!aged) c.options.fault = FaultPlan{};
      c.label = std::string(aged ? "aged" : "fresh") + (drift ? "+drift" : "");
      cases.push_back(std::move(c));
    }
  }
  const std::string serial = csvs_of(run_cases(cases, 1));
  EXPECT_EQ(serial, csvs_of(run_cases(cases, 4)));
  EXPECT_EQ(serial, csvs_of(run_cases(cases, 0)));  // hardware concurrency
}

TEST(AgingCheckpointTest, MidSoakSnapshotIsByteStable) {
  FullAuditScope audit_scope;
  const SimOptions o = aged_options(true);
  const WorkloadProfile p = soak_profile(true);
  SyntheticTraceSource trace(p);
  SimulationSession session(o, trace);
  // Stop mid-soak with live wear state: pre-aged P/E counters plus the
  // read counts and data epochs traffic has accumulated so far.
  while (session.served() < 1500 && session.step()) {
  }

  SnapshotWriter w1;
  session.serialize(w1);
  const std::string bytes = w1.take();
  SyntheticTraceSource trace2(p);
  SimulationSession restored(o, trace2);
  SnapshotReader r(bytes);
  restored.deserialize(r);
  SnapshotWriter w2;
  restored.serialize(w2);
  EXPECT_EQ(bytes, w2.take()) << "serialize -> deserialize -> serialize "
                                 "must reproduce identical bytes";
}

TEST(AgingCheckpointTest, ResumeMidSoakMatchesUninterruptedCsv) {
  FullAuditScope audit_scope;
  for (const bool faults : {false, true}) {
    for (const bool drift : {false, true}) {
      SCOPED_TRACE(std::string(faults ? "faults" : "fault-free") +
                   (drift ? "+drift" : ""));
      const SimOptions o = aged_options(faults);
      const WorkloadProfile p = soak_profile(drift);

      SyntheticTraceSource whole_trace(p);
      SimulationSession whole(o, whole_trace);
      while (whole.step()) {
      }
      const RunResult whole_result = whole.finish();
      // The cell genuinely ages: the wear ramps and refresh paths are
      // active when the checkpoint lands, not dormant.
      ASSERT_GT(whole_result.fault.read_disturb_migrations +
                    whole_result.fault.retention_scrubs,
                0u);

      const std::string dir = scratch_dir(
          std::string(faults ? "f" : "nf") + (drift ? "_d" : "_nd"));
      {
        SyntheticTraceSource trace(p);
        SimulationSession session(o, trace);
        while (session.served() < 1500 && session.step()) {
        }
        save_session_checkpoint(session, dir, "run", 2);
      }
      SyntheticTraceSource trace(p);
      SimulationSession session(o, trace);
      restore_session_checkpoint(session, find_latest_checkpoint(dir, "run"));
      while (session.step()) {
      }
      EXPECT_EQ(csvs_of({whole_result}), csvs_of({session.finish()}));
    }
  }
}

TEST(AgingCheckpointTest, RestoreRefusesMismatchedAgingKnob) {
  const WorkloadProfile p = soak_profile(false, 1200);
  const SimOptions o = aged_options(false);
  const std::string dir = scratch_dir("refuse");
  {
    SyntheticTraceSource trace(p);
    SimulationSession session(o, trace);
    while (session.served() < 500 && session.step()) {
    }
    save_session_checkpoint(session, dir, "run", 2);
  }
  const std::string path = find_latest_checkpoint(dir, "run");
  ASSERT_FALSE(path.empty());

  const auto refuse = [&](auto mutate) {
    SimOptions other = aged_options(false);
    mutate(other.fault.aging);
    SyntheticTraceSource trace(p);
    SimulationSession session(other, trace);
    EXPECT_THROW(restore_session_checkpoint(session, path), SnapshotError);
  };
  refuse([](AgingPlan& a) { a.rated_pe_cycles += 1; });
  refuse([](AgingPlan& a) { a.initial_pe_cycles += 1; });
  refuse([](AgingPlan& a) { a.wear_program_fail_max = 0.03; });
  refuse([](AgingPlan& a) { a.wear_erase_fail_max = 0.06; });
  refuse([](AgingPlan& a) { a.read_disturb_limit += 1; });
  refuse([](AgingPlan& a) { a.read_disturb_fail_max = 0.02; });
  refuse([](AgingPlan& a) { a.retention_age_limit += kMillisecond; });
  refuse([](AgingPlan& a) { a.retention_fail_max = 0.01; });
  refuse([](AgingPlan& a) { a.eol_free_block_floor += 1; });
  refuse([](AgingPlan& a) { a.eol_exit_margin += 1; });
  refuse([](AgingPlan& a) { a.eol_spare_floor += 1; });

  SyntheticTraceSource trace(p);
  SimulationSession session(o, trace);
  EXPECT_NO_THROW(restore_session_checkpoint(session, path));
}

TEST(AgingCheckpointTest, RestoreRefusesMismatchedDriftKnob) {
  // Drift shapes the request stream itself, so it rides the trace
  // identity rather than the config fingerprint — a resumed soak must
  // replay the exact drifting workload it checkpointed under.
  const WorkloadProfile p = soak_profile(true, 1200);
  const SimOptions o = aged_options(false);
  const std::string dir = scratch_dir("drift_refuse");
  {
    SyntheticTraceSource trace(p);
    SimulationSession session(o, trace);
    while (session.served() < 500 && session.step()) {
    }
    save_session_checkpoint(session, dir, "run", 2);
  }
  const std::string path = find_latest_checkpoint(dir, "run");
  ASSERT_FALSE(path.empty());

  const auto refuse = [&](auto mutate) {
    WorkloadProfile other = soak_profile(true, 1200);
    mutate(other);
    SyntheticTraceSource trace(other);
    SimulationSession session(o, trace);
    EXPECT_THROW(restore_session_checkpoint(session, path), SnapshotError);
  };
  refuse([](WorkloadProfile& w) { w.drift_period = 500; });
  refuse([](WorkloadProfile& w) { w.drift_step = 11; });
  refuse([](WorkloadProfile& w) { w.diurnal_period = 1000; });
  refuse([](WorkloadProfile& w) { w.diurnal_amplitude = 0.25; });

  SyntheticTraceSource trace(p);
  SimulationSession session(o, trace);
  EXPECT_NO_THROW(restore_session_checkpoint(session, path));
}

TEST(AgingCheckpointTest, FingerprintCoversEveryAgingKnob) {
  const SimOptions base = aged_options(false);
  const std::uint64_t h = config_fingerprint(base);
  const auto differs = [&](auto mutate) {
    SimOptions o = aged_options(false);
    mutate(o.fault.aging);
    EXPECT_NE(config_fingerprint(o), h);
  };
  differs([](AgingPlan& a) { a.rated_pe_cycles += 1; });
  differs([](AgingPlan& a) { a.initial_pe_cycles += 1; });
  differs([](AgingPlan& a) { a.wear_program_fail_max = 0.03; });
  differs([](AgingPlan& a) { a.wear_erase_fail_max = 0.06; });
  differs([](AgingPlan& a) { a.read_disturb_limit += 1; });
  differs([](AgingPlan& a) { a.read_disturb_fail_max = 0.02; });
  differs([](AgingPlan& a) { a.retention_age_limit += 1; });
  differs([](AgingPlan& a) { a.retention_fail_max = 0.01; });
  differs([](AgingPlan& a) { a.eol_free_block_floor += 1; });
  differs([](AgingPlan& a) { a.eol_exit_margin += 1; });
  differs([](AgingPlan& a) { a.eol_spare_floor += 1; });
}

TEST(AgingCheckpointTest, DisabledAgingBlockIsInert) {
  // EOL tuning without any enabling trigger (no rated budget, no limits,
  // no spare floor, no pre-age) must not change the fingerprint or the
  // run bytes: fresh-device runs stay bit-identical to pre-aging builds
  // and their stored fingerprints.
  SimOptions plain = aged_options(false);
  plain.fault.aging = AgingPlan{};
  SimOptions dressed = plain;
  dressed.fault.aging.eol_free_block_floor = 9;
  dressed.fault.aging.eol_exit_margin = 7;
  EXPECT_EQ(config_fingerprint(plain), config_fingerprint(dressed));

  const WorkloadProfile p = soak_profile(false, 1200);
  const auto run = [&](const SimOptions& o) {
    SyntheticTraceSource trace(p);
    SimulationSession session(o, trace);
    while (session.step()) {
    }
    return session.finish();
  };
  const RunResult a = run(plain);
  const RunResult b = run(dressed);
  EXPECT_EQ(a.fault.read_disturb_migrations, 0u);
  EXPECT_EQ(a.fault.blocks_retired, 0u);
  EXPECT_EQ(csvs_of({a}), csvs_of({b}));
}

}  // namespace
}  // namespace reqblock
