// Randomized property test for Req-block: a synthetic mixed read/write
// trace replayed (a) directly against the policy with a deep audit after
// every single operation, and (b) through the full CacheManager+FTL stack
// with run-time audits forced to "full". Coverage counters prove the
// stream exercised every interesting transition — split, promotion
// (upgrade to SRL), downgraded merge, batch eviction, guard bypass — so a
// green run means those paths ran *and* never violated an invariant.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/req_block_policy.h"
#include "test_util.h"
#include "util/audit.h"
#include "util/rng.h"

namespace reqblock::testing {
namespace {

class AuditLevelGuard {
 public:
  explicit AuditLevelGuard(AuditLevel level)
      : previous_(set_audit_level(level)) {}
  ~AuditLevelGuard() { set_audit_level(previous_); }

 private:
  AuditLevel previous_;
};

void expect_clean_audit(const ReqBlockPolicy& policy, std::uint64_t op) {
  AuditReport report("Req-block");
  policy.audit(report);
  ASSERT_TRUE(report.ok()) << "after op " << op << ":\n"
                           << report.to_string();
}

TEST(ReqBlockProperty, RandomTraceAuditsCleanAndCoversAllTransitions) {
  ReqBlockOptions opt;
  opt.delta = 5;
  ReqBlockPolicy policy(opt);
  Rng rng(0xFEED5EED);

  std::uint64_t splits = 0;       // hit on a > delta block
  std::uint64_t promotions = 0;   // hit on a <= delta block -> SRL
  std::uint64_t merges = 0;       // eviction dragged the IRL origin along
  std::uint64_t batches = 0;      // eviction of more than one page
  std::uint64_t ops = 0;

  for (std::uint64_t req_id = 1; ops < 40'000; ++req_id) {
    const Lpn start = rng.next_below(384);
    const std::uint32_t len =
        1 + static_cast<std::uint32_t>(rng.next_below(16));
    const IoRequest req = write_req(req_id, start, len);
    policy.begin_request(req);
    for (std::uint32_t i = 0; i < len; ++i) {
      const Lpn lpn = start + i;
      const ReqBlock* blk = policy.block_of(lpn);
      if (blk != nullptr) {
        const bool will_split = blk->page_count() > opt.delta;
        policy.on_hit(lpn, req, /*is_write=*/true);
        if (will_split) {
          ++splits;
          // The page must now live in a DRL block remembering its origin.
          const ReqBlock* moved = policy.block_of(lpn);
          ASSERT_NE(moved, nullptr);
          EXPECT_EQ(moved->level, ReqList::kDRL);
          EXPECT_NE(moved->origin_id, 0u);
        } else {
          ++promotions;
          const ReqBlock* moved = policy.block_of(lpn);
          ASSERT_NE(moved, nullptr);
          EXPECT_EQ(moved->level, ReqList::kSRL);
          EXPECT_GE(moved->access_cnt, 2u);
        }
      } else {
        policy.on_insert(lpn, req, /*is_write=*/true);
        const ReqBlock* inserted = policy.block_of(lpn);
        ASSERT_NE(inserted, nullptr);
        EXPECT_EQ(inserted->level, ReqList::kIRL);
      }
      ++ops;
      while (policy.pages() > 192) {
        const ReqBlock* victim_preview = nullptr;
        {
          // Identify the upcoming victim's own size so a larger batch can
          // only mean the origin was merged in.
          const ReqList order[] = {ReqList::kIRL, ReqList::kDRL,
                                   ReqList::kSRL};
          double best = 0.0;
          for (const ReqList level : order) {
            const ReqBlock* cand = policy.tail_of(level);
            while (cand != nullptr && policy.is_guarded(cand)) {
              cand = policy.prev_in_list(cand);
            }
            if (cand == nullptr) continue;
            const double f =
                req_block_freq(*cand, policy.now(), opt.freq_mode);
            if (victim_preview == nullptr || f < best) {
              best = f;
              victim_preview = cand;
            }
          }
        }
        const std::size_t victim_own_pages =
            victim_preview == nullptr ? 0 : victim_preview->page_count();
        VictimBatch batch = policy.select_victim();
        ASSERT_FALSE(batch.empty());
        if (batch.pages.size() > 1) ++batches;
        if (batch.pages.size() > victim_own_pages) ++merges;
      }
      expect_clean_audit(policy, ops);
    }
  }

  EXPECT_GT(splits, 100u) << "trace never split a large block";
  EXPECT_GT(promotions, 100u) << "trace never promoted to SRL";
  EXPECT_GT(merges, 10u) << "trace never exercised downgraded merging";
  EXPECT_GT(batches, 100u) << "trace never evicted a multi-page batch";
}

// Full stack: the same kind of mixed trace through CacheManager + FTL with
// run-time audits at "full". CacheManager::serve audits itself (and the
// policy, and throws on violation) after every request, so simply
// completing the replay is the assertion; the version oracle check on
// reads keeps the data path honest too.
TEST(ReqBlockProperty, FullStackRandomTraceUnderFullAudits) {
  AuditLevelGuard audits(AuditLevel::kFull);
  Harness h(policy_config("reqblock", 256));
  Rng rng(0xBADF00D);

  std::uint64_t id = 1;
  SimTime at = 0;
  for (std::uint64_t i = 0; i < 4'000; ++i) {
    const Lpn start = rng.next_below(1024);
    const std::uint32_t len =
        1 + static_cast<std::uint32_t>(rng.next_below(12));
    const bool is_read = rng.next_below(10) < 3;
    const IoRequest req = is_read ? read_req(id, start, len, at)
                                  : write_req(id, start, len, at);
    ++id;
    at += 5;  // nondecreasing arrivals
    ASSERT_NO_THROW(h.serve(req)) << "request " << i;
  }
  const CacheMetrics& m = h.cache->metrics();
  EXPECT_GT(m.page_hits, 0u);
  EXPECT_GT(m.evictions, 0u);

  // End-of-run device audit, like the simulator's.
  AuditReport report("Ftl");
  h.ftl.audit(report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// Guard property: a single in-flight request larger than the whole buffer
// cannot evict its own block; the policy reports "no victim" and the
// manager bypasses the overflow pages to flash instead of deadlocking or
// self-evicting.
TEST(ReqBlockProperty, OversizedRequestBypassesInsteadOfSelfEvicting) {
  AuditLevelGuard audits(AuditLevel::kFull);
  Harness h(policy_config("reqblock", 8));
  ASSERT_NO_THROW(h.serve(write_req(1, 0, 32)));
  const CacheMetrics& m = h.cache->metrics();
  EXPECT_GT(m.bypass_pages, 0u);
  EXPECT_LE(h.cache->cached_pages(), 8u);
}

}  // namespace
}  // namespace reqblock::testing
