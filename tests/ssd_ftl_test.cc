#include "ssd/ftl.h"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.h"
#include "util/rng.h"

namespace reqblock {
namespace {

using testing::micro_ssd;
using testing::tiny_ssd;

TEST(FtlTest, UnmappedReadServedByController) {
  Ftl ftl(tiny_ssd());
  const auto rr = ftl.read_page(42, 1000);
  EXPECT_FALSE(rr.mapped);
  EXPECT_EQ(rr.version, 0u);
  EXPECT_EQ(rr.complete, 1000 + ftl.config().cache_access_latency);
  EXPECT_EQ(ftl.metrics().unmapped_reads, 1u);
  EXPECT_EQ(ftl.metrics().host_page_reads, 0u);
}

TEST(FtlTest, ProgramThenReadReturnsVersion) {
  Ftl ftl(tiny_ssd());
  ftl.program_page(7, 99, 0);
  const auto rr = ftl.read_page(7, 10 * kMillisecond);
  EXPECT_TRUE(rr.mapped);
  EXPECT_EQ(rr.version, 99u);
  EXPECT_EQ(ftl.metrics().host_page_writes, 1u);
  EXPECT_EQ(ftl.metrics().host_page_reads, 1u);
}

TEST(FtlTest, RewriteInvalidatesOldMapping) {
  Ftl ftl(tiny_ssd());
  ftl.program_page(7, 1, 0);
  ftl.program_page(7, 2, 0);
  EXPECT_EQ(ftl.mapped_pages(), 1u);
  EXPECT_EQ(ftl.version_of(7), 2u);
  const auto rr = ftl.read_page(7, 1 * kSecond);
  EXPECT_EQ(rr.version, 2u);
}

TEST(FtlTest, SingleWriteTiming) {
  const auto cfg = tiny_ssd();
  Ftl ftl(cfg);
  // Bus transfer then cell program, on idle resources.
  const SimTime done = ftl.program_page(0, 1, 1000);
  EXPECT_EQ(done, 1000 + cfg.page_transfer_time() + cfg.program_latency);
}

TEST(FtlTest, SingleReadTiming) {
  const auto cfg = tiny_ssd();
  Ftl ftl(cfg);
  ftl.program_page(0, 1, 0);
  const SimTime issue = 1 * kSecond;  // after the program finished
  const auto rr = ftl.read_page(0, issue);
  EXPECT_EQ(rr.complete, issue + cfg.read_latency + cfg.page_transfer_time());
}

TEST(FtlTest, StripedBatchExploitsChannelParallelism) {
  const auto cfg = tiny_ssd();  // 8 channels x 2 chips
  Ftl ftl(cfg);
  std::vector<FlushPage> batch;
  for (Lpn l = 0; l < 8; ++l) batch.push_back({l, 1});
  const SimTime done = ftl.program_batch(batch, 0, /*colocate=*/false);
  // All 8 pages hit distinct channels: finish within one program plus one
  // bus transfer each (transfers overlap programs across channels).
  EXPECT_LE(done, cfg.page_transfer_time() + cfg.program_latency +
                      8 * cfg.page_transfer_time());
  EXPECT_LT(done, 2 * cfg.program_latency);
}

TEST(FtlTest, ColocatedBatchConfinedToOneChannel) {
  const auto cfg = tiny_ssd();  // 2 chips per channel
  Ftl ftl(cfg);
  std::vector<FlushPage> batch;
  for (Lpn l = 0; l < 8; ++l) batch.push_back({l, 1});
  const SimTime done = ftl.program_batch(batch, 0, /*colocate=*/true);
  // The batch is striped over the channel's 2 chips only: 4 programs
  // back-to-back per chip.
  EXPECT_GE(done, 4 * cfg.program_latency);
  // And only that channel's resources were used.
  for (std::uint32_t ch = 1; ch < cfg.channels; ++ch) {
    EXPECT_EQ(ftl.channel_busy(ch), 0);
  }
  EXPECT_GT(ftl.channel_busy(0), 0);
}

TEST(FtlTest, ColocatedBatchFasterWhenStriped) {
  const auto cfg = tiny_ssd();
  Ftl striped_ftl(cfg), colocated_ftl(cfg);
  std::vector<FlushPage> batch;
  for (Lpn l = 0; l < 16; ++l) batch.push_back({l, 1});
  const SimTime striped = striped_ftl.program_batch(batch, 0, false);
  const SimTime colocated = colocated_ftl.program_batch(batch, 0, true);
  EXPECT_LT(striped * 4, colocated);
}

TEST(FtlTest, ChipQueueingDelaysSecondRead) {
  const auto cfg = tiny_ssd();
  Ftl ftl(cfg);
  // Two pages programmed to the same plane: colocated single-page batches
  // both start at the channel's first plane.
  std::vector<FlushPage> first{{0, 1}};
  std::vector<FlushPage> second{{1, 1}};
  ftl.program_batch(first, 0, true);
  const SimTime write_done = ftl.program_batch(second, 0, true);
  // Issue two reads at the same instant: the chip serializes the cell reads.
  const auto r1 = ftl.read_page(0, write_done);
  const auto r2 = ftl.read_page(1, write_done);
  EXPECT_GE(r2.complete, r1.complete + cfg.read_latency);
}

TEST(FtlTest, GcTriggersUnderPressureAndPreservesData) {
  const auto cfg = micro_ssd();  // 64 blocks/plane, 8 pages/block
  Ftl ftl(cfg);
  // Hammer a small logical range so most programmed pages invalidate
  // quickly; the plane must GC rather than exhaust.
  const std::uint64_t writes = cfg.pages_per_plane() * 3;
  std::uint64_t version = 0;
  for (std::uint64_t i = 0; i < writes; ++i) {
    const Lpn lpn = i % 64;
    ftl.program_page(lpn, ++version, static_cast<SimTime>(i));
  }
  EXPECT_GT(ftl.metrics().gc_runs, 0u);
  EXPECT_GT(ftl.metrics().erases, 0u);
  // All 64 logical pages must still be mapped with their latest versions.
  for (Lpn lpn = 0; lpn < 64; ++lpn) {
    ASSERT_TRUE(ftl.is_mapped(lpn));
    const auto rr = ftl.read_page(lpn, static_cast<SimTime>(writes) * 1000);
    ASSERT_TRUE(rr.mapped);
    // The most recent write to this lpn:
    const std::uint64_t expect =
        writes - 64 + lpn + 1;
    ASSERT_EQ(rr.version, expect);
  }
}

TEST(FtlTest, GcNeverLosesFreeBlocksEntirely) {
  const auto cfg = micro_ssd();
  Ftl ftl(cfg);
  const std::uint64_t writes = cfg.pages_per_plane() * 4;
  for (std::uint64_t i = 0; i < writes; ++i) {
    ftl.program_page(i % 32, i, 0);
  }
  for (std::uint32_t plane = 0; plane < cfg.total_planes(); ++plane) {
    EXPECT_GE(ftl.array().free_blocks(plane), 1u);
  }
}

TEST(FtlTest, WafAtLeastOneUnderPressure) {
  const auto cfg = micro_ssd();
  Ftl ftl(cfg);
  // Random rewrites over a ~60% footprint keep GC victims partially
  // valid, so GC actually has pages to move (a cyclic pattern would leave
  // every victim fully invalid).
  const std::uint64_t footprint = cfg.total_pages() * 6 / 10;
  Rng rng(123);
  for (std::uint64_t i = 0; i < cfg.pages_per_plane() * 3; ++i) {
    ftl.program_page(rng.next_below(footprint), i, 0);
  }
  EXPECT_GE(ftl.metrics().waf(), 1.0);
  EXPECT_GT(ftl.metrics().gc_page_moves, 0u);
}

TEST(FtlTest, RoundRobinStripesAcrossChannels) {
  const auto cfg = tiny_ssd();
  Ftl ftl(cfg);
  // 8 single-page programs must each land on a different channel: their
  // bus transfers overlap, so every channel's busy time equals exactly one
  // page transfer.
  for (Lpn l = 0; l < 8; ++l) ftl.program_page(l, 1, 0);
  for (std::uint32_t ch = 0; ch < cfg.channels; ++ch) {
    EXPECT_EQ(ftl.channel_busy(ch), cfg.page_transfer_time());
  }
}

TEST(FtlTest, BatchMetricsCount) {
  Ftl ftl(tiny_ssd());
  std::vector<FlushPage> batch{{0, 1}, {1, 1}, {2, 1}};
  ftl.program_batch(batch, 0, false);
  EXPECT_EQ(ftl.metrics().host_page_writes, 3u);
}

TEST(FtlTest, EmptyBatchRejected) {
  Ftl ftl(tiny_ssd());
  std::vector<FlushPage> batch;
  EXPECT_THROW(ftl.program_batch(batch, 0, false), std::logic_error);
}

}  // namespace
}  // namespace reqblock
