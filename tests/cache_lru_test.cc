#include "cache/lru.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace reqblock {
namespace {

using testing::write_req;

TEST(LruPolicyTest, EvictsLeastRecentlyUsed) {
  LruPolicy lru;
  lru.on_insert(1, write_req(0, 1, 1), true);
  lru.on_insert(2, write_req(1, 2, 1), true);
  lru.on_insert(3, write_req(2, 3, 1), true);
  const auto v = lru.select_victim();
  ASSERT_EQ(v.pages.size(), 1u);
  EXPECT_EQ(v.pages[0], 1u);
  EXPECT_FALSE(v.colocate);
  EXPECT_TRUE(v.padding_reads.empty());
}

TEST(LruPolicyTest, HitPromotes) {
  LruPolicy lru;
  lru.on_insert(1, write_req(0, 1, 1), true);
  lru.on_insert(2, write_req(1, 2, 1), true);
  lru.on_hit(1, write_req(2, 1, 1), true);
  EXPECT_EQ(lru.select_victim().pages[0], 2u);
}

TEST(LruPolicyTest, ReadHitAlsoPromotes) {
  LruPolicy lru;
  lru.on_insert(1, write_req(0, 1, 1), true);
  lru.on_insert(2, write_req(1, 2, 1), true);
  lru.on_hit(1, testing::read_req(2, 1, 1), false);
  EXPECT_EQ(lru.select_victim().pages[0], 2u);
}

TEST(LruPolicyTest, PagesTracksPopulation) {
  LruPolicy lru;
  EXPECT_EQ(lru.pages(), 0u);
  lru.on_insert(5, write_req(0, 5, 1), true);
  lru.on_insert(6, write_req(0, 6, 1), true);
  EXPECT_EQ(lru.pages(), 2u);
  lru.select_victim();
  EXPECT_EQ(lru.pages(), 1u);
}

TEST(LruPolicyTest, MetadataIsTwelveBytesPerPage) {
  LruPolicy lru;
  for (Lpn l = 0; l < 10; ++l) lru.on_insert(l, write_req(l, l, 1), true);
  EXPECT_EQ(lru.metadata_bytes(), 120u);
}

TEST(LruPolicyTest, EmptyVictimWhenNoPages) {
  LruPolicy lru;
  EXPECT_TRUE(lru.select_victim().empty());
}

TEST(LruPolicyTest, DoubleInsertRejected) {
  LruPolicy lru;
  lru.on_insert(1, write_req(0, 1, 1), true);
  EXPECT_THROW(lru.on_insert(1, write_req(1, 1, 1), true), std::logic_error);
}

TEST(LruPolicyTest, HitOnUntrackedRejected) {
  LruPolicy lru;
  EXPECT_THROW(lru.on_hit(9, write_req(0, 9, 1), true), std::logic_error);
}

TEST(LruPolicyTest, FullOrderMaintainedUnderChurn) {
  LruPolicy lru;
  for (Lpn l = 0; l < 8; ++l) lru.on_insert(l, write_req(l, l, 1), true);
  // Touch even pages; odd pages should then evict first, in order.
  for (Lpn l = 0; l < 8; l += 2) lru.on_hit(l, write_req(10, l, 1), true);
  for (Lpn expect : {1, 3, 5, 7, 0, 2, 4, 6}) {
    EXPECT_EQ(lru.select_victim().pages[0], expect);
  }
}

}  // namespace
}  // namespace reqblock
