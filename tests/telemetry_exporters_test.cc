#include "telemetry/exporters.h"

#include <gtest/gtest.h>

#include <sstream>

namespace reqblock {
namespace {

std::vector<TraceEvent> sample_events() {
  return {
      {1000, 0, 42, 1, EventKind::kCacheHit, kTrackManager, 0},
      {2000, 500, 43, 4, EventKind::kCacheEvict, kTrackManager, 0},
      {2000, 17000000, 43, 7, EventKind::kPageProgram, 3, 1},
      {2500, 0, 0, 2, EventKind::kGcStart, 3, 1},
  };
}

TEST(ExportersTest, JsonlEmitsOneObjectPerLine) {
  std::ostringstream os;
  write_events_jsonl(os, sample_events());
  const std::string out = os.str();
  std::istringstream lines(out);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(count, 4u);
  EXPECT_NE(out.find("\"kind\":\"cache_hit\""), std::string::npos);
  EXPECT_NE(out.find("\"kind\":\"page_program\""), std::string::npos);
  EXPECT_NE(out.find("\"cat\":\"flash\""), std::string::npos);
  EXPECT_NE(out.find("\"lpn\":42"), std::string::npos);
}

TEST(ExportersTest, ChromeTraceHasMetadataAndSlices) {
  std::ostringstream os;
  write_chrome_trace(os, sample_events());
  const std::string out = os.str();
  // Valid envelope.
  EXPECT_EQ(out.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(out.find("\"displayTimeUnit\""), std::string::npos);
  // Process/thread naming metadata for the lanes actually used.
  EXPECT_NE(out.find("\"process_name\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"cache\""), std::string::npos);
  EXPECT_NE(out.find("\"flash chips\""), std::string::npos);
  EXPECT_NE(out.find("\"chip 3\""), std::string::npos);
  EXPECT_NE(out.find("\"channel 1\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"manager\""), std::string::npos);
  // Durations become "X" slices (ts in microseconds: 2000ns -> 2us),
  // instants become "i".
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(out.find("\"dur\":17000"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check; the CI job
  // additionally runs a real JSON parser over an exported file).
  std::ptrdiff_t braces = 0, brackets = 0;
  for (const char c : out) {
    braces += c == '{';
    braces -= c == '}';
    brackets += c == '[';
    brackets -= c == ']';
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ExportersTest, EmptyEventListsStillWellFormed) {
  std::ostringstream os_jsonl, os_trace;
  write_events_jsonl(os_jsonl, {});
  EXPECT_TRUE(os_jsonl.str().empty());
  write_chrome_trace(os_trace, {});
  EXPECT_EQ(os_trace.str().find("{\"traceEvents\":["), 0u);
  EXPECT_NE(os_trace.str().find("]"), std::string::npos);
}

}  // namespace
}  // namespace reqblock
