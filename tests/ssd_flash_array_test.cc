#include "ssd/flash_array.h"

#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace reqblock {
namespace {

using testing::micro_ssd;

TEST(FlashArrayTest, ProgramReturnsUniquePpns) {
  FlashArray arr(micro_ssd());
  std::set<Ppn> seen;
  for (int i = 0; i < 100; ++i) {
    const Ppn p = arr.program(0, static_cast<Lpn>(i));
    EXPECT_TRUE(seen.insert(p).second) << "duplicate ppn " << p;
  }
}

TEST(FlashArrayTest, ProgramFillsBlockSequentially) {
  const auto cfg = micro_ssd();
  FlashArray arr(cfg);
  const AddressMap& amap = arr.address_map();
  PhysAddr prev = amap.to_addr(arr.program(0, 0));
  for (std::uint32_t i = 1; i < cfg.pages_per_block; ++i) {
    const PhysAddr cur = amap.to_addr(arr.program(0, i));
    EXPECT_EQ(cur.block, prev.block);
    EXPECT_EQ(cur.page, prev.page + 1);
    prev = cur;
  }
  // Next program opens a new block.
  const PhysAddr next = amap.to_addr(arr.program(0, 100));
  EXPECT_NE(next.block, prev.block);
  EXPECT_EQ(next.page, 0u);
}

TEST(FlashArrayTest, StateTransitions) {
  FlashArray arr(micro_ssd());
  const Ppn p = arr.program(0, 42);
  EXPECT_EQ(arr.state(p), PageState::kValid);
  EXPECT_EQ(arr.lpn_at(p), 42u);
  arr.invalidate(p);
  EXPECT_EQ(arr.state(p), PageState::kInvalid);
}

TEST(FlashArrayTest, DoubleInvalidateRejected) {
  FlashArray arr(micro_ssd());
  const Ppn p = arr.program(0, 1);
  arr.invalidate(p);
  EXPECT_THROW(arr.invalidate(p), std::logic_error);
}

TEST(FlashArrayTest, FreeBlocksDecreaseAsPlanesFill) {
  const auto cfg = micro_ssd();
  FlashArray arr(cfg);
  const auto initial = arr.free_blocks(0);
  EXPECT_EQ(initial, cfg.blocks_per_plane());
  arr.program(0, 0);
  EXPECT_EQ(arr.free_blocks(0), initial - 1);  // active block allocated
  // Filling the active block does not consume more.
  for (std::uint32_t i = 1; i < cfg.pages_per_block; ++i) arr.program(0, i);
  EXPECT_EQ(arr.free_blocks(0), initial - 1);
  arr.program(0, 99);
  EXPECT_EQ(arr.free_blocks(0), initial - 2);
}

TEST(FlashArrayTest, PlanesAreIndependent) {
  const auto cfg = micro_ssd();
  FlashArray arr(cfg);
  arr.program(0, 0);
  EXPECT_EQ(arr.free_blocks(1), cfg.blocks_per_plane());
  EXPECT_EQ(arr.valid_page_count(0), 1u);
  EXPECT_EQ(arr.valid_page_count(1), 0u);
}

TEST(FlashArrayTest, GcVictimHasMostInvalids) {
  const auto cfg = micro_ssd();  // 8 pages per block
  FlashArray arr(cfg);
  // Fill two blocks; invalidate 2 pages of the first, 5 of the second.
  std::vector<Ppn> first, second;
  for (std::uint32_t i = 0; i < cfg.pages_per_block; ++i) {
    first.push_back(arr.program(0, i));
  }
  for (std::uint32_t i = 0; i < cfg.pages_per_block; ++i) {
    second.push_back(arr.program(0, 100 + i));
  }
  arr.program(0, 999);  // open a third block so neither victim is active
  for (int i = 0; i < 2; ++i) arr.invalidate(first[static_cast<std::size_t>(i)]);
  for (int i = 0; i < 5; ++i) arr.invalidate(second[static_cast<std::size_t>(i)]);

  const std::uint32_t victim = arr.pick_gc_victim(0);
  ASSERT_NE(victim, FlashArray::kNoBlock);
  const AddressMap& amap = arr.address_map();
  EXPECT_EQ(victim, amap.to_addr(second[0]).block);
}

TEST(FlashArrayTest, GcVictimNeverActiveBlock) {
  const auto cfg = micro_ssd();
  FlashArray arr(cfg);
  // Only the active block has pages; invalidate one.
  const Ppn p = arr.program(0, 1);
  arr.program(0, 2);
  arr.invalidate(p);
  EXPECT_EQ(arr.pick_gc_victim(0), FlashArray::kNoBlock);
}

TEST(FlashArrayTest, NoVictimWhenNothingInvalid) {
  FlashArray arr(micro_ssd());
  arr.program(0, 1);
  EXPECT_EQ(arr.pick_gc_victim(0), FlashArray::kNoBlock);
}

TEST(FlashArrayTest, ValidPagesListsExactlyTheValidOnes) {
  const auto cfg = micro_ssd();
  FlashArray arr(cfg);
  std::vector<Ppn> ppns;
  for (std::uint32_t i = 0; i < cfg.pages_per_block; ++i) {
    ppns.push_back(arr.program(0, i));
  }
  arr.invalidate(ppns[0]);
  arr.invalidate(ppns[3]);
  const AddressMap& amap = arr.address_map();
  const auto valid = arr.valid_pages(0, amap.to_addr(ppns[0]).block);
  EXPECT_EQ(valid.size(), cfg.pages_per_block - 2);
  for (const Ppn p : valid) {
    EXPECT_EQ(arr.state(p), PageState::kValid);
  }
}

TEST(FlashArrayTest, EraseRecyclesBlock) {
  const auto cfg = micro_ssd();
  FlashArray arr(cfg);
  std::vector<Ppn> ppns;
  for (std::uint32_t i = 0; i < cfg.pages_per_block; ++i) {
    ppns.push_back(arr.program(0, i));
  }
  arr.program(0, 50);  // move active elsewhere
  for (const Ppn p : ppns) arr.invalidate(p);
  const std::uint32_t block = arr.address_map().to_addr(ppns[0]).block;
  const auto free_before = arr.free_blocks(0);
  arr.erase_block(0, block);
  EXPECT_EQ(arr.free_blocks(0), free_before + 1);
  EXPECT_EQ(arr.erase_count(0, block), 1u);
  EXPECT_EQ(arr.total_erases(), 1u);
  EXPECT_EQ(arr.state(ppns[0]), PageState::kFree);
}

TEST(FlashArrayTest, EraseWithValidPagesRejected) {
  const auto cfg = micro_ssd();
  FlashArray arr(cfg);
  const Ppn p = arr.program(0, 1);
  arr.program(0, 2);
  const std::uint32_t block = arr.address_map().to_addr(p).block;
  EXPECT_THROW(arr.erase_block(0, block), std::logic_error);
}

TEST(FlashArrayTest, StaleGcHeapEntriesSkippedAfterErase) {
  const auto cfg = micro_ssd();
  FlashArray arr(cfg);
  std::vector<Ppn> ppns;
  for (std::uint32_t i = 0; i < cfg.pages_per_block; ++i) {
    ppns.push_back(arr.program(0, i));
  }
  arr.program(0, 77);  // new active
  for (const Ppn p : ppns) arr.invalidate(p);
  const std::uint32_t block = arr.address_map().to_addr(ppns[0]).block;
  EXPECT_EQ(arr.pick_gc_victim(0), block);
  arr.erase_block(0, block);
  // The erased block's stale heap entries must not be returned again.
  EXPECT_EQ(arr.pick_gc_victim(0), FlashArray::kNoBlock);
}

TEST(FlashArrayTest, ProgramAfterExhaustionRejected) {
  SsdConfig cfg = micro_ssd();
  FlashArray arr(cfg);
  const std::uint64_t total =
      cfg.blocks_per_plane() * cfg.pages_per_block;
  for (std::uint64_t i = 0; i < total; ++i) {
    arr.program(0, i % 1000);
  }
  EXPECT_THROW(arr.program(0, 0), std::logic_error);
}

TEST(FlashArrayTest, LpnTooLargeRejected) {
  FlashArray arr(micro_ssd());
  EXPECT_THROW(arr.program(0, 1ULL << 40), std::logic_error);
}

}  // namespace
}  // namespace reqblock
