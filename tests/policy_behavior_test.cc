// Signature behaviours of each scheme on the micro-workloads — encodes
// the related-work claims of the paper (§2.1) as executable assertions.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "test_util.h"
#include "trace/micro_workloads.h"
#include "trace/vector_source.h"
#include "util/rng.h"

namespace reqblock {
namespace {

double run_hit_ratio(const std::string& policy,
                     std::vector<IoRequest> requests,
                     std::uint64_t capacity_pages = 512) {
  VectorTraceSource trace(std::move(requests), "micro");
  SimOptions o;
  o.ssd = testing::tiny_ssd();
  o.policy.name = policy;
  o.policy.capacity_pages = capacity_pages;
  o.policy.pages_per_block = o.ssd.pages_per_block;
  o.cache.capacity_pages = capacity_pages;
  Simulator sim(o);
  return sim.run(trace).hit_ratio();
}

TEST(PolicyBehaviorTest, ScanLoopDefeatsRecencyWhenSpanExceedsCache) {
  micro::MicroOptions o;
  o.requests = 4000;
  // Span 2048 pages > 512-page cache: LRU evicts every page before its
  // next touch.
  const auto reqs = micro::scan_loop(2048, 4, o);
  EXPECT_LT(run_hit_ratio("lru", reqs), 0.01);
  EXPECT_LT(run_hit_ratio("fifo", reqs), 0.01);
}

TEST(PolicyBehaviorTest, ScanLoopInsideCacheHitsAfterFirstPass) {
  micro::MicroOptions o;
  o.requests = 4000;
  const auto reqs = micro::scan_loop(256, 4, o);  // fits in 512 pages
  // First pass misses (64 requests), everything after hits.
  EXPECT_GT(run_hit_ratio("lru", reqs), 0.95);
  EXPECT_GT(run_hit_ratio("reqblock", reqs), 0.95);
}

TEST(PolicyBehaviorTest, ZipfFavorsEveryRecencyPolicy) {
  micro::MicroOptions o;
  o.requests = 8000;
  const auto reqs = micro::zipf(2000, 2, 1.1, o);
  for (const char* policy : {"lru", "lfu", "vbbms", "reqblock"}) {
    EXPECT_GT(run_hit_ratio(policy, reqs), 0.25) << policy;
  }
}

/// The regime where request-granularity protection pays off (high
/// "Frequent (Wr)" in the paper's Table 2): hot single-page extents are
/// rewritten *immediately once* after each appearance — the quick first
/// re-hit that promotes the block to SRL — and then recur at long
/// intervals, interleaved with one-shot 16-page pollution. LRU's
/// residence (~45 requests here) is far below the ~1200-request recurrence,
/// so recency alone retains nothing; SRL's Eq. 1 retention
/// (access_cnt growing ~2 per recurrence against a pollution-dominated
/// IRL tail) holds the hot set.
std::vector<IoRequest> quick_rehit_with_pollution(std::uint64_t requests,
                                                  Lpn hot_extents,
                                                  double hot_fraction,
                                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<IoRequest> out;
  out.reserve(requests);
  Lpn pollution_cursor = hot_extents * 64;
  std::uint64_t id = 0;
  while (out.size() < requests) {
    IoRequest r;
    r.arrival = static_cast<SimTime>(out.size()) * kMillisecond;
    r.type = IoType::kWrite;
    if (rng.next_bool(hot_fraction)) {
      r.lpn = rng.next_below(hot_extents) * 64;  // sparse: own flash block
      r.pages = 1;
      r.id = id++;
      out.push_back(r);
      IoRequest again = r;  // the immediate rewrite (quick first re-hit)
      again.id = id++;
      again.arrival += kMillisecond / 2;
      out.push_back(again);
    } else {
      r.lpn = pollution_cursor;
      r.pages = 16;
      pollution_cursor += 16;
      r.id = id++;
      out.push_back(r);
    }
  }
  return out;
}

TEST(PolicyBehaviorTest, ReqBlockResistsPollutionBetterThanLru) {
  const auto reqs = quick_rehit_with_pollution(24000, 350, 0.3, 17);
  const double lru = run_hit_ratio("lru", reqs);
  const double rb = run_hit_ratio("reqblock", reqs);
  // Both get the immediate-rewrite hits; only Req-block also catches the
  // long-interval recurrences.
  EXPECT_GT(rb, lru * 1.3);
}

TEST(PolicyBehaviorTest, ReqBlockHoldsHotSetInSRL) {
  VectorTraceSource trace(quick_rehit_with_pollution(24000, 350, 0.3, 18),
                          "rehit");
  SimOptions o;
  o.ssd = testing::tiny_ssd();
  o.policy.name = "reqblock";
  o.policy.capacity_pages = 512;
  o.cache.capacity_pages = 512;
  o.occupancy_log_interval = 4000;
  Simulator sim(o);
  const RunResult r = sim.run(trace);
  ASSERT_FALSE(r.occupancy_series.empty());
  // Steady state: the SRL holds a large share of the hot extents.
  EXPECT_GT(r.occupancy_series.back().srl_pages, 200u);
}

TEST(PolicyBehaviorTest, VbbmsContainsPollutionInSequentialRegion) {
  const auto reqs = quick_rehit_with_pollution(24000, 350, 0.3, 19);
  const double lru = run_hit_ratio("lru", reqs);
  const double vbbms = run_hit_ratio("vbbms", reqs);
  // The 16-page pollution lands in VBBMS's FIFO region, shielding the
  // random region's hot singles.
  EXPECT_GT(vbbms, lru);
}

TEST(PolicyBehaviorTest, FabKeepsSparseGroupsEvictsDenseOnes) {
  // Hot singles live one-per-flash-block (group size 1); pollution fills
  // blocks densely (group size up to 64). FAB always evicts the dense
  // groups, so the sparse hot set survives.
  const auto reqs = quick_rehit_with_pollution(24000, 350, 0.3, 20);
  const double fab = run_hit_ratio("fab", reqs);
  const double lru = run_hit_ratio("lru", reqs);
  EXPECT_GT(fab, lru);
}

TEST(PolicyBehaviorTest, LfuBeatsLruOnStableSkewedPopularity) {
  // Static Zipf popularity with heavy pollution: frequency wins over
  // recency.
  micro::MicroOptions o;
  o.requests = 30000;
  o.seed = 4;
  auto hot = micro::zipf(4000, 1, 0.9, o);
  // Interleave pollution.
  micro::MicroOptions po;
  po.requests = 10000;
  po.seed = 5;
  const auto pollution = micro::sequential(1 << 20, 16, po);
  std::vector<IoRequest> mixed;
  std::size_t pi = 0;
  for (std::size_t i = 0; i < hot.size(); ++i) {
    mixed.push_back(hot[i]);
    if (i % 3 == 0 && pi < pollution.size()) {
      IoRequest p = pollution[pi++];
      p.lpn += 1 << 22;  // keep regions disjoint
      mixed.push_back(p);
    }
  }
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    mixed[i].id = i;
    mixed[i].arrival = static_cast<SimTime>(i) * kMillisecond;
  }
  const double lru = run_hit_ratio("lru", mixed);
  const double lfu = run_hit_ratio("lfu", mixed);
  EXPECT_GT(lfu, lru);
}

TEST(PolicyBehaviorTest, SequentialFullBlocksFavorBplru) {
  // Pure block-aligned sequential writes: BPLRU flushes whole blocks and
  // demotes them early; its hit ratio matches LRU (no reuse for either)
  // but its eviction batches are full blocks.
  micro::MicroOptions o;
  o.requests = 2000;
  const auto reqs = micro::sequential(1 << 16, 64, o);
  VectorTraceSource trace(std::vector<IoRequest>(reqs), "seq");
  SimOptions opts;
  opts.ssd = testing::tiny_ssd();
  opts.policy.name = "bplru";
  opts.policy.capacity_pages = 512;
  opts.policy.pages_per_block = 64;
  opts.cache.capacity_pages = 512;
  Simulator sim(opts);
  const RunResult r = sim.run(trace);
  EXPECT_NEAR(r.cache.eviction_batch.mean(), 64.0, 1.0);
}

}  // namespace
}  // namespace reqblock
