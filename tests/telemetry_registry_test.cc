#include "telemetry/metrics_registry.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace reqblock {
namespace {

TEST(MetricsRegistryTest, NamesAreSortedRegardlessOfRegistrationOrder) {
  MetricsRegistry reg;
  reg.register_gauge("z.last", [] { return 1.0; });
  reg.register_gauge("a.first", [] { return 2.0; });
  reg.register_gauge("m.middle", [] { return 3.0; });
  const auto names = reg.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a.first");
  EXPECT_EQ(names[1], "m.middle");
  EXPECT_EQ(names[2], "z.last");
  // sample() follows names() order.
  const auto values = reg.sample();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 2.0);
  EXPECT_DOUBLE_EQ(values[1], 3.0);
  EXPECT_DOUBLE_EQ(values[2], 1.0);
}

TEST(MetricsRegistryTest, DuplicateNameThrows) {
  MetricsRegistry reg;
  reg.register_gauge("cache.hit_ratio", [] { return 0.0; });
  EXPECT_THROW(reg.register_gauge("cache.hit_ratio", [] { return 1.0; }),
               std::invalid_argument);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistryTest, InvalidNamesThrow) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.register_gauge("", [] { return 0.0; }),
               std::invalid_argument);
  EXPECT_THROW(reg.register_gauge("has,comma", [] { return 0.0; }),
               std::invalid_argument);
  EXPECT_THROW(reg.register_gauge("has\nnewline", [] { return 0.0; }),
               std::invalid_argument);
  EXPECT_THROW(reg.register_gauge("null.sampler", MetricsRegistry::Sampler{}),
               std::invalid_argument);
  EXPECT_EQ(reg.size(), 0u);
}

TEST(MetricsRegistryTest, CounterGaugeTracksLiveValue) {
  MetricsRegistry reg;
  std::uint64_t counter = 7;
  reg.register_counter("flash.writes", &counter);
  EXPECT_DOUBLE_EQ(reg.sample()[0], 7.0);
  counter = 42;
  EXPECT_DOUBLE_EQ(reg.sample()[0], 42.0);
}

TEST(MetricsRegistryTest, SnapshotSamplingIsDeterministic) {
  MetricsRegistry reg;
  double x = 1.5;
  reg.register_gauge("b", [&] { return x; });
  reg.register_gauge("a", [&] { return -x; });
  const auto s1 = reg.sample();
  const auto s2 = reg.sample();
  EXPECT_EQ(s1, s2);
}

TEST(MetricsSeriesTest, ColumnIndexFindsColumns) {
  MetricsSeries s;
  s.columns = {"a", "b", "c"};
  EXPECT_EQ(s.column_index("a"), 0u);
  EXPECT_EQ(s.column_index("c"), 2u);
  EXPECT_EQ(s.column_index("missing"), MetricsSeries::npos);
}

TEST(MetricsSeriesTest, CsvGolden) {
  MetricsSeries s;
  s.columns = {"cache.hit_ratio", "flash.waf"};
  s.rows.push_back({1000, 5000, {0.5, 1.25}});
  s.rows.push_back({2000, 10000, {0.75, 1.5}});
  std::ostringstream os;
  write_series_csv(os, s);
  EXPECT_EQ(os.str(),
            "request,sim_ns,cache.hit_ratio,flash.waf\n"
            "1000,5000,0.500000,1.250000\n"
            "2000,10000,0.750000,1.500000\n");
}

TEST(MetricsSeriesTest, EmptySeriesWritesHeaderOnly) {
  MetricsSeries s;
  s.columns = {"only.metric"};
  std::ostringstream os;
  write_series_csv(os, s);
  EXPECT_EQ(os.str(), "request,sim_ns,only.metric\n");
}

}  // namespace
}  // namespace reqblock
