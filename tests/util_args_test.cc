#include "util/args.h"

#include <gtest/gtest.h>

namespace reqblock {
namespace {

ArgParser parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return ArgParser(static_cast<int>(v.size()), v.data());
}

TEST(ArgParserTest, KeyValuePairs) {
  const auto args = parse({"prog", "--policy", "lru", "--cache-mb", "32"});
  EXPECT_EQ(args.get_or("policy", "x"), "lru");
  EXPECT_EQ(args.get_u64_or("cache-mb", 0), 32u);
  EXPECT_EQ(args.program(), "prog");
}

TEST(ArgParserTest, EqualsForm) {
  const auto args = parse({"prog", "--policy=reqblock", "--delta=7"});
  EXPECT_EQ(args.get_or("policy", "x"), "reqblock");
  EXPECT_EQ(args.get_u64_or("delta", 0), 7u);
}

TEST(ArgParserTest, BooleanSwitches) {
  const auto args = parse({"prog", "--verbose", "--occupancy"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.has("occupancy"));
  EXPECT_FALSE(args.has("quiet"));
}

TEST(ArgParserTest, SwitchFollowedByFlag) {
  // "--all --policy lru": --all must not eat "--policy".
  const auto args = parse({"prog", "--all", "--policy", "lru"});
  EXPECT_TRUE(args.has("all"));
  EXPECT_EQ(args.get_or("policy", "x"), "lru");
}

TEST(ArgParserTest, Positional) {
  const auto args = parse({"prog", "input.csv", "--policy", "lru", "more"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.csv");
  EXPECT_EQ(args.positional()[1], "more");
}

TEST(ArgParserTest, Defaults) {
  const auto args = parse({"prog"});
  EXPECT_EQ(args.get_or("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_u64_or("missing", 42), 42u);
  EXPECT_DOUBLE_EQ(args.get_double_or("missing", 1.5), 1.5);
  EXPECT_FALSE(args.get("missing").has_value());
}

TEST(ArgParserTest, MalformedNumbersFallBack) {
  const auto args = parse({"prog", "--n", "abc", "--d", "xyz"});
  EXPECT_EQ(args.get_u64_or("n", 9), 9u);
  EXPECT_DOUBLE_EQ(args.get_double_or("d", 2.5), 2.5);
}

TEST(ArgParserTest, DoubleValues) {
  const auto args = parse({"prog", "--ratio", "0.75"});
  EXPECT_DOUBLE_EQ(args.get_double_or("ratio", 0), 0.75);
}

TEST(ArgParserStrictTest, ValidValuesAndDefaults) {
  const auto args = parse({"prog", "--checkpoint-every-n", "1000",
                           "--fault-program-fail", "0.25"});
  EXPECT_EQ(args.get_u64_strict("checkpoint-every-n", 0), 1000u);
  EXPECT_DOUBLE_EQ(args.get_double_strict("fault-program-fail", 0), 0.25);
  // A missing flag falls back, it does not throw.
  EXPECT_EQ(args.get_u64_strict("requests", 42), 42u);
  EXPECT_DOUBLE_EQ(args.get_double_strict("ratio", 1.5), 1.5);
}

TEST(ArgParserStrictTest, RejectsTrailingGarbage) {
  const auto args = parse({"prog", "--n", "5x", "--d", "0.5abc"});
  EXPECT_THROW(args.get_u64_strict("n", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double_strict("d", 0), std::invalid_argument);
}

TEST(ArgParserStrictTest, RejectsNegativeAndNonNumeric) {
  const auto args = parse({"prog", "--n", "-3", "--m", "abc", "--d", "nan"});
  EXPECT_THROW(args.get_u64_strict("n", 0), std::invalid_argument);
  EXPECT_THROW(args.get_u64_strict("m", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double_strict("d", 0), std::invalid_argument);
}

TEST(ArgParserStrictTest, RejectsOutOfRange) {
  // One digit past the u64 range and a double overflowing to infinity.
  const auto args =
      parse({"prog", "--n", "184467440737095516160", "--d", "1e999"});
  EXPECT_THROW(args.get_u64_strict("n", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double_strict("d", 0), std::invalid_argument);
}

TEST(ArgParserStrictTest, ErrorNamesFlagAndValue) {
  const auto args = parse({"prog", "--checkpoint-every-n", "10q"});
  try {
    args.get_u64_strict("checkpoint-every-n", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--checkpoint-every-n"), std::string::npos) << msg;
    EXPECT_NE(msg.find("10q"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace reqblock
