#include "util/zipf.h"

#include <gtest/gtest.h>

#include <vector>

namespace reqblock {
namespace {

TEST(ZipfTest, SamplesWithinPopulation) {
  ZipfSampler z(100, 0.99);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(z.sample(rng), 100u);
  }
}

TEST(ZipfTest, SingleItemPopulation) {
  ZipfSampler z(1, 1.2);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

TEST(ZipfTest, RankZeroIsMostPopular) {
  ZipfSampler z(1000, 1.0);
  Rng rng(3);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[1], counts[100]);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfSampler z(10, 0.0);
  Rng rng(4);
  std::vector<int> counts(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[z.sample(rng)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 0.1, 0.01);
  }
}

TEST(ZipfTest, HigherThetaMoreSkewed) {
  Rng rng(5);
  ZipfSampler mild(1000, 0.5), steep(1000, 1.3);
  int mild_head = 0, steep_head = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    if (mild.sample(rng) < 10) ++mild_head;
    if (steep.sample(rng) < 10) ++steep_head;
  }
  EXPECT_GT(steep_head, mild_head);
}

TEST(ZipfTest, TheoreticalHeadMassForThetaOne) {
  // For theta=1, P(rank 0) = 1/H_n. With n=100, H_100 ~= 5.187.
  ZipfSampler z(100, 1.0);
  Rng rng(6);
  int head = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    if (z.sample(rng) == 0) ++head;
  }
  EXPECT_NEAR(static_cast<double>(head) / kN, 1.0 / 5.187, 0.01);
}

TEST(ZipfTest, DeterministicGivenRngSeed) {
  ZipfSampler z(500, 0.9);
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(z.sample(a), z.sample(b));
  }
}

TEST(ZipfTest, InvalidParametersThrow) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::logic_error);
  EXPECT_THROW(ZipfSampler(10, -0.5), std::logic_error);
}

}  // namespace
}  // namespace reqblock
