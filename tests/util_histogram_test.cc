#include "util/histogram.h"

#include <gtest/gtest.h>

namespace reqblock {
namespace {

TEST(LogHistogramTest, EmptyReportsZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.quantile(0.5), 0);
}

TEST(LogHistogramTest, ExactMean) {
  LogHistogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 30);
}

TEST(LogHistogramTest, SmallValuesExact) {
  LogHistogram h;
  for (int v = 0; v < 16; ++v) h.record(v);
  // Buckets below 16 are exact.
  EXPECT_EQ(h.quantile(0.0), 0);
  EXPECT_EQ(h.quantile(1.0), 15);
}

TEST(LogHistogramTest, QuantileWithinBucketResolution) {
  LogHistogram h;
  for (int i = 1; i <= 10000; ++i) h.record(i);
  // p50 should be ~5000 within ~7% log-bucket resolution.
  const double p50 = static_cast<double>(h.p50());
  EXPECT_NEAR(p50, 5000.0, 5000.0 * 0.08);
  const double p99 = static_cast<double>(h.p99());
  EXPECT_NEAR(p99, 9900.0, 9900.0 * 0.08);
}

TEST(LogHistogramTest, P999WithinBucketResolution) {
  LogHistogram h;
  for (int i = 1; i <= 100000; ++i) h.record(i);
  const double p999 = static_cast<double>(h.p999());
  EXPECT_NEAR(p999, 99900.0, 99900.0 * 0.08);
  // Quantiles are monotone in q.
  EXPECT_LE(h.p50(), h.p95());
  EXPECT_LE(h.p95(), h.p99());
  EXPECT_LE(h.p99(), h.p999());
  EXPECT_LE(h.p999(), h.max());
}

TEST(LogHistogramTest, P999OfTailHeavySample) {
  // 997 fast ops and 3 slow ones: p99 sits in the fast mass, p999
  // must surface the outliers' bucket.
  LogHistogram h;
  for (int i = 0; i < 997; ++i) h.record(100);
  for (int i = 0; i < 3; ++i) h.record(1'000'000);
  EXPECT_NEAR(static_cast<double>(h.p99()), 100.0, 100.0 * 0.08);
  EXPECT_GT(h.p999(), 500'000);
}

TEST(LogHistogramTest, NegativeClampedToZero) {
  LogHistogram h;
  h.record(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(LogHistogramTest, MergeCombines) {
  LogHistogram a, b;
  a.record(100);
  b.record(300);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 200.0);
  EXPECT_EQ(a.min(), 100);
  EXPECT_EQ(a.max(), 300);
}

TEST(LogHistogramTest, LargeValues) {
  LogHistogram h;
  const std::int64_t big = 3'000'000'000'000LL;
  h.record(big);
  EXPECT_EQ(h.max(), big);
  // Quantile clamps to observed min/max.
  EXPECT_EQ(h.quantile(1.0), big);
}

TEST(LogHistogramTest, ClearResets) {
  LogHistogram h;
  h.record(5);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(CountHistogramTest, MeanAndMax) {
  CountHistogram h;
  h.record(1);
  h.record(2);
  h.record(2);
  h.record(7);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_EQ(h.max(), 7u);
  EXPECT_EQ(h.at(2), 2u);
  EXPECT_EQ(h.at(3), 0u);
  EXPECT_EQ(h.at(100), 0u);
}

TEST(CountHistogramTest, MergeCombines) {
  CountHistogram a, b;
  a.record(1);
  b.record(9);
  b.record(9);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.at(9), 2u);
  EXPECT_EQ(a.max(), 9u);
}

TEST(CountHistogramTest, EmptyMaxIsZero) {
  CountHistogram h;
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

}  // namespace
}  // namespace reqblock
