#include "trace/synthetic.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "trace/trace_stats.h"

namespace reqblock {
namespace {

WorkloadProfile small_profile() {
  WorkloadProfile p;
  p.name = "unit";
  p.total_requests = 20000;
  p.seed = 99;
  p.write_ratio = 0.6;
  p.hot_extents = 512;
  p.hot_slot_pages = 8;
  p.large_write_fraction = 0.2;
  p.small_write_mean_pages = 2.0;
  p.large_write_min_pages = 8;
  p.large_write_max_pages = 24;
  p.hot_zipf_theta = 1.0;
  p.cold_stream_pages = 1 << 16;
  return p;
}

TEST(SyntheticTraceTest, EmitsExactlyTotalRequests) {
  SyntheticTraceSource src(small_profile());
  IoRequest r;
  std::uint64_t n = 0;
  while (src.next(r)) ++n;
  EXPECT_EQ(n, 20000u);
}

TEST(SyntheticTraceTest, DeterministicAcrossResets) {
  SyntheticTraceSource src(small_profile());
  const auto first = src.collect();
  const auto second = src.collect();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i].arrival, second[i].arrival);
    ASSERT_EQ(first[i].type, second[i].type);
    ASSERT_EQ(first[i].lpn, second[i].lpn);
    ASSERT_EQ(first[i].pages, second[i].pages);
  }
}

TEST(SyntheticTraceTest, IdsAreSequential) {
  SyntheticTraceSource src(small_profile());
  const auto all = src.collect();
  for (std::size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i].id, i);
  }
}

TEST(SyntheticTraceTest, ArrivalsMonotonicallyNondecreasing) {
  SyntheticTraceSource src(small_profile());
  const auto all = src.collect();
  for (std::size_t i = 1; i < all.size(); ++i) {
    ASSERT_GE(all[i].arrival, all[i - 1].arrival);
  }
}

TEST(SyntheticTraceTest, WriteRatioApproximatelyMatches) {
  SyntheticTraceSource src(small_profile());
  TraceStats stats = TraceStatsCollector::collect(src);
  EXPECT_NEAR(stats.write_ratio(), 0.6, 0.02);
}

TEST(SyntheticTraceTest, MeanWriteSizeApproximatelyMatches) {
  const auto profile = small_profile();
  SyntheticTraceSource src(profile);
  TraceStats stats = TraceStatsCollector::collect(src);
  const double expected_pages = profile.expected_write_pages();
  const double measured_pages = stats.mean_write_kb() / 4.0;
  // The small-size draw is a clamped discretized exponential, so allow a
  // generous band around the analytic mix.
  EXPECT_NEAR(measured_pages, expected_pages, expected_pages * 0.35);
}

TEST(SyntheticTraceTest, RequestsStayInsideFootprint) {
  const auto profile = small_profile();
  SyntheticTraceSource src(profile);
  const auto all = src.collect();
  const Lpn footprint = profile.footprint_pages();
  for (const auto& r : all) {
    ASSERT_LE(r.end_lpn(), footprint);
    ASSERT_GE(r.pages, 1u);
  }
}

TEST(SyntheticTraceTest, HotExtentsAreStable) {
  // The same hot extent must always be accessed with the same (lpn, pages),
  // otherwise request blocks would not be a stable unit of reuse.
  const auto profile = small_profile();
  SyntheticTraceSource src(profile);
  const auto all = src.collect();
  std::unordered_map<Lpn, std::uint32_t> size_of;
  const Lpn hot_end = profile.hot_region_pages();
  for (const auto& r : all) {
    if (!r.is_write() || r.lpn >= hot_end) continue;
    if (r.lpn % profile.hot_slot_pages != 0) continue;  // extent-aligned only
    const auto [it, fresh] = size_of.emplace(r.lpn, r.pages);
    if (!fresh) {
      ASSERT_EQ(it->second, r.pages);
    }
  }
  EXPECT_GT(size_of.size(), 50u);
}

TEST(SyntheticTraceTest, SmallRequestsHaveMoreReuseThanLarge) {
  // The generator's core property (paper Observations 1-2): addresses
  // written by small requests recur much more often.
  const auto profile = small_profile();
  SyntheticTraceSource src(profile);
  const auto all = src.collect();
  std::unordered_map<Lpn, int> count_small, count_large;
  for (const auto& r : all) {
    if (!r.is_write()) continue;
    auto& m = r.pages <= profile.hot_slot_pages ? count_small : count_large;
    ++m[r.lpn];
  }
  auto reuse = [](const std::unordered_map<Lpn, int>& m) {
    if (m.empty()) return 0.0;
    std::uint64_t repeated = 0;
    for (const auto& [lpn, c] : m) {
      if (c >= 2) ++repeated;
    }
    return static_cast<double>(repeated) / static_cast<double>(m.size());
  };
  EXPECT_GT(reuse(count_small), 2.0 * reuse(count_large));
}

TEST(SyntheticTraceTest, ScaledProfileChangesCount) {
  const auto p = small_profile().scaled(0.5);
  EXPECT_EQ(p.total_requests, 10000u);
  EXPECT_EQ(small_profile().scaled(2.0).total_requests, 40000u);
  EXPECT_THROW(small_profile().scaled(0.0), std::logic_error);
}

TEST(SyntheticTraceTest, CappedProfile) {
  EXPECT_EQ(small_profile().capped(100).total_requests, 100u);
  EXPECT_EQ(small_profile().capped(0).total_requests, 20000u);
  EXPECT_EQ(small_profile().capped(10000000).total_requests, 20000u);
}

TEST(SyntheticTraceTest, LargeWritesComeFromColdRegion) {
  const auto profile = small_profile();
  SyntheticTraceSource src(profile);
  const auto all = src.collect();
  const Lpn hot_end = profile.hot_region_pages();
  for (const auto& r : all) {
    if (r.is_write() && r.pages > profile.hot_slot_pages) {
      ASSERT_GE(r.lpn, hot_end) << "large write in hot region";
    }
  }
}

}  // namespace
}  // namespace reqblock
