// End-to-end runs of the full simulator on synthetic profiles.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "test_util.h"
#include "trace/profiles.h"
#include "trace/synthetic.h"

namespace reqblock {
namespace {

WorkloadProfile quick_profile(std::uint64_t requests = 30000) {
  WorkloadProfile p;
  p.name = "quick";
  p.total_requests = requests;
  p.seed = 7;
  p.write_ratio = 0.7;
  p.hot_extents = 1024;
  p.hot_slot_pages = 8;
  p.large_write_fraction = 0.15;
  p.small_write_mean_pages = 2.0;
  p.large_write_min_pages = 8;
  p.large_write_max_pages = 32;
  p.hot_zipf_theta = 1.1;
  p.cold_stream_pages = 1 << 17;
  p.read_hot_fraction = 0.6;
  p.mean_interarrival_ns = 500 * kMicrosecond;
  return p;
}

SimOptions quick_options(const std::string& policy,
                         std::uint64_t capacity_pages = 1024) {
  SimOptions o;
  o.ssd = testing::tiny_ssd();
  o.policy.name = policy;
  o.policy.capacity_pages = capacity_pages;
  o.policy.pages_per_block = o.ssd.pages_per_block;
  o.cache.capacity_pages = capacity_pages;
  return o;
}

TEST(SimulatorTest, RunsToCompletionAndCountsRequests) {
  SyntheticTraceSource trace(quick_profile());
  Simulator sim(quick_options("reqblock"));
  const RunResult r = sim.run(trace);
  EXPECT_EQ(r.requests, 30000u);
  EXPECT_EQ(r.read_requests + r.write_requests, r.requests);
  EXPECT_EQ(r.response.count(), r.requests);
  EXPECT_GT(r.sim_end, 0);
  EXPECT_EQ(r.policy_name, "Req-block");
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  for (const char* policy : {"lru", "bplru", "vbbms", "reqblock"}) {
    SyntheticTraceSource t1(quick_profile(8000)), t2(quick_profile(8000));
    Simulator s1(quick_options(policy)), s2(quick_options(policy));
    const RunResult a = s1.run(t1);
    const RunResult b = s2.run(t2);
    EXPECT_EQ(a.cache.page_hits, b.cache.page_hits) << policy;
    EXPECT_EQ(a.flash.host_page_writes, b.flash.host_page_writes) << policy;
    EXPECT_DOUBLE_EQ(a.response.mean(), b.response.mean()) << policy;
    EXPECT_EQ(a.sim_end, b.sim_end) << policy;
  }
}

TEST(SimulatorTest, MaxRequestsCapRespected) {
  SyntheticTraceSource trace(quick_profile());
  SimOptions o = quick_options("lru");
  o.max_requests = 500;
  Simulator sim(o);
  EXPECT_EQ(sim.run(trace).requests, 500u);
}

TEST(SimulatorTest, HitRatioWithinBounds) {
  for (const char* policy : {"lru", "fifo", "lfu", "bplru", "vbbms",
                             "reqblock"}) {
    SyntheticTraceSource trace(quick_profile(10000));
    Simulator sim(quick_options(policy));
    const RunResult r = sim.run(trace);
    EXPECT_GE(r.hit_ratio(), 0.0) << policy;
    EXPECT_LE(r.hit_ratio(), 1.0) << policy;
    EXPECT_GT(r.hit_ratio(), 0.01) << policy << " produced ~no hits";
  }
}

TEST(SimulatorTest, OccupancyProbeOnlyForReqBlock) {
  SyntheticTraceSource t1(quick_profile(10000));
  SimOptions o = quick_options("reqblock");
  o.occupancy_log_interval = 1000;
  Simulator s1(o);
  const RunResult a = s1.run(t1);
  EXPECT_EQ(a.occupancy_series.size(), 10u);

  SyntheticTraceSource t2(quick_profile(10000));
  SimOptions o2 = quick_options("lru");
  o2.occupancy_log_interval = 1000;
  Simulator s2(o2);
  EXPECT_TRUE(s2.run(t2).occupancy_series.empty());
}

TEST(SimulatorTest, OccupancySamplesNeverExceedCapacity) {
  SyntheticTraceSource trace(quick_profile(15000));
  SimOptions o = quick_options("reqblock", 512);
  o.occupancy_log_interval = 1000;
  Simulator sim(o);
  const RunResult r = sim.run(trace);
  ASSERT_FALSE(r.occupancy_series.empty());
  for (const auto& occ : r.occupancy_series) {
    EXPECT_LE(occ.total_pages(), 512u);
  }
}

TEST(SimulatorTest, ReqBlockBeatsLruOnHotSmallWorkload) {
  // The paper's headline claim, on a workload with the motivating
  // structure (hot small requests + cold large streams).
  SyntheticTraceSource t1(quick_profile(40000)), t2(quick_profile(40000));
  Simulator lru(quick_options("lru")), rb(quick_options("reqblock"));
  const RunResult a = lru.run(t1);
  const RunResult b = rb.run(t2);
  EXPECT_GT(b.hit_ratio(), a.hit_ratio());
}

TEST(SimulatorTest, LargerCacheNeverMuchWorse) {
  for (const char* policy : {"lru", "reqblock"}) {
    SyntheticTraceSource t1(quick_profile(20000)), t2(quick_profile(20000));
    Simulator small(quick_options(policy, 256)),
        large(quick_options(policy, 2048));
    const double small_hits = small.run(t1).hit_ratio();
    const double large_hits = large.run(t2).hit_ratio();
    EXPECT_GE(large_hits, small_hits * 0.98) << policy;
  }
}

TEST(SimulatorTest, FlashWritesScaleWithMisses) {
  SyntheticTraceSource trace(quick_profile(20000));
  Simulator sim(quick_options("lru"));
  const RunResult r = sim.run(trace);
  EXPECT_EQ(r.flash_write_count(),
            r.cache.flushed_pages + r.cache.bypass_pages +
                r.cache.padding_pages);
}

TEST(SimulatorTest, ResponseTimeSplitsConsistent) {
  SyntheticTraceSource trace(quick_profile(10000));
  Simulator sim(quick_options("vbbms"));
  const RunResult r = sim.run(trace);
  EXPECT_EQ(r.read_response.count() + r.write_response.count(),
            r.response.count());
  EXPECT_GE(r.response.max(),
            std::max(r.read_response.max(), r.write_response.max()));
}

TEST(SimulatorTest, MismatchedCapacitiesRejected) {
  SimOptions o = quick_options("lru", 256);
  o.cache.capacity_pages = 512;
  EXPECT_THROW(Simulator{o}, std::logic_error);
}

TEST(SimulatorTest, PaperProfilesRunEndToEnd) {
  for (const auto& profile : profiles::all()) {
    SyntheticTraceSource trace(profile.capped(3000));
    Simulator sim(quick_options("reqblock"));
    const RunResult r = sim.run(trace);
    EXPECT_EQ(r.requests, 3000u) << profile.name;
  }
}

}  // namespace
}  // namespace reqblock
