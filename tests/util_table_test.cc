#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace reqblock {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Every line should have the same indentation structure; spot-check that
  // the header line is as wide as the widest row.
  const auto first_nl = out.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
}

TEST(TextTableTest, HandlesShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
  EXPECT_EQ(t.rows(), 1u);
}

TEST(TextTableTest, EmptyTablePrintsHeader) {
  TextTable t({"x"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find('x'), std::string::npos);
}

}  // namespace
}  // namespace reqblock
