#include "util/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace reqblock {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next_u64());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.next_u64(), first[static_cast<std::size_t>(i)]);
  }
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextBelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, NextInInclusiveBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_in(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, NextInHitsBothEndpoints) {
  Rng rng(11);
  bool lo = false, hi = false;
  for (int i = 0; i < 10000 && !(lo && hi); ++i) {
    const auto v = rng.next_in(0, 3);
    lo = lo || v == 0;
    hi = hi || v == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolProbabilityRoughlyRight) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.next_bool(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanRoughlyRight) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.1);
}

TEST(RngTest, NextSizeWithinBounds) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_size(2.0, 8);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 8u);
  }
}

TEST(RngTest, UniformityOfLowBits) {
  // Sanity check: next_below(2) should be ~50/50.
  Rng rng(29);
  int ones = 0;
  for (int i = 0; i < 100000; ++i) ones += static_cast<int>(rng.next_below(2));
  EXPECT_NEAR(ones / 100000.0, 0.5, 0.01);
}

}  // namespace
}  // namespace reqblock
