#include "trace/micro_workloads.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace reqblock {
namespace {

using namespace micro;

TEST(MicroWorkloadTest, SequentialCoversSpanInOrder) {
  MicroOptions o;
  o.requests = 16;
  const auto reqs = sequential(64, 4, o);
  ASSERT_EQ(reqs.size(), 16u);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].lpn, (i * 4) % 64);
    EXPECT_EQ(reqs[i].pages, 4u);
  }
}

TEST(MicroWorkloadTest, SequentialWrapsAtSpan) {
  MicroOptions o;
  o.requests = 20;
  const auto reqs = sequential(32, 8, o);
  EXPECT_EQ(reqs[4].lpn, 0u);  // wrapped after 4 requests
}

TEST(MicroWorkloadTest, FixedInterarrival) {
  MicroOptions o;
  o.requests = 5;
  o.interarrival = 7;
  const auto reqs = sequential(64, 1, o);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].arrival, static_cast<SimTime>(i) * 7);
  }
}

TEST(MicroWorkloadTest, UniformRandomStaysInSpan) {
  MicroOptions o;
  o.requests = 5000;
  const auto reqs = uniform_random(1000, 8, o);
  for (const auto& r : reqs) {
    ASSERT_LE(r.end_lpn(), 1000u);
    ASSERT_GE(r.pages, 1u);
    ASSERT_LE(r.pages, 8u);
  }
}

TEST(MicroWorkloadTest, UniformRandomDeterministic) {
  MicroOptions o;
  o.requests = 100;
  o.seed = 9;
  const auto a = uniform_random(1000, 8, o);
  const auto b = uniform_random(1000, 8, o);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].lpn, b[i].lpn);
    ASSERT_EQ(a[i].pages, b[i].pages);
  }
}

TEST(MicroWorkloadTest, ZipfSkewsTowardHead) {
  MicroOptions o;
  o.requests = 20000;
  const auto reqs = zipf(1000, 2, 1.1, o);
  std::uint64_t head = 0;
  for (const auto& r : reqs) {
    EXPECT_EQ(r.lpn % 2, 0u);  // extent aligned
    if (r.lpn / 2 < 10) ++head;
  }
  EXPECT_GT(head, reqs.size() / 5);  // the top-10 extents dominate
}

TEST(MicroWorkloadTest, WriteRatioControlsMix) {
  MicroOptions o;
  o.requests = 10000;
  o.write_ratio = 0.25;
  const auto reqs = uniform_random(1000, 4, o);
  std::uint64_t writes = 0;
  for (const auto& r : reqs) writes += r.is_write() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(writes) / 10000.0, 0.25, 0.02);
}

TEST(MicroWorkloadTest, HotWithPollutionSeparatesRegions) {
  MicroOptions o;
  o.requests = 5000;
  const auto reqs = hot_with_pollution(128, 0.5, 8, o);
  std::uint64_t hot = 0;
  std::unordered_set<Lpn> pollution_starts;
  for (const auto& r : reqs) {
    if (r.lpn < 128) {
      ++hot;
      EXPECT_EQ(r.pages, 1u);
    } else {
      EXPECT_EQ(r.pages, 8u);
      // One-shot: every pollution extent address is unique.
      EXPECT_TRUE(pollution_starts.insert(r.lpn).second);
    }
  }
  EXPECT_NEAR(static_cast<double>(hot) / 5000.0, 0.5, 0.03);
}

TEST(MicroWorkloadTest, InvalidParamsRejected) {
  MicroOptions o;
  EXPECT_THROW(sequential(2, 4, o), std::logic_error);
  EXPECT_THROW(uniform_random(0, 1, o), std::logic_error);
  EXPECT_THROW(hot_with_pollution(0, 0.5, 1, o), std::logic_error);
  EXPECT_THROW(hot_with_pollution(10, 1.5, 1, o), std::logic_error);
}

}  // namespace
}  // namespace reqblock
