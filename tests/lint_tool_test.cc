// reqblock-lint fixture & acceptance tests.
//
// Each rule has a _bad fixture that must trigger it exactly once, an _ok
// twin that must stay silent, and a disabled-rule check proving that the
// finding comes from that rule's detection logic (switch the rule off
// and the fixture stops triggering). On top sit suppression-comment and
// baseline-mode semantics, and the acceptance gate: the production tree
// (src/ bench/ examples/) lints clean with an empty baseline.
#include "lint.h"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace reqblock::lint {
namespace {

std::string fixture(const std::string& name) {
  return std::string(REQB_LINT_FIXTURES_DIR) + "/" + name;
}

Report lint_one(const std::string& file, const Options& options = {}) {
  Report out;
  std::string error;
  EXPECT_TRUE(lint_file(fixture(file), options, &out, &error)) << error;
  return out;
}

struct RuleCase {
  const char* rule;
  const char* bad_fixture;
  const char* ok_fixture;
};

const RuleCase kCases[] = {
    {"no-wallclock", "wallclock_bad.cc", "wallclock_ok.cc"},
    {"no-ambient-rng", "ambient_rng_bad.cc", "ambient_rng_ok.cc"},
    {"no-raw-ofstream", "raw_ofstream_bad.cc", "raw_ofstream_ok.cc"},
    {"no-unordered-serialization", "unordered_serialization_bad.cc",
     "unordered_serialization_ok.cc"},
    {"no-raw-float-format", "raw_float_format_bad.cc",
     "raw_float_format_ok.cc"},
    {"check-macro-hygiene", "check_macro_bad.cc", "check_macro_ok.cc"},
};

TEST(LintFixtures, EachBadFixtureTriggersItsRuleExactlyOnce) {
  for (const RuleCase& c : kCases) {
    const Report r = lint_one(c.bad_fixture);
    ASSERT_EQ(r.findings.size(), 1u)
        << c.bad_fixture << " should trigger exactly one finding";
    EXPECT_EQ(r.findings[0].rule, c.rule) << c.bad_fixture;
    EXPECT_GT(r.findings[0].line, 0) << c.bad_fixture;
    EXPECT_FALSE(r.findings[0].message.empty()) << c.bad_fixture;
    EXPECT_EQ(r.suppressed, 0) << c.bad_fixture;
  }
}

TEST(LintFixtures, EachOkTwinStaysSilent) {
  for (const RuleCase& c : kCases) {
    const Report r = lint_one(c.ok_fixture);
    EXPECT_TRUE(r.findings.empty())
        << c.ok_fixture << " triggered: "
        << (r.findings.empty() ? "" : r.findings[0].rule + ": " +
                                          r.findings[0].message);
  }
}

// The acceptance criterion's teeth: disabling a rule's detection logic
// makes its fixture pass, so the finding demonstrably comes from that
// rule — and the two tests above fail if the logic is broken or removed.
TEST(LintFixtures, DisablingARuleSilencesOnlyThatRule) {
  for (const RuleCase& c : kCases) {
    Options options;
    options.disabled.insert(c.rule);
    const Report r = lint_one(c.bad_fixture, options);
    EXPECT_TRUE(r.findings.empty())
        << c.bad_fixture << " still triggers with " << c.rule
        << " disabled";
    // Disabling any *other* rule must leave the finding intact.
    for (const RuleCase& other : kCases) {
      if (std::string(other.rule) == c.rule) continue;
      Options cross;
      cross.disabled.insert(other.rule);
      const Report kept = lint_one(c.bad_fixture, cross);
      ASSERT_EQ(kept.findings.size(), 1u)
          << c.bad_fixture << " lost its finding when disabling "
          << other.rule;
      EXPECT_EQ(kept.findings[0].rule, c.rule);
    }
  }
}

TEST(LintSuppressions, AllowCommentSilencesAndIsCounted) {
  const Report r = lint_one("suppression.cc");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1);
}

TEST(LintSuppressions, IgnoredWhenDisabledSoTheViolationIsStillThere) {
  Options options;
  options.honor_suppressions = false;
  const Report r = lint_one("suppression.cc", options);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "no-wallclock");
  EXPECT_EQ(r.suppressed, 0);
}

TEST(LintBaseline, RoundTripAbsorbsExactlyTheFrozenFindings) {
  const Report r = lint_one("wallclock_bad.cc");
  ASSERT_EQ(r.findings.size(), 1u);
  const std::string baseline = render_baseline(r.findings);
  EXPECT_NE(baseline.find("no-wallclock"), std::string::npos);

  int absorbed = 0;
  const std::vector<Finding> fresh =
      apply_baseline(r.findings, baseline, &absorbed);
  EXPECT_TRUE(fresh.empty());
  EXPECT_EQ(absorbed, 1);

  // A different finding is NOT absorbed by that baseline.
  const Report other = lint_one("ambient_rng_bad.cc");
  ASSERT_EQ(other.findings.size(), 1u);
  int absorbed_other = 0;
  const std::vector<Finding> still =
      apply_baseline(other.findings, baseline, &absorbed_other);
  EXPECT_EQ(still.size(), 1u);
  EXPECT_EQ(absorbed_other, 0);
}

TEST(LintBaseline, KeysSurviveLineNumberDriftButNotContentChanges) {
  Finding f;
  f.file = "a.cc";
  f.rule = "no-wallclock";
  f.line = 10;
  f.line_text = "auto t = std::chrono::system_clock::now();";
  Finding moved = f;
  moved.line = 99;  // same code, shifted by edits above it
  EXPECT_EQ(baseline_key(f), baseline_key(moved));
  Finding changed = f;
  changed.line_text = "auto t2 = std::chrono::system_clock::now();";
  EXPECT_NE(baseline_key(f), baseline_key(changed));
}

TEST(LintBaseline, MultisetSemanticsAbsorbAtMostN) {
  const Report r = lint_one("wallclock_bad.cc");
  ASSERT_EQ(r.findings.size(), 1u);
  // Duplicate the finding; a baseline with ONE entry absorbs only one.
  std::vector<Finding> doubled = {r.findings[0], r.findings[0]};
  int absorbed = 0;
  const std::vector<Finding> fresh =
      apply_baseline(doubled, render_baseline(r.findings), &absorbed);
  EXPECT_EQ(fresh.size(), 1u);
  EXPECT_EQ(absorbed, 1);
}

TEST(LintCatalog, EveryRuleIsDocumentedAndKnown) {
  std::set<std::string> seen;
  for (const RuleInfo& r : rule_catalog()) {
    EXPECT_TRUE(is_known_rule(r.id));
    EXPECT_NE(r.summary[0], '\0');
    EXPECT_NE(r.fix_suggestion[0], '\0');
    seen.insert(r.id);
  }
  EXPECT_EQ(seen.size(), 6u);
  for (const RuleCase& c : kCases) {
    EXPECT_TRUE(seen.count(c.rule) != 0) << c.rule;
  }
  EXPECT_FALSE(is_known_rule("no-such-rule"));
}

TEST(LintSources, CollectsOnlyCppSourcesSorted) {
  std::string error;
  const std::vector<std::string> files =
      collect_sources({REQB_LINT_FIXTURES_DIR}, &error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_FALSE(files.empty());
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
  for (const std::string& f : files) {
    EXPECT_EQ(f.find("README.md"), std::string::npos) << f;
  }
  std::string missing_error;
  const std::vector<std::string> none =
      collect_sources({"/no/such/path/anywhere"}, &missing_error);
  EXPECT_TRUE(none.empty());
  EXPECT_FALSE(missing_error.empty());
}

// The acceptance gate, in-process: the production tree lints clean with
// an empty baseline. Suppressions are allowed (that's the allowlist);
// findings are not. tests/ is deliberately out of scope — fixtures and
// test helpers may violate on purpose.
TEST(LintTree, ProductionTreeIsCleanWithEmptyBaseline) {
  const std::string repo = REQB_LINT_REPO_DIR;
  std::string error;
  const Report r = lint_paths(
      {repo + "/src", repo + "/bench", repo + "/examples"}, {}, &error);
  EXPECT_TRUE(error.empty()) << error;
  std::ostringstream all;
  for (const Finding& f : r.findings) {
    all << f.file << ":" << f.line << ": " << f.rule << ": " << f.message
        << "\n";
  }
  EXPECT_TRUE(r.findings.empty()) << all.str();
  EXPECT_GT(r.files_scanned, 100);
  // The allowlist is small and deliberate: profiler + session wall-clock
  // plus the bench ledgers' wall_unix_s stamps (attribution, multitenant,
  // soak, integrity). A change here means a new wall-clock use slipped
  // in — justify it or remove it.
  EXPECT_EQ(r.suppressed, 9);
}

}  // namespace
}  // namespace reqblock::lint
