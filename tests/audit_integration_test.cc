// Integration sweep: every registered policy replays a randomized mixed
// read/write workload through the full CacheManager + FTL stack with
// run-time audits forced to "full", so CacheManager::serve deep-audits the
// cache layer (and the policy structure beneath it) after every request
// and throws on the first violation. A GC-pressure variant on the micro
// SSD drives the flash array through many erase cycles and then deep-
// audits the device, and the simulator end-to-end path is covered too.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cache/policy_factory.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "trace/vector_source.h"
#include "util/audit.h"
#include "util/rng.h"

namespace reqblock::testing {
namespace {

class AuditLevelGuard {
 public:
  explicit AuditLevelGuard(AuditLevel level)
      : previous_(set_audit_level(level)) {}
  ~AuditLevelGuard() { set_audit_level(previous_); }

 private:
  AuditLevel previous_;
};

class PolicyAuditSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicyAuditSweep, RandomWorkloadStaysAuditCleanUnderFullAudits) {
  AuditLevelGuard audits(AuditLevel::kFull);
  Harness h(policy_config(GetParam(), 128));
  Rng rng(0xA0D17 + std::hash<std::string>{}(GetParam()));

  SimTime at = 0;
  for (std::uint64_t id = 1; id <= 1'500; ++id) {
    const Lpn start = rng.next_below(768);
    const std::uint32_t len =
        1 + static_cast<std::uint32_t>(rng.next_below(10));
    const bool is_read = rng.next_below(4) == 0;
    const IoRequest req = is_read ? read_req(id, start, len, at)
                                  : write_req(id, start, len, at);
    at += 3;
    // serve() audits the whole cache layer after the request and throws a
    // std::logic_error carrying the report on any violated invariant.
    ASSERT_NO_THROW(h.serve(req)) << GetParam() << " request " << id;
  }
  EXPECT_GT(h.cache->metrics().evictions, 0u) << GetParam();

  AuditReport device("Ftl after " + GetParam());
  h.ftl.audit(device);
  EXPECT_TRUE(device.ok()) << device.to_string();
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyAuditSweep,
                         ::testing::ValuesIn(known_policy_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(DeviceAudit, StaysCleanUnderGcPressure) {
  AuditLevelGuard audits(AuditLevel::kFull);
  // Micro SSD: 8-page blocks, few blocks per plane, so overwriting a small
  // working set forces many GC runs and erase cycles.
  Harness h(policy_config("reqblock", 32, /*pages_per_block=*/8),
            micro_ssd());
  Rng rng(0x6C6C);

  SimTime at = 0;
  for (std::uint64_t id = 1; id <= 3'000; ++id) {
    const Lpn start = rng.next_below(256);
    const std::uint32_t len =
        1 + static_cast<std::uint32_t>(rng.next_below(6));
    ASSERT_NO_THROW(h.serve(write_req(id, start, len, at)));
    at += 2;
  }
  EXPECT_GT(h.ftl.metrics().gc_runs, 0u) << "workload never triggered GC";
  EXPECT_GT(h.ftl.metrics().erases, 0u);

  AuditReport report("Ftl under GC pressure");
  h.ftl.audit(report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(DeviceAudit, PreexistingRangesAuditClean) {
  AuditLevelGuard audits(AuditLevel::kFull);
  Ftl ftl(tiny_ssd());
  ftl.add_preexisting_range(0, 4096);
  // Mix pre-conditioned reads with fresh writes that take over mappings.
  SimTime at = 0;
  for (Lpn lpn = 0; lpn < 512; ++lpn) {
    ftl.read_page(lpn, at++);
    if (lpn % 3 == 0) ftl.program_page(lpn, /*version=*/lpn + 1, at++);
  }
  AuditReport report("Ftl with pre-existing data");
  ftl.audit(report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(SimulatorAudit, EndToEndRunAuditsDeviceAtFullLevel) {
  AuditLevelGuard audits(AuditLevel::kFull);
  SimOptions opts;
  opts.ssd = tiny_ssd();
  opts.policy = policy_config("reqblock", 256);
  opts.cache.capacity_pages = opts.policy.capacity_pages;

  std::vector<IoRequest> reqs;
  Rng rng(0x51D);
  SimTime at = 0;
  for (std::uint64_t id = 1; id <= 800; ++id) {
    const Lpn start = rng.next_below(2048);
    const std::uint32_t len =
        1 + static_cast<std::uint32_t>(rng.next_below(8));
    reqs.push_back(rng.next_below(3) == 0 ? read_req(id, start, len, at)
                                          : write_req(id, start, len, at));
    at += 4;
  }
  VectorTraceSource trace(reqs, "audit-e2e");
  Simulator sim(opts);
  // The run itself audits the device at the end (and the cache after every
  // request); completing without a throw is the assertion.
  RunResult result;
  ASSERT_NO_THROW(result = sim.run(trace));
  EXPECT_EQ(result.requests, reqs.size());
}

}  // namespace
}  // namespace reqblock::testing
