#include "util/strings.h"

#include <gtest/gtest.h>

namespace reqblock {
namespace {

TEST(StringsTest, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split(",x,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitNoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringsTest, ParseU64Valid) {
  EXPECT_EQ(parse_u64("123"), 123u);
  EXPECT_EQ(parse_u64(" 42 "), 42u);
  EXPECT_EQ(parse_u64("0"), 0u);
}

TEST(StringsTest, ParseU64Invalid) {
  EXPECT_FALSE(parse_u64("").has_value());
  EXPECT_FALSE(parse_u64("12x").has_value());
  EXPECT_FALSE(parse_u64("-3").has_value());
  EXPECT_FALSE(parse_u64("1.5").has_value());
}

TEST(StringsTest, ParseI64) {
  EXPECT_EQ(parse_i64("-17"), -17);
  EXPECT_EQ(parse_i64("17"), 17);
  EXPECT_FALSE(parse_i64("abc").has_value());
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*parse_double("-1e3"), -1000.0);
  EXPECT_FALSE(parse_double("nanx").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(StringsTest, IEquals) {
  EXPECT_TRUE(iequals("Read", "read"));
  EXPECT_TRUE(iequals("WRITE", "write"));
  EXPECT_FALSE(iequals("read", "reads"));
  EXPECT_FALSE(iequals("a", "b"));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

TEST(StringsTest, FormatDoubleLocaleIndependent) {
  // format_double feeds every CSV the simulator writes; the decimal
  // separator must be '.' regardless of the process locale (to_chars
  // ignores it; snprintf %f would not).
  EXPECT_EQ(format_double(0.5, 6), "0.500000");
  EXPECT_EQ(format_double(-2.25, 3), "-2.250");
  EXPECT_EQ(format_double(0.0, 4), "0.0000");
  EXPECT_EQ(format_double(1234567.0, 1), "1234567.0");
  // Negative precision clamps to 0 rather than corrupting the output.
  EXPECT_EQ(format_double(7.9, -3), "8");
  // Huge magnitudes fall back to scientific instead of truncating.
  const std::string huge = format_double(1e300, 2);
  EXPECT_NE(huge.find('e'), std::string::npos);
}

TEST(StringsTest, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.0B");
  EXPECT_EQ(format_bytes(2048), "2.0KB");
  EXPECT_EQ(format_bytes(16.0 * 1024 * 1024), "16.0MB");
}

}  // namespace
}  // namespace reqblock
