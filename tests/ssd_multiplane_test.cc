// Multi-plane geometry: the Table 1 device uses one plane per chip, but
// the model supports more; these tests pin the geometry math, allocation
// striping and GC independence with planes_per_chip > 1.
#include <gtest/gtest.h>

#include <set>

#include "ssd/ftl.h"
#include "util/rng.h"

namespace reqblock {
namespace {

SsdConfig multiplane_ssd() {
  SsdConfig cfg;
  cfg.channels = 4;
  cfg.chips_per_channel = 2;
  cfg.planes_per_chip = 2;
  cfg.pages_per_block = 16;
  cfg.capacity_bytes =
      static_cast<std::uint64_t>(4) * 2 * 2 * 64 * 16 * 4096;
  cfg.validate();
  return cfg;
}

TEST(MultiPlaneTest, GeometryDerivation) {
  const auto cfg = multiplane_ssd();
  EXPECT_EQ(cfg.total_chips(), 8u);
  EXPECT_EQ(cfg.total_planes(), 16u);
  EXPECT_EQ(cfg.blocks_per_plane(), 64u);
}

TEST(MultiPlaneTest, AddressRoundTrip) {
  const auto cfg = multiplane_ssd();
  const AddressMap amap(cfg);
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const Ppn ppn = rng.next_below(cfg.total_pages());
    const PhysAddr a = amap.to_addr(ppn);
    ASSERT_EQ(amap.to_ppn(a), ppn);
    ASSERT_LT(a.plane, cfg.planes_per_chip);
  }
}

TEST(MultiPlaneTest, RoundRobinCoversAllPlanes) {
  const auto cfg = multiplane_ssd();
  Ftl ftl(cfg);
  // 16 consecutive single-page writes must spread over all chips.
  for (Lpn l = 0; l < cfg.total_planes(); ++l) {
    ftl.program_page(l, 1, 0);
  }
  // Every chip saw exactly planes_per_chip programs worth of busy time...
  // verify via per-chip busy: each chip programs 2 pages, but they can
  // overlap only across chips, not within one chip.
  for (std::uint32_t chip = 0; chip < cfg.total_chips(); ++chip) {
    EXPECT_EQ(ftl.chip_busy(chip), 2 * cfg.program_latency);
  }
}

TEST(MultiPlaneTest, ColocatedBatchStripesPlanesWithinChannel) {
  const auto cfg = multiplane_ssd();  // 4 planes per channel
  Ftl ftl(cfg);
  std::vector<FlushPage> batch;
  for (Lpn l = 0; l < 8; ++l) batch.push_back({l, 1});
  ftl.program_batch(batch, 0, /*colocate=*/true);
  // One channel used; its two chips share the work (4 pages each).
  std::uint32_t busy_channels = 0;
  for (std::uint32_t ch = 0; ch < cfg.channels; ++ch) {
    if (ftl.channel_busy(ch) > 0) ++busy_channels;
  }
  EXPECT_EQ(busy_channels, 1u);
}

TEST(MultiPlaneTest, GcRunsPerPlaneIndependently) {
  SsdConfig cfg = multiplane_ssd();
  cfg.capacity_bytes = 4ULL * 2 * 2 * 16 * 16 * 4096;  // 16 blocks/plane
  cfg.validate();
  Ftl ftl(cfg);
  Rng rng(3);
  const std::uint64_t footprint = cfg.total_pages() / 2;
  for (std::uint64_t i = 0; i < cfg.total_pages() * 3; ++i) {
    ftl.program_page(rng.next_below(footprint), i, 0);
  }
  EXPECT_GT(ftl.metrics().gc_runs, 0u);
  for (std::uint32_t plane = 0; plane < cfg.total_planes(); ++plane) {
    EXPECT_GE(ftl.array().free_blocks(plane), 1u);
  }
  // Every logical page still mapped and readable.
  for (Lpn l = 0; l < footprint; ++l) {
    ASSERT_TRUE(ftl.is_mapped(l) || ftl.version_of(l) == 0);
  }
}

TEST(MultiPlaneTest, WearStatsCoverAllPlanes) {
  SsdConfig cfg = multiplane_ssd();
  cfg.capacity_bytes = 4ULL * 2 * 2 * 16 * 16 * 4096;
  cfg.validate();
  Ftl ftl(cfg);
  Rng rng(9);
  for (std::uint64_t i = 0; i < cfg.total_pages() * 2; ++i) {
    ftl.program_page(rng.next_below(cfg.total_pages() / 2), i, 0);
  }
  const auto wear = ftl.array().wear_stats();
  EXPECT_GT(wear.blocks_touched, 0u);
  EXPECT_GE(wear.max_erases, wear.min_erases);
  EXPECT_GT(wear.mean_erases, 0.0);
  EXPECT_EQ(ftl.array().total_erases(), ftl.metrics().erases);
}

}  // namespace
}  // namespace reqblock
