// Cache + GC interplay: drive the full stack on a device small enough
// that cache flushes trigger steady-state garbage collection, and verify
// the version oracle end to end (every read is checked inside the
// manager; a stale or lost page throws).
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "test_util.h"
#include "trace/vector_source.h"
#include "util/rng.h"

namespace reqblock {
namespace {

std::vector<IoRequest> churn_workload(std::uint64_t requests, Lpn footprint,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<IoRequest> out;
  out.reserve(requests);
  for (std::uint64_t id = 0; id < requests; ++id) {
    IoRequest r;
    r.id = id;
    r.arrival = static_cast<SimTime>(id) * 400 * kMicrosecond;
    r.type = rng.next_bool(0.9) ? IoType::kWrite : IoType::kRead;
    r.pages = static_cast<std::uint32_t>(rng.next_in(1, 6));
    r.lpn = rng.next_below(footprint - r.pages + 1);
    out.push_back(r);
  }
  return out;
}

class GcIntegration : public ::testing::TestWithParam<std::string> {};

TEST_P(GcIntegration, SteadyStateGcKeepsDataConsistent) {
  const auto cfg = testing::micro_ssd();  // 2 planes x 128 blocks x 8 pages
  // Footprint ~60% of the device; enough churn for several device fills.
  const Lpn footprint = cfg.total_pages() * 6 / 10;
  VectorTraceSource trace(
      churn_workload(12000, footprint, 77), "churn");

  SimOptions o;
  o.ssd = cfg;
  o.policy.name = GetParam();
  o.policy.capacity_pages = 128;
  o.policy.pages_per_block = cfg.pages_per_block;
  o.cache.capacity_pages = 128;
  Simulator sim(o);
  const RunResult r = sim.run(trace);  // verify_consistency is on

  EXPECT_GT(r.flash.gc_runs, 0u) << "workload failed to pressure GC";
  EXPECT_GT(r.flash.erases, 0u);
  EXPECT_GE(r.flash.waf(), 1.0);
  // GC work is bounded: moves can't exceed programs times the worst case.
  EXPECT_LT(r.flash.waf(), 3.0);
}

TEST_P(GcIntegration, ReadBackAfterChurnMatchesOracle) {
  const auto cfg = testing::micro_ssd();
  const Lpn footprint = cfg.total_pages() / 2;
  auto requests = churn_workload(8000, footprint, 99);
  // Append a full sweep of reads; each is verified against the oracle
  // inside CacheManager::serve.
  const std::uint64_t base_id = requests.size();
  const SimTime base_t = requests.back().arrival + kSecond;
  for (Lpn l = 0; l < footprint; ++l) {
    IoRequest r;
    r.id = base_id + l;
    r.arrival = base_t + static_cast<SimTime>(l) * 100 * kMicrosecond;
    r.type = IoType::kRead;
    r.lpn = l;
    r.pages = 1;
    requests.push_back(r);
  }
  VectorTraceSource trace(std::move(requests), "churn+sweep");

  SimOptions o;
  o.ssd = cfg;
  o.policy.name = GetParam();
  o.policy.capacity_pages = 128;
  o.policy.pages_per_block = cfg.pages_per_block;
  o.cache.capacity_pages = 128;
  Simulator sim(o);
  EXPECT_NO_THROW({
    const RunResult r = sim.run(trace);
    EXPECT_GT(r.flash.gc_page_moves, 0u);
  });
}

INSTANTIATE_TEST_SUITE_P(Policies, GcIntegration,
                         ::testing::Values("lru", "bplru", "vbbms",
                                           "reqblock"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

}  // namespace
}  // namespace reqblock
