// Shared helpers for the test suite.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache_manager.h"
#include "cache/policy_factory.h"
#include "sim/simulator.h"
#include "ssd/config.h"
#include "ssd/ftl.h"
#include "trace/io_request.h"
#include "trace/vector_source.h"

namespace reqblock::testing {

/// A small SSD (fast to construct) with Table 1 geometry ratios.
inline SsdConfig tiny_ssd() {
  SsdConfig cfg;
  cfg.capacity_bytes = 1ULL << 30;  // 1 GB: 16 planes x 256 blocks
  cfg.validate();
  return cfg;
}

/// An even smaller SSD for GC-pressure tests (few blocks per plane).
inline SsdConfig micro_ssd() {
  SsdConfig cfg;
  cfg.channels = 2;
  cfg.chips_per_channel = 1;
  cfg.pages_per_block = 8;
  cfg.capacity_bytes = 2ULL * 2 * 8 * 64 * 4096;  // 64 blocks per plane
  cfg.validate();
  return cfg;
}

inline IoRequest write_req(std::uint64_t id, Lpn lpn, std::uint32_t pages,
                           SimTime at = 0) {
  IoRequest r;
  r.id = id;
  r.arrival = at;
  r.type = IoType::kWrite;
  r.lpn = lpn;
  r.pages = pages;
  return r;
}

inline IoRequest read_req(std::uint64_t id, Lpn lpn, std::uint32_t pages,
                          SimTime at = 0) {
  IoRequest r = write_req(id, lpn, pages, at);
  r.type = IoType::kRead;
  return r;
}

/// Bundles a device + cache manager for direct-driving tests.
struct Harness {
  explicit Harness(PolicyConfig policy, SsdConfig ssd = tiny_ssd(),
                   CacheOptions cache_opts = {})
      : ftl(ssd) {
    cache_opts.capacity_pages = policy.capacity_pages;
    cache = std::make_unique<CacheManager>(cache_opts, make_policy(policy),
                                           ftl);
  }

  SimTime serve(const IoRequest& r) { return cache->serve(r); }

  Ftl ftl;
  std::unique_ptr<CacheManager> cache;
};

inline PolicyConfig policy_config(const std::string& name,
                                  std::uint64_t capacity_pages,
                                  std::uint32_t pages_per_block = 64) {
  PolicyConfig cfg;
  cfg.name = name;
  cfg.capacity_pages = capacity_pages;
  cfg.pages_per_block = pages_per_block;
  return cfg;
}

}  // namespace reqblock::testing
