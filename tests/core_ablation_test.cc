// Tests for Req-block's ablation knobs (colocate_flush, freq modes) wired
// through the full stack.
#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.h"
#include "test_util.h"
#include "trace/synthetic.h"

namespace reqblock {
namespace {

WorkloadProfile mini_profile() {
  WorkloadProfile p;
  p.name = "ablation";
  p.total_requests = 20000;
  p.seed = 5;
  p.write_ratio = 0.8;
  p.hot_extents = 512;
  p.large_write_fraction = 0.25;
  p.large_write_min_pages = 16;
  p.large_write_max_pages = 32;
  p.cold_stream_pages = 1 << 16;
  p.mean_interarrival_ns = 500 * kMicrosecond;
  return p;
}

SimOptions options_with(ReqBlockOptions rb) {
  SimOptions o;
  o.ssd = testing::tiny_ssd();
  o.policy.name = "reqblock";
  o.policy.capacity_pages = 512;
  o.policy.reqblock = rb;
  o.cache.capacity_pages = 512;
  return o;
}

TEST(ReqBlockAblationTest, ColocatedFlushSlowerThanStriped) {
  ReqBlockOptions striped;
  ReqBlockOptions colocated;
  colocated.colocate_flush = true;

  SyntheticTraceSource t1(mini_profile()), t2(mini_profile());
  Simulator s1(options_with(striped)), s2(options_with(colocated));
  const RunResult a = s1.run(t1);
  const RunResult b = s2.run(t2);
  // Same replacement decisions => identical hits; only flush timing moves.
  EXPECT_EQ(a.cache.page_hits, b.cache.page_hits);
  EXPECT_GT(b.response.mean(), a.response.mean());
}

TEST(ReqBlockAblationTest, ColocateFlagPropagatesToVictims) {
  ReqBlockOptions opts;
  opts.colocate_flush = true;
  ReqBlockPolicy p(opts);
  IoRequest req = testing::write_req(1, 0, 4);
  p.begin_request(req);
  for (Lpn l = 0; l < 4; ++l) p.on_insert(l, req, true);
  IoRequest req2 = testing::write_req(2, 100, 1);
  p.begin_request(req2);
  p.on_insert(100, req2, true);
  const auto v = p.select_victim();
  ASSERT_FALSE(v.empty());
  EXPECT_TRUE(v.colocate);
}

TEST(ReqBlockAblationTest, FreqModesChangeEvictionChoices) {
  // Two candidates: old small frequently-hit block vs fresh large block.
  // kCountOnly prefers evicting access_cnt==1 regardless of size/age;
  // kNoTime penalizes pages; both must differ from kFull somewhere.
  for (const FreqMode mode :
       {FreqMode::kNoTime, FreqMode::kNoSize, FreqMode::kCountOnly}) {
    ReqBlockOptions opts;
    opts.freq_mode = mode;
    ReqBlockPolicy p(opts);
    IoRequest a = testing::write_req(1, 0, 2);
    p.begin_request(a);
    p.on_insert(0, a, true);
    p.on_insert(1, a, true);
    IoRequest b = testing::write_req(2, 100, 8);
    p.begin_request(b);
    for (Lpn l = 100; l < 108; ++l) p.on_insert(l, b, true);
    IoRequest c = testing::write_req(3, 0, 2);
    p.begin_request(c);
    p.on_hit(0, c, true);  // promote block a to SRL
    IoRequest d = testing::write_req(4, 500, 1);
    p.begin_request(d);
    p.on_insert(500, d, true);
    const auto v = p.select_victim();
    ASSERT_FALSE(v.empty());
    // Sanity only: all modes must still produce a non-empty legal victim.
    for (const Lpn l : v.pages) {
      EXPECT_EQ(p.block_of(l), nullptr);
    }
  }
}

/// Builds a state where kFull and the timeless modes disagree:
///   * block A (lpn 0): in SRL with access 2, but aged ~20 ticks;
///   * block B (lpn 1): hot clock-advancer at the SRL head;
///   * block C (lpn 2): fresh IRL tail, access 1;
///   * block D (lpn 3): guarded in-flight IRL head.
/// kFull:       freq(A) = 2/age ~ 0.1 < freq(C) = 1/1   -> evicts A.
/// kNoTime:     freq(A) = 2      > freq(C) = 1          -> evicts C.
/// kCountOnly:  acc(A)  = 2      > acc(C)  = 1          -> evicts C.
std::unique_ptr<ReqBlockPolicy> make_disagreement_state(FreqMode mode) {
  ReqBlockOptions opts;
  opts.freq_mode = mode;
  auto policy = std::make_unique<ReqBlockPolicy>(opts);
  ReqBlockPolicy& p = *policy;
  IoRequest a = testing::write_req(1, 0, 1);
  p.begin_request(a);
  p.on_insert(0, a, true);
  IoRequest ha = testing::write_req(2, 0, 1);
  p.begin_request(ha);
  p.on_hit(0, ha, true);  // A -> SRL, access 2
  IoRequest b = testing::write_req(3, 1, 1);
  p.begin_request(b);
  p.on_insert(1, b, true);
  // Advance the tick clock by hammering B (it rides the SRL head).
  for (std::uint64_t i = 0; i < 16; ++i) {
    IoRequest h = testing::write_req(4 + i, 1, 1);
    p.begin_request(h);
    p.on_hit(1, h, true);
  }
  IoRequest c = testing::write_req(100, 2, 1);
  p.begin_request(c);
  p.on_insert(2, c, true);
  IoRequest d = testing::write_req(101, 3, 1);
  p.begin_request(d);
  p.on_insert(3, d, true);  // guarded head; C becomes the IRL tail
  return policy;
}

TEST(ReqBlockAblationTest, FullModeEvictsAgedSrlBlock) {
  auto p = make_disagreement_state(FreqMode::kFull);
  const auto v = p->select_victim();
  ASSERT_EQ(v.pages.size(), 1u);
  EXPECT_EQ(v.pages[0], 0u);  // the aged SRL block loses its protection
}

TEST(ReqBlockAblationTest, NoTimeModeKeepsAgedSrlBlock) {
  auto p = make_disagreement_state(FreqMode::kNoTime);
  const auto v = p->select_victim();
  ASSERT_EQ(v.pages.size(), 1u);
  EXPECT_EQ(v.pages[0], 2u);  // timeless frequency protects A forever
}

TEST(ReqBlockAblationTest, CountOnlyModeKeepsAgedSrlBlock) {
  auto p = make_disagreement_state(FreqMode::kCountOnly);
  const auto v = p->select_victim();
  ASSERT_EQ(v.pages.size(), 1u);
  EXPECT_EQ(v.pages[0], 2u);
}

}  // namespace
}  // namespace reqblock
