// Randomized property sweeps of the Req-block policy driven standalone
// (no cache manager): structural invariants must hold under arbitrary
// interleavings of inserts, hits and evictions, across deltas and modes.
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "core/req_block_policy.h"
#include "test_util.h"
#include "util/rng.h"

namespace reqblock {
namespace {

using testing::write_req;

struct SweepParam {
  std::uint32_t delta;
  bool merge;
  FreqMode mode;
  std::uint64_t seed;
};

class ReqBlockSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ReqBlockSweep, StructuralInvariantsUnderChurn) {
  const auto param = GetParam();
  ReqBlockOptions opts;
  opts.delta = param.delta;
  opts.merge_on_evict = param.merge;
  opts.freq_mode = param.mode;
  ReqBlockPolicy policy(opts);

  Rng rng(param.seed);
  std::unordered_set<Lpn> cached;  // reference model of residency
  constexpr std::uint64_t kCapacity = 64;
  constexpr Lpn kSpace = 512;

  for (std::uint64_t reqid = 1; reqid <= 2000; ++reqid) {
    const Lpn base = rng.next_below(kSpace);
    const auto pages =
        static_cast<std::uint32_t>(rng.next_in(1, 12));
    const IoRequest req = write_req(reqid, base, pages);
    policy.begin_request(req);
    for (std::uint32_t i = 0; i < pages; ++i) {
      const Lpn lpn = (base + i) % kSpace;
      if (cached.contains(lpn)) {
        policy.on_hit(lpn, req, true);
      } else {
        while (cached.size() >= kCapacity) {
          const auto victim = policy.select_victim();
          if (victim.empty()) break;  // guarded-only state
          for (const Lpn v : victim.pages) {
            ASSERT_TRUE(cached.erase(v) == 1)
                << "policy evicted a page it does not hold";
          }
        }
        if (cached.size() >= kCapacity) continue;  // bypass
        policy.on_insert(lpn, req, true);
        cached.insert(lpn);
      }
      // Core invariants after every step.
      ASSERT_EQ(policy.pages(), cached.size());
      const auto occ = policy.occupancy();
      ASSERT_EQ(occ.total_pages(), cached.size());
      ASSERT_EQ(occ.irl_blocks + occ.srl_blocks + occ.drl_blocks,
                policy.block_count());
    }
  }

  // Every cached page must resolve to a block that agrees on membership.
  for (const Lpn lpn : cached) {
    const ReqBlock* b = policy.block_of(lpn);
    ASSERT_NE(b, nullptr);
    bool found = false;
    for (const Lpn p : b->pages) found = found || p == lpn;
    ASSERT_TRUE(found);
  }
}

TEST_P(ReqBlockSweep, SrlBlocksNeverExceedDelta) {
  const auto param = GetParam();
  ReqBlockOptions opts;
  opts.delta = param.delta;
  opts.merge_on_evict = param.merge;
  opts.freq_mode = param.mode;
  ReqBlockPolicy policy(opts);

  Rng rng(param.seed ^ 0xabcdef);
  std::unordered_set<Lpn> cached;
  for (std::uint64_t reqid = 1; reqid <= 800; ++reqid) {
    const Lpn base = rng.next_below(256);
    const auto pages = static_cast<std::uint32_t>(rng.next_in(1, 10));
    const IoRequest req = write_req(reqid, base, pages);
    policy.begin_request(req);
    for (std::uint32_t i = 0; i < pages; ++i) {
      const Lpn lpn = base + i;
      if (cached.contains(lpn)) {
        policy.on_hit(lpn, req, true);
        const ReqBlock* b = policy.block_of(lpn);
        ASSERT_NE(b, nullptr);
        if (b->level == ReqList::kSRL) {
          ASSERT_LE(b->page_count(), param.delta);
        }
      } else {
        if (cached.size() >= 48) {
          const auto victim = policy.select_victim();
          if (!victim.empty()) {
            for (const Lpn v : victim.pages) cached.erase(v);
          } else {
            continue;
          }
        }
        policy.on_insert(lpn, req, true);
        cached.insert(lpn);
      }
    }
  }
}

TEST_P(ReqBlockSweep, EvictionAlwaysMakesProgressWhenUnguarded) {
  const auto param = GetParam();
  ReqBlockOptions opts;
  opts.delta = param.delta;
  opts.merge_on_evict = param.merge;
  opts.freq_mode = param.mode;
  ReqBlockPolicy policy(opts);

  // Insert several complete requests; then eviction (outside any request)
  // must be able to drain the policy completely.
  Rng rng(param.seed + 17);
  std::uint64_t inserted = 0;
  Lpn next = 0;
  for (std::uint64_t reqid = 1; reqid <= 50; ++reqid) {
    const auto pages = static_cast<std::uint32_t>(rng.next_in(1, 9));
    const IoRequest req = write_req(reqid, next, pages);
    policy.begin_request(req);
    for (std::uint32_t i = 0; i < pages; ++i) {
      policy.on_insert(next++, req, true);
      ++inserted;
    }
  }
  // New request context releases the guards.
  policy.begin_request(write_req(1000, 1 << 20, 1));
  std::uint64_t drained = 0;
  while (policy.pages() > 0) {
    const auto victim = policy.select_victim();
    ASSERT_FALSE(victim.empty()) << "pages remain but no victim";
    drained += victim.pages.size();
  }
  EXPECT_EQ(drained, inserted);
  EXPECT_EQ(policy.block_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    DeltaMergeModeMatrix, ReqBlockSweep,
    ::testing::Values(
        SweepParam{1, true, FreqMode::kFull, 11},
        SweepParam{2, true, FreqMode::kFull, 12},
        SweepParam{5, true, FreqMode::kFull, 13},
        SweepParam{5, false, FreqMode::kFull, 14},
        SweepParam{9, true, FreqMode::kFull, 15},
        SweepParam{5, true, FreqMode::kNoTime, 16},
        SweepParam{5, true, FreqMode::kNoSize, 17},
        SweepParam{5, true, FreqMode::kCountOnly, 18},
        SweepParam{3, false, FreqMode::kNoTime, 19},
        SweepParam{64, true, FreqMode::kFull, 20}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string mode;
      switch (info.param.mode) {
        case FreqMode::kFull: mode = "full"; break;
        case FreqMode::kNoTime: mode = "notime"; break;
        case FreqMode::kNoSize: mode = "nosize"; break;
        case FreqMode::kCountOnly: mode = "countonly"; break;
      }
      return "delta" + std::to_string(info.param.delta) +
             (info.param.merge ? "_merge_" : "_nomerge_") + mode + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace reqblock
