// Overload protection under the determinism and checkpoint contracts: two
// identical overloaded runs are byte-identical (with and without faults),
// a session checkpointed mid-burst with a non-empty admission queue
// snapshots byte-stably and resumes to a byte-identical results CSV, and
// a checkpoint taken under one overload configuration refuses to restore
// into another (config fingerprint coverage).
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "sim/checkpoint.h"
#include "sim/report.h"
#include "sim/session.h"
#include "snapshot/snapshot.h"
#include "test_util.h"
#include "trace/synthetic.h"
#include "util/audit.h"

namespace reqblock {
namespace {

namespace fs = std::filesystem;

struct FullAuditScope {
  AuditLevel previous = set_audit_level(AuditLevel::kFull);
  ~FullAuditScope() { set_audit_level(previous); }
};

std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/ovckpt_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Bursty, write-heavy profile that keeps the admission queue busy.
WorkloadProfile burst_profile(std::uint64_t requests = 3000) {
  WorkloadProfile p;
  p.name = "ov-burst";
  p.total_requests = requests;
  p.seed = 17;
  p.write_ratio = 0.8;
  p.hot_extents = 128;
  p.cold_stream_pages = 1 << 15;
  p.mean_interarrival_ns = 150 * kMicrosecond;
  p.burst_arrival_len = 200;
  p.burst_arrival_period = 1000;
  p.burst_arrival_factor = 10.0;
  return p;
}

SimOptions overloaded_options(bool faults) {
  SimOptions o;
  o.ssd = testing::tiny_ssd();
  o.policy.name = "reqblock";
  o.policy.capacity_pages = 256;
  o.policy.pages_per_block = o.ssd.pages_per_block;
  o.cache.capacity_pages = 256;
  o.telemetry_env_override = false;
  o.overload.queue_depth = 4;
  o.overload.deadline_ns = 2 * kMillisecond;
  o.overload.timeout_action = TimeoutAction::kRetry;
  o.overload.max_retries = 2;
  o.overload.retry_backoff_ns = 300 * kMicrosecond;
  o.overload.bg_flush_high = 0.8;
  o.overload.bg_flush_low = 0.6;
  o.overload.throttle = true;
  if (faults) {
    o.fault.seed = 5;
    o.fault.program_fail_prob = 0.02;
    o.fault.power_loss_every_requests = 700;
  }
  return o;
}

std::string csv_of(const RunResult& r) {
  std::ostringstream os;
  write_results_csv(os, {r});
  return os.str();
}

RunResult run_whole(const SimOptions& o, const WorkloadProfile& p) {
  SyntheticTraceSource trace(p);
  SimulationSession session(o, trace);
  while (session.step()) {
  }
  return session.finish();
}

TEST(OverloadDeterminismTest, TwoRunsAreByteIdentical) {
  FullAuditScope audit_scope;
  for (const bool faults : {false, true}) {
    SCOPED_TRACE(faults ? "faults" : "fault-free");
    const SimOptions o = overloaded_options(faults);
    const WorkloadProfile p = burst_profile();
    const RunResult a = run_whole(o, p);
    const RunResult b = run_whole(o, p);
    EXPECT_GT(a.overload.admitted, 0u);
    EXPECT_EQ(csv_of(a), csv_of(b));
  }
}

TEST(OverloadCheckpointTest, MidBurstSnapshotIsByteStable) {
  FullAuditScope audit_scope;
  const SimOptions o = overloaded_options(false);
  const WorkloadProfile p = burst_profile();
  SyntheticTraceSource trace(p);
  SimulationSession session(o, trace);
  // Stop inside a spike phase so in-flight commands are queued up.
  while (session.served() < 1250 && session.step()) {
  }
  ASSERT_GT(session.queue_in_flight(), 0u)
      << "checkpoint must land with a non-empty admission queue";
  SnapshotWriter w1;
  session.serialize(w1);
  const std::string bytes = w1.take();

  SyntheticTraceSource trace2(p);
  SimulationSession restored(o, trace2);
  SnapshotReader r(bytes);
  restored.deserialize(r);
  EXPECT_EQ(restored.queue_in_flight(), session.queue_in_flight());
  SnapshotWriter w2;
  restored.serialize(w2);
  EXPECT_EQ(bytes, w2.take()) << "serialize -> deserialize -> serialize "
                                 "must reproduce identical bytes";
}

TEST(OverloadCheckpointTest, ResumeMidBurstMatchesUninterruptedCsv) {
  FullAuditScope audit_scope;
  for (const bool faults : {false, true}) {
    SCOPED_TRACE(faults ? "faults" : "fault-free");
    const SimOptions o = overloaded_options(faults);
    const WorkloadProfile p = burst_profile();
    const RunResult whole = run_whole(o, p);
    ASSERT_GT(whole.overload.admitted, 0u);

    const std::string dir = scratch_dir(faults ? "resume_f" : "resume_nf");
    {
      SyntheticTraceSource trace(p);
      SimulationSession session(o, trace);
      while (session.served() < 1250 && session.step()) {
      }
      EXPECT_GT(session.queue_in_flight(), 0u);
      save_session_checkpoint(session, dir, "run", 2);
    }
    SyntheticTraceSource trace(p);
    SimulationSession session(o, trace);
    restore_session_checkpoint(session, find_latest_checkpoint(dir, "run"));
    while (session.step()) {
    }
    EXPECT_EQ(csv_of(whole), csv_of(session.finish()));
  }
}

TEST(OverloadCheckpointTest, RestoreRefusesMismatchedOverloadConfig) {
  const WorkloadProfile p = burst_profile(1500);
  const std::string dir = scratch_dir("refuse");
  {
    SyntheticTraceSource trace(p);
    SimulationSession session(overloaded_options(false), trace);
    while (session.served() < 600 && session.step()) {
    }
    save_session_checkpoint(session, dir, "run", 2);
  }
  const std::string path = find_latest_checkpoint(dir, "run");
  ASSERT_FALSE(path.empty());

  // Every overload knob is part of the config fingerprint.
  const auto refuse = [&](SimOptions other) {
    SyntheticTraceSource trace(p);
    SimulationSession session(other, trace);
    EXPECT_THROW(restore_session_checkpoint(session, path), SnapshotError);
  };
  SimOptions o = overloaded_options(false);
  o.overload.queue_depth = 8;
  refuse(o);
  o = overloaded_options(false);
  o.overload.deadline_ns = 5 * kMillisecond;
  refuse(o);
  o = overloaded_options(false);
  o.overload.bg_flush_high = 0.9;
  refuse(o);
  o = overloaded_options(false);
  o.overload.throttle = false;
  refuse(o);

  // The matching configuration restores fine.
  SyntheticTraceSource trace(p);
  SimulationSession session(overloaded_options(false), trace);
  EXPECT_NO_THROW(restore_session_checkpoint(session, path));
}

TEST(OverloadCheckpointTest, FingerprintCoversEveryOverloadField) {
  const SimOptions base = overloaded_options(false);
  const std::uint64_t h = config_fingerprint(base);
  const auto differs = [&](auto mutate) {
    SimOptions o = overloaded_options(false);
    mutate(o.overload);
    EXPECT_NE(config_fingerprint(o), h);
  };
  differs([](OverloadOptions& o) { o.queue_depth = 99; });
  differs([](OverloadOptions& o) { o.deadline_ns += 1; });
  differs([](OverloadOptions& o) { o.timeout_action = TimeoutAction::kShed; });
  differs([](OverloadOptions& o) { o.max_retries += 1; });
  differs([](OverloadOptions& o) { o.retry_backoff_ns += 1; });
  differs([](OverloadOptions& o) { o.bg_flush_high = 0.81; });
  differs([](OverloadOptions& o) { o.bg_flush_low = 0.61; });
  differs([](OverloadOptions& o) { o.throttle = false; });
  differs([](OverloadOptions& o) { o.throttle_headroom_blocks += 1; });
  differs([](OverloadOptions& o) { o.throttle_max_delay_ns += 1; });
}

}  // namespace
}  // namespace reqblock
