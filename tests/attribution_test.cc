// Latency-attribution subsystem tests.
//
// The tentpole invariant — every served request's component spans sum
// exactly (integer sim-ns) to its end-to-end latency — is audited per
// request inside SimulationSession under REQBLOCK_AUDIT=full, so the
// policy sweep here simply forces that level and replays a bursty
// workload through every policy, with and without fault injection and
// overload protection: completing without an audit throw IS the
// exactness proof. On top, the aggregate is reconciled against the
// response histogram, snapshot/resume must reproduce the attribution
// section byte for byte, attribution must not perturb simulated timing,
// and the exported Chrome trace must parse under the same strict JSON
// reader perf_diff uses, with the span lanes tiling each request.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "../tools/perf_diff/json_mini.h"
#include "cache/policy_factory.h"
#include "sim/report.h"
#include "sim/session.h"
#include "snapshot/snapshot.h"
#include "telemetry/attribution.h"
#include "telemetry/exporters.h"
#include "test_util.h"
#include "trace/profiles.h"
#include "trace/synthetic.h"
#include "util/audit.h"

namespace reqblock::testing {
namespace {

class AuditLevelGuard {
 public:
  explicit AuditLevelGuard(AuditLevel level)
      : previous_(set_audit_level(level)) {}
  ~AuditLevelGuard() { set_audit_level(previous_); }

 private:
  AuditLevel previous_;
};

/// Bursty usr_0-shaped workload: spikes saturate the device so queueing,
/// eviction stalls and GC all carry time.
WorkloadProfile bursty_profile(std::uint64_t requests) {
  WorkloadProfile p = profiles::by_name("usr_0").capped(requests);
  p.burst_arrival_len = 200;
  p.burst_arrival_period = 1000;
  p.burst_arrival_factor = 10.0;
  p.mean_interarrival_ns = static_cast<SimTime>(
      static_cast<double>(p.mean_interarrival_ns) / 4.0);
  return p;
}

SimOptions attribution_options(const std::string& policy, bool faults,
                               bool overload) {
  SimOptions o;
  o.ssd = tiny_ssd();
  o.policy = policy_config(policy, 512);
  o.cache.capacity_pages = o.policy.capacity_pages;
  o.telemetry.attribution = true;
  o.telemetry_env_override = false;
  if (faults) {
    o.fault.seed = 0xF00D;
    o.fault.program_fail_prob = 0.01;
    o.fault.read_fail_prob = 0.01;
    o.fault.power_loss_every_requests = 700;
  }
  if (overload) {
    o.overload.queue_depth = 8;
    o.overload.deadline_ns = 2 * kMillisecond;  // sheds under the bursts
    o.overload.throttle = true;
    o.overload.bg_flush_high = 0.75;
    o.overload.bg_flush_low = 0.50;
  }
  return o;
}

std::uint64_t component_total(const AttributionResult& a) {
  std::uint64_t sum = 0;
  for (const std::uint64_t v : a.component_ns) sum += v;
  return sum;
}

std::string serialized_attribution(const AttributionResult& a) {
  SnapshotWriter w;
  a.serialize(w);
  return w.take();
}

// --- Exact-sum sweep: 8 policies x {faults, overload} ----------------------

class AttributionPolicySweep : public ::testing::TestWithParam<std::string> {};

TEST_P(AttributionPolicySweep, ExactSumHoldsUnderFullAudit) {
  AuditLevelGuard audits(AuditLevel::kFull);
  for (const bool faults : {false, true}) {
    for (const bool overload : {false, true}) {
      const SimOptions o = attribution_options(GetParam(), faults, overload);
      SyntheticTraceSource trace(bursty_profile(2000));
      Simulator sim(o);
      RunResult r;
      // The session audits sum(components) == done - host_arrival after
      // every request (warmup included); a violation throws here.
      ASSERT_NO_THROW(r = sim.run(trace))
          << GetParam() << " faults=" << faults << " overload=" << overload;
      const AttributionResult& a = r.attribution;
      ASSERT_TRUE(a.enabled);
      // Shed requests never complete: attribution mirrors the response
      // histogram exactly, not the arrival count.
      EXPECT_EQ(a.requests, r.response.count());
      EXPECT_EQ(a.total_ns, static_cast<std::uint64_t>(r.response.raw_sum()));
      EXPECT_EQ(component_total(a), a.total_ns);
      EXPECT_TRUE(a.consistent());
      if (overload) {
        EXPECT_GT(a.component_ns[static_cast<std::size_t>(
                      AttrComponent::kQueueWait)], 0u)
            << GetParam() << " faults=" << faults;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, AttributionPolicySweep,
                         ::testing::ValuesIn(known_policy_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --- Timing identity: attribution never perturbs the simulation ------------

TEST(Attribution, DoesNotPerturbSimulatedTiming) {
  SimOptions off = attribution_options("reqblock", true, true);
  off.telemetry.attribution = false;
  SimOptions on = off;
  on.telemetry.attribution = true;

  const WorkloadProfile p = bursty_profile(1500);
  SyntheticTraceSource t_off(p), t_on(p);
  RunResult r_off = Simulator(off).run(t_off);
  RunResult r_on = Simulator(on).run(t_on);

  SnapshotWriter w_off, w_on;
  serialize(w_off, r_off.response);
  serialize(w_on, r_on.response);
  EXPECT_EQ(w_off.take(), w_on.take());
  EXPECT_EQ(r_off.sim_end, r_on.sim_end);
  EXPECT_EQ(r_off.flash.host_page_writes, r_on.flash.host_page_writes);
  EXPECT_EQ(r_off.flash.gc_page_moves, r_on.flash.gc_page_moves);
  EXPECT_FALSE(r_off.attribution.enabled);
  EXPECT_TRUE(r_on.attribution.enabled);
}

// --- Snapshot / resume ------------------------------------------------------

TEST(Attribution, SnapshotResumeReproducesAttributionByteForByte) {
  AuditLevelGuard audits(AuditLevel::kFull);
  const SimOptions o = attribution_options("reqblock", true, true);
  const WorkloadProfile p = bursty_profile(1500);

  SyntheticTraceSource t_ref(p);
  SimulationSession ref(o, t_ref);
  while (ref.step()) {
  }
  const RunResult straight = ref.finish();

  SyntheticTraceSource t_a(p), t_b(p);
  SimulationSession a(o, t_a);
  for (int i = 0; i < 700; ++i) ASSERT_TRUE(a.step());
  SnapshotWriter w;
  a.serialize(w);
  const std::string payload = w.take();

  SimulationSession b(o, t_b);
  SnapshotReader r(payload);
  b.deserialize(r);
  r.expect_end();
  while (b.step()) {
  }
  const RunResult resumed = b.finish();

  EXPECT_EQ(straight.response.count(), resumed.response.count());
  EXPECT_EQ(serialized_attribution(straight.attribution),
            serialized_attribution(resumed.attribution));
}

TEST(Attribution, SnapshotDisagreementOnAttributionThrows) {
  const SimOptions on = attribution_options("reqblock", false, false);
  const WorkloadProfile p = bursty_profile(300);
  SyntheticTraceSource t_a(p), t_b(p);
  SimulationSession a(on, t_a);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(a.step());
  SnapshotWriter w;
  a.serialize(w);
  const std::string payload = w.take();

  SimOptions off = on;
  off.telemetry.attribution = false;
  SimulationSession b(off, t_b);
  SnapshotReader r(payload);
  EXPECT_THROW(b.deserialize(r), SnapshotError);
}

// --- Chrome-trace span export ----------------------------------------------

TEST(Attribution, ChromeTraceSpansTileRequestsAndParseStrictly) {
  const WorkloadProfile p = bursty_profile(500);
  SimOptions o = attribution_options("reqblock", false, true);
  o.telemetry.trace.level = TraceLevel::kAll;
  o.telemetry.trace.capacity = 1 << 20;  // hold every event, no overwrite
  SyntheticTraceSource trace(p);
  const RunResult r = Simulator(o).run(trace);

  // The emitted spans of one measured request tile a contiguous interval
  // in enum order; every span sits on a component lane.
  std::map<std::uint64_t, std::vector<TraceEvent>> by_request;
  for (const TraceEvent& e : r.telemetry.events) {
    if (e.kind != EventKind::kAttrSpan) continue;
    EXPECT_LT(e.track, kAttrComponents);
    EXPECT_GT(e.dur, 0);
    by_request[e.arg].push_back(e);
  }
  ASSERT_FALSE(by_request.empty());
  for (const auto& [req, spans] : by_request) {
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_EQ(spans[i].at, spans[i - 1].at + spans[i - 1].dur)
          << "request " << req << " spans do not tile";
      EXPECT_GT(spans[i].track, spans[i - 1].track)
          << "request " << req << " spans out of component order";
    }
  }

  // The export must survive the same strict JSON parser perf_diff uses
  // (one grammar across CI's validators), and carry the attribution
  // process with per-component lanes.
  std::ostringstream os;
  write_chrome_trace(os, r.telemetry.events);
  jsonmini::JsonValue root;
  ASSERT_NO_THROW(root = jsonmini::JsonParser(os.str()).parse());
  const jsonmini::JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, jsonmini::JsonValue::Type::kArray);
  std::uint64_t attr_slices = 0;
  std::uint64_t attr_lanes = 0;
  for (const auto& e : events->array) {
    const jsonmini::JsonValue* pid = e.find("pid");
    const jsonmini::JsonValue* name = e.find("name");
    if (pid == nullptr || name == nullptr || pid->number != 4.0) continue;
    if (name->text == "attr_span") ++attr_slices;
    if (name->text == "thread_name") {
      const jsonmini::JsonValue* args = e.find("args");
      ASSERT_NE(args, nullptr);
      const jsonmini::JsonValue* lane = args->find("name");
      ASSERT_NE(lane, nullptr);
      bool known = false;
      for (std::size_t c = 0; c < kAttrComponents; ++c) {
        known |= lane->text == to_string(static_cast<AttrComponent>(c));
      }
      EXPECT_TRUE(known) << "unexpected attribution lane " << lane->text;
      ++attr_lanes;
    }
  }
  EXPECT_GT(attr_slices, 0u);
  EXPECT_GT(attr_lanes, 1u);
}

// --- Aggregation, tail slices, reports -------------------------------------

TEST(AttributionResult, TailSliceAndRanking) {
  AttributionResult a;
  a.prepare();
  RequestBreakdown fast;
  fast[AttrComponent::kCacheLookup] = 100;
  for (int i = 0; i < 90; ++i) a.record(fast, 100);
  RequestBreakdown slow;
  slow[AttrComponent::kGc] = 900;
  slow[AttrComponent::kFtlProgram] = 100;
  for (int i = 0; i < 10; ++i) a.record(slow, 1000);
  ASSERT_TRUE(a.consistent());

  const TailSlice decile = tail_slice(a, 0.10);
  EXPECT_EQ(decile.requests, 10u);
  EXPECT_EQ(decile.total_ns, 10u * 1000u);
  EXPECT_EQ(decile.component_ns[static_cast<std::size_t>(AttrComponent::kGc)],
            10u * 900u);
  const auto ranked = rank_components(decile);
  EXPECT_EQ(ranked[0], static_cast<std::size_t>(AttrComponent::kGc));
  EXPECT_EQ(ranked[1], static_cast<std::size_t>(AttrComponent::kFtlProgram));

  const TailSlice all = tail_slice(a, 1.0);
  EXPECT_EQ(all.requests, 100u);
  EXPECT_EQ(all.total_ns, 90u * 100u + 10u * 1000u);

  // Round-trip the aggregate and clear it.
  SnapshotWriter w;
  a.serialize(w);
  const std::string bytes = w.take();
  AttributionResult back;
  SnapshotReader r(bytes);
  back.deserialize(r);
  r.expect_end();
  EXPECT_EQ(serialized_attribution(back), bytes);
  a.clear();
  EXPECT_EQ(a.requests, 0u);
  EXPECT_TRUE(a.enabled);
  EXPECT_TRUE(a.consistent());
}

TEST(TailAttributionReport, SilentWithoutAttributionRendersWithIt) {
  RunResult plain;
  plain.trace_name = "t";
  plain.policy_name = "p";
  std::ostringstream empty_os;
  write_tail_attribution(empty_os, {plain});
  EXPECT_TRUE(empty_os.str().empty());
  std::ostringstream empty_csv;
  write_tail_attribution_csv(empty_csv, {plain});
  EXPECT_EQ(empty_csv.str(),
            "trace,policy,slice_pct,slice_requests,threshold_ns,"
            "slice_total_ns,component,component_ns,share\n");

  SimOptions o = attribution_options("reqblock", false, false);
  SyntheticTraceSource trace(bursty_profile(500));
  const RunResult r = Simulator(o).run(trace);
  std::ostringstream os;
  write_tail_attribution(os, {r});
  EXPECT_NE(os.str().find("Tail attribution"), std::string::npos);
  EXPECT_NE(os.str().find("slowest 10%"), std::string::npos);
  EXPECT_NE(os.str().find("slowest 1%"), std::string::npos);
  std::ostringstream csv1, csv2;
  write_tail_attribution_csv(csv1, {r});
  write_tail_attribution_csv(csv2, {r});
  EXPECT_EQ(csv1.str(), csv2.str());  // byte-stable
  // 1 header + 2 slices x 8 components.
  std::size_t lines = 0;
  for (const char c : csv1.str()) lines += c == '\n';
  EXPECT_EQ(lines, 1u + 2u * kAttrComponents);
}

}  // namespace
}  // namespace reqblock::testing
