#include "cache/cflru.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace reqblock {
namespace {

using testing::read_req;
using testing::write_req;

TEST(CflruPolicyTest, AllDirtyDegeneratesToLru) {
  CflruPolicy p(8, 0.5);
  for (Lpn l = 0; l < 4; ++l) p.on_insert(l, write_req(l, l, 1), true);
  EXPECT_EQ(p.select_victim().pages[0], 0u);
  EXPECT_EQ(p.select_victim().pages[0], 1u);
}

TEST(CflruPolicyTest, CleanPageInWindowPreferred) {
  CflruPolicy p(8, 0.5);  // window = 4 entries
  p.on_insert(0, write_req(0, 0, 1), true);   // dirty, will be LRU tail
  p.on_insert(1, read_req(1, 1, 1), false);   // clean
  p.on_insert(2, write_req(2, 2, 1), true);
  // Tail order: 0 (dirty), 1 (clean), 2 (dirty). Window covers all three.
  EXPECT_EQ(p.select_victim().pages[0], 1u);
}

TEST(CflruPolicyTest, CleanOutsideWindowNotConsidered) {
  CflruPolicy p(8, 0.25);  // window = 2 entries
  p.on_insert(0, read_req(0, 0, 1), false);  // clean but oldest
  p.on_insert(1, write_req(1, 1, 1), true);
  p.on_insert(2, write_req(2, 2, 1), true);
  p.on_insert(3, write_req(3, 3, 1), true);
  // Window scans only lpns 0 and 1 from the tail; 0 is clean -> victim.
  EXPECT_EQ(p.select_victim().pages[0], 0u);

  // Now make a clean page sit beyond the window.
  CflruPolicy q(8, 0.25);
  q.on_insert(10, write_req(0, 10, 1), true);
  q.on_insert(11, write_req(1, 11, 1), true);
  q.on_insert(12, read_req(2, 12, 1), false);  // clean, 3rd from tail
  q.on_insert(13, write_req(3, 13, 1), true);
  // Window = {10, 11}: both dirty -> plain LRU tail (10).
  EXPECT_EQ(q.select_victim().pages[0], 10u);
}

TEST(CflruPolicyTest, WriteHitDirtiesCleanPage) {
  CflruPolicy p(8, 1.0);
  p.on_insert(0, read_req(0, 0, 1), false);  // clean
  p.on_insert(1, write_req(1, 1, 1), true);
  p.on_hit(0, write_req(2, 0, 1), true);     // now dirty, and MRU
  // No clean page anywhere -> dirty LRU tail is lpn 1.
  EXPECT_EQ(p.select_victim().pages[0], 1u);
}

TEST(CflruPolicyTest, ReadHitKeepsCleanState) {
  CflruPolicy p(8, 1.0);
  p.on_insert(0, read_req(0, 0, 1), false);
  p.on_insert(1, write_req(1, 1, 1), true);
  p.on_hit(0, read_req(2, 0, 1), false);
  // lpn 0 stays clean, so despite being MRU it is still the clean victim.
  EXPECT_EQ(p.select_victim().pages[0], 0u);
}

TEST(CflruPolicyTest, InvalidWindowFractionThrows) {
  EXPECT_THROW(CflruPolicy(8, -0.1), std::logic_error);
  EXPECT_THROW(CflruPolicy(8, 1.5), std::logic_error);
}

TEST(CflruPolicyTest, EmptyVictim) {
  CflruPolicy p(8, 0.5);
  EXPECT_TRUE(p.select_victim().empty());
}

}  // namespace
}  // namespace reqblock
