#include "cache/cache_manager.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace reqblock {
namespace {

using testing::Harness;
using testing::policy_config;
using testing::read_req;
using testing::write_req;

TEST(CacheManagerTest, WriteInsertsCountedNotHits) {
  Harness h(policy_config("lru", 16));
  h.serve(write_req(0, 0, 4));
  const auto& m = h.cache->metrics();
  EXPECT_EQ(m.page_lookups, 4u);
  EXPECT_EQ(m.page_hits, 0u);
  EXPECT_EQ(m.inserts, 4u);
  EXPECT_EQ(h.cache->cached_pages(), 4u);
}

TEST(CacheManagerTest, RewriteIsWriteHit) {
  Harness h(policy_config("lru", 16));
  h.serve(write_req(0, 0, 4));
  h.serve(write_req(1, 0, 4));
  const auto& m = h.cache->metrics();
  EXPECT_EQ(m.write_hits, 4u);
  EXPECT_EQ(m.page_hits, 4u);
  EXPECT_EQ(h.cache->cached_pages(), 4u);
}

TEST(CacheManagerTest, ReadHitServedFromDram) {
  Harness h(policy_config("lru", 16));
  h.serve(write_req(0, 0, 2));
  const SimTime done = h.serve(read_req(1, 0, 2, 5 * kSecond));
  EXPECT_EQ(done, 5 * kSecond + h.ftl.config().cache_access_latency);
  EXPECT_EQ(h.cache->metrics().read_hits, 2u);
  EXPECT_EQ(h.ftl.metrics().host_page_reads, 0u);
}

TEST(CacheManagerTest, ReadMissGoesToFlash) {
  Harness h(policy_config("lru", 16));
  h.serve(read_req(0, 100, 1));
  const auto& m = h.cache->metrics();
  EXPECT_EQ(m.read_misses, 1u);
  EXPECT_EQ(m.page_hits, 0u);
  // Unmapped page: controller-served, no insert (write buffer).
  EXPECT_EQ(h.cache->cached_pages(), 0u);
  EXPECT_EQ(h.ftl.metrics().unmapped_reads, 1u);
}

TEST(CacheManagerTest, CapacityNeverExceeded) {
  Harness h(policy_config("lru", 8));
  for (std::uint64_t i = 0; i < 100; ++i) {
    h.serve(write_req(i, i * 10, 3, static_cast<SimTime>(i) * kSecond));
    ASSERT_LE(h.cache->cached_pages(), 8u);
  }
}

TEST(CacheManagerTest, EvictionFlushesDirtyPagesToFlash) {
  Harness h(policy_config("lru", 4));
  h.serve(write_req(0, 0, 4));
  EXPECT_EQ(h.ftl.metrics().host_page_writes, 0u);
  h.serve(write_req(1, 100, 4, kSecond));
  // LRU evicted four pages one by one; all were dirty.
  EXPECT_EQ(h.ftl.metrics().host_page_writes, 4u);
  EXPECT_EQ(h.cache->metrics().evictions, 4u);
  EXPECT_EQ(h.cache->metrics().flushed_pages, 4u);
}

TEST(CacheManagerTest, EvictedPageReadableFromFlashWithLatestVersion) {
  Harness h(policy_config("lru", 4));
  h.serve(write_req(0, 0, 4));
  h.serve(write_req(1, 0, 4, kSecond));         // rewrite (v2)
  h.serve(write_req(2, 100, 4, 2 * kSecond));   // evicts lpns 0..3
  // Read-your-writes through the flash path; verify_consistency would
  // throw inside serve() on a mismatch.
  h.serve(read_req(3, 0, 4, 10 * kSecond));
  EXPECT_EQ(h.cache->metrics().read_misses, 4u);
  EXPECT_EQ(h.ftl.metrics().host_page_reads, 4u);
}

TEST(CacheManagerTest, WriteMissWaitsForEvictionFlush) {
  Harness h(policy_config("lru", 1));
  h.serve(write_req(0, 0, 1));
  const SimTime done = h.serve(write_req(1, 1, 1, 0));
  // The insert had to wait for the evicted page's program.
  const auto& cfg = h.ftl.config();
  EXPECT_GE(done, cfg.page_transfer_time() + cfg.program_latency);
}

TEST(CacheManagerTest, WriteHitIsFast) {
  Harness h(policy_config("lru", 16));
  h.serve(write_req(0, 0, 1));
  const SimTime at = 7 * kSecond;
  const SimTime done = h.serve(write_req(1, 0, 1, at));
  EXPECT_EQ(done, at + h.ftl.config().cache_access_latency);
}

TEST(CacheManagerTest, EvictionBatchHistogramRecorded) {
  Harness h(policy_config("lru", 2));
  for (std::uint64_t i = 0; i < 10; ++i) {
    h.serve(write_req(i, i * 5, 1));
  }
  const auto& m = h.cache->metrics();
  EXPECT_EQ(m.eviction_batch.count(), m.evictions);
  EXPECT_DOUBLE_EQ(m.eviction_batch.mean(), 1.0);  // LRU evicts one page
}

TEST(CacheManagerTest, InsertsTrackedByRequestSize) {
  Harness h(policy_config("lru", 64));
  h.serve(write_req(0, 0, 3));
  h.serve(write_req(1, 100, 7));
  const auto& m = h.cache->metrics();
  EXPECT_EQ(m.inserts_by_req_size[3], 3u);
  EXPECT_EQ(m.inserts_by_req_size[7], 7u);
}

TEST(CacheManagerTest, HitsAttributedToInsertingRequestSize) {
  Harness h(policy_config("lru", 64));
  h.serve(write_req(0, 0, 3));
  h.serve(read_req(1, 0, 2, kSecond));  // hits 2 pages inserted by size-3 req
  const auto& m = h.cache->metrics();
  EXPECT_EQ(m.hits_by_req_size[3], 2u);
}

TEST(CacheManagerTest, ReuseStatsAfterFinalize) {
  Harness h(policy_config("lru", 64));
  h.serve(write_req(0, 0, 4));
  h.serve(read_req(1, 0, 1, kSecond));  // one of four pages reused
  h.cache->finalize();
  const auto& m = h.cache->metrics();
  EXPECT_EQ(m.pages_retired_by_req_size[4], 4u);
  EXPECT_EQ(m.pages_reused_by_req_size[4], 1u);
}

TEST(CacheManagerTest, OversizedRequestSizesBucketZero) {
  CacheOptions opts;
  opts.capacity_pages = 2048;
  Harness h(policy_config("lru", 2048), testing::tiny_ssd(), opts);
  h.serve(write_req(0, 0, 300));  // above max_tracked_request_pages (256)
  EXPECT_EQ(h.cache->metrics().inserts_by_req_size[0], 300u);
}

TEST(CacheManagerTest, CacheReadsModeAdmitsCleanPages) {
  CacheOptions opts;
  opts.cache_reads = true;
  Harness h(policy_config("cflru", 16), testing::tiny_ssd(), opts);
  // Write + evict so the page lives on flash only.
  h.serve(write_req(0, 0, 1));
  for (std::uint64_t i = 1; i <= 16; ++i) {
    h.serve(write_req(i, 1000 + i * 10, 1, static_cast<SimTime>(i) * kSecond));
  }
  EXPECT_EQ(h.cache->cached_pages(), 16u);
  // A read miss now inserts the page as clean.
  h.serve(read_req(20, 0, 1, 100 * kSecond));
  EXPECT_EQ(h.cache->metrics().read_misses, 1u);
  // The page is cached now; a second read hits.
  h.serve(read_req(21, 0, 1, 101 * kSecond));
  EXPECT_EQ(h.cache->metrics().read_hits, 1u);
}

TEST(CacheManagerTest, CleanEvictionDoesNotFlush) {
  CacheOptions opts;
  opts.cache_reads = true;
  Harness h(policy_config("lru", 2), testing::tiny_ssd(), opts);
  // Put a page on flash, then cache it cleanly via a read.
  h.serve(write_req(0, 0, 1));
  h.serve(write_req(1, 10, 1, kSecond));
  h.serve(write_req(2, 20, 1, 2 * kSecond));  // evicts lpn 0 to flash
  const auto writes_before_read = h.ftl.metrics().host_page_writes;
  h.serve(read_req(3, 0, 1, 3 * kSecond));    // miss; admitted clean
  // Fill to force eviction of something; if the clean page is evicted it
  // must not be programmed again.
  h.serve(write_req(4, 30, 1, 4 * kSecond));
  h.serve(write_req(5, 40, 1, 5 * kSecond));
  const auto& m = h.cache->metrics();
  EXPECT_EQ(m.flushed_pages + m.bypass_pages,
            h.ftl.metrics().host_page_writes);
  EXPECT_GE(h.ftl.metrics().host_page_writes, writes_before_read);
}

TEST(CacheManagerTest, ZeroPageRequestRejected) {
  Harness h(policy_config("lru", 4));
  IoRequest bad = write_req(0, 0, 1);
  bad.pages = 0;
  EXPECT_THROW(h.serve(bad), std::logic_error);
}

TEST(CacheManagerTest, FlushedPagesMatchFlashWrites) {
  Harness h(policy_config("lru", 8));
  for (std::uint64_t i = 0; i < 50; ++i) {
    h.serve(write_req(i, (i * 3) % 40, 2, static_cast<SimTime>(i) * kSecond));
  }
  const auto& m = h.cache->metrics();
  EXPECT_EQ(m.flushed_pages + m.bypass_pages + m.padding_pages,
            h.ftl.metrics().host_page_writes);
}

}  // namespace
}  // namespace reqblock
