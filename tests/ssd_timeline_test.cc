#include "ssd/timeline.h"

#include <gtest/gtest.h>

namespace reqblock {
namespace {

TEST(TimelineTest, StartsIdle) {
  ResourceTimeline t;
  EXPECT_EQ(t.next_free(), 0);
  EXPECT_EQ(t.busy_time(), 0);
}

TEST(TimelineTest, AcquireWhenIdleStartsAtEarliest) {
  ResourceTimeline t;
  EXPECT_EQ(t.acquire(100, 50), 150);
  EXPECT_EQ(t.next_free(), 150);
  EXPECT_EQ(t.busy_time(), 50);
}

TEST(TimelineTest, BackToBackSerializes) {
  ResourceTimeline t;
  EXPECT_EQ(t.acquire(0, 100), 100);
  // Second op issued at t=10 must wait until 100.
  EXPECT_EQ(t.acquire(10, 100), 200);
  EXPECT_EQ(t.busy_time(), 200);
}

TEST(TimelineTest, GapLeavesIdleTime) {
  ResourceTimeline t;
  EXPECT_EQ(t.acquire(0, 10), 10);
  EXPECT_EQ(t.acquire(1000, 10), 1010);
  EXPECT_EQ(t.busy_time(), 20);  // busy != elapsed
}

TEST(TimelineTest, ZeroDurationAllowed) {
  ResourceTimeline t;
  EXPECT_EQ(t.acquire(5, 0), 5);
  EXPECT_EQ(t.busy_time(), 0);
}

TEST(TimelineTest, ResetClears) {
  ResourceTimeline t;
  t.acquire(0, 100);
  t.reset();
  EXPECT_EQ(t.next_free(), 0);
  EXPECT_EQ(t.busy_time(), 0);
}

TEST(TimelineTest, FcfsOrderingPreserved) {
  // Two resources model two chips: interleaving ops across them completes
  // in parallel, while the same chip serializes.
  ResourceTimeline chip_a, chip_b;
  const SimTime a1 = chip_a.acquire(0, 100);
  const SimTime b1 = chip_b.acquire(0, 100);
  EXPECT_EQ(a1, 100);
  EXPECT_EQ(b1, 100);  // parallel
  EXPECT_EQ(chip_a.acquire(0, 100), 200);  // serialized on A
}

}  // namespace
}  // namespace reqblock
