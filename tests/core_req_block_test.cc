#include "core/req_block_policy.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace reqblock {
namespace {

using testing::read_req;
using testing::write_req;

ReqBlockOptions delta(std::uint32_t d) {
  ReqBlockOptions o;
  o.delta = d;
  return o;
}

/// Drives a whole write request through the policy the way the manager
/// would: begin_request, then per page on_insert (assumes all miss).
void insert_request(ReqBlockPolicy& p, const IoRequest& req) {
  p.begin_request(req);
  for (std::uint32_t i = 0; i < req.pages; ++i) {
    p.on_insert(req.lpn + i, req, true);
  }
}

/// Drives a request whose pages all hit.
void hit_request(ReqBlockPolicy& p, const IoRequest& req,
                 bool is_write = false) {
  p.begin_request(req);
  for (std::uint32_t i = 0; i < req.pages; ++i) {
    p.on_hit(req.lpn + i, req, is_write);
  }
}

TEST(ReqBlockPolicyTest, InsertCreatesOneBlockPerRequestInIRL) {
  ReqBlockPolicy p(delta(5));
  insert_request(p, write_req(1, 0, 4));
  EXPECT_EQ(p.block_count(), 1u);
  const ReqBlock* b = p.block_of(0);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->level, ReqList::kIRL);
  EXPECT_EQ(b->page_count(), 4u);
  EXPECT_EQ(b->access_cnt, 1u);
  EXPECT_EQ(p.block_of(3), b);
  EXPECT_EQ(p.pages(), 4u);
}

TEST(ReqBlockPolicyTest, DistinctRequestsGetDistinctBlocks) {
  ReqBlockPolicy p(delta(5));
  insert_request(p, write_req(1, 0, 2));
  insert_request(p, write_req(2, 100, 2));
  EXPECT_EQ(p.block_count(), 2u);
  EXPECT_NE(p.block_of(0), p.block_of(100));
}

TEST(ReqBlockPolicyTest, HitOnSmallBlockPromotesToSRL) {
  ReqBlockPolicy p(delta(5));
  insert_request(p, write_req(1, 0, 3));
  hit_request(p, read_req(2, 0, 3));
  const ReqBlock* b = p.block_of(0);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->level, ReqList::kSRL);
  // One access_cnt++ per page hit.
  EXPECT_EQ(b->access_cnt, 4u);
  const auto occ = p.occupancy();
  EXPECT_EQ(occ.srl_pages, 3u);
  EXPECT_EQ(occ.irl_pages, 0u);
}

TEST(ReqBlockPolicyTest, BoundaryDeltaBlockIsSmall) {
  ReqBlockPolicy p(delta(5));
  insert_request(p, write_req(1, 0, 5));  // exactly delta
  hit_request(p, read_req(2, 0, 1));
  EXPECT_EQ(p.block_of(0)->level, ReqList::kSRL);
}

TEST(ReqBlockPolicyTest, HitOnLargeBlockSplitsToDRL) {
  ReqBlockPolicy p(delta(5));
  insert_request(p, write_req(1, 0, 10));  // large
  hit_request(p, read_req(2, 2, 3));       // hit pages 2..4
  const ReqBlock* split = p.block_of(2);
  ASSERT_NE(split, nullptr);
  EXPECT_EQ(split->level, ReqList::kDRL);
  EXPECT_EQ(split->page_count(), 3u);
  EXPECT_EQ(split->access_cnt, 1u);  // initialized to 1, per the paper
  // Origin keeps the unhit 7 pages, still in IRL.
  const ReqBlock* origin = p.block_of(0);
  ASSERT_NE(origin, nullptr);
  EXPECT_NE(origin, split);
  EXPECT_EQ(origin->level, ReqList::kIRL);
  EXPECT_EQ(origin->page_count(), 7u);
  EXPECT_EQ(split->origin_id, origin->block_id);
  EXPECT_EQ(p.pages(), 10u);
}

TEST(ReqBlockPolicyTest, SplitPagesFromOneRequestShareOneDrlBlock) {
  ReqBlockPolicy p(delta(2));
  insert_request(p, write_req(1, 0, 8));
  hit_request(p, read_req(2, 0, 4));  // four pages split out together
  const ReqBlock* split = p.block_of(0);
  EXPECT_EQ(split->page_count(), 4u);
  EXPECT_EQ(p.block_of(3), split);
  EXPECT_EQ(p.block_count(), 2u);
}

TEST(ReqBlockPolicyTest, SplitsFromDifferentRequestsMakeDifferentBlocks) {
  ReqBlockPolicy p(delta(2));
  insert_request(p, write_req(1, 0, 8));
  hit_request(p, read_req(2, 0, 1));
  hit_request(p, read_req(3, 5, 1));
  EXPECT_NE(p.block_of(0), p.block_of(5));
  EXPECT_EQ(p.block_of(0)->level, ReqList::kDRL);
  EXPECT_EQ(p.block_of(5)->level, ReqList::kDRL);
}

TEST(ReqBlockPolicyTest, SmallDrlBlockPromotesToSrlOnNextHit) {
  // Fig. 5(b): the split block holding Page K+1 moves from DRL to SRL.
  ReqBlockPolicy p(delta(3));
  insert_request(p, write_req(1, 0, 8));
  hit_request(p, read_req(2, 4, 2));  // split 2 pages -> DRL (size 2 <= 3)
  EXPECT_EQ(p.block_of(4)->level, ReqList::kDRL);
  hit_request(p, read_req(3, 4, 1));  // small block hit -> SRL
  EXPECT_EQ(p.block_of(4)->level, ReqList::kSRL);
  EXPECT_EQ(p.block_of(5), p.block_of(4));
}

TEST(ReqBlockPolicyTest, LargeDrlBlockSplitsAgain) {
  ReqBlockPolicy p(delta(2));
  insert_request(p, write_req(1, 0, 10));
  hit_request(p, read_req(2, 0, 5));  // DRL block of 5 pages (> delta)
  const ReqBlock* drl1 = p.block_of(0);
  EXPECT_EQ(drl1->page_count(), 5u);
  hit_request(p, read_req(3, 1, 2));  // splits 2 pages out of the DRL block
  const ReqBlock* drl2 = p.block_of(1);
  EXPECT_NE(drl2, drl1);
  EXPECT_EQ(drl2->level, ReqList::kDRL);
  EXPECT_EQ(drl2->origin_id, drl1->block_id);
  EXPECT_EQ(p.block_of(0)->page_count(), 3u);
}

TEST(ReqBlockPolicyTest, FullHitShrinksOriginUntilItBecomesSmall) {
  // Hitting every page of a 4-page block with delta=2: the first two hits
  // split into a DRL block; by then the origin has shrunk to delta pages,
  // so the remaining hits promote the residual block to SRL instead.
  ReqBlockPolicy p(delta(2));
  insert_request(p, write_req(1, 0, 4));  // large (> delta=2)
  hit_request(p, read_req(2, 0, 4));
  EXPECT_EQ(p.block_count(), 2u);
  const ReqBlock* split = p.block_of(0);
  ASSERT_NE(split, nullptr);
  EXPECT_EQ(split->level, ReqList::kDRL);
  EXPECT_EQ(split->page_count(), 2u);  // pages 0 and 1
  const ReqBlock* residual = p.block_of(2);
  ASSERT_NE(residual, nullptr);
  EXPECT_EQ(residual->level, ReqList::kSRL);
  EXPECT_EQ(residual->page_count(), 2u);  // pages 2 and 3
  EXPECT_EQ(p.occupancy().irl_blocks, 0u);
}

TEST(ReqBlockPolicyTest, OriginDestroyedWhenEveryPageSplitsOut) {
  // With delta=1 a 3-page block never becomes "small" until one page is
  // left; hitting all pages drains it: two split out, the final single
  // page promotes to SRL.
  ReqBlockPolicy p(delta(1));
  insert_request(p, write_req(1, 0, 3));
  hit_request(p, read_req(2, 0, 3));
  EXPECT_EQ(p.occupancy().irl_blocks, 0u);
  EXPECT_EQ(p.block_of(0)->level, ReqList::kDRL);
  EXPECT_EQ(p.block_of(1)->level, ReqList::kDRL);
  EXPECT_EQ(p.block_of(2)->level, ReqList::kSRL);
  EXPECT_EQ(p.block_of(2)->page_count(), 1u);
}

TEST(ReqBlockPolicyTest, WriteHitSameSemanticsAsReadHit) {
  ReqBlockPolicy p(delta(5));
  insert_request(p, write_req(1, 0, 3));
  hit_request(p, write_req(2, 0, 3), /*is_write=*/true);
  EXPECT_EQ(p.block_of(0)->level, ReqList::kSRL);
}

TEST(ReqBlockPolicyTest, VictimIsTailWithMinimumFreq) {
  ReqBlockPolicy p(delta(5));
  // Old large cold block vs fresh small hot block.
  insert_request(p, write_req(1, 0, 10));
  insert_request(p, write_req(2, 100, 2));
  hit_request(p, read_req(3, 100, 2));  // promote to SRL, access 3
  // Advance the policy clock with unrelated traffic.
  insert_request(p, write_req(4, 200, 2));
  const auto v = p.select_victim();
  ASSERT_EQ(v.pages.size(), 10u);  // the large cold IRL block
  EXPECT_LE(*std::max_element(v.pages.begin(), v.pages.end()), 9u);
  EXPECT_FALSE(v.colocate);
  EXPECT_EQ(p.pages(), 4u);
}

TEST(ReqBlockPolicyTest, EvictionRemovesWholeBlock) {
  ReqBlockPolicy p(delta(5));
  insert_request(p, write_req(1, 0, 4));
  insert_request(p, write_req(2, 50, 1));
  const std::size_t before = p.pages();
  const auto v = p.select_victim();
  EXPECT_EQ(p.pages(), before - v.pages.size());
  for (const Lpn l : v.pages) {
    EXPECT_EQ(p.block_of(l), nullptr);
  }
}

// Builds the Fig. 6 situation where the *split* (DRL) block is the Freq
// minimum: a big split block (6 pages, access 1) next to its small IRL
// origin (2 pages). With Eq. 1, freq(D) < freq(A) once the clock passes
// tick 13 (2*(T-1) < 6*(T-9)), so the DRL tail wins the eviction race.
void build_split_colder_than_origin(ReqBlockPolicy& p) {
  insert_request(p, write_req(1, 0, 8));  // ticks 1..8, origin A @ tick 1
  hit_request(p, read_req(2, 0, 6));      // ticks 9..14, split D @ tick 9
  // Advance the clock with a hot unrelated block (never the minimum).
  insert_request(p, write_req(3, 100, 1));  // tick 15
  hit_request(p, read_req(4, 100, 1));      // tick 16
  hit_request(p, read_req(5, 100, 1));      // tick 17
  hit_request(p, read_req(6, 100, 1));      // tick 18
}

TEST(ReqBlockPolicyTest, DowngradeMergeEvictsSplitWithOrigin) {
  // Fig. 6: the DRL victim drags its IRL origin along in one batch.
  ReqBlockPolicy p(delta(2));
  build_split_colder_than_origin(p);
  const auto v = p.select_victim();
  EXPECT_EQ(v.pages.size(), 8u);  // 6 split pages + 2 origin pages
  for (Lpn l = 0; l < 8; ++l) {
    EXPECT_EQ(p.block_of(l), nullptr);
  }
  EXPECT_EQ(p.occupancy().drl_blocks, 0u);
  EXPECT_EQ(p.occupancy().irl_blocks, 0u);
}

TEST(ReqBlockPolicyTest, NoMergeWhenDisabled) {
  ReqBlockOptions o = delta(2);
  o.merge_on_evict = false;
  ReqBlockPolicy p(o);
  build_split_colder_than_origin(p);
  const auto v = p.select_victim();
  // Without merging, only the 6-page split block is evicted; its origin
  // stays in IRL.
  EXPECT_EQ(v.pages.size(), 6u);
  EXPECT_EQ(p.occupancy().irl_blocks, 1u);
}

TEST(ReqBlockPolicyTest, NoMergeWhenOriginLeftIRL) {
  ReqBlockPolicy p(delta(2));
  insert_request(p, write_req(1, 0, 3));   // small block -> stays IRL
  insert_request(p, write_req(2, 10, 8));  // large block
  hit_request(p, read_req(3, 10, 1));      // split {10} from large
  // Promote the remaining origin? It has 7 pages (> delta) so hits split
  // it instead; fully consume it so it disappears.
  hit_request(p, read_req(4, 11, 7));
  // The first split block's origin is gone: evicting it must not merge.
  EXPECT_EQ(p.occupancy().irl_blocks, 1u);  // only request 1's block
  const auto v = p.select_victim();
  // Whatever was chosen, eviction must never throw and must only remove
  // one block since no origin merge applies to IRL candidates.
  EXPECT_FALSE(v.empty());
}

TEST(ReqBlockPolicyTest, GuardProtectsInFlightInsertionBlock) {
  ReqBlockPolicy p(delta(5));
  const IoRequest big = write_req(1, 0, 4);
  p.begin_request(big);
  p.on_insert(0, big, true);
  // Mid-request eviction: the only block is the in-flight one -> empty.
  EXPECT_TRUE(p.select_victim().empty());
  p.on_insert(1, big, true);
  EXPECT_EQ(p.pages(), 2u);
}

TEST(ReqBlockPolicyTest, GuardAllowsOtherBlocksMidRequest) {
  ReqBlockPolicy p(delta(5));
  insert_request(p, write_req(1, 100, 2));
  const IoRequest req = write_req(2, 0, 2);
  p.begin_request(req);
  p.on_insert(0, req, true);
  const auto v = p.select_victim();
  ASSERT_EQ(v.pages.size(), 2u);  // request 1's block, not ours
  EXPECT_GE(v.pages[0], 100u);
}

TEST(ReqBlockPolicyTest, OccupancyTracksAllLists) {
  ReqBlockPolicy p(delta(3));
  insert_request(p, write_req(1, 0, 2));    // IRL
  insert_request(p, write_req(2, 10, 8));   // IRL (large)
  hit_request(p, read_req(3, 0, 2));        // -> SRL
  hit_request(p, read_req(4, 10, 1));       // split -> DRL
  const auto occ = p.occupancy();
  EXPECT_EQ(occ.irl_pages, 7u);
  EXPECT_EQ(occ.srl_pages, 2u);
  EXPECT_EQ(occ.drl_pages, 1u);
  EXPECT_EQ(occ.irl_blocks, 1u);
  EXPECT_EQ(occ.srl_blocks, 1u);
  EXPECT_EQ(occ.drl_blocks, 1u);
  EXPECT_EQ(occ.total_pages(), p.pages());
}

TEST(ReqBlockPolicyTest, MetadataIs32BytesPerBlock) {
  ReqBlockPolicy p(delta(5));
  insert_request(p, write_req(1, 0, 4));
  insert_request(p, write_req(2, 100, 4));
  EXPECT_EQ(p.metadata_bytes(), 64u);
}

TEST(ReqBlockPolicyTest, DeltaOfOneIsPageLikeInSRL) {
  // delta = 1: only single-page blocks can enter SRL.
  ReqBlockPolicy p(delta(1));
  insert_request(p, write_req(1, 0, 1));
  insert_request(p, write_req(2, 10, 2));
  hit_request(p, read_req(3, 0, 1));
  hit_request(p, read_req(4, 10, 1));
  EXPECT_EQ(p.block_of(0)->level, ReqList::kSRL);
  EXPECT_EQ(p.block_of(10)->level, ReqList::kDRL);  // 2-page block split
}

TEST(ReqBlockPolicyTest, InvalidDeltaRejected) {
  ReqBlockOptions o;
  o.delta = 0;
  EXPECT_THROW(ReqBlockPolicy{o}, std::logic_error);
}

TEST(ReqBlockPolicyTest, EmptyVictimWhenNoBlocks) {
  ReqBlockPolicy p(delta(5));
  EXPECT_TRUE(p.select_victim().empty());
}

}  // namespace
}  // namespace reqblock
