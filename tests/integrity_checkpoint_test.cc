// The bit-error model under the determinism and checkpoint contracts:
// byte-identical CSVs at 1, 4, and hardware threads with the full
// recovery hierarchy armed; a session snapshotted mid-run with a live
// scrub cursor, stripe-parity state, and per-page error counters
// serializes byte-stably and resumes to byte-identical results across
// ±faults/±aging/±overload; the config fingerprint covers every
// integrity knob (and refuses per-knob mismatched restores); and a
// disabled integrity block leaves runs bit-identical to pre-integrity
// builds.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "sim/checkpoint.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/session.h"
#include "snapshot/snapshot.h"
#include "test_util.h"
#include "trace/synthetic.h"
#include "util/audit.h"

namespace reqblock {
namespace {

namespace fs = std::filesystem;

struct FullAuditScope {
  AuditLevel previous = set_audit_level(AuditLevel::kFull);
  ~FullAuditScope() { set_audit_level(previous); }
};

std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/integrityckpt_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

WorkloadProfile error_profile(std::uint64_t requests = 3000) {
  WorkloadProfile p;
  p.name = "integrity-soak";
  p.total_requests = requests;
  p.seed = 41;
  p.write_ratio = 0.5;
  p.hot_extents = 96;
  p.cold_stream_pages = 1 << 14;
  p.mean_interarrival_ns = 140 * kMicrosecond;
  return p;
}

/// Full recovery hierarchy armed on a pre-aged device: the wear boost
/// keeps every tier and the patrol scrubber busy within a few thousand
/// requests.
SimOptions integrity_options(bool faults, bool aging = true,
                             bool overload = false) {
  SimOptions o;
  o.ssd = testing::tiny_ssd();
  o.policy.name = "reqblock";
  o.policy.capacity_pages = 256;
  o.policy.pages_per_block = o.ssd.pages_per_block;
  o.cache.capacity_pages = 256;
  o.telemetry_env_override = false;
  o.fault.seed = 19;
  IntegrityPlan& in = o.fault.integrity;
  in.rber_base = 0.05;
  in.rber_pe_anchor = 5000;
  in.rber_pe_boost = 4.0;
  in.rber_read_anchor = 64;
  in.rber_read_boost = 1.0;
  in.rber_age_anchor = kSecond;
  in.rber_age_boost = 0.25;
  in.ecc_escape = 0.6;
  in.read_retry_steps = 1;
  in.retry_relief = 0.5;
  in.stripe_pages = 8;
  in.scrub_every_requests = 500;
  in.scrub_rber_threshold = 0.1;
  if (aging) {
    o.fault.aging.rated_pe_cycles = 5000;
    o.fault.aging.initial_pe_cycles = 4500;
  }
  if (faults) {
    o.fault.program_fail_prob = 0.01;
    o.fault.read_fail_prob = 0.005;
    o.fault.power_loss_every_requests = 800;
  }
  if (overload) {
    o.overload.queue_depth = 16;
    o.overload.deadline_ns = 20 * kMillisecond;
    o.overload.bg_flush_high = 0.8;
    o.overload.bg_flush_low = 0.6;
  }
  return o;
}

std::string csvs_of(const std::vector<RunResult>& results) {
  std::ostringstream os;
  write_results_csv(os, results);
  return os.str();
}

TEST(IntegrityDeterminismTest, CsvByteIdenticalAcrossThreadCounts) {
  std::vector<ExperimentCase> cases;
  for (const bool errors : {false, true}) {
    for (const bool faults : {false, true}) {
      ExperimentCase c;
      c.profile = error_profile(1500);
      c.options = integrity_options(faults);
      if (!errors) c.options.fault.integrity = IntegrityPlan{};
      c.label = std::string(errors ? "errors" : "clean") +
                (faults ? "+faults" : "");
      cases.push_back(std::move(c));
    }
  }
  const std::string serial = csvs_of(run_cases(cases, 1));
  EXPECT_EQ(serial, csvs_of(run_cases(cases, 4)));
  EXPECT_EQ(serial, csvs_of(run_cases(cases, 0)));  // hardware concurrency
}

TEST(IntegrityCheckpointTest, MidScrubSnapshotIsByteStable) {
  FullAuditScope audit_scope;
  const SimOptions o = integrity_options(true);
  const WorkloadProfile p = error_profile();
  SyntheticTraceSource trace(p);
  SimulationSession session(o, trace);
  // Stop mid-run with live integrity state: an advanced scrub cursor,
  // closed parity stripes, and pages carrying corrected-error counts.
  while (session.served() < 1500 && session.step()) {
  }

  SnapshotWriter w1;
  session.serialize(w1);
  const std::string bytes = w1.take();
  SyntheticTraceSource trace2(p);
  SimulationSession restored(o, trace2);
  SnapshotReader r(bytes);
  restored.deserialize(r);
  SnapshotWriter w2;
  restored.serialize(w2);
  EXPECT_EQ(bytes, w2.take()) << "serialize -> deserialize -> serialize "
                                 "must reproduce identical bytes";
  // The snapshot carried live integrity state, not a dormant model: the
  // restored session keeps recovering through the end of the run.
  while (restored.step()) {
  }
  EXPECT_GT(restored.finish().fault.integrity.ecc_attempts, 0u);
}

TEST(IntegrityCheckpointTest, ResumeMidRunMatchesUninterruptedCsv) {
  FullAuditScope audit_scope;
  struct Cell {
    bool faults, aging, overload;
    const char* label;
  };
  const Cell cells[] = {{false, false, false, "plain"},
                        {true, false, false, "faults"},
                        {false, true, false, "aged"},
                        {true, true, true, "faults+aged+overload"}};
  for (const Cell& cell : cells) {
    SCOPED_TRACE(cell.label);
    const SimOptions o =
        integrity_options(cell.faults, cell.aging, cell.overload);
    const WorkloadProfile p = error_profile();

    SyntheticTraceSource whole_trace(p);
    SimulationSession whole(o, whole_trace);
    while (whole.step()) {
    }
    const RunResult whole_result = whole.finish();
    // The cell genuinely exercises recovery when the checkpoint lands.
    ASSERT_GT(whole_result.fault.integrity.ecc_attempts, 0u);

    const std::string dir = scratch_dir(cell.label);
    {
      SyntheticTraceSource trace(p);
      SimulationSession session(o, trace);
      while (session.served() < 1500 && session.step()) {
      }
      save_session_checkpoint(session, dir, "run", 2);
    }
    SyntheticTraceSource trace(p);
    SimulationSession session(o, trace);
    restore_session_checkpoint(session, find_latest_checkpoint(dir, "run"));
    while (session.step()) {
    }
    EXPECT_EQ(csvs_of({whole_result}), csvs_of({session.finish()}));
  }
}

TEST(IntegrityCheckpointTest, RestoreRefusesMismatchedIntegrityKnob) {
  const WorkloadProfile p = error_profile(1200);
  const SimOptions o = integrity_options(false);
  const std::string dir = scratch_dir("refuse");
  {
    SyntheticTraceSource trace(p);
    SimulationSession session(o, trace);
    while (session.served() < 500 && session.step()) {
    }
    save_session_checkpoint(session, dir, "run", 2);
  }
  const std::string path = find_latest_checkpoint(dir, "run");
  ASSERT_FALSE(path.empty());

  const auto refuse = [&](auto mutate) {
    SimOptions other = integrity_options(false);
    mutate(other.fault.integrity);
    SyntheticTraceSource trace(p);
    SimulationSession session(other, trace);
    EXPECT_THROW(restore_session_checkpoint(session, path), SnapshotError);
  };
  refuse([](IntegrityPlan& i) { i.rber_base = 0.04; });
  refuse([](IntegrityPlan& i) { i.rber_pe_anchor += 1; });
  refuse([](IntegrityPlan& i) { i.rber_pe_boost = 5.0; });
  refuse([](IntegrityPlan& i) { i.rber_read_anchor += 1; });
  refuse([](IntegrityPlan& i) { i.rber_read_boost = 2.0; });
  refuse([](IntegrityPlan& i) { i.rber_age_anchor += 1; });
  refuse([](IntegrityPlan& i) { i.rber_age_boost = 0.5; });
  refuse([](IntegrityPlan& i) { i.ecc_escape = 0.5; });
  refuse([](IntegrityPlan& i) { i.read_retry_steps += 1; });
  refuse([](IntegrityPlan& i) { i.retry_relief = 0.25; });
  refuse([](IntegrityPlan& i) { i.retry_step_latency += 1; });
  refuse([](IntegrityPlan& i) { i.stripe_pages += 1; });
  refuse([](IntegrityPlan& i) { i.uncorrectable_shed = true; });
  refuse([](IntegrityPlan& i) { i.scrub_every_requests += 1; });
  refuse([](IntegrityPlan& i) { i.scrub_time_budget += 1; });
  refuse([](IntegrityPlan& i) { i.scrub_rber_threshold = 0.2; });
  refuse([](IntegrityPlan& i) { i.scrub_error_limit += 1; });

  SyntheticTraceSource trace(p);
  SimulationSession session(o, trace);
  EXPECT_NO_THROW(restore_session_checkpoint(session, path));
}

TEST(IntegrityCheckpointTest, FingerprintCoversEveryIntegrityKnob) {
  const SimOptions base = integrity_options(false);
  const std::uint64_t h = config_fingerprint(base);
  const auto differs = [&](auto mutate) {
    SimOptions o = integrity_options(false);
    mutate(o.fault.integrity);
    EXPECT_NE(config_fingerprint(o), h);
  };
  differs([](IntegrityPlan& i) { i.rber_base = 0.04; });
  differs([](IntegrityPlan& i) { i.rber_pe_anchor += 1; });
  differs([](IntegrityPlan& i) { i.rber_pe_boost = 5.0; });
  differs([](IntegrityPlan& i) { i.rber_read_anchor += 1; });
  differs([](IntegrityPlan& i) { i.rber_read_boost = 2.0; });
  differs([](IntegrityPlan& i) { i.rber_age_anchor += 1; });
  differs([](IntegrityPlan& i) { i.rber_age_boost = 0.5; });
  differs([](IntegrityPlan& i) { i.ecc_escape = 0.5; });
  differs([](IntegrityPlan& i) { i.read_retry_steps += 1; });
  differs([](IntegrityPlan& i) { i.retry_relief = 0.25; });
  differs([](IntegrityPlan& i) { i.retry_step_latency += 1; });
  differs([](IntegrityPlan& i) { i.stripe_pages += 1; });
  differs([](IntegrityPlan& i) { i.uncorrectable_shed = true; });
  differs([](IntegrityPlan& i) { i.scrub_every_requests += 1; });
  differs([](IntegrityPlan& i) { i.scrub_time_budget += 1; });
  differs([](IntegrityPlan& i) { i.scrub_rber_threshold = 0.2; });
  differs([](IntegrityPlan& i) { i.scrub_error_limit += 1; });
}

TEST(IntegrityCheckpointTest, DisabledIntegrityBlockIsInert) {
  // Recovery tuning without the enabling trigger (rber_base == 0) must
  // not change the fingerprint or the run bytes: error-free runs stay
  // bit-identical to pre-integrity builds and their stored fingerprints.
  SimOptions plain = integrity_options(false);
  plain.fault.integrity = IntegrityPlan{};
  SimOptions dressed = plain;
  dressed.fault.integrity.ecc_escape = 0.9;
  dressed.fault.integrity.read_retry_steps = 7;
  dressed.fault.integrity.stripe_pages = 16;
  dressed.fault.integrity.retry_step_latency = kMillisecond;
  EXPECT_EQ(config_fingerprint(plain), config_fingerprint(dressed));

  const WorkloadProfile p = error_profile(1200);
  const auto run = [&](const SimOptions& o) {
    SyntheticTraceSource trace(p);
    SimulationSession session(o, trace);
    while (session.step()) {
    }
    return session.finish();
  };
  const RunResult a = run(plain);
  const RunResult b = run(dressed);
  EXPECT_FALSE(a.fault.integrity.any());
  EXPECT_EQ(csvs_of({a}), csvs_of({b}));
}

}  // namespace
}  // namespace reqblock
