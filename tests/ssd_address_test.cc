#include "ssd/address.h"

#include <gtest/gtest.h>

namespace reqblock {
namespace {

TEST(AddressMapTest, RoundTripAllCorners) {
  const auto cfg = SsdConfig::paper_default();
  const AddressMap amap(cfg);
  const PhysAddr corners[] = {
      {0, 0, 0, 0, 0},
      {7, 1, 0, static_cast<std::uint32_t>(cfg.blocks_per_plane() - 1), 63},
      {3, 0, 0, 17, 5},
      {0, 1, 0, 0, 63},
  };
  for (const auto& a : corners) {
    const Ppn ppn = amap.to_ppn(a);
    EXPECT_EQ(amap.to_addr(ppn), a);
  }
}

TEST(AddressMapTest, PpnZeroIsFirstPage) {
  const auto cfg = SsdConfig::paper_default();
  const AddressMap amap(cfg);
  const PhysAddr a = amap.to_addr(0);
  EXPECT_EQ(a.channel, 0u);
  EXPECT_EQ(a.chip, 0u);
  EXPECT_EQ(a.block, 0u);
  EXPECT_EQ(a.page, 0u);
}

TEST(AddressMapTest, RoundTripExhaustiveOnTinyGeometry) {
  SsdConfig cfg;
  cfg.channels = 2;
  cfg.chips_per_channel = 2;
  cfg.planes_per_chip = 2;
  cfg.pages_per_block = 4;
  cfg.capacity_bytes = 2ULL * 2 * 2 * 8 * 4 * 4096;  // 8 blocks per plane
  cfg.validate();
  const AddressMap amap(cfg);
  for (Ppn ppn = 0; ppn < cfg.total_pages(); ++ppn) {
    const PhysAddr a = amap.to_addr(ppn);
    ASSERT_EQ(amap.to_ppn(a), ppn);
    ASSERT_LT(a.channel, cfg.channels);
    ASSERT_LT(a.chip, cfg.chips_per_channel);
    ASSERT_LT(a.plane, cfg.planes_per_chip);
    ASSERT_LT(a.block, cfg.blocks_per_plane());
    ASSERT_LT(a.page, cfg.pages_per_block);
  }
}

TEST(AddressMapTest, PlaneOfMatchesToAddr) {
  const auto cfg = SsdConfig::paper_default();
  const AddressMap amap(cfg);
  for (const Ppn ppn : {Ppn{0}, Ppn{123456}, cfg.total_pages() - 1}) {
    const PhysAddr a = amap.to_addr(ppn);
    EXPECT_EQ(amap.plane_of(ppn), amap.plane_global(a));
  }
}

TEST(AddressMapTest, ChannelAndChipDerivation) {
  const auto cfg = SsdConfig::paper_default();
  const AddressMap amap(cfg);
  // Plane 0 -> chip 0, channel 0; plane for channel 3, chip 1:
  const std::uint32_t plane =
      (3 * cfg.chips_per_channel + 1) * cfg.planes_per_chip;
  EXPECT_EQ(amap.channel_of_plane(plane), 3u);
  EXPECT_EQ(amap.chip_global(plane), 3u * cfg.chips_per_channel + 1);
}

TEST(AddressMapTest, ConsecutivePpnsShareBlockUntilBoundary) {
  const auto cfg = SsdConfig::paper_default();
  const AddressMap amap(cfg);
  const PhysAddr a0 = amap.to_addr(0);
  const PhysAddr a63 = amap.to_addr(63);
  const PhysAddr a64 = amap.to_addr(64);
  EXPECT_EQ(a0.block, a63.block);
  EXPECT_NE(a63.block, a64.block);
  EXPECT_EQ(a64.page, 0u);
}

}  // namespace
}  // namespace reqblock
