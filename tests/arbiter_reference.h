// Brute-force reference arbiters for the differential tests.
//
// Each oracle re-implements one arbitration discipline from its textbook
// definition, deliberately NOT sharing code or structure with
// src/host/arbiter.cc: where the production arbiters scan the (sorted)
// ready vector, the oracles walk every tenant id in cyclic order and test
// membership per id. Equal pick sequences from two independent
// formulations is the property under test.
//
// Shared semantics being modeled:
//   * the ready list is sorted by tenant id and non-empty;
//   * "after the cursor" means cyclic order on tenant ids, starting below
//     tenant 0 before the first pick;
//   * a queue that goes non-ready forfeits its WRR credit / DRR deficit.
#pragma once

#include <cstdint>
#include <vector>

#include "host/arbiter.h"

namespace reqblock::testing {

/// Index of `tenant` in the sorted ready list, or npos when absent.
inline std::size_t ready_index(const std::vector<ReadyHead>& ready,
                               std::uint32_t tenant) {
  for (std::size_t i = 0; i < ready.size(); ++i) {
    if (ready[i].tenant == tenant) return i;
  }
  return ready.size();
}

/// Plain round-robin: serve the first ready tenant strictly after the one
/// served last, walking tenant ids cyclically.
class OracleRoundRobin {
 public:
  explicit OracleRoundRobin(std::uint32_t tenant_count)
      : count_(tenant_count) {}

  std::size_t pick(const std::vector<ReadyHead>& ready) {
    for (std::uint32_t step = 1; step <= count_; ++step) {
      const std::uint32_t t =
          last_ < 0 ? step - 1
                    : (static_cast<std::uint32_t>(last_) + step) % count_;
      const std::size_t i = ready_index(ready, t);
      if (i < ready.size()) {
        last_ = static_cast<std::int64_t>(t);
        return i;
      }
    }
    return ready.size();  // unreachable with a non-empty ready list
  }

 private:
  std::uint32_t count_;
  std::int64_t last_ = -1;
};

/// Weighted round-robin: each visit to tenant t entitles it to weight[t]
/// consecutive serves; leaving (or going non-ready) forfeits the rest.
class OracleWeighted {
 public:
  explicit OracleWeighted(std::vector<std::uint32_t> weights)
      : weights_(std::move(weights)) {}

  std::size_t pick(const std::vector<ReadyHead>& ready) {
    if (last_ >= 0 && credit_ > 0) {
      const std::size_t i =
          ready_index(ready, static_cast<std::uint32_t>(last_));
      if (i < ready.size()) {
        --credit_;
        return i;
      }
    }
    const std::uint32_t count = static_cast<std::uint32_t>(weights_.size());
    for (std::uint32_t step = 1; step <= count; ++step) {
      const std::uint32_t t =
          last_ < 0 ? step - 1
                    : (static_cast<std::uint32_t>(last_) + step) % count;
      const std::size_t i = ready_index(ready, t);
      if (i < ready.size()) {
        last_ = static_cast<std::int64_t>(t);
        credit_ = weights_[t] - 1;
        return i;
      }
    }
    return ready.size();
  }

 private:
  std::vector<std::uint32_t> weights_;
  std::int64_t last_ = -1;
  std::uint32_t credit_ = 0;
};

/// Deficit round-robin: every visit banks weight[t] * quantum pages; a
/// head is served once the bank covers its page cost. Non-ready queues
/// lose their bank each arbitration (anti-hoarding).
class OracleDeficit {
 public:
  OracleDeficit(const std::vector<std::uint32_t>& weights,
                std::uint32_t quantum_pages)
      : deficit_(weights.size(), 0) {
    for (const std::uint32_t w : weights) {
      quanta_.push_back(static_cast<std::uint64_t>(w) * quantum_pages);
    }
  }

  std::size_t pick(const std::vector<ReadyHead>& ready) {
    const std::uint32_t count = static_cast<std::uint32_t>(quanta_.size());
    for (std::uint32_t t = 0; t < count; ++t) {
      if (ready_index(ready, t) == ready.size()) deficit_[t] = 0;
    }
    if (last_ >= 0) {
      const std::uint32_t t = static_cast<std::uint32_t>(last_);
      const std::size_t i = ready_index(ready, t);
      if (i < ready.size() && deficit_[t] >= ready[i].cost_pages) {
        deficit_[t] -= ready[i].cost_pages;
        return i;
      }
    }
    for (;;) {
      for (std::uint32_t step = 1; step <= count; ++step) {
        const std::uint32_t t =
            last_ < 0 ? step - 1
                      : (static_cast<std::uint32_t>(last_) + step) % count;
        const std::size_t i = ready_index(ready, t);
        if (i == ready.size()) continue;
        last_ = static_cast<std::int64_t>(t);
        deficit_[t] += quanta_[t];
        if (deficit_[t] >= ready[i].cost_pages) {
          deficit_[t] -= ready[i].cost_pages;
          return i;
        }
        break;  // restart the walk after this (still unaffordable) visit
      }
    }
  }

 private:
  std::vector<std::uint64_t> quanta_;
  std::vector<std::uint64_t> deficit_;
  std::int64_t last_ = -1;
};

}  // namespace reqblock::testing
