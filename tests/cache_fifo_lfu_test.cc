#include <gtest/gtest.h>

#include "cache/fifo.h"
#include "cache/lfu.h"
#include "test_util.h"

namespace reqblock {
namespace {

using testing::write_req;

TEST(FifoPolicyTest, EvictsInInsertionOrder) {
  FifoPolicy fifo;
  for (Lpn l = 0; l < 4; ++l) fifo.on_insert(l, write_req(l, l, 1), true);
  for (Lpn expect = 0; expect < 4; ++expect) {
    EXPECT_EQ(fifo.select_victim().pages[0], expect);
  }
}

TEST(FifoPolicyTest, HitsDoNotPromote) {
  FifoPolicy fifo;
  fifo.on_insert(1, write_req(0, 1, 1), true);
  fifo.on_insert(2, write_req(1, 2, 1), true);
  fifo.on_hit(1, write_req(2, 1, 1), true);
  EXPECT_EQ(fifo.select_victim().pages[0], 1u);
}

TEST(FifoPolicyTest, EmptyVictim) {
  FifoPolicy fifo;
  EXPECT_TRUE(fifo.select_victim().empty());
}

TEST(FifoPolicyTest, PopulationTracked) {
  FifoPolicy fifo;
  fifo.on_insert(1, write_req(0, 1, 1), true);
  EXPECT_EQ(fifo.pages(), 1u);
  fifo.select_victim();
  EXPECT_EQ(fifo.pages(), 0u);
}

TEST(LfuPolicyTest, EvictsLeastFrequent) {
  LfuPolicy lfu;
  lfu.on_insert(1, write_req(0, 1, 1), true);
  lfu.on_insert(2, write_req(1, 2, 1), true);
  lfu.on_hit(1, write_req(2, 1, 1), true);  // lpn 1 now freq 2
  EXPECT_EQ(lfu.select_victim().pages[0], 2u);
}

TEST(LfuPolicyTest, TieBrokenByLeastRecent) {
  LfuPolicy lfu;
  lfu.on_insert(1, write_req(0, 1, 1), true);
  lfu.on_insert(2, write_req(1, 2, 1), true);
  lfu.on_insert(3, write_req(2, 3, 1), true);
  // All freq 1; lpn 1 is oldest.
  EXPECT_EQ(lfu.select_victim().pages[0], 1u);
  EXPECT_EQ(lfu.select_victim().pages[0], 2u);
}

TEST(LfuPolicyTest, FrequencyCounting) {
  LfuPolicy lfu;
  lfu.on_insert(7, write_req(0, 7, 1), true);
  EXPECT_EQ(lfu.frequency_of(7), 1u);
  lfu.on_hit(7, write_req(1, 7, 1), true);
  lfu.on_hit(7, write_req(2, 7, 1), false);
  EXPECT_EQ(lfu.frequency_of(7), 3u);
  EXPECT_EQ(lfu.frequency_of(999), 0u);
}

TEST(LfuPolicyTest, HighFrequencySurvivesChurn) {
  LfuPolicy lfu;
  lfu.on_insert(100, write_req(0, 100, 1), true);
  for (int i = 0; i < 5; ++i) lfu.on_hit(100, write_req(1, 100, 1), true);
  for (Lpn l = 0; l < 10; ++l) {
    lfu.on_insert(l, write_req(l + 2, l, 1), true);
    const auto v = lfu.select_victim();
    ASSERT_NE(v.pages[0], 100u);
  }
  EXPECT_EQ(lfu.frequency_of(100), 6u);
}

TEST(LfuPolicyTest, EmptyVictim) {
  LfuPolicy lfu;
  EXPECT_TRUE(lfu.select_victim().empty());
}

TEST(LfuPolicyTest, MetadataAccountsFrequencyCounter) {
  LfuPolicy lfu;
  lfu.on_insert(1, write_req(0, 1, 1), true);
  EXPECT_EQ(lfu.metadata_bytes(), 16u);
}

}  // namespace
}  // namespace reqblock
