// Fixture: a genuine wall-clock read silenced by an inline allowance
// with a justification — the pattern used for the profiler's timers.
#include <chrono>
#include <cstdint>

std::uint64_t profile_now_ns() {
  // REQB_LINT_ALLOW(no-wallclock): diagnostics-only timing, never
  // serialized into any artifact.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
