// Twin: format_double renders via std::to_chars — locale-independent,
// fixed decimal count — so report bytes are stable everywhere.
#include <ostream>
#include <string>

namespace reqblock {
std::string format_double(double v, int decimals);
}

void write_hit_ratio_report(std::ostream& os, double hit_ratio) {
  os << reqblock::format_double(hit_ratio, 4);
}
