// Twin: randomness flows through the per-run seeded xoshiro stream, so
// the draw sequence is part of the run's reproducible identity.
#include <cstdint>

struct Xoshiro256 {
  explicit Xoshiro256(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() { return state_ += 0x9e3779b97f4a7c15ull; }
  std::uint64_t state_;
};

int pick_victim_index(Xoshiro256& rng, int candidates) {
  return static_cast<int>(rng.next() %
                          static_cast<std::uint64_t>(candidates));
}
