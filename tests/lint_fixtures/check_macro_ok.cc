// Twin: the mutation happens unconditionally; the macro only reads.
#include <cstddef>

void account_evictions(std::size_t& evictions, bool list_was_nonempty) {
  ++evictions;
  REQB_DCHECK(evictions > 0 && list_was_nonempty);
}
