// Fixture: stamping a result with the host's wall clock. Equal runs on
// different hosts (or reruns on the same host) produce different bytes.
#include <chrono>
#include <cstdint>

std::uint64_t stamp_result() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}
