// Fixture: raw ofstream output. A crash mid-write leaves a truncated
// CSV that the kill-and-resume CI legs would then cmp against.
#include <fstream>
#include <string>

void save_results_csv(const std::string& path, const std::string& rows) {
  std::ofstream out(path);
  out << rows;
}
