// Twin: keys are copied out and sorted before emission, so equal state
// serializes to equal bytes regardless of hash order.
#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

std::string serialize_counts(
    const std::unordered_map<std::uint64_t, std::uint64_t>& counts) {
  std::vector<std::uint64_t> keys;
  keys.reserve(counts.size());
  for (const auto& [lpn, n] : counts) {
    keys.push_back(lpn);
  }
  std::sort(keys.begin(), keys.end());
  std::ostringstream os;
  for (const std::uint64_t lpn : keys) {
    os << lpn << ',' << counts.at(lpn) << '\n';
  }
  return os.str();
}
