// Fixture: a serializer walking an unordered_map directly. The byte
// order of the output then depends on the hash function, the libstdc++
// version and the insertion history — equal state, different bytes.
#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>

std::string serialize_counts(
    const std::unordered_map<std::uint64_t, std::uint64_t>& counts) {
  std::ostringstream os;
  for (const auto& [lpn, n] : counts) {
    os << lpn << ',' << n << '\n';
  }
  return os.str();
}
