// Fixture: ambient C RNG. rand() draws from hidden process state seeded
// who-knows-where, so replays diverge and faults stop reproducing.
#include <cstdlib>

int pick_victim_index(int candidates) {
  return rand() % candidates;
}
