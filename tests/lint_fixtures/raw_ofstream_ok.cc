// Twin: artifacts go through write_file_atomic — temp file, fsync,
// rename — so readers only ever observe a complete old or new file.
#include <string>

namespace reqblock {
void write_file_atomic(const std::string& path, const std::string& contents);
}

void save_results_csv(const std::string& path, const std::string& rows) {
  reqblock::write_file_atomic(path, rows);
}
