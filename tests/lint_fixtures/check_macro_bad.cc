// Fixture: a side effect inside REQB_DCHECK. With REQBLOCK_DCHECKS=0
// the macro expands to nothing and the increment silently disappears,
// so the "checked" build and the release build simulate differently.
#include <cstddef>

void account_evictions(std::size_t& evictions, bool list_was_nonempty) {
  REQB_DCHECK(++evictions > 0 && list_was_nonempty);
}
