// Twin: timestamps derive from the simulated clock, a pure function of
// config + trace, so equal runs stay byte-identical.
#include <cstdint>

using SimTime = std::uint64_t;

std::uint64_t stamp_result(SimTime sim_now) {
  return sim_now;
}
