// Fixture: streaming a double with the ostream's defaults. Precision
// (6 significant digits) and the decimal point both depend on stream
// state and locale, so the same hit ratio can print differently.
#include <ostream>

void write_hit_ratio_report(std::ostream& os, double hit_ratio) {
  os << hit_ratio;
}
