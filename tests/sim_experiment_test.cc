#include "sim/experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "test_util.h"

namespace reqblock {
namespace {

WorkloadProfile tiny_profile(std::uint64_t seed) {
  WorkloadProfile p;
  p.name = "tiny";
  p.total_requests = 4000;
  p.seed = seed;
  p.hot_extents = 256;
  p.cold_stream_pages = 1 << 15;
  return p;
}

SimOptions tiny_options(const std::string& policy) {
  SimOptions o;
  o.ssd = testing::tiny_ssd();
  o.policy.name = policy;
  o.policy.capacity_pages = 256;
  o.policy.pages_per_block = o.ssd.pages_per_block;
  o.cache.capacity_pages = 256;
  return o;
}

TEST(ExperimentTest, ResultsComeBackInCaseOrder) {
  std::vector<ExperimentCase> cases;
  for (const char* policy : {"lru", "bplru", "vbbms", "reqblock"}) {
    cases.push_back({tiny_profile(3), tiny_options(policy), policy});
  }
  const auto results = run_cases(cases, 4);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].policy_name, "LRU");
  EXPECT_EQ(results[1].policy_name, "BPLRU");
  EXPECT_EQ(results[2].policy_name, "VBBMS");
  EXPECT_EQ(results[3].policy_name, "Req-block");
}

TEST(ExperimentTest, ParallelEqualsSerial) {
  std::vector<ExperimentCase> cases;
  for (int i = 0; i < 6; ++i) {
    cases.push_back({tiny_profile(static_cast<std::uint64_t>(i)),
                     tiny_options(i % 2 == 0 ? "lru" : "reqblock"), ""});
  }
  const auto serial = run_cases(cases, 1);
  const auto parallel = run_cases(cases, 6);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].cache.page_hits, parallel[i].cache.page_hits);
    EXPECT_EQ(serial[i].flash.host_page_writes,
              parallel[i].flash.host_page_writes);
    EXPECT_DOUBLE_EQ(serial[i].response.mean(), parallel[i].response.mean());
  }
}

TEST(ExperimentTest, EmptyCaseListOk) {
  EXPECT_TRUE(run_cases({}, 4).empty());
}

TEST(ExperimentTest, ThrowingCaseBecomesPerCaseStatus) {
  // Regression: a case throwing inside a worker thread used to escape the
  // thread body and std::terminate the whole process. It must come back
  // as a per-case failure status; healthy cases must be unaffected.
  std::vector<ExperimentCase> cases;
  cases.push_back({tiny_profile(1), tiny_options("lru"), "good-a"});
  ExperimentCase bad{tiny_profile(2), tiny_options("reqblock"), "bad"};
  bad.options.fault.program_fail_prob = 1.5;  // validate() rejects this
  cases.push_back(bad);
  cases.push_back({tiny_profile(3), tiny_options("fifo"), "good-b"});

  const auto results = run_cases_nothrow(cases, 3);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_GT(results[0].requests, 0u);
  EXPECT_FALSE(results[1].ok());
  EXPECT_NE(results[1].error.find("program_fail_prob"), std::string::npos);
  EXPECT_EQ(results[1].requests, 0u);
  EXPECT_TRUE(results[2].ok());
  EXPECT_GT(results[2].requests, 0u);

  // The throwing variant reports every failed case, with its label, after
  // all cases finished.
  try {
    run_cases(cases, 3);
    FAIL() << "run_cases should throw when a case fails";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("case 1"), std::string::npos);
    EXPECT_NE(msg.find("bad"), std::string::npos);
    EXPECT_NE(msg.find("program_fail_prob"), std::string::npos);
  }
}

TEST(ExperimentTest, BenchRequestCapEnv) {
  unsetenv("REQBLOCK_BENCH_REQUESTS");
  EXPECT_EQ(bench_request_cap(1234), 1234u);
  setenv("REQBLOCK_BENCH_REQUESTS", "777", 1);
  EXPECT_EQ(bench_request_cap(1234), 777u);
  setenv("REQBLOCK_BENCH_REQUESTS", "garbage", 1);
  EXPECT_EQ(bench_request_cap(1234), 1234u);
  unsetenv("REQBLOCK_BENCH_REQUESTS");
}

}  // namespace
}  // namespace reqblock
