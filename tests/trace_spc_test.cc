#include "trace/spc_trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "util/rng.h"

namespace reqblock {
namespace {

SpcParseOptions opts() { return SpcParseOptions{}; }

TEST(SpcTraceTest, ParsesWellFormedLine) {
  // ASU 0, LBA 16 (sector 512B => byte 8192), 4096 bytes, write, t=1.5s.
  const auto r = parse_spc_line("0,16,4096,w,1.5", opts());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, IoType::kWrite);
  EXPECT_EQ(r->lpn, 2u);
  EXPECT_EQ(r->pages, 1u);
  EXPECT_EQ(r->arrival, 1'500'000'000);
}

TEST(SpcTraceTest, ReadOpcodeVariants) {
  EXPECT_EQ(parse_spc_line("0,0,512,r,0.0", opts())->type, IoType::kRead);
  EXPECT_EQ(parse_spc_line("0,0,512,R,0.0", opts())->type, IoType::kRead);
  EXPECT_EQ(parse_spc_line("0,0,512,W,0.0", opts())->type, IoType::kWrite);
}

TEST(SpcTraceTest, SectorToPageRounding) {
  // LBA 7 => byte 3584; 1024 bytes end at 4608 => pages 0..1.
  const auto r = parse_spc_line("0,7,1024,w,0", opts());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lpn, 0u);
  EXPECT_EQ(r->pages, 2u);
}

TEST(SpcTraceTest, AsuOffsetsDisjointAddressSpaces) {
  const auto a = parse_spc_line("0,0,4096,w,0", opts());
  const auto b = parse_spc_line("1,0,4096,w,0", opts());
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->lpn, b->lpn);
  EXPECT_EQ(b->lpn, opts().asu_stride_pages);
}

TEST(SpcTraceTest, AsuFilterKeepsOnlyMatch) {
  SpcParseOptions o = opts();
  o.asu_filter = 1;
  EXPECT_FALSE(parse_spc_line("0,0,4096,w,0", o).has_value());
  const auto r = parse_spc_line("1,8,4096,w,0", o);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lpn, 1u);  // no ASU offset when filtered
}

TEST(SpcTraceTest, MalformedRejected) {
  EXPECT_FALSE(parse_spc_line("", opts()).has_value());
  EXPECT_FALSE(parse_spc_line("# comment", opts()).has_value());
  EXPECT_FALSE(parse_spc_line("0,0,4096,x,0", opts()).has_value());
  EXPECT_FALSE(parse_spc_line("0,0,4096,w", opts()).has_value());
  EXPECT_FALSE(parse_spc_line("a,0,4096,w,0", opts()).has_value());
  EXPECT_FALSE(parse_spc_line("0,0,4096,w,-1.0", opts()).has_value());
}

TEST(SpcTraceTest, StreamParsingRebasesAndNumbers) {
  std::istringstream in(
      "0,0,4096,w,10.0\n"
      "0,8,4096,r,10.5\n");
  const auto reqs = parse_spc_stream(in, opts());
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].arrival, 0);
  EXPECT_EQ(reqs[1].arrival, 500'000'000);
  EXPECT_EQ(reqs[0].id, 0u);
  EXPECT_EQ(reqs[1].id, 1u);
}

TEST(SpcTraceTest, StrictModeThrows) {
  SpcParseOptions o = opts();
  o.skip_malformed = false;
  std::istringstream in("garbage,line\n");
  EXPECT_THROW(parse_spc_stream(in, o), std::runtime_error);
}

TEST(SpcTraceTest, MaxRequestsCap) {
  std::istringstream in(
      "0,0,512,w,0\n0,8,512,w,1\n0,16,512,w,2\n");
  SpcParseOptions o = opts();
  o.max_requests = 2;
  EXPECT_EQ(parse_spc_stream(in, o).size(), 2u);
}

// Regression: lba * sector_size (and byte_offset + size) used to wrap the
// 64-bit byte space, producing garbage LPNs; and strtod happily parses
// "inf"/"nan"/1e300 timestamps, which made llround undefined behaviour.
TEST(SpcTraceTest, OverflowingFieldsRejected) {
  // lba * 512 wraps uint64.
  EXPECT_FALSE(
      parse_spc_line("0,18446744073709551615,4096,w,0", opts()).has_value());
  // byte_offset + size wraps uint64.
  EXPECT_FALSE(parse_spc_line("0,36028797018963967,18446744073709551615,w,0",
                              opts()).has_value());
  // Page count does not fit the 32-bit request representation.
  EXPECT_FALSE(
      parse_spc_line("0,0,18446744073709551615,w,0", opts()).has_value());
  // Timestamps the ns clock cannot represent.
  EXPECT_FALSE(parse_spc_line("0,0,4096,w,inf", opts()).has_value());
  EXPECT_FALSE(parse_spc_line("0,0,4096,w,nan", opts()).has_value());
  EXPECT_FALSE(parse_spc_line("0,0,4096,w,1e300", opts()).has_value());
  // A large-but-sane line still parses.
  EXPECT_TRUE(parse_spc_line("0,1000000000,4096,w,1000000.5",
                             opts()).has_value());
}

// Deterministic fuzz: truncated lines, flipped characters, and random
// field soup must never crash the parser or yield a request that violates
// its representation invariants.
TEST(SpcTraceTest, FuzzedLinesNeverCrashAndKeepInvariants) {
  Rng rng(4096);
  const std::string valid = "0,16,4096,w,1.5";
  const char alphabet[] = "0123456789,,.-+eEWRrwinfa#x \t";
  constexpr std::size_t kAlpha = sizeof(alphabet) - 1;
  for (int iter = 0; iter < 5000; ++iter) {
    std::string line;
    if (rng.next_bool(0.5)) {
      line = valid.substr(0, rng.next_u64() % (valid.size() + 1));
      for (char& c : line) {
        if (rng.next_bool(0.15)) c = alphabet[rng.next_u64() % kAlpha];
      }
    } else {
      const std::size_t len = rng.next_u64() % 40;
      for (std::size_t i = 0; i < len; ++i) {
        line += alphabet[rng.next_u64() % kAlpha];
      }
    }
    const auto r = parse_spc_line(line, opts());
    if (r.has_value()) {
      EXPECT_GE(r->pages, 1u) << "line: " << line;
      EXPECT_GE(r->arrival, 0) << "line: " << line;
    }
  }
}

TEST(SpcTraceTest, MissingFileThrows) {
  EXPECT_THROW(parse_spc_file("/no/such/file.spc", opts()),
               std::runtime_error);
}

TEST(SpcTraceTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mini.spc";
  {
    std::ofstream out(path);
    out << "0,0,4096,w,0.0\n0,8,8192,r,0.001\n";
  }
  const auto reqs = parse_spc_file(path, opts());
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[1].pages, 2u);
}

// A file cut off mid-record must fail the parse, pointing at the file and
// line — not silently drop the tail.
TEST(SpcTraceTest, TruncatedFileFailsWithFilenameAndLine) {
  const std::string path = ::testing::TempDir() + "/truncated.spc";
  {
    std::ofstream out(path);
    out << "0,0,4096,w,0.0\n0,8,40";  // record cut mid-field, no newline
  }
  try {
    parse_spc_file(path, opts());
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path + ":2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
  }
}

// A complete final record without a trailing newline keeps parsing, and
// stream parsing keeps its lenient semantics for partial tails.
TEST(SpcTraceTest, CompleteFinalRecordWithoutNewlineParses) {
  const std::string path = ::testing::TempDir() + "/nonewline.spc";
  {
    std::ofstream out(path);
    out << "0,0,4096,w,0.0\n0,8,8192,r,0.001";
  }
  EXPECT_EQ(parse_spc_file(path, opts()).size(), 2u);

  std::istringstream in("0,0,4096,w,0.0\n0,8,40");
  EXPECT_EQ(parse_spc_stream(in, opts()).size(), 1u);
}

TEST(SpcTraceTest, StrictModeNamesSourceAndLine) {
  SpcParseOptions strict = opts();
  strict.skip_malformed = false;
  strict.source_name = "fin1.spc";
  std::istringstream in("0,0,4096,w,0.0\nnot a record\n");
  try {
    parse_spc_stream(in, strict);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fin1.spc:2"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace reqblock
