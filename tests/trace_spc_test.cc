#include "trace/spc_trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace reqblock {
namespace {

SpcParseOptions opts() { return SpcParseOptions{}; }

TEST(SpcTraceTest, ParsesWellFormedLine) {
  // ASU 0, LBA 16 (sector 512B => byte 8192), 4096 bytes, write, t=1.5s.
  const auto r = parse_spc_line("0,16,4096,w,1.5", opts());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, IoType::kWrite);
  EXPECT_EQ(r->lpn, 2u);
  EXPECT_EQ(r->pages, 1u);
  EXPECT_EQ(r->arrival, 1'500'000'000);
}

TEST(SpcTraceTest, ReadOpcodeVariants) {
  EXPECT_EQ(parse_spc_line("0,0,512,r,0.0", opts())->type, IoType::kRead);
  EXPECT_EQ(parse_spc_line("0,0,512,R,0.0", opts())->type, IoType::kRead);
  EXPECT_EQ(parse_spc_line("0,0,512,W,0.0", opts())->type, IoType::kWrite);
}

TEST(SpcTraceTest, SectorToPageRounding) {
  // LBA 7 => byte 3584; 1024 bytes end at 4608 => pages 0..1.
  const auto r = parse_spc_line("0,7,1024,w,0", opts());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lpn, 0u);
  EXPECT_EQ(r->pages, 2u);
}

TEST(SpcTraceTest, AsuOffsetsDisjointAddressSpaces) {
  const auto a = parse_spc_line("0,0,4096,w,0", opts());
  const auto b = parse_spc_line("1,0,4096,w,0", opts());
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->lpn, b->lpn);
  EXPECT_EQ(b->lpn, opts().asu_stride_pages);
}

TEST(SpcTraceTest, AsuFilterKeepsOnlyMatch) {
  SpcParseOptions o = opts();
  o.asu_filter = 1;
  EXPECT_FALSE(parse_spc_line("0,0,4096,w,0", o).has_value());
  const auto r = parse_spc_line("1,8,4096,w,0", o);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lpn, 1u);  // no ASU offset when filtered
}

TEST(SpcTraceTest, MalformedRejected) {
  EXPECT_FALSE(parse_spc_line("", opts()).has_value());
  EXPECT_FALSE(parse_spc_line("# comment", opts()).has_value());
  EXPECT_FALSE(parse_spc_line("0,0,4096,x,0", opts()).has_value());
  EXPECT_FALSE(parse_spc_line("0,0,4096,w", opts()).has_value());
  EXPECT_FALSE(parse_spc_line("a,0,4096,w,0", opts()).has_value());
  EXPECT_FALSE(parse_spc_line("0,0,4096,w,-1.0", opts()).has_value());
}

TEST(SpcTraceTest, StreamParsingRebasesAndNumbers) {
  std::istringstream in(
      "0,0,4096,w,10.0\n"
      "0,8,4096,r,10.5\n");
  const auto reqs = parse_spc_stream(in, opts());
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].arrival, 0);
  EXPECT_EQ(reqs[1].arrival, 500'000'000);
  EXPECT_EQ(reqs[0].id, 0u);
  EXPECT_EQ(reqs[1].id, 1u);
}

TEST(SpcTraceTest, StrictModeThrows) {
  SpcParseOptions o = opts();
  o.skip_malformed = false;
  std::istringstream in("garbage,line\n");
  EXPECT_THROW(parse_spc_stream(in, o), std::runtime_error);
}

TEST(SpcTraceTest, MaxRequestsCap) {
  std::istringstream in(
      "0,0,512,w,0\n0,8,512,w,1\n0,16,512,w,2\n");
  SpcParseOptions o = opts();
  o.max_requests = 2;
  EXPECT_EQ(parse_spc_stream(in, o).size(), 2u);
}

TEST(SpcTraceTest, MissingFileThrows) {
  EXPECT_THROW(parse_spc_file("/no/such/file.spc", opts()),
               std::runtime_error);
}

TEST(SpcTraceTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mini.spc";
  {
    std::ofstream out(path);
    out << "0,0,4096,w,0.0\n0,8,8192,r,0.001\n";
  }
  const auto reqs = parse_spc_file(path, opts());
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[1].pages, 2u);
}

}  // namespace
}  // namespace reqblock
