// Overload protection: bounded admission queue semantics (deadlines,
// retry/shed, power loss), option validation and CLI parsing, GC-pressure
// throttling, the watermark background flusher across every policy, and
// the exact reconciliation of all overload counters against telemetry.
#include "host/overload.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cache/policy_factory.h"
#include "sim/simulator.h"
#include "snapshot/snapshot.h"
#include "test_util.h"
#include "trace/synthetic.h"
#include "trace/vector_source.h"
#include "util/args.h"
#include "util/rng.h"

namespace reqblock {
namespace {

ArgParser parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return ArgParser(static_cast<int>(v.size()), v.data());
}

// --- HostAdmissionQueue unit semantics ------------------------------------

TEST(HostQueueTest, DepthZeroAdmitsInstantlyAndCountsNothing) {
  HostAdmissionQueue q{OverloadOptions{}};
  const auto adm = q.admit(1234);
  EXPECT_TRUE(adm.admitted);
  EXPECT_EQ(adm.admit_at, 1234);
  EXPECT_EQ(adm.wait, 0);
  q.complete(9999);  // no-op
  EXPECT_EQ(q.in_flight(), 0u);
  EXPECT_FALSE(q.metrics().enabled);
  EXPECT_EQ(q.metrics().admitted, 0u);
}

TEST(HostQueueTest, AdmitsInstantlyBelowDepth) {
  OverloadOptions o;
  o.queue_depth = 2;
  HostAdmissionQueue q(o);
  EXPECT_TRUE(q.metrics().enabled);
  for (int i = 0; i < 2; ++i) {
    const auto adm = q.admit(10 * i);
    EXPECT_TRUE(adm.admitted);
    EXPECT_EQ(adm.wait, 0);
    q.complete(1000 + i);
  }
  EXPECT_EQ(q.in_flight(), 2u);
  EXPECT_EQ(q.metrics().admitted, 2u);
  EXPECT_EQ(q.metrics().queued_waits, 0u);
}

TEST(HostQueueTest, FullQueueWaitsForEarliestCompletion) {
  OverloadOptions o;
  o.queue_depth = 1;
  HostAdmissionQueue q(o);
  ASSERT_TRUE(q.admit(0).admitted);
  q.complete(100);
  const auto adm = q.admit(10);
  EXPECT_TRUE(adm.admitted);
  EXPECT_EQ(adm.admit_at, 100);
  EXPECT_EQ(adm.wait, 90);
  EXPECT_EQ(q.metrics().queued_waits, 1u);
  EXPECT_EQ(q.metrics().queue_wait_total, 90);
}

TEST(HostQueueTest, CompletedSlotsFreeBeforeArrival) {
  OverloadOptions o;
  o.queue_depth = 1;
  HostAdmissionQueue q(o);
  ASSERT_TRUE(q.admit(0).admitted);
  q.complete(50);
  const auto adm = q.admit(60);  // completion at 50 already drained
  EXPECT_TRUE(adm.admitted);
  EXPECT_EQ(adm.wait, 0);
  EXPECT_EQ(q.metrics().queued_waits, 0u);
}

TEST(HostQueueTest, DeadlineShedsImmediately) {
  OverloadOptions o;
  o.queue_depth = 1;
  o.deadline_ns = 10;
  o.timeout_action = TimeoutAction::kShed;
  HostAdmissionQueue q(o);
  ASSERT_TRUE(q.admit(0).admitted);
  q.complete(1000);
  const auto adm = q.admit(10);
  EXPECT_FALSE(adm.admitted);
  EXPECT_EQ(adm.admit_at, 10);  // shed at the attempt time
  EXPECT_EQ(q.metrics().timeouts, 1u);
  EXPECT_EQ(q.metrics().sheds, 1u);
  EXPECT_EQ(q.metrics().retries, 0u);
}

TEST(HostQueueTest, RetryBacksOffThenAdmits) {
  OverloadOptions o;
  o.queue_depth = 1;
  o.deadline_ns = 100;
  o.timeout_action = TimeoutAction::kRetry;
  o.max_retries = 3;
  o.retry_backoff_ns = 500;
  HostAdmissionQueue q(o);
  ASSERT_TRUE(q.admit(0).admitted);
  q.complete(550);
  // t=0: wait 550 > 100 -> timeout, retry at t=500: wait 50 <= 100 -> admit.
  const auto adm = q.admit(0);
  EXPECT_TRUE(adm.admitted);
  EXPECT_EQ(adm.admit_at, 550);
  EXPECT_EQ(adm.wait, 550);
  EXPECT_EQ(q.metrics().timeouts, 1u);
  EXPECT_EQ(q.metrics().retries, 1u);
  EXPECT_EQ(q.metrics().sheds, 0u);
}

TEST(HostQueueTest, RetryExhaustionSheds) {
  OverloadOptions o;
  o.queue_depth = 1;
  o.deadline_ns = 10;
  o.timeout_action = TimeoutAction::kRetry;
  o.max_retries = 2;
  o.retry_backoff_ns = 100;
  HostAdmissionQueue q(o);
  ASSERT_TRUE(q.admit(0).admitted);
  q.complete(1000000);
  const auto adm = q.admit(0);
  EXPECT_FALSE(adm.admitted);
  EXPECT_EQ(adm.admit_at, 200);  // after two backoff rounds
  EXPECT_EQ(q.metrics().timeouts, 3u);  // initial attempt + 2 retries
  EXPECT_EQ(q.metrics().retries, 2u);
  EXPECT_EQ(q.metrics().sheds, 1u);
  // The SLO identity every report relies on.
  EXPECT_EQ(q.metrics().timeouts, q.metrics().retries + q.metrics().sheds);
}

TEST(HostQueueTest, PowerLossReschedulesInFlightCompletions) {
  OverloadOptions o;
  o.queue_depth = 2;
  HostAdmissionQueue q(o);
  ASSERT_TRUE(q.admit(0).admitted);
  q.complete(100);
  ASSERT_TRUE(q.admit(1).admitted);
  q.complete(300);
  // Loss at 150: the command completing at 300 was cut short and now
  // re-completes at 500; the one at 100 had already finished.
  q.on_power_loss(150, 500);
  const auto a = q.admit(200);  // frees the t=100 slot
  EXPECT_TRUE(a.admitted);
  EXPECT_EQ(a.wait, 0);
  q.complete(600);
  const auto b = q.admit(210);  // full: earliest in-flight is now 500
  EXPECT_TRUE(b.admitted);
  EXPECT_EQ(b.admit_at, 500);
  EXPECT_EQ(b.wait, 290);
}

TEST(HostQueueTest, SerializeRoundtripIsByteStable) {
  OverloadOptions o;
  o.queue_depth = 3;  // no deadline: the post-restore admit waits
  HostAdmissionQueue q(o);
  ASSERT_TRUE(q.admit(0).admitted);
  q.complete(400);
  ASSERT_TRUE(q.admit(1).admitted);
  q.complete(200);
  ASSERT_TRUE(q.admit(2).admitted);
  q.complete(300);
  SnapshotWriter w1;
  q.serialize(w1);
  const std::string bytes = w1.take();

  HostAdmissionQueue restored(o);
  SnapshotReader r(bytes);
  restored.deserialize(r);
  EXPECT_EQ(restored.in_flight(), 3u);
  SnapshotWriter w2;
  restored.serialize(w2);
  EXPECT_EQ(bytes, w2.take());

  // The restored heap pops in the same order: earliest completion first.
  const auto adm = restored.admit(10);
  EXPECT_EQ(adm.admit_at, 200);
}

TEST(HostQueueTest, DeserializeRefusesMoreSlotsThanDepth) {
  OverloadOptions big;
  big.queue_depth = 3;
  HostAdmissionQueue q(big);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.admit(i).admitted);
    q.complete(100 + i);
  }
  SnapshotWriter w;
  q.serialize(w);
  const std::string bytes = w.take();

  OverloadOptions small;
  small.queue_depth = 2;
  HostAdmissionQueue narrow(small);
  SnapshotReader r(bytes);
  EXPECT_THROW(narrow.deserialize(r), SnapshotError);
}

// --- Options: validation, CLI, throttle math ------------------------------

TEST(OverloadOptionsTest, ValidateRejectsBadSettings) {
  OverloadOptions o;
  o.bg_flush_high = 1.5;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = OverloadOptions{};
  o.bg_flush_high = 0.5;
  o.bg_flush_low = 0.8;  // inverted watermarks
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = OverloadOptions{};
  o.timeout_action = TimeoutAction::kRetry;
  o.retry_backoff_ns = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = OverloadOptions{};
  o.throttle = true;
  o.throttle_headroom_blocks = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  OverloadOptions ok;
  ok.queue_depth = 8;
  ok.deadline_ns = 100;
  ok.bg_flush_high = 0.8;
  ok.bg_flush_low = 0.6;
  ok.throttle = true;
  EXPECT_NO_THROW(ok.validate());
}

TEST(OverloadOptionsTest, ApplyCliReadsEveryFlag) {
  const auto args = parse({"prog", "--queue-depth", "16", "--deadline-us",
                           "1500", "--queue-retries", "2",
                           "--queue-backoff-us", "250", "--bg-flush-high",
                           "0.8", "--bg-flush-low", "0.55", "--throttle"});
  OverloadOptions o;
  o.apply_cli(args);
  EXPECT_EQ(o.queue_depth, 16u);
  EXPECT_EQ(o.deadline_ns, 1500 * kMicrosecond);
  EXPECT_EQ(o.timeout_action, TimeoutAction::kRetry);
  EXPECT_EQ(o.max_retries, 2u);
  EXPECT_EQ(o.retry_backoff_ns, 250 * kMicrosecond);
  EXPECT_DOUBLE_EQ(o.bg_flush_high, 0.8);
  EXPECT_DOUBLE_EQ(o.bg_flush_low, 0.55);
  EXPECT_TRUE(o.throttle);
  EXPECT_TRUE(o.enabled());
  EXPECT_NO_THROW(o.validate());

  // --queue-retries 0 switches back to shed-on-timeout.
  const auto shed_args = parse({"prog", "--queue-retries", "0"});
  OverloadOptions s;
  s.timeout_action = TimeoutAction::kRetry;
  s.apply_cli(shed_args);
  EXPECT_EQ(s.timeout_action, TimeoutAction::kShed);

  // Defaults untouched when no flag is present.
  OverloadOptions d;
  d.apply_cli(parse({"prog"}));
  EXPECT_FALSE(d.enabled());

  // Malformed values are an error, not a silent fallback.
  OverloadOptions m;
  EXPECT_THROW(m.apply_cli(parse({"prog", "--queue-depth", "abc"})),
               std::invalid_argument);
}

TEST(OverloadOptionsTest, ThrottleDelayRampsWithIntegerMath) {
  OverloadOptions o;
  o.throttle = true;
  o.throttle_headroom_blocks = 8;
  o.throttle_max_delay_ns = 1000;
  EXPECT_EQ(o.throttle_delay(0), 0);
  EXPECT_EQ(o.throttle_delay(1), 125);
  EXPECT_EQ(o.throttle_delay(4), 500);
  EXPECT_EQ(o.throttle_delay(8), 1000);
  EXPECT_EQ(o.throttle_delay(12), 1000);  // clamped at the headroom
  o.throttle = false;
  EXPECT_EQ(o.throttle_delay(8), 0);
}

TEST(OverloadOptionsTest, WatermarkPageDerivation) {
  OverloadOptions o;
  o.bg_flush_high = 0.75;
  o.bg_flush_low = 0.5;
  EXPECT_EQ(o.high_pages(1024), 768u);
  EXPECT_EQ(o.low_pages(1024), 512u);
  EXPECT_TRUE(o.bg_flush_enabled());
}

TEST(GcPressureTest, LevelTracksFreeBlockHeadroom) {
  Ftl ftl(testing::micro_ssd());
  // A fresh device has every block free: far above threshold + 4.
  EXPECT_EQ(ftl.gc_pressure_level(4), 0u);
  // A headroom larger than the per-plane block count is always pressured.
  const std::uint64_t level = ftl.gc_pressure_level(100000);
  EXPECT_GT(level, 0u);
  EXPECT_LE(level, 100000u);
}

// --- Background flush across every policy ---------------------------------

WorkloadProfile writey_profile(std::uint64_t requests = 8000) {
  WorkloadProfile p;
  p.name = "overload-bg";
  p.total_requests = requests;
  p.seed = 11;
  p.write_ratio = 0.8;
  p.hot_extents = 256;
  p.cold_stream_pages = 1 << 15;
  p.mean_interarrival_ns = 200 * kMicrosecond;
  return p;
}

SimOptions bg_options(const std::string& policy) {
  SimOptions o;
  o.ssd = testing::tiny_ssd();
  o.policy.name = policy;
  o.policy.capacity_pages = 256;
  o.policy.pages_per_block = o.ssd.pages_per_block;
  o.cache.capacity_pages = 256;
  o.telemetry_env_override = false;
  o.overload.bg_flush_high = 0.75;
  o.overload.bg_flush_low = 0.5;
  return o;
}

class BgFlushAllPolicies : public ::testing::TestWithParam<std::string> {};

TEST_P(BgFlushAllPolicies, WatermarkDrainFiresAndStaysConsistent) {
  SyntheticTraceSource trace(writey_profile());
  Simulator sim(bg_options(GetParam()));
  const RunResult r = sim.run(trace);
  EXPECT_TRUE(r.overload.enabled);
  EXPECT_GT(r.cache.bg_flush_batches, 0u) << "watermark never fired";
  EXPECT_GT(r.cache.bg_flush_pages, 0u);
  EXPECT_LE(r.cache.bg_flush_batches, r.cache.evictions);
  EXPECT_LE(r.cache.bg_flush_pages, r.cache.flushed_pages);
  // No admission queue configured: nothing shed, every request responded.
  EXPECT_EQ(r.overload.sheds, 0u);
  EXPECT_EQ(r.response.count(), r.requests);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, BgFlushAllPolicies,
                         ::testing::ValuesIn(known_policy_names()));

// --- Full-stack reconciliation: metrics vs telemetry vs histograms --------

std::vector<IoRequest> churn(std::uint64_t requests, Lpn footprint,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<IoRequest> out;
  out.reserve(requests);
  for (std::uint64_t id = 0; id < requests; ++id) {
    IoRequest r;
    r.id = id;
    r.arrival = static_cast<SimTime>(id) * 300 * kMicrosecond;
    r.type = rng.next_bool(0.85) ? IoType::kWrite : IoType::kRead;
    r.pages = static_cast<std::uint32_t>(rng.next_in(1, 6));
    r.lpn = rng.next_below(footprint - r.pages + 1);
    out.push_back(r);
  }
  return out;
}

SimOptions overloaded_options() {
  SimOptions o;
  o.ssd = testing::micro_ssd();
  o.policy.name = "reqblock";
  o.policy.capacity_pages = 128;
  o.policy.pages_per_block = o.ssd.pages_per_block;
  o.cache.capacity_pages = 128;
  o.telemetry.trace.level = TraceLevel::kAll;
  o.telemetry.trace.capacity = 1u << 22;
  o.telemetry_env_override = false;
  o.overload.queue_depth = 2;
  o.overload.deadline_ns = 400 * kMicrosecond;
  o.overload.timeout_action = TimeoutAction::kRetry;
  o.overload.max_retries = 2;
  o.overload.retry_backoff_ns = 200 * kMicrosecond;
  o.overload.bg_flush_high = 0.8;
  o.overload.bg_flush_low = 0.6;
  o.overload.throttle = true;
  o.overload.throttle_headroom_blocks = 100000;  // always under pressure
  o.overload.throttle_max_delay_ns = 50 * kMicrosecond;
  return o;
}

TEST(OverloadReconcileTest, EventsMatchAggregatesExactly) {
  const auto cfg = testing::micro_ssd();
  VectorTraceSource trace(churn(10000, cfg.total_pages() * 6 / 10, 99),
                          "churn");
  Simulator sim(overloaded_options());
  const RunResult r = sim.run(trace);

  ASSERT_TRUE(r.overload.enabled);
  EXPECT_EQ(r.telemetry.events_dropped, 0u) << "ring wrapped; grow capacity";

  std::map<EventKind, std::uint64_t> count;
  std::map<EventKind, std::uint64_t> arg_sum;
  std::map<EventKind, SimTime> dur_sum;
  for (const TraceEvent& e : r.telemetry.events) {
    ++count[e.kind];
    arg_sum[e.kind] += e.arg;
    dur_sum[e.kind] += e.dur;
  }

  // Exercise every mechanism, or the reconciliation proves nothing.
  ASSERT_GT(r.overload.timeouts, 0u);
  ASSERT_GT(r.overload.retries, 0u);
  ASSERT_GT(r.overload.sheds, 0u);
  ASSERT_GT(r.overload.throttle_events, 0u);
  ASSERT_GT(r.cache.bg_flush_batches, 0u);

  EXPECT_EQ(count[EventKind::kQueueEnqueue], r.overload.admitted);
  EXPECT_EQ(dur_sum[EventKind::kQueueEnqueue], r.overload.queue_wait_total);
  EXPECT_EQ(count[EventKind::kQueueTimeout], r.overload.timeouts);
  EXPECT_EQ(count[EventKind::kBgFlush], r.cache.bg_flush_batches);
  EXPECT_EQ(arg_sum[EventKind::kBgFlush], r.cache.bg_flush_pages);
  EXPECT_EQ(count[EventKind::kThrottle], r.overload.throttle_events);
  EXPECT_EQ(dur_sum[EventKind::kThrottle], r.overload.throttle_delay_total);

  // SLO identities.
  EXPECT_EQ(r.overload.timeouts, r.overload.retries + r.overload.sheds);
  EXPECT_EQ(r.overload.admitted + r.overload.sheds, r.requests);
  EXPECT_EQ(r.response.count(), r.requests - r.overload.sheds);
  EXPECT_EQ(r.queue_wait.count(), r.overload.admitted);
  EXPECT_DOUBLE_EQ(r.queue_wait.raw_sum(),
                   static_cast<double>(r.overload.queue_wait_total));
}

TEST(OverloadReconcileTest, WarmupResetsOverloadAccounting) {
  const auto cfg = testing::micro_ssd();
  VectorTraceSource trace(churn(6000, cfg.total_pages() * 6 / 10, 7),
                          "churn");
  SimOptions o = overloaded_options();
  o.telemetry.trace.level = TraceLevel::kOff;
  o.warmup_requests = 2000;
  Simulator sim(o);
  const RunResult r = sim.run(trace);
  // Measured-phase counters only: 4000 requests split admitted/shed.
  EXPECT_EQ(r.requests, 4000u);
  EXPECT_EQ(r.overload.admitted + r.overload.sheds, r.requests);
  EXPECT_EQ(r.queue_wait.count(), r.overload.admitted);
}

TEST(OverloadReconcileTest, BgFlushImprovesTailWriteLatencyUnderBurst) {
  WorkloadProfile p = writey_profile(12000);
  p.burst_arrival_len = 300;
  p.burst_arrival_period = 1500;
  p.burst_arrival_factor = 10.0;
  SimOptions off = bg_options("reqblock");
  off.overload.bg_flush_high = 0.0;
  off.overload.bg_flush_low = 0.0;
  const SimOptions on = bg_options("reqblock");

  SyntheticTraceSource trace_off(p), trace_on(p);
  const RunResult sync_only = Simulator(off).run(trace_off);
  const RunResult bg = Simulator(on).run(trace_on);
  ASSERT_GT(bg.cache.bg_flush_batches, 0u);
  EXPECT_LT(bg.write_response.p99(), sync_only.write_response.p99())
      << "background flushing should absorb the spikes";
}

}  // namespace
}  // namespace reqblock
