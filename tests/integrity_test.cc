// Data-integrity semantics: the RBER model and cascade thresholds, the
// FTL recovery tiers (ECC, read retry, parity rebuild, uncorrectable
// loss), stripe-parity maintenance, the patrol scrubber's budget and
// cursor, the retirement-guard helper, host-visible loss semantics, and
// the exact reconciliation of the integrity telemetry events against the
// injector's aggregates — all under full audits.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/integrity.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "trace/synthetic.h"
#include "trace/vector_source.h"
#include "util/args.h"
#include "util/audit.h"

namespace reqblock {
namespace {

struct FullAuditScope {
  AuditLevel previous = set_audit_level(AuditLevel::kFull);
  ~FullAuditScope() { set_audit_level(previous); }
};

std::uint64_t count_kind(const std::vector<TraceEvent>& events,
                         EventKind kind) {
  std::uint64_t n = 0;
  for (const auto& e : events) n += e.kind == kind ? 1 : 0;
  return n;
}

std::uint64_t sum_args(const std::vector<TraceEvent>& events,
                       EventKind kind) {
  std::uint64_t n = 0;
  for (const auto& e : events) n += e.kind == kind ? e.arg : 0;
  return n;
}

/// Single-plane device: every page lands in plane 0, so physical page
/// allocation (and with it stripe closure) is directly controlled by
/// program order.
SsdConfig one_plane() {
  SsdConfig cfg;
  cfg.channels = 1;
  cfg.chips_per_channel = 1;
  cfg.pages_per_block = 8;
  cfg.capacity_bytes = 64ULL * 8 * 4096;  // 64 blocks, one plane
  cfg.validate();
  return cfg;
}

void expect_clean_audit(const Ftl& ftl, const std::string& subject) {
  AuditReport report(subject);
  ftl.audit(report);
  EXPECT_TRUE(report.ok()) << subject;
}

/// Conservation identities every integrity-enabled run must satisfy.
void expect_identities(const IntegrityMetrics& m,
                       std::uint32_t stripe_pages) {
  EXPECT_EQ(m.ecc_attempts, m.ecc_corrected + m.ecc_escalated);
  EXPECT_EQ(m.ecc_escalated, m.retry_corrected + m.retry_escalated);
  EXPECT_EQ(m.retry_escalated, m.parity_rebuilds + m.uncorrectable);
  EXPECT_EQ(m.uncorrectable, m.host_reads_lost);
  EXPECT_EQ(m.parity_peer_reads,
            m.parity_rebuilds * static_cast<std::uint64_t>(stripe_pages));
}

// --- Model math ------------------------------------------------------------

TEST(IntegrityModelTest, DetectProbRampsMatchTheirShapes) {
  IntegrityPlan plan;
  plan.rber_base = 0.01;
  plan.rber_pe_anchor = 100;
  plan.rber_pe_boost = 4.0;
  plan.rber_read_anchor = 10;
  plan.rber_read_boost = 1.0;
  plan.rber_age_anchor = 1000;
  plan.rber_age_boost = 2.0;
  const IntegrityModel m(plan);
  // Base alone at zero wear.
  EXPECT_DOUBLE_EQ(m.detect_prob(0, 0, 0), 0.01);
  // Quadratic endurance term, uncapped past the anchor.
  EXPECT_DOUBLE_EQ(m.detect_prob(50, 0, 0), 0.01 * (1.0 + 4.0 * 0.25));
  EXPECT_DOUBLE_EQ(m.detect_prob(100, 0, 0), 0.01 * 5.0);
  EXPECT_DOUBLE_EQ(m.detect_prob(200, 0, 0), 0.01 * (1.0 + 4.0 * 4.0));
  // Linear, saturating disturb and retention terms.
  EXPECT_DOUBLE_EQ(m.detect_prob(0, 5, 0), 0.01 * 1.5);
  EXPECT_DOUBLE_EQ(m.detect_prob(0, 50, 0), 0.01 * 2.0);  // saturates
  EXPECT_DOUBLE_EQ(m.detect_prob(0, 0, 500), 0.01 * 2.0);
  EXPECT_DOUBLE_EQ(m.detect_prob(0, 0, 5000), 0.01 * 3.0);  // saturates
  // Terms add before the final clamp.
  EXPECT_DOUBLE_EQ(m.detect_prob(100, 10, 1000), 0.01 * 8.0);
}

TEST(IntegrityModelTest, DetectProbClampsBelowOne) {
  IntegrityPlan plan;
  plan.rber_base = 0.5;
  plan.rber_pe_anchor = 1;
  plan.rber_pe_boost = 0.9;
  const IntegrityModel m(plan);
  // 0.5 * (1 + 0.9 * 10^2) would be 45.5; the clean branch must survive.
  EXPECT_LT(m.detect_prob(10, 0, 0), 1.0);
}

TEST(IntegrityModelTest, ResolveSplitsOneUniformByNestedThresholds) {
  IntegrityPlan plan;
  plan.rber_base = 0.5;  // p_detect passed explicitly below
  plan.ecc_escape = 0.1;
  plan.read_retry_steps = 2;
  plan.retry_relief = 0.5;
  const IntegrityModel m(plan);
  const double p = 0.4;
  using Tier = IntegrityModel::Tier;
  // u >= p_detect: clean.
  EXPECT_EQ(m.resolve(0.4, p).tier, Tier::kClean);
  EXPECT_EQ(m.resolve(0.99, p).tier, Tier::kClean);
  // p_fail_0 = 0.04 <= u < 0.4: the fast engine corrects.
  EXPECT_EQ(m.resolve(0.05, p).tier, Tier::kEccCorrected);
  EXPECT_EQ(m.resolve(0.399, p).tier, Tier::kEccCorrected);
  // p_fail_1 = 0.02 <= u < 0.04: corrected on retry step 1.
  const auto step1 = m.resolve(0.03, p);
  EXPECT_EQ(step1.tier, Tier::kRetryCorrected);
  EXPECT_EQ(step1.retry_steps, 1u);
  // p_fail_2 = 0.01 <= u < 0.02: step 2.
  const auto step2 = m.resolve(0.015, p);
  EXPECT_EQ(step2.tier, Tier::kRetryCorrected);
  EXPECT_EQ(step2.retry_steps, 2u);
  // u < 0.01: the retry budget is exhausted.
  const auto parity = m.resolve(0.005, p);
  EXPECT_EQ(parity.tier, Tier::kParity);
  EXPECT_EQ(parity.retry_steps, 2u);
  // Escalating re-sense cost.
  EXPECT_EQ(m.retry_step_cost(1), plan.retry_step_latency);
  EXPECT_EQ(m.retry_step_cost(3), 3 * plan.retry_step_latency);
}

TEST(IntegrityModelTest, ScrubRefreshTriggers) {
  IntegrityPlan plan;
  plan.rber_base = 0.1;
  plan.scrub_rber_threshold = 0.3;
  plan.scrub_error_limit = 4;
  const IntegrityModel m(plan);
  EXPECT_FALSE(m.scrub_refresh_due(0.29, 3));
  EXPECT_TRUE(m.scrub_refresh_due(0.3, 0));
  EXPECT_TRUE(m.scrub_refresh_due(0.0, 4));
  const IntegrityModel off(IntegrityPlan{.rber_base = 0.1});
  EXPECT_FALSE(off.scrub_refresh_due(0.99, 250));
}

TEST(IntegrityModelTest, InvalidPlansAreRejected) {
  IntegrityPlan plan;
  plan.rber_base = 1.0;  // probabilities live in [0, 1)
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = IntegrityPlan{};
  plan.rber_pe_boost = 0.5;  // boost with no anchor
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = IntegrityPlan{};
  plan.rber_read_boost = 0.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = IntegrityPlan{};
  plan.rber_age_boost = 0.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = IntegrityPlan{};
  plan.ecc_escape = 1.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = IntegrityPlan{};
  plan.scrub_every_requests = 100;  // patrol without a bit-error model
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = IntegrityPlan{};
  plan.rber_base = 0.1;
  plan.scrub_every_requests = 100;  // patrol that can never refresh
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.scrub_rber_threshold = 0.5;
  EXPECT_NO_THROW(plan.validate());
}

TEST(IntegrityModelTest, OnlyRberBaseEnables) {
  EXPECT_FALSE(IntegrityPlan{}.enabled());
  IntegrityPlan p;
  p.stripe_pages = 8;
  p.scrub_error_limit = 3;
  EXPECT_FALSE(p.enabled());
  p.rber_base = 1e-9;
  EXPECT_TRUE(p.enabled());
}

// --- FTL recovery tiers ----------------------------------------------------

FaultPlan error_storm(std::uint32_t stripe_pages,
                      std::uint32_t retry_steps = 0) {
  // Every mapped sense errors and escapes the fast engine: the cascade
  // lands deterministically in the deepest armed tier.
  FaultPlan plan;
  plan.seed = 5;
  plan.integrity.rber_base = 0.998;
  plan.integrity.ecc_escape = 1.0;
  plan.integrity.read_retry_steps = retry_steps;
  plan.integrity.stripe_pages = stripe_pages;
  return plan;
}

TEST(IntegrityFtlTest, ParityRebuildSavesTheStripeProtectedPage) {
  FullAuditScope audit_scope;
  Ftl ftl(one_plane());
  FaultInjector injector(error_storm(/*stripe_pages=*/4));
  ftl.set_fault_injector(&injector);

  // Four programs close the block's first stripe (parity is charged on
  // the fourth program's chip timeline).
  SimTime t = 0;
  for (Lpn lpn = 0; lpn < 4; ++lpn) t = ftl.program_page(lpn, 1, t + 1);

  const auto rr = ftl.read_page(0, t + 1);
  ASSERT_TRUE(rr.mapped);
  EXPECT_FALSE(rr.lost);
  EXPECT_EQ(rr.version, 1u);
  const IntegrityMetrics& m = injector.metrics().integrity;
  EXPECT_EQ(m.parity_rebuilds, 1u);
  EXPECT_EQ(m.parity_peer_reads, 4u);
  EXPECT_EQ(m.uncorrectable, 0u);
  EXPECT_GT(m.recovery_time_total, 0);
  // The rebuild preserved the mapping: the page is still readable.
  EXPECT_TRUE(ftl.read_page(0, rr.complete + 1).mapped);
  expect_identities(m, 4);
  expect_clean_audit(ftl, "Ftl after parity rebuild");
}

TEST(IntegrityFtlTest, OpenStripeTailPageIsLostWithoutParity) {
  FullAuditScope audit_scope;
  Ftl ftl(one_plane());
  FaultInjector injector(error_storm(/*stripe_pages=*/4));
  ftl.set_fault_injector(&injector);

  // Five programs: the first stripe closes, the fifth page sits in an
  // open stripe with no parity behind it.
  SimTime t = 0;
  for (Lpn lpn = 0; lpn < 5; ++lpn) t = ftl.program_page(lpn, 1, t + 1);

  const auto rr = ftl.read_page(4, t + 1);
  EXPECT_TRUE(rr.mapped) << "the host asked for a mapped page";
  EXPECT_TRUE(rr.lost);
  const IntegrityMetrics& m = injector.metrics().integrity;
  EXPECT_EQ(m.uncorrectable, 1u);
  EXPECT_EQ(m.host_reads_lost, 1u);
  EXPECT_EQ(m.parity_rebuilds, 0u);
  // The mapping is gone: a re-read reports unmapped, not stale data.
  EXPECT_FALSE(ftl.read_page(4, rr.complete + 1).mapped);
  expect_identities(m, 4);
  expect_clean_audit(ftl, "Ftl after uncorrectable loss");
}

TEST(IntegrityFtlTest, NoParityTierMeansRetryEscapesAreLost) {
  FullAuditScope audit_scope;
  Ftl ftl(one_plane());
  FaultInjector injector(error_storm(/*stripe_pages=*/0));
  ftl.set_fault_injector(&injector);
  SimTime t = ftl.program_page(0, 1, 0);
  const auto rr = ftl.read_page(0, t + 1);
  EXPECT_TRUE(rr.lost);
  EXPECT_EQ(injector.metrics().integrity.uncorrectable, 1u);
  EXPECT_EQ(injector.metrics().integrity.parity_peer_reads, 0u);
  expect_clean_audit(ftl, "Ftl without a parity tier");
}

TEST(IntegrityFtlTest, RetryStepsChargeEscalatingLatency) {
  FullAuditScope audit_scope;
  Ftl ftl(one_plane());
  // Deep retry budget with no relief: every error walks all steps and
  // still escalates, so the retry cost is deterministic.
  FaultPlan plan = error_storm(/*stripe_pages=*/4, /*retry_steps=*/3);
  plan.integrity.retry_relief = 1.0;
  FaultInjector injector(plan);
  ftl.set_fault_injector(&injector);
  SimTime t = 0;
  for (Lpn lpn = 0; lpn < 4; ++lpn) t = ftl.program_page(lpn, 1, t + 1);
  const auto rr = ftl.read_page(0, t + 1);
  EXPECT_FALSE(rr.lost);
  const IntegrityMetrics& m = injector.metrics().integrity;
  EXPECT_EQ(m.retry_steps_total, 3u);
  EXPECT_EQ(m.retry_escalated, 1u);
  // Steps 1+2+3 re-sense time plus the 4-peer rebuild read.
  const SimTime retry_ns = 6 * plan.integrity.retry_step_latency;
  EXPECT_GE(m.recovery_time_total, retry_ns);
  expect_identities(m, 4);
}

TEST(IntegrityFtlTest, DisabledPlanNeverTouchesTheRngOrTheArray) {
  Ftl ftl(one_plane());
  FaultPlan plan;
  plan.program_fail_prob = 0.0;
  plan.spare_blocks_per_plane = 4;
  ASSERT_FALSE(plan.integrity.enabled());
  FaultInjector injector(plan);
  ftl.set_fault_injector(&injector);
  SimTime t = ftl.program_page(0, 1, 0);
  for (int i = 0; i < 32; ++i) t = ftl.read_page(0, t + 1).complete;
  const IntegrityMetrics& m = injector.metrics().integrity;
  EXPECT_EQ(m.ecc_attempts, 0u);
  EXPECT_EQ(m.recovery_time_total, 0);
  EXPECT_EQ(ftl.array().stripe_pages(), 0u);
}

// --- Retirement guards (can_retire_block) ----------------------------------

TEST(CanRetireBlockTest, FreshDeviceAllowsRetirement) {
  Ftl ftl(one_plane());
  // No injector wired: no spares, but the free pool is far above its
  // floor and nothing has been lost yet.
  EXPECT_TRUE(ftl.can_retire_block(0));
  FaultPlan plan;
  plan.spare_blocks_per_plane = 4;
  FaultInjector injector(plan);
  ftl.set_fault_injector(&injector);
  EXPECT_TRUE(ftl.can_retire_block(0));
}

TEST(CanRetireBlockTest, LossBudgetEventuallyRefuses) {
  FullAuditScope audit_scope;
  Ftl ftl(one_plane());
  // No spares and near-certain erase faults: every read-disturb
  // migration marks its block bad and asks to retire it, bleeding the
  // plane's loss budget dry.
  FaultPlan plan;
  plan.seed = 3;
  plan.spare_blocks_per_plane = 0;
  plan.erase_fail_prob = 0.998;
  plan.aging.read_disturb_limit = 2;
  FaultInjector injector(plan);
  ftl.set_fault_injector(&injector);
  ASSERT_TRUE(ftl.can_retire_block(0));

  SimTime t = ftl.program_page(0, 1, 0);
  for (int round = 0; round < 64; ++round) {
    for (int i = 0; i < 2; ++i) t = ftl.read_page(0, t + 1).complete;
    if (!ftl.can_retire_block(0) &&
        injector.metrics().retires_refused > 0) {
      break;
    }
  }
  EXPECT_FALSE(ftl.can_retire_block(0));
  EXPECT_GT(injector.metrics().blocks_retired, 0u);
  // maybe_retire consulted the helper and recorded the refusals.
  EXPECT_GT(injector.metrics().retires_refused, 0u);
  expect_clean_audit(ftl, "Ftl after exhausting the loss budget");
}

// --- Patrol scrub ----------------------------------------------------------

TEST(IntegrityScrubTest, RefreshesBlocksOverThePredictedThreshold) {
  FullAuditScope audit_scope;
  Ftl ftl(one_plane());
  FaultPlan plan;
  plan.seed = 2;
  // Retention-driven prediction: old data predicts 0.2 * 3 = 0.6, over
  // the 0.4 threshold; freshly relocated data predicts 0.2, under it —
  // so one refresh settles the block instead of bouncing it forever.
  plan.integrity.rber_base = 0.2;
  plan.integrity.rber_age_anchor = kSecond;
  plan.integrity.rber_age_boost = 2.0;
  plan.integrity.scrub_rber_threshold = 0.4;
  FaultInjector injector(plan);
  ftl.set_fault_injector(&injector);

  SimTime t = 0;
  for (Lpn lpn = 0; lpn < 6; ++lpn) t = ftl.program_page(lpn, 1, t + 1);
  ftl.patrol_scrub(t + 2 * kSecond);
  const IntegrityMetrics& m = injector.metrics().integrity;
  EXPECT_EQ(m.patrol_scrubs, 1u);
  EXPECT_EQ(m.patrol_pages_moved, 6u);
  // The stale block plus (cursor permitting) its freshly-written copy.
  EXPECT_GE(m.patrol_pages_examined, 6u);
  // The refresh relocated, not dropped, the data.
  for (Lpn lpn = 0; lpn < 6; ++lpn) {
    EXPECT_TRUE(ftl.read_page(lpn, t + 3 * kSecond).mapped);
  }
  expect_clean_audit(ftl, "Ftl after patrol refresh");
}

TEST(IntegrityScrubTest, BudgetBoundsOnePassAndTheCursorResumes) {
  FullAuditScope audit_scope;
  Ftl ftl(one_plane());
  FaultPlan plan;
  plan.seed = 2;
  plan.integrity.rber_base = 0.5;
  plan.integrity.scrub_error_limit = 200;  // armed, but never fires
  plan.integrity.scrub_time_budget = 1;    // one block per pass at most
  FaultInjector injector(plan);
  ftl.set_fault_injector(&injector);

  // Two blocks of valid data (8 pages fill block one, the 9th opens the
  // next).
  SimTime t = 0;
  for (Lpn lpn = 0; lpn < 9; ++lpn) t = ftl.program_page(lpn, 1, t + 1);
  const IntegrityMetrics& m = injector.metrics().integrity;
  ftl.patrol_scrub(t + 1);
  const std::uint64_t first = m.patrol_pages_examined;
  EXPECT_GT(first, 0u);
  EXPECT_LT(first, 9u) << "the budget must stop the pass mid-device";
  // The cursor picks up where the last pass stopped: the second pass
  // examines only the remaining valid block, not the first one again.
  ftl.patrol_scrub(t + 2);
  EXPECT_EQ(m.patrol_pages_examined, 9u);
  // A further pass walks the empty remainder free of charge, wraps, and
  // re-examines from the top — full-device coverage, bounded per pass.
  ftl.patrol_scrub(t + 3);
  EXPECT_EQ(m.patrol_pages_examined, 9u + first);
  EXPECT_EQ(m.patrol_scrubs, 0u);
}

TEST(IntegrityScrubTest, NoTriggersMeansNoPass) {
  Ftl ftl(one_plane());
  FaultPlan plan;
  plan.integrity.rber_base = 0.5;  // enabled, but nothing to act on
  FaultInjector injector(plan);
  ftl.set_fault_injector(&injector);
  const SimTime t = ftl.program_page(0, 1, 0);
  ftl.patrol_scrub(t + 1);
  EXPECT_EQ(injector.metrics().integrity.patrol_pages_examined, 0u);
}

// --- End to end: telemetry reconciliation and loss semantics ---------------

SimOptions integrity_options(bool shed = false) {
  SimOptions o;
  o.ssd = testing::tiny_ssd();
  o.policy.name = "reqblock";
  o.policy.capacity_pages = 256;
  o.policy.pages_per_block = o.ssd.pages_per_block;
  o.cache.capacity_pages = 256;
  o.telemetry_env_override = false;
  o.fault.seed = 77;
  // Pre-aged wear drives the endurance boost; modest escape and a
  // shallow retry budget push traffic into every tier.
  o.fault.aging.rated_pe_cycles = 5000;
  o.fault.aging.initial_pe_cycles = 4500;
  IntegrityPlan& in = o.fault.integrity;
  in.rber_base = 0.05;
  in.rber_pe_anchor = 5000;
  in.rber_pe_boost = 4.0;
  in.ecc_escape = 0.6;
  in.read_retry_steps = 1;
  in.retry_relief = 0.5;
  in.stripe_pages = 8;
  in.uncorrectable_shed = shed;
  in.scrub_every_requests = 500;
  in.scrub_rber_threshold = 0.1;
  return o;
}

WorkloadProfile integrity_profile(std::uint64_t requests = 4000) {
  WorkloadProfile p;
  p.name = "integrity-mix";
  p.total_requests = requests;
  p.seed = 13;
  p.write_ratio = 0.5;
  p.hot_extents = 96;
  p.cold_stream_pages = 1 << 14;
  p.mean_interarrival_ns = 140 * kMicrosecond;
  return p;
}

RunResult run_integrity(const SimOptions& o,
                        std::uint64_t requests = 4000) {
  SyntheticTraceSource trace(integrity_profile(requests));
  Simulator sim(o);
  return sim.run(trace);
}

TEST(IntegrityTelemetryTest, EventsMatchInjectorAggregatesExactly) {
  FullAuditScope audit_scope;
  SimOptions o = integrity_options();
  o.telemetry.trace.level = TraceLevel::kAll;
  const RunResult r = run_integrity(o);

  ASSERT_EQ(r.telemetry.events_dropped, 0u);
  const IntegrityMetrics& m = r.fault.integrity;
  // The mix genuinely exercises every tier and the scrubber.
  ASSERT_GT(m.ecc_corrected, 0u);
  ASSERT_GT(m.retry_corrected, 0u);
  ASSERT_GT(m.parity_rebuilds, 0u);
  ASSERT_GT(m.uncorrectable, 0u);
  ASSERT_GT(m.patrol_scrubs, 0u);
  expect_identities(m, o.fault.integrity.stripe_pages);

  const auto& ev = r.telemetry.events;
  EXPECT_EQ(count_kind(ev, EventKind::kEccCorrect), m.ecc_corrected);
  EXPECT_EQ(count_kind(ev, EventKind::kReadRetryStep), m.retry_steps_total);
  EXPECT_EQ(count_kind(ev, EventKind::kParityRebuild), m.parity_rebuilds);
  EXPECT_EQ(sum_args(ev, EventKind::kParityRebuild), m.parity_peer_reads);
  EXPECT_EQ(count_kind(ev, EventKind::kUncorrectable), m.uncorrectable);
  EXPECT_EQ(count_kind(ev, EventKind::kPatrolScrub), m.patrol_scrubs);
  EXPECT_EQ(sum_args(ev, EventKind::kPatrolScrub), m.patrol_pages_moved);
}

TEST(IntegrityLossTest, ShedVsErrorSemanticsAreConfigurable) {
  FullAuditScope audit_scope;
  // Error mode (default): lost reads complete as host-visible errors
  // after the full recovery cost and stay in the histograms.
  const RunResult error_mode = run_integrity(integrity_options(false));
  ASSERT_GT(error_mode.fault.integrity.host_reads_lost, 0u);
  EXPECT_EQ(error_mode.response.count(), error_mode.requests);
  // Shed mode: the same lost reads are counted as arrivals but excluded
  // from the response histograms.
  const RunResult shed_mode = run_integrity(integrity_options(true));
  ASSERT_GT(shed_mode.fault.integrity.host_reads_lost, 0u);
  const std::uint64_t sheds =
      shed_mode.requests - shed_mode.response.count();
  EXPECT_GT(sheds, 0u);
  // Page losses bound request sheds: a multi-page request sheds once.
  EXPECT_LE(sheds, shed_mode.fault.integrity.host_reads_lost);
}

TEST(IntegrityCsvTest, ColumnsAppearOnlyWhenErrorsFired) {
  const auto csv_of = [](const std::vector<RunResult>& rs) {
    std::ostringstream os;
    write_results_csv(os, rs);
    return os.str();
  };
  const RunResult with_errors = run_integrity(integrity_options(), 2000);
  ASSERT_TRUE(with_errors.fault.integrity.any());
  EXPECT_NE(csv_of({with_errors}).find(",ecc_attempts"), std::string::npos);

  SimOptions quiet = integrity_options();
  quiet.fault = FaultPlan{};
  const RunResult without = run_integrity(quiet, 2000);
  EXPECT_EQ(csv_of({without}).find("ecc_attempts"), std::string::npos);
}

// --- CLI -------------------------------------------------------------------

TEST(IntegrityCliTest, EveryDocumentedFlagAppliesThroughTheSharedPath) {
  const char* argv[] = {"prog",
                        "--integrity-rber", "0.03125",
                        "--integrity-rber-pe-anchor", "4000",
                        "--integrity-rber-pe-boost", "2.5",
                        "--integrity-rber-read-anchor", "512",
                        "--integrity-rber-read-boost", "1.5",
                        "--integrity-rber-age-anchor-ms", "750",
                        "--integrity-rber-age-boost", "0.75",
                        "--integrity-ecc-escape", "0.25",
                        "--integrity-retry-steps", "5",
                        "--integrity-retry-relief", "0.125",
                        "--integrity-retry-step-us", "55",
                        "--integrity-stripe-pages", "16",
                        "--integrity-uncorrectable-shed",
                        "--integrity-scrub-every", "12345",
                        "--integrity-scrub-budget-us", "900",
                        "--integrity-scrub-rber", "0.2",
                        "--integrity-scrub-error-limit", "7"};
  const ArgParser args(static_cast<int>(std::size(argv)), argv);
  FaultPlan plan;
  plan.apply_cli(args);
  const IntegrityPlan& in = plan.integrity;
  EXPECT_DOUBLE_EQ(in.rber_base, 0.03125);
  EXPECT_EQ(in.rber_pe_anchor, 4000u);
  EXPECT_DOUBLE_EQ(in.rber_pe_boost, 2.5);
  EXPECT_EQ(in.rber_read_anchor, 512u);
  EXPECT_DOUBLE_EQ(in.rber_read_boost, 1.5);
  EXPECT_EQ(in.rber_age_anchor, 750 * kMillisecond);
  EXPECT_DOUBLE_EQ(in.rber_age_boost, 0.75);
  EXPECT_DOUBLE_EQ(in.ecc_escape, 0.25);
  EXPECT_EQ(in.read_retry_steps, 5u);
  EXPECT_DOUBLE_EQ(in.retry_relief, 0.125);
  EXPECT_EQ(in.retry_step_latency, 55 * kMicrosecond);
  EXPECT_EQ(in.stripe_pages, 16u);
  EXPECT_TRUE(in.uncorrectable_shed);
  EXPECT_EQ(in.scrub_every_requests, 12345u);
  EXPECT_EQ(in.scrub_time_budget, 900 * kMicrosecond);
  EXPECT_DOUBLE_EQ(in.scrub_rber_threshold, 0.2);
  EXPECT_EQ(in.scrub_error_limit, 7u);
  EXPECT_TRUE(plan.enabled());
  EXPECT_NO_THROW(plan.validate());

  // A parser carrying none of the flags leaves the plan untouched.
  const char* none[] = {"prog"};
  FaultPlan untouched = plan;
  untouched.apply_cli(ArgParser(1, none));
  EXPECT_DOUBLE_EQ(untouched.integrity.rber_base, in.rber_base);
  EXPECT_EQ(untouched.integrity.scrub_time_budget, in.scrub_time_budget);
}

}  // namespace
}  // namespace reqblock
