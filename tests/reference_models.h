// Slow-but-obviously-correct reference models for the differential checker.
//
// Each reference implements one replacement discipline with the most naive
// data structure that can express it (a std::vector scanned linearly), so
// its correctness is evident by inspection. The differential tests replay
// identical operation streams through a real policy and its reference and
// require identical victim choices at every eviction — any divergence is a
// bug in the optimized structure (or a silent behavior change).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/freq.h"
#include "core/req_block_policy.h"
#include "util/check.h"
#include "util/types.h"

namespace reqblock::testing {

/// Reference LRU: a vector ordered oldest-access-first. O(n) per op.
class ReferenceLru {
 public:
  void insert(Lpn lpn) {
    REQB_CHECK(!contains(lpn));
    order_.push_back(lpn);
  }

  void hit(Lpn lpn) {
    const auto it = std::find(order_.begin(), order_.end(), lpn);
    REQB_CHECK(it != order_.end());
    order_.erase(it);
    order_.push_back(lpn);  // most recent at the back
  }

  /// Evicts and returns the least recently used page.
  Lpn victim() {
    REQB_CHECK(!order_.empty());
    const Lpn v = order_.front();
    order_.erase(order_.begin());
    return v;
  }

  bool contains(Lpn lpn) const {
    return std::find(order_.begin(), order_.end(), lpn) != order_.end();
  }
  std::size_t size() const { return order_.size(); }

 private:
  std::vector<Lpn> order_;
};

/// Reference FIFO: insertion order only; hits change nothing.
class ReferenceFifo {
 public:
  void insert(Lpn lpn) {
    REQB_CHECK(!contains(lpn));
    order_.push_back(lpn);
  }

  void hit(Lpn lpn) { REQB_CHECK(contains(lpn)); }

  Lpn victim() {
    REQB_CHECK(!order_.empty());
    const Lpn v = order_.front();
    order_.erase(order_.begin());
    return v;
  }

  bool contains(Lpn lpn) const {
    return std::find(order_.begin(), order_.end(), lpn) != order_.end();
  }
  std::size_t size() const { return order_.size(); }

 private:
  std::vector<Lpn> order_;
};

/// Reference LFU with LRU tie-breaking inside a frequency class: pages kept
/// in access order (least recent first within equal counts via stable
/// scanning).
class ReferenceLfu {
 public:
  void insert(Lpn lpn) {
    REQB_CHECK(!contains(lpn));
    entries_.push_back({lpn, 1, clock_++});
  }

  void hit(Lpn lpn) {
    Entry* e = find(lpn);
    REQB_CHECK(e != nullptr);
    ++e->freq;
    e->last_access = clock_++;
  }

  /// Evicts the page with the lowest frequency; among ties, the least
  /// recently accessed (matching the real policy's in-class LRU order).
  Lpn victim() {
    REQB_CHECK(!entries_.empty());
    std::size_t best = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      const Entry& cand = entries_[i];
      const Entry& cur = entries_[best];
      if (cand.freq < cur.freq ||
          (cand.freq == cur.freq && cand.last_access < cur.last_access)) {
        best = i;
      }
    }
    const Lpn v = entries_[best].lpn;
    entries_.erase(entries_.begin() +
                   static_cast<std::ptrdiff_t>(best));
    return v;
  }

  bool contains(Lpn lpn) const {
    return const_cast<ReferenceLfu*>(this)->find(lpn) != nullptr;
  }
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    Lpn lpn;
    std::uint64_t freq;
    std::uint64_t last_access;
  };

  Entry* find(Lpn lpn) {
    for (Entry& e : entries_) {
      if (e.lpn == lpn) return &e;
    }
    return nullptr;
  }

  std::uint64_t clock_ = 0;
  std::vector<Entry> entries_;
};

/// Brute-force Eq. 1 victim selection replicating the paper's get_victim():
/// walk each list from the tail past guarded blocks, score the three
/// candidates with req_block_freq at the policy's current tick, and take
/// the strict minimum in the deterministic tie-break order IRL, DRL, SRL.
/// Returns nullptr when nothing is evictable.
inline const ReqBlock* brute_force_victim(const ReqBlockPolicy& policy) {
  const ReqList order[] = {ReqList::kIRL, ReqList::kDRL, ReqList::kSRL};
  const ReqBlock* victim = nullptr;
  double best = std::numeric_limits<double>::infinity();
  for (const ReqList level : order) {
    const ReqBlock* cand = policy.tail_of(level);
    while (cand != nullptr && policy.is_guarded(cand)) {
      cand = policy.prev_in_list(cand);
    }
    if (cand == nullptr) continue;
    const double f =
        req_block_freq(*cand, policy.now(), policy.options().freq_mode);
    if (f < best) {
      best = f;
      victim = cand;
    }
  }
  return victim;
}

/// The page set Req-block must evict for `victim`, including the
/// downgraded-merge origin (Fig. 6) when the policy would drag it along.
/// Call BEFORE select_victim; returns the expected batch, sorted.
inline std::vector<Lpn> expected_victim_pages(const ReqBlockPolicy& policy,
                                              const ReqBlock* victim) {
  std::vector<Lpn> pages;
  if (victim == nullptr) return pages;
  pages = victim->pages;
  if (policy.options().merge_on_evict && victim->origin_id != 0) {
    // The origin is merged only if it still exists, still sits in IRL, and
    // is not shielded by the in-flight request.
    const ReqBlock* origin = nullptr;
    for (const ReqBlock* b = policy.tail_of(ReqList::kIRL); b != nullptr;
         b = policy.prev_in_list(b)) {
      if (b->block_id == victim->origin_id) {
        origin = b;
        break;
      }
    }
    if (origin != nullptr && !policy.is_guarded(origin)) {
      pages.insert(pages.end(), origin->pages.begin(), origin->pages.end());
    }
  }
  std::sort(pages.begin(), pages.end());
  return pages;
}

}  // namespace reqblock::testing
