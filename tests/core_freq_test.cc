#include "core/freq.h"

#include <gtest/gtest.h>

#include <cmath>

namespace reqblock {
namespace {

ReqBlock make_block(std::uint64_t access, std::size_t pages, Tick insert) {
  ReqBlock b;
  b.access_cnt = access;
  b.pages.assign(pages, 0);
  b.insert_tick = insert;
  return b;
}

TEST(FreqTest, Equation1) {
  // Freq = Access_cnt / (Page_num * (T_cur - T_insert)).
  const ReqBlock b = make_block(4, 2, 10);
  EXPECT_DOUBLE_EQ(req_block_freq(b, 20), 4.0 / (2.0 * 10.0));
}

TEST(FreqTest, ZeroAgeIsMaximallyHot) {
  const ReqBlock b = make_block(1, 3, 50);
  EXPECT_TRUE(std::isinf(req_block_freq(b, 50)));
}

TEST(FreqTest, OlderBlocksColder) {
  const ReqBlock b = make_block(2, 2, 0);
  EXPECT_GT(req_block_freq(b, 10), req_block_freq(b, 100));
}

TEST(FreqTest, MorePagesColder) {
  const ReqBlock small = make_block(2, 1, 0);
  const ReqBlock large = make_block(2, 10, 0);
  EXPECT_GT(req_block_freq(small, 10), req_block_freq(large, 10));
}

TEST(FreqTest, MoreAccessesHotter) {
  const ReqBlock cold = make_block(1, 2, 0);
  const ReqBlock hot = make_block(9, 2, 0);
  EXPECT_GT(req_block_freq(hot, 10), req_block_freq(cold, 10));
}

TEST(FreqTest, EmptyBlockDoesNotDivideByZero) {
  const ReqBlock b = make_block(1, 0, 0);
  EXPECT_TRUE(std::isfinite(req_block_freq(b, 10)));
}

TEST(FreqTest, NoTimeModeIgnoresAge) {
  const ReqBlock b = make_block(4, 2, 0);
  EXPECT_DOUBLE_EQ(req_block_freq(b, 10, FreqMode::kNoTime), 2.0);
  EXPECT_DOUBLE_EQ(req_block_freq(b, 1000, FreqMode::kNoTime), 2.0);
}

TEST(FreqTest, NoSizeModeIgnoresPages) {
  const ReqBlock a = make_block(4, 1, 0);
  const ReqBlock b = make_block(4, 64, 0);
  EXPECT_DOUBLE_EQ(req_block_freq(a, 10, FreqMode::kNoSize),
                   req_block_freq(b, 10, FreqMode::kNoSize));
}

TEST(FreqTest, CountOnlyMode) {
  const ReqBlock b = make_block(7, 3, 0);
  EXPECT_DOUBLE_EQ(req_block_freq(b, 10, FreqMode::kCountOnly), 7.0);
}

TEST(FreqTest, ClockBeforeInsertTreatedAsZeroAge) {
  const ReqBlock b = make_block(1, 1, 100);
  EXPECT_TRUE(std::isinf(req_block_freq(b, 50)));
}

}  // namespace
}  // namespace reqblock
