#include "sim/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/simulator.h"
#include "test_util.h"
#include "trace/synthetic.h"

namespace reqblock {
namespace {

RunResult sample_result() {
  WorkloadProfile p;
  p.name = "report-unit";
  p.total_requests = 3000;
  p.seed = 2;
  p.hot_extents = 128;
  p.cold_stream_pages = 1 << 14;
  SyntheticTraceSource trace(p);
  SimOptions o;
  o.ssd = testing::tiny_ssd();
  o.policy.name = "reqblock";
  o.policy.capacity_pages = 256;
  o.cache.capacity_pages = 256;
  Simulator sim(o);
  return sim.run(trace);
}

TEST(ReportTest, ConfigTablePrintsTable1Fields) {
  std::ostringstream os;
  print_config(os, SsdConfig::paper_default());
  const std::string out = os.str();
  EXPECT_NE(out.find("128.0GB"), std::string::npos);
  EXPECT_NE(out.find("0.075ms"), std::string::npos);
  EXPECT_NE(out.find("2ms"), std::string::npos);
  EXPECT_NE(out.find("15ms"), std::string::npos);
  EXPECT_NE(out.find("10ns"), std::string::npos);
  EXPECT_NE(out.find("10%"), std::string::npos);
}

TEST(ReportTest, ResultRowHasAllColumns) {
  const RunResult r = sample_result();
  const auto row = result_row(r);
  ASSERT_EQ(row.size(), 10u);
  EXPECT_EQ(row[0], "report-unit");
  EXPECT_EQ(row[1], "Req-block");
  EXPECT_EQ(row[2], "1MB");  // 256 pages
  EXPECT_NE(row[3].find('%'), std::string::npos);
  EXPECT_NE(row[4].find("ms"), std::string::npos);
}

TEST(ReportTest, ResultsTableRenders) {
  const RunResult r = sample_result();
  std::ostringstream os;
  results_table({r, r}).print(os);
  EXPECT_NE(os.str().find("Req-block"), std::string::npos);
  EXPECT_NE(os.str().find("hit"), std::string::npos);
}

TEST(ReportTest, MetadataPercentConsistent) {
  const RunResult r = sample_result();
  const double pct = metadata_percent(r);
  EXPECT_GE(pct, 0.0);
  EXPECT_LT(pct, 5.0);
  // Recompute by hand from the sampled mean.
  const double expect = r.cache.metadata_bytes.mean() /
                        (static_cast<double>(r.cache_capacity_pages) * 4096) *
                        100.0;
  EXPECT_DOUBLE_EQ(pct, expect);
}

TEST(ReportTest, MetadataPercentZeroCapacity) {
  RunResult r;
  r.cache_capacity_pages = 0;
  EXPECT_DOUBLE_EQ(metadata_percent(r), 0.0);
}

}  // namespace
}  // namespace reqblock
