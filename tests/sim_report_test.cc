#include "sim/report.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sim/simulator.h"
#include "test_util.h"
#include "trace/synthetic.h"

namespace reqblock {
namespace {

RunResult sample_result() {
  WorkloadProfile p;
  p.name = "report-unit";
  p.total_requests = 3000;
  p.seed = 2;
  p.hot_extents = 128;
  p.cold_stream_pages = 1 << 14;
  SyntheticTraceSource trace(p);
  SimOptions o;
  o.ssd = testing::tiny_ssd();
  o.policy.name = "reqblock";
  o.policy.capacity_pages = 256;
  o.cache.capacity_pages = 256;
  Simulator sim(o);
  return sim.run(trace);
}

TEST(ReportTest, ConfigTablePrintsTable1Fields) {
  std::ostringstream os;
  print_config(os, SsdConfig::paper_default());
  const std::string out = os.str();
  EXPECT_NE(out.find("128.0GB"), std::string::npos);
  EXPECT_NE(out.find("0.075ms"), std::string::npos);
  EXPECT_NE(out.find("2ms"), std::string::npos);
  EXPECT_NE(out.find("15ms"), std::string::npos);
  EXPECT_NE(out.find("10ns"), std::string::npos);
  EXPECT_NE(out.find("10%"), std::string::npos);
}

TEST(ReportTest, ResultRowHasAllColumns) {
  const RunResult r = sample_result();
  const auto row = result_row(r);
  ASSERT_EQ(row.size(), 10u);
  EXPECT_EQ(row[0], "report-unit");
  EXPECT_EQ(row[1], "Req-block");
  EXPECT_EQ(row[2], "1MB");  // 256 pages
  EXPECT_NE(row[3].find('%'), std::string::npos);
  EXPECT_NE(row[4].find("ms"), std::string::npos);
}

TEST(ReportTest, ResultsTableRenders) {
  const RunResult r = sample_result();
  std::ostringstream os;
  results_table({r, r}).print(os);
  EXPECT_NE(os.str().find("Req-block"), std::string::npos);
  EXPECT_NE(os.str().find("hit"), std::string::npos);
}

TEST(ReportTest, MetadataPercentConsistent) {
  const RunResult r = sample_result();
  const double pct = metadata_percent(r);
  EXPECT_GE(pct, 0.0);
  EXPECT_LT(pct, 5.0);
  // Recompute by hand from the sampled mean.
  const double expect = r.cache.metadata_bytes.mean() /
                        (static_cast<double>(r.cache_capacity_pages) * 4096) *
                        100.0;
  EXPECT_DOUBLE_EQ(pct, expect);
}

// Golden file: the CSV header and one hand-built row, byte for byte.
// Every value is chosen to be exactly representable so the expectation
// holds on any host/locale (format_double is locale-independent).
TEST(ReportTest, ResultsCsvGolden) {
  RunResult r;
  r.trace_name = "golden";
  r.policy_name = "lru";
  r.cache_capacity_pages = 4096;
  r.requests = 100;
  r.response.record(10);  // buckets below 16 are exact: all quantiles = 10
  r.cache.page_lookups = 200;
  r.cache.page_hits = 150;  // hit_ratio = 0.75
  r.cache.eviction_batch.record(4);
  r.cache.eviction_batch.record(8);  // mean = 6
  r.flash.host_page_writes = 50;
  r.flash.host_page_reads = 25;
  r.flash.gc_page_moves = 10;  // waf = 60/50 = 1.2
  r.flash.erases = 2;
  r.channel_utilization = 0.25;
  r.chip_utilization = 0.125;

  std::ostringstream os;
  write_results_csv(os, {r});
  EXPECT_EQ(os.str(),
            "trace,policy,cache_pages,requests,hit_ratio,mean_ns,p50_ns,"
            "p95_ns,p99_ns,p999_ns,flash_writes,flash_reads,gc_moves,"
            "erases,waf,pages_per_evict,metadata_pct,channel_util,"
            "chip_util\n"
            "golden,lru,4096,100,0.750000,10,10,10,10,10,50,25,10,2,"
            "1.2000,6.000,0.0000,0.2500,0.1250\n");
}

TEST(ReportTest, CsvTailColumnsFromRealRun) {
  const RunResult r = sample_result();
  std::ostringstream os;
  write_results_csv(os, {r});
  const std::string out = os.str();
  // Header and row agree on column count.
  const auto nl = out.find('\n');
  ASSERT_NE(nl, std::string::npos);
  const auto cols = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',') + 1;
  };
  EXPECT_EQ(cols(out.substr(0, nl)), cols(out.substr(nl + 1)));
  EXPECT_NE(out.find("p95_ns"), std::string::npos);
  EXPECT_NE(out.find("p999_ns"), std::string::npos);
}

TEST(ReportTest, SelfProfileAndSnapshotSummarySilentWhenAbsent) {
  RunResult r;  // no telemetry collected
  std::ostringstream os;
  write_self_profile(os, r);
  write_snapshot_summary(os, r);
  EXPECT_TRUE(os.str().empty());
}

TEST(ReportTest, SnapshotSummaryRendersColumns) {
  RunResult r;
  r.trace_name = "t";
  r.policy_name = "p";
  r.telemetry.snapshots.columns = {"cache.hit_ratio", "flash.waf"};
  r.telemetry.snapshots.rows.push_back({100, 1000, {0.5, 1.0}});
  r.telemetry.snapshots.rows.push_back({200, 2000, {0.75, 1.5}});
  std::ostringstream os;
  write_snapshot_summary(os, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("cache.hit_ratio"), std::string::npos);
  EXPECT_NE(out.find("flash.waf"), std::string::npos);
  EXPECT_NE(out.find("0.7500"), std::string::npos);  // last hit ratio
  EXPECT_NE(out.find("2 samples"), std::string::npos);
}

TEST(ReportTest, SelfProfileRendersSections) {
  RunResult r;
  r.trace_name = "t";
  r.policy_name = "p";
  r.telemetry.profile.entries.push_back({"cache_serve", 100, 1'000'000});
  r.telemetry.profile.entries.push_back({"gc", 4, 3'000'000});
  std::ostringstream os;
  write_self_profile(os, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("cache_serve"), std::string::npos);
  EXPECT_NE(out.find("gc"), std::string::npos);
  EXPECT_NE(out.find("75.0%"), std::string::npos);  // gc share of 4ms
}

TEST(ReportTest, MetadataPercentZeroCapacity) {
  RunResult r;
  r.cache_capacity_pages = 0;
  EXPECT_DOUBLE_EQ(metadata_percent(r), 0.0);
}

TEST(ReportTest, ReliabilitySummaryOrderGolden) {
  // The reliability section renders per result in one fixed order —
  // fault, aging, integrity — and each table appears only when its
  // subsystem fired. Golden-pins the order so no driver regresses to
  // grouping all fault tables before all aging tables again.
  RunResult r;
  r.trace_name = "t";
  r.policy_name = "p";
  r.fault.enabled = true;
  r.fault.program_faults = 3;
  r.fault.read_disturb_migrations = 2;
  r.fault.integrity.ecc_attempts = 5;
  r.fault.integrity.ecc_corrected = 5;

  std::ostringstream os;
  write_reliability_summary(os, r);
  const std::string out = os.str();
  const auto fault_at = out.find("Fault injection (t / p)");
  const auto aging_at = out.find("Device aging (t / p)");
  const auto integrity_at = out.find("Data integrity (t / p)");
  ASSERT_NE(fault_at, std::string::npos);
  ASSERT_NE(aging_at, std::string::npos);
  ASSERT_NE(integrity_at, std::string::npos);
  EXPECT_LT(fault_at, aging_at);
  EXPECT_LT(aging_at, integrity_at);
  // Byte-stable: a second render of the same result is identical.
  std::ostringstream again;
  write_reliability_summary(again, r);
  EXPECT_EQ(out, again.str());

  // Sections gate independently: integrity alone renders alone.
  RunResult only;
  only.trace_name = "t";
  only.policy_name = "p";
  only.fault.integrity.patrol_scrubs = 1;
  std::ostringstream solo;
  write_reliability_summary(solo, only);
  EXPECT_EQ(solo.str().find("Fault injection"), std::string::npos);
  EXPECT_EQ(solo.str().find("Device aging"), std::string::npos);
  EXPECT_NE(solo.str().find("Data integrity"), std::string::npos);
}

}  // namespace
}  // namespace reqblock
