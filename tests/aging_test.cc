// Device-aging semantics: ramp math, per-block wear bookkeeping, the
// refresh paths (read-disturb migration, retention scrub), rated-wear
// crossings, pre-aged runs, end-of-life read-mostly mode, and the exact
// reconciliation of the aging telemetry events against the injector's
// aggregates — all under full audits.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/aging.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "trace/synthetic.h"
#include "trace/vector_source.h"
#include "util/args.h"
#include "util/audit.h"

namespace reqblock {
namespace {

struct FullAuditScope {
  AuditLevel previous = set_audit_level(AuditLevel::kFull);
  ~FullAuditScope() { set_audit_level(previous); }
};

std::uint64_t count_kind(const std::vector<TraceEvent>& events,
                         EventKind kind) {
  std::uint64_t n = 0;
  for (const auto& e : events) n += e.kind == kind ? 1 : 0;
  return n;
}

std::uint64_t sum_args(const std::vector<TraceEvent>& events,
                       EventKind kind) {
  std::uint64_t n = 0;
  for (const auto& e : events) n += e.kind == kind ? e.arg : 0;
  return n;
}

void expect_clean_audit(const Ftl& ftl, const std::string& subject) {
  AuditReport report(subject);
  ftl.audit(report);
  EXPECT_TRUE(report.ok()) << subject;
}

// --- Ramp math -------------------------------------------------------------

TEST(AgingModelTest, EnduranceRampIsQuadraticAndUncapped) {
  AgingPlan plan;
  plan.rated_pe_cycles = 100;
  plan.wear_program_fail_max = 0.4;
  plan.wear_erase_fail_max = 0.2;
  const AgingModel m(plan);
  EXPECT_DOUBLE_EQ(m.program_fail_extra(0), 0.0);
  EXPECT_DOUBLE_EQ(m.program_fail_extra(50), 0.4 * 0.25);
  EXPECT_DOUBLE_EQ(m.program_fail_extra(100), 0.4);
  // Past rated wear the curve keeps climbing (the injector clamps the
  // combined probability, not the ramp).
  EXPECT_DOUBLE_EQ(m.program_fail_extra(150), 0.4 * 2.25);
  EXPECT_DOUBLE_EQ(m.erase_fail_extra(100), 0.2);
  EXPECT_DOUBLE_EQ(m.erase_fail_extra(200), 0.2 * 4.0);
}

TEST(AgingModelTest, ReadRampsAreLinearAndSaturate) {
  AgingPlan plan;
  plan.read_disturb_limit = 10;
  plan.read_disturb_fail_max = 0.2;
  plan.retention_age_limit = 1000;
  plan.retention_fail_max = 0.1;
  const AgingModel m(plan);
  EXPECT_DOUBLE_EQ(m.read_fail_extra(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.read_fail_extra(5, 0), 0.1);
  EXPECT_DOUBLE_EQ(m.read_fail_extra(10, 0), 0.2);
  EXPECT_DOUBLE_EQ(m.read_fail_extra(50, 0), 0.2);  // saturates
  EXPECT_DOUBLE_EQ(m.read_fail_extra(0, 500), 0.05);
  EXPECT_DOUBLE_EQ(m.read_fail_extra(0, 2000), 0.1);  // saturates
  EXPECT_DOUBLE_EQ(m.read_fail_extra(10, 1000), 0.3);  // ramps add

  EXPECT_FALSE(m.read_disturb_migration_due(9));
  EXPECT_TRUE(m.read_disturb_migration_due(10));
  EXPECT_FALSE(m.retention_scrub_due(999));
  EXPECT_TRUE(m.retention_scrub_due(1000));
}

TEST(AgingModelTest, DisabledRampsNeverFire) {
  const AgingModel m{};  // default plan: everything off
  EXPECT_FALSE(m.enabled());
  EXPECT_DOUBLE_EQ(m.program_fail_extra(1000000), 0.0);
  EXPECT_DOUBLE_EQ(m.erase_fail_extra(1000000), 0.0);
  EXPECT_DOUBLE_EQ(m.read_fail_extra(1000000, 1000000000), 0.0);
  EXPECT_FALSE(m.read_disturb_migration_due(1000000));
  EXPECT_FALSE(m.retention_scrub_due(1000000000));
}

TEST(AgingModelTest, InvalidPlansAreRejected) {
  AgingPlan plan;
  plan.rated_pe_cycles = 100;
  plan.wear_program_fail_max = 1.0;  // ramp maxima live in [0, 1)
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.wear_program_fail_max = -0.1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = AgingPlan{};
  plan.wear_erase_fail_max = 0.1;  // wear ramp with no rated anchor
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = AgingPlan{};
  plan.read_disturb_fail_max = 0.1;  // disturb ramp with no limit
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = AgingPlan{};
  plan.retention_fail_max = 0.1;  // retention ramp with no limit
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(AgingModelTest, EnabledCoversEveryTrigger) {
  EXPECT_FALSE(AgingPlan{}.enabled());
  AgingPlan p;
  p.rated_pe_cycles = 1;
  EXPECT_TRUE(p.enabled());
  p = AgingPlan{};
  p.read_disturb_limit = 1;
  EXPECT_TRUE(p.enabled());
  p = AgingPlan{};
  p.retention_age_limit = 1;
  EXPECT_TRUE(p.enabled());
  p = AgingPlan{};
  p.eol_spare_floor = 1;
  EXPECT_TRUE(p.enabled());
  p = AgingPlan{};
  p.initial_pe_cycles = 1;
  EXPECT_TRUE(p.enabled());
  // Ramp maxima and EOL tuning alone arm nothing.
  p = AgingPlan{};
  p.eol_free_block_floor = 5;
  p.eol_exit_margin = 5;
  EXPECT_FALSE(p.enabled());
}

// --- FTL wiring: refresh paths --------------------------------------------

TEST(AgingFtlTest, ReadDisturbLimitForcesMigrationAndResetsCounter) {
  FullAuditScope audit_scope;
  Ftl ftl(testing::tiny_ssd());
  FaultPlan plan;
  plan.aging.read_disturb_limit = 8;
  FaultInjector injector(plan);
  ftl.set_fault_injector(&injector);

  SimTime t = ftl.program_page(0, 1, 0);
  // Each program resets the block's read counter, so every 8-read round
  // crosses the limit exactly once and relocates the page.
  for (int round = 1; round <= 3; ++round) {
    for (int i = 0; i < 8; ++i) {
      const auto rr = ftl.read_page(0, t + 1);
      ASSERT_TRUE(rr.mapped);
      EXPECT_EQ(rr.version, 1u) << "migration must preserve the mapping";
      t = rr.complete;
    }
    EXPECT_EQ(injector.metrics().read_disturb_migrations,
              static_cast<std::uint64_t>(round));
  }
  EXPECT_EQ(injector.metrics().read_disturb_pages_moved, 3u);
  // Each migration erases (or retires) the disturbed block.
  EXPECT_EQ(ftl.metrics().erases, 3u);
  EXPECT_EQ(injector.metrics().retention_scrubs, 0u);
  expect_clean_audit(ftl, "Ftl after read-disturb migrations");
}

TEST(AgingFtlTest, RetentionAgeForcesScrubOnRead) {
  FullAuditScope audit_scope;
  Ftl ftl(testing::tiny_ssd());
  FaultPlan plan;
  plan.aging.retention_age_limit = 1 * kSecond;
  FaultInjector injector(plan);
  ftl.set_fault_injector(&injector);

  const SimTime written = ftl.program_page(0, 1, 1000);
  // Young data: no scrub.
  SimTime t = ftl.read_page(0, written + 10 * kMillisecond).complete;
  EXPECT_EQ(injector.metrics().retention_scrubs, 0u);
  // Past the age limit the read relocates the block's data...
  t = ftl.read_page(0, written + 2 * kSecond).complete;
  EXPECT_EQ(injector.metrics().retention_scrubs, 1u);
  EXPECT_EQ(injector.metrics().retention_pages_moved, 1u);
  // ...which restamps its data epoch: an immediate re-read is quiet.
  const auto rr = ftl.read_page(0, t + kMicrosecond);
  EXPECT_TRUE(rr.mapped);
  EXPECT_EQ(rr.version, 1u);
  EXPECT_EQ(injector.metrics().retention_scrubs, 1u);
  expect_clean_audit(ftl, "Ftl after retention scrub");
}

TEST(AgingFtlTest, WearThresholdFiresWhenEraseHitsRatedExactly) {
  FullAuditScope audit_scope;
  Ftl ftl(testing::tiny_ssd());
  FaultPlan plan;
  plan.aging.rated_pe_cycles = 1;
  plan.aging.read_disturb_limit = 4;
  FaultInjector injector(plan);
  ftl.set_fault_injector(&injector);

  SimTime t = ftl.program_page(0, 1, 0);
  for (int i = 0; i < 4; ++i) t = ftl.read_page(0, t + 1).complete;
  // The migration erased the disturbed block: its first P/E cycle is the
  // rated budget, so the crossing fires exactly once.
  EXPECT_EQ(injector.metrics().read_disturb_migrations, 1u);
  EXPECT_EQ(injector.metrics().wear_threshold_crossings, 1u);
  expect_clean_audit(ftl, "Ftl after wear crossing");
}

TEST(AgingFtlTest, PreAgeStartsEveryBlockAtTheConfiguredWear) {
  Ftl ftl(testing::tiny_ssd());
  FaultPlan plan;
  plan.aging.rated_pe_cycles = 100;
  plan.aging.initial_pe_cycles = 99;
  FaultInjector injector(plan);
  ftl.set_fault_injector(&injector);
  EXPECT_EQ(ftl.array().initial_pe_cycles(), 99u);
  EXPECT_EQ(ftl.array().block_wear(0, 0).pe_cycles, 99u);
  EXPECT_EQ(ftl.array().block_wear(15, 200).pe_cycles, 99u);
  // Pre-age is uniform wear, not traffic: no erase was performed.
  EXPECT_EQ(ftl.array().total_erases(), 0u);
}

// --- End-of-life read-mostly mode ------------------------------------------

/// Overwrite churn on a block-starved device (micro_ssd): constant GC.
std::vector<IoRequest> churn(std::size_t requests) {
  std::vector<IoRequest> reqs;
  reqs.reserve(requests);
  SimTime at = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    at += 10 * kMicrosecond;
    reqs.push_back(testing::write_req(i, (i * 4) % 1024, 4, at));
  }
  return reqs;
}

SimOptions aging_options(const std::string& policy) {
  SimOptions o;
  o.ssd = testing::tiny_ssd();
  o.policy.name = policy;
  o.policy.capacity_pages = 256;
  o.policy.pages_per_block = o.ssd.pages_per_block;
  o.cache.capacity_pages = 256;
  o.telemetry_env_override = false;
  return o;
}

TEST(AgingEolTest, SpareFloorForcesReadMostlyModeFromTheStart) {
  FullAuditScope audit_scope;
  SimOptions o = aging_options("reqblock");
  o.ssd = testing::micro_ssd();
  o.policy.pages_per_block = o.ssd.pages_per_block;
  // Far more spare blocks demanded than the pool holds: the very first
  // admission check trips the sticky spare trigger.
  o.fault.aging.eol_spare_floor = 100000;
  o.telemetry.trace.level = TraceLevel::kAll;

  std::vector<IoRequest> reqs;
  SimTime at = 0;
  std::uint64_t writes = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    at += 100 * kMicrosecond;
    if (i % 2 == 0) {
      reqs.push_back(testing::write_req(i, (i * 4) % 512, 4, at));
      ++writes;
    } else {
      reqs.push_back(testing::read_req(i, (i * 4) % 512, 4, at));
    }
  }
  VectorTraceSource trace(reqs, "mixed");
  const RunResult r = Simulator(o).run(trace);

  // Every host write was shed; reads kept serving (zero-fill: nothing was
  // ever programmed). The run completes instead of asserting.
  EXPECT_EQ(r.requests, 200u);
  EXPECT_EQ(r.fault.degraded_write_sheds, writes);
  EXPECT_EQ(r.fault.degraded_mode_enters, 1u);
  EXPECT_EQ(r.fault.degraded_mode_exits, 0u);
  EXPECT_EQ(r.flash.host_page_writes, 0u);
  // Shed writes never reach the response histogram or the flash counters,
  // and the telemetry events mirror the transition counters exactly.
  EXPECT_EQ(count_kind(r.telemetry.events, EventKind::kDegradedModeEnter), 1u);
  EXPECT_EQ(count_kind(r.telemetry.events, EventKind::kDegradedModeExit), 0u);
}

TEST(AgingEolTest, FreeBlockFloorEntersAndExitsWithHysteresis) {
  FullAuditScope audit_scope;
  // Single-plane device: every page lands in plane 0, so the reclaimable
  // count is directly controlled by how much valid data we write.
  SsdConfig cfg;
  cfg.channels = 1;
  cfg.chips_per_channel = 1;
  cfg.pages_per_block = 8;
  cfg.capacity_bytes = 64ULL * 8 * 4096;  // 64 blocks, one plane
  cfg.validate();
  Ftl ftl(cfg);

  FaultPlan enter_plan;
  enter_plan.spare_blocks_per_plane = 0;
  enter_plan.aging.rated_pe_cycles = 1000;  // arm aging; ramps stay cold
  enter_plan.aging.eol_free_block_floor = 40;
  enter_plan.aging.eol_exit_margin = 2;
  FaultInjector enter_injector(enter_plan);
  ftl.set_fault_injector(&enter_injector);

  // Empty device: 64 reclaimable blocks, comfortably above the floor.
  EXPECT_FALSE(ftl.update_degraded_mode(0));
  // 25 blocks of valid data leave 39 reclaimable: below the floor.
  SimTime t = 0;
  for (Lpn lpn = 0; lpn < 200; ++lpn) {
    t = ftl.program_page(lpn, 1, t + 1);
  }
  EXPECT_TRUE(ftl.update_degraded_mode(t));
  EXPECT_EQ(enter_injector.metrics().degraded_mode_enters, 1u);
  // Hysteresis: a floor the plane satisfies, but not by the margin, keeps
  // the device degraded.
  FaultPlan sticky_plan = enter_plan;
  sticky_plan.aging.eol_free_block_floor = 39;
  sticky_plan.aging.eol_exit_margin = 10;  // would need 49 reclaimable
  FaultInjector sticky_injector(sticky_plan);
  ftl.set_fault_injector(&sticky_injector);
  EXPECT_TRUE(ftl.update_degraded_mode(t + 1));
  EXPECT_EQ(sticky_injector.metrics().degraded_mode_exits, 0u);
  // With honest headroom above floor + margin the device recovers.
  FaultPlan exit_plan = enter_plan;
  exit_plan.aging.eol_free_block_floor = 20;
  FaultInjector exit_injector(exit_plan);
  ftl.set_fault_injector(&exit_injector);
  EXPECT_FALSE(ftl.update_degraded_mode(t + 2));
  EXPECT_EQ(exit_injector.metrics().degraded_mode_exits, 1u);
  expect_clean_audit(ftl, "single-plane Ftl after EOL transitions");
}

// --- Wear ramps end to end -------------------------------------------------

TEST(AgingSimulatorTest, WornDeviceRetiresBlocksWhereAFreshOneDoesNot) {
  FullAuditScope audit_scope;
  const auto run = [](std::uint32_t initial_pe) {
    SimOptions o = aging_options("reqblock");
    o.ssd = testing::micro_ssd();
    o.policy.pages_per_block = o.ssd.pages_per_block;
    o.fault.seed = 17;
    o.fault.aging.rated_pe_cycles = 10000;
    o.fault.aging.initial_pe_cycles = initial_pe;
    o.fault.aging.wear_erase_fail_max = 0.3;
    o.fault.aging.wear_program_fail_max = 0.05;
    VectorTraceSource trace(churn(6000), "gc-pressure");
    return Simulator(o).run(trace);
  };
  const RunResult fresh = run(1);      // aging armed, but near-zero wear
  const RunResult aged = run(9900);    // opens at 99% of rated

  // The quadratic ramp keeps the fresh device clean and batters the aged
  // one: erase faults retire blocks, program faults force retries.
  EXPECT_EQ(fresh.fault.erase_faults, 0u);
  EXPECT_EQ(fresh.fault.blocks_retired, 0u);
  EXPECT_GT(aged.fault.erase_faults, 0u);
  EXPECT_GT(aged.fault.blocks_retired, 0u);
  EXPECT_GT(aged.fault.program_faults, 0u);
  EXPECT_GE(aged.response.p99(), fresh.response.p99());
  EXPECT_EQ(fresh.requests, aged.requests);
}

// --- Telemetry reconciliation ----------------------------------------------

TEST(AgingTelemetryTest, AgingEventsMatchInjectorAggregatesExactly) {
  FullAuditScope audit_scope;
  SimOptions o = aging_options("reqblock");
  o.fault.aging.rated_pe_cycles = 3;
  o.fault.aging.initial_pe_cycles = 2;
  o.fault.aging.read_disturb_limit = 8;
  o.fault.aging.retention_age_limit = 1 * kSecond;
  o.telemetry.trace.level = TraceLevel::kAll;

  // Deterministic mix: churn writes, a disturb-hammered page, and late
  // reads of cold data past the retention limit.
  std::vector<IoRequest> reqs;
  SimTime at = 0;
  std::uint64_t id = 0;
  for (; id < 400; ++id) {
    at += 50 * kMicrosecond;
    reqs.push_back(testing::write_req(id, (id * 4) % 2048, 4, at));
  }
  for (; id < 430; ++id) {  // 30 reads of one page: disturb migrations
    at += 50 * kMicrosecond;
    reqs.push_back(testing::read_req(id, 0, 1, at));
  }
  at += 3 * kSecond;  // everything written above is now past the limit
  for (; id < 470; ++id) {
    at += 50 * kMicrosecond;
    reqs.push_back(testing::read_req(id, ((id - 430) * 32) % 2048, 1, at));
  }
  VectorTraceSource trace(reqs, "aging-mix");
  const RunResult r = Simulator(o).run(trace);

  ASSERT_EQ(r.telemetry.events_dropped, 0u);
  ASSERT_GT(r.fault.read_disturb_migrations, 0u);
  ASSERT_GT(r.fault.retention_scrubs, 0u);
  ASSERT_GT(r.fault.wear_threshold_crossings, 0u);

  const auto& ev = r.telemetry.events;
  // One event per refresh, arg = pages relocated, reconciled exactly.
  EXPECT_EQ(count_kind(ev, EventKind::kReadDisturbMigrate),
            r.fault.read_disturb_migrations);
  EXPECT_EQ(sum_args(ev, EventKind::kReadDisturbMigrate),
            r.fault.read_disturb_pages_moved);
  EXPECT_EQ(count_kind(ev, EventKind::kRetentionScrub),
            r.fault.retention_scrubs);
  EXPECT_EQ(sum_args(ev, EventKind::kRetentionScrub),
            r.fault.retention_pages_moved);
  EXPECT_EQ(count_kind(ev, EventKind::kWearThreshold),
            r.fault.wear_threshold_crossings);
  EXPECT_EQ(count_kind(ev, EventKind::kDegradedModeEnter),
            r.fault.degraded_mode_enters);
  EXPECT_EQ(count_kind(ev, EventKind::kDegradedModeExit),
            r.fault.degraded_mode_exits);
  // The pre-aging identities survive: every erase (GC and refresh alike)
  // emits kBlockErase, and refresh moves never masquerade as GC moves.
  EXPECT_EQ(count_kind(ev, EventKind::kBlockErase), r.flash.erases);
  EXPECT_EQ(count_kind(ev, EventKind::kGcMove), r.flash.gc_page_moves);
}

// --- CLI -------------------------------------------------------------------

TEST(AgingCliTest, EveryDocumentedFlagAppliesThroughTheSharedPath) {
  // Both drivers funnel through FaultPlan::apply_cli; this is the
  // regression net for the full documented flag set.
  const char* argv[] = {"prog",
                        "--fault-seed", "21",
                        "--fault-program-fail", "0.25",
                        "--fault-read-fail", "0.125",
                        "--fault-erase-fail", "0.0625",
                        "--fault-retries", "5",
                        "--fault-spares", "11",
                        "--fault-power-loss-every", "1234",
                        "--aging-rated-pe", "500",
                        "--aging-wear-program-max", "0.03125",
                        "--aging-wear-erase-max", "0.015625",
                        "--aging-initial-pe", "450",
                        "--aging-read-disturb-limit", "77",
                        "--aging-read-disturb-max", "0.25",
                        "--aging-retention-limit-ms", "2500",
                        "--aging-retention-max", "0.125",
                        "--aging-eol-floor", "9",
                        "--aging-eol-margin", "3",
                        "--aging-eol-spare-floor", "6"};
  const ArgParser args(static_cast<int>(std::size(argv)), argv);
  FaultPlan plan;
  plan.apply_cli(args);

  EXPECT_EQ(plan.seed, 21u);
  EXPECT_DOUBLE_EQ(plan.program_fail_prob, 0.25);
  EXPECT_DOUBLE_EQ(plan.read_fail_prob, 0.125);
  EXPECT_DOUBLE_EQ(plan.erase_fail_prob, 0.0625);
  EXPECT_EQ(plan.max_program_retries, 5u);
  EXPECT_EQ(plan.spare_blocks_per_plane, 11u);
  EXPECT_EQ(plan.power_loss_every_requests, 1234u);
  EXPECT_EQ(plan.aging.rated_pe_cycles, 500u);
  EXPECT_DOUBLE_EQ(plan.aging.wear_program_fail_max, 0.03125);
  EXPECT_DOUBLE_EQ(plan.aging.wear_erase_fail_max, 0.015625);
  EXPECT_EQ(plan.aging.initial_pe_cycles, 450u);
  EXPECT_EQ(plan.aging.read_disturb_limit, 77u);
  EXPECT_DOUBLE_EQ(plan.aging.read_disturb_fail_max, 0.25);
  EXPECT_EQ(plan.aging.retention_age_limit, 2500 * kMillisecond);
  EXPECT_DOUBLE_EQ(plan.aging.retention_fail_max, 0.125);
  EXPECT_EQ(plan.aging.eol_free_block_floor, 9u);
  EXPECT_EQ(plan.aging.eol_exit_margin, 3u);
  EXPECT_EQ(plan.aging.eol_spare_floor, 6u);
  EXPECT_TRUE(plan.enabled());
  EXPECT_TRUE(plan.aging.enabled());
  EXPECT_NO_THROW(plan.validate());

  // A parser carrying none of the flags leaves the plan untouched.
  const char* none[] = {"prog"};
  FaultPlan untouched = plan;
  untouched.apply_cli(ArgParser(1, none));
  EXPECT_EQ(untouched.aging.rated_pe_cycles, plan.aging.rated_pe_cycles);
  EXPECT_EQ(untouched.aging.retention_age_limit,
            plan.aging.retention_age_limit);
}

}  // namespace
}  // namespace reqblock
