// Bit-flip fuzz over the v6 snapshot sections (per-page error counters,
// stripe-parity bits, patrol-scrub cursor). The contracts, in order of
// defense:
//   1. Container level: any single-bit flip anywhere in an encoded
//      snapshot is refused by the magic/version/checksum gates — a
//      corrupted file is never accepted, and never crashes the decoder.
//   2. Payload level (simulating corruption that slipped past or was
//      re-checksummed): deserialize either throws SnapshotError or
//      produces an object it can audit — it must never crash, read out
//      of bounds, or hang. The sanitizer legs run this sweep under
//      ASan/UBSan.
//   3. Structural validation: specific corruptions of the new v6 fields
//      (zeroed error counts, out-of-range parity stripes, a scrub cursor
//      outside the device geometry) are refused with their own messages,
//      not absorbed as plausible state.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault.h"
#include "snapshot/snapshot.h"
#include "ssd/flash_array.h"
#include "ssd/ftl.h"
#include "test_util.h"
#include "util/audit.h"

namespace reqblock {
namespace {

/// Small single-plane device so the exhaustive payload sweep stays cheap.
SsdConfig fuzz_ssd(std::uint64_t blocks = 8) {
  SsdConfig cfg;
  cfg.channels = 1;
  cfg.chips_per_channel = 1;
  cfg.pages_per_block = 8;
  cfg.capacity_bytes = blocks * 8 * 4096;
  cfg.validate();
  return cfg;
}

/// An array carrying every kind of v6 state: programmed pages, a closed
/// parity stripe, and sparse per-page corrected-error counters.
FlashArray seeded_array(const SsdConfig& cfg) {
  FlashArray arr(cfg);
  arr.set_stripe_pages(4);
  std::vector<Ppn> ppns;
  for (Lpn lpn = 0; lpn < 6; ++lpn) {
    const Ppn p = arr.program(0, lpn);
    arr.note_program(p, static_cast<SimTime>(lpn + 1));
    ppns.push_back(p);
  }
  const PhysAddr first = arr.address_map().to_addr(ppns[0]);
  arr.set_stripe_parity(first.plane, first.block, arr.stripe_of(ppns[0]));
  arr.note_page_error(ppns[1]);
  arr.note_page_error(ppns[2]);
  arr.note_page_error(ppns[2]);
  return arr;
}

std::string array_bytes(const FlashArray& arr) {
  SnapshotWriter w;
  arr.serialize(w);
  return w.take();
}

TEST(IntegritySnapshotFuzzTest, ContainerRefusesEverySingleBitFlip) {
  SnapshotHeader h;
  h.kind = "run-checkpoint";
  h.config_hash = 0xabc;
  h.trace_hash = 0xdef;
  h.sequence = 7;
  const std::string file = encode_snapshot(h, array_bytes(seeded_array(
                                                  fuzz_ssd())));
  std::uint64_t refused = 0;
  for (std::size_t byte = 0; byte < file.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = file;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      SnapshotHeader decoded;
      try {
        decode_snapshot(corrupt, decoded);
        FAIL() << "accepted a snapshot with bit " << bit << " of byte "
               << byte << " flipped";
      } catch (const SnapshotError&) {
        ++refused;
      }
    }
  }
  EXPECT_EQ(refused, file.size() * 8);
}

TEST(IntegritySnapshotFuzzTest, PayloadFlipsNeverCrashTheArrayRestore) {
  const SsdConfig cfg = fuzz_ssd();
  const std::string bytes = array_bytes(seeded_array(cfg));
  std::uint64_t refused = 0;
  std::uint64_t accepted = 0;
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      FlashArray fresh(cfg);
      fresh.set_stripe_pages(4);
      SnapshotReader r(corrupt);
      try {
        fresh.deserialize(r);
      } catch (const SnapshotError&) {
        ++refused;
        continue;
      }
      // A flip that still parses (a counter value, a timestamp bit) must
      // yield an object whose deep audit can run to completion; whether
      // the audit then flags the damage is the audit's business.
      ++accepted;
      AuditReport report("fuzzed flash array");
      fresh.audit(report);
    }
  }
  // The format is dense enough that most flips are structural: tags,
  // counts, and range checks must be doing real work here.
  EXPECT_GT(refused, 0u);
  EXPECT_EQ(refused + accepted, bytes.size() * 8);
}

// Locates the byte where two serializations diverge; the pair below are
// constructed to differ in exactly the targeted v6 field.
std::size_t first_diff(const std::string& a, const std::string& b) {
  std::size_t i = 0;
  while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
  return i;
}

TEST(IntegritySnapshotFuzzTest, ZeroedErrorCountEntryIsRefused) {
  const SsdConfig cfg = fuzz_ssd();
  // Twin arrays whose only difference is one page's corrected-error
  // count (1 vs 2): the first diverging byte is that entry's u8 payload.
  FlashArray one(cfg);
  FlashArray two(cfg);
  Ppn target_one = 0;
  Ppn target_two = 0;
  for (FlashArray* arr : {&one, &two}) {
    arr->set_stripe_pages(4);
    for (Lpn lpn = 0; lpn < 4; ++lpn) {
      const Ppn p = arr->program(0, lpn);
      arr->note_program(p, static_cast<SimTime>(lpn + 1));
      if (lpn == 1) (arr == &one ? target_one : target_two) = p;
    }
  }
  one.note_page_error(target_one);
  two.note_page_error(target_two);
  two.note_page_error(target_two);
  std::string bytes = array_bytes(one);
  const std::size_t at = first_diff(bytes, array_bytes(two));
  ASSERT_LT(at, bytes.size());
  ASSERT_EQ(bytes[at], 1);  // the error count itself
  bytes[at] = 0;

  FlashArray fresh(cfg);
  fresh.set_stripe_pages(4);
  SnapshotReader r(bytes);
  try {
    fresh.deserialize(r);
    FAIL() << "accepted a zero error-count entry";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("zero error entry"),
              std::string::npos);
  }
}

TEST(IntegritySnapshotFuzzTest, OutOfRangeParityStripeIsRefused) {
  const SsdConfig cfg = fuzz_ssd();
  // Twin arrays differing only in which stripe carries parity (0 vs 1):
  // the diverging u16 is the parity entry's stripe index.
  FlashArray zero(cfg);
  FlashArray one(cfg);
  Ppn first_zero = 0;
  Ppn first_one = 0;
  for (FlashArray* arr : {&zero, &one}) {
    arr->set_stripe_pages(4);
    for (Lpn lpn = 0; lpn < 8; ++lpn) {
      const Ppn p = arr->program(0, lpn);
      arr->note_program(p, static_cast<SimTime>(lpn + 1));
      if (lpn == 0) (arr == &zero ? first_zero : first_one) = p;
    }
  }
  const PhysAddr addr_zero = zero.address_map().to_addr(first_zero);
  const PhysAddr addr_one = one.address_map().to_addr(first_one);
  zero.set_stripe_parity(addr_zero.plane, addr_zero.block, 0);
  one.set_stripe_parity(addr_one.plane, addr_one.block, 1);
  std::string bytes = array_bytes(zero);
  const std::size_t at = first_diff(bytes, array_bytes(one));
  ASSERT_LT(at + 1, bytes.size());
  // Little-endian u16 stripe index: point it far past stripes_per_block.
  bytes[at] = static_cast<char>(0xff);
  bytes[at + 1] = static_cast<char>(0xff);

  FlashArray fresh(cfg);
  fresh.set_stripe_pages(4);
  SnapshotReader r(bytes);
  try {
    fresh.deserialize(r);
    FAIL() << "accepted an out-of-range parity stripe";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("parity entry contradicts"),
              std::string::npos);
  }
}

TEST(IntegritySnapshotFuzzTest, ParityWithoutStripesWiredIsRefused) {
  const SsdConfig cfg = fuzz_ssd();
  FlashArray source(cfg);
  source.set_stripe_pages(4);
  Ppn first = 0;
  for (Lpn lpn = 0; lpn < 4; ++lpn) {
    const Ppn p = source.program(0, lpn);
    source.note_program(p, static_cast<SimTime>(lpn + 1));
    if (lpn == 0) first = p;
  }
  const PhysAddr addr = source.address_map().to_addr(first);
  source.set_stripe_parity(addr.plane, addr.block, source.stripe_of(first));
  const std::string bytes = array_bytes(source);
  // A restore target with no parity wired cannot hold the parity bit.
  FlashArray fresh(cfg);
  SnapshotReader r(bytes);
  try {
    fresh.deserialize(r);
    FAIL() << "accepted stripe parity into a parity-free run";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("no parity stripes wired"),
              std::string::npos);
  }
}

TEST(IntegritySnapshotFuzzTest, ScrubCursorOutsideGeometryIsRefused) {
  // Advance the patrol cursor to block 9 on a 16-block device, then
  // restore into an 8-block device of identical plane/channel shape: the
  // cursor lands outside the geometry and must be refused before any
  // flash state is touched.
  const SsdConfig big = fuzz_ssd(16);
  Ftl ftl(big);
  FaultPlan plan;
  plan.spare_blocks_per_plane = 0;  // tiny devices: no room for spares
  plan.integrity.rber_base = 0.5;
  plan.integrity.scrub_error_limit = 200;  // armed: passes run, never fire
  plan.integrity.scrub_time_budget = 1;    // one block per pass
  FaultInjector injector(plan);
  ftl.set_fault_injector(&injector);
  SimTime t = 0;
  for (Lpn lpn = 0; lpn < 72; ++lpn) t = ftl.program_page(lpn, 1, t + 1);
  for (int pass = 0; pass < 9; ++pass) ftl.patrol_scrub(t + 1 + pass);

  SnapshotWriter w;
  ftl.serialize(w);
  const std::string bytes = w.take();

  Ftl small(fuzz_ssd(8));
  FaultInjector small_injector(plan);
  small.set_fault_injector(&small_injector);
  SnapshotReader r(bytes);
  try {
    small.deserialize(r);
    FAIL() << "accepted a scrub cursor beyond the last block";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("patrol-scrub cursor"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace reqblock
