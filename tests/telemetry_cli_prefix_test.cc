// Regression coverage for the telemetry CLI namespace and the tenant CLI.
//
// trace_replay's own --trace (an MSR file path) and --profile (a workload
// name) used to collide with the telemetry flags of the same names; the
// telemetry bundle now reads its flags behind a caller-chosen prefix.
// These tests pin the contract: prefixed flags configure telemetry,
// unprefixed --trace/--profile are ignored by it, and --attribution works
// both ways.
#include <gtest/gtest.h>

#include <initializer_list>
#include <stdexcept>
#include <vector>

#include "host/tenant.h"
#include "telemetry/telemetry.h"
#include "util/args.h"

namespace reqblock {
namespace {

ArgParser parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return ArgParser(static_cast<int>(v.size()), v.data());
}

TEST(TelemetryCliPrefixTest, PrefixedFlagsDoNotCollideWithTraceReplay) {
  // The exact collision from the bug: --trace names an MSR file and
  // --profile a workload, while the telemetry flags ride the prefix.
  const auto args = parse({"prog", "--trace", "/data/msr.csv", "--profile",
                           "usr_0", "--telemetry-trace", "all",
                           "--telemetry-trace-buffer", "4096",
                           "--telemetry-trace-sample", "2",
                           "--telemetry-snapshot-every", "500",
                           "--telemetry-profile"});
  TelemetryOptions t;
  t.apply_cli(args, "telemetry-");
  EXPECT_EQ(t.trace.level, TraceLevel::kAll);
  EXPECT_EQ(t.trace.capacity, 4096u);
  EXPECT_EQ(t.trace.sample_period, 2u);
  EXPECT_EQ(t.snapshot_every_requests, 500u);
  EXPECT_TRUE(t.profile);
  // trace_replay's own flags are still intact for its own parsing.
  EXPECT_EQ(args.get_or("trace", ""), "/data/msr.csv");
  EXPECT_EQ(args.get_or("profile", ""), "usr_0");
}

TEST(TelemetryCliPrefixTest, UnprefixedFlagsAreIgnoredUnderAPrefix) {
  // "--trace all --profile" must NOT flip telemetry switches when the
  // caller asked for the "telemetry-" namespace: those spellings belong
  // to the binary, not to the bundle.
  const auto args = parse({"prog", "--trace", "all", "--profile"});
  TelemetryOptions t;
  t.apply_cli(args, "telemetry-");
  EXPECT_EQ(t.trace.level, TraceLevel::kOff);
  EXPECT_FALSE(t.profile);
}

TEST(TelemetryCliPrefixTest, AttributionWorksPrefixedAndBare) {
  // No binary overloads --attribution, so both spellings stay valid.
  TelemetryOptions bare;
  bare.apply_cli(parse({"prog", "--attribution"}), "telemetry-");
  EXPECT_TRUE(bare.attribution);
  TelemetryOptions prefixed;
  prefixed.apply_cli(parse({"prog", "--telemetry-attribution"}),
                     "telemetry-");
  EXPECT_TRUE(prefixed.attribution);
}

TEST(TenantCliTest, ParsesTheFullFlagSet) {
  const auto args = parse({"prog", "--tenants", "3", "--arbiter", "drr",
                           "--drr-quantum", "8", "--tenant-weights", "4,2,1",
                           "--tenant-rates", "1,1,4", "--tenant-burst-len",
                           "0,0,500", "--tenant-burst-period", "0,0,2500",
                           "--tenant-burst-factor", "8,8,6"});
  TenantOptions tn;
  tn.apply_cli(args);
  EXPECT_EQ(tn.count, 3u);
  EXPECT_EQ(tn.arbiter, ArbiterKind::kDeficit);
  EXPECT_EQ(tn.drr_quantum_pages, 8u);
  EXPECT_EQ(tn.weights(), (std::vector<std::uint32_t>{4, 2, 1}));
  EXPECT_DOUBLE_EQ(tn.spec(2).rate, 4.0);
  EXPECT_EQ(tn.spec(2).burst_len, 500u);
  EXPECT_EQ(tn.spec(2).burst_period, 2500u);
  EXPECT_DOUBLE_EQ(tn.spec(2).burst_factor, 6.0);
}

TEST(TenantCliTest, ShortListsPadWithDefaults) {
  const auto args =
      parse({"prog", "--tenants", "3", "--tenant-weights", "5"});
  TenantOptions tn;
  tn.apply_cli(args);
  EXPECT_EQ(tn.weights(), (std::vector<std::uint32_t>{5, 1, 1}));
  EXPECT_DOUBLE_EQ(tn.spec(1).rate, 1.0);
}

TEST(TenantCliTest, RejectsOverlongListsAndBadValues) {
  TenantOptions tn;
  EXPECT_THROW(tn.apply_cli(parse({"prog", "--tenants", "2",
                                   "--tenant-weights", "1,2,3"})),
               std::invalid_argument);
  EXPECT_THROW(tn.apply_cli(parse({"prog", "--tenants", "0"})),
               std::invalid_argument);
  EXPECT_THROW(tn.apply_cli(parse({"prog", "--tenants", "2", "--arbiter",
                                   "lottery"})),
               std::invalid_argument);
  EXPECT_THROW(tn.apply_cli(parse({"prog", "--tenants", "2",
                                   "--tenant-rates", "0"})),
               std::invalid_argument);
  // Burst length without a period is half a specification.
  EXPECT_THROW(tn.apply_cli(parse({"prog", "--tenants", "2",
                                   "--tenant-burst-len", "0,100"})),
               std::invalid_argument);
}

}  // namespace
}  // namespace reqblock
