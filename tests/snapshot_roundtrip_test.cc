// Snapshot round-trips, layer by layer: writer/reader primitives, the
// on-disk container, every cache policy, and a faulted FTL must all
// survive serialize → deserialize → serialize with byte-identical output
// and pass their deep structural audits afterwards.
#include "snapshot/snapshot.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/cache_manager.h"
#include "cache/policy_factory.h"
#include "fault/fault.h"
#include "ssd/ftl.h"
#include "test_util.h"
#include "util/audit.h"
#include "util/rng.h"

namespace reqblock {
namespace {

struct FullAuditScope {
  AuditLevel previous = set_audit_level(AuditLevel::kFull);
  ~FullAuditScope() { set_audit_level(previous); }
};

// --- Writer / reader primitives -------------------------------------------

TEST(SnapshotPrimitivesTest, AllTypesRoundTrip) {
  SnapshotWriter w;
  w.tag("prims");
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.25);
  w.b(true);
  w.str("hello");
  w.vec_u64({1, 2, 3});
  w.vec_u32({7, 8});

  SnapshotReader r(w.buffer());
  r.tag("prims");
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_TRUE(r.b());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.vec_u64(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(r.vec_u32(), (std::vector<std::uint32_t>{7, 8}));
  EXPECT_TRUE(r.at_end());
  EXPECT_NO_THROW(r.expect_end());
}

TEST(SnapshotPrimitivesTest, TagMismatchThrows) {
  SnapshotWriter w;
  w.tag("ftl");
  SnapshotReader r(w.buffer());
  EXPECT_THROW(r.tag("cache"), SnapshotError);
}

TEST(SnapshotPrimitivesTest, TruncatedReadThrows) {
  SnapshotWriter w;
  w.u64(7);
  const std::string bytes = w.buffer().substr(0, 3);
  SnapshotReader r(bytes);
  EXPECT_THROW(r.u64(), SnapshotError);
}

TEST(SnapshotPrimitivesTest, LeftoverBytesDetected) {
  SnapshotWriter w;
  w.u64(7);
  w.u64(8);
  SnapshotReader r(w.buffer());
  r.u64();
  EXPECT_THROW(r.expect_end(), SnapshotError);
}

TEST(SnapshotPrimitivesTest, CountGuardRejectsOversizedCount) {
  // A corrupt element count must fail as SnapshotError before it can
  // drive a multi-gigabyte allocation.
  SnapshotWriter w;
  w.u64(1ULL << 40);
  SnapshotReader r(w.buffer());
  EXPECT_THROW(r.count(8), SnapshotError);

  SnapshotWriter ok;
  ok.u64(2);
  ok.u64(1);
  ok.u64(2);
  SnapshotReader r2(ok.buffer());
  EXPECT_EQ(r2.count(8), 2u);
}

TEST(SnapshotPrimitivesTest, RngRoundTripContinuesIdentically) {
  Rng a(12345);
  for (int i = 0; i < 100; ++i) a.next_u64();

  SnapshotWriter w;
  serialize(w, a);
  Rng b(1);  // different seed: state must come from the snapshot
  SnapshotReader r(w.buffer());
  deserialize(r, b);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

// --- On-disk container -----------------------------------------------------

SnapshotHeader header_for_test() {
  SnapshotHeader h;
  h.kind = "run-checkpoint";
  h.config_hash = 0x1111;
  h.trace_hash = 0x2222;
  h.sequence = 42;
  return h;
}

TEST(SnapshotContainerTest, EncodeDecodeRoundTrip) {
  const std::string payload = "payload bytes";
  const std::string file = encode_snapshot(header_for_test(), payload);

  SnapshotHeader decoded;
  EXPECT_EQ(decode_snapshot(file, decoded), payload);
  EXPECT_EQ(decoded.kind, "run-checkpoint");
  EXPECT_EQ(decoded.config_hash, 0x1111u);
  EXPECT_EQ(decoded.trace_hash, 0x2222u);
  EXPECT_EQ(decoded.sequence, 42u);
}

TEST(SnapshotContainerTest, RejectsBadMagic) {
  std::string file = encode_snapshot(header_for_test(), "x");
  file[0] = 'X';
  SnapshotHeader h;
  EXPECT_THROW(decode_snapshot(file, h), SnapshotError);
}

TEST(SnapshotContainerTest, RejectsTruncation) {
  const std::string file = encode_snapshot(header_for_test(), "payload");
  SnapshotHeader h;
  for (const std::size_t keep : {std::size_t{4}, file.size() - 3}) {
    EXPECT_THROW(decode_snapshot(file.substr(0, keep), h), SnapshotError);
  }
}

TEST(SnapshotContainerTest, RejectsFlippedPayloadBit) {
  std::string file = encode_snapshot(header_for_test(), "payload");
  file.back() = static_cast<char>(file.back() ^ 0x01);
  SnapshotHeader h;
  EXPECT_THROW(decode_snapshot(file, h), SnapshotError);
}

TEST(SnapshotContainerTest, RejectsFutureFormatVersion) {
  SnapshotHeader h = header_for_test();
  h.format_version = kSnapshotFormatVersion + 1;
  const std::string file = encode_snapshot(h, "x");
  SnapshotHeader decoded;
  EXPECT_THROW(decode_snapshot(file, decoded), SnapshotError);
}

TEST(SnapshotContainerTest, IdentityRefusal) {
  const SnapshotHeader h = header_for_test();
  EXPECT_NO_THROW(
      require_snapshot_identity(h, "run-checkpoint", 0x1111, 0x2222, "t"));
  EXPECT_THROW(
      require_snapshot_identity(h, "case-result", 0x1111, 0x2222, "t"),
      SnapshotError);
  EXPECT_THROW(
      require_snapshot_identity(h, "run-checkpoint", 0x9999, 0x2222, "t"),
      SnapshotError);
  EXPECT_THROW(
      require_snapshot_identity(h, "run-checkpoint", 0x1111, 0x9999, "t"),
      SnapshotError);
}

// --- Cache layer: every policy through the manager -------------------------

// Mixed request shapes (sizes 1..17 pages, hot reuse, reads) so every
// policy exercises its interesting paths: Req-block splits/promotions,
// BPLRU block fills, VBBMS/FAB block grouping, CFLRU clean-first windows.
std::vector<IoRequest> workload(std::uint64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<IoRequest> reqs;
  reqs.reserve(n);
  SimTime at = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    at += 20 * kMicrosecond;
    const bool read = rng.next_double() < 0.25;
    const Lpn lpn = rng.next_u64() % (rng.next_double() < 0.5 ? 512 : 8192);
    const auto pages = static_cast<std::uint32_t>(1 + rng.next_u64() % 17);
    reqs.push_back(read ? testing::read_req(i, lpn, pages, at)
                        : testing::write_req(i, lpn, pages, at));
  }
  return reqs;
}

TEST(SnapshotCacheTest, EveryPolicyRoundTripsAndContinuesIdentically) {
  FullAuditScope audit_scope;
  for (const std::string& name : known_policy_names()) {
    SCOPED_TRACE(name);
    const auto cfg = testing::policy_config(name, 256);

    testing::Harness original(cfg);
    const auto reqs = workload(600, 99);
    for (const auto& r : reqs) original.serve(r);

    SnapshotWriter w1;
    original.ftl.serialize(w1);
    original.cache->serialize(w1);

    testing::Harness restored(cfg);
    SnapshotReader r1(w1.buffer());
    restored.ftl.deserialize(r1);
    restored.cache->deserialize(r1);
    EXPECT_TRUE(r1.at_end());

    // Equal logical state must re-serialize to equal bytes.
    SnapshotWriter w2;
    restored.ftl.serialize(w2);
    restored.cache->serialize(w2);
    EXPECT_EQ(w1.buffer(), w2.buffer());

    // The restored stack passes the same deep audit as the original.
    AuditReport report("restored " + name);
    restored.cache->audit(report, AuditLevel::kFull);
    EXPECT_TRUE(report.ok()) << report.to_string();

    // And continues bit-identically under further traffic.
    const auto more = workload(300, 7);
    for (const auto& r : more) {
      IoRequest shifted = r;
      shifted.id += reqs.size();
      shifted.arrival += reqs.back().arrival;
      EXPECT_EQ(original.serve(shifted), restored.serve(shifted));
    }
    SnapshotWriter wa;
    SnapshotWriter wb;
    original.cache->serialize(wa);
    restored.cache->serialize(wb);
    EXPECT_EQ(wa.buffer(), wb.buffer());
  }
}

TEST(SnapshotCacheTest, DeserializeIntoUsedManagerIsRejected) {
  const auto cfg = testing::policy_config("lru", 64);
  testing::Harness a(cfg);
  a.serve(testing::write_req(0, 0, 4));
  SnapshotWriter w;
  a.cache->serialize(w);

  testing::Harness b(cfg);
  b.serve(testing::write_req(0, 9, 1));  // no longer fresh
  SnapshotReader r(w.buffer());
  EXPECT_THROW(b.cache->deserialize(r), std::exception);
}

// --- FTL + flash array under fault injection --------------------------------

TEST(SnapshotFtlTest, FaultedDeviceRoundTripsWithRetiredBlocks) {
  FullAuditScope audit_scope;
  FaultPlan plan;
  plan.seed = 11;
  plan.program_fail_prob = 0.2;
  plan.erase_fail_prob = 0.3;
  plan.max_program_retries = 1;
  plan.spare_blocks_per_plane = 1;  // exhaust spares fast → degraded planes

  Ftl original(testing::micro_ssd());
  FaultInjector inj(plan);
  original.set_fault_injector(&inj);

  // Hammer a small LPN space so GC erases (and fails, and retires) a lot.
  Rng rng(3);
  SimTime at = 0;
  for (int i = 0; i < 4000; ++i) {
    at += 30 * kMicrosecond;
    original.program_page(rng.next_u64() % 600, 1 + i, at);
  }
  ASSERT_GT(original.array().retired_blocks(), 0u);
  ASSERT_GT(inj.metrics().degraded_planes, 0u);

  SnapshotWriter w1;
  original.serialize(w1);
  inj.serialize(w1);

  Ftl restored(testing::micro_ssd());
  FaultInjector inj2(plan);
  restored.set_fault_injector(&inj2);
  SnapshotReader r(w1.buffer());
  restored.deserialize(r);
  inj2.deserialize(r);
  EXPECT_TRUE(r.at_end());

  SnapshotWriter w2;
  restored.serialize(w2);
  inj2.serialize(w2);
  EXPECT_EQ(w1.buffer(), w2.buffer());

  AuditReport report("restored faulted ftl");
  restored.audit(report);
  EXPECT_TRUE(report.ok()) << report.to_string();

  // Same RNG stream, same timelines: the next operations match exactly.
  for (int i = 0; i < 500; ++i) {
    at += 30 * kMicrosecond;
    const Lpn lpn = rng.next_u64() % 600;
    EXPECT_EQ(original.program_page(lpn, 5000 + i, at),
              restored.program_page(lpn, 5000 + i, at));
  }
  EXPECT_EQ(original.array().retired_blocks(),
            restored.array().retired_blocks());
  EXPECT_EQ(inj.metrics().program_faults, inj2.metrics().program_faults);
}

}  // namespace
}  // namespace reqblock
