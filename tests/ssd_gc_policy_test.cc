// GC victim-selection policies: greedy vs wear-aware tie-breaking.
#include <gtest/gtest.h>

#include "ssd/flash_array.h"
#include "ssd/ftl.h"
#include "test_util.h"
#include "util/rng.h"

namespace reqblock {
namespace {

using testing::micro_ssd;

/// Fills two blocks in plane 0 and invalidates `inv_a`/`inv_b` pages of
/// each; returns their block indices (a filled first).
std::pair<std::uint32_t, std::uint32_t> two_victims(FlashArray& arr,
                                                    int inv_a, int inv_b) {
  const auto& cfg = arr.config();
  std::vector<Ppn> a, b;
  for (std::uint32_t i = 0; i < cfg.pages_per_block; ++i) {
    a.push_back(arr.program(0, i));
  }
  for (std::uint32_t i = 0; i < cfg.pages_per_block; ++i) {
    b.push_back(arr.program(0, 100 + i));
  }
  arr.program(0, 999);  // fresh active block
  for (int i = 0; i < inv_a; ++i) {
    arr.invalidate(a[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < inv_b; ++i) {
    arr.invalidate(b[static_cast<std::size_t>(i)]);
  }
  const AddressMap& amap = arr.address_map();
  return {amap.to_addr(a[0]).block, amap.to_addr(b[0]).block};
}

TEST(GcPolicyTest, GreedyPicksMostInvalidRegardlessOfWear) {
  SsdConfig cfg = micro_ssd();
  cfg.gc_victim_policy = SsdConfig::GcVictimPolicy::kGreedy;
  FlashArray arr(cfg);
  const auto [block_a, block_b] = two_victims(arr, 3, 5);
  EXPECT_EQ(arr.pick_gc_victim(0), block_b);
}

TEST(GcPolicyTest, WearAwareBreaksNearTiesTowardLowErase) {
  SsdConfig cfg = micro_ssd();
  cfg.gc_victim_policy = SsdConfig::GcVictimPolicy::kWearAware;
  cfg.gc_wear_tie_margin = 2;
  FlashArray arr(cfg);
  // Pre-wear: cycle a few blocks twice. Every programmed page is
  // invalidated immediately, so all non-active blocks become fully
  // invalid and erasable.
  for (int round = 0; round < 2; ++round) {
    std::vector<Ppn> pages;
    for (std::uint32_t i = 0; i < cfg.pages_per_block * 4; ++i) {
      pages.push_back(arr.program(0, i));
    }
    for (const Ppn p : pages) arr.invalidate(p);
    while (true) {
      const auto victim = arr.pick_gc_victim(0);
      if (victim == FlashArray::kNoBlock) break;
      if (!arr.valid_pages(0, victim).empty()) break;
      arr.erase_block(0, victim);
    }
  }

  // Now create two candidates: worn block with 6 invalids vs fresh block
  // with 5 invalids (within margin 2). Wear-aware picks the fresh one.
  const auto [block_a, block_b] = two_victims(arr, 6, 5);
  const std::uint32_t wear_a = arr.erase_count(0, block_a);
  const std::uint32_t wear_b = arr.erase_count(0, block_b);
  const std::uint32_t victim = arr.pick_gc_victim(0);
  if (wear_a > wear_b) {
    EXPECT_EQ(victim, block_b);
  } else if (wear_b > wear_a) {
    EXPECT_EQ(victim, block_a);
  } else {
    // Equal wear: falls back to most-invalid.
    EXPECT_EQ(victim, block_a);
  }
}

TEST(GcPolicyTest, WearAwareIgnoresCandidatesOutsideMargin) {
  SsdConfig cfg = micro_ssd();
  cfg.gc_victim_policy = SsdConfig::GcVictimPolicy::kWearAware;
  cfg.gc_wear_tie_margin = 1;
  FlashArray arr(cfg);
  // 7 vs 3 invalids: outside margin 1, so greedy choice stands even if
  // the greedy victim were more worn.
  const auto [block_a, block_b] = two_victims(arr, 7, 3);
  EXPECT_EQ(arr.pick_gc_victim(0), block_a);
}

TEST(GcPolicyTest, WearAwareHeapStaysConsistent) {
  SsdConfig cfg = micro_ssd();
  cfg.gc_victim_policy = SsdConfig::GcVictimPolicy::kWearAware;
  FlashArray arr(cfg);
  two_victims(arr, 5, 5);
  // Repeated picks without state change return the same victim (the
  // scan must restore the heap).
  const auto first = arr.pick_gc_victim(0);
  const auto second = arr.pick_gc_victim(0);
  EXPECT_EQ(first, second);
}

TEST(GcPolicyTest, WearAwareFullPressureRunReducesWearSpread) {
  // Under sustained pressure, wear-aware victim selection should not
  // increase the erase-count spread compared to greedy.
  auto run = [](SsdConfig::GcVictimPolicy policy) {
    SsdConfig cfg = micro_ssd();
    cfg.gc_victim_policy = policy;
    Ftl ftl(cfg);
    Rng rng(42);
    const std::uint64_t footprint = cfg.total_pages() * 6 / 10;
    for (std::uint64_t i = 0; i < cfg.total_pages() * 6; ++i) {
      ftl.program_page(rng.next_below(footprint), i, 0);
    }
    return ftl.array().wear_stats();
  };
  const auto greedy = run(SsdConfig::GcVictimPolicy::kGreedy);
  const auto wear_aware = run(SsdConfig::GcVictimPolicy::kWearAware);
  EXPECT_GT(greedy.blocks_touched, 0u);
  EXPECT_LE(wear_aware.max_erases - wear_aware.min_erases,
            greedy.max_erases - greedy.min_erases + 2);
}

}  // namespace
}  // namespace reqblock
