#include "cache/vbbms.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace reqblock {
namespace {

using testing::write_req;

VbbmsOptions opts() { return VbbmsOptions{}; }

TEST(VbbmsPolicyTest, ClassifiesByRequestSize) {
  VbbmsPolicy p(100, opts());
  p.on_insert(0, write_req(0, 0, 2), true);     // small -> random region
  p.on_insert(100, write_req(1, 100, 8), true); // large -> sequential region
  EXPECT_EQ(p.random_pages(), 1u);
  EXPECT_EQ(p.seq_pages(), 1u);
}

TEST(VbbmsPolicyTest, ThresholdBoundary) {
  VbbmsPolicy p(100, opts());  // threshold 5
  p.on_insert(0, write_req(0, 0, 4), true);
  p.on_insert(10, write_req(1, 10, 5), true);
  EXPECT_EQ(p.random_pages(), 1u);
  EXPECT_EQ(p.seq_pages(), 1u);
}

TEST(VbbmsPolicyTest, RandomRegionUsesVirtualBlockLru) {
  VbbmsPolicy p(100, opts());
  // Virtual blocks of 3 pages: lpns 0..2 -> vb0, 3..5 -> vb1.
  p.on_insert(0, write_req(0, 0, 1), true);
  p.on_insert(1, write_req(1, 1, 1), true);
  p.on_insert(3, write_req(2, 3, 1), true);
  p.on_hit(0, write_req(3, 0, 1), true);  // promote vb0
  // Make the random region dominate so eviction picks it.
  const auto v = p.select_victim();
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v.pages.size(), 1u);
  EXPECT_EQ(v.pages[0], 3u);  // vb1 is LRU
}

TEST(VbbmsPolicyTest, SequentialRegionIsFifo) {
  VbbmsOptions o = opts();
  o.random_fraction = 0.5;
  VbbmsPolicy p(4, o);  // tiny: quotas 2 and 2
  p.on_insert(100, write_req(0, 100, 8), true);  // seq vb 25
  p.on_insert(104, write_req(1, 104, 8), true);  // seq vb 26
  p.on_hit(100, write_req(2, 100, 8), true);     // FIFO ignores the hit
  const auto v = p.select_victim();
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v.pages[0], 100u);  // oldest still evicts first
}

TEST(VbbmsPolicyTest, WholeVirtualBlockEvictedTogether) {
  VbbmsPolicy p(100, opts());
  for (Lpn l = 0; l < 3; ++l) p.on_insert(l, write_req(l, l, 1), true);
  const auto v = p.select_victim();
  EXPECT_EQ(v.pages.size(), 3u);  // vb0 holds lpns 0,1,2
  EXPECT_FALSE(v.colocate);
}

TEST(VbbmsPolicyTest, EvictsOverloadedRegion) {
  VbbmsOptions o = opts();
  o.random_fraction = 0.6;
  VbbmsPolicy p(10, o);  // random quota 6, seq quota 4
  // Load 5 sequential pages (load 1.25) vs 3 random pages (load 0.5).
  p.on_insert(100, write_req(0, 100, 8), true);
  p.on_insert(101, write_req(0, 101, 8), true);
  p.on_insert(102, write_req(0, 102, 8), true);
  p.on_insert(103, write_req(0, 103, 8), true);
  p.on_insert(104, write_req(0, 104, 8), true);
  p.on_insert(0, write_req(1, 0, 1), true);
  p.on_insert(1, write_req(1, 1, 1), true);
  p.on_insert(2, write_req(1, 2, 1), true);
  const auto v = p.select_victim();
  ASSERT_FALSE(v.empty());
  EXPECT_GE(v.pages[0], 100u);  // sequential region pays
}

TEST(VbbmsPolicyTest, FallsBackToNonEmptyRegion) {
  VbbmsPolicy p(10, opts());
  p.on_insert(0, write_req(0, 0, 1), true);  // only random has pages
  const auto v = p.select_victim();
  EXPECT_EQ(v.pages.size(), 1u);
  EXPECT_EQ(p.pages(), 0u);
}

TEST(VbbmsPolicyTest, ReinsertionAfterEvictionCanSwitchRegion) {
  VbbmsPolicy p(10, opts());
  p.on_insert(0, write_req(0, 0, 1), true);  // random
  auto v = p.select_victim();
  ASSERT_EQ(v.pages[0], 0u);
  p.on_insert(0, write_req(1, 0, 8), true);  // now sequential
  EXPECT_EQ(p.seq_pages(), 1u);
  EXPECT_EQ(p.random_pages(), 0u);
}

TEST(VbbmsPolicyTest, MetadataCountsVirtualBlocks) {
  VbbmsPolicy p(100, opts());
  p.on_insert(0, write_req(0, 0, 1), true);    // random vb
  p.on_insert(1, write_req(1, 1, 1), true);    // same random vb
  p.on_insert(100, write_req(2, 100, 8), true);  // seq vb
  EXPECT_EQ(p.metadata_bytes(), 48u);
}

TEST(VbbmsPolicyTest, InvalidOptionsThrow) {
  VbbmsOptions o = opts();
  o.random_fraction = 0.0;
  EXPECT_THROW(VbbmsPolicy(10, o), std::logic_error);
  o = opts();
  o.random_vb_pages = 0;
  EXPECT_THROW(VbbmsPolicy(10, o), std::logic_error);
}

TEST(VbbmsPolicyTest, EmptyVictim) {
  VbbmsPolicy p(10, opts());
  EXPECT_TRUE(p.select_victim().empty());
}

}  // namespace
}  // namespace reqblock
