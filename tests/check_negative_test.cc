// Negative tests: the failure paths of REQB_CHECK / REQB_CHECK_MSG /
// REQB_DCHECK and the misuse guards of IntrusiveList. Checks raise
// std::logic_error (not abort), so the "death tests" are EXPECT_THROW
// tests — simpler and sanitizer-friendly.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/check.h"
#include "util/intrusive_list.h"

namespace reqblock {
namespace {

// The whole point of the REQBLOCK_DCHECKS build fix: debug checks must be
// live in every test build, including the default RelWithDebInfo
// configuration that defines NDEBUG (which used to compile them out).
static_assert(kDchecksEnabled,
              "test binaries must be compiled with REQB_DCHECK enabled");

TEST(CheckMacros, CheckPassesOnTrue) {
  EXPECT_NO_THROW(REQB_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(REQB_CHECK_MSG(true, "never shown"));
}

TEST(CheckMacros, CheckThrowsLogicErrorWithExpressionAndLocation) {
  try {
    REQB_CHECK(2 + 2 == 5);
    FAIL() << "REQB_CHECK(false) did not throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("check_negative_test.cc"), std::string::npos)
        << what;
  }
}

TEST(CheckMacros, CheckMsgCarriesTheMessage) {
  try {
    REQB_CHECK_MSG(false, "cache and policy capacity must agree");
    FAIL() << "REQB_CHECK_MSG(false) did not throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what())
                  .find("cache and policy capacity must agree"),
              std::string::npos);
  }
}

TEST(CheckMacros, CheckMsgEvaluatesMessageLazily) {
  // The message expression must not run on the success path.
  bool evaluated = false;
  auto message = [&evaluated] {
    evaluated = true;
    return std::string("expensive");
  };
  REQB_CHECK_MSG(true, message());
  EXPECT_FALSE(evaluated);
}

TEST(CheckMacros, DcheckFiresInTestBuilds) {
  // Proves the dead-code trap is gone: this was a silent no-op when
  // REQB_DCHECK keyed off NDEBUG under the default build type.
  EXPECT_THROW(REQB_DCHECK(false), std::logic_error);
  EXPECT_NO_THROW(REQB_DCHECK(true));
}

TEST(CheckMacros, CheckEvaluatesExpressionExactlyOnce) {
  int calls = 0;
  auto count = [&calls] {
    ++calls;
    return true;
  };
  REQB_CHECK(count());
  EXPECT_EQ(calls, 1);
  REQB_DCHECK(count());
  EXPECT_EQ(calls, 2);
}

struct TestNode {
  int id = 0;
  ListHook hook;
};

using TestList = IntrusiveList<TestNode, &TestNode::hook>;

TEST(IntrusiveListMisuse, DoubleEraseThrows) {
  TestList list;
  TestNode n;
  list.push_front(&n);
  list.erase(&n);
  EXPECT_THROW(list.erase(&n), std::logic_error);
}

TEST(IntrusiveListMisuse, DoubleLinkThrows) {
  TestList list;
  TestNode n;
  list.push_front(&n);
  EXPECT_THROW(list.push_front(&n), std::logic_error);
  EXPECT_THROW(list.push_back(&n), std::logic_error);
}

TEST(IntrusiveListMisuse, CrossListRelinkThrows) {
  TestList a;
  TestList b;
  TestNode n;
  a.push_front(&n);
  // Linking a node already owned by another list must be rejected — it
  // would splice the two chains together.
  EXPECT_THROW(b.push_front(&n), std::logic_error);
  EXPECT_THROW(b.push_back(&n), std::logic_error);
}

TEST(IntrusiveListMisuse, ValidateDetectsBrokenLinkSymmetry) {
  TestList list;
  TestNode a, b, c;
  list.push_back(&a);
  list.push_back(&b);
  list.push_back(&c);
  ASSERT_TRUE(list.validate());
  // Corrupt one pointer the way a stray write would.
  ListHook* stolen = b.hook.next;
  b.hook.next = &b.hook;
  EXPECT_FALSE(list.validate());
  b.hook.next = stolen;
  EXPECT_TRUE(list.validate());
}

TEST(IntrusiveListMisuse, ValidateDetectsEraseThroughWrongList) {
  // Erasing through the wrong list object keeps the chain intact but
  // desynchronizes the two size counters — exactly the bug validate()'s
  // node-count check exists to catch.
  TestList a;
  TestList b;
  TestNode n1, n2, n3;
  a.push_back(&n1);
  a.push_back(&n2);
  b.push_back(&n3);
  ASSERT_TRUE(a.validate());
  ASSERT_TRUE(b.validate());
  b.erase(&n2);  // n2 lives on `a`; b's size counter goes stale
  EXPECT_FALSE(a.validate() && b.validate());
}

TEST(IntrusiveListMisuse, ValidateDetectsNulledHook) {
  TestList list;
  TestNode a, b;
  list.push_back(&a);
  list.push_back(&b);
  ListHook* stolen = a.hook.next;
  a.hook.next = nullptr;
  EXPECT_FALSE(list.validate());
  a.hook.next = stolen;
  EXPECT_TRUE(list.validate());
}

}  // namespace
}  // namespace reqblock
