// Warmup phase, channel/chip utilization accounting and CSV export.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sim/report.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "trace/synthetic.h"
#include "util/strings.h"

namespace reqblock {
namespace {

WorkloadProfile warm_profile(std::uint64_t requests = 20000) {
  WorkloadProfile p;
  p.name = "warm";
  p.total_requests = requests;
  p.seed = 77;
  p.write_ratio = 0.75;
  p.hot_extents = 512;
  p.cold_stream_pages = 1 << 15;
  p.mean_interarrival_ns = 500 * kMicrosecond;
  return p;
}

SimOptions warm_options(std::uint64_t warmup = 0) {
  SimOptions o;
  o.ssd = testing::tiny_ssd();
  o.policy.name = "reqblock";
  o.policy.capacity_pages = 512;
  o.cache.capacity_pages = 512;
  o.warmup_requests = warmup;
  return o;
}

TEST(WarmupTest, WarmupRequestsExcludedFromStats) {
  SyntheticTraceSource trace(warm_profile());
  Simulator sim(warm_options(5000));
  const RunResult r = sim.run(trace);
  EXPECT_EQ(r.warmup_requests, 5000u);
  EXPECT_EQ(r.requests, 15000u);
  EXPECT_EQ(r.response.count(), 15000u);
}

TEST(WarmupTest, MeasuredWindowIsSubsetOfFullRun) {
  // The warmup only changes *counting*, not behaviour: the measured
  // window's flash traffic must be bounded by the full run's.
  SyntheticTraceSource t1(warm_profile()), t2(warm_profile());
  Simulator full(warm_options(0)), warm(warm_options(5000));
  const RunResult a = full.run(t1);
  const RunResult b = warm.run(t2);
  EXPECT_LT(b.cache.page_lookups, a.cache.page_lookups);
  EXPECT_LE(b.flash.host_page_writes, a.flash.host_page_writes);
  EXPECT_LE(b.flash.erases, a.flash.erases);
  // Identical device-time evolution: the last request completes at the
  // same simulated instant either way.
  EXPECT_EQ(a.sim_end, b.sim_end);
}

TEST(WarmupTest, WarmupLargerThanTraceMeasuresNothing) {
  SyntheticTraceSource trace(warm_profile(100));
  Simulator sim(warm_options(1000));
  const RunResult r = sim.run(trace);
  EXPECT_EQ(r.warmup_requests, 100u);
  EXPECT_EQ(r.requests, 0u);
}

TEST(WarmupTest, MaxRequestsCountsMeasuredOnly) {
  SyntheticTraceSource trace(warm_profile());
  SimOptions o = warm_options(2000);
  o.max_requests = 3000;
  Simulator sim(o);
  const RunResult r = sim.run(trace);
  EXPECT_EQ(r.warmup_requests, 2000u);
  EXPECT_EQ(r.requests, 3000u);
}

TEST(UtilizationTest, BoundedAndPositiveUnderLoad) {
  SyntheticTraceSource trace(warm_profile());
  Simulator sim(warm_options());
  const RunResult r = sim.run(trace);
  EXPECT_GT(r.chip_utilization, 0.0);
  EXPECT_LE(r.chip_utilization, 1.0);
  EXPECT_GT(r.channel_utilization, 0.0);
  EXPECT_LE(r.channel_utilization, 1.0);
  // Programs run 2ms per 41us transfer: chips busier than buses.
  EXPECT_GT(r.chip_utilization, r.channel_utilization);
}

TEST(CsvExportTest, HeaderAndRows) {
  SyntheticTraceSource trace(warm_profile(5000));
  Simulator sim(warm_options());
  const RunResult r = sim.run(trace);
  std::ostringstream os;
  write_results_csv(os, {r, r});
  const std::string out = os.str();
  // Header + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("trace,policy,cache_pages"), std::string::npos);
  EXPECT_NE(out.find("warm,Req-block,512"), std::string::npos);
  // Every row has the full column count.
  const auto lines = split(out, '\n');
  const auto cols = split(lines[0], ',').size();
  EXPECT_EQ(split(lines[1], ',').size(), cols);
}

TEST(CsvExportTest, EmptyResults) {
  std::ostringstream os;
  write_results_csv(os, {});
  const std::string out = os.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
}

}  // namespace
}  // namespace reqblock
