// Fairness and accounting properties of the multi-queue front end under a
// noisy neighbor: per-tenant conservation identities (admitted + sheds ==
// requests, tenant sums == the global counters), reconciliation of the
// tenant-tagged host-queue trace events against the per-tenant aggregates,
// and the DRR isolation property — the latency-sensitive tenant's p99
// queue wait stays within a constant factor of its solo-run p99 even while
// the neighbor bursts at x8.
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "sim/session.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "trace/synthetic.h"
#include "util/audit.h"

namespace reqblock {
namespace {

struct FullAuditScope {
  AuditLevel previous = set_audit_level(AuditLevel::kFull);
  ~FullAuditScope() { set_audit_level(previous); }
};

/// Base profile for the latency-sensitive tenant. The footprint (cold
/// stream + hot extents) stays below half of tiny_ssd's logical space, so
/// tenant 0's namespace fold (base 0, span = total/2) is the identity map
/// and its solo run is directly comparable.
WorkloadProfile victim_profile(std::uint64_t requests = 4000) {
  WorkloadProfile p;
  p.name = "mt-victim";
  p.total_requests = requests;
  p.seed = 29;
  p.write_ratio = 0.7;
  p.hot_extents = 64;
  p.cold_stream_pages = 1 << 15;
  p.mean_interarrival_ns = 120 * kMicrosecond;
  return p;
}

/// Two queues behind a bounded admission queue: t0 well-behaved, t1 at 4x
/// the arrival rate with an x8 burst every 1000 requests.
TenantOptions noisy_pair(ArbiterKind kind) {
  TenantOptions tn;
  tn.count = 2;
  tn.arbiter = kind;
  TenantSpec victim;
  victim.weight = 4;
  TenantSpec aggressor;
  aggressor.weight = 1;
  aggressor.rate = 4.0;
  aggressor.burst_len = 200;
  aggressor.burst_period = 1000;
  aggressor.burst_factor = 8.0;
  tn.specs = {victim, aggressor};
  return tn;
}

SimOptions multitenant_options(ArbiterKind kind) {
  SimOptions o;
  o.ssd = testing::tiny_ssd();
  o.policy.name = "reqblock";
  o.policy.capacity_pages = 256;
  o.policy.pages_per_block = o.ssd.pages_per_block;
  o.cache.capacity_pages = 256;
  o.telemetry_env_override = false;
  o.overload.queue_depth = 4;
  o.overload.deadline_ns = 4 * kMillisecond;
  o.overload.timeout_action = TimeoutAction::kRetry;
  o.overload.max_retries = 2;
  o.overload.retry_backoff_ns = 300 * kMicrosecond;
  o.tenants = noisy_pair(kind);
  return o;
}

RunResult run_multitenant(const SimOptions& o, const WorkloadProfile& base) {
  Simulator sim(o);
  SyntheticTraceSource trace(base);
  return sim.run(trace);
}

TEST(MultiTenantFairnessTest, PerTenantConservationIdentities) {
  FullAuditScope audit_scope;
  for (const ArbiterKind kind : {ArbiterKind::kRoundRobin,
                                 ArbiterKind::kWeighted,
                                 ArbiterKind::kDeficit}) {
    SCOPED_TRACE(to_string(kind));
    const RunResult r =
        run_multitenant(multitenant_options(kind), victim_profile());
    ASSERT_EQ(r.tenants.size(), 2u);
    EXPECT_EQ(r.tenants[0].name, "t0");
    EXPECT_EQ(r.tenants[1].name, "t1");

    std::uint64_t requests = 0, admitted = 0, sheds = 0, timeouts = 0;
    std::uint64_t retries = 0, queued = 0;
    SimTime wait_total = 0;
    for (const TenantResult& tn : r.tenants) {
      // Every request that reached this tenant's queue was either admitted
      // into service or shed — nothing vanishes.
      EXPECT_EQ(tn.overload.admitted + tn.overload.sheds, tn.requests)
          << tn.name;
      EXPECT_EQ(tn.read_requests + tn.write_requests, tn.requests) << tn.name;
      // Timeouts split exactly into granted backoffs and final sheds.
      EXPECT_EQ(tn.overload.timeouts, tn.overload.retries + tn.overload.sheds)
          << tn.name;
      // Histograms only hold completed requests.
      EXPECT_EQ(tn.response.count(), tn.requests - tn.overload.sheds)
          << tn.name;
      EXPECT_EQ(tn.queue_wait.count(), tn.requests - tn.overload.sheds)
          << tn.name;
      requests += tn.requests;
      admitted += tn.overload.admitted;
      sheds += tn.overload.sheds;
      timeouts += tn.overload.timeouts;
      retries += tn.overload.retries;
      queued += tn.overload.queued_waits;
      wait_total += tn.overload.queue_wait_total;
    }
    // The per-tenant slices partition the global counters exactly.
    EXPECT_EQ(requests, r.requests);
    EXPECT_EQ(admitted, r.overload.admitted);
    EXPECT_EQ(sheds, r.overload.sheds);
    EXPECT_EQ(timeouts, r.overload.timeouts);
    EXPECT_EQ(retries, r.overload.retries);
    EXPECT_EQ(queued, r.overload.queued_waits);
    EXPECT_EQ(wait_total, r.overload.queue_wait_total);
    // Both streams drain fully (rate compresses arrival pacing, not
    // length) and the bursts made the queue bite.
    EXPECT_EQ(r.tenants[0].requests, r.tenants[1].requests);
    EXPECT_GT(r.overload.queued_waits, 0u);
  }
}

TEST(MultiTenantFairnessTest, EventsReconcileWithPerTenantAggregates) {
  FullAuditScope audit_scope;
  SimOptions o = multitenant_options(ArbiterKind::kDeficit);
  o.overload.throttle = true;
  o.telemetry.trace.level = TraceLevel::kAll;
  o.telemetry.trace.capacity = 1 << 20;
  const RunResult r = run_multitenant(o, victim_profile());
  ASSERT_EQ(r.tenants.size(), 2u);
  ASSERT_EQ(r.telemetry.events_dropped, 0u)
      << "reconciliation needs a lossless event stream";

  // Tally the host-queue events by (kind, emitting tenant).
  std::map<std::pair<EventKind, std::uint16_t>, std::uint64_t> tally;
  for (const TraceEvent& e : r.telemetry.events) {
    if (e.kind == EventKind::kQueueEnqueue ||
        e.kind == EventKind::kQueueTimeout ||
        e.kind == EventKind::kThrottle) {
      ++tally[{e.kind, e.channel}];
    }
  }
  for (std::uint16_t t = 0; t < 2; ++t) {
    const OverloadMetrics& m = r.tenants[t].overload;
    EXPECT_EQ(tally[std::make_pair(EventKind::kQueueEnqueue, t)], m.admitted)
        << "tenant " << t;
    EXPECT_EQ(tally[std::make_pair(EventKind::kQueueTimeout, t)], m.timeouts)
        << "tenant " << t;
    EXPECT_EQ(tally[std::make_pair(EventKind::kThrottle, t)],
              m.throttle_events)
        << "tenant " << t;
  }
}

TEST(MultiTenantFairnessTest, DrrBoundsVictimQueueWaitNearSoloRun) {
  FullAuditScope audit_scope;
  const WorkloadProfile base = victim_profile();
  const SimOptions multi = multitenant_options(ArbiterKind::kDeficit);

  // Solo baseline: tenant 0's exact derived stream (identical requests —
  // the namespace fold is the identity for this footprint), same device
  // and queue configuration, no neighbor.
  SimOptions solo = multi;
  solo.tenants = TenantOptions{};
  const WorkloadProfile t0 =
      derive_tenant_profiles(base, multi.tenants).front();
  SyntheticTraceSource solo_trace(t0);
  Simulator solo_sim(solo);
  const RunResult solo_result = solo_sim.run(solo_trace);

  const RunResult shared = run_multitenant(multi, base);
  ASSERT_EQ(shared.tenants.size(), 2u);
  const TenantResult& victim = shared.tenants[0];
  // Same request stream on both sides.
  EXPECT_EQ(victim.requests, solo_result.requests);
  EXPECT_EQ(victim.read_requests, solo_result.read_requests);

  // The isolation property: with a 4:1 weight, DRR keeps the victim's p99
  // queue wait within a small constant of its uncontended p99 — the
  // aggressor's x8 bursts may slow t0 down, but cannot starve it. The
  // absolute slack covers service-time quantisation when the solo queue
  // barely waits at all.
  const SimTime solo_p99 = solo_result.queue_wait.p99();
  const SimTime shared_p99 = victim.queue_wait.p99();
  EXPECT_LE(shared_p99, 8 * solo_p99 + 4 * kMillisecond)
      << "solo p99 " << solo_p99 << " ns, shared p99 " << shared_p99 << " ns";
}

}  // namespace
}  // namespace reqblock
