// Tests for the generator's temporal-locality features: the burst window,
// large-write head re-reads, medium hot extents and the sparse stride.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "trace/synthetic.h"

namespace reqblock {
namespace {

WorkloadProfile base_profile() {
  WorkloadProfile p;
  p.name = "burst-unit";
  p.total_requests = 40000;
  p.seed = 321;
  p.write_ratio = 0.7;
  p.hot_extents = 2048;
  p.hot_slot_pages = 8;
  p.large_write_fraction = 0.2;
  p.large_write_min_pages = 8;
  p.large_write_max_pages = 24;
  p.hot_zipf_theta = 0.6;
  p.cold_stream_pages = 1 << 16;
  return p;
}

/// Mean reuse distance (in requests) between consecutive accesses to the
/// same hot address.
double short_reuse_fraction(const WorkloadProfile& p, std::uint64_t window) {
  SyntheticTraceSource src(p);
  const auto all = src.collect();
  std::unordered_map<Lpn, std::uint64_t> last_seen;
  std::uint64_t reuses = 0, short_reuses = 0;
  const Lpn hot_end = p.hot_region_pages();
  for (const auto& r : all) {
    if (r.lpn >= hot_end) continue;
    const auto it = last_seen.find(r.lpn);
    if (it != last_seen.end()) {
      ++reuses;
      if (r.id - it->second <= window) ++short_reuses;
    }
    last_seen[r.lpn] = r.id;
  }
  return reuses == 0 ? 0.0
                     : static_cast<double>(short_reuses) /
                           static_cast<double>(reuses);
}

TEST(BurstModelTest, BurstRaisesShortTermReuse) {
  WorkloadProfile no_burst = base_profile();
  no_burst.burst_prob = 0.0;
  WorkloadProfile bursty = base_profile();
  bursty.burst_prob = 0.5;
  bursty.burst_window = 128;
  EXPECT_GT(short_reuse_fraction(bursty, 500),
            short_reuse_fraction(no_burst, 500) * 1.3);
}

TEST(BurstModelTest, BurstZeroStillDeterministic) {
  WorkloadProfile p = base_profile();
  p.burst_prob = 0.0;
  SyntheticTraceSource a(p), b(p);
  const auto va = a.collect(), vb = b.collect();
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    ASSERT_EQ(va[i].lpn, vb[i].lpn);
  }
}

TEST(BurstModelTest, HeadReadsTargetRecentLargeWrites) {
  WorkloadProfile p = base_profile();
  p.read_large_head_fraction = 0.5;
  p.large_head_pages = 3;
  p.large_recent_window = 64;
  SyntheticTraceSource src(p);
  const auto all = src.collect();

  // Collect large-write start lpns; head reads must start exactly at one
  // of them and be at most large_head_pages long.
  std::unordered_set<Lpn> large_starts;
  std::uint64_t head_reads = 0;
  const Lpn hot_end = p.hot_region_pages();
  for (const auto& r : all) {
    if (r.is_write() && r.lpn >= hot_end &&
        r.pages >= p.large_write_min_pages) {
      large_starts.insert(r.lpn);
    } else if (r.is_read() && r.lpn >= hot_end &&
               r.pages <= p.large_head_pages &&
               large_starts.contains(r.lpn)) {
      ++head_reads;
    }
  }
  EXPECT_GT(head_reads, all.size() / 20);  // plenty of head re-reads
}

TEST(BurstModelTest, HeadReadsRepeatOnSameExtent) {
  WorkloadProfile p = base_profile();
  p.read_large_head_fraction = 0.6;
  p.large_recent_window = 32;  // small window => heavy repetition
  SyntheticTraceSource src(p);
  const auto all = src.collect();
  std::unordered_map<Lpn, int> head_read_counts;
  const Lpn hot_end = p.hot_region_pages();
  for (const auto& r : all) {
    if (r.is_read() && r.lpn >= hot_end && r.pages <= p.large_head_pages) {
      ++head_read_counts[r.lpn];
    }
  }
  int repeated = 0;
  for (const auto& [lpn, c] : head_read_counts) {
    if (c >= 2) ++repeated;
  }
  EXPECT_GT(repeated, 10);
}

TEST(BurstModelTest, MediumExtentsAppearWithConfiguredProbability) {
  WorkloadProfile p = base_profile();
  p.hot_medium_prob = 0.5;
  SyntheticTraceSource src(p);
  const auto all = src.collect();
  std::unordered_map<Lpn, std::uint32_t> extent_size;
  const Lpn hot_end = p.hot_region_pages();
  for (const auto& r : all) {
    if (r.is_write() && r.lpn < hot_end && r.lpn % p.stride_pages() == 0) {
      extent_size[r.lpn] = std::max(extent_size[r.lpn], r.pages);
    }
  }
  std::uint64_t medium = 0;
  for (const auto& [lpn, size] : extent_size) {
    if (size >= 5) ++medium;
  }
  const double frac =
      static_cast<double>(medium) / static_cast<double>(extent_size.size());
  EXPECT_NEAR(frac, 0.5, 0.12);
}

TEST(BurstModelTest, StrideSpreadsExtentsAcrossBlocks) {
  WorkloadProfile p = base_profile();
  p.hot_slot_stride = 64;
  SyntheticTraceSource src(p);
  const auto all = src.collect();
  const Lpn hot_end = p.hot_region_pages();
  EXPECT_EQ(hot_end, p.hot_extents * 64);
  // Every hot write must live inside its own 64-page block.
  for (const auto& r : all) {
    if (r.is_write() && r.lpn < hot_end && r.pages <= p.hot_slot_pages) {
      EXPECT_EQ(r.lpn / 64, (r.end_lpn() - 1) / 64);
    }
  }
}

TEST(BurstModelTest, StrideSmallerThanSlotRejected) {
  WorkloadProfile p = base_profile();
  p.hot_slot_pages = 8;
  p.hot_slot_stride = 4;
  EXPECT_THROW(SyntheticTraceSource{p}, std::logic_error);
}

TEST(BurstModelTest, ResetRestoresBurstState) {
  WorkloadProfile p = base_profile();
  p.burst_prob = 0.4;
  p.read_large_head_fraction = 0.3;
  SyntheticTraceSource src(p);
  const auto first = src.collect();
  const auto second = src.collect();  // collect() resets internally
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i].lpn, second[i].lpn);
    ASSERT_EQ(first[i].pages, second[i].pages);
  }
}

}  // namespace
}  // namespace reqblock
