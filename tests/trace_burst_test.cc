// Tests for the generator's temporal-locality features: the burst window,
// large-write head re-reads, medium hot extents and the sparse stride.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "snapshot/snapshot.h"
#include "trace/synthetic.h"

namespace reqblock {
namespace {

WorkloadProfile base_profile() {
  WorkloadProfile p;
  p.name = "burst-unit";
  p.total_requests = 40000;
  p.seed = 321;
  p.write_ratio = 0.7;
  p.hot_extents = 2048;
  p.hot_slot_pages = 8;
  p.large_write_fraction = 0.2;
  p.large_write_min_pages = 8;
  p.large_write_max_pages = 24;
  p.hot_zipf_theta = 0.6;
  p.cold_stream_pages = 1 << 16;
  return p;
}

/// Mean reuse distance (in requests) between consecutive accesses to the
/// same hot address.
double short_reuse_fraction(const WorkloadProfile& p, std::uint64_t window) {
  SyntheticTraceSource src(p);
  const auto all = src.collect();
  std::unordered_map<Lpn, std::uint64_t> last_seen;
  std::uint64_t reuses = 0, short_reuses = 0;
  const Lpn hot_end = p.hot_region_pages();
  for (const auto& r : all) {
    if (r.lpn >= hot_end) continue;
    const auto it = last_seen.find(r.lpn);
    if (it != last_seen.end()) {
      ++reuses;
      if (r.id - it->second <= window) ++short_reuses;
    }
    last_seen[r.lpn] = r.id;
  }
  return reuses == 0 ? 0.0
                     : static_cast<double>(short_reuses) /
                           static_cast<double>(reuses);
}

TEST(BurstModelTest, BurstRaisesShortTermReuse) {
  WorkloadProfile no_burst = base_profile();
  no_burst.burst_prob = 0.0;
  WorkloadProfile bursty = base_profile();
  bursty.burst_prob = 0.5;
  bursty.burst_window = 128;
  EXPECT_GT(short_reuse_fraction(bursty, 500),
            short_reuse_fraction(no_burst, 500) * 1.3);
}

TEST(BurstModelTest, BurstZeroStillDeterministic) {
  WorkloadProfile p = base_profile();
  p.burst_prob = 0.0;
  SyntheticTraceSource a(p), b(p);
  const auto va = a.collect(), vb = b.collect();
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    ASSERT_EQ(va[i].lpn, vb[i].lpn);
  }
}

TEST(BurstModelTest, HeadReadsTargetRecentLargeWrites) {
  WorkloadProfile p = base_profile();
  p.read_large_head_fraction = 0.5;
  p.large_head_pages = 3;
  p.large_recent_window = 64;
  SyntheticTraceSource src(p);
  const auto all = src.collect();

  // Collect large-write start lpns; head reads must start exactly at one
  // of them and be at most large_head_pages long.
  std::unordered_set<Lpn> large_starts;
  std::uint64_t head_reads = 0;
  const Lpn hot_end = p.hot_region_pages();
  for (const auto& r : all) {
    if (r.is_write() && r.lpn >= hot_end &&
        r.pages >= p.large_write_min_pages) {
      large_starts.insert(r.lpn);
    } else if (r.is_read() && r.lpn >= hot_end &&
               r.pages <= p.large_head_pages &&
               large_starts.contains(r.lpn)) {
      ++head_reads;
    }
  }
  EXPECT_GT(head_reads, all.size() / 20);  // plenty of head re-reads
}

TEST(BurstModelTest, HeadReadsRepeatOnSameExtent) {
  WorkloadProfile p = base_profile();
  p.read_large_head_fraction = 0.6;
  p.large_recent_window = 32;  // small window => heavy repetition
  SyntheticTraceSource src(p);
  const auto all = src.collect();
  std::unordered_map<Lpn, int> head_read_counts;
  const Lpn hot_end = p.hot_region_pages();
  for (const auto& r : all) {
    if (r.is_read() && r.lpn >= hot_end && r.pages <= p.large_head_pages) {
      ++head_read_counts[r.lpn];
    }
  }
  int repeated = 0;
  for (const auto& [lpn, c] : head_read_counts) {
    if (c >= 2) ++repeated;
  }
  EXPECT_GT(repeated, 10);
}

TEST(BurstModelTest, MediumExtentsAppearWithConfiguredProbability) {
  WorkloadProfile p = base_profile();
  p.hot_medium_prob = 0.5;
  SyntheticTraceSource src(p);
  const auto all = src.collect();
  std::unordered_map<Lpn, std::uint32_t> extent_size;
  const Lpn hot_end = p.hot_region_pages();
  for (const auto& r : all) {
    if (r.is_write() && r.lpn < hot_end && r.lpn % p.stride_pages() == 0) {
      extent_size[r.lpn] = std::max(extent_size[r.lpn], r.pages);
    }
  }
  std::uint64_t medium = 0;
  for (const auto& [lpn, size] : extent_size) {
    if (size >= 5) ++medium;
  }
  const double frac =
      static_cast<double>(medium) / static_cast<double>(extent_size.size());
  EXPECT_NEAR(frac, 0.5, 0.12);
}

TEST(BurstModelTest, StrideSpreadsExtentsAcrossBlocks) {
  WorkloadProfile p = base_profile();
  p.hot_slot_stride = 64;
  SyntheticTraceSource src(p);
  const auto all = src.collect();
  const Lpn hot_end = p.hot_region_pages();
  EXPECT_EQ(hot_end, p.hot_extents * 64);
  // Every hot write must live inside its own 64-page block.
  for (const auto& r : all) {
    if (r.is_write() && r.lpn < hot_end && r.pages <= p.hot_slot_pages) {
      EXPECT_EQ(r.lpn / 64, (r.end_lpn() - 1) / 64);
    }
  }
}

TEST(BurstModelTest, StrideSmallerThanSlotRejected) {
  WorkloadProfile p = base_profile();
  p.hot_slot_pages = 8;
  p.hot_slot_stride = 4;
  EXPECT_THROW(SyntheticTraceSource{p}, std::logic_error);
}

// --- Open-loop burst arrivals (spike/idle modulation) ---------------------

TEST(BurstArrivalTest, SpikePhaseArrivesFaster) {
  WorkloadProfile p = base_profile();
  p.burst_arrival_len = 1000;
  p.burst_arrival_period = 4000;
  p.burst_arrival_factor = 10.0;
  p.burst_idle_factor = 2.0;
  SyntheticTraceSource src(p);
  const auto all = src.collect();
  double spike_gap = 0.0, idle_gap = 0.0;
  std::uint64_t spike_n = 0, idle_n = 0;
  for (std::size_t i = 1; i < all.size(); ++i) {
    const double gap =
        static_cast<double>(all[i].arrival - all[i - 1].arrival);
    ASSERT_GE(gap, 0.0);  // arrivals stay nondecreasing
    if (all[i].id % p.burst_arrival_period < p.burst_arrival_len) {
      spike_gap += gap;
      ++spike_n;
    } else {
      idle_gap += gap;
      ++idle_n;
    }
  }
  ASSERT_GT(spike_n, 1000u);
  ASSERT_GT(idle_n, 1000u);
  // Spike arrivals are 10x faster and idle 2x slower => the measured mean
  // gaps should differ by well over an order of magnitude.
  EXPECT_LT(spike_gap / static_cast<double>(spike_n),
            0.2 * idle_gap / static_cast<double>(idle_n));
}

TEST(BurstArrivalTest, DisabledKeepsPoissonStream) {
  WorkloadProfile plain = base_profile();
  WorkloadProfile zero_len = base_profile();
  zero_len.burst_arrival_period = 1000;  // len == 0 => disabled
  SyntheticTraceSource a(plain), b(zero_len);
  const auto va = a.collect(), vb = b.collect();
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    ASSERT_EQ(va[i].arrival, vb[i].arrival);
    ASSERT_EQ(va[i].lpn, vb[i].lpn);
  }
}

TEST(BurstArrivalTest, FieldsEnterIdentityHash) {
  WorkloadProfile p = base_profile();
  const std::uint64_t plain = SyntheticTraceSource(p).identity_hash();
  p.burst_arrival_len = 500;
  p.burst_arrival_period = 2000;
  const std::uint64_t bursty = SyntheticTraceSource(p).identity_hash();
  EXPECT_NE(plain, bursty);
  p.burst_arrival_factor = 4.0;
  EXPECT_NE(bursty, SyntheticTraceSource(p).identity_hash());
}

TEST(BurstArrivalTest, LengthBeyondPeriodRejected) {
  WorkloadProfile p = base_profile();
  p.burst_arrival_len = 2001;
  p.burst_arrival_period = 2000;
  EXPECT_THROW(SyntheticTraceSource{p}, std::logic_error);
}

TEST(BurstArrivalTest, NonPositiveFactorRejected) {
  WorkloadProfile p = base_profile();
  p.burst_arrival_len = 100;
  p.burst_arrival_period = 1000;
  p.burst_arrival_factor = 0.0;
  EXPECT_THROW(SyntheticTraceSource{p}, std::logic_error);
}

TEST(BurstArrivalTest, SnapshotResumesMidCycle) {
  WorkloadProfile p = base_profile();
  p.burst_arrival_len = 300;
  p.burst_arrival_period = 1000;
  p.burst_arrival_factor = 8.0;
  SyntheticTraceSource full(p), resumed(p);
  IoRequest r;
  // Stop inside a spike phase (request 150 of the cycle).
  for (int i = 0; i < 1150; ++i) ASSERT_TRUE(full.next(r));
  SnapshotWriter w;
  full.serialize(w);
  const std::string bytes = w.take();
  SnapshotReader rd(bytes);
  for (int i = 0; i < 1150; ++i) ASSERT_TRUE(resumed.next(r));
  resumed.deserialize(rd);
  IoRequest a, b;
  while (full.next(a)) {
    ASSERT_TRUE(resumed.next(b));
    ASSERT_EQ(a.arrival, b.arrival);
    ASSERT_EQ(a.lpn, b.lpn);
    ASSERT_EQ(a.pages, b.pages);
  }
  EXPECT_FALSE(resumed.next(b));
}

TEST(BurstModelTest, ResetRestoresBurstState) {
  WorkloadProfile p = base_profile();
  p.burst_prob = 0.4;
  p.read_large_head_fraction = 0.3;
  SyntheticTraceSource src(p);
  const auto first = src.collect();
  const auto second = src.collect();  // collect() resets internally
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i].lpn, second[i].lpn);
    ASSERT_EQ(first[i].pages, second[i].pages);
  }
}

}  // namespace
}  // namespace reqblock
