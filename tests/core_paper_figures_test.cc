// The paper's worked examples (Figs. 5 and 6), replayed through the full
// CacheManager + FTL stack rather than against the bare policy, so the
// documented behaviour is pinned at the system level.
#include <gtest/gtest.h>

#include "core/req_block_policy.h"
#include "test_util.h"

namespace reqblock {
namespace {

using testing::Harness;
using testing::read_req;
using testing::write_req;

PolicyConfig rb_config(std::uint32_t delta, std::uint64_t capacity = 256) {
  PolicyConfig cfg = testing::policy_config("reqblock", capacity);
  cfg.reqblock.delta = delta;
  return cfg;
}

const ReqBlockPolicy& policy_of(const Harness& h) {
  return dynamic_cast<const ReqBlockPolicy&>(h.cache->policy());
}

TEST(PaperFigure5Test, PartAHitOnLargeRequestBlockSplitsToDRL) {
  // Fig. 5(a): pages K..K+3 belong to a large request block in IRL; a hit
  // on K+1 abstracts it into a new block at the DRL head.
  Harness h(rb_config(/*delta=*/2));
  const Lpn k = 100;
  h.serve(write_req(1, k, 4));              // large block (4 > delta)
  h.serve(read_req(2, k + 1, 1, kSecond));  // hit page K+1

  const auto& p = policy_of(h);
  const ReqBlock* split = p.block_of(k + 1);
  ASSERT_NE(split, nullptr);
  EXPECT_EQ(split->level, ReqList::kDRL);
  EXPECT_EQ(split->page_count(), 1u);
  // The origin keeps K, K+2, K+3 in IRL.
  const ReqBlock* origin = p.block_of(k);
  ASSERT_NE(origin, nullptr);
  EXPECT_EQ(origin->level, ReqList::kIRL);
  EXPECT_EQ(origin->page_count(), 3u);
  EXPECT_EQ(h.cache->metrics().page_hits, 1u);
}

TEST(PaperFigure5Test, PartBHitOnSmallBlocksUpgradesToSRL) {
  // Fig. 5(b), delta = 2: a small IRL block holding page M moves to SRL
  // when hit; a small split block in DRL holding page K+1 moves to SRL
  // when hit.
  Harness h(rb_config(2));
  const Lpn k = 100, m = 500;
  h.serve(write_req(1, k, 4));                  // large -> IRL
  h.serve(write_req(2, m, 2));                  // small -> IRL
  h.serve(read_req(3, k + 1, 1, kSecond));      // split K+1 -> DRL
  h.serve(read_req(4, m, 1, 2 * kSecond));      // hit M -> SRL
  h.serve(read_req(5, k + 1, 1, 3 * kSecond));  // hit K+1 again -> SRL

  const auto& p = policy_of(h);
  EXPECT_EQ(p.block_of(m)->level, ReqList::kSRL);
  EXPECT_EQ(p.block_of(m)->page_count(), 2u);  // whole block moved
  EXPECT_EQ(p.block_of(k + 1)->level, ReqList::kSRL);
  const auto occ = p.occupancy();
  EXPECT_EQ(occ.srl_blocks, 2u);
  EXPECT_EQ(occ.drl_blocks, 0u);
  EXPECT_EQ(occ.irl_blocks, 1u);  // the shrunken origin
}

TEST(PaperFigure6Test, DowngradedMergeEvictsSplitAndOriginTogether) {
  // Fig. 6: the DRL tail is selected as the victim and merged with the
  // neighbouring pages of its origin block still in IRL; the merged batch
  // is flushed together.
  Harness h(rb_config(2, /*capacity=*/16));
  // Large request: 8 pages, then hit 6 of them (split block of 6 > origin
  // of 2, so the split block ages into the Freq minimum — see
  // core_req_block_test for the arithmetic).
  h.serve(write_req(1, 0, 8));
  h.serve(read_req(2, 0, 6, kSecond));
  // Hot small block to advance the clock without becoming the victim.
  h.serve(write_req(3, 100, 1, 2 * kSecond));
  for (std::uint64_t i = 0; i < 3; ++i) {
    h.serve(read_req(4 + i, 100, 1, (3 + static_cast<SimTime>(i)) * kSecond));
  }
  // Fill the cache to force exactly one eviction: 9 pages cached,
  // capacity 16, and an 8-page request arrives.
  h.serve(write_req(10, 200, 8, 10 * kSecond));
  EXPECT_EQ(h.cache->metrics().evictions, 1u);
  // The merged victim carried all 8 pages of request 1 to flash.
  EXPECT_EQ(h.cache->metrics().evicted_pages, 8u);
  EXPECT_EQ(h.ftl.metrics().host_page_writes, 8u);
  // Both fragments are gone from the cache; the hot block and the new
  // request remain.
  const auto& p = policy_of(h);
  for (Lpn l = 0; l < 8; ++l) {
    EXPECT_EQ(p.block_of(l), nullptr) << l;
  }
  EXPECT_NE(p.block_of(100), nullptr);
  EXPECT_NE(p.block_of(200), nullptr);
  EXPECT_EQ(h.cache->cached_pages(), 9u);  // 1 hot page + 8 new pages
}

TEST(PaperFigure6Test, MergedBatchIsStripedAcrossChannels) {
  // The merged 8-page flush must use many channels (batch eviction,
  // §3.3/§4.2.4), unlike BPLRU's colocated block flush.
  Harness h(rb_config(2, 16));
  h.serve(write_req(1, 0, 8));
  h.serve(read_req(2, 0, 6, kSecond));
  h.serve(write_req(3, 100, 1, 2 * kSecond));
  for (std::uint64_t i = 0; i < 3; ++i) {
    h.serve(read_req(4 + i, 100, 1, (3 + static_cast<SimTime>(i)) * kSecond));
  }
  h.serve(write_req(10, 200, 8, 10 * kSecond));
  std::uint32_t busy_channels = 0;
  for (std::uint32_t ch = 0; ch < h.ftl.config().channels; ++ch) {
    if (h.ftl.channel_busy(ch) > 0) ++busy_channels;
  }
  EXPECT_EQ(busy_channels, 8u);  // 8 pages across all 8 channels
}

TEST(PaperAlgorithm1Test, MainRoutineReadMissGoesToFlashWithoutInsert) {
  // Lines 38-39: read misses are served from flash; nothing is inserted
  // (the DRAM cache is a write buffer).
  Harness h(rb_config(5));
  h.serve(read_req(1, 777, 3));
  EXPECT_EQ(h.cache->cached_pages(), 0u);
  EXPECT_EQ(policy_of(h).block_count(), 0u);
  EXPECT_EQ(h.cache->metrics().read_misses, 3u);
}

TEST(PaperAlgorithm1Test, PerPageLoopHandlesMixedHitMissRequests) {
  // One request whose pages partly hit (lines 19-28) and partly miss
  // (lines 30-37): the hits upgrade, the misses form a new IRL block.
  Harness h(rb_config(5));
  h.serve(write_req(1, 0, 2));          // cache pages 0,1
  h.serve(write_req(2, 0, 4, kSecond)); // pages 0,1 hit; 2,3 miss
  const auto& p = policy_of(h);
  // Hit part: block {0,1} promoted to SRL.
  EXPECT_EQ(p.block_of(0)->level, ReqList::kSRL);
  // Miss part: new IRL block {2,3} owned by request 2.
  const ReqBlock* fresh = p.block_of(2);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->level, ReqList::kIRL);
  EXPECT_EQ(fresh->page_count(), 2u);
  EXPECT_EQ(fresh->req_id, 2u);
  EXPECT_EQ(h.cache->metrics().page_hits, 2u);
  EXPECT_EQ(h.cache->metrics().inserts, 4u);
}

}  // namespace
}  // namespace reqblock
