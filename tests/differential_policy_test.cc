// Differential checker: replay identical randomized operation streams
// through each optimized policy and its slow-but-obviously-correct
// reference model (tests/reference_models.h), requiring identical eviction
// decisions at every step and a clean deep audit throughout. Any divergence
// is a bug in the optimized structure.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "cache/fifo.h"
#include "cache/lfu.h"
#include "cache/lru.h"
#include "core/req_block_policy.h"
#include "reference_models.h"
#include "test_util.h"
#include "util/audit.h"
#include "util/rng.h"

namespace reqblock::testing {
namespace {

/// Restores the runtime audit level on scope exit.
class AuditLevelGuard {
 public:
  explicit AuditLevelGuard(AuditLevel level)
      : previous_(set_audit_level(level)) {}
  ~AuditLevelGuard() { set_audit_level(previous_); }

 private:
  AuditLevel previous_;
};

/// Audits `policy` and fails the test with the full report on violation.
void expect_clean_audit(const WriteBufferPolicy& policy,
                        std::uint64_t op_index) {
  AuditReport report(policy.name());
  policy.audit(report);
  ASSERT_TRUE(report.ok()) << "after op " << op_index << ":\n"
                           << report.to_string();
}

// One op stream drives both sides: ~70% accesses (hit or insert depending
// on residency), ~30% evictions once the structure has warmed up. Deep
// audits run on a stride so the 100k-op streams stay fast while still
// covering thousands of full walks.
constexpr std::uint64_t kOps = 100'000;
constexpr std::uint64_t kLpnSpace = 512;
constexpr std::uint64_t kAuditStride = 97;  // prime: no phase-lock with ops

template <typename Policy, typename Reference>
void run_differential(std::uint64_t seed) {
  Policy policy;
  Reference reference;
  Rng rng(seed);
  std::uint64_t evictions = 0;

  for (std::uint64_t op = 0; op < kOps; ++op) {
    const bool evict = reference.size() > 64 && rng.next_below(10) < 3;
    if (evict) {
      const Lpn expected = reference.victim();
      VictimBatch batch = policy.select_victim();
      ASSERT_EQ(batch.pages.size(), 1u) << "op " << op;
      ASSERT_EQ(batch.pages.front(), expected)
          << policy.name() << " diverged from reference at op " << op;
      ++evictions;
    } else {
      const Lpn lpn = rng.next_below(kLpnSpace);
      const IoRequest req = write_req(op, lpn, 1);
      if (reference.contains(lpn)) {
        reference.hit(lpn);
        policy.on_hit(lpn, req, /*is_write=*/true);
      } else {
        reference.insert(lpn);
        policy.on_insert(lpn, req, /*is_write=*/true);
      }
    }
    ASSERT_EQ(policy.pages(), reference.size()) << "op " << op;
    if (op % kAuditStride == 0) expect_clean_audit(policy, op);
  }
  expect_clean_audit(policy, kOps);
  // The stream must actually have exercised the eviction path.
  EXPECT_GT(evictions, 10'000u);
}

TEST(DifferentialPolicy, LruMatchesReferenceOver100kOps) {
  run_differential<LruPolicy, ReferenceLru>(0xA11CE);
}

TEST(DifferentialPolicy, FifoMatchesReferenceOver100kOps) {
  run_differential<FifoPolicy, ReferenceFifo>(0xB0B);
}

TEST(DifferentialPolicy, LfuMatchesReferenceOver100kOps) {
  run_differential<LfuPolicy, ReferenceLfu>(0xCAFE);
}

// Req-block differential: drive the policy exactly like the cache manager
// does (begin_request, then per-page hit/insert), and before every
// select_victim compute the brute-force Eq. 1 victim and its expected
// downgraded-merge batch; the optimized eviction must return the same page
// set. Audits run after every request.
TEST(DifferentialPolicy, ReqBlockMatchesBruteForceEq1Over100kOps) {
  ReqBlockOptions opt;
  opt.delta = 5;
  ReqBlockPolicy policy(opt);
  Rng rng(0xD1FF);

  std::uint64_t pages_processed = 0;
  std::uint64_t evictions = 0;
  std::uint64_t merged_evictions = 0;
  std::uint64_t req_id = 1;

  while (pages_processed < kOps) {
    // Synthetic request: start in a 4 KiB-page LPN space small enough to
    // re-hit earlier requests, size 1..16 pages so both the <= delta and
    // > delta regimes occur.
    const Lpn start = rng.next_below(kLpnSpace);
    const std::uint32_t len = 1 + static_cast<std::uint32_t>(
                                      rng.next_below(16));
    const IoRequest req = write_req(req_id, start, len);
    ++req_id;
    policy.begin_request(req);
    for (std::uint32_t i = 0; i < len; ++i) {
      const Lpn lpn = start + i;
      if (policy.block_of(lpn) != nullptr) {
        policy.on_hit(lpn, req, /*is_write=*/true);
      } else {
        policy.on_insert(lpn, req, /*is_write=*/true);
      }
      ++pages_processed;
      // Keep the structure near a fixed size, evicting like the manager
      // does when over capacity.
      while (policy.pages() > 256) {
        const ReqBlock* expected_victim = brute_force_victim(policy);
        const std::vector<Lpn> expected =
            expected_victim_pages(policy, expected_victim);
        // Capture before select_victim: the victim block is destroyed by
        // the eviction itself.
        const bool victim_was_split =
            expected_victim != nullptr && expected_victim->origin_id != 0;
        const std::size_t victim_own_pages =
            expected_victim == nullptr ? 0 : expected_victim->pages.size();
        VictimBatch batch = policy.select_victim();
        std::vector<Lpn> got = batch.pages;
        std::sort(got.begin(), got.end());
        ASSERT_EQ(got, expected)
            << "Req-block eviction diverged from brute-force Eq.1 after "
            << pages_processed << " pages";
        ASSERT_FALSE(batch.empty())
            << "policy refused to evict with no in-flight guard conflict";
        ++evictions;
        if (victim_was_split && expected.size() > victim_own_pages) {
          ++merged_evictions;
        }
      }
    }
    expect_clean_audit(policy, pages_processed);
  }

  // The workload must have hit the interesting paths, not skated past them.
  EXPECT_GT(evictions, 1'000u);
  EXPECT_GT(merged_evictions, 0u) << "no downgraded merge ever happened";
}

// Same differential under every FreqMode, so the Eq. 1 ablation variants
// stay consistent with their brute-force definition too.
TEST(DifferentialPolicy, ReqBlockBruteForceAgreesUnderFreqModes) {
  for (const FreqMode mode : {FreqMode::kFull, FreqMode::kNoTime,
                              FreqMode::kNoSize, FreqMode::kCountOnly}) {
    ReqBlockOptions opt;
    opt.delta = 3;
    opt.freq_mode = mode;
    ReqBlockPolicy policy(opt);
    Rng rng(0x5EED + static_cast<std::uint64_t>(mode));

    std::uint64_t req_id = 1;
    for (std::uint64_t op = 0; op < 20'000; ++op) {
      const Lpn start = rng.next_below(128);
      const std::uint32_t len =
          1 + static_cast<std::uint32_t>(rng.next_below(8));
      const IoRequest req = write_req(req_id++, start, len);
      policy.begin_request(req);
      for (std::uint32_t i = 0; i < len; ++i) {
        const Lpn lpn = start + i;
        if (policy.block_of(lpn) != nullptr) {
          policy.on_hit(lpn, req, true);
        } else {
          policy.on_insert(lpn, req, true);
        }
        while (policy.pages() > 96) {
          const std::vector<Lpn> expected =
              expected_victim_pages(policy, brute_force_victim(policy));
          VictimBatch batch = policy.select_victim();
          std::vector<Lpn> got = batch.pages;
          std::sort(got.begin(), got.end());
          ASSERT_EQ(got, expected) << "mode " << static_cast<int>(mode);
        }
      }
    }
  }
}

}  // namespace
}  // namespace reqblock::testing
