// Cross-policy property suite: every policy, driven through the full
// CacheManager + FTL stack on randomized workloads, must preserve the
// framework invariants (capacity, bookkeeping agreement, flush accounting,
// read-your-writes — the latter enforced inside the manager on every read).
#include <gtest/gtest.h>

#include <string>

#include "test_util.h"
#include "util/rng.h"

namespace reqblock {
namespace {

using testing::Harness;
using testing::policy_config;

struct PolicyParam {
  std::string name;
  std::uint64_t capacity;
  std::uint64_t seed;
};

class PolicySweep : public ::testing::TestWithParam<PolicyParam> {
 protected:
  /// Mixed random workload with hot reuse and occasional large requests.
  void run_workload(Harness& h, std::uint64_t requests) {
    Rng rng(GetParam().seed);
    SimTime clock = 0;
    for (std::uint64_t id = 0; id < requests; ++id) {
      clock += static_cast<SimTime>(rng.next_exponential(200'000.0));
      IoRequest r;
      r.id = id;
      r.arrival = clock;
      r.type = rng.next_bool(0.7) ? IoType::kWrite : IoType::kRead;
      if (rng.next_bool(0.8)) {
        r.lpn = rng.next_below(96);  // hot range
        r.pages = static_cast<std::uint32_t>(rng.next_in(1, 4));
      } else {
        r.lpn = 1000 + rng.next_below(4000);
        r.pages = static_cast<std::uint32_t>(rng.next_in(8, 24));
      }
      const SimTime done = h.serve(r);
      ASSERT_GE(done, r.arrival);
      ASSERT_LE(h.cache->cached_pages(), GetParam().capacity);
      ASSERT_EQ(h.cache->policy().pages(), h.cache->cached_pages());
    }
  }
};

TEST_P(PolicySweep, InvariantsHoldOnMixedWorkload) {
  Harness h(policy_config(GetParam().name, GetParam().capacity));
  run_workload(h, 1500);
  const auto& m = h.cache->metrics();
  // Flush accounting: everything flash received as host programs came from
  // eviction flushes, bypasses, or BPLRU padding writes.
  EXPECT_EQ(m.flushed_pages + m.bypass_pages + m.padding_pages,
            h.ftl.metrics().host_page_writes);
  // Hits + misses == lookups.
  EXPECT_EQ(m.page_hits + m.inserts + m.bypass_pages + m.read_misses,
            m.page_lookups);
  EXPECT_LE(m.hit_ratio(), 1.0);
}

TEST_P(PolicySweep, EvictionsFreeAtLeastOnePage) {
  Harness h(policy_config(GetParam().name, GetParam().capacity));
  run_workload(h, 800);
  const auto& m = h.cache->metrics();
  if (m.evictions > 0) {
    EXPECT_GE(m.evicted_pages, m.evictions);
    EXPECT_GE(m.eviction_batch.mean(), 1.0);
  }
}

TEST_P(PolicySweep, DrainAfterWorkloadReadsEverythingBack) {
  Harness h(policy_config(GetParam().name, GetParam().capacity));
  run_workload(h, 600);
  // Read back the whole hot range; verify_consistency inside the manager
  // asserts versions match on every page (cache or flash path).
  SimTime t = 1'000'000 * kMillisecond;
  for (Lpn l = 0; l < 96; ++l) {
    h.serve(testing::read_req(1'000'000 + l, l, 1, t));
    t += kMillisecond;
  }
}

TEST_P(PolicySweep, MetadataStaysSmallFractionOfCache) {
  Harness h(policy_config(GetParam().name, GetParam().capacity));
  run_workload(h, 800);
  const double cache_bytes =
      static_cast<double>(GetParam().capacity) * 4096.0;
  const double metadata =
      static_cast<double>(h.cache->policy().metadata_bytes());
  // The paper reports <= ~0.6% for all schemes; allow 2% headroom.
  EXPECT_LE(metadata, cache_bytes * 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweep,
    ::testing::Values(PolicyParam{"lru", 128, 1},
                      PolicyParam{"fifo", 128, 2},
                      PolicyParam{"lfu", 128, 3},
                      PolicyParam{"cflru", 128, 4},
                      PolicyParam{"fab", 128, 5},
                      PolicyParam{"bplru", 128, 6},
                      PolicyParam{"vbbms", 128, 7},
                      PolicyParam{"reqblock", 128, 8},
                      PolicyParam{"reqblock", 32, 9},
                      PolicyParam{"lru", 32, 10},
                      PolicyParam{"bplru", 512, 11},
                      PolicyParam{"vbbms", 512, 12}),
    [](const ::testing::TestParamInfo<PolicyParam>& info) {
      return info.param.name + "_cap" + std::to_string(info.param.capacity) +
             "_s" + std::to_string(info.param.seed);
    });

TEST(PolicyFactoryTest, KnownNamesConstruct) {
  for (const auto& name : known_policy_names()) {
    PolicyConfig cfg = policy_config(name, 64);
    EXPECT_NE(make_policy(cfg), nullptr) << name;
  }
}

TEST(PolicyFactoryTest, UnknownNameThrows) {
  EXPECT_THROW(make_policy(policy_config("clock", 64)),
               std::invalid_argument);
}

TEST(PolicyFactoryTest, NamesAreCaseInsensitive) {
  EXPECT_EQ(make_policy(policy_config("LRU", 64))->name(), "LRU");
  EXPECT_EQ(make_policy(policy_config("Req-Block", 64))->name(),
            "Req-block");
}

}  // namespace
}  // namespace reqblock
