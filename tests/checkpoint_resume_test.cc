// Checkpoint/resume acceptance: a run interrupted at an arbitrary request
// and resumed from its checkpoint must produce a byte-identical results
// CSV to a run that was never interrupted — for every policy, with and
// without fault injection, under full structural audits. Plus the refusal
// paths (wrong config, wrong trace, corrupt file) and the resumable
// experiment matrix.
#include "sim/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/policy_factory.h"
#include "sim/report.h"
#include "test_util.h"
#include "trace/synthetic.h"
#include "util/audit.h"

namespace reqblock {
namespace {

namespace fs = std::filesystem;

struct FullAuditScope {
  AuditLevel previous = set_audit_level(AuditLevel::kFull);
  ~FullAuditScope() { set_audit_level(previous); }
};

/// Fresh per-test scratch directory.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/ckpt_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

WorkloadProfile small_profile(std::uint64_t requests = 1500,
                              std::uint64_t seed = 21) {
  WorkloadProfile p;
  p.name = "ckpt";
  p.total_requests = requests;
  p.seed = seed;
  p.hot_extents = 128;
  p.cold_stream_pages = 1 << 15;
  return p;
}

SimOptions small_options(const std::string& policy, bool faults) {
  SimOptions o;
  o.ssd = testing::tiny_ssd();
  o.policy.name = policy;
  o.policy.capacity_pages = 256;
  o.policy.pages_per_block = o.ssd.pages_per_block;
  o.cache.capacity_pages = 256;
  o.telemetry_env_override = false;
  if (faults) {
    o.fault.seed = 5;
    o.fault.program_fail_prob = 0.02;
    o.fault.read_fail_prob = 0.01;
    o.fault.power_loss_every_requests = 400;
  }
  return o;
}

std::string csv_of(const RunResult& r) {
  std::ostringstream os;
  write_results_csv(os, {r});
  return os.str();
}

RunResult run_uninterrupted(const SimOptions& o, const WorkloadProfile& p) {
  SyntheticTraceSource trace(p);
  SimulationSession session(o, trace);
  while (session.step()) {
  }
  return session.finish();
}

/// Runs to `split` requests, checkpoints, abandons the session (the
/// crash), then restores into a fresh session and finishes the run.
RunResult run_interrupted(const SimOptions& o, const WorkloadProfile& p,
                          std::uint64_t split, const std::string& dir) {
  {
    SyntheticTraceSource trace(p);
    SimulationSession session(o, trace);
    while (session.served() < split && session.step()) {
    }
    save_session_checkpoint(session, dir, "run", 2);
  }
  const std::string latest = find_latest_checkpoint(dir, "run");
  EXPECT_FALSE(latest.empty());
  SyntheticTraceSource trace(p);
  SimulationSession session(o, trace);
  restore_session_checkpoint(session, latest);
  while (session.step()) {
  }
  return session.finish();
}

TEST(CheckpointResumeTest, ByteIdenticalCsvForEveryPolicy) {
  FullAuditScope audit_scope;
  const auto profile = small_profile();
  for (const bool faults : {false, true}) {
    for (const std::string& policy : known_policy_names()) {
      SCOPED_TRACE(policy + (faults ? "+faults" : ""));
      const SimOptions o = small_options(policy, faults);
      const std::string dir =
          scratch_dir(policy + (faults ? "_f" : "_nf"));

      const RunResult whole = run_uninterrupted(o, profile);
      const RunResult resumed = run_interrupted(o, profile, 700, dir);
      EXPECT_EQ(csv_of(whole), csv_of(resumed));
    }
  }
}

TEST(CheckpointResumeTest, ResumeAcrossTheWarmupBoundary) {
  FullAuditScope audit_scope;
  const auto profile = small_profile();
  SimOptions o = small_options("reqblock", false);
  o.warmup_requests = 500;
  const RunResult whole = run_uninterrupted(o, profile);
  // One split inside warmup, one after it.
  for (const std::uint64_t split : {200ull, 900ull}) {
    const std::string dir = scratch_dir("warmup_" + std::to_string(split));
    const RunResult resumed = run_interrupted(o, profile, split, dir);
    EXPECT_EQ(csv_of(whole), csv_of(resumed)) << "split=" << split;
  }
}

TEST(CheckpointResumeTest, RunWithCheckpointsMatchesPlainRun) {
  const auto profile = small_profile();
  const SimOptions o = small_options("reqblock", true);
  const RunResult whole = run_uninterrupted(o, profile);

  const std::string dir = scratch_dir("periodic");
  CheckpointOptions ckpt;
  ckpt.dir = dir;
  ckpt.every_n_requests = 300;
  SyntheticTraceSource trace(profile);
  const RunResult checkpointed = run_with_checkpoints(o, trace, ckpt);
  EXPECT_EQ(csv_of(whole), csv_of(checkpointed));

  // Periodic checkpoints were written and pruned to keep_last.
  std::size_t ckpt_files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    ckpt_files += e.path().filename().string().rfind("run.ckpt.", 0) == 0;
  }
  EXPECT_EQ(ckpt_files, ckpt.keep_last);

  // And the newest one resumes to the same bytes.
  SyntheticTraceSource trace2(profile);
  const RunResult resumed = run_with_checkpoints(
      o, trace2, ckpt, find_latest_checkpoint(dir, "run"));
  EXPECT_EQ(csv_of(whole), csv_of(resumed));
}

TEST(CheckpointResumeTest, RestoreRefusesMismatchedConfig) {
  const auto profile = small_profile();
  const std::string dir = scratch_dir("refuse_config");
  {
    SyntheticTraceSource trace(profile);
    SimulationSession session(small_options("reqblock", false), trace);
    while (session.served() < 300 && session.step()) {
    }
    save_session_checkpoint(session, dir, "run", 2);
  }
  const std::string path = find_latest_checkpoint(dir, "run");

  // Different policy configuration: refused.
  SimOptions other = small_options("reqblock", false);
  other.policy.reqblock.delta = 9;
  SyntheticTraceSource trace(profile);
  SimulationSession session(other, trace);
  EXPECT_THROW(restore_session_checkpoint(session, path), SnapshotError);

  // Different trace content: refused.
  SyntheticTraceSource other_trace(small_profile(1500, 77));
  SimulationSession session2(small_options("reqblock", false), other_trace);
  EXPECT_THROW(restore_session_checkpoint(session2, path), SnapshotError);

  // Corrupt file: refused.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    bytes = os.str();
  }
  bytes[bytes.size() / 2] ^= 0x40;
  const std::string corrupt = dir + "/corrupt.ckpt.1";
  {
    std::ofstream out(corrupt, std::ios::binary);
    out << bytes;
  }
  SyntheticTraceSource trace3(profile);
  SimulationSession session3(small_options("reqblock", false), trace3);
  EXPECT_THROW(restore_session_checkpoint(session3, corrupt), SnapshotError);
}

// --- Resumable experiment matrix -------------------------------------------

std::vector<ExperimentCase> small_matrix() {
  std::vector<ExperimentCase> cases;
  for (const char* policy : {"lru", "bplru", "reqblock"}) {
    ExperimentCase c;
    c.profile = small_profile(1000);
    c.options = small_options(policy, false);
    c.label = policy;
    cases.push_back(std::move(c));
  }
  return cases;
}

std::string csv_of_all(const std::vector<RunResult>& rs) {
  std::ostringstream os;
  write_results_csv(os, rs);
  return os.str();
}

TEST(MatrixResumeTest, FreshRunMatchesRunCasesAndRerunLoadsFromDisk) {
  const auto cases = small_matrix();
  const auto plain = run_cases(cases, 1);

  const std::string dir = scratch_dir("matrix");
  CheckpointOptions ckpt;
  ckpt.dir = dir;
  ckpt.every_n_requests = 250;
  const auto resumable = run_cases_resumable(cases, ckpt);
  EXPECT_EQ(csv_of_all(plain), csv_of_all(resumable));

  // A rerun over the same directory loads stored results instead of
  // re-simulating: the result files must not be rewritten.
  const auto mtime_before = fs::last_write_time(dir + "/case_1.result");
  const auto again = run_cases_resumable(cases, ckpt);
  EXPECT_EQ(csv_of_all(plain), csv_of_all(again));
  EXPECT_EQ(fs::last_write_time(dir + "/case_1.result"), mtime_before);
}

TEST(MatrixResumeTest, ResumesInFlightCaseMidTrace) {
  const auto cases = small_matrix();
  const auto plain = run_cases(cases, 1);

  // Construct the exact on-disk state of a matrix killed inside case 1:
  // case 0 finished (manifest + stored result), case 1 checkpointed
  // mid-trace, case 2 untouched.
  const std::string dir = scratch_dir("matrix_inflight");
  {
    SyntheticTraceSource trace(cases[0].profile);
    SimulationSession session(cases[0].options, trace);
    while (session.step()) {
    }
    const RunResult r0 = session.finish();
    save_run_result(r0, dir + "/case_0.result", session.config_hash(),
                    session.trace_hash());
  }
  {
    SyntheticTraceSource trace(cases[1].profile);
    SimulationSession session(cases[1].options, trace);
    while (session.served() < 400 && session.step()) {
    }
    save_session_checkpoint(session, dir, "case_1", 2);
  }
  {
    // The manifest format is stable and documented; writing it here is a
    // regression test of that format.
    std::ofstream m(dir + "/manifest");
    m << "reqblock-matrix-manifest 1\n"
      << "matrix " << matrix_fingerprint(cases) << "\n"
      << "cases " << cases.size() << "\n"
      << "done 0\n";
  }

  CheckpointOptions ckpt;
  ckpt.dir = dir;
  ckpt.every_n_requests = 250;
  const auto resumed = run_cases_resumable(cases, ckpt);
  EXPECT_EQ(csv_of_all(plain), csv_of_all(resumed));
}

TEST(MatrixResumeTest, RefusesManifestOfDifferentMatrix) {
  const auto cases = small_matrix();
  const std::string dir = scratch_dir("matrix_refuse");
  CheckpointOptions ckpt;
  ckpt.dir = dir;
  run_cases_resumable(cases, ckpt);

  auto other = cases;
  other[2].options.policy.reqblock.delta = 9;
  EXPECT_THROW(run_cases_resumable(other, ckpt), SnapshotError);
}

TEST(MatrixResumeTest, StoredResultRoundTripsEveryField) {
  auto cases = small_matrix();
  cases[0].options.telemetry.trace.level = TraceLevel::kAll;
  cases[0].options.occupancy_log_interval = 100;
  SyntheticTraceSource trace(cases[0].profile);
  SimulationSession session(cases[0].options, trace);
  while (session.step()) {
  }
  const RunResult r = session.finish();

  const std::string path =
      scratch_dir("stored_result") + "/case_0.result";
  save_run_result(r, path, session.config_hash(), session.trace_hash());
  const RunResult loaded =
      load_run_result(path, session.config_hash(), session.trace_hash());

  EXPECT_EQ(csv_of(r), csv_of(loaded));
  EXPECT_EQ(loaded.telemetry.events.size(), r.telemetry.events.size());
  EXPECT_EQ(loaded.occupancy_series.size(), r.occupancy_series.size());

  EXPECT_THROW(load_run_result(path, session.config_hash() ^ 1,
                               session.trace_hash()),
               SnapshotError);
}

}  // namespace
}  // namespace reqblock
