#include "util/intrusive_list.h"

#include <gtest/gtest.h>

#include <vector>

namespace reqblock {
namespace {

struct Item {
  Item() = default;
  explicit Item(int v) : value(v) {}

  int value = 0;
  ListHook hook;
  ListHook other_hook;
};

using List = IntrusiveList<Item, &Item::hook>;
using OtherList = IntrusiveList<Item, &Item::other_hook>;

std::vector<int> values(const List& list) {
  std::vector<int> out;
  list.for_each([&](Item* i) { out.push_back(i->value); });
  return out;
}

TEST(IntrusiveListTest, StartsEmpty) {
  List list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.head(), nullptr);
  EXPECT_EQ(list.tail(), nullptr);
  EXPECT_EQ(list.pop_back(), nullptr);
  EXPECT_EQ(list.pop_front(), nullptr);
}

TEST(IntrusiveListTest, PushFrontOrdersMruFirst) {
  List list;
  Item a(1), b(2), c(3);
  list.push_front(&a);
  list.push_front(&b);
  list.push_front(&c);
  EXPECT_EQ(values(list), (std::vector<int>{3, 2, 1}));
  EXPECT_EQ(list.head(), &c);
  EXPECT_EQ(list.tail(), &a);
  EXPECT_EQ(list.size(), 3u);
}

TEST(IntrusiveListTest, PushBackAppends) {
  List list;
  Item a(1), b(2);
  list.push_back(&a);
  list.push_back(&b);
  EXPECT_EQ(values(list), (std::vector<int>{1, 2}));
}

TEST(IntrusiveListTest, EraseMiddle) {
  List list;
  Item a(1), b(2), c(3);
  list.push_back(&a);
  list.push_back(&b);
  list.push_back(&c);
  list.erase(&b);
  EXPECT_EQ(values(list), (std::vector<int>{1, 3}));
  EXPECT_FALSE(b.hook.linked());
  EXPECT_EQ(list.size(), 2u);
}

TEST(IntrusiveListTest, MoveToFront) {
  List list;
  Item a(1), b(2), c(3);
  list.push_back(&a);
  list.push_back(&b);
  list.push_back(&c);
  list.move_to_front(&c);
  EXPECT_EQ(values(list), (std::vector<int>{3, 1, 2}));
}

TEST(IntrusiveListTest, MoveToBack) {
  List list;
  Item a(1), b(2), c(3);
  list.push_back(&a);
  list.push_back(&b);
  list.push_back(&c);
  list.move_to_back(&a);
  EXPECT_EQ(values(list), (std::vector<int>{2, 3, 1}));
}

TEST(IntrusiveListTest, PopBackReturnsLru) {
  List list;
  Item a(1), b(2);
  list.push_front(&a);
  list.push_front(&b);
  EXPECT_EQ(list.pop_back(), &a);
  EXPECT_EQ(list.pop_back(), &b);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveListTest, NextPrevNavigation) {
  List list;
  Item a(1), b(2), c(3);
  list.push_back(&a);
  list.push_back(&b);
  list.push_back(&c);
  EXPECT_EQ(list.next(&a), &b);
  EXPECT_EQ(list.prev(&c), &b);
  EXPECT_EQ(list.next(&c), nullptr);
  EXPECT_EQ(list.prev(&a), nullptr);
}

TEST(IntrusiveListTest, TwoHooksIndependentMembership) {
  List list;
  OtherList other;
  Item a(1);
  list.push_front(&a);
  other.push_front(&a);
  list.erase(&a);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(other.head(), &a);
  EXPECT_TRUE(a.other_hook.linked());
  EXPECT_FALSE(a.hook.linked());
}

TEST(IntrusiveListTest, ReinsertAfterErase) {
  List list;
  Item a(1);
  list.push_front(&a);
  list.erase(&a);
  list.push_back(&a);
  EXPECT_EQ(list.tail(), &a);
  EXPECT_EQ(list.size(), 1u);
}

TEST(IntrusiveListTest, LargeChurn) {
  List list;
  std::vector<Item> items(1000);
  for (int i = 0; i < 1000; ++i) {
    items[static_cast<std::size_t>(i)].value = i;
    list.push_front(&items[static_cast<std::size_t>(i)]);
  }
  // Evict half from the tail.
  for (int i = 0; i < 500; ++i) {
    Item* t = list.pop_back();
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->value, i);
  }
  EXPECT_EQ(list.size(), 500u);
  EXPECT_EQ(list.tail()->value, 500);
}

}  // namespace
}  // namespace reqblock
