// Multi-tenant runs under the determinism and checkpoint contracts:
// byte-identical CSVs (global and per-tenant) at 1, 4, and hardware
// threads for every arbiter with and without faults and overload; a
// session checkpointed mid-burst with non-empty per-tenant queues
// snapshots byte-stably and resumes to byte-identical results; the config
// fingerprint covers every tenant knob; and a count-of-one tenant block
// leaves runs (and fingerprints) bit-identical to the default front end.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "sim/checkpoint.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/session.h"
#include "snapshot/snapshot.h"
#include "test_util.h"
#include "trace/synthetic.h"
#include "util/audit.h"

namespace reqblock {
namespace {

namespace fs = std::filesystem;

struct FullAuditScope {
  AuditLevel previous = set_audit_level(AuditLevel::kFull);
  ~FullAuditScope() { set_audit_level(previous); }
};

std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/mtckpt_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

WorkloadProfile base_profile(std::uint64_t requests = 3000) {
  WorkloadProfile p;
  p.name = "mt-base";
  p.total_requests = requests;
  p.seed = 23;
  p.write_ratio = 0.75;
  p.hot_extents = 96;
  p.cold_stream_pages = 1 << 15;
  p.mean_interarrival_ns = 140 * kMicrosecond;
  return p;
}

SimOptions tenant_options(ArbiterKind kind, bool faults, bool overload) {
  SimOptions o;
  o.ssd = testing::tiny_ssd();
  o.policy.name = "reqblock";
  o.policy.capacity_pages = 256;
  o.policy.pages_per_block = o.ssd.pages_per_block;
  o.cache.capacity_pages = 256;
  o.telemetry_env_override = false;
  o.tenants.count = 3;
  o.tenants.arbiter = kind;
  o.tenants.drr_quantum_pages = 8;
  TenantSpec noisy;
  noisy.weight = 1;
  noisy.rate = 3.0;
  noisy.burst_len = 150;
  noisy.burst_period = 900;
  noisy.burst_factor = 8.0;
  o.tenants.specs = {TenantSpec{.weight = 4}, TenantSpec{.weight = 2}, noisy};
  if (overload) {
    o.overload.queue_depth = 4;
    o.overload.deadline_ns = 3 * kMillisecond;
    o.overload.timeout_action = TimeoutAction::kRetry;
    o.overload.max_retries = 2;
    o.overload.retry_backoff_ns = 250 * kMicrosecond;
    o.overload.throttle = true;
  }
  if (faults) {
    o.fault.seed = 9;
    o.fault.program_fail_prob = 0.01;
    o.fault.power_loss_every_requests = 800;
  }
  return o;
}

std::string csvs_of(const std::vector<RunResult>& results) {
  std::ostringstream os;
  write_results_csv(os, results);
  write_tenant_csv(os, results);
  return os.str();
}

TEST(MultiTenantDeterminismTest, CsvByteIdenticalAcrossThreadCounts) {
  std::vector<ExperimentCase> cases;
  for (const ArbiterKind kind : {ArbiterKind::kRoundRobin,
                                 ArbiterKind::kWeighted,
                                 ArbiterKind::kDeficit}) {
    for (const bool faults : {false, true}) {
      for (const bool overload : {false, true}) {
        ExperimentCase c;
        c.profile = base_profile(1500);
        c.options = tenant_options(kind, faults, overload);
        c.label = std::string(to_string(kind)) + (faults ? "+f" : "") +
                  (overload ? "+ov" : "");
        cases.push_back(std::move(c));
      }
    }
  }
  const std::string serial = csvs_of(run_cases(cases, 1));
  EXPECT_EQ(serial, csvs_of(run_cases(cases, 4)));
  EXPECT_EQ(serial, csvs_of(run_cases(cases, 0)));  // hardware concurrency
  // The per-tenant export actually carries rows for every case.
  EXPECT_NE(serial.find(",t2,"), std::string::npos);
}

TEST(MultiTenantCheckpointTest, MidBurstSnapshotIsByteStable) {
  FullAuditScope audit_scope;
  for (const ArbiterKind kind : {ArbiterKind::kRoundRobin,
                                 ArbiterKind::kWeighted,
                                 ArbiterKind::kDeficit}) {
    SCOPED_TRACE(to_string(kind));
    const SimOptions o = tenant_options(kind, false, true);
    const WorkloadProfile p = base_profile();
    TenantStreams streams = make_tenant_streams(p, o.tenants);
    SimulationSession session(o, streams.sources);
    // Stop inside the noisy tenant's spike so several per-tenant queues
    // hold in-flight commands.
    while (session.served() < 1600 && session.step()) {
    }
    const auto depths = session.tenant_queue_depths();
    ASSERT_EQ(depths.size(), 3u);
    std::size_t busy = 0;
    for (const std::size_t d : depths) busy += d > 0 ? 1 : 0;
    ASSERT_GE(busy, 2u)
        << "checkpoint must land with non-empty per-tenant queues";

    SnapshotWriter w1;
    session.serialize(w1);
    const std::string bytes = w1.take();
    TenantStreams streams2 = make_tenant_streams(p, o.tenants);
    SimulationSession restored(o, streams2.sources);
    SnapshotReader r(bytes);
    restored.deserialize(r);
    EXPECT_EQ(restored.tenant_queue_depths(), depths);
    SnapshotWriter w2;
    restored.serialize(w2);
    EXPECT_EQ(bytes, w2.take()) << "serialize -> deserialize -> serialize "
                                   "must reproduce identical bytes";
  }
}

TEST(MultiTenantCheckpointTest, ResumeMidBurstMatchesUninterruptedCsv) {
  FullAuditScope audit_scope;
  for (const bool faults : {false, true}) {
    SCOPED_TRACE(faults ? "faults" : "fault-free");
    const SimOptions o = tenant_options(ArbiterKind::kDeficit, faults, true);
    const WorkloadProfile p = base_profile();

    TenantStreams whole_streams = make_tenant_streams(p, o.tenants);
    SimulationSession whole(o, whole_streams.sources);
    while (whole.step()) {
    }
    const RunResult whole_result = whole.finish();
    ASSERT_GT(whole_result.overload.admitted, 0u);

    const std::string dir = scratch_dir(faults ? "resume_f" : "resume_nf");
    {
      TenantStreams streams = make_tenant_streams(p, o.tenants);
      SimulationSession session(o, streams.sources);
      while (session.served() < 1600 && session.step()) {
      }
      EXPECT_GT(session.queue_in_flight(), 0u);
      save_session_checkpoint(session, dir, "run", 2);
    }
    TenantStreams streams = make_tenant_streams(p, o.tenants);
    SimulationSession session(o, streams.sources);
    restore_session_checkpoint(session, find_latest_checkpoint(dir, "run"));
    while (session.step()) {
    }
    EXPECT_EQ(csvs_of({whole_result}), csvs_of({session.finish()}));
  }
}

TEST(MultiTenantCheckpointTest, RestoreRefusesMismatchedTenantConfig) {
  const WorkloadProfile p = base_profile(1200);
  const SimOptions o = tenant_options(ArbiterKind::kDeficit, false, true);
  const std::string dir = scratch_dir("refuse");
  {
    TenantStreams streams = make_tenant_streams(p, o.tenants);
    SimulationSession session(o, streams.sources);
    while (session.served() < 500 && session.step()) {
    }
    save_session_checkpoint(session, dir, "run", 2);
  }
  const std::string path = find_latest_checkpoint(dir, "run");
  ASSERT_FALSE(path.empty());

  const auto refuse = [&](SimOptions other) {
    TenantStreams streams = make_tenant_streams(p, other.tenants);
    SimulationSession session(other, streams.sources);
    EXPECT_THROW(restore_session_checkpoint(session, path), SnapshotError);
  };
  SimOptions other = tenant_options(ArbiterKind::kRoundRobin, false, true);
  refuse(other);
  other = tenant_options(ArbiterKind::kDeficit, false, true);
  other.tenants.drr_quantum_pages = 16;
  refuse(other);
  other = tenant_options(ArbiterKind::kDeficit, false, true);
  other.tenants.specs[0].weight = 1;
  refuse(other);

  TenantStreams streams = make_tenant_streams(p, o.tenants);
  SimulationSession session(o, streams.sources);
  EXPECT_NO_THROW(restore_session_checkpoint(session, path));
}

TEST(MultiTenantCheckpointTest, FingerprintCoversEveryTenantKnob) {
  const SimOptions base = tenant_options(ArbiterKind::kDeficit, false, false);
  const std::uint64_t h = config_fingerprint(base);
  const auto differs = [&](auto mutate) {
    SimOptions o = tenant_options(ArbiterKind::kDeficit, false, false);
    mutate(o.tenants);
    EXPECT_NE(config_fingerprint(o), h);
  };
  differs([](TenantOptions& t) { t.count = 2; });
  differs([](TenantOptions& t) { t.arbiter = ArbiterKind::kWeighted; });
  differs([](TenantOptions& t) { t.drr_quantum_pages += 1; });
  differs([](TenantOptions& t) { t.specs[0].weight += 1; });
  differs([](TenantOptions& t) { t.specs[1].rate = 2.5; });
  differs([](TenantOptions& t) { t.specs[2].burst_len += 1; });
  differs([](TenantOptions& t) { t.specs[2].burst_period += 1; });
  differs([](TenantOptions& t) { t.specs[2].burst_factor = 9.0; });
}

TEST(MultiTenantCheckpointTest, SingleTenantBlockIsInert) {
  // A count-of-one tenant block — whatever its inert knobs say — must not
  // change the fingerprint or the run bytes relative to the default
  // front end: single-tenant runs stay bit-identical to pre-multi-queue
  // builds and their stored fingerprints.
  SimOptions plain = tenant_options(ArbiterKind::kDeficit, false, true);
  plain.tenants = TenantOptions{};
  SimOptions dressed = plain;
  dressed.tenants.arbiter = ArbiterKind::kDeficit;
  dressed.tenants.drr_quantum_pages = 99;
  dressed.tenants.specs = {TenantSpec{.weight = 7}};
  EXPECT_EQ(config_fingerprint(plain), config_fingerprint(dressed));

  const WorkloadProfile p = base_profile(1200);
  const auto run = [&](const SimOptions& o) {
    SyntheticTraceSource trace(p);
    SimulationSession session(o, trace);
    while (session.step()) {
    }
    return session.finish();
  };
  const RunResult a = run(plain);
  const RunResult b = run(dressed);
  EXPECT_TRUE(a.tenants.empty());
  EXPECT_EQ(csvs_of({a}), csvs_of({b}));
}

}  // namespace
}  // namespace reqblock
