#include "trace/profiles.h"

#include <gtest/gtest.h>

#include "trace/trace_stats.h"

namespace reqblock {
namespace {

// Validating every full-length profile is expensive; run each profile on a
// capped prefix and check it approximates the paper's Table 2 scalars.
class ProfileTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ProfileTest, WriteRatioTracksTable2) {
  const auto profile = profiles::by_name(GetParam()).capped(60000);
  const auto paper = profiles::paper_stats(GetParam());
  SyntheticTraceSource src(profile);
  const auto stats = TraceStatsCollector::collect(src);
  EXPECT_NEAR(stats.write_ratio(), paper.write_ratio, 0.03);
}

TEST_P(ProfileTest, MeanWriteSizeTracksTable2) {
  const auto profile = profiles::by_name(GetParam()).capped(60000);
  const auto paper = profiles::paper_stats(GetParam());
  SyntheticTraceSource src(profile);
  const auto stats = TraceStatsCollector::collect(src);
  // Within 35% of the published mean write size.
  EXPECT_NEAR(stats.mean_write_kb(), paper.write_size_kb,
              paper.write_size_kb * 0.35);
}

TEST_P(ProfileTest, FullLengthMatchesPaperRequestCount) {
  const auto profile = profiles::by_name(GetParam());
  const auto paper = profiles::paper_stats(GetParam());
  EXPECT_EQ(profile.total_requests, paper.requests);
}

TEST_P(ProfileTest, DeterministicFirstRequests) {
  const auto profile = profiles::by_name(GetParam()).capped(200);
  SyntheticTraceSource a(profile), b(profile);
  IoRequest ra, rb;
  while (a.next(ra)) {
    ASSERT_TRUE(b.next(rb));
    ASSERT_EQ(ra.lpn, rb.lpn);
    ASSERT_EQ(ra.pages, rb.pages);
    ASSERT_EQ(ra.arrival, rb.arrival);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileTest,
                         ::testing::Values("hm_1", "lun_1", "usr_0",
                                           "src1_2", "ts_0", "proj_0"));

TEST(ProfilesTest, AllReturnsSixInPaperOrder) {
  const auto all = profiles::all();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name, "hm_1");
  EXPECT_EQ(all[5].name, "proj_0");
  // Ordered by write ratio, as in Table 2.
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].write_ratio, all[i].write_ratio);
  }
}

TEST(ProfilesTest, UnknownNameThrows) {
  EXPECT_THROW(profiles::by_name("nope"), std::invalid_argument);
  EXPECT_THROW(profiles::paper_stats("nope"), std::invalid_argument);
}

TEST(ProfilesTest, RelativeWriteReuseOrderMatchesTable2) {
  // lun_1 is the paper's least write-reusable trace (Frequent (Wr) 12.8%);
  // its generated write reuse should be clearly below src1_2 (39.1%).
  auto lun = profiles::by_name("lun_1").capped(100000);
  auto src12 = profiles::by_name("src1_2").capped(100000);
  SyntheticTraceSource a(lun), b(src12);
  const auto sa = TraceStatsCollector::collect(a);
  const auto sb = TraceStatsCollector::collect(b);
  EXPECT_LT(sa.frequent_write_ratio, sb.frequent_write_ratio);
}

}  // namespace
}  // namespace reqblock
