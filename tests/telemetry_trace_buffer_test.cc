#include "telemetry/trace_buffer.h"

#include <gtest/gtest.h>

namespace reqblock {
namespace {

TraceEvent cache_event(SimTime at, Lpn lpn) {
  return {at, 0, lpn, 0, EventKind::kCacheHit, 0, 0};
}

TraceEvent flash_event(SimTime at, Lpn lpn) {
  return {at, 0, lpn, 0, EventKind::kPageProgram, 0, 0};
}

TEST(TraceBufferTest, OffGateAcceptsNothingAndAllocatesNothing) {
  TraceBuffer buf({TraceLevel::kOff, 1024, 1});
  EXPECT_FALSE(buf.any_enabled());
  EXPECT_FALSE(buf.enabled(EventCategory::kCache));
  EXPECT_FALSE(buf.enabled(EventCategory::kFlash));
  for (int i = 0; i < 1000; ++i) buf.emit(cache_event(i, i));
  EXPECT_EQ(buf.emitted(), 0u);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.allocated_capacity(), 0u);  // ring never reserved
  EXPECT_TRUE(buf.drain().empty());
}

TEST(TraceBufferTest, CategoryGateIsPerCategory) {
  TraceBuffer buf({TraceLevel::kCache, 1024, 1});
  EXPECT_TRUE(buf.enabled(EventCategory::kCache));
  EXPECT_FALSE(buf.enabled(EventCategory::kFlash));
  buf.emit(cache_event(1, 10));
  buf.emit(flash_event(2, 20));  // gated out
  const auto events = buf.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kCacheHit);

  TraceBuffer flash_only({TraceLevel::kFlash, 1024, 1});
  flash_only.emit(cache_event(1, 10));  // gated out
  flash_only.emit(flash_event(2, 20));
  ASSERT_EQ(flash_only.drain().size(), 1u);
  EXPECT_EQ(flash_only.drain()[0].kind, EventKind::kPageProgram);
}

TEST(TraceBufferTest, DrainIsOldestFirstBeforeWraparound) {
  TraceBuffer buf({TraceLevel::kAll, 16, 1});
  for (SimTime t = 0; t < 10; ++t) buf.emit(cache_event(t, t));
  const auto events = buf.drain();
  ASSERT_EQ(events.size(), 10u);
  for (SimTime t = 0; t < 10; ++t) EXPECT_EQ(events[t].at, t);
  EXPECT_EQ(buf.dropped(), 0u);
}

TEST(TraceBufferTest, WraparoundKeepsNewestCountsDropped) {
  TraceBuffer buf({TraceLevel::kAll, 8, 1});
  for (SimTime t = 0; t < 20; ++t) buf.emit(cache_event(t, t));
  EXPECT_EQ(buf.emitted(), 20u);
  EXPECT_EQ(buf.size(), 8u);
  EXPECT_EQ(buf.dropped(), 12u);
  const auto events = buf.drain();
  ASSERT_EQ(events.size(), 8u);
  // Survivors are the newest 8, still oldest-first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].at, static_cast<SimTime>(12 + i));
  }
}

TEST(TraceBufferTest, SamplingKeepsOneOfEveryN) {
  TraceBuffer buf({TraceLevel::kAll, 1024, 4});
  for (SimTime t = 0; t < 100; ++t) buf.emit(cache_event(t, t));
  EXPECT_EQ(buf.emitted(), 25u);
  EXPECT_EQ(buf.sampled_out(), 75u);
  const auto events = buf.drain();
  ASSERT_EQ(events.size(), 25u);
  // Deterministic: the first offered event of each period survives.
  EXPECT_EQ(events[0].at, 0u);
  EXPECT_EQ(events[1].at, 4u);
}

TEST(TraceBufferTest, SamplingIsPerCategory) {
  // A chatty flash layer must not consume the cache category's budget.
  TraceBuffer buf({TraceLevel::kAll, 1024, 2});
  buf.emit(cache_event(1, 1));   // cache offer #1 -> kept
  buf.emit(flash_event(2, 2));   // flash offer #1 -> kept
  buf.emit(flash_event(3, 3));   // flash offer #2 -> sampled out
  buf.emit(cache_event(4, 4));   // cache offer #2 -> sampled out
  buf.emit(cache_event(5, 5));   // cache offer #3 -> kept
  const auto events = buf.drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at, 1u);
  EXPECT_EQ(events[1].at, 2u);
  EXPECT_EQ(events[2].at, 5u);
}

TEST(TraceBufferTest, ClearResetsEverything) {
  TraceBuffer buf({TraceLevel::kAll, 8, 2});
  for (SimTime t = 0; t < 20; ++t) buf.emit(cache_event(t, t));
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.emitted(), 0u);
  EXPECT_EQ(buf.sampled_out(), 0u);
  EXPECT_EQ(buf.dropped(), 0u);
  EXPECT_TRUE(buf.drain().empty());
  // Sampling phase restarts too: next offer is kept again.
  buf.emit(cache_event(100, 100));
  EXPECT_EQ(buf.emitted(), 1u);
}

TEST(TraceBufferTest, SetTimeIsVisibleToEmitters) {
  TraceBuffer buf({TraceLevel::kAll, 8, 1});
  buf.set_time(12345);
  EXPECT_EQ(buf.time(), 12345u);
  buf.emit({buf.time(), 0, 1, 0, EventKind::kReqBlockPromote, 0, 0});
  EXPECT_EQ(buf.drain()[0].at, 12345u);
}

TEST(TraceLevelTest, ParseRoundTripsAndFallsBack) {
  EXPECT_EQ(parse_trace_level("off", TraceLevel::kAll), TraceLevel::kOff);
  EXPECT_EQ(parse_trace_level("cache", TraceLevel::kOff), TraceLevel::kCache);
  EXPECT_EQ(parse_trace_level("flash", TraceLevel::kOff), TraceLevel::kFlash);
  EXPECT_EQ(parse_trace_level("all", TraceLevel::kOff), TraceLevel::kAll);
  EXPECT_EQ(parse_trace_level("ALL", TraceLevel::kOff), TraceLevel::kAll);
  EXPECT_EQ(parse_trace_level("on", TraceLevel::kOff), TraceLevel::kAll);
  EXPECT_EQ(parse_trace_level("0", TraceLevel::kAll), TraceLevel::kOff);
  EXPECT_EQ(parse_trace_level("bogus", TraceLevel::kCache),
            TraceLevel::kCache);
  EXPECT_EQ(parse_trace_level("", TraceLevel::kFlash), TraceLevel::kFlash);
}

TEST(TraceEventTest, CategoryOfSplitsAtPageRead) {
  EXPECT_EQ(category_of(EventKind::kCacheHit), EventCategory::kCache);
  EXPECT_EQ(category_of(EventKind::kReqBlockBatchEvict),
            EventCategory::kCache);
  EXPECT_EQ(category_of(EventKind::kPageRead), EventCategory::kFlash);
  EXPECT_EQ(category_of(EventKind::kGcMove), EventCategory::kFlash);
}

}  // namespace
}  // namespace reqblock
