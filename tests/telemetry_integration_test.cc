// End-to-end telemetry: the event stream, the metric snapshots, and the
// self-profile must reconcile with the aggregates the simulator already
// reports. Any drift means an instrumentation point was lost or doubled.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <utility>

#include "sim/simulator.h"
#include "test_util.h"
#include "trace/vector_source.h"
#include "util/rng.h"

namespace reqblock {
namespace {

std::vector<IoRequest> churn_workload(std::uint64_t requests, Lpn footprint,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<IoRequest> out;
  out.reserve(requests);
  for (std::uint64_t id = 0; id < requests; ++id) {
    IoRequest r;
    r.id = id;
    r.arrival = static_cast<SimTime>(id) * 400 * kMicrosecond;
    r.type = rng.next_bool(0.85) ? IoType::kWrite : IoType::kRead;
    r.pages = static_cast<std::uint32_t>(rng.next_in(1, 6));
    r.lpn = rng.next_below(footprint - r.pages + 1);
    out.push_back(r);
  }
  return out;
}

SimOptions traced_options(const std::string& policy) {
  SimOptions o;
  o.ssd = testing::micro_ssd();
  o.policy.name = policy;
  o.policy.capacity_pages = 128;
  o.policy.pages_per_block = o.ssd.pages_per_block;
  o.cache.capacity_pages = 128;
  o.telemetry.trace.level = TraceLevel::kAll;
  o.telemetry.trace.capacity = 1u << 22;  // never wraps in these runs
  o.telemetry_env_override = false;       // deterministic under any env
  return o;
}

std::map<EventKind, std::uint64_t> count_by_kind(
    const std::vector<TraceEvent>& events) {
  std::map<EventKind, std::uint64_t> out;
  for (const auto& e : events) ++out[e.kind];
  return out;
}

class TelemetryReconcile : public ::testing::TestWithParam<std::string> {};

TEST_P(TelemetryReconcile, EventCountsMatchRunAggregates) {
  const auto cfg = testing::micro_ssd();
  VectorTraceSource trace(
      churn_workload(12000, cfg.total_pages() * 6 / 10, 77), "churn");
  SimOptions o = traced_options(GetParam());
  Simulator sim(o);
  const RunResult r = sim.run(trace);

  ASSERT_FALSE(r.telemetry.events.empty());
  EXPECT_EQ(r.telemetry.events_dropped, 0u) << "ring wrapped; grow capacity";
  EXPECT_EQ(r.telemetry.events_sampled_out, 0u);
  EXPECT_EQ(r.telemetry.events.size(), r.telemetry.events_emitted);

  auto n = count_by_kind(r.telemetry.events);
  EXPECT_EQ(n[EventKind::kCacheHit], r.cache.page_hits);
  EXPECT_EQ(n[EventKind::kCacheMiss],
            r.cache.page_lookups - r.cache.page_hits);
  EXPECT_EQ(n[EventKind::kCacheInsert], r.cache.inserts);
  EXPECT_EQ(n[EventKind::kCacheBypass], r.cache.bypass_pages);
  EXPECT_EQ(n[EventKind::kCacheEvict], r.cache.evictions);
  EXPECT_EQ(n[EventKind::kPageRead], r.flash.host_page_reads);
  EXPECT_EQ(n[EventKind::kPageProgram], r.flash.host_page_writes);
  EXPECT_EQ(n[EventKind::kGcMove], r.flash.gc_page_moves);
  EXPECT_EQ(n[EventKind::kBlockErase], r.flash.erases);
  EXPECT_EQ(n[EventKind::kGcStart], n[EventKind::kGcEnd]);
  EXPECT_GT(r.flash.gc_page_moves, 0u) << "workload failed to pressure GC";

  // Flush events carry the flushed page count in arg; the sum must equal
  // the aggregate, and evicted pages ride kCacheEvict the same way.
  std::uint64_t flushed = 0, evicted = 0;
  for (const auto& e : r.telemetry.events) {
    if (e.kind == EventKind::kCacheFlush) flushed += e.arg;
    if (e.kind == EventKind::kCacheEvict) evicted += e.arg;
  }
  EXPECT_EQ(flushed, r.cache.flushed_pages);
  EXPECT_EQ(evicted, r.cache.evicted_pages);

  // Every event starts inside the simulated range.
  for (const auto& e : r.telemetry.events) {
    EXPECT_LE(e.at, r.sim_end);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, TelemetryReconcile,
                         ::testing::Values("reqblock", "lru", "cflru"));

TEST(TelemetryIntegrationTest, WarmupEventsAreDiscarded) {
  const auto cfg = testing::micro_ssd();
  VectorTraceSource trace(
      churn_workload(8000, cfg.total_pages() / 2, 99), "churn");
  SimOptions o = traced_options("reqblock");
  o.warmup_requests = 3000;
  Simulator sim(o);
  const RunResult r = sim.run(trace);

  // Reconciliation holds against the post-warmup aggregates: the trace
  // buffer is cleared exactly when the counters are.
  auto n = count_by_kind(r.telemetry.events);
  EXPECT_EQ(n[EventKind::kCacheHit], r.cache.page_hits);
  EXPECT_EQ(n[EventKind::kCacheInsert], r.cache.inserts);
  EXPECT_EQ(n[EventKind::kPageProgram], r.flash.host_page_writes);
  EXPECT_EQ(n[EventKind::kBlockErase], r.flash.erases);
}

TEST(TelemetryIntegrationTest, OffLevelCollectsAndAllocatesNothing) {
  const auto cfg = testing::micro_ssd();
  VectorTraceSource trace(
      churn_workload(4000, cfg.total_pages() / 2, 5), "churn");
  SimOptions o = traced_options("reqblock");
  o.telemetry.trace.level = TraceLevel::kOff;
  Simulator sim(o);
  const RunResult r = sim.run(trace);
  EXPECT_TRUE(r.telemetry.events.empty());
  EXPECT_EQ(r.telemetry.events_emitted, 0u);
  EXPECT_TRUE(r.telemetry.snapshots.empty());
  EXPECT_TRUE(r.telemetry.profile.empty());
  EXPECT_TRUE(r.telemetry.empty());
}

TEST(TelemetryIntegrationTest, CacheLevelExcludesFlashEvents) {
  const auto cfg = testing::micro_ssd();
  VectorTraceSource trace(
      churn_workload(4000, cfg.total_pages() / 2, 5), "churn");
  SimOptions o = traced_options("reqblock");
  o.telemetry.trace.level = TraceLevel::kCache;
  Simulator sim(o);
  const RunResult r = sim.run(trace);
  ASSERT_FALSE(r.telemetry.events.empty());
  for (const auto& e : r.telemetry.events) {
    EXPECT_EQ(category_of(e.kind), EventCategory::kCache);
  }
}

TEST(TelemetryIntegrationTest, SnapshotsReproduceOccupancySeries) {
  const auto cfg = testing::micro_ssd();
  VectorTraceSource trace(
      churn_workload(10000, cfg.total_pages() / 2, 31), "churn");
  SimOptions o = traced_options("reqblock");
  o.telemetry.trace.level = TraceLevel::kOff;
  o.occupancy_log_interval = 500;               // existing Fig. 13 probe
  o.telemetry.snapshot_every_requests = 500;    // generalized probe
  Simulator sim(o);
  const RunResult r = sim.run(trace);

  const MetricsSeries& s = r.telemetry.snapshots;
  ASSERT_FALSE(s.empty());
  ASSERT_EQ(s.rows.size(), r.occupancy_series.size());
  const std::array<std::pair<const char*,
                             std::uint64_t ListOccupancy::*>, 6> cols = {{
      {"list.irl_pages", &ListOccupancy::irl_pages},
      {"list.srl_pages", &ListOccupancy::srl_pages},
      {"list.drl_pages", &ListOccupancy::drl_pages},
      {"list.irl_blocks", &ListOccupancy::irl_blocks},
      {"list.srl_blocks", &ListOccupancy::srl_blocks},
      {"list.drl_blocks", &ListOccupancy::drl_blocks},
  }};
  for (const auto& [name, member] : cols) {
    const std::size_t c = s.column_index(name);
    ASSERT_NE(c, MetricsSeries::npos) << name;
    for (std::size_t i = 0; i < s.rows.size(); ++i) {
      EXPECT_DOUBLE_EQ(
          s.rows[i].values[c],
          static_cast<double>(r.occupancy_series[i].*member))
          << name << " row " << i;
    }
  }
  // The request spine matches the probe interval.
  for (std::size_t i = 0; i < s.rows.size(); ++i) {
    EXPECT_EQ(s.rows[i].request, (i + 1) * 500);
  }
}

TEST(TelemetryIntegrationTest, SnapshotColumnsCoverCacheAndFlash) {
  const auto cfg = testing::micro_ssd();
  VectorTraceSource trace(
      churn_workload(3000, cfg.total_pages() / 2, 8), "churn");
  SimOptions o = traced_options("reqblock");
  o.telemetry.trace.level = TraceLevel::kOff;
  o.telemetry.snapshot_every_requests = 1000;
  Simulator sim(o);
  const RunResult r = sim.run(trace);

  const MetricsSeries& s = r.telemetry.snapshots;
  ASSERT_EQ(s.rows.size(), 3u);
  for (const char* name :
       {"cache.hit_ratio", "cache.inserts", "cache.evictions",
        "flash.host_page_writes", "flash.waf", "flash.free_blocks",
        "policy.pages", "policy.blocks", "list.irl_pages"}) {
    EXPECT_NE(s.column_index(name), MetricsSeries::npos) << name;
  }
  // Final snapshot row agrees with the end-of-run aggregates for the
  // monotone counters (the last row is taken at the last request).
  const auto& last = s.rows.back();
  EXPECT_DOUBLE_EQ(last.values[s.column_index("cache.inserts")],
                   static_cast<double>(r.cache.inserts));
  // Rows carry values for every column.
  for (const auto& row : s.rows) {
    ASSERT_EQ(row.values.size(), s.columns.size());
  }
}

TEST(TelemetryIntegrationTest, ProfilerReportsHotSections) {
  const auto cfg = testing::micro_ssd();
  VectorTraceSource trace(
      churn_workload(6000, cfg.total_pages() / 2, 13), "churn");
  SimOptions o = traced_options("reqblock");
  o.telemetry.trace.level = TraceLevel::kOff;
  o.telemetry.profile = true;
  Simulator sim(o);
  const RunResult r = sim.run(trace);

  ASSERT_FALSE(r.telemetry.profile.empty());
  std::map<std::string, ProfileReport::Entry> by_name;
  for (const auto& e : r.telemetry.profile.entries) by_name[e.section] = e;
  ASSERT_TRUE(by_name.contains("cache_serve"));
  EXPECT_EQ(by_name["cache_serve"].calls, r.requests);
  EXPECT_TRUE(by_name.contains("evict_flush"));
  EXPECT_TRUE(by_name.contains("ftl_program"));
  EXPECT_TRUE(by_name.contains("gc"));
}

TEST(TelemetryIntegrationTest, SamplingAndWrapStatsSurviveIntoResult) {
  const auto cfg = testing::micro_ssd();
  VectorTraceSource trace(
      churn_workload(6000, cfg.total_pages() / 2, 21), "churn");
  SimOptions o = traced_options("reqblock");
  o.telemetry.trace.capacity = 256;  // force wraparound
  o.telemetry.trace.sample_period = 3;
  Simulator sim(o);
  const RunResult r = sim.run(trace);

  EXPECT_EQ(r.telemetry.events.size(), 256u);
  EXPECT_GT(r.telemetry.events_dropped, 0u);
  EXPECT_GT(r.telemetry.events_sampled_out, 0u);
  EXPECT_EQ(r.telemetry.events_emitted,
            r.telemetry.events.size() + r.telemetry.events_dropped);
}

}  // namespace
}  // namespace reqblock
