// Pre-existing (pre-conditioned) data ranges in the FTL.
#include <gtest/gtest.h>

#include "ssd/ftl.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "trace/synthetic.h"

namespace reqblock {
namespace {

using testing::tiny_ssd;

TEST(PreexistingTest, ReadInsideRangeCostsFlashRead) {
  const auto cfg = tiny_ssd();
  Ftl ftl(cfg);
  ftl.add_preexisting_range(1000, 2000);
  const auto rr = ftl.read_page(1500, 0);
  EXPECT_TRUE(rr.mapped);
  EXPECT_EQ(rr.version, 0u);
  EXPECT_EQ(rr.complete, cfg.read_latency + cfg.page_transfer_time());
  EXPECT_EQ(ftl.metrics().host_page_reads, 1u);
  EXPECT_EQ(ftl.metrics().unmapped_reads, 0u);
}

TEST(PreexistingTest, ReadOutsideRangeStaysUnmapped) {
  Ftl ftl(tiny_ssd());
  ftl.add_preexisting_range(1000, 2000);
  EXPECT_FALSE(ftl.read_page(999, 0).mapped);
  EXPECT_FALSE(ftl.read_page(2000, 0).mapped);  // end is exclusive
  EXPECT_TRUE(ftl.read_page(1000, 0).mapped);   // begin is inclusive
  EXPECT_TRUE(ftl.read_page(1999, 0).mapped);
  EXPECT_EQ(ftl.metrics().unmapped_reads, 2u);
}

TEST(PreexistingTest, MultipleRangesBinarySearch) {
  Ftl ftl(tiny_ssd());
  ftl.add_preexisting_range(5000, 6000);
  ftl.add_preexisting_range(100, 200);
  ftl.add_preexisting_range(1000, 2000);
  EXPECT_TRUE(ftl.read_page(150, 0).mapped);
  EXPECT_TRUE(ftl.read_page(1500, 0).mapped);
  EXPECT_TRUE(ftl.read_page(5500, 0).mapped);
  EXPECT_FALSE(ftl.read_page(500, 0).mapped);
  EXPECT_FALSE(ftl.read_page(2500, 0).mapped);
  EXPECT_FALSE(ftl.read_page(9999, 0).mapped);
}

TEST(PreexistingTest, InTraceWriteTakesOver) {
  Ftl ftl(tiny_ssd());
  ftl.add_preexisting_range(1000, 2000);
  ftl.program_page(1500, 7, 0);
  const auto rr = ftl.read_page(1500, 1 * kSecond);
  EXPECT_TRUE(rr.mapped);
  EXPECT_EQ(rr.version, 7u);  // the real mapping wins over the range
}

TEST(PreexistingTest, EmptyRangeRejected) {
  Ftl ftl(tiny_ssd());
  EXPECT_THROW(ftl.add_preexisting_range(10, 10), std::logic_error);
  EXPECT_THROW(ftl.add_preexisting_range(20, 10), std::logic_error);
}

TEST(PreexistingTest, SimulatorWiresRangesFromTrace) {
  WorkloadProfile profile;
  profile.name = "pre";
  profile.total_requests = 5000;
  profile.seed = 11;
  profile.write_ratio = 0.2;
  profile.hot_extents = 128;
  profile.cold_stream_pages = 1 << 14;
  profile.read_hot_fraction = 0.1;  // mostly cold scans
  profile.preexisting_cold_data = true;
  SyntheticTraceSource trace(profile);

  // Ranges must cover every stream region.
  const auto ranges = trace.preexisting_ranges();
  ASSERT_EQ(ranges.size(), profile.stream_count);
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(end - begin, profile.cold_stream_pages);
    EXPECT_GE(begin, profile.hot_region_pages());
  }

  SimOptions o;
  o.ssd = testing::tiny_ssd();
  o.policy.name = "lru";
  o.policy.capacity_pages = 256;
  o.cache.capacity_pages = 256;
  Simulator sim(o);
  const RunResult r = sim.run(trace);
  // Cold scans of pre-existing data are timed flash reads, not unmapped.
  EXPECT_GT(r.flash.host_page_reads, r.flash.unmapped_reads);
}

TEST(PreexistingTest, DisabledProfileExposesNoRanges) {
  WorkloadProfile profile;
  profile.total_requests = 10;
  profile.preexisting_cold_data = false;
  SyntheticTraceSource trace(profile);
  EXPECT_TRUE(trace.preexisting_ranges().empty());
}

}  // namespace
}  // namespace reqblock
