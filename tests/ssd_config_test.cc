#include "ssd/config.h"

#include <gtest/gtest.h>

namespace reqblock {
namespace {

TEST(SsdConfigTest, PaperDefaultMatchesTable1) {
  const auto cfg = SsdConfig::paper_default();
  EXPECT_EQ(cfg.channels, 8u);
  EXPECT_EQ(cfg.chips_per_channel, 2u);
  EXPECT_EQ(cfg.pages_per_block, 64u);
  EXPECT_EQ(cfg.page_size, 4096u);
  EXPECT_EQ(cfg.capacity_bytes, 128ULL << 30);
  EXPECT_EQ(cfg.read_latency, 75 * kMicrosecond);
  EXPECT_EQ(cfg.program_latency, 2 * kMillisecond);
  EXPECT_EQ(cfg.erase_latency, 15 * kMillisecond);
  EXPECT_EQ(cfg.transfer_per_byte, 10);
  EXPECT_DOUBLE_EQ(cfg.gc_free_threshold, 0.10);
}

TEST(SsdConfigTest, DerivedGeometry) {
  const auto cfg = SsdConfig::paper_default();
  EXPECT_EQ(cfg.total_chips(), 16u);
  EXPECT_EQ(cfg.total_planes(), 16u);
  EXPECT_EQ(cfg.total_pages(), (128ULL << 30) / 4096);
  EXPECT_EQ(cfg.total_blocks(), cfg.total_pages() / 64);
  EXPECT_EQ(cfg.blocks_per_plane() * cfg.total_planes(), cfg.total_blocks());
}

TEST(SsdConfigTest, PageTransferTimeIncludesCommandOverhead) {
  const auto cfg = SsdConfig::paper_default();
  EXPECT_EQ(cfg.page_transfer_time(), 4096 * 10 + cfg.command_overhead);
}

TEST(SsdConfigTest, GcThresholdBlocksIsTenPercent) {
  const auto cfg = SsdConfig::paper_default();
  const auto expected = static_cast<std::uint64_t>(
      cfg.blocks_per_plane() / 10);
  EXPECT_NEAR(static_cast<double>(cfg.gc_threshold_blocks()),
              static_cast<double>(expected), 1.0);
}

TEST(SsdConfigTest, GcThresholdNeverBelowTwo) {
  SsdConfig cfg;
  cfg.capacity_bytes = 16ULL * 64 * 16 * 4096;  // 16 blocks per plane
  cfg.gc_free_threshold = 0.01;
  EXPECT_EQ(cfg.gc_threshold_blocks(), 2u);
}

TEST(SsdConfigTest, ValidationRejectsBadGeometry) {
  SsdConfig cfg = SsdConfig::paper_default();
  cfg.channels = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SsdConfig::paper_default();
  cfg.capacity_bytes += 1;  // not page aligned
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SsdConfig::paper_default();
  cfg.page_size = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SsdConfig::paper_default();
  cfg.gc_free_threshold = 0.9;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SsdConfig::paper_default();
  cfg.read_latency = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SsdConfigTest, ExperimentDefaultKeepsGeometryRatios) {
  const auto exp = SsdConfig::experiment_default();
  const auto paper = SsdConfig::paper_default();
  EXPECT_EQ(exp.channels, paper.channels);
  EXPECT_EQ(exp.chips_per_channel, paper.chips_per_channel);
  EXPECT_EQ(exp.pages_per_block, paper.pages_per_block);
  EXPECT_EQ(exp.read_latency, paper.read_latency);
  EXPECT_EQ(exp.program_latency, paper.program_latency);
  EXPECT_LT(exp.capacity_bytes, paper.capacity_bytes);
}

}  // namespace
}  // namespace reqblock
