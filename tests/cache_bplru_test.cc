#include "cache/bplru.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace reqblock {
namespace {

using testing::write_req;

TEST(BplruPolicyTest, BlockLevelLruEviction) {
  BplruPolicy p(8);
  p.on_insert(0, write_req(0, 0, 1), true);    // block 0
  p.on_insert(8, write_req(1, 8, 1), true);    // block 1
  p.on_insert(16, write_req(2, 16, 1), true);  // block 2
  p.on_hit(0, write_req(3, 0, 1), false);      // promote block 0
  const auto v = p.select_victim();
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v.pages[0], 8u);  // block 1 is LRU
}

TEST(BplruPolicyTest, VictimIsColocatedNoPaddingByDefault) {
  BplruPolicy p(8);
  p.on_insert(0, write_req(0, 0, 1), true);
  p.on_insert(3, write_req(1, 3, 1), true);
  const auto v = p.select_victim();
  EXPECT_TRUE(v.colocate);
  ASSERT_EQ(v.pages.size(), 2u);
  EXPECT_TRUE(v.padding_reads.empty());
}

TEST(BplruPolicyTest, PaddingModeRequestsMissingPages) {
  BplruOptions opts;
  opts.page_padding = true;
  BplruPolicy p(8, opts);
  p.on_insert(0, write_req(0, 0, 1), true);
  p.on_insert(3, write_req(1, 3, 1), true);
  const auto v = p.select_victim();
  EXPECT_TRUE(v.colocate);
  ASSERT_EQ(v.pages.size(), 2u);
  // Padding requests the 6 missing pages of block 0.
  EXPECT_EQ(v.padding_reads.size(), 6u);
  for (const Lpn l : v.padding_reads) {
    EXPECT_LT(l, 8u);
    EXPECT_NE(l, 0u);
    EXPECT_NE(l, 3u);
  }
}

TEST(BplruPolicyTest, SequentialFullBlockDemotedToTail) {
  BplruPolicy p(4);
  // Fill block 2 fully in order -> demoted.
  for (Lpn l = 8; l < 12; ++l) p.on_insert(l, write_req(0, l, 1), true);
  EXPECT_TRUE(p.is_sequential_demoted(2));
  // Insert another block afterwards; the sequential block still evicts
  // first because demotion put it at the tail.
  p.on_insert(0, write_req(1, 0, 1), true);
  const auto v = p.select_victim();
  EXPECT_EQ(v.pages.size(), 4u);
  EXPECT_EQ(*std::min_element(v.pages.begin(), v.pages.end()), 8u);
}

TEST(BplruPolicyTest, OutOfOrderWritesAreNotSequential) {
  BplruPolicy p(4);
  p.on_insert(9, write_req(0, 9, 1), true);  // offset 1 first
  p.on_insert(8, write_req(0, 8, 1), true);
  p.on_insert(10, write_req(0, 10, 1), true);
  p.on_insert(11, write_req(0, 11, 1), true);
  EXPECT_FALSE(p.is_sequential_demoted(2));
}

TEST(BplruPolicyTest, RewriteBreaksSequentialFlag) {
  BplruPolicy p(4);
  for (Lpn l = 8; l < 12; ++l) p.on_insert(l, write_req(0, l, 1), true);
  EXPECT_TRUE(p.is_sequential_demoted(2));
  p.on_hit(9, write_req(1, 9, 1), true);  // rewrite
  EXPECT_FALSE(p.is_sequential_demoted(2));
  // And the block is now MRU: a different block should evict first.
  p.on_insert(0, write_req(2, 0, 1), true);
  p.on_insert(4, write_req(3, 4, 1), true);
  p.on_hit(0, write_req(4, 0, 1), false);
  p.on_hit(9, write_req(5, 9, 1), false);
  const auto v = p.select_victim();
  EXPECT_EQ(v.pages[0], 4u);  // block 1 became LRU
}

TEST(BplruPolicyTest, FullyCachedBlockHasNoPadding) {
  BplruOptions opts;
  opts.page_padding = true;
  BplruPolicy p(4, opts);
  for (Lpn l = 0; l < 4; ++l) p.on_insert(l, write_req(0, l, 1), true);
  const auto v = p.select_victim();
  EXPECT_EQ(v.pages.size(), 4u);
  EXPECT_TRUE(v.padding_reads.empty());
}

TEST(BplruPolicyTest, PagesAndMetadata) {
  BplruPolicy p(8);
  p.on_insert(0, write_req(0, 0, 1), true);
  p.on_insert(1, write_req(0, 1, 1), true);
  p.on_insert(8, write_req(1, 8, 1), true);
  EXPECT_EQ(p.pages(), 3u);
  EXPECT_EQ(p.metadata_bytes(), 48u);  // two block nodes x 24 B
  p.select_victim();
  EXPECT_EQ(p.metadata_bytes(), 24u);
}

TEST(BplruPolicyTest, EmptyVictim) {
  BplruPolicy p(8);
  EXPECT_TRUE(p.select_victim().empty());
}

TEST(BplruPolicyTest, PageAccountingByDefault) {
  BplruPolicy p(8);
  p.on_insert(0, write_req(0, 0, 1), true);
  p.on_insert(16, write_req(1, 16, 1), true);
  EXPECT_EQ(p.occupied_pages(), 2u);
}

TEST(BplruPolicyTest, BlockUnitAllocationReservesWholeBlocks) {
  BplruOptions opts;
  opts.block_unit_allocation = true;
  BplruPolicy p(8, opts);
  p.on_insert(0, write_req(0, 0, 1), true);   // block 0: 1 page
  p.on_insert(16, write_req(1, 16, 1), true); // block 2: 1 page
  EXPECT_EQ(p.pages(), 2u);
  EXPECT_EQ(p.occupied_pages(), 16u);  // two full 8-page block units
  p.select_victim();
  EXPECT_EQ(p.occupied_pages(), 8u);
}

TEST(BplruPolicyTest, BlockUnitAllocationLimitsResidency) {
  // Through the manager: capacity 16 pages = two 8-page block units, so
  // sparse blocks evict each other even though few pages are cached.
  testing::Harness h(testing::policy_config("bplru", 16, 8));
  auto* policy = dynamic_cast<BplruPolicy*>(&h.cache->policy());
  ASSERT_NE(policy, nullptr);
  // Default is page accounting; rebuild with unit allocation via config.
  PolicyConfig cfg = testing::policy_config("bplru", 16, 8);
  cfg.bplru.block_unit_allocation = true;
  testing::Harness h2(cfg);
  for (std::uint64_t i = 0; i < 6; ++i) {
    h2.serve(testing::write_req(i, i * 8, 1,
                                static_cast<SimTime>(i) * kSecond));
    // At most 2 sparse blocks resident at any time.
    ASSERT_LE(h2.cache->cached_pages(), 2u);
  }
}

}  // namespace
}  // namespace reqblock
