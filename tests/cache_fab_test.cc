#include "cache/fab.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace reqblock {
namespace {

using testing::write_req;

TEST(FabPolicyTest, EvictsLargestGroup) {
  FabPolicy fab(/*pages_per_block=*/8);
  // Block 0: pages 0..2 (3 pages). Block 1: pages 8..12 (5 pages).
  for (Lpn l = 0; l < 3; ++l) fab.on_insert(l, write_req(0, l, 1), true);
  for (Lpn l = 8; l < 13; ++l) fab.on_insert(l, write_req(1, l, 1), true);
  const auto v = fab.select_victim();
  EXPECT_EQ(v.pages.size(), 5u);
  for (const Lpn l : v.pages) {
    EXPECT_GE(l, 8u);
    EXPECT_LT(l, 13u);
  }
  EXPECT_EQ(fab.pages(), 3u);
}

TEST(FabPolicyTest, TieBrokenBySmallestBlockId) {
  FabPolicy fab(8);
  for (Lpn l = 16; l < 18; ++l) fab.on_insert(l, write_req(0, l, 1), true);
  for (Lpn l = 0; l < 2; ++l) fab.on_insert(l, write_req(1, l, 1), true);
  // Both groups hold 2 pages; block 0 < block 2.
  const auto v = fab.select_victim();
  ASSERT_EQ(v.pages.size(), 2u);
  EXPECT_LT(*std::max_element(v.pages.begin(), v.pages.end()), 8u);
}

TEST(FabPolicyTest, RecencyIgnored) {
  FabPolicy fab(8);
  for (Lpn l = 0; l < 4; ++l) fab.on_insert(l, write_req(0, l, 1), true);
  fab.on_insert(8, write_req(1, 8, 1), true);
  // Heavy hits on the big group change nothing: it is still evicted first.
  for (int i = 0; i < 10; ++i) fab.on_hit(0, write_req(2, 0, 1), true);
  EXPECT_EQ(fab.select_victim().pages.size(), 4u);
}

TEST(FabPolicyTest, GroupSizeQuery) {
  FabPolicy fab(8);
  fab.on_insert(0, write_req(0, 0, 1), true);
  fab.on_insert(1, write_req(0, 1, 1), true);
  EXPECT_EQ(fab.group_size(0), 2u);
  EXPECT_EQ(fab.group_size(7), 0u);
}

TEST(FabPolicyTest, MetadataPerGroup) {
  FabPolicy fab(8);
  fab.on_insert(0, write_req(0, 0, 1), true);   // block 0
  fab.on_insert(9, write_req(1, 9, 1), true);   // block 1
  EXPECT_EQ(fab.metadata_bytes(), 48u);
}

TEST(FabPolicyTest, EmptyVictim) {
  FabPolicy fab(8);
  EXPECT_TRUE(fab.select_victim().empty());
}

}  // namespace
}  // namespace reqblock
