// Unit tests for the audit framework itself (src/util/audit.h): level
// gating, env-string parsing, report collection, lazy dumps, the RAII
// scope, and — the payoff — that a deliberately corrupted ReqBlockPolicy
// is caught by its own audit with a report naming the broken invariant.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/req_block_policy.h"
#include "test_util.h"
#include "util/audit.h"

namespace reqblock::testing {
namespace {

class AuditLevelGuard {
 public:
  explicit AuditLevelGuard(AuditLevel level)
      : previous_(set_audit_level(level)) {}
  ~AuditLevelGuard() { set_audit_level(previous_); }

 private:
  AuditLevel previous_;
};

TEST(AuditLevelControl, ParseRecognizesAllSpellings) {
  const AuditLevel fb = AuditLevel::kLight;
  EXPECT_EQ(parse_audit_level("off", fb), AuditLevel::kOff);
  EXPECT_EQ(parse_audit_level("0", fb), AuditLevel::kOff);
  EXPECT_EQ(parse_audit_level("none", fb), AuditLevel::kOff);
  EXPECT_EQ(parse_audit_level("light", fb), AuditLevel::kLight);
  EXPECT_EQ(parse_audit_level("1", fb), AuditLevel::kLight);
  EXPECT_EQ(parse_audit_level("full", fb), AuditLevel::kFull);
  EXPECT_EQ(parse_audit_level("2", fb), AuditLevel::kFull);
  EXPECT_EQ(parse_audit_level("on", fb), AuditLevel::kFull);
  EXPECT_EQ(parse_audit_level("", fb), fb);
  EXPECT_EQ(parse_audit_level("garbage", AuditLevel::kFull),
            AuditLevel::kFull);
}

TEST(AuditLevelControl, SetReturnsPreviousAndClampsToCompiledMax) {
  const AuditLevel before = set_audit_level(AuditLevel::kOff);
  EXPECT_EQ(audit_level(), AuditLevel::kOff);
  EXPECT_EQ(set_audit_level(AuditLevel::kFull), AuditLevel::kOff);
  EXPECT_LE(audit_level(), kAuditCompiledMax);
  set_audit_level(before);
}

TEST(AuditLevelControl, EnabledRespectsRuntimeLevel) {
  AuditLevelGuard guard(AuditLevel::kLight);
  EXPECT_TRUE(audit_enabled(AuditLevel::kLight));
  EXPECT_FALSE(audit_enabled(AuditLevel::kFull));
  set_audit_level(AuditLevel::kOff);
  EXPECT_FALSE(audit_enabled(AuditLevel::kLight));
}

TEST(AuditReportTest, CollectsEveryFailureNotJustTheFirst) {
  AuditReport report("subject");
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.require(false, "first rule", "detail one"));
  EXPECT_TRUE(report.require(true, "healthy rule"));
  report.fail("second rule");
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failure_count(), 2u);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("subject"), std::string::npos);
  EXPECT_NE(text.find("first rule"), std::string::npos);
  EXPECT_NE(text.find("detail one"), std::string::npos);
  EXPECT_NE(text.find("second rule"), std::string::npos);
}

TEST(AuditReportTest, ThrowIfFailedCarriesTheFullReport) {
  AuditReport report("ftl");
  report.fail("l2p roundtrip", "lpn 7 maps to an erased page");
  try {
    report.throw_if_failed();
    FAIL() << "failed report did not throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("lpn 7"), std::string::npos);
  }
  AuditReport clean("ok");
  EXPECT_NO_THROW(clean.throw_if_failed());
}

TEST(AuditReportTest, DumpIsLazyAndOnlyRenderedOnFailure) {
  int renders = 0;
  {
    AuditReport healthy("h");
    healthy.attach_dump([&renders] {
      ++renders;
      return std::string("dump");
    });
    EXPECT_NE(healthy.to_string().find("ok"), std::string::npos);
  }
  EXPECT_EQ(renders, 0) << "dump rendered for a passing report";
  AuditReport failing("f");
  failing.attach_dump([&renders] {
    ++renders;
    return std::string("the structural dump");
  });
  failing.fail("broken");
  EXPECT_NE(failing.to_string().find("the structural dump"),
            std::string::npos);
  EXPECT_EQ(renders, 1);
}

TEST(AuditMacros, DetailExpressionOnlyEvaluatedOnFailure) {
  AuditReport report("macros");
  int detail_builds = 0;
  auto detail = [&detail_builds] {
    ++detail_builds;
    return std::string("built");
  };
  EXPECT_TRUE(REQB_AUDIT_MSG(report, true, detail()));
  EXPECT_EQ(detail_builds, 0);
  EXPECT_FALSE(REQB_AUDIT_MSG(report, false, detail()));
  EXPECT_EQ(detail_builds, 1);
  EXPECT_TRUE(REQB_AUDIT(report, 1 < 2));
  EXPECT_FALSE(REQB_AUDIT(report, 2 < 1));
  EXPECT_EQ(report.failure_count(), 2u);
  // The parameter-free macro records the expression text itself.
  EXPECT_NE(report.to_string().find("2 < 1"), std::string::npos);
}

TEST(RunAudit, SkipsEntirelyWhenLevelDisabled) {
  AuditLevelGuard guard(AuditLevel::kOff);
  bool ran = false;
  run_audit("skipped", AuditLevel::kLight,
            [&ran](AuditReport&) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(RunAudit, RunsAndThrowsWhenEnabled) {
  AuditLevelGuard guard(AuditLevel::kFull);
  bool ran = false;
  EXPECT_NO_THROW(run_audit("healthy", AuditLevel::kFull,
                            [&ran](AuditReport&) { ran = true; }));
  EXPECT_TRUE(ran);
  EXPECT_THROW(run_audit("broken", AuditLevel::kFull,
                         [](AuditReport& r) { r.fail("rule"); }),
               std::logic_error);
}

TEST(AuditScopeTest, AuditsOnNormalExitOnly) {
  AuditLevelGuard guard(AuditLevel::kFull);
  int runs = 0;
  {
    AuditScope scope("scoped", AuditLevel::kFull,
                     [&runs](AuditReport&) { ++runs; });
    EXPECT_EQ(runs, 0) << "scope audited before exit";
  }
  EXPECT_EQ(runs, 1);

  // During unwinding the scope must stay quiet so it cannot mask the
  // original exception with its own.
  try {
    AuditScope scope("unwinding", AuditLevel::kFull,
                     [&runs](AuditReport& r) {
                       ++runs;
                       r.fail("would terminate if thrown while unwinding");
                     });
    throw std::runtime_error("original");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "original");
  }
  EXPECT_EQ(runs, 1) << "scope audited while unwinding";
}

// The audit must actually catch corruption. Corrupt one field at a time
// through the test-only mutable hook and require a failed report whose
// text names the violated rule.
class ReqBlockAuditDetection : public ::testing::Test {
 protected:
  void SetUp() override {
    ReqBlockOptions opt;
    opt.delta = 3;
    policy_ = std::make_unique<ReqBlockPolicy>(opt);
    const IoRequest req = write_req(1, 0, 4);
    policy_->begin_request(req);
    for (Lpn lpn = 0; lpn < 4; ++lpn) {
      policy_->on_insert(lpn, req, true);
    }
    // Second request promotes one page's block... it is > delta, so this
    // splits page 2 into a DRL block with an origin backpointer.
    const IoRequest hit = write_req(2, 2, 1);
    policy_->begin_request(hit);
    policy_->on_hit(2, hit, true);
  }

  std::string audit_text() {
    AuditReport report("Req-block");
    policy_->audit(report);
    return report.ok() ? std::string() : report.to_string();
  }

  std::unique_ptr<ReqBlockPolicy> policy_;
};

TEST_F(ReqBlockAuditDetection, CleanStateAuditsClean) {
  EXPECT_EQ(audit_text(), "");
}

TEST_F(ReqBlockAuditDetection, CatchesZeroAccessCount) {
  ReqBlock* blk = policy_->mutable_block_for_tests(0);
  ASSERT_NE(blk, nullptr);
  blk->access_cnt = 0;
  EXPECT_NE(audit_text().find("access count 0"), std::string::npos);
}

TEST_F(ReqBlockAuditDetection, CatchesLevelTagMismatch) {
  ReqBlock* blk = policy_->mutable_block_for_tests(0);
  ASSERT_NE(blk, nullptr);
  ASSERT_EQ(blk->level, ReqList::kIRL);
  blk->level = ReqList::kSRL;  // linked on IRL, tagged SRL
  EXPECT_NE(audit_text().find("tagged"), std::string::npos);
}

TEST_F(ReqBlockAuditDetection, CatchesDuplicatePage) {
  ReqBlock* blk = policy_->mutable_block_for_tests(0);
  ASSERT_NE(blk, nullptr);
  blk->pages.push_back(blk->pages.front());
  const std::string text = audit_text();
  EXPECT_NE(text.find("duplicate page"), std::string::npos);
}

TEST_F(ReqBlockAuditDetection, CatchesFutureInsertTick) {
  ReqBlock* blk = policy_->mutable_block_for_tests(0);
  ASSERT_NE(blk, nullptr);
  blk->insert_tick = policy_->now() + 100;
  EXPECT_NE(audit_text().find("inserted at tick"), std::string::npos);
}

TEST_F(ReqBlockAuditDetection, CatchesBrokenOriginBackpointer) {
  ReqBlock* drl = policy_->mutable_block_for_tests(2);
  ASSERT_NE(drl, nullptr);
  ASSERT_EQ(drl->level, ReqList::kDRL);
  drl->origin_id = 0;  // DRL block without a split origin
  EXPECT_NE(audit_text().find("without a split origin"), std::string::npos);
}

TEST_F(ReqBlockAuditDetection, CatchesPageTableDesync) {
  ReqBlock* blk = policy_->mutable_block_for_tests(0);
  ASSERT_NE(blk, nullptr);
  blk->pages.push_back(9999);  // page the table has never heard of
  EXPECT_NE(audit_text().find("page table disagrees"), std::string::npos);
}

TEST_F(ReqBlockAuditDetection, FailedAuditAttachesStructuralDump) {
  ReqBlock* blk = policy_->mutable_block_for_tests(0);
  ASSERT_NE(blk, nullptr);
  blk->access_cnt = 0;
  EXPECT_NE(audit_text().find("structural dump"), std::string::npos);
  EXPECT_NE(audit_text().find("IRL"), std::string::npos);
}

}  // namespace
}  // namespace reqblock::testing
