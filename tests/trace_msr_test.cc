#include "trace/msr_trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "util/rng.h"

namespace reqblock {
namespace {

MsrParseOptions opts() { return MsrParseOptions{}; }

TEST(MsrTraceTest, ParsesWellFormedLine) {
  const auto r = parse_msr_line(
      "128166372003061629,hm,1,Read,8192,4096,432", opts());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, IoType::kRead);
  EXPECT_EQ(r->lpn, 2u);      // 8192 / 4096
  EXPECT_EQ(r->pages, 1u);    // 4096 bytes = one page
}

TEST(MsrTraceTest, ConvertsTicksToNanoseconds) {
  const auto r = parse_msr_line("10,h,0,Write,0,4096,0", opts());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->arrival, 1000);  // 10 ticks * 100 ns
}

TEST(MsrTraceTest, UnalignedExtentRoundsOut) {
  // Offset 1000, size 5000 touches bytes [1000, 6000) => pages 0 and 1.
  const auto r = parse_msr_line("0,h,0,Write,1000,5000,0", opts());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lpn, 0u);
  EXPECT_EQ(r->pages, 2u);
}

TEST(MsrTraceTest, ZeroSizeTouchesOnePage) {
  const auto r = parse_msr_line("0,h,0,Read,8192,0,0", opts());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lpn, 2u);
  EXPECT_EQ(r->pages, 1u);
}

TEST(MsrTraceTest, CaseInsensitiveType) {
  EXPECT_EQ(parse_msr_line("0,h,0,WRITE,0,4096,0", opts())->type,
            IoType::kWrite);
  EXPECT_EQ(parse_msr_line("0,h,0,read,0,4096,0", opts())->type,
            IoType::kRead);
  EXPECT_EQ(parse_msr_line("0,h,0,W,0,4096,0", opts())->type,
            IoType::kWrite);
}

TEST(MsrTraceTest, MalformedLinesRejected) {
  EXPECT_FALSE(parse_msr_line("", opts()).has_value());
  EXPECT_FALSE(parse_msr_line("# comment", opts()).has_value());
  EXPECT_FALSE(parse_msr_line("1,2,3", opts()).has_value());
  EXPECT_FALSE(parse_msr_line("x,h,0,Read,0,4096,0", opts()).has_value());
  EXPECT_FALSE(parse_msr_line("0,h,0,Erase,0,4096,0", opts()).has_value());
  EXPECT_FALSE(parse_msr_line("0,h,0,Read,abc,4096,0", opts()).has_value());
}

TEST(MsrTraceTest, StreamParsingRebasesTimeAndNumbersIds) {
  std::istringstream in(
      "1000,h,0,Read,0,4096,0\n"
      "2000,h,0,Write,4096,8192,0\n");
  const auto reqs = parse_msr_stream(in, opts());
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].arrival, 0);
  EXPECT_EQ(reqs[1].arrival, 100000);  // (2000-1000) ticks
  EXPECT_EQ(reqs[0].id, 0u);
  EXPECT_EQ(reqs[1].id, 1u);
  EXPECT_EQ(reqs[1].pages, 2u);
}

TEST(MsrTraceTest, SkipsMalformedByDefaultThrowsWhenStrict) {
  std::istringstream in1("garbage\n0,h,0,Read,0,4096,0\n");
  EXPECT_EQ(parse_msr_stream(in1, opts()).size(), 1u);

  MsrParseOptions strict = opts();
  strict.skip_malformed = false;
  std::istringstream in2("garbage\n");
  EXPECT_THROW(parse_msr_stream(in2, strict), std::runtime_error);
}

TEST(MsrTraceTest, MaxRequestsCap) {
  std::istringstream in(
      "0,h,0,Read,0,4096,0\n"
      "1,h,0,Read,0,4096,0\n"
      "2,h,0,Read,0,4096,0\n");
  MsrParseOptions capped = opts();
  capped.max_requests = 2;
  EXPECT_EQ(parse_msr_stream(in, capped).size(), 2u);
}

TEST(MsrTraceTest, RoundTripThroughWriter) {
  std::vector<IoRequest> reqs;
  IoRequest a;
  a.arrival = 500000;
  a.type = IoType::kWrite;
  a.lpn = 10;
  a.pages = 3;
  reqs.push_back(a);

  std::ostringstream out;
  write_msr_stream(out, reqs);
  std::istringstream in(out.str());
  MsrParseOptions o = opts();
  o.rebase_time = false;
  const auto parsed = parse_msr_stream(in, o);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].arrival, a.arrival);
  EXPECT_EQ(parsed[0].type, a.type);
  EXPECT_EQ(parsed[0].lpn, a.lpn);
  EXPECT_EQ(parsed[0].pages, a.pages);
}

TEST(MsrTraceTest, MissingFileThrows) {
  EXPECT_THROW(parse_msr_file("/nonexistent/trace.csv", opts()),
               std::runtime_error);
}

// Regression: genuine FILETIME stamps (~1.28e17 ticks) used to overflow
// the int64 tick→ns multiplication (undefined behaviour, caught by
// UBSan). Standalone line parsing now saturates instead of wrapping.
TEST(MsrTraceTest, RealFiletimeTimestampSaturatesInsteadOfOverflowing) {
  const auto r = parse_msr_line(
      "128166372003061629,hm,1,Read,8192,4096,432", opts());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->arrival, std::numeric_limits<SimTime>::max());
  EXPECT_GE(r->arrival, 0);
}

// Regression: stream parsing must rebase in the tick domain *before* the
// ns conversion, so real-trace arrival deltas are exact even though the
// absolute stamps are unrepresentable in int64 nanoseconds.
TEST(MsrTraceTest, StreamRebasesRealFiletimeStampsExactly) {
  std::istringstream in(
      "128166372003061629,hm,1,Read,0,4096,0\n"
      "128166372003062629,hm,1,Write,4096,4096,0\n");
  const auto reqs = parse_msr_stream(in, opts());
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].arrival, 0);
  EXPECT_EQ(reqs[1].arrival, 100000);  // 1000 ticks * 100 ns
}

// Regression: an (offset + size) pair that wraps the 64-bit byte space
// used to produce garbage LPNs and a wrapped 32-bit page count. Corrupt
// extents are rejected, not reinterpreted.
TEST(MsrTraceTest, OverflowingExtentsRejected) {
  // offset + size wraps uint64.
  EXPECT_FALSE(parse_msr_line("0,h,0,Write,18446744073709551615,4096,0",
                              opts()).has_value());
  // offset + 1 (the zero-size span) wraps uint64.
  EXPECT_FALSE(parse_msr_line("0,h,0,Write,18446744073709551615,0,0",
                              opts()).has_value());
  // Page count does not fit the 32-bit request representation.
  EXPECT_FALSE(parse_msr_line("0,h,0,Write,0,18446744073709551615,0",
                              opts()).has_value());
  // A huge-but-sane offset still parses.
  const auto r =
      parse_msr_line("0,h,0,Write,9223372036854775808,4096,0", opts());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->pages, 1u);
  EXPECT_EQ(r->lpn, 9223372036854775808ull / 4096);
}

// Deterministic fuzz: truncated lines, flipped characters, and random
// field soup must never crash the parser or yield a request that violates
// its representation invariants.
TEST(MsrTraceTest, FuzzedLinesNeverCrashAndKeepInvariants) {
  Rng rng(2024);
  const std::string valid = "1000,h,0,Write,8192,4096,0";
  const char alphabet[] = "0123456789,,.-+eEWRrw#x \t";
  constexpr std::size_t kAlpha = sizeof(alphabet) - 1;
  for (int iter = 0; iter < 5000; ++iter) {
    std::string line;
    if (rng.next_bool(0.5)) {
      line = valid.substr(0, rng.next_u64() % (valid.size() + 1));
      for (char& c : line) {
        if (rng.next_bool(0.1)) c = alphabet[rng.next_u64() % kAlpha];
      }
    } else {
      const std::size_t len = rng.next_u64() % 48;
      for (std::size_t i = 0; i < len; ++i) {
        line += alphabet[rng.next_u64() % kAlpha];
      }
    }
    const auto r = parse_msr_line(line, opts());
    if (r.has_value()) {
      EXPECT_GE(r->pages, 1u) << "line: " << line;
      EXPECT_GE(r->arrival, 0) << "line: " << line;
    }
  }
}

// Out-of-order stamps earlier than the base clamp to zero rather than
// wrapping around the unsigned tick subtraction.
TEST(MsrTraceTest, PreBaseTimestampClampsToZero) {
  std::istringstream in(
      "2000,h,0,Read,0,4096,0\n"
      "1000,h,0,Read,0,4096,0\n");
  const auto reqs = parse_msr_stream(in, opts());
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].arrival, 0);
  EXPECT_EQ(reqs[1].arrival, 0);
}

// A file cut off mid-record (e.g. an interrupted download) must fail the
// parse, pointing at the file and line — not silently drop the tail.
TEST(MsrTraceTest, TruncatedFileFailsWithFilenameAndLine) {
  const std::string path = ::testing::TempDir() + "/truncated.msr.csv";
  {
    std::ofstream out(path);
    out << "0,h,0,Read,0,4096,0\n"
           "1000,h,0,Write,8192,4096,0\n"
           "2000,h,0,Wri";  // record cut mid-field, no newline
  }
  try {
    parse_msr_file(path, opts());
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path + ":3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
  }
}

// A complete final record without a trailing newline is normal (many
// tools emit that) and must keep parsing.
TEST(MsrTraceTest, CompleteFinalRecordWithoutNewlineParses) {
  const std::string path = ::testing::TempDir() + "/nonewline.msr.csv";
  {
    std::ofstream out(path);
    out << "0,h,0,Read,0,4096,0\n1000,h,0,Write,8192,4096,0";
  }
  EXPECT_EQ(parse_msr_file(path, opts()).size(), 2u);
}

// String-stream parsing keeps its lenient semantics: embedded test
// literals routinely end mid-"record" without a newline.
TEST(MsrTraceTest, StreamParsingStaysLenientAboutPartialTail) {
  std::istringstream in("0,h,0,Read,0,4096,0\ngarbage-tail");
  EXPECT_EQ(parse_msr_stream(in, opts()).size(), 1u);
}

TEST(MsrTraceTest, StrictModeNamesSourceAndLine) {
  MsrParseOptions strict = opts();
  strict.skip_malformed = false;
  strict.source_name = "hm_0.csv";
  std::istringstream in("0,h,0,Read,0,4096,0\nbogus line\n");
  try {
    parse_msr_stream(in, strict);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("hm_0.csv:2"), std::string::npos) << msg;
  }
}

// Comment lines are never "malformed", even in strict mode.
TEST(MsrTraceTest, StrictModeToleratesComments) {
  MsrParseOptions strict = opts();
  strict.skip_malformed = false;
  std::istringstream in("# header comment\n0,h,0,Read,0,4096,0\n");
  EXPECT_EQ(parse_msr_stream(in, strict).size(), 1u);
}

}  // namespace
}  // namespace reqblock
