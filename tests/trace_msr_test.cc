#include "trace/msr_trace.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace reqblock {
namespace {

MsrParseOptions opts() { return MsrParseOptions{}; }

TEST(MsrTraceTest, ParsesWellFormedLine) {
  const auto r = parse_msr_line(
      "128166372003061629,hm,1,Read,8192,4096,432", opts());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, IoType::kRead);
  EXPECT_EQ(r->lpn, 2u);      // 8192 / 4096
  EXPECT_EQ(r->pages, 1u);    // 4096 bytes = one page
}

TEST(MsrTraceTest, ConvertsTicksToNanoseconds) {
  const auto r = parse_msr_line("10,h,0,Write,0,4096,0", opts());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->arrival, 1000);  // 10 ticks * 100 ns
}

TEST(MsrTraceTest, UnalignedExtentRoundsOut) {
  // Offset 1000, size 5000 touches bytes [1000, 6000) => pages 0 and 1.
  const auto r = parse_msr_line("0,h,0,Write,1000,5000,0", opts());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lpn, 0u);
  EXPECT_EQ(r->pages, 2u);
}

TEST(MsrTraceTest, ZeroSizeTouchesOnePage) {
  const auto r = parse_msr_line("0,h,0,Read,8192,0,0", opts());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lpn, 2u);
  EXPECT_EQ(r->pages, 1u);
}

TEST(MsrTraceTest, CaseInsensitiveType) {
  EXPECT_EQ(parse_msr_line("0,h,0,WRITE,0,4096,0", opts())->type,
            IoType::kWrite);
  EXPECT_EQ(parse_msr_line("0,h,0,read,0,4096,0", opts())->type,
            IoType::kRead);
  EXPECT_EQ(parse_msr_line("0,h,0,W,0,4096,0", opts())->type,
            IoType::kWrite);
}

TEST(MsrTraceTest, MalformedLinesRejected) {
  EXPECT_FALSE(parse_msr_line("", opts()).has_value());
  EXPECT_FALSE(parse_msr_line("# comment", opts()).has_value());
  EXPECT_FALSE(parse_msr_line("1,2,3", opts()).has_value());
  EXPECT_FALSE(parse_msr_line("x,h,0,Read,0,4096,0", opts()).has_value());
  EXPECT_FALSE(parse_msr_line("0,h,0,Erase,0,4096,0", opts()).has_value());
  EXPECT_FALSE(parse_msr_line("0,h,0,Read,abc,4096,0", opts()).has_value());
}

TEST(MsrTraceTest, StreamParsingRebasesTimeAndNumbersIds) {
  std::istringstream in(
      "1000,h,0,Read,0,4096,0\n"
      "2000,h,0,Write,4096,8192,0\n");
  const auto reqs = parse_msr_stream(in, opts());
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].arrival, 0);
  EXPECT_EQ(reqs[1].arrival, 100000);  // (2000-1000) ticks
  EXPECT_EQ(reqs[0].id, 0u);
  EXPECT_EQ(reqs[1].id, 1u);
  EXPECT_EQ(reqs[1].pages, 2u);
}

TEST(MsrTraceTest, SkipsMalformedByDefaultThrowsWhenStrict) {
  std::istringstream in1("garbage\n0,h,0,Read,0,4096,0\n");
  EXPECT_EQ(parse_msr_stream(in1, opts()).size(), 1u);

  MsrParseOptions strict = opts();
  strict.skip_malformed = false;
  std::istringstream in2("garbage\n");
  EXPECT_THROW(parse_msr_stream(in2, strict), std::runtime_error);
}

TEST(MsrTraceTest, MaxRequestsCap) {
  std::istringstream in(
      "0,h,0,Read,0,4096,0\n"
      "1,h,0,Read,0,4096,0\n"
      "2,h,0,Read,0,4096,0\n");
  MsrParseOptions capped = opts();
  capped.max_requests = 2;
  EXPECT_EQ(parse_msr_stream(in, capped).size(), 2u);
}

TEST(MsrTraceTest, RoundTripThroughWriter) {
  std::vector<IoRequest> reqs;
  IoRequest a;
  a.arrival = 500000;
  a.type = IoType::kWrite;
  a.lpn = 10;
  a.pages = 3;
  reqs.push_back(a);

  std::ostringstream out;
  write_msr_stream(out, reqs);
  std::istringstream in(out.str());
  MsrParseOptions o = opts();
  o.rebase_time = false;
  const auto parsed = parse_msr_stream(in, o);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].arrival, a.arrival);
  EXPECT_EQ(parsed[0].type, a.type);
  EXPECT_EQ(parsed[0].lpn, a.lpn);
  EXPECT_EQ(parsed[0].pages, a.pages);
}

TEST(MsrTraceTest, MissingFileThrows) {
  EXPECT_THROW(parse_msr_file("/nonexistent/trace.csv", opts()),
               std::runtime_error);
}

// Regression: genuine FILETIME stamps (~1.28e17 ticks) used to overflow
// the int64 tick→ns multiplication (undefined behaviour, caught by
// UBSan). Standalone line parsing now saturates instead of wrapping.
TEST(MsrTraceTest, RealFiletimeTimestampSaturatesInsteadOfOverflowing) {
  const auto r = parse_msr_line(
      "128166372003061629,hm,1,Read,8192,4096,432", opts());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->arrival, std::numeric_limits<SimTime>::max());
  EXPECT_GE(r->arrival, 0);
}

// Regression: stream parsing must rebase in the tick domain *before* the
// ns conversion, so real-trace arrival deltas are exact even though the
// absolute stamps are unrepresentable in int64 nanoseconds.
TEST(MsrTraceTest, StreamRebasesRealFiletimeStampsExactly) {
  std::istringstream in(
      "128166372003061629,hm,1,Read,0,4096,0\n"
      "128166372003062629,hm,1,Write,4096,4096,0\n");
  const auto reqs = parse_msr_stream(in, opts());
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].arrival, 0);
  EXPECT_EQ(reqs[1].arrival, 100000);  // 1000 ticks * 100 ns
}

// Out-of-order stamps earlier than the base clamp to zero rather than
// wrapping around the unsigned tick subtraction.
TEST(MsrTraceTest, PreBaseTimestampClampsToZero) {
  std::istringstream in(
      "2000,h,0,Read,0,4096,0\n"
      "1000,h,0,Read,0,4096,0\n");
  const auto reqs = parse_msr_stream(in, opts());
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].arrival, 0);
  EXPECT_EQ(reqs[1].arrival, 0);
}

}  // namespace
}  // namespace reqblock
