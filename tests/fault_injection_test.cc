// Fault-injection semantics: injector counters, telemetry events, and the
// report aggregates must tell one consistent story, and the recovery paths
// (bad-block retirement, power loss) must keep every structural invariant
// intact under full audits.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulator.h"
#include "test_util.h"
#include "trace/synthetic.h"
#include "trace/vector_source.h"
#include "util/audit.h"

namespace reqblock {
namespace {

/// Every test in this file runs at the full audit depth (the acceptance
/// bar: recovery paths must survive the deep structural checks).
struct FullAuditScope {
  AuditLevel previous = set_audit_level(AuditLevel::kFull);
  ~FullAuditScope() { set_audit_level(previous); }
};

WorkloadProfile fault_profile(std::uint64_t seed) {
  WorkloadProfile p;
  p.name = "faulty";
  p.total_requests = 3000;
  p.seed = seed;
  p.hot_extents = 256;
  p.cold_stream_pages = 1 << 15;
  return p;
}

SimOptions fault_options(const std::string& policy) {
  SimOptions o;
  o.ssd = testing::tiny_ssd();
  o.policy.name = policy;
  o.policy.capacity_pages = 256;
  o.policy.pages_per_block = o.ssd.pages_per_block;
  o.cache.capacity_pages = 256;
  o.telemetry_env_override = false;
  return o;
}

std::uint64_t count_kind(const std::vector<TraceEvent>& events,
                         EventKind kind) {
  std::uint64_t n = 0;
  for (const auto& e : events) n += e.kind == kind ? 1 : 0;
  return n;
}

std::uint64_t sum_args(const std::vector<TraceEvent>& events,
                       EventKind kind) {
  std::uint64_t n = 0;
  for (const auto& e : events) n += e.kind == kind ? e.arg : 0;
  return n;
}

TEST(FaultInjectionTest, TelemetryEventsMatchInjectorCounts) {
  FullAuditScope audit_scope;
  for (const char* policy : {"lru", "bplru", "reqblock"}) {
    SimOptions o = fault_options(policy);
    o.fault.seed = 7;
    o.fault.program_fail_prob = 0.05;
    o.fault.read_fail_prob = 0.02;
    o.fault.power_loss_every_requests = 700;
    o.telemetry.trace.level = TraceLevel::kAll;
    SyntheticTraceSource trace(fault_profile(5));
    const RunResult r = Simulator(o).run(trace);

    ASSERT_TRUE(r.fault.enabled) << policy;
    EXPECT_GT(r.fault.program_faults, 0u) << policy;
    EXPECT_GT(r.fault.read_faults, 0u) << policy;
    EXPECT_GT(r.fault.power_loss_events, 0u) << policy;
    EXPECT_GT(r.fault.lost_dirty_pages, 0u) << policy;

    const auto& ev = r.telemetry.events;
    ASSERT_EQ(r.telemetry.events_dropped, 0u) << policy;
    // One trace event per injected fault, reconciled exactly.
    EXPECT_EQ(count_kind(ev, EventKind::kProgramRetry),
              r.fault.program_faults) << policy;
    EXPECT_EQ(count_kind(ev, EventKind::kReadRetry), r.fault.read_faults)
        << policy;
    EXPECT_EQ(count_kind(ev, EventKind::kEraseFault), r.fault.erase_faults)
        << policy;
    EXPECT_EQ(count_kind(ev, EventKind::kBlockRetire), r.fault.blocks_retired)
        << policy;
    EXPECT_EQ(count_kind(ev, EventKind::kPowerLoss),
              r.fault.power_loss_events) << policy;
    // kPowerLoss carries the dirty pages lost by that event.
    EXPECT_EQ(sum_args(ev, EventKind::kPowerLoss), r.fault.lost_dirty_pages)
        << policy;
  }
}

/// Overwrite traffic on a block-starved device: constant GC, so injected
/// erase faults exercise retirement, spare exhaustion, and degraded mode.
std::vector<IoRequest> gc_pressure_trace(std::size_t requests) {
  std::vector<IoRequest> reqs;
  reqs.reserve(requests);
  SimTime at = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    at += 10 * kMicrosecond;
    reqs.push_back(
        testing::write_req(i, (i * 4) % 1024, 4, at));
  }
  return reqs;
}

TEST(FaultInjectionTest, EraseFaultsRetireBlocksAndDegradePlanes) {
  FullAuditScope audit_scope;
  SimOptions o = fault_options("reqblock");
  o.ssd = testing::micro_ssd();
  o.policy.pages_per_block = o.ssd.pages_per_block;
  o.fault.seed = 13;
  o.fault.erase_fail_prob = 0.5;
  o.fault.spare_blocks_per_plane = 2;
  VectorTraceSource trace(gc_pressure_trace(6000), "gc-pressure");
  const RunResult r = Simulator(o).run(trace);

  EXPECT_GT(r.fault.erase_faults, 0u);
  EXPECT_GT(r.fault.blocks_retired, 0u);
  // Two spares per plane cannot absorb a 50% erase-failure rate: some
  // plane must have outrun its pool, and past that point the capacity
  // guard must have started refusing retirements.
  EXPECT_GT(r.fault.degraded_planes, 0u);
  EXPECT_GT(r.fault.retires_refused, 0u);
  // The device keeps serving correctly throughout (full audits ran after
  // every request and at end of run); results stay self-consistent.
  EXPECT_EQ(r.requests, 6000u);
}

TEST(FaultInjectionTest, ProgramRetriesMarkBadBlocksUnderPressure) {
  FullAuditScope audit_scope;
  SimOptions o = fault_options("lru");
  o.ssd = testing::micro_ssd();
  o.policy.pages_per_block = o.ssd.pages_per_block;
  o.fault.seed = 3;
  o.fault.program_fail_prob = 0.4;  // streaks of >3 failures are common
  o.fault.max_program_retries = 2;
  VectorTraceSource trace(gc_pressure_trace(4000), "gc-pressure");
  const RunResult r = Simulator(o).run(trace);

  EXPECT_GT(r.fault.program_faults, 0u);
  EXPECT_GT(r.fault.bad_block_marks, 0u);
  // Marked blocks are retired once GC empties them.
  EXPECT_GT(r.fault.blocks_retired, 0u);
  EXPECT_EQ(r.requests, 4000u);
}

TEST(FaultInjectionTest, PowerLossDropsBufferAndKeepsOracleConsistent) {
  FullAuditScope audit_scope;
  testing::Harness h(testing::policy_config("reqblock", 256));
  FaultPlan plan;
  plan.power_loss_every_requests = 1;  // any schedule; fired manually below
  FaultInjector injector(plan);

  // Buffer some dirty pages, half of them overwriting flash-resident data.
  SimTime t = 0;
  for (std::uint64_t i = 0; i < 16; ++i) {
    t = h.serve(testing::write_req(i, i * 4, 4, t + kMicrosecond));
  }
  ASSERT_GT(h.cache->cached_pages(), 0u);
  const std::uint64_t resident = h.cache->cached_pages();

  const SimTime up_again = h.cache->power_loss(t, injector);
  EXPECT_EQ(h.cache->cached_pages(), 0u);
  EXPECT_EQ(injector.metrics().power_loss_events, 1u);
  EXPECT_EQ(injector.metrics().lost_dirty_pages, resident);
  EXPECT_EQ(up_again,
            t + plan.power_loss_downtime +
                static_cast<SimTime>(resident) * plan.recovery_replay_per_page);

  // Post-recovery reads of the lost pages must verify against the rolled
  // back oracle (zero-fill or the older flash copy), not the lost writes.
  for (std::uint64_t i = 0; i < 16; ++i) {
    h.serve(testing::read_req(100 + i, i * 4, 4, up_again + i));
  }
  // And new writes over the loss must keep working end to end.
  for (std::uint64_t i = 0; i < 16; ++i) {
    h.serve(testing::write_req(200 + i, i * 4, 4, up_again + 100 + i));
  }
}

TEST(FaultInjectionTest, WarmupResetPreservesDeviceStateCounters) {
  // degraded_planes reports device state, not a rate: it must survive the
  // warmup-boundary metric reset, while the event counters restart.
  FaultPlan plan;
  plan.erase_fail_prob = 0.5;
  FaultInjector injector(plan);
  injector.metrics().program_faults = 5;
  injector.metrics().degraded_planes = 2;
  injector.reset_metrics();
  EXPECT_EQ(injector.metrics().program_faults, 0u);
  EXPECT_EQ(injector.metrics().degraded_planes, 2u);
  EXPECT_TRUE(injector.metrics().enabled);
}

TEST(FaultInjectionTest, InvalidPlansAreRejected) {
  FaultPlan plan;
  plan.program_fail_prob = 1.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.program_fail_prob = -0.1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.program_fail_prob = 0.0;
  plan.max_program_retries = 0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace reqblock
