// Differential validation of the submission-queue arbiters against the
// brute-force oracles in arbiter_reference.h: 100k+ randomized ready-set
// sequences audited pick by pick, snapshot byte-stability mid-stream, and
// the starvation-freedom bounds each discipline advertises.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "host/arbiter.h"
#include "arbiter_reference.h"
#include "snapshot/snapshot.h"
#include "util/rng.h"

namespace reqblock {
namespace {

using testing::OracleDeficit;
using testing::OracleRoundRobin;
using testing::OracleWeighted;

/// A random non-empty ready list over `count` tenants, sorted by tenant id
/// (the order SimulationSession guarantees), page costs in [1, max_cost].
std::vector<ReadyHead> random_ready(Rng& rng, std::uint32_t count,
                                    std::uint32_t max_cost) {
  std::vector<ReadyHead> ready;
  for (std::uint32_t t = 0; t < count; ++t) {
    if (rng.next_below(100) < 55) {
      ready.push_back(
          {t, static_cast<std::uint32_t>(rng.next_in(1, max_cost))});
    }
  }
  if (ready.empty()) {
    const std::uint32_t t = static_cast<std::uint32_t>(rng.next_below(count));
    ready.push_back({t, static_cast<std::uint32_t>(rng.next_in(1, max_cost))});
  }
  return ready;
}

std::vector<std::uint32_t> random_weights(Rng& rng, std::uint32_t count) {
  std::vector<std::uint32_t> w;
  for (std::uint32_t t = 0; t < count; ++t) {
    w.push_back(static_cast<std::uint32_t>(rng.next_in(1, 8)));
  }
  return w;
}

struct OracleSet {
  OracleRoundRobin rr;
  OracleWeighted wrr;
  OracleDeficit drr;

  std::size_t pick(ArbiterKind kind, const std::vector<ReadyHead>& ready) {
    switch (kind) {
      case ArbiterKind::kRoundRobin:
        return rr.pick(ready);
      case ArbiterKind::kWeighted:
        return wrr.pick(ready);
      case ArbiterKind::kDeficit:
        return drr.pick(ready);
    }
    return ready.size();
  }
};

TEST(ArbiterDifferentialTest, RandomSequencesMatchOracles) {
  // 3 disciplines x 12 configurations x 3000 picks > 100k audited ops.
  std::uint64_t audited = 0;
  for (const ArbiterKind kind : {ArbiterKind::kRoundRobin,
                                 ArbiterKind::kWeighted,
                                 ArbiterKind::kDeficit}) {
    for (std::uint32_t config = 0; config < 12; ++config) {
      Rng rng(0xA5B1000 + 97 * config + static_cast<std::uint64_t>(kind));
      const std::uint32_t count =
          static_cast<std::uint32_t>(rng.next_in(1, 9));
      const std::uint32_t quantum =
          static_cast<std::uint32_t>(rng.next_in(1, 32));
      const auto weights = random_weights(rng, count);
      const auto real = make_arbiter(kind, weights, quantum);
      OracleSet oracle{OracleRoundRobin(count), OracleWeighted(weights),
                       OracleDeficit(weights, quantum)};
      for (std::uint32_t op = 0; op < 3000; ++op) {
        const auto ready = random_ready(rng, count, 32);
        const std::size_t got = real->pick(ready);
        const std::size_t want = oracle.pick(kind, ready);
        ASSERT_EQ(got, want)
            << to_string(kind) << " config " << config << " op " << op
            << ": real served tenant " << ready[got].tenant
            << ", oracle tenant " << ready[want].tenant;
        ++audited;
      }
    }
  }
  EXPECT_GE(audited, 100000u);
}

TEST(ArbiterDifferentialTest, MidStreamSnapshotIsByteStableAndEquivalent) {
  for (const ArbiterKind kind : {ArbiterKind::kRoundRobin,
                                 ArbiterKind::kWeighted,
                                 ArbiterKind::kDeficit}) {
    SCOPED_TRACE(to_string(kind));
    Rng rng(0xC0FFEE + static_cast<std::uint64_t>(kind));
    const std::uint32_t count = 5;
    const std::vector<std::uint32_t> weights = {3, 1, 4, 1, 5};
    const auto a = make_arbiter(kind, weights, 16);
    for (std::uint32_t op = 0; op < 500; ++op) {
      a->pick(random_ready(rng, count, 32));
    }
    SnapshotWriter w1;
    a->serialize(w1);
    const std::string bytes = w1.take();

    const auto b = make_arbiter(kind, weights, 16);
    SnapshotReader r(bytes);
    b->deserialize(r);
    SnapshotWriter w2;
    b->serialize(w2);
    EXPECT_EQ(bytes, w2.take())
        << "serialize -> deserialize -> serialize must reproduce bytes";

    // The restored arbiter must continue exactly like the original.
    Rng cont_rng(0xFACE);
    for (std::uint32_t op = 0; op < 500; ++op) {
      const auto ready = random_ready(cont_rng, count, 32);
      ASSERT_EQ(a->pick(ready), b->pick(ready)) << "op " << op;
    }
  }
}

TEST(ArbiterDifferentialTest, DrrSnapshotRefusesDifferentTenantCount) {
  const auto a = make_arbiter(ArbiterKind::kDeficit, {1, 2, 3}, 16);
  SnapshotWriter w;
  a->serialize(w);
  const std::string bytes = w.take();
  const auto b = make_arbiter(ArbiterKind::kDeficit, {1, 2}, 16);
  SnapshotReader r(bytes);
  EXPECT_THROW(b->deserialize(r), SnapshotError);
}

/// With every queue continuously ready, round-robin serves each tenant
/// exactly once per N consecutive picks.
TEST(ArbiterStarvationTest, RoundRobinIsPerfectlyCyclic) {
  const std::uint32_t count = 7;
  const auto arb = make_arbiter(ArbiterKind::kRoundRobin,
                                std::vector<std::uint32_t>(count, 1), 16);
  std::vector<ReadyHead> ready;
  for (std::uint32_t t = 0; t < count; ++t) ready.push_back({t, 1});
  for (std::uint32_t cycle = 0; cycle < 50; ++cycle) {
    for (std::uint32_t t = 0; t < count; ++t) {
      ASSERT_EQ(ready[arb->pick(ready)].tenant, t);
    }
  }
}

/// With every queue continuously ready, WRR serves tenant t exactly
/// weight[t] times per sum-of-weights picks.
TEST(ArbiterStarvationTest, WeightedServesProportionally) {
  const std::vector<std::uint32_t> weights = {4, 1, 2};
  const auto arb = make_arbiter(ArbiterKind::kWeighted, weights, 16);
  std::vector<ReadyHead> ready = {{0, 1}, {1, 1}, {2, 1}};
  std::vector<std::uint64_t> served(weights.size(), 0);
  const std::uint32_t rounds = 100;
  for (std::uint32_t op = 0; op < rounds * (4 + 1 + 2); ++op) {
    ++served[ready[arb->pick(ready)].tenant];
  }
  for (std::size_t t = 0; t < weights.size(); ++t) {
    EXPECT_EQ(served[t], static_cast<std::uint64_t>(rounds) * weights[t]);
  }
}

/// DRR starvation freedom: with every queue continuously ready and page
/// costs in [1, max_cost], the gap between consecutive serves of tenant i
/// is bounded by rounds * sum_{j != i} (quantum_j + max_cost), where
/// rounds = ceil(max_cost / quantum_i) + 1 covers the visits tenant i may
/// need to bank enough deficit for an expensive head.
TEST(ArbiterStarvationTest, DeficitGapIsBounded) {
  const std::vector<std::uint32_t> weights = {1, 3, 2, 1};
  const std::uint32_t quantum = 4;
  const std::uint32_t max_cost = 32;
  const auto arb = make_arbiter(ArbiterKind::kDeficit, weights, quantum);
  Rng rng(0xD22);

  std::uint64_t quanta_total = 0;
  for (const std::uint32_t w : weights) quanta_total += w * quantum;
  std::vector<std::uint64_t> last_served(weights.size(), 0);
  std::vector<std::uint64_t> max_gap(weights.size(), 0);
  const std::uint64_t ops = 20000;
  for (std::uint64_t op = 1; op <= ops; ++op) {
    std::vector<ReadyHead> ready;
    for (std::uint32_t t = 0; t < weights.size(); ++t) {
      ready.push_back(
          {t, static_cast<std::uint32_t>(rng.next_in(1, max_cost))});
    }
    const std::uint32_t t = ready[arb->pick(ready)].tenant;
    max_gap[t] = std::max(max_gap[t], op - last_served[t]);
    last_served[t] = op;
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const std::uint64_t quantum_i =
        static_cast<std::uint64_t>(weights[i]) * quantum;
    const std::uint64_t rounds = (max_cost + quantum_i - 1) / quantum_i + 1;
    const std::uint64_t others =
        quanta_total - quantum_i +
        (weights.size() - 1) * static_cast<std::uint64_t>(max_cost);
    EXPECT_LE(max_gap[i], rounds * others) << "tenant " << i;
    EXPECT_GT(last_served[i], ops - rounds * others)
        << "tenant " << i << " starved at the tail";
  }
}

}  // namespace
}  // namespace reqblock
