// End-to-end determinism lockdown: the same seeded experiment matrix must
// produce a byte-identical results CSV no matter how many worker threads
// run_cases uses — with faults off (the historical guarantee) and with a
// fixed fault seed (the fault subsystem's reproducibility contract).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.h"
#include "sim/report.h"
#include "test_util.h"

namespace reqblock {
namespace {

// Req-block plus every baseline the paper compares against.
constexpr const char* kAllPolicies[] = {"lru",  "fifo",  "lfu",   "cflru",
                                        "fab",  "bplru", "vbbms", "reqblock"};

WorkloadProfile det_profile(std::uint64_t seed) {
  WorkloadProfile p;
  p.name = "det";
  p.total_requests = 3000;
  p.seed = seed;
  p.hot_extents = 256;
  p.cold_stream_pages = 1 << 15;
  return p;
}

SimOptions det_options(const std::string& policy) {
  SimOptions o;
  o.ssd = testing::tiny_ssd();
  o.policy.name = policy;
  o.policy.capacity_pages = 256;
  o.policy.pages_per_block = o.ssd.pages_per_block;
  o.cache.capacity_pages = 256;
  o.telemetry_env_override = false;
  return o;
}

std::vector<ExperimentCase> policy_matrix(const FaultPlan& fault = {}) {
  std::vector<ExperimentCase> cases;
  for (const char* policy : kAllPolicies) {
    SimOptions o = det_options(policy);
    o.fault = fault;
    cases.push_back({det_profile(11), o, policy});
  }
  return cases;
}

std::string results_csv(const std::vector<RunResult>& results) {
  std::ostringstream os;
  write_results_csv(os, results);
  return os.str();
}

TEST(DeterminismTest, ByteIdenticalCsvAcrossThreadCounts) {
  const auto cases = policy_matrix();
  const std::string serial = results_csv(run_cases(cases, 1));
  const std::string four_way = results_csv(run_cases(cases, 4));
  EXPECT_EQ(serial, four_way);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (hw != 1 && hw != 4) {
    EXPECT_EQ(serial, results_csv(run_cases(cases, hw)));
  }
}

TEST(DeterminismTest, FaultedMatrixByteIdenticalAcrossThreadCounts) {
  FaultPlan fault;
  fault.seed = 99;
  fault.program_fail_prob = 0.02;
  fault.read_fail_prob = 0.01;
  fault.erase_fail_prob = 0.05;
  fault.power_loss_every_requests = 1500;
  const auto cases = policy_matrix(fault);
  const std::string serial = results_csv(run_cases(cases, 1));
  const std::string four_way = results_csv(run_cases(cases, 4));
  EXPECT_EQ(serial, four_way);
  // The faulted export carries the fault columns and at least one run
  // actually experienced a power loss.
  EXPECT_NE(serial.find("program_faults"), std::string::npos);
  EXPECT_NE(serial.find(",recovery_ns"), std::string::npos);
}

TEST(DeterminismTest, SameSeedSameCsvOnRepeatedRuns) {
  const auto cases = policy_matrix();
  EXPECT_EQ(results_csv(run_cases(cases, 2)), results_csv(run_cases(cases, 2)));
}

TEST(DeterminismTest, DisabledFaultPlanChangesNothing) {
  // A plan with every fault class off is never wired, whatever its seed:
  // results must match the default-constructed options byte for byte.
  const auto baseline = policy_matrix();
  FaultPlan inert;
  inert.seed = 424242;          // only consulted when something can fire
  inert.max_program_retries = 7;
  ASSERT_FALSE(inert.enabled());
  const auto with_inert_plan = policy_matrix(inert);
  EXPECT_EQ(results_csv(run_cases(baseline, 2)),
            results_csv(run_cases(with_inert_plan, 2)));
}

TEST(DeterminismTest, FaultFreeResultsCarryNoFaultColumns) {
  const auto results = run_cases(policy_matrix(), 2);
  for (const auto& r : results) EXPECT_FALSE(r.fault.enabled);
  EXPECT_EQ(results_csv(results).find("program_faults"), std::string::npos);
}

}  // namespace
}  // namespace reqblock
