// Garbage-collection study: drive a deliberately small device several
// full overwrites deep and watch GC activity, write amplification and
// wear interact with the cache policy.
//
// Batch-evicting policies retire whole request/virtual blocks at once;
// because those pages tend to die together, GC victims carry fewer valid
// pages and write amplification drops — a second-order benefit of
// request-granularity management beyond the paper's headline metrics.
//
//   ./examples/gc_study [--device-mb 512] [--requests 300000]
//                       [--policy reqblock] [--footprint-pct 60]
#include <iostream>

#include "sim/report.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"
#include "util/args.h"
#include "util/strings.h"

using namespace reqblock;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const std::uint64_t device_mb = args.get_u64_or("device-mb", 512);
  const std::uint64_t requests = args.get_u64_or("requests", 300000);
  const std::uint64_t footprint_pct =
      args.get_u64_or("footprint-pct", 60);

  SsdConfig ssd = SsdConfig::paper_default();
  ssd.capacity_bytes = device_mb << 20;
  ssd.validate();

  // Size the workload to the device: the hot extents plus one write
  // stream cover footprint-pct of physical capacity, so sustained writes
  // force steady-state garbage collection.
  const std::uint64_t device_pages = ssd.total_pages();
  WorkloadProfile profile;
  profile.name = "gc-study";
  profile.total_requests = requests;
  profile.seed = 99;
  profile.write_ratio = 0.85;
  profile.hot_extents = device_pages * footprint_pct / 100 / 2 / 64;
  profile.hot_slot_pages = 8;
  profile.hot_slot_stride = 64;
  profile.large_write_fraction = 0.25;
  profile.large_write_min_pages = 16;
  profile.large_write_max_pages = 48;
  profile.stream_count = 2;
  profile.cold_stream_pages = device_pages * footprint_pct / 100 / 4;
  profile.mean_interarrival_ns = 1500 * kMicrosecond;

  std::vector<std::string> policies;
  if (const auto p = args.get("policy")) {
    policies.push_back(*p);
  } else {
    policies = {"lru", "bplru", "vbbms", "reqblock"};
  }

  std::cout << "Device " << device_mb << "MB (" << device_pages
            << " pages), workload footprint ~" << footprint_pct
            << "% of capacity, " << requests << " requests\n\n";

  TextTable t({"policy", "hit%", "mean ms", "flash writes", "GC runs",
               "GC moves", "WAF", "erases", "wear max/mean"});
  for (const auto& policy : policies) {
    SimOptions options;
    options.ssd = ssd;
    options.policy.name = policy;
    options.policy.capacity_pages = cache_pages_for_mb(16);
    options.policy.pages_per_block = ssd.pages_per_block;
    options.cache.capacity_pages = options.policy.capacity_pages;

    // The wear view needs the device after the run, so drive the stack
    // directly instead of through Simulator.
    Ftl ftl(options.ssd);
    CacheManager cache(options.cache, make_policy(options.policy), ftl);
    SyntheticTraceSource trace(profile);
    IoRequest r;
    LogHistogram response;
    while (trace.next(r)) {
      response.record(cache.serve(r) - r.arrival);
    }
    cache.finalize();

    const auto& fm = ftl.metrics();
    const auto wear = ftl.array().wear_stats();
    t.add_row({cache.policy().name(),
               format_double(cache.metrics().hit_ratio() * 100, 2),
               format_double(response.mean() / kMillisecond, 3),
               std::to_string(fm.host_page_writes),
               std::to_string(fm.gc_runs), std::to_string(fm.gc_page_moves),
               format_double(fm.waf(), 3), std::to_string(fm.erases),
               std::to_string(wear.max_erases) + "/" +
                   format_double(wear.mean_erases, 2)});
  }
  t.print(std::cout);
  std::cout << "\nWAF = (host programs + GC moves) / host programs.\n";
  return 0;
}
