// Delta tuning: sweep Req-block's small-request threshold (the paper's
// sensitivity study, Fig. 7) on any workload and report hit ratio and
// response time normalized to delta = 1.
//
//   ./examples/delta_tuning [--profile ts_0] [--cache-mb 32]
//                           [--requests N] [--max-delta 9]
#include <iostream>

#include "sim/experiment.h"
#include "sim/report.h"
#include "trace/profiles.h"
#include "util/args.h"
#include "util/strings.h"

using namespace reqblock;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const std::string profile_name = args.get_or("profile", "ts_0");
  const auto profile = profiles::by_name(profile_name)
                           .capped(args.get_u64_or("requests", 250000));
  const std::uint64_t cache_mb = args.get_u64_or("cache-mb", 32);
  const auto max_delta =
      static_cast<std::uint32_t>(args.get_u64_or("max-delta", 9));

  std::vector<ExperimentCase> cases;
  for (std::uint32_t delta = 1; delta <= max_delta; ++delta) {
    ExperimentCase c;
    c.profile = profile;
    c.options = make_sim_options("reqblock", cache_mb, delta);
    c.label = "delta=" + std::to_string(delta);
    cases.push_back(std::move(c));
  }
  const auto results = run_cases(cases);

  const double base_hit = results.front().hit_ratio();
  const double base_resp = results.front().response.mean();
  TextTable t({"delta", "hit-ratio", "norm-hit", "mean-response",
               "norm-response"});
  std::uint32_t best_delta = 1;
  double best_hit = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const auto delta = static_cast<std::uint32_t>(i + 1);
    if (r.hit_ratio() > best_hit) {
      best_hit = r.hit_ratio();
      best_delta = delta;
    }
    t.add_row({std::to_string(delta),
               format_double(r.hit_ratio() * 100, 2) + "%",
               format_double(r.hit_ratio() / base_hit, 3),
               format_double(r.mean_response_ms(), 3) + "ms",
               format_double(r.response.mean() / base_resp, 3)});
  }
  std::cout << "Delta sensitivity on " << profile_name << " (" << cache_mb
            << "MB cache):\n";
  t.print(std::cout);
  std::cout << "\nBest hit ratio at delta = " << best_delta
            << " (the paper selects 5 as its default).\n";
  return 0;
}
