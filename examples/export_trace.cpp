// Export a synthetic profile as an MSR-Cambridge-format CSV, so the same
// workloads can be replayed in other simulators (SSDsim, MQSim, ...) or
// inspected with standard trace tooling.
//
//   ./examples/export_trace --profile ts_0 --requests 100000
//        --out /tmp/ts_0.csv
//   ./examples/export_trace --profile src1_2 --stdout | head
#include <iostream>
#include <sstream>

#include "trace/msr_trace.h"
#include "trace/profiles.h"
#include "trace/trace_stats.h"
#include "util/args.h"
#include "util/atomic_file.h"
#include "util/strings.h"

using namespace reqblock;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const std::string name = args.get_or("profile", "usr_0");
  const std::uint64_t cap = args.get_u64_or("requests", 100000);

  SyntheticTraceSource src(profiles::by_name(name).capped(cap));
  const auto requests = src.collect();

  if (args.has("stdout")) {
    write_msr_stream(std::cout, requests, 4096, name);
    return 0;
  }

  const std::string path = args.get_or("out", "/tmp/" + name + ".csv");
  // Atomic write: readers never observe a half-exported trace.
  std::ostringstream out;
  write_msr_stream(out, requests, 4096, name);
  try {
    write_file_atomic(path, out.str());
  } catch (const std::exception& e) {
    std::cerr << "cannot write " << path << ": " << e.what() << "\n";
    return 1;
  }

  // Round-trip sanity + summary for the user.
  const auto stats = [&] {
    SyntheticTraceSource again(profiles::by_name(name).capped(cap));
    return TraceStatsCollector::collect(again);
  }();
  std::cout << "Wrote " << requests.size() << " requests to " << path
            << "\n  write ratio " << format_double(stats.write_ratio() * 100, 1)
            << "%, mean write " << format_double(stats.mean_write_kb(), 1)
            << "KB, span "
            << format_double(static_cast<double>(stats.duration) / kSecond, 1)
            << "s\nReplay it with: ./examples/trace_replay --trace " << path
            << " --policy reqblock\n";
  return 0;
}
