// Trace replay: run any cache policy against an MSR-format trace file or
// one of the built-in synthetic profiles.
//
//   ./examples/trace_replay --profile proj_0 --policy reqblock
//        --cache-mb 32 [--requests N] [--delta D] [--occupancy]
//   ./examples/trace_replay --trace /path/to/msr.csv --policy lru
//
// The MSR path accepts the Microsoft Research Cambridge CSV format, so the
// paper's original traces can be replayed unchanged when available.
#include <iostream>
#include <memory>
#include <sstream>

#include "sim/checkpoint.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "trace/msr_trace.h"
#include "trace/profiles.h"
#include "trace/spc_trace.h"
#include "trace/trace_stats.h"
#include "trace/vector_source.h"
#include "util/args.h"
#include "util/atomic_file.h"
#include "util/strings.h"

using namespace reqblock;

namespace {

std::unique_ptr<TraceSource> open_trace(const ArgParser& args) {
  if (const auto path = args.get("trace")) {
    MsrParseOptions opts;
    opts.max_requests = args.get_u64_or("requests", 0);
    auto requests = parse_msr_file(*path, opts);
    std::cout << "Loaded " << requests.size() << " requests from " << *path
              << "\n";
    return std::make_unique<VectorTraceSource>(std::move(requests), *path);
  }
  if (const auto path = args.get("spc")) {
    SpcParseOptions opts;
    opts.max_requests = args.get_u64_or("requests", 0);
    auto requests = parse_spc_file(*path, opts);
    std::cout << "Loaded " << requests.size() << " SPC requests from "
              << *path << "\n";
    return std::make_unique<VectorTraceSource>(std::move(requests), *path);
  }
  const std::string name = args.get_or("profile", "usr_0");
  auto profile =
      profiles::by_name(name).capped(args.get_u64_or("requests", 300000));
  // Burst-arrival modulation (synthetic profiles only): --burst-period
  // requests per cycle, the first --burst-len of which arrive
  // --burst-factor times faster; the rest idle --burst-idle times slower.
  profile.burst_arrival_len =
      args.get_u64_strict("burst-len", profile.burst_arrival_len);
  profile.burst_arrival_period =
      args.get_u64_strict("burst-period", profile.burst_arrival_period);
  profile.burst_arrival_factor =
      args.get_double_strict("burst-factor", profile.burst_arrival_factor);
  profile.burst_idle_factor =
      args.get_double_strict("burst-idle", profile.burst_idle_factor);
  // Workload drift (long-horizon soaks): --drift-period rotates the hot
  // set by --drift-step extents every period; --diurnal-period/-amplitude
  // cycle the arrival rate.
  profile.drift_period =
      args.get_u64_strict("drift-period", profile.drift_period);
  profile.drift_step = args.get_u64_strict("drift-step", profile.drift_step);
  profile.diurnal_period =
      args.get_u64_strict("diurnal-period", profile.diurnal_period);
  profile.diurnal_amplitude = args.get_double_strict(
      "diurnal-amplitude", profile.diurnal_amplitude);
  return std::make_unique<SyntheticTraceSource>(profile);
}

}  // namespace

int main(int argc, char** argv) try {
  const ArgParser args(argc, argv);
  if (args.has("help")) {
    std::cout << "usage: " << args.program()
              << " [--profile NAME | --trace MSR_FILE | --spc SPC_FILE]"
                 " [--policy NAME] [--cache-mb MB] [--requests N]"
                 " [--delta D] [--warmup N] [--occupancy] [--stats-only]"
                 " [--csv FILE]\n"
                 "attribution: [--attribution] [--attribution-csv FILE]\n"
                 "fault injection: [--fault-seed S] [--fault-program-fail P]"
                 " [--fault-read-fail P] [--fault-erase-fail P]"
                 " [--fault-retries N] [--fault-spares N]"
                 " [--fault-power-loss-every N]\n"
                 "device aging: [--aging-rated-pe N]"
                 " [--aging-wear-program-max P] [--aging-wear-erase-max P]"
                 " [--aging-initial-pe N] [--aging-read-disturb-limit N]"
                 " [--aging-read-disturb-max P]"
                 " [--aging-retention-limit-ms MS] [--aging-retention-max P]"
                 " [--aging-eol-floor N] [--aging-eol-margin N]"
                 " [--aging-eol-spare-floor N]\n"
                 "data integrity: [--integrity-rber P]"
                 " [--integrity-rber-pe-anchor N] [--integrity-rber-pe-boost P]"
                 " [--integrity-rber-read-anchor N]"
                 " [--integrity-rber-read-boost P]"
                 " [--integrity-rber-age-anchor-ms MS]"
                 " [--integrity-rber-age-boost P] [--integrity-ecc-escape P]"
                 " [--integrity-retry-steps N] [--integrity-retry-relief F]"
                 " [--integrity-retry-step-us US] [--integrity-stripe-pages N]"
                 " [--integrity-uncorrectable-shed]"
                 " [--integrity-scrub-every N] [--integrity-scrub-budget-us US]"
                 " [--integrity-scrub-rber P]"
                 " [--integrity-scrub-error-limit N]\n"
                 "overload: [--queue-depth N] [--deadline-us US]"
                 " [--queue-retries N] [--queue-backoff-us US]"
                 " [--bg-flush-high F] [--bg-flush-low F] [--throttle]\n"
                 "tenants (synthetic only): [--tenants N]"
                 " [--arbiter rr|wrr|drr] [--drr-quantum PAGES]"
                 " [--tenant-weights W,..] [--tenant-rates R,..]"
                 " [--tenant-burst-len N,..] [--tenant-burst-period N,..]"
                 " [--tenant-burst-factor X,..] [--tenant-csv FILE]\n"
                 "telemetry: [--telemetry-trace LEVEL]"
                 " [--telemetry-trace-buffer N] [--telemetry-trace-sample N]"
                 " [--telemetry-snapshot-every N] [--telemetry-profile]"
                 " [--attribution]\n"
                 "burst arrivals (synthetic only): [--burst-len N]"
                 " [--burst-period N] [--burst-factor X] [--burst-idle X]\n"
                 "workload drift (synthetic only): [--drift-period N]"
                 " [--drift-step N] [--diurnal-period N]"
                 " [--diurnal-amplitude A]\n"
                 "checkpointing: [--checkpoint-dir DIR]"
                 " [--checkpoint-every-n REQS] [--resume-from FILE]\n"
                 "profiles: hm_1 lun_1 usr_0 src1_2 ts_0 proj_0\n"
                 "policies: lru fifo lfu cflru fab bplru vbbms reqblock\n";
    return 0;
  }

  auto trace = open_trace(args);

  if (args.has("stats-only")) {
    const auto stats = TraceStatsCollector::collect(*trace);
    TextTable t({"trace", "requests", "write-ratio", "mean-write",
                 "frequent-R", "frequent-(Wr)"});
    t.add_row({trace->name(), std::to_string(stats.requests),
               format_double(stats.write_ratio() * 100, 1) + "%",
               format_double(stats.mean_write_kb(), 1) + "KB",
               format_double(stats.frequent_ratio * 100, 1) + "%",
               format_double(stats.frequent_write_ratio * 100, 1) + "%"});
    t.print(std::cout);
    return 0;
  }

  SimOptions options = make_sim_options(
      args.get_or("policy", "reqblock"), args.get_u64_or("cache-mb", 32),
      static_cast<std::uint32_t>(args.get_u64_or("delta", 5)));
  options.warmup_requests = args.get_u64_or("warmup", 0);
  if (args.has("occupancy")) options.occupancy_log_interval = 10000;
  options.fault.apply_cli(args);
  options.overload.apply_cli(args);
  // Telemetry flags ride behind a "telemetry-" namespace: trace_replay's
  // own --trace and --profile already mean "MSR file" and "workload name".
  options.telemetry.apply_cli(args, "telemetry-");
  options.tenants.apply_cli(args);
  if (options.tenants.enabled() &&
      (args.has("trace") || args.has("spc"))) {
    std::cerr << "trace_replay: --tenants needs a synthetic --profile; "
                 "file-backed traces cannot be split into per-tenant "
                 "streams\n";
    return 1;
  }

  CheckpointOptions ckpt;
  ckpt.dir = args.get_or("checkpoint-dir", "");
  ckpt.every_n_requests = args.get_u64_strict("checkpoint-every-n", 0);
  std::string resume_from = args.get_or("resume-from", "");
  if (resume_from.empty() && !ckpt.dir.empty()) {
    // Restarted with the same --checkpoint-dir: pick up where we died.
    resume_from = find_latest_checkpoint(ckpt.dir, "run");
    if (!resume_from.empty()) {
      std::cout << "Resuming from " << resume_from << "\n";
    }
  }

  RunResult result;
  if (!ckpt.dir.empty() || !resume_from.empty()) {
    if (options.tenants.enabled()) {
      const auto* synth = dynamic_cast<const SyntheticTraceSource*>(&*trace);
      auto streams = make_tenant_streams(synth->profile(), options.tenants);
      result = run_with_checkpoints(options, streams.sources, ckpt,
                                    resume_from);
    } else {
      result = run_with_checkpoints(options, *trace, ckpt, resume_from);
    }
  } else {
    Simulator sim(options);
    result = sim.run(*trace);
  }

  results_table({result}).print(std::cout);
  // Fixed reliability section order: fault, aging, integrity.
  write_reliability_summary(std::cout, result);
  write_overload_summary(std::cout, result);
  write_tenant_summary(std::cout, result);
  if (const auto csv_path = args.get("tenant-csv")) {
    std::ostringstream csv;
    write_tenant_csv(csv, {result});
    write_file_atomic(*csv_path, csv.str());
    std::cout << "\nWrote per-tenant CSV to " << *csv_path << "\n";
  }
  write_tail_attribution(std::cout, {result});
  if (const auto csv_path = args.get("attribution-csv")) {
    std::ostringstream csv;
    write_tail_attribution_csv(csv, {result});
    write_file_atomic(*csv_path, csv.str());
    std::cout << "\nWrote tail attribution to " << *csv_path << "\n";
  }
  if (const auto csv_path = args.get("csv")) {
    // Temp file + atomic rename: a crash mid-write never leaves a
    // truncated CSV where a complete one is expected.
    std::ostringstream csv;
    write_results_csv(csv, {result});
    write_file_atomic(*csv_path, csv.str());
    std::cout << "\nWrote CSV row to " << *csv_path << "\n";
  }
  if (!result.occupancy_series.empty()) {
    std::cout << "\nList occupancy every 10k requests (IRL/SRL/DRL pages):\n";
    for (std::size_t i = 0; i < result.occupancy_series.size(); ++i) {
      const auto& o = result.occupancy_series[i];
      std::cout << "  @" << (i + 1) * 10000 << ": " << o.irl_pages << " / "
                << o.srl_pages << " / " << o.drl_pages << "\n";
    }
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "trace_replay: " << e.what() << "\n";
  return 1;
}
