// Resumable experiment matrix: every policy against one synthetic profile,
// with optional crash-consistent checkpointing.
//
//   ./examples/run_matrix --profile usr_0 --requests 50000 --cache-mb 32
//   ./examples/run_matrix --checkpoint-dir /tmp/ckpt --checkpoint-every-n 10000
//
// With --checkpoint-dir the run records per-case completion in a manifest
// and checkpoints the in-flight case; killing the process and rerunning
// the same command resumes where it died and produces byte-identical
// results (and CSV) to an uninterrupted run.
#include <iostream>
#include <sstream>

#include "cache/policy_factory.h"
#include "sim/checkpoint.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "trace/profiles.h"
#include "util/args.h"
#include "util/atomic_file.h"
#include "util/strings.h"

using namespace reqblock;

int main(int argc, char** argv) try {
  const ArgParser args(argc, argv);
  if (args.has("help")) {
    std::cout << "usage: " << args.program()
              << " [--profile NAME] [--requests N] [--cache-mb MB]"
                 " [--delta D] [--policies a,b,c] [--csv FILE]\n"
                 "checkpointing: [--checkpoint-dir DIR]"
                 " [--checkpoint-every-n REQS]\n"
                 "fault injection: [--fault-seed S] [--fault-program-fail P]"
                 " [--fault-read-fail P] [--fault-erase-fail P]"
                 " [--fault-retries N] [--fault-spares N]"
                 " [--fault-power-loss-every N]\n"
                 "device aging: [--aging-rated-pe N]"
                 " [--aging-wear-program-max P] [--aging-wear-erase-max P]"
                 " [--aging-initial-pe N] [--aging-read-disturb-limit N]"
                 " [--aging-read-disturb-max P]"
                 " [--aging-retention-limit-ms MS] [--aging-retention-max P]"
                 " [--aging-eol-floor N] [--aging-eol-margin N]"
                 " [--aging-eol-spare-floor N]\n"
                 "data integrity: [--integrity-rber P]"
                 " [--integrity-rber-pe-anchor N] [--integrity-rber-pe-boost P]"
                 " [--integrity-rber-read-anchor N]"
                 " [--integrity-rber-read-boost P]"
                 " [--integrity-rber-age-anchor-ms MS]"
                 " [--integrity-rber-age-boost P] [--integrity-ecc-escape P]"
                 " [--integrity-retry-steps N] [--integrity-retry-relief F]"
                 " [--integrity-retry-step-us US] [--integrity-stripe-pages N]"
                 " [--integrity-uncorrectable-shed]"
                 " [--integrity-scrub-every N] [--integrity-scrub-budget-us US]"
                 " [--integrity-scrub-rber P]"
                 " [--integrity-scrub-error-limit N]\n"
                 "overload: [--queue-depth N] [--deadline-us US]"
                 " [--queue-retries N] [--queue-backoff-us US]"
                 " [--bg-flush-high F] [--bg-flush-low F] [--throttle]\n"
                 "burst arrivals: [--burst-len N] [--burst-period N]"
                 " [--burst-factor X] [--burst-idle X]\n"
                 "workload drift: [--drift-period N] [--drift-step N]"
                 " [--diurnal-period N] [--diurnal-amplitude A]\n"
                 "tenants: [--tenants N] [--arbiter rr|wrr|drr]"
                 " [--drr-quantum PAGES] [--tenant-weights W,..]"
                 " [--tenant-rates R,..] [--tenant-burst-len N,..]"
                 " [--tenant-burst-period N,..] [--tenant-burst-factor X,..]"
                 " [--tenant-csv FILE]\n"
                 "profiles: hm_1 lun_1 usr_0 src1_2 ts_0 proj_0\n"
                 "policies: lru fifo lfu cflru fab bplru vbbms reqblock\n";
    return 0;
  }

  const std::string profile_name = args.get_or("profile", "usr_0");
  auto profile = profiles::by_name(profile_name)
                     .capped(args.get_u64_strict("requests", 50000));
  profile.burst_arrival_len =
      args.get_u64_strict("burst-len", profile.burst_arrival_len);
  profile.burst_arrival_period =
      args.get_u64_strict("burst-period", profile.burst_arrival_period);
  profile.burst_arrival_factor =
      args.get_double_strict("burst-factor", profile.burst_arrival_factor);
  profile.burst_idle_factor =
      args.get_double_strict("burst-idle", profile.burst_idle_factor);
  profile.drift_period =
      args.get_u64_strict("drift-period", profile.drift_period);
  profile.drift_step = args.get_u64_strict("drift-step", profile.drift_step);
  profile.diurnal_period =
      args.get_u64_strict("diurnal-period", profile.diurnal_period);
  profile.diurnal_amplitude = args.get_double_strict(
      "diurnal-amplitude", profile.diurnal_amplitude);

  std::vector<std::string> policies;
  if (const auto list = args.get("policies")) {
    for (const auto piece : split(*list, ',')) {
      const auto name = trim(piece);
      if (!name.empty()) policies.emplace_back(name);
    }
  } else {
    policies = known_policy_names();
  }

  std::vector<ExperimentCase> cases;
  for (const auto& policy : policies) {
    ExperimentCase c;
    c.profile = profile;
    c.options = make_sim_options(
        policy, args.get_u64_strict("cache-mb", 32),
        static_cast<std::uint32_t>(args.get_u64_strict("delta", 5)));
    c.options.fault.apply_cli(args);
    c.options.overload.apply_cli(args);
    c.options.tenants.apply_cli(args);
    c.label = policy;
    cases.push_back(std::move(c));
  }

  CheckpointOptions ckpt;
  ckpt.dir = args.get_or("checkpoint-dir", "");
  ckpt.every_n_requests = args.get_u64_strict("checkpoint-every-n", 0);

  std::vector<RunResult> results;
  if (!ckpt.dir.empty()) {
    // Sequential + manifest-tracked: a rerun after a crash skips the
    // finished cases and resumes the interrupted one mid-trace.
    results = run_cases_resumable(cases, ckpt);
  } else {
    results = run_cases(cases);
  }

  results_table(results).print(std::cout);
  // Reliability tables render per result in one fixed order (fault,
  // aging, integrity) so the report's shape does not depend on which
  // subsystems were enabled across the matrix.
  for (const auto& r : results) write_reliability_summary(std::cout, r);
  for (const auto& r : results) write_overload_summary(std::cout, r);
  for (const auto& r : results) write_tenant_summary(std::cout, r);

  if (const auto csv_path = args.get("tenant-csv")) {
    std::ostringstream csv;
    write_tenant_csv(csv, results);
    write_file_atomic(*csv_path, csv.str());
    std::cout << "\nWrote per-tenant CSV to " << *csv_path << "\n";
  }
  if (const auto csv_path = args.get("csv")) {
    std::ostringstream csv;
    write_results_csv(csv, results);
    write_file_atomic(*csv_path, csv.str());
    std::cout << "\nWrote " << results.size() << " CSV rows to " << *csv_path
              << "\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "run_matrix: " << e.what() << "\n";
  return 1;
}
