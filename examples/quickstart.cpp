// Quickstart: simulate an SSD with the Req-block DRAM write buffer on a
// small synthetic workload and print the headline metrics.
//
//   ./examples/quickstart [--requests N] [--cache-mb MB] [--delta D]
#include <iostream>

#include "sim/report.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"
#include "util/args.h"
#include "util/strings.h"

using namespace reqblock;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);

  // 1. Describe the workload: a hot set of small write requests (high
  //    reuse) plus cold sequential streams of large writes — the exact
  //    structure the paper's Observations 1-2 identify in real traces.
  WorkloadProfile profile;
  profile.name = "quickstart";
  profile.total_requests = args.get_u64_or("requests", 200000);
  profile.seed = 42;
  profile.write_ratio = 0.7;
  profile.hot_extents = 4096;
  profile.large_write_fraction = 0.15;
  profile.large_write_min_pages = 16;
  profile.large_write_max_pages = 48;
  profile.hot_zipf_theta = 1.1;
  SyntheticTraceSource trace(profile);

  // 2. Configure the device (Table 1 geometry) and the cache policy.
  SimOptions options =
      make_sim_options("reqblock", args.get_u64_or("cache-mb", 16),
                       static_cast<std::uint32_t>(args.get_u64_or("delta", 5)));
  options.occupancy_log_interval = 10000;

  std::cout << "SSD configuration:\n";
  print_config(std::cout, options.ssd);

  // 3. Run and report.
  Simulator sim(options);
  const RunResult result = sim.run(trace);

  std::cout << "\nRun summary (" << result.requests << " requests, "
            << result.policy_name << " policy):\n";
  results_table({result}).print(std::cout);

  std::cout << "\nCache behaviour:\n"
            << "  page hits        " << result.cache.page_hits << " / "
            << result.cache.page_lookups << " lookups ("
            << format_double(result.hit_ratio() * 100, 2) << "%)\n"
            << "  evictions        " << result.cache.evictions
            << " (mean batch " << format_double(
                   result.cache.eviction_batch.mean(), 2) << " pages)\n"
            << "  flash writes     " << result.flash.host_page_writes << "\n"
            << "  flash reads      " << result.flash.host_page_reads << "\n"
            << "  GC runs          " << result.flash.gc_runs << " ("
            << result.flash.gc_page_moves << " moves)\n";

  if (!result.occupancy_series.empty()) {
    const auto& last = result.occupancy_series.back();
    std::cout << "\nReq-block list occupancy at end of run (pages):\n"
              << "  IRL " << last.irl_pages << "  SRL " << last.srl_pages
              << "  DRL " << last.drl_pages << "\n";
  }
  std::cout << "\nSimulated " << result.requests << " requests covering "
            << format_double(static_cast<double>(result.sim_end) / kSecond, 1)
            << "s of device time in "
            << format_double(result.wall_seconds, 2) << "s of wall time.\n";
  return 0;
}
