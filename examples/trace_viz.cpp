// trace_viz: run a small workload with full telemetry and export a
// ready-to-open Chrome trace plus a metric-snapshot CSV.
//
//   ./examples/trace_viz [--requests N] [--cache-mb MB] [--policy NAME]
//                        [--out-dir DIR] [--trace LEVEL] [--trace-buffer E]
//                        [--trace-sample N] [--snapshot-every REQS]
//                        [--profile] [--attribution]
//                        [fault/overload flags, see trace_replay --help]
//
// Open the .trace.json in chrome://tracing or https://ui.perfetto.dev:
// pid 1 is the cache (one lane per Req-block list plus a host lane for
// admission events), pid 2 the flash chips, pid 3 the channel buses, and
// pid 4 the per-request latency attribution (one lane per component; a
// served request's spans tile arrival..completion across the lanes). The
// .snapshots.csv holds one row per snapshot interval with every
// registered metric as a column — plot the list.* columns over `request`
// to reproduce the paper's Fig. 13 occupancy plot.
#include <array>
#include <iostream>

#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"
#include "util/args.h"
#include "util/strings.h"
#include "util/table.h"

using namespace reqblock;

namespace {

/// Where an event kind renders in the exported Chrome trace. Keep in sync
/// with exporters.cc — every kind names a lane; nothing falls through to
/// an "unknown" bucket.
const char* lane_of(EventKind k) {
  switch (k) {
    case EventKind::kAttrSpan:
      return "attribution/<component> (pid 4)";
    case EventKind::kQueueEnqueue:
    case EventKind::kQueueTimeout:
    case EventKind::kThrottle:
      return "cache/host (pid 1)";
    case EventKind::kReqBlockSplit:
    case EventKind::kReqBlockPromote:
    case EventKind::kReqBlockMerge:
    case EventKind::kReqBlockBatchEvict:
      return "cache/IRL|SRL|DRL (pid 1)";
    case EventKind::kPageRead:
    case EventKind::kPageProgram:
      return "flash chip + channel (pids 2, 3)";
    default:
      break;
  }
  return category_of(k) == EventCategory::kCache ? "cache/manager (pid 1)"
                                                 : "flash chip (pid 2)";
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);

  WorkloadProfile profile;
  profile.name = "trace_viz";
  profile.total_requests = args.get_u64_or("requests", 50000);
  profile.seed = 7;
  profile.write_ratio = 0.7;
  profile.hot_extents = 2048;
  profile.large_write_fraction = 0.15;
  profile.large_write_min_pages = 16;
  profile.large_write_max_pages = 48;
  profile.hot_zipf_theta = 1.1;
  SyntheticTraceSource trace(profile);

  SimOptions options = make_sim_options(
      args.get_or("policy", "reqblock"), args.get_u64_or("cache-mb", 16));

  // Telemetry on by default here — that is the point of this example.
  // Flags (and REQBLOCK_TRACE) can still narrow or widen it.
  options.telemetry.trace.level = TraceLevel::kAll;
  options.telemetry.snapshot_every_requests = 1000;
  options.telemetry.profile = true;
  options.telemetry.apply_cli(args);
  // Fault injection and overload protection off by default; their flags
  // let the export show retry/timeout/throttle lanes on demand.
  options.fault.apply_cli(args);
  options.overload.apply_cli(args);

  Simulator sim(options);
  const RunResult result = sim.run(trace);

  const std::string out_dir = args.get_or("out-dir", "trace_viz_out");
  const RunArtifacts artifacts = export_run_artifacts(result, out_dir);

  std::cout << "Run: " << result.requests << " requests, "
            << result.policy_name << " policy, hit ratio "
            << format_double(result.hit_ratio() * 100, 2) << "%\n"
            << "Events: " << result.telemetry.events.size() << " collected ("
            << result.telemetry.events_emitted << " emitted, "
            << result.telemetry.events_dropped << " overwritten, "
            << result.telemetry.events_sampled_out << " sampled out)\n\n";
  if (!artifacts.chrome_trace.empty()) {
    std::cout << "Chrome trace : " << artifacts.chrome_trace
              << "  (open in chrome://tracing or ui.perfetto.dev)\n"
              << "Event JSONL  : " << artifacts.events_jsonl << "\n";
  }
  if (!artifacts.snapshots_csv.empty()) {
    std::cout << "Snapshot CSV : " << artifacts.snapshots_csv << "  ("
              << result.telemetry.snapshots.rows.size() << " rows x "
              << result.telemetry.snapshots.columns.size()
              << " metrics)\n";
  }
  std::cout << "\n";

  // Per-kind legend: how many events of each kind the export holds and
  // the Perfetto lane they render on (fault and overload kinds included).
  if (!result.telemetry.events.empty()) {
    constexpr std::size_t kKinds =
        static_cast<std::size_t>(EventKind::kAttrSpan) + 1;
    std::array<std::uint64_t, kKinds> counts{};
    for (const TraceEvent& e : result.telemetry.events) {
      ++counts[static_cast<std::size_t>(e.kind)];
    }
    TextTable legend({"event kind", "count", "lane"});
    for (std::size_t k = 0; k < kKinds; ++k) {
      if (counts[k] == 0) continue;
      const auto kind = static_cast<EventKind>(k);
      legend.add_row({to_string(kind), std::to_string(counts[k]),
                      lane_of(kind)});
    }
    legend.print(std::cout);
    std::cout << "\n";
  }

  write_tail_attribution(std::cout, {result});
  write_snapshot_summary(std::cout, result);
  std::cout << "\n";
  write_self_profile(std::cout, result);
  return 0;
}
