// trace_viz: run a small workload with full telemetry and export a
// ready-to-open Chrome trace plus a metric-snapshot CSV.
//
//   ./examples/trace_viz [--requests N] [--cache-mb MB] [--policy NAME]
//                        [--out-dir DIR] [--trace LEVEL] [--trace-buffer E]
//                        [--trace-sample N] [--snapshot-every REQS]
//                        [--profile]
//
// Open the .trace.json in chrome://tracing or https://ui.perfetto.dev:
// pid 1 is the cache (one lane per Req-block list), pid 2 the flash chips,
// pid 3 the channel buses. The .snapshots.csv holds one row per snapshot
// interval with every registered metric as a column — plot the list.*
// columns over `request` to reproduce the paper's Fig. 13 occupancy plot.
#include <iostream>

#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"
#include "util/args.h"
#include "util/strings.h"

using namespace reqblock;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);

  WorkloadProfile profile;
  profile.name = "trace_viz";
  profile.total_requests = args.get_u64_or("requests", 50000);
  profile.seed = 7;
  profile.write_ratio = 0.7;
  profile.hot_extents = 2048;
  profile.large_write_fraction = 0.15;
  profile.large_write_min_pages = 16;
  profile.large_write_max_pages = 48;
  profile.hot_zipf_theta = 1.1;
  SyntheticTraceSource trace(profile);

  SimOptions options = make_sim_options(
      args.get_or("policy", "reqblock"), args.get_u64_or("cache-mb", 16));

  // Telemetry on by default here — that is the point of this example.
  // Flags (and REQBLOCK_TRACE) can still narrow or widen it.
  options.telemetry.trace.level = TraceLevel::kAll;
  options.telemetry.snapshot_every_requests = 1000;
  options.telemetry.profile = true;
  options.telemetry.apply_cli(args);

  Simulator sim(options);
  const RunResult result = sim.run(trace);

  const std::string out_dir = args.get_or("out-dir", "trace_viz_out");
  const RunArtifacts artifacts = export_run_artifacts(result, out_dir);

  std::cout << "Run: " << result.requests << " requests, "
            << result.policy_name << " policy, hit ratio "
            << format_double(result.hit_ratio() * 100, 2) << "%\n"
            << "Events: " << result.telemetry.events.size() << " collected ("
            << result.telemetry.events_emitted << " emitted, "
            << result.telemetry.events_dropped << " overwritten, "
            << result.telemetry.events_sampled_out << " sampled out)\n\n";
  if (!artifacts.chrome_trace.empty()) {
    std::cout << "Chrome trace : " << artifacts.chrome_trace
              << "  (open in chrome://tracing or ui.perfetto.dev)\n"
              << "Event JSONL  : " << artifacts.events_jsonl << "\n";
  }
  if (!artifacts.snapshots_csv.empty()) {
    std::cout << "Snapshot CSV : " << artifacts.snapshots_csv << "  ("
              << result.telemetry.snapshots.rows.size() << " rows x "
              << result.telemetry.snapshots.columns.size()
              << " metrics)\n";
  }
  std::cout << "\n";
  write_snapshot_summary(std::cout, result);
  std::cout << "\n";
  write_self_profile(std::cout, result);
  return 0;
}
