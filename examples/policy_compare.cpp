// Policy shoot-out: run every cache management scheme on the same
// workload and cache size, in parallel, and print a comparison table —
// a one-command version of the paper's Figs. 8/9 for a single trace.
//
//   ./examples/policy_compare [--profile src1_2] [--cache-mb 32]
//                             [--requests N] [--all-policies]
//                             [--attribution] [--attribution-csv FILE]
//
// --attribution decomposes every policy's request latency into its
// critical-path components and appends a per-policy tail root-cause
// report (slowest decile and percentile).
#include <iostream>
#include <sstream>

#include "sim/experiment.h"
#include "sim/report.h"
#include "trace/profiles.h"
#include "util/args.h"
#include "util/atomic_file.h"
#include "util/strings.h"
#include "util/stats.h"

using namespace reqblock;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const std::string profile_name = args.get_or("profile", "src1_2");
  const std::uint64_t cache_mb = args.get_u64_or("cache-mb", 32);
  const auto profile = profiles::by_name(profile_name)
                           .capped(args.get_u64_or("requests", 300000));

  const auto policies =
      args.has("all-policies") ? known_policy_names() : paper_policy_names();

  std::vector<ExperimentCase> cases;
  for (const auto& policy : policies) {
    ExperimentCase c;
    c.profile = profile;
    c.options = make_sim_options(policy, cache_mb);
    c.options.telemetry.attribution = args.has("attribution");
    c.label = policy;
    cases.push_back(std::move(c));
  }

  std::cout << "Comparing " << cases.size() << " policies on "
            << profile_name << " (" << profile.total_requests
            << " requests, " << cache_mb << "MB cache)...\n\n";
  const auto results = run_cases(cases);

  results_table(results).print(std::cout);

  // Normalized comparison against LRU, the paper's baseline.
  const RunResult* lru = nullptr;
  for (const auto& r : results) {
    if (r.policy_name == "LRU") lru = &r;
  }
  if (lru != nullptr) {
    std::cout << "\nRelative to LRU:\n";
    TextTable t({"policy", "hit-ratio", "response-time", "flash-writes"});
    for (const auto& r : results) {
      t.add_row({r.policy_name,
                 format_double(
                     percent_change(r.hit_ratio(), lru->hit_ratio()), 1) +
                     "%",
                 format_double(percent_change(r.response.mean(),
                                              lru->response.mean()), 1) +
                     "%",
                 format_double(percent_change(
                     static_cast<double>(r.flash_write_count()),
                     static_cast<double>(lru->flash_write_count())), 1) +
                     "%"});
    }
    t.print(std::cout);
  }
  if (args.has("attribution")) {
    std::cout << "\n";
    write_tail_attribution(std::cout, results);
    if (const auto csv_path = args.get("attribution-csv")) {
      std::ostringstream csv;
      write_tail_attribution_csv(csv, results);
      write_file_atomic(*csv_path, csv.str());
      std::cout << "Wrote tail attribution to " << *csv_path << "\n";
    }
  }
  return 0;
}
