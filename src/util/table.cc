#include "util/table.h"

#include <algorithm>

namespace reqblock {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << cell << std::string(widths[i] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

}  // namespace reqblock
