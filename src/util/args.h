// Minimal command-line flag parsing for the example binaries.
//
// Supports "--key value" and "--key=value" forms plus boolean switches.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace reqblock {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, std::string fallback) const;
  std::uint64_t get_u64_or(const std::string& key,
                           std::uint64_t fallback) const;
  double get_double_or(const std::string& key, double fallback) const;

  /// Strict numeric accessors for flags where a silently-dropped typo
  /// would change results (get_u64_or falls back on malformed input — fine
  /// for exploratory tools, wrong for checkpoint intervals). A missing
  /// flag returns the fallback; a present but malformed, negative, or
  /// trailing-garbage value ("5x", "-3", "1e99x") throws
  /// std::invalid_argument naming the flag and the offending value.
  std::uint64_t get_u64_strict(const std::string& key,
                               std::uint64_t fallback) const;
  double get_double_strict(const std::string& key, double fallback) const;

  /// Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace reqblock
