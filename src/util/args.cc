#include "util/args.h"

#include <cmath>
#include <stdexcept>

#include "util/strings.h"

namespace reqblock {

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";  // boolean switch
    }
  }
}

bool ArgParser::has(const std::string& key) const {
  return flags_.contains(key);
}

std::optional<std::string> ArgParser::get(const std::string& key) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::get_or(const std::string& key,
                              std::string fallback) const {
  const auto v = get(key);
  return v ? *v : std::move(fallback);
}

std::uint64_t ArgParser::get_u64_or(const std::string& key,
                                    std::uint64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const auto parsed = parse_u64(*v);
  return parsed ? *parsed : fallback;
}

double ArgParser::get_double_or(const std::string& key,
                                double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const auto parsed = parse_double(*v);
  return parsed ? *parsed : fallback;
}

std::uint64_t ArgParser::get_u64_strict(const std::string& key,
                                        std::uint64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const auto parsed = parse_u64(*v);
  if (!parsed) {
    throw std::invalid_argument(
        "--" + key + ": invalid value '" + *v +
        "' (expected a non-negative integer with no trailing characters, "
        "e.g. --" + key + " 1000)");
  }
  return *parsed;
}

double ArgParser::get_double_strict(const std::string& key,
                                    double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const auto parsed = parse_double(*v);
  if (!parsed || !std::isfinite(*parsed)) {
    throw std::invalid_argument(
        "--" + key + ": invalid value '" + *v +
        "' (expected a finite number with no trailing characters, e.g. --" +
        key + " 0.5)");
  }
  return *parsed;
}

}  // namespace reqblock
