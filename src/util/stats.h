// Small statistics helpers used by the experiment harness.
#pragma once

#include <cmath>
#include <cstdint>

namespace reqblock {

/// Welford running mean/variance accumulator.
class RunningStat {
 public:
  void record(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

  void clear() {
    n_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
  }

  // --- Checkpoint support (snapshot/) ----------------------------------
  double raw_mean() const { return mean_; }
  double raw_m2() const { return m2_; }
  void restore(std::uint64_t n, double mean, double m2) {
    n_ = n;
    mean_ = mean;
    m2_ = m2;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Safe ratio: returns 0 when the denominator is 0.
inline double ratio(double num, double den) {
  return den == 0.0 ? 0.0 : num / den;
}

/// Percent-change of `value` relative to `base` (positive = larger).
inline double percent_change(double value, double base) {
  return base == 0.0 ? 0.0 : (value - base) / base * 100.0;
}

}  // namespace reqblock
