// String/CSV parsing helpers used by the trace parsers and report printers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace reqblock {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Parses an unsigned integer; nullopt on any malformed input.
std::optional<std::uint64_t> parse_u64(std::string_view s);

/// Parses a signed integer; nullopt on any malformed input.
std::optional<std::int64_t> parse_i64(std::string_view s);

/// Parses a double; nullopt on any malformed input.
std::optional<double> parse_double(std::string_view s);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

/// Formats a double with the given number of decimals (fixed notation,
/// locale-independent: always '.' as the decimal separator).
std::string format_double(double v, int decimals);

/// Human-friendly byte count, e.g. "16.0MB".
std::string format_bytes(double bytes);

}  // namespace reqblock
