// Invariant-audit framework.
//
// Audits are deep structural self-checks that the major stateful components
// (cache policies, CacheManager, FTL, FlashArray) expose as `audit()`
// methods. Unlike REQB_CHECK — a single hot-path assertion that throws at
// the first violated expression — an audit walks a whole structure,
// *collects* every violated invariant into an AuditReport, attaches a
// structural dump, and only then raises, so one failure message shows the
// full picture instead of the first symptom.
//
// Two gates control the cost:
//   * compile time: REQBLOCK_AUDIT_MAX_LEVEL (CMake option of the same
//     name) caps the level that can ever run; at 0 every run_audit call
//     compiles down to a level check against a constant and dead code.
//   * run time: the REQBLOCK_AUDIT environment variable ("off", "light",
//     "full") or set_audit_level() select the active level, clamped to the
//     compiled maximum. Tests drive "full"; the default is "light".
//
// Level semantics:
//   * kLight — O(1)/O(lists) counter cross-checks, cheap enough to leave on
//     in every run (this is the default);
//   * kFull  — O(n) deep walks: every list node, every page mapping, every
//     physical page counter, after every mutation batch.
#pragma once

#include <exception>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace reqblock {

enum class AuditLevel : int { kOff = 0, kLight = 1, kFull = 2 };

inline const char* to_string(AuditLevel l) {
  switch (l) {
    case AuditLevel::kOff: return "off";
    case AuditLevel::kLight: return "light";
    case AuditLevel::kFull: return "full";
  }
  return "?";
}

/// Compile-time ceiling for audit work (0 = compiled out, 1 = light,
/// 2 = full). Overridable via -DREQBLOCK_AUDIT_MAX_LEVEL=<n>.
#ifndef REQBLOCK_AUDIT_MAX_LEVEL
#define REQBLOCK_AUDIT_MAX_LEVEL 2
#endif

inline constexpr AuditLevel kAuditCompiledMax =
    static_cast<AuditLevel>(REQBLOCK_AUDIT_MAX_LEVEL);

/// Active level: min(compiled max, runtime selection). The runtime value is
/// initialized from the REQBLOCK_AUDIT environment variable on first use.
AuditLevel audit_level();

/// Overrides the runtime level (clamped to the compiled maximum). Returns
/// the previous runtime level so tests can restore it. Thread-safe.
AuditLevel set_audit_level(AuditLevel level);

/// Parses an REQBLOCK_AUDIT-style string ("off"/"0", "light"/"1",
/// "full"/"2"/"on"); unrecognized text yields `fallback`.
AuditLevel parse_audit_level(std::string_view text, AuditLevel fallback);

/// True when audits at `level` are both compiled in and runtime-enabled.
inline bool audit_enabled(AuditLevel level) {
  if (kAuditCompiledMax < level) return false;
  return audit_level() >= level;
}

/// One violated invariant.
struct AuditFailure {
  std::string invariant;  // the checked expression / rule name
  std::string detail;     // instance data: ids, counts, expected vs actual
};

/// Collects invariant violations for one audited subject. Cheap when
/// everything passes: failure strings and dumps are only materialized on
/// violation.
class AuditReport {
 public:
  explicit AuditReport(std::string subject) : subject_(std::move(subject)) {}

  /// Records a failure unless `ok`; returns `ok` so callers can chain
  /// dependent checks (skip detail checks whose preconditions failed).
  bool require(bool ok, std::string_view invariant,
               std::string_view detail = {}) {
    if (!ok) fail(invariant, detail);
    return ok;
  }

  void fail(std::string_view invariant, std::string_view detail = {}) {
    failures_.push_back(
        AuditFailure{std::string(invariant), std::string(detail)});
  }

  /// Attaches a structural dump rendered only if the report ends up failed
  /// (dumps of large structures are expensive; never pay on success).
  void attach_dump(std::function<std::string()> dump) {
    dump_ = std::move(dump);
  }

  bool ok() const { return failures_.empty(); }
  std::size_t failure_count() const { return failures_.size(); }
  const std::vector<AuditFailure>& failures() const { return failures_; }
  const std::string& subject() const { return subject_; }

  /// Human-readable report: subject, every failure, then the dump.
  std::string to_string() const;

  /// Throws std::logic_error carrying to_string() when any check failed.
  void throw_if_failed() const;

 private:
  std::string subject_;
  std::vector<AuditFailure> failures_;
  std::function<std::string()> dump_;
};

/// Runs `fn(AuditReport&)` when audits at `level` are enabled, then throws
/// if the report collected failures. The report is only constructed when
/// the audit actually runs.
template <typename Fn>
void run_audit(const char* subject, AuditLevel level, Fn&& fn) {
  if (!audit_enabled(level)) return;
  AuditReport report(subject);
  fn(report);
  report.throw_if_failed();
}

/// RAII audit scope: runs the audit when the scope exits *normally* (it
/// stays quiet during unwinding so it never masks the original error).
/// Usage:
///   AuditScope scope("ReqBlockPolicy", AuditLevel::kFull,
///                    [&](AuditReport& r) { policy.audit(r); });
template <typename Fn>
class AuditScope {
 public:
  AuditScope(const char* subject, AuditLevel level, Fn fn)
      : subject_(subject),
        level_(level),
        fn_(std::move(fn)),
        exceptions_at_entry_(std::uncaught_exceptions()) {}

  AuditScope(const AuditScope&) = delete;
  AuditScope& operator=(const AuditScope&) = delete;

  ~AuditScope() noexcept(false) {
    if (std::uncaught_exceptions() > exceptions_at_entry_) return;
    run_audit(subject_, level_, fn_);
  }

 private:
  const char* subject_;
  AuditLevel level_;
  Fn fn_;
  int exceptions_at_entry_;
};

}  // namespace reqblock

/// Records a failed invariant in `report` (detail-free form). Evaluates to
/// the checked condition, like AuditReport::require.
#define REQB_AUDIT(report, expr) (report).require((expr), #expr)

/// Same, with a detail expression evaluated only on failure.
#define REQB_AUDIT_MSG(report, expr, detail) \
  ((expr) ? true : ((report).fail(#expr, (detail)), false))
