// Zipf-distributed sampling over {0, 1, ..., n-1}.
//
// Uses the classic precomputed-CDF method with binary search; footprints in
// this library are at most a few million items, for which a one-time O(n)
// table is cheap and sampling is O(log n) and perfectly deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace reqblock {

class ZipfSampler {
 public:
  /// n: population size (>= 1); theta: skew (0 = uniform; ~0.99 typical).
  ZipfSampler(std::uint64_t n, double theta);

  /// Draws one item; rank 0 is the most popular.
  std::uint64_t sample(Rng& rng) const;

  std::uint64_t population() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
};

}  // namespace reqblock
