#include "util/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace reqblock {

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  REQB_CHECK_MSG(n >= 1, "Zipf population must be non-empty");
  REQB_CHECK_MSG(theta >= 0.0, "Zipf skew must be non-negative");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  const double inv = 1.0 / sum;
  for (auto& v : cdf_) v *= inv;
  cdf_.back() = 1.0;  // guard against rounding
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

}  // namespace reqblock
