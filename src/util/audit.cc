#include "util/audit.h"

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace reqblock {

namespace {

AuditLevel clamp_to_compiled(AuditLevel level) {
  if (level < AuditLevel::kOff) return AuditLevel::kOff;
  return level > kAuditCompiledMax ? kAuditCompiledMax : level;
}

std::atomic<int>& level_storage() {
  // REQBLOCK_AUDIT is read once under the static-init guard and the
  // process never calls setenv, so getenv's mt-unsafety cannot bite.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  static const char* env = std::getenv("REQBLOCK_AUDIT");
  static std::atomic<int> level{static_cast<int>(clamp_to_compiled(
      parse_audit_level(env != nullptr ? env : "", AuditLevel::kLight)))};
  return level;
}

}  // namespace

AuditLevel parse_audit_level(std::string_view text, AuditLevel fallback) {
  if (text == "off" || text == "0" || text == "none") return AuditLevel::kOff;
  if (text == "light" || text == "1") return AuditLevel::kLight;
  if (text == "full" || text == "2" || text == "on") return AuditLevel::kFull;
  return fallback;
}

AuditLevel audit_level() {
  return static_cast<AuditLevel>(
      level_storage().load(std::memory_order_relaxed));
}

AuditLevel set_audit_level(AuditLevel level) {
  return static_cast<AuditLevel>(level_storage().exchange(
      static_cast<int>(clamp_to_compiled(level)), std::memory_order_relaxed));
}

std::string AuditReport::to_string() const {
  std::ostringstream os;
  os << "Audit of " << subject_ << ": ";
  if (ok()) {
    os << "ok";
    return os.str();
  }
  os << failures_.size() << " invariant violation"
     << (failures_.size() == 1 ? "" : "s");
  for (const AuditFailure& f : failures_) {
    os << "\n  * " << f.invariant;
    if (!f.detail.empty()) os << " — " << f.detail;
  }
  if (dump_) {
    os << "\n--- structural dump ---\n" << dump_();
  }
  return os.str();
}

void AuditReport::throw_if_failed() const {
  if (!ok()) throw std::logic_error(to_string());
}

}  // namespace reqblock
