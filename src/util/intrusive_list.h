// Intrusive doubly-linked list.
//
// Cache policies in this library are built on linked lists whose nodes are
// embedded in larger bookkeeping structs (request blocks, page entries, ...).
// An intrusive list gives O(1) unlink/move-to-head without any allocation,
// which is exactly what LRU-style structures need.
#pragma once

#include <cstddef>

#include "util/check.h"

namespace reqblock {

/// Embed one of these per list the object can live on.
struct ListHook {
  ListHook* prev = nullptr;
  ListHook* next = nullptr;

  bool linked() const { return prev != nullptr; }
};

/// Intrusive list of T, where `Hook` is a pointer-to-member selecting which
/// ListHook inside T this list threads through.
template <typename T, ListHook T::* Hook>
class IntrusiveList {
 public:
  IntrusiveList() {
    sentinel_.prev = &sentinel_;
    sentinel_.next = &sentinel_;
  }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return sentinel_.next == &sentinel_; }
  std::size_t size() const { return size_; }

  /// Most-recently-used end.
  T* head() const {
    return empty() ? nullptr : owner(sentinel_.next);
  }

  /// Least-recently-used end.
  T* tail() const {
    return empty() ? nullptr : owner(sentinel_.prev);
  }

  T* next(T* item) const {
    ListHook* h = hook(item)->next;
    return h == &sentinel_ ? nullptr : owner(h);
  }

  T* prev(T* item) const {
    ListHook* h = hook(item)->prev;
    return h == &sentinel_ ? nullptr : owner(h);
  }

  void push_front(T* item) { insert_after(&sentinel_, hook(item)); }
  void push_back(T* item) { insert_after(sentinel_.prev, hook(item)); }

  /// Unlinks the item; it must currently be on this list.
  void erase(T* item) {
    ListHook* h = hook(item);
    REQB_DCHECK(h->linked());
    h->prev->next = h->next;
    h->next->prev = h->prev;
    h->prev = nullptr;
    h->next = nullptr;
    --size_;
  }

  /// Moves an already-linked item to the head (MRU position).
  void move_to_front(T* item) {
    erase(item);
    push_front(item);
  }

  /// Moves an already-linked item to the tail (LRU position).
  void move_to_back(T* item) {
    erase(item);
    push_back(item);
  }

  T* pop_back() {
    T* t = tail();
    if (t != nullptr) erase(t);
    return t;
  }

  T* pop_front() {
    T* t = head();
    if (t != nullptr) erase(t);
    return t;
  }

  bool contains(const T* item) const {
    // O(1) approximation: hook-linked means on *some* list; callers that put
    // an object on multiple lists use distinct hooks, so this is exact in
    // practice and asserted in debug sweeps.
    return hookc(item)->linked();
  }

  /// Iteration helper: calls fn(T*) from head to tail. fn must not unlink
  /// the current element.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (ListHook* h = sentinel_.next; h != &sentinel_; h = h->next) {
      fn(owner(h));
    }
  }

  /// Deep structural check used by the audit layer: walks the whole chain
  /// verifying link symmetry (h->next->prev == h) and that the node count
  /// matches size_ (a mismatch is the signature of erasing a node through
  /// the wrong list). Bounded by size_ + 1 hops so a corrupted cycle cannot
  /// hang the audit. Returns false on any violation.
  bool validate() const {
    std::size_t walked = 0;
    const ListHook* h = &sentinel_;
    do {
      if (h->next == nullptr || h->prev == nullptr) return false;
      if (h->next->prev != h || h->prev->next != h) return false;
      h = h->next;
      if (++walked > size_ + 1) return false;
    } while (h != &sentinel_);
    return walked == size_ + 1;
  }

 private:
  static ListHook* hook(T* item) { return &(item->*Hook); }
  static const ListHook* hookc(const T* item) { return &(item->*Hook); }

  static T* owner(ListHook* h) {
    // Standard container_of computation via pointer-to-member.
    alignas(T) static char probe_storage[sizeof(T)];
    T* probe = reinterpret_cast<T*>(probe_storage);
    const auto offset = reinterpret_cast<char*>(&(probe->*Hook)) -
                        reinterpret_cast<char*>(probe);
    return reinterpret_cast<T*>(reinterpret_cast<char*>(h) - offset);
  }

  void insert_after(ListHook* pos, ListHook* h) {
    REQB_DCHECK(!h->linked());
    h->prev = pos;
    h->next = pos->next;
    pos->next->prev = h;
    pos->next = h;
    ++size_;
  }

  ListHook sentinel_;
  std::size_t size_ = 0;
};

}  // namespace reqblock
