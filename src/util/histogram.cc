#include "util/histogram.h"

#include <algorithm>
#include <bit>

#include "util/check.h"

namespace reqblock {
namespace {

// 16 sub-buckets per power of two: bucket = 16*log2(v) + sub.
constexpr std::size_t kSubBuckets = 16;
constexpr std::size_t kMaxBuckets = 64 * kSubBuckets + 1;

}  // namespace

LogHistogram::LogHistogram() : buckets_(kMaxBuckets, 0) {}

std::size_t LogHistogram::bucket_count() { return kMaxBuckets; }

std::size_t LogHistogram::bucket_index(std::int64_t v) {
  if (v < 0) v = 0;
  return std::min(bucket_for(v), kMaxBuckets - 1);
}

std::int64_t LogHistogram::bucket_value(std::size_t b) {
  return bucket_mid(std::min(b, kMaxBuckets - 1));
}

std::size_t LogHistogram::bucket_for(std::int64_t v) {
  REQB_DCHECK(v >= 0);
  const auto u = static_cast<std::uint64_t>(v);
  if (u < kSubBuckets) return static_cast<std::size_t>(u);
  const int log2v = 63 - std::countl_zero(u);
  const std::uint64_t sub = (u >> (log2v - 4)) & (kSubBuckets - 1);
  return static_cast<std::size_t>(log2v) * kSubBuckets + sub;
}

std::int64_t LogHistogram::bucket_mid(std::size_t b) {
  if (b < kSubBuckets) return static_cast<std::int64_t>(b);
  const std::size_t log2v = b / kSubBuckets;
  const std::size_t sub = b % kSubBuckets;
  const std::uint64_t base = 1ULL << log2v;
  const std::uint64_t step = base / kSubBuckets;
  const std::uint64_t lo = base + sub * step;
  return static_cast<std::int64_t>(lo + step / 2);
}

void LogHistogram::record(std::int64_t value) {
  if (value < 0) value = 0;
  const std::size_t b = std::min(bucket_for(value), buckets_.size() - 1);
  ++buckets_[b];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += static_cast<double>(value);
}

void LogHistogram::merge(const LogHistogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LogHistogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0;
}

double LogHistogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

void LogHistogram::restore(std::vector<std::uint64_t> buckets,
                           std::uint64_t count, double sum, std::int64_t min,
                           std::int64_t max) {
  REQB_CHECK_MSG(buckets.size() == kMaxBuckets,
                 "checkpointed histogram has a different bucket layout");
  buckets_ = std::move(buckets);
  count_ = count;
  sum_ = sum;
  min_ = min;
  max_ = max;
}

std::int64_t LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen > rank) {
      return std::clamp(bucket_mid(b), min_, max_);
    }
  }
  return max_;
}

void CountHistogram::record(std::uint64_t value) {
  if (value >= counts_.size()) counts_.resize(value + 1, 0);
  ++counts_[value];
  ++count_;
  sum_ += static_cast<double>(value);
}

void CountHistogram::merge(const CountHistogram& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void CountHistogram::clear() {
  counts_.clear();
  count_ = 0;
  sum_ = 0.0;
}

double CountHistogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::uint64_t CountHistogram::max() const {
  for (std::size_t i = counts_.size(); i > 0; --i) {
    if (counts_[i - 1] > 0) return i - 1;
  }
  return 0;
}

std::uint64_t CountHistogram::at(std::uint64_t v) const {
  return v < counts_.size() ? counts_[v] : 0;
}

void CountHistogram::restore(std::vector<std::uint64_t> counts,
                             std::uint64_t count, double sum) {
  counts_ = std::move(counts);
  count_ = count;
  sum_ = sum;
}

}  // namespace reqblock
