#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace reqblock {

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  s = trim(s);
  std::uint64_t v = 0;
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, v);
  if (ec != std::errc{} || ptr != end || s.empty()) return std::nullopt;
  return v;
}

std::optional<std::int64_t> parse_i64(std::string_view s) {
  s = trim(s);
  std::int64_t v = 0;
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, v);
  if (ec != std::errc{} || ptr != end || s.empty()) return std::nullopt;
  return v;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars<double> is not universally available; strtod on a
  // bounded copy is portable and exact enough for trace fields.
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string format_double(double v, int decimals) {
  // std::to_chars, not snprintf: %f honors the process locale, and a
  // stray setlocale() would turn "0.5" into "0,5" in every CSV we write.
  if (decimals < 0) decimals = 0;
  if (decimals > 32) decimals = 32;
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v,
                                       std::chars_format::fixed, decimals);
  if (ec != std::errc{}) {
    // Out of range for the fixed representation (huge magnitude); fall
    // back to scientific, which always fits.
    const auto [p2, e2] =
        std::to_chars(buf, buf + sizeof(buf), v,
                      std::chars_format::scientific, decimals);
    return std::string(buf, e2 == std::errc{} ? p2 : buf);
  }
  return std::string(buf, ptr);
}

std::string format_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return format_double(bytes, 1) + units[u];
}

}  // namespace reqblock
