// Lightweight invariant checking used throughout the library.
//
// REQB_CHECK is always on (simulation correctness beats the tiny branch
// cost); REQB_DCHECK compiles out in NDEBUG builds and is meant for
// hot-path invariants exercised heavily by the test suite.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace reqblock::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "Check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace reqblock::detail

#define REQB_CHECK(expr)                                                     \
  do {                                                                       \
    if (!(expr))                                                             \
      ::reqblock::detail::check_failed(#expr, __FILE__, __LINE__, "");       \
  } while (0)

#define REQB_CHECK_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr))                                                             \
      ::reqblock::detail::check_failed(#expr, __FILE__, __LINE__, (msg));    \
  } while (0)

#ifdef NDEBUG
#define REQB_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define REQB_DCHECK(expr) REQB_CHECK(expr)
#endif
