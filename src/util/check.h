// Lightweight invariant checking used throughout the library.
//
// REQB_CHECK is always on (simulation correctness beats the tiny branch
// cost). REQB_DCHECK is for hot-path invariants exercised heavily by the
// test suite; its presence is controlled by the REQBLOCK_DCHECKS macro
// (the CMake option of the same name), NOT by NDEBUG alone: the default
// RelWithDebInfo build defines NDEBUG, which used to silently compile the
// "heavily exercised" debug checks out of every default test run. The
// build system now always defines REQBLOCK_DCHECKS explicitly (ON by
// default); NDEBUG is only consulted as a fallback for out-of-tree
// compiles that include these headers without our CMake.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace reqblock::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "Check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace reqblock::detail

#define REQB_CHECK(expr)                                                     \
  do {                                                                       \
    if (!(expr))                                                             \
      ::reqblock::detail::check_failed(#expr, __FILE__, __LINE__, "");       \
  } while (0)

#define REQB_CHECK_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr))                                                             \
      ::reqblock::detail::check_failed(#expr, __FILE__, __LINE__, (msg));    \
  } while (0)

#if !defined(REQBLOCK_DCHECKS)
#ifdef NDEBUG
#define REQBLOCK_DCHECKS 0
#else
#define REQBLOCK_DCHECKS 1
#endif
#endif

#if REQBLOCK_DCHECKS
#define REQB_DCHECK(expr) REQB_CHECK(expr)
#else
#define REQB_DCHECK(expr) \
  do {                    \
  } while (0)
#endif

namespace reqblock {
/// Whether REQB_DCHECK expands to a live check in this translation unit.
/// The test suite asserts this is true so the debug invariants can never
/// silently fall out of the default test build again.
inline constexpr bool kDchecksEnabled = REQBLOCK_DCHECKS != 0;
}  // namespace reqblock
