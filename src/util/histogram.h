// Log-bucketed histogram for latency-like quantities plus an exact
// small-domain counter histogram for integer statistics such as
// "pages per eviction".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace reqblock {

/// Histogram over non-negative int64 values with logarithmic bucket growth.
/// Supports mean exactly and quantiles to within the bucket resolution
/// (~1.6% relative error), which is plenty for simulator reporting.
class LogHistogram {
 public:
  LogHistogram();

  void record(std::int64_t value);
  void merge(const LogHistogram& other);
  void clear();

  std::uint64_t count() const { return count_; }
  double mean() const;
  std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { return count_ == 0 ? 0 : max_; }

  /// Quantile in [0, 1]; returns a representative value of the bucket that
  /// contains the requested rank.
  std::int64_t quantile(double q) const;

  std::int64_t p50() const { return quantile(0.50); }
  std::int64_t p95() const { return quantile(0.95); }
  std::int64_t p99() const { return quantile(0.99); }
  std::int64_t p999() const { return quantile(0.999); }

  /// Bucket layout, exposed so side tables can be keyed by the same
  /// buckets a recorded value lands in (e.g. the latency-attribution
  /// matrix keys per-component sums by response-time bucket).
  static std::size_t bucket_count();
  /// Index of the bucket `v` would be recorded into (negatives clamp to 0).
  static std::size_t bucket_index(std::int64_t v);
  /// Representative (midpoint) value of bucket `b`.
  static std::int64_t bucket_value(std::size_t b);

  // --- Checkpoint support (snapshot/) ----------------------------------
  const std::vector<std::uint64_t>& raw_buckets() const { return buckets_; }
  double raw_sum() const { return sum_; }
  std::int64_t raw_min() const { return min_; }
  std::int64_t raw_max() const { return max_; }
  /// Restores a checkpointed histogram. `buckets` must have the layout
  /// this implementation writes (checked).
  void restore(std::vector<std::uint64_t> buckets, std::uint64_t count,
               double sum, std::int64_t min, std::int64_t max);

 private:
  static std::size_t bucket_for(std::int64_t v);
  static std::int64_t bucket_mid(std::size_t b);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Exact histogram over small non-negative integers (e.g. batch sizes).
class CountHistogram {
 public:
  void record(std::uint64_t value);
  void merge(const CountHistogram& other);
  void clear();

  std::uint64_t count() const { return count_; }
  double mean() const;
  std::uint64_t max() const;
  /// Number of samples exactly equal to v.
  std::uint64_t at(std::uint64_t v) const;

  // --- Checkpoint support (snapshot/) ----------------------------------
  const std::vector<std::uint64_t>& raw_counts() const { return counts_; }
  double raw_sum() const { return sum_; }
  void restore(std::vector<std::uint64_t> counts, std::uint64_t count,
               double sum);

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace reqblock
