// Crash-consistent file replacement.
//
// Every artifact a run leaves behind (results CSVs, checkpoints, resume
// manifests) goes through write_file_atomic: the bytes land in a temp file
// in the destination directory, are flushed and fsync'd, and then renamed
// over the target in one atomic step (POSIX rename semantics), followed by
// an fsync of the containing directory so the rename itself survives a
// crash. A reader therefore only ever sees the old complete file or the
// new complete file — never a truncated hybrid.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

namespace reqblock {

/// Atomically replaces `path` with `contents`. Throws std::runtime_error
/// (message includes the path and errno text) on any failure; on failure
/// the destination is left untouched and the temp file is removed.
void write_file_atomic(const std::string& path, std::string_view contents);

/// Convenience for text writers: `fill` receives an ostream, and the
/// accumulated bytes are written atomically as above. The stream's failbit
/// or badbit after `fill` returns is reported as an error.
void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& fill);

}  // namespace reqblock
