// Aligned plain-text table printer for experiment reports.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace reqblock {

/// Collects rows of string cells and prints them column-aligned. Used by the
/// benchmark harness to emit paper-style tables next to google-benchmark's
/// own output.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; it may have fewer cells than the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with two-space column gaps and a dashed rule under the header.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace reqblock
