// Deterministic, cross-platform random number generation.
//
// std::<distribution> implementations differ between standard libraries, so
// every stochastic component in this library draws through these helpers to
// keep results bit-identical across toolchains.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "util/check.h"

namespace reqblock {

/// SplitMix64: used to expand a user seed into stream state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b9u) { reseed(seed); }

  /// Re-initializes the stream from a single 64-bit seed.
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    REQB_DCHECK(bound > 0);
    // Lemire's nearly-divisionless method, with rejection for exactness.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    REQB_DCHECK(hi >= lo);
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double next_exponential(double mean) {
    REQB_DCHECK(mean > 0);
    double u = next_double();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Geometric-ish heavy-tailed size in [1, max]: returns 1 + floor of an
  /// exponential with the given mean, clamped. Used for request-size draws.
  std::uint64_t next_size(double mean, std::uint64_t max_value) {
    REQB_DCHECK(max_value >= 1);
    const double draw = next_exponential(mean);
    auto v = static_cast<std::uint64_t>(draw) + 1;
    return v > max_value ? max_value : v;
  }

  /// Raw xoshiro256** state, for checkpoint/restore: the four words fully
  /// determine the stream position, so a restored Rng continues the exact
  /// same sequence.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }

  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace reqblock
