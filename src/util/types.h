// Fundamental scalar types shared across the whole library.
#pragma once

#include <cstdint>

namespace reqblock {

/// Logical page number, in units of the SSD page size (4 KB by default).
using Lpn = std::uint64_t;

/// Physical page number: a flat index into the flash array's page space.
using Ppn = std::uint64_t;

/// Simulated time in nanoseconds since the start of the run.
using SimTime = std::int64_t;

/// Logical tick counter used by policies that want a timescale-free clock
/// (one tick per page access).
using Tick = std::uint64_t;

/// Sentinel for "no physical page" in mapping tables.
inline constexpr Ppn kInvalidPpn = ~static_cast<Ppn>(0);

/// Sentinel for "no logical page" in reverse maps.
inline constexpr Lpn kInvalidLpn = ~static_cast<Lpn>(0);

/// Time unit helpers. All simulator latencies are expressed in nanoseconds.
inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

}  // namespace reqblock
