#include "util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace reqblock {

namespace {

[[noreturn]] void fail(const std::string& path, const char* step, int err) {
  std::ostringstream os;
  os << "atomic write of '" << path << "' failed (" << step
     << "): " << std::generic_category().message(err);
  throw std::runtime_error(os.str());
}

std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  // Directory fsync is best-effort hardening: some filesystems refuse it,
  // and the rename has already happened.
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void write_file_atomic(const std::string& path, std::string_view contents) {
  // Unique within the process even when experiment threads write into the
  // same directory concurrently.
  static std::atomic<std::uint64_t> counter{0};
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << ::getpid() << "."
           << counter.fetch_add(1, std::memory_order_relaxed);
  const std::string tmp = tmp_name.str();

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail(path, "create temp file", errno);

  const char* data = contents.data();
  std::size_t left = contents.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail(path, "write", err);
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    fail(path, "fsync", err);
  }
  if (::close(fd) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail(path, "close", err);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail(path, "rename", err);
  }
  fsync_dir(parent_dir(path));
}

void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& fill) {
  std::ostringstream buf;
  fill(buf);
  if (!buf) {
    throw std::runtime_error("atomic write of '" + path +
                             "' failed: writer reported a stream error");
  }
  write_file_atomic(path, buf.view());
}

}  // namespace reqblock
