// Host I/O request model.
//
// The simulator works at SSD-page granularity (4 KB by default); trace
// parsers convert byte offsets/lengths into page-aligned requests the same
// way SSDsim does (round the start down and the end up to page boundaries).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/types.h"

namespace reqblock {

class SnapshotReader;
class SnapshotWriter;

enum class IoType : std::uint8_t { kRead = 0, kWrite = 1 };

inline const char* to_string(IoType t) {
  return t == IoType::kRead ? "Read" : "Write";
}

struct IoRequest {
  /// Monotonically increasing per-trace identifier.
  std::uint64_t id = 0;
  /// Arrival time relative to trace start.
  SimTime arrival = 0;
  IoType type = IoType::kRead;
  /// First logical page touched.
  Lpn lpn = 0;
  /// Number of consecutive pages touched; always >= 1.
  std::uint32_t pages = 1;

  bool is_write() const { return type == IoType::kWrite; }
  bool is_read() const { return type == IoType::kRead; }
  Lpn end_lpn() const { return lpn + pages; }  // one past the last page

  /// Byte size assuming the given page size.
  std::uint64_t bytes(std::uint64_t page_size) const {
    return static_cast<std::uint64_t>(pages) * page_size;
  }
};

/// Abstract stream of requests. Implementations must be resettable so the
/// same trace can be replayed under every policy.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Returns false when the trace is exhausted; fills `out` otherwise.
  virtual bool next(IoRequest& out) = 0;

  /// Rewinds to the first request (regenerating identically for synthetic
  /// sources).
  virtual void reset() = 0;

  /// Human-readable trace name for reports.
  virtual std::string name() const = 0;

  /// Logical ranges [begin, end) that hold data written *before* the
  /// trace starts (device pre-conditioning). The simulator registers them
  /// with the FTL so cold reads of old data pay real flash latency
  /// instead of being served as never-written pages. Default: none.
  virtual std::vector<std::pair<Lpn, Lpn>> preexisting_ranges() const {
    return {};
  }

  /// Stable hash of the trace *content* (name, generator parameters or
  /// request list) — independent of the read cursor. Checkpoints embed it
  /// so a resume against a different trace is refused.
  virtual std::uint64_t identity_hash() const = 0;

  /// Checkpoint the read cursor (and, for synthetic sources, all
  /// generator state) so a restored source continues emitting exactly the
  /// requests an uninterrupted one would.
  virtual void serialize(SnapshotWriter& w) const = 0;
  virtual void deserialize(SnapshotReader& r) = 0;
};

}  // namespace reqblock
