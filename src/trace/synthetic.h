// Synthetic workload generator.
//
// Substitute for the MSR Cambridge / VDI traces evaluated in the paper
// (see DESIGN.md §1). The generator is built around the paper's two key
// observations:
//   O1  pages written by *small* requests receive the large majority of
//       cache hits while occupying little space;
//   O2  pages written by *large* requests are rarely re-accessed but fill
//       most of the cache.
//
// It therefore draws from two request classes:
//   * a HOT class of small extents whose popularity follows a Zipf law —
//     the same extent is re-written/re-read with the same address and size,
//     which is what gives request blocks their reuse;
//   * a COLD class of large sequential writes issued by a set of append
//     streams, occasionally re-writing their previous extent.
//
// All randomness flows through one deterministic xoshiro stream, so a
// (profile, seed) pair always produces the identical trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/io_request.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace reqblock {

struct WorkloadProfile {
  std::string name = "synthetic";
  std::uint64_t total_requests = 100000;
  std::uint64_t seed = 1;

  /// Fraction of requests that are writes.
  double write_ratio = 0.5;

  // --- Address space layout (units: pages) ---------------------------------
  /// Number of distinct hot extents (small-request working set).
  std::uint64_t hot_extents = 8192;
  /// Slot width reserved per hot extent; extent size never exceeds this.
  std::uint32_t hot_slot_pages = 8;
  /// Address stride between hot extents (0 = hot_slot_pages, i.e. packed).
  /// Real traces scatter small hot requests sparsely — roughly one per
  /// 64-page flash block (the paper's Fig. 12 implies ~1.8 cached pages
  /// per BPLRU block node) — so profiles use a 64-page stride; packed
  /// layouts would hand block-granularity schemes free spatial wins.
  std::uint32_t hot_slot_stride = 0;
  /// Pages of cold space owned by each sequential stream.
  std::uint64_t cold_stream_pages = 1 << 20;

  // --- Write mix ------------------------------------------------------------
  /// Probability that a write is a large (cold/sequential) request.
  double large_write_fraction = 0.15;
  /// Mean of the small-write size (1 + exponential, clamped to slot width).
  double small_write_mean_pages = 2.0;
  /// Probability that a hot extent is "medium" sized — uniform in
  /// [5, hot_slot_pages] instead of the exponential draw. Medium extents
  /// are hot data that request-size classifiers (VBBMS) mistake for
  /// sequential traffic; request-granularity schemes handle them
  /// per-request.
  double hot_medium_prob = 0.0;
  /// Probability that a small write is a one-shot cold filler: a short
  /// write to a random spot in the *unused half of a hot slot*, never
  /// re-accessed. Fillers share flash blocks with hot extents, creating
  /// the "hot and cold level of the pages belonging to the same block can
  /// be uneven" situation the paper blames for BPLRU's ts_0 regression —
  /// block-granularity schemes retain the cold pages as long as their hot
  /// neighbours. Requires stride > hot_slot_pages + 1.
  double small_cold_fraction = 0.0;
  /// Large write size range (uniform), in pages.
  std::uint32_t large_write_min_pages = 16;
  std::uint32_t large_write_max_pages = 48;
  /// Zipf skew of hot-extent popularity.
  double hot_zipf_theta = 1.0;
  /// Temporal burstiness: probability that a hot access re-targets one of
  /// the recently touched extents instead of drawing fresh from the Zipf
  /// law. Real block traces show exactly this two-timescale reuse — a
  /// quick first re-hit (bursts) plus long-interval recurrences (Zipf) —
  /// and it is what lets frequency-protecting policies beat pure recency.
  double burst_prob = 0.3;
  /// Size of the recent-extent window the burst component samples from.
  std::uint32_t burst_window = 512;
  /// Probability that a large write re-writes the stream's previous extent
  /// instead of appending (gives large requests *some* reuse, per Fig. 3).
  double stream_rewrite_prob = 0.08;
  /// Number of concurrent append streams.
  std::uint32_t stream_count = 4;

  // --- Reads ------------------------------------------------------------
  /// Probability that a read targets a hot extent (otherwise a cold scan).
  double read_hot_fraction = 0.55;
  /// Probability that a hot read covers only part of the extent.
  double partial_read_prob = 0.3;
  /// Probability that a read targets the *head pages* of a recently issued
  /// large write (headers/metadata re-reads). This reproduces the paper's
  /// Observation 2 — a minority (22-37%) of large-request pages are
  /// re-accessed — and is the pattern the DRL split mechanism exploits.
  double read_large_head_fraction = 0.0;
  /// How many head pages of a large extent stay hot.
  std::uint32_t large_head_pages = 3;
  /// How many recent large writes remain re-readable.
  std::uint32_t large_recent_window = 256;
  /// Probability that a head re-read targets one of the most recent 64
  /// large writes (the rest draw uniformly over the whole window). The
  /// early read seeds the hot head while the write data is still buffered;
  /// later reads spread far beyond any recency-based residence.
  double large_head_recency_bias = 0.5;
  /// Model the cold stream regions as pre-conditioned: cold scans sample
  /// the whole region (data "written before the trace"), not just the
  /// prefix appended in-trace. Matches how block traces are captured from
  /// live devices.
  bool preexisting_cold_data = false;

  // --- Arrival process ----------------------------------------------------
  /// Mean exponential interarrival gap.
  SimTime mean_interarrival_ns = 2 * kMillisecond;
  /// Open-loop burst modulation of the arrival process: every
  /// `burst_arrival_period` requests, the first `burst_arrival_len` arrive
  /// with the mean gap divided by `burst_arrival_factor` (an arrival-rate
  /// spike), and the remainder of the period arrives with the gap
  /// multiplied by `burst_idle_factor` (an idle gap for the device to
  /// drain into). The phase is a pure function of the request index, so
  /// the modulation checkpoints for free. burst_arrival_period == 0 or
  /// burst_arrival_len == 0 disables (pure Poisson arrivals).
  std::uint64_t burst_arrival_len = 0;
  std::uint64_t burst_arrival_period = 0;
  double burst_arrival_factor = 8.0;
  double burst_idle_factor = 1.0;

  // --- Workload drift (long-horizon soaks) ---------------------------------
  /// Hot-set rotation: every `drift_period` requests the mapping from Zipf
  /// popularity rank to extent identity shifts by `drift_step`, so the
  /// working set slowly migrates across the address space the way real
  /// workloads drift over days. Like the burst phase, the rotation offset
  /// is a pure function of the request index — it checkpoints for free.
  /// drift_period == 0 disables.
  std::uint64_t drift_period = 0;
  std::uint64_t drift_step = 1;
  /// Diurnal load cycle: the mean arrival gap is modulated by a triangle
  /// wave of relative amplitude `diurnal_amplitude` (in [0, 1)) over
  /// `diurnal_period` requests — peak load at the cycle start, trough at
  /// the midpoint. Integer/double arithmetic only (no transcendentals),
  /// phase from the request index. diurnal_period == 0 disables.
  std::uint64_t diurnal_period = 0;
  double diurnal_amplitude = 0.5;

  /// Returns a copy with the request count scaled by `factor` (>0).
  WorkloadProfile scaled(double factor) const;

  /// Returns a copy capped at `max_requests` (0 = unchanged).
  WorkloadProfile capped(std::uint64_t max_requests) const;

  /// True when the arrival process alternates spike and idle phases.
  bool burst_arrivals_enabled() const {
    return burst_arrival_period > 0 && burst_arrival_len > 0;
  }
  /// True when the hot set rotates over the run.
  bool drift_enabled() const { return drift_period > 0 && drift_step > 0; }
  /// True when the arrival rate follows the diurnal cycle.
  bool diurnal_enabled() const {
    return diurnal_period > 0 && diurnal_amplitude > 0.0;
  }
  /// Effective stride between hot extents.
  std::uint32_t stride_pages() const {
    return hot_slot_stride == 0 ? hot_slot_pages : hot_slot_stride;
  }
  /// First page of the hot region (hot region starts at page 0).
  std::uint64_t hot_region_pages() const {
    return hot_extents * stride_pages();
  }
  /// Total logical footprint in pages (hot + all streams).
  std::uint64_t footprint_pages() const {
    return hot_region_pages() + cold_stream_pages * stream_count;
  }

  /// Expected mean write size in pages given the mix parameters.
  double expected_write_pages() const;
};

/// Streaming generator implementing TraceSource.
class SyntheticTraceSource final : public TraceSource {
 public:
  explicit SyntheticTraceSource(WorkloadProfile profile);

  bool next(IoRequest& out) override;
  void reset() override;
  std::string name() const override { return profile_.name; }
  std::vector<std::pair<Lpn, Lpn>> preexisting_ranges() const override;

  /// Hash over every profile field: two sources agree iff they generate
  /// the identical request stream.
  std::uint64_t identity_hash() const override;

  /// Checkpoint all generator state (RNG, clock, stream cursors, burst and
  /// large-write windows) so a restored source continues the stream.
  void serialize(SnapshotWriter& w) const override;
  void deserialize(SnapshotReader& r) override;

  const WorkloadProfile& profile() const { return profile_; }

  /// Materializes the full trace (convenience for tests/stats).
  std::vector<IoRequest> collect();

 private:
  struct HotExtent {
    Lpn lpn;
    std::uint32_t pages;
  };

  HotExtent hot_extent(std::uint64_t extent_id) const;
  /// Hot-set rotation offset for the request being generated (a pure
  /// function of the request index; 0 while drift is off).
  std::uint64_t drift_offset() const;
  /// Diurnal gap multiplier for request `id` (1.0 while the cycle is off).
  double diurnal_multiplier(std::uint64_t id) const;
  /// Two-timescale popularity draw: burst window or Zipf tail. Only
  /// writes (`record`) enter the window.
  std::uint64_t sample_hot_id(bool record);
  IoRequest make_small_write(std::uint64_t id, SimTime at);
  IoRequest make_large_write(std::uint64_t id, SimTime at);
  IoRequest make_read(std::uint64_t id, SimTime at);

  WorkloadProfile profile_;
  ZipfSampler hot_sampler_;
  Rng rng_;
  std::uint64_t emitted_ = 0;
  SimTime clock_ = 0;

  struct Stream {
    Lpn base = 0;
    Lpn cursor = 0;        // next append position (relative to base)
    Lpn last_lpn = 0;      // previous extent, for rewrites
    std::uint32_t last_pages = 0;
  };
  std::vector<Stream> streams_;
  /// Ring buffer of recently accessed hot extent ids (burst window).
  std::vector<std::uint64_t> recent_;
  std::size_t recent_pos_ = 0;
  /// Ring buffer of recent large-write extents (for head re-reads).
  struct LargeExtent {
    Lpn lpn;
    std::uint32_t pages;
  };
  std::vector<LargeExtent> recent_large_;
  std::size_t recent_large_pos_ = 0;
};

}  // namespace reqblock
