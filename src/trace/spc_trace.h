// SPC (Storage Performance Council) trace format support.
//
// The UMass/FIU "Financial" and "WebSearch" traces — the other trace
// family commonly replayed in SSD cache papers — use this format:
//
//   ASU,LBA,Size,Opcode,Timestamp[,extra...]
//
// where ASU is an application storage unit id, LBA a 512-byte sector
// number, Size a byte count, Opcode 'r'/'R' or 'w'/'W', and Timestamp is
// in (fractional) seconds.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/io_request.h"

namespace reqblock {

struct SpcParseOptions {
  std::uint64_t page_size = 4096;
  std::uint32_t sector_size = 512;
  /// Keep only this ASU (-1 = all ASUs, offset by ASU to keep them
  /// disjoint in the logical space).
  std::int32_t asu_filter = -1;
  /// Pages reserved per ASU when merging all ASUs into one address space.
  Lpn asu_stride_pages = 1ULL << 26;
  bool skip_malformed = true;
  bool rebase_time = true;
  std::uint64_t max_requests = 0;
  /// Name used in parse-error messages ("<name>:<line>: ...");
  /// parse_spc_file fills it with the path when empty.
  std::string source_name;
  /// Treat a final line that ends mid-record (no trailing newline and
  /// unparsable) as an error. parse_spc_file enables this; stream/string
  /// callers keep the lenient default.
  bool detect_truncation = false;
};

/// Parses one SPC line; nullopt if malformed or filtered out.
std::optional<IoRequest> parse_spc_line(std::string_view line,
                                        const SpcParseOptions& opts);

/// Throws std::runtime_error (with source_name and line number) on an
/// I/O error mid-stream, on a malformed line when skip_malformed is off,
/// or on a truncated final record when detect_truncation is on.
std::vector<IoRequest> parse_spc_stream(std::istream& in,
                                        const SpcParseOptions& opts);

/// Parses a file on disk with truncation detection enabled and the path
/// woven into every error message; throws std::runtime_error (naming the
/// path and errno) if the file cannot be opened.
std::vector<IoRequest> parse_spc_file(const std::string& path,
                                      const SpcParseOptions& opts);

}  // namespace reqblock
