#include "trace/trace_stats.h"

#include <unordered_map>

namespace reqblock {

double TraceStats::write_ratio() const {
  return requests == 0 ? 0.0
                       : static_cast<double>(writes) /
                             static_cast<double>(requests);
}

double TraceStats::mean_write_kb() const {
  return writes == 0 ? 0.0
                     : static_cast<double>(write_pages) * 4.0 /
                           static_cast<double>(writes);
}

TraceStats TraceStatsCollector::collect(TraceSource& src,
                                        int frequent_threshold) {
  TraceStats out;
  struct AddrCount {
    std::uint32_t total = 0;
    std::uint32_t writes = 0;
  };
  std::unordered_map<Lpn, AddrCount> addr_counts;

  src.reset();
  IoRequest r;
  SimTime last = 0;
  while (src.next(r)) {
    ++out.requests;
    last = r.arrival;
    auto& c = addr_counts[r.lpn];
    ++c.total;
    if (r.is_write()) {
      ++out.writes;
      out.write_pages += r.pages;
      ++c.writes;
    } else {
      ++out.reads;
      out.read_pages += r.pages;
    }
  }
  out.duration = last;

  std::uint64_t frequent = 0;
  std::uint64_t written_addrs = 0;
  std::uint64_t frequent_written = 0;
  for (const auto& [addr, c] : addr_counts) {
    if (c.total >= static_cast<std::uint32_t>(frequent_threshold)) {
      ++frequent;
    }
    if (c.writes > 0) {
      ++written_addrs;
      if (c.writes >= static_cast<std::uint32_t>(frequent_threshold)) {
        ++frequent_written;
      }
    }
  }
  if (!addr_counts.empty()) {
    out.frequent_ratio = static_cast<double>(frequent) /
                         static_cast<double>(addr_counts.size());
  }
  if (written_addrs != 0) {
    out.frequent_write_ratio = static_cast<double>(frequent_written) /
                               static_cast<double>(written_addrs);
  }
  src.reset();
  return out;
}

}  // namespace reqblock
