// Trace statistics matching the columns of the paper's Table 2.
#pragma once

#include <cstdint>

#include "trace/io_request.h"

namespace reqblock {

struct TraceStats {
  std::uint64_t requests = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t write_pages = 0;
  std::uint64_t read_pages = 0;

  /// Fraction of requests that are writes ("Wr Ratio").
  double write_ratio() const;
  /// Mean write size in KB assuming 4 KB pages ("Wr Size").
  double mean_write_kb() const;

  /// "Frequent R": fraction of distinct request start addresses that are
  /// requested at least `threshold` times (threshold = 3 in the paper).
  double frequent_ratio = 0.0;
  /// "(Wr)": same measure restricted to write accesses on written addresses.
  double frequent_write_ratio = 0.0;

  SimTime duration = 0;
};

class TraceStatsCollector {
 public:
  /// Computes stats for every request produced by `src` (consumes and
  /// resets the source).
  static TraceStats collect(TraceSource& src, int frequent_threshold = 3);
};

}  // namespace reqblock
