#include "trace/spc_trace.h"

#include <cerrno>
#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <stdexcept>
#include <system_error>

#include "util/strings.h"

namespace reqblock {

namespace {
// "<source>:<line>" prefix for parse errors, so a bad trace file points
// at the exact offending record.
std::string at(const std::string& source, std::uint64_t line_no) {
  return (source.empty() ? std::string("trace") : source) + ':' +
         std::to_string(line_no);
}
}  // namespace

std::optional<IoRequest> parse_spc_line(std::string_view line,
                                        const SpcParseOptions& opts) {
  line = trim(line);
  if (line.empty() || line.front() == '#') return std::nullopt;
  const auto fields = split(line, ',');
  if (fields.size() < 5) return std::nullopt;

  const auto asu = parse_u64(fields[0]);
  const auto lba = parse_u64(fields[1]);
  const auto size = parse_u64(fields[2]);
  const auto ts = parse_double(fields[4]);
  if (!asu || !lba || !size || !ts || *ts < 0.0) return std::nullopt;

  const std::string_view opcode = trim(fields[3]);
  IoType type;
  if (iequals(opcode, "r")) {
    type = IoType::kRead;
  } else if (iequals(opcode, "w")) {
    type = IoType::kWrite;
  } else {
    return std::nullopt;
  }

  if (opts.asu_filter >= 0 &&
      *asu != static_cast<std::uint64_t>(opts.asu_filter)) {
    return std::nullopt;
  }

  // Reject timestamps the ns clock cannot represent (including inf/nan,
  // which strtod accepts): llround on them is undefined behaviour.
  if (!std::isfinite(*ts) || *ts > 9.0e9) return std::nullopt;

  // Reject byte ranges that wrap the 64-bit address space and page counts
  // that do not fit the request representation: corrupt input, not giant
  // requests (a wrapped byte_offset used to produce garbage LPNs).
  if (opts.sector_size != 0 &&
      *lba > std::numeric_limits<std::uint64_t>::max() / opts.sector_size) {
    return std::nullopt;
  }
  const std::uint64_t byte_offset = *lba * opts.sector_size;
  const std::uint64_t span = *size == 0 ? 1 : *size;
  if (byte_offset > std::numeric_limits<std::uint64_t>::max() - span) {
    return std::nullopt;
  }
  const Lpn first = byte_offset / opts.page_size;
  const std::uint64_t end_byte = byte_offset + span;
  const Lpn last = (end_byte - 1) / opts.page_size;
  if (last - first >= std::numeric_limits<std::uint32_t>::max()) {
    return std::nullopt;
  }

  IoRequest req;
  req.arrival = static_cast<SimTime>(std::llround(*ts * 1e9));
  req.type = type;
  req.lpn = (opts.asu_filter >= 0 ? 0 : *asu * opts.asu_stride_pages) + first;
  req.pages = static_cast<std::uint32_t>(last - first + 1);
  return req;
}

std::vector<IoRequest> parse_spc_stream(std::istream& in,
                                        const SpcParseOptions& opts) {
  std::vector<IoRequest> out;
  std::string line;
  std::uint64_t id = 0;
  std::uint64_t line_no = 0;
  SimTime base = -1;
  while (std::getline(in, line)) {
    ++line_no;
    // getline succeeding with eof set means the line had no trailing
    // newline — on a file, an unparsable one is a cut-off final record.
    const bool partial_tail = in.eof();
    auto req = parse_spc_line(line, opts);
    if (!req) {
      const auto body = trim(line);
      if (body.empty() || body.front() == '#') continue;
      if (!opts.skip_malformed) {
        throw std::runtime_error(at(opts.source_name, line_no) +
                                 ": malformed SPC trace line: " + line);
      }
      if (opts.detect_truncation && partial_tail) {
        throw std::runtime_error(
            at(opts.source_name, line_no) +
            ": trace ends mid-record (truncated file?): " + line);
      }
      continue;
    }
    if (opts.rebase_time) {
      if (base < 0) base = req->arrival;
      req->arrival -= base;
    }
    req->id = id++;
    out.push_back(*req);
    if (opts.max_requests != 0 && out.size() >= opts.max_requests) break;
  }
  if (in.bad()) {
    throw std::runtime_error(at(opts.source_name, line_no) +
                             ": I/O error while reading trace (short read)");
  }
  return out;
}

std::vector<IoRequest> parse_spc_file(const std::string& path,
                                      const SpcParseOptions& opts) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open trace file: " + path + " (" +
                             std::generic_category().message(errno) + ")");
  }
  SpcParseOptions file_opts = opts;
  if (file_opts.source_name.empty()) file_opts.source_name = path;
  file_opts.detect_truncation = true;
  return parse_spc_stream(in, file_opts);
}

}  // namespace reqblock
