// Micro-workload builders: classic access patterns used by the test
// suite and microbenchmarks to probe a single policy property at a time
// (what the paper's related-work section calls the "target application
// contexts" of each scheme).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/io_request.h"
#include "util/rng.h"

namespace reqblock::micro {

struct MicroOptions {
  std::uint64_t requests = 10000;
  std::uint64_t seed = 1;
  double write_ratio = 1.0;
  SimTime interarrival = 1 * kMillisecond;  // fixed spacing
};

/// Purely sequential writes sweeping [0, span) with `pages`-sized
/// requests — FAB/BPLRU's home turf.
std::vector<IoRequest> sequential(Lpn span, std::uint32_t pages,
                                  MicroOptions opts = {});

/// Uniform random single/multi-page requests over [0, span) — the
/// "random access dominated" case where block schemes struggle.
std::vector<IoRequest> uniform_random(Lpn span, std::uint32_t max_pages,
                                      MicroOptions opts = {});

/// Zipf-popular extents of fixed size — pure temporal locality.
std::vector<IoRequest> zipf(Lpn extents, std::uint32_t pages, double theta,
                            MicroOptions opts = {});

/// A looping scan of [0, span): touches every page in order, repeatedly —
/// the classic LRU-killer when span exceeds the cache.
std::vector<IoRequest> scan_loop(Lpn span, std::uint32_t pages,
                                 MicroOptions opts = {});

/// Alternates a hot point set with polluting one-shot writes — isolates
/// scan/pollution resistance.
std::vector<IoRequest> hot_with_pollution(Lpn hot_pages, double hot_fraction,
                                          std::uint32_t pollution_pages,
                                          MicroOptions opts = {});

}  // namespace reqblock::micro
