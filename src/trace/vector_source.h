// In-memory trace source, mainly for tests and small experiments.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "trace/io_request.h"

namespace reqblock {

class VectorTraceSource final : public TraceSource {
 public:
  explicit VectorTraceSource(std::vector<IoRequest> requests,
                             std::string name = "vector")
      : requests_(std::move(requests)), name_(std::move(name)) {}

  bool next(IoRequest& out) override {
    if (pos_ >= requests_.size()) return false;
    out = requests_[pos_++];
    return true;
  }

  void reset() override { pos_ = 0; }
  std::string name() const override { return name_; }

  std::size_t size() const { return requests_.size(); }

 private:
  std::vector<IoRequest> requests_;
  std::string name_;
  std::size_t pos_ = 0;
};

}  // namespace reqblock
