// In-memory trace source, mainly for tests and small experiments.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "snapshot/snapshot.h"
#include "trace/io_request.h"

namespace reqblock {

class VectorTraceSource final : public TraceSource {
 public:
  explicit VectorTraceSource(std::vector<IoRequest> requests,
                             std::string name = "vector")
      : requests_(std::move(requests)), name_(std::move(name)) {}

  bool next(IoRequest& out) override {
    if (pos_ >= requests_.size()) return false;
    out = requests_[pos_++];
    return true;
  }

  void reset() override { pos_ = 0; }
  std::string name() const override { return name_; }

  std::uint64_t identity_hash() const override {
    Fingerprint fp;
    fp.add_string(name_);
    fp.add(requests_.size());
    for (const IoRequest& req : requests_) {
      fp.add(req.id);
      fp.add_i64(req.arrival);
      fp.add(static_cast<std::uint64_t>(req.type));
      fp.add(req.lpn);
      fp.add(req.pages);
    }
    return fp.value();
  }

  void serialize(SnapshotWriter& w) const override {
    w.tag("vector_trace");
    w.u64(pos_);
  }

  void deserialize(SnapshotReader& r) override {
    r.tag("vector_trace");
    const std::uint64_t pos = r.u64();
    if (pos > requests_.size()) {
      throw SnapshotError("trace cursor past the end of the trace");
    }
    pos_ = static_cast<std::size_t>(pos);
  }

  std::size_t size() const { return requests_.size(); }

 private:
  std::vector<IoRequest> requests_;
  std::string name_;
  std::size_t pos_ = 0;
};

}  // namespace reqblock
