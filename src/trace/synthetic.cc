#include "trace/synthetic.h"

#include <algorithm>

#include "snapshot/snapshot.h"
#include "util/check.h"

namespace reqblock {

WorkloadProfile WorkloadProfile::scaled(double factor) const {
  REQB_CHECK_MSG(factor > 0.0, "scale factor must be positive");
  WorkloadProfile p = *this;
  p.total_requests = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(total_requests) *
                                    factor));
  return p;
}

WorkloadProfile WorkloadProfile::capped(std::uint64_t max_requests) const {
  WorkloadProfile p = *this;
  if (max_requests != 0 && max_requests < p.total_requests) {
    p.total_requests = max_requests;
  }
  return p;
}

double WorkloadProfile::expected_write_pages() const {
  // Small sizes are 1 + floor(Exp(mean-1)) clamped; approximate by the mean.
  const double small = small_write_mean_pages;
  const double large =
      (static_cast<double>(large_write_min_pages) +
       static_cast<double>(large_write_max_pages)) /
      2.0;
  return (1.0 - large_write_fraction) * small + large_write_fraction * large;
}

SyntheticTraceSource::SyntheticTraceSource(WorkloadProfile profile)
    : profile_(std::move(profile)),
      hot_sampler_(std::max<std::uint64_t>(1, profile_.hot_extents),
                   profile_.hot_zipf_theta),
      rng_(profile_.seed) {
  REQB_CHECK_MSG(profile_.hot_slot_pages >= 1, "hot slot must hold a page");
  REQB_CHECK_MSG(profile_.stride_pages() >= profile_.hot_slot_pages,
                 "hot extent stride must cover the slot");
  REQB_CHECK_MSG(profile_.large_write_min_pages >= 1 &&
                     profile_.large_write_max_pages >=
                         profile_.large_write_min_pages,
                 "invalid large write size range");
  REQB_CHECK_MSG(profile_.stream_count >= 1, "need at least one stream");
  if (profile_.burst_arrivals_enabled()) {
    REQB_CHECK_MSG(profile_.burst_arrival_len <= profile_.burst_arrival_period,
                   "burst length cannot exceed the period");
    REQB_CHECK_MSG(profile_.burst_arrival_factor > 0.0 &&
                       profile_.burst_idle_factor > 0.0,
                   "burst rate factors must be positive");
  }
  REQB_CHECK_MSG(profile_.diurnal_amplitude >= 0.0 &&
                     profile_.diurnal_amplitude < 1.0,
                 "diurnal amplitude must stay in [0, 1)");
  reset();
}

void SyntheticTraceSource::reset() {
  rng_.reseed(profile_.seed);
  emitted_ = 0;
  clock_ = 0;
  recent_.clear();
  recent_pos_ = 0;
  recent_large_.clear();
  recent_large_pos_ = 0;
  streams_.assign(profile_.stream_count, Stream{});
  const Lpn cold_base = profile_.hot_region_pages();
  for (std::uint32_t s = 0; s < profile_.stream_count; ++s) {
    streams_[s].base = cold_base + s * profile_.cold_stream_pages;
    streams_[s].cursor = 0;
    streams_[s].last_lpn = streams_[s].base;
    streams_[s].last_pages = 0;
  }
}

SyntheticTraceSource::HotExtent SyntheticTraceSource::hot_extent(
    std::uint64_t extent_id) const {
  // Extent geometry is a pure function of (seed, extent_id) so the same
  // extent is always re-accessed with the same address and size — this is
  // what makes "request blocks" a stable unit of reuse.
  std::uint64_t h = profile_.seed ^ (extent_id * 0x9e3779b97f4a7c15ULL);
  Rng local(splitmix64(h));
  // Scatter extents over the hot region with a bijective permutation
  // (0x9E3779B1 is prime, hence coprime to any smaller population) so
  // popularity rank carries no spatial correlation: neighbouring flash
  // blocks mix hot and cold extents, as real workloads do.
  const std::uint64_t slot =
      (extent_id * 0x9E3779B1ULL) % profile_.hot_extents;
  std::uint32_t pages;
  if (profile_.hot_slot_pages >= 5 &&
      local.next_bool(profile_.hot_medium_prob)) {
    pages = static_cast<std::uint32_t>(
        local.next_in(5, profile_.hot_slot_pages));
  } else {
    pages = static_cast<std::uint32_t>(local.next_size(
        std::max(0.0, profile_.small_write_mean_pages - 1.0) + 1e-9,
        profile_.hot_slot_pages));
  }
  return HotExtent{slot * profile_.stride_pages(), pages};
}

std::uint64_t SyntheticTraceSource::drift_offset() const {
  // next() has already advanced emitted_ past the request being built.
  if (!profile_.drift_enabled()) return 0;
  return (emitted_ - 1) / profile_.drift_period * profile_.drift_step %
         profile_.hot_extents;
}

double SyntheticTraceSource::diurnal_multiplier(std::uint64_t id) const {
  if (!profile_.diurnal_enabled()) return 1.0;
  const double x = static_cast<double>(id % profile_.diurnal_period) /
                   static_cast<double>(profile_.diurnal_period);
  // Triangle wave over the cycle: -1 at the start (peak load, shortest
  // gaps), +1 at the midpoint (trough), back to -1 at the end.
  const double tri = x < 0.5 ? 4.0 * x - 1.0 : 3.0 - 4.0 * x;
  return 1.0 + profile_.diurnal_amplitude * tri;
}

std::uint64_t SyntheticTraceSource::sample_hot_id(bool record) {
  std::uint64_t extent_id;
  if (!recent_.empty() && rng_.next_bool(profile_.burst_prob)) {
    // Burst re-hits come from the window of *rotated* identities, so a
    // short-timescale re-access keeps targeting the same address even
    // across a drift boundary.
    extent_id = recent_[rng_.next_below(recent_.size())];
  } else {
    // The Zipf draw ranks popularity; drift shifts which extent identity
    // holds each rank, migrating the hot set without changing its shape.
    extent_id =
        (hot_sampler_.sample(rng_) + drift_offset()) % profile_.hot_extents;
  }
  // Only writes enter the burst window: the short-timescale locality the
  // generator models is "recently *written* data is re-accessed soon",
  // which is the locality a write buffer can actually serve.
  if (record && profile_.burst_window > 0) {
    if (recent_.size() < profile_.burst_window) {
      recent_.push_back(extent_id);
    } else {
      recent_[recent_pos_] = extent_id;
      recent_pos_ = (recent_pos_ + 1) % recent_.size();
    }
  }
  return extent_id;
}

IoRequest SyntheticTraceSource::make_small_write(std::uint64_t id,
                                                 SimTime at) {
  IoRequest r;
  r.id = id;
  r.arrival = at;
  r.type = IoType::kWrite;
  if (profile_.small_cold_fraction > 0.0 &&
      profile_.stride_pages() > profile_.hot_slot_pages + 1 &&
      rng_.next_bool(profile_.small_cold_fraction)) {
    // One-shot cold filler in the unused part of a random hot slot.
    const std::uint64_t slot = rng_.next_below(profile_.hot_extents);
    const std::uint32_t spare =
        profile_.stride_pages() - profile_.hot_slot_pages;
    const std::uint32_t pages = static_cast<std::uint32_t>(
        rng_.next_in(1, std::min<std::uint32_t>(2, spare)));
    const std::uint32_t off = static_cast<std::uint32_t>(
        rng_.next_below(spare - pages + 1));
    r.lpn = slot * profile_.stride_pages() + profile_.hot_slot_pages + off;
    r.pages = pages;
    return r;
  }
  const auto extent = hot_extent(sample_hot_id(/*record=*/true));
  r.lpn = extent.lpn;
  r.pages = extent.pages;
  return r;
}

IoRequest SyntheticTraceSource::make_large_write(std::uint64_t id,
                                                 SimTime at) {
  Stream& st = streams_[rng_.next_below(streams_.size())];
  IoRequest r;
  r.id = id;
  r.arrival = at;
  r.type = IoType::kWrite;
  if (st.last_pages != 0 && rng_.next_bool(profile_.stream_rewrite_prob)) {
    r.lpn = st.last_lpn;
    r.pages = st.last_pages;
    return r;
  }
  const std::uint32_t pages = static_cast<std::uint32_t>(rng_.next_in(
      profile_.large_write_min_pages, profile_.large_write_max_pages));
  if (st.cursor + pages > profile_.cold_stream_pages) st.cursor = 0;
  r.lpn = st.base + st.cursor;
  r.pages = pages;
  st.cursor += pages;
  st.last_lpn = r.lpn;
  st.last_pages = pages;
  if (profile_.large_recent_window > 0) {
    if (recent_large_.size() < profile_.large_recent_window) {
      recent_large_.push_back({r.lpn, r.pages});
    } else {
      recent_large_[recent_large_pos_] = {r.lpn, r.pages};
      recent_large_pos_ = (recent_large_pos_ + 1) % recent_large_.size();
    }
  }
  return r;
}

IoRequest SyntheticTraceSource::make_read(std::uint64_t id, SimTime at) {
  IoRequest r;
  r.id = id;
  r.arrival = at;
  r.type = IoType::kRead;
  const double u = rng_.next_double();
  if (!recent_large_.empty() &&
      u < profile_.read_large_head_fraction) {
    // Header re-read of a recent large write (Observation 2): only the
    // first few pages of the extent are hot. Reads are biased toward the
    // freshest writes first, then spread across the whole window.
    const std::size_t n = recent_large_.size();
    std::size_t back;  // how many writes ago, 0 = most recent
    if (rng_.next_bool(profile_.large_head_recency_bias)) {
      back = rng_.next_below(std::min<std::size_t>(64, n));
    } else {
      back = rng_.next_below(n);
    }
    const std::size_t newest =
        n < profile_.large_recent_window
            ? n - 1
            : (recent_large_pos_ + n - 1) % n;
    const std::size_t idx = (newest + n - back) % n;
    const auto& ext = recent_large_[idx];
    r.lpn = ext.lpn;
    r.pages = static_cast<std::uint32_t>(rng_.next_in(
        1, std::min(profile_.large_head_pages, ext.pages)));
    return r;
  }
  if (u < profile_.read_large_head_fraction + profile_.read_hot_fraction) {
    const auto extent = hot_extent(sample_hot_id(/*record=*/false));
    r.lpn = extent.lpn;
    r.pages = extent.pages;
    if (extent.pages > 1 && rng_.next_bool(profile_.partial_read_prob)) {
      // Partial hit on a request block: read a sub-extent.
      const std::uint32_t len = static_cast<std::uint32_t>(
          rng_.next_in(1, extent.pages - 1));
      const std::uint32_t off = static_cast<std::uint32_t>(
          rng_.next_in(0, extent.pages - len));
      r.lpn = extent.lpn + off;
      r.pages = len;
    }
    return r;
  }
  // Cold scan: read a large extent from a stream region — the in-trace
  // written prefix, or the whole (pre-conditioned) region.
  const Stream& st = streams_[rng_.next_below(streams_.size())];
  const std::uint32_t pages = static_cast<std::uint32_t>(rng_.next_in(
      profile_.large_write_min_pages, profile_.large_write_max_pages));
  const Lpn span = profile_.preexisting_cold_data
                       ? profile_.cold_stream_pages
                       : std::max<Lpn>(st.cursor, pages);
  const Lpn off = rng_.next_below(std::max<Lpn>(1, span - pages + 1));
  r.lpn = st.base + off;
  r.pages = pages;
  return r;
}

std::vector<std::pair<Lpn, Lpn>> SyntheticTraceSource::preexisting_ranges()
    const {
  std::vector<std::pair<Lpn, Lpn>> out;
  if (!profile_.preexisting_cold_data) return out;
  for (const Stream& st : streams_) {
    out.emplace_back(st.base, st.base + profile_.cold_stream_pages);
  }
  return out;
}

bool SyntheticTraceSource::next(IoRequest& out) {
  if (emitted_ >= profile_.total_requests) return false;
  const std::uint64_t id = emitted_++;
  double mean_gap = static_cast<double>(profile_.mean_interarrival_ns);
  if (profile_.burst_arrivals_enabled()) {
    // Phase depends only on the request index, so a resumed source lands
    // in the same spot of the spike/idle cycle as an uninterrupted one.
    const std::uint64_t phase = id % profile_.burst_arrival_period;
    mean_gap = phase < profile_.burst_arrival_len
                   ? mean_gap / profile_.burst_arrival_factor
                   : mean_gap * profile_.burst_idle_factor;
  }
  mean_gap *= diurnal_multiplier(id);
  clock_ += static_cast<SimTime>(rng_.next_exponential(mean_gap));
  if (rng_.next_bool(profile_.write_ratio)) {
    out = rng_.next_bool(profile_.large_write_fraction)
              ? make_large_write(id, clock_)
              : make_small_write(id, clock_);
  } else {
    out = make_read(id, clock_);
  }
  return true;
}

std::vector<IoRequest> SyntheticTraceSource::collect() {
  reset();
  std::vector<IoRequest> all;
  all.reserve(profile_.total_requests);
  IoRequest r;
  while (next(r)) all.push_back(r);
  reset();
  return all;
}

std::uint64_t SyntheticTraceSource::identity_hash() const {
  const WorkloadProfile& p = profile_;
  Fingerprint fp;
  fp.add_string("synthetic_profile");
  fp.add_string(p.name);
  fp.add(p.total_requests);
  fp.add(p.seed);
  fp.add_double(p.write_ratio);
  fp.add(p.hot_extents);
  fp.add(p.hot_slot_pages);
  fp.add(p.hot_slot_stride);
  fp.add(p.cold_stream_pages);
  fp.add_double(p.large_write_fraction);
  fp.add_double(p.small_write_mean_pages);
  fp.add_double(p.hot_medium_prob);
  fp.add_double(p.small_cold_fraction);
  fp.add(p.large_write_min_pages);
  fp.add(p.large_write_max_pages);
  fp.add_double(p.hot_zipf_theta);
  fp.add_double(p.burst_prob);
  fp.add(p.burst_window);
  fp.add_double(p.stream_rewrite_prob);
  fp.add(p.stream_count);
  fp.add_double(p.read_hot_fraction);
  fp.add_double(p.partial_read_prob);
  fp.add_double(p.read_large_head_fraction);
  fp.add(p.large_head_pages);
  fp.add(p.large_recent_window);
  fp.add_double(p.large_head_recency_bias);
  fp.add_bool(p.preexisting_cold_data);
  fp.add_i64(p.mean_interarrival_ns);
  fp.add(p.burst_arrival_len);
  fp.add(p.burst_arrival_period);
  fp.add_double(p.burst_arrival_factor);
  fp.add_double(p.burst_idle_factor);
  fp.add(p.drift_period);
  fp.add(p.drift_step);
  fp.add(p.diurnal_period);
  fp.add_double(p.diurnal_amplitude);
  return fp.value();
}

void SyntheticTraceSource::serialize(SnapshotWriter& w) const {
  w.tag("synthetic_trace");
  reqblock::serialize(w, rng_);
  w.u64(emitted_);
  w.i64(clock_);
  w.u64(streams_.size());
  for (const Stream& st : streams_) {
    w.u64(st.base);
    w.u64(st.cursor);
    w.u64(st.last_lpn);
    w.u32(st.last_pages);
  }
  w.vec_u64(recent_);
  w.u64(recent_pos_);
  w.u64(recent_large_.size());
  for (const LargeExtent& le : recent_large_) {
    w.u64(le.lpn);
    w.u32(le.pages);
  }
  w.u64(recent_large_pos_);
}

void SyntheticTraceSource::deserialize(SnapshotReader& r) {
  r.tag("synthetic_trace");
  reqblock::deserialize(r, rng_);
  emitted_ = r.u64();
  clock_ = r.i64();
  const std::uint64_t stream_count = r.u64();
  if (stream_count != streams_.size()) {
    throw SnapshotError("trace snapshot has a different stream count");
  }
  for (Stream& st : streams_) {
    st.base = r.u64();
    st.cursor = r.u64();
    st.last_lpn = r.u64();
    st.last_pages = r.u32();
  }
  recent_ = r.vec_u64();
  recent_pos_ = r.u64();
  if (recent_.size() > profile_.burst_window) {
    throw SnapshotError("trace snapshot burst window too big");
  }
  if (!recent_.empty() && recent_pos_ >= recent_.size()) {
    throw SnapshotError("trace snapshot burst-window cursor out of range");
  }
  const std::uint64_t large_count = r.u64();
  if (large_count > profile_.large_recent_window) {
    throw SnapshotError("trace snapshot large-write window too big");
  }
  recent_large_.assign(large_count, LargeExtent{});
  for (LargeExtent& le : recent_large_) {
    le.lpn = r.u64();
    le.pages = r.u32();
  }
  recent_large_pos_ = r.u64();
  if (!recent_large_.empty() && recent_large_pos_ >= recent_large_.size()) {
    throw SnapshotError("trace snapshot large-write cursor out of range");
  }
}

}  // namespace reqblock
