// The six workload profiles evaluated in the paper (Table 2).
//
// Each profile is a synthetic stand-in for the corresponding MSR Cambridge
// trace (hm_1, usr_0, src1_2, ts_0, proj_0) or the VDI trace (lun_1),
// tuned so that the generated stream approximates the published statistics:
// request count, write ratio, mean write size, and the relative amount of
// address reuse ("Frequent R/(Wr)" column). See DESIGN.md for the
// substitution rationale.
#pragma once

#include <string>
#include <vector>

#include "trace/synthetic.h"

namespace reqblock::profiles {

/// Statistics the paper reports for each trace (Table 2), used by
/// bench_table2_traces to print paper-vs-measured rows.
struct PaperTraceStats {
  std::uint64_t requests;
  double write_ratio;        // fraction
  double write_size_kb;      // mean write size
  double frequent_ratio;     // "Frequent R"
  double frequent_write_ratio;  // "(Wr)"
};

WorkloadProfile hm_1();
WorkloadProfile lun_1();
WorkloadProfile usr_0();
WorkloadProfile src1_2();
WorkloadProfile ts_0();
WorkloadProfile proj_0();

/// All six, in the paper's Table 2 order (by write ratio).
std::vector<WorkloadProfile> all();

/// Paper-reported stats for a profile name; throws on unknown name.
PaperTraceStats paper_stats(const std::string& name);

/// Profile by name; throws on unknown name.
WorkloadProfile by_name(const std::string& name);

}  // namespace reqblock::profiles
