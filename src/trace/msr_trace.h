// MSR Cambridge block-trace format support.
//
// Format (one request per line, CSV):
//   Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
// where Timestamp is a Windows FILETIME (100 ns ticks since 1601),
// Type is "Read"/"Write", Offset/Size are bytes, ResponseTime is ignored.
//
// The paper replays five MSR traces plus one VDI trace in this format; this
// parser lets the real traces be dropped in unchanged, while the synthetic
// profiles (see trace/profiles.h) substitute for them offline.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/io_request.h"

namespace reqblock {

struct MsrParseOptions {
  /// Page size used to convert byte extents to page extents.
  std::uint64_t page_size = 4096;
  /// When true, malformed lines are skipped; when false they throw.
  bool skip_malformed = true;
  /// Rebase timestamps so the first request arrives at t = 0.
  bool rebase_time = true;
  /// Optional cap on parsed requests (0 = no cap).
  std::uint64_t max_requests = 0;
  /// Name used in parse-error messages ("<name>:<line>: ...");
  /// parse_msr_file fills it with the path when empty.
  std::string source_name;
  /// Treat a final line that ends mid-record (no trailing newline and
  /// unparsable) as an error — the signature of a truncated copy or
  /// download. parse_msr_file enables this; stream/string callers keep
  /// the lenient default so embedded literals need no trailing newline.
  bool detect_truncation = false;
};

/// Parses a single MSR CSV line; nullopt if malformed. Arrival is the
/// timestamp converted to nanoseconds, saturated to the SimTime range —
/// real FILETIME stamps (100 ns ticks since 1601) overflow a signed 64-bit
/// nanosecond count, so absolute times from raw traces saturate; stream
/// parsing rebases in the tick domain first (see parse_msr_stream) and is
/// therefore exact. `raw_ticks`, when non-null, receives the unconverted
/// timestamp field.
std::optional<IoRequest> parse_msr_line(std::string_view line,
                                        const MsrParseOptions& opts,
                                        std::uint64_t* raw_ticks = nullptr);

/// Parses a whole stream. Timestamps are converted from 100 ns ticks to
/// ns; with rebase_time (the default) the first timestamp is subtracted in
/// the tick domain *before* the conversion, so genuine FILETIME stamps
/// never overflow. Throws std::runtime_error (with source_name and line
/// number) on an I/O error mid-stream, on a malformed line when
/// skip_malformed is off, or on a truncated final record when
/// detect_truncation is on.
std::vector<IoRequest> parse_msr_stream(std::istream& in,
                                        const MsrParseOptions& opts);

/// Parses a file on disk with truncation detection enabled and the path
/// woven into every error message; throws std::runtime_error (naming the
/// path and errno) if the file cannot be opened.
std::vector<IoRequest> parse_msr_file(const std::string& path,
                                      const MsrParseOptions& opts);

/// Serializes requests back to MSR CSV (used by tests for round-trips and
/// by the synthetic generator to export traces for other simulators).
void write_msr_stream(std::ostream& out, const std::vector<IoRequest>& reqs,
                      std::uint64_t page_size = 4096,
                      std::string_view hostname = "synthetic");

}  // namespace reqblock
