#include "trace/micro_workloads.h"

#include "util/check.h"
#include "util/zipf.h"

namespace reqblock::micro {
namespace {

IoRequest base_request(std::uint64_t id, const MicroOptions& opts,
                       Rng& rng) {
  IoRequest r;
  r.id = id;
  r.arrival = static_cast<SimTime>(id) * opts.interarrival;
  r.type = rng.next_bool(opts.write_ratio) ? IoType::kWrite : IoType::kRead;
  return r;
}

}  // namespace

std::vector<IoRequest> sequential(Lpn span, std::uint32_t pages,
                                  MicroOptions opts) {
  REQB_CHECK(pages >= 1 && span >= pages);
  Rng rng(opts.seed);
  std::vector<IoRequest> out;
  out.reserve(opts.requests);
  Lpn cursor = 0;
  for (std::uint64_t id = 0; id < opts.requests; ++id) {
    IoRequest r = base_request(id, opts, rng);
    if (cursor + pages > span) cursor = 0;
    r.lpn = cursor;
    r.pages = pages;
    cursor += pages;
    out.push_back(r);
  }
  return out;
}

std::vector<IoRequest> uniform_random(Lpn span, std::uint32_t max_pages,
                                      MicroOptions opts) {
  REQB_CHECK(max_pages >= 1 && span >= max_pages);
  Rng rng(opts.seed);
  std::vector<IoRequest> out;
  out.reserve(opts.requests);
  for (std::uint64_t id = 0; id < opts.requests; ++id) {
    IoRequest r = base_request(id, opts, rng);
    r.pages = static_cast<std::uint32_t>(rng.next_in(1, max_pages));
    r.lpn = rng.next_below(span - r.pages + 1);
    out.push_back(r);
  }
  return out;
}

std::vector<IoRequest> zipf(Lpn extents, std::uint32_t pages, double theta,
                            MicroOptions opts) {
  REQB_CHECK(extents >= 1 && pages >= 1);
  Rng rng(opts.seed);
  ZipfSampler sampler(extents, theta);
  std::vector<IoRequest> out;
  out.reserve(opts.requests);
  for (std::uint64_t id = 0; id < opts.requests; ++id) {
    IoRequest r = base_request(id, opts, rng);
    r.lpn = sampler.sample(rng) * pages;
    r.pages = pages;
    out.push_back(r);
  }
  return out;
}

std::vector<IoRequest> scan_loop(Lpn span, std::uint32_t pages,
                                 MicroOptions opts) {
  // Same shape as sequential; named separately because callers use it
  // with span > cache to express intent.
  return sequential(span, pages, opts);
}

std::vector<IoRequest> hot_with_pollution(Lpn hot_pages, double hot_fraction,
                                          std::uint32_t pollution_pages,
                                          MicroOptions opts) {
  REQB_CHECK(hot_pages >= 1 && pollution_pages >= 1);
  REQB_CHECK(hot_fraction > 0.0 && hot_fraction < 1.0);
  Rng rng(opts.seed);
  std::vector<IoRequest> out;
  out.reserve(opts.requests);
  Lpn pollution_cursor = hot_pages;  // one-shot region starts after hot set
  for (std::uint64_t id = 0; id < opts.requests; ++id) {
    IoRequest r = base_request(id, opts, rng);
    if (rng.next_bool(hot_fraction)) {
      r.lpn = rng.next_below(hot_pages);
      r.pages = 1;
    } else {
      r.lpn = pollution_cursor;
      r.pages = pollution_pages;
      pollution_cursor += pollution_pages;
    }
    out.push_back(r);
  }
  return out;
}

}  // namespace reqblock::micro
