#include "trace/profiles.h"

#include <stdexcept>

namespace reqblock::profiles {

// Parameter tuning notes (per profile):
//  * write_ratio and total_requests are Table 2 values verbatim;
//  * mean write size (pages) is matched via
//      (1 - p_large) * small_mean + p_large * (large_min + large_max)/2;
//  * hot_zipf_theta and read_hot_fraction encode the trace's address-reuse
//    level (the "Frequent R/(Wr)" column) — higher reuse => higher theta;
//  * interarrival keeps device utilization moderate so queueing differences
//    between policies are visible but stable.

WorkloadProfile hm_1() {
  WorkloadProfile p;
  p.name = "hm_1";
  p.total_requests = 609312;
  p.seed = 0x4a11;
  p.write_ratio = 0.047;
  p.hot_extents = 6000;
  p.hot_slot_pages = 8;
  p.hot_slot_stride = 64;
  p.large_write_fraction = 0.10;
  p.small_write_mean_pages = 2.0;
  p.large_write_min_pages = 16;
  p.large_write_max_pages = 48;
  p.hot_zipf_theta = 0.65;
  p.burst_prob = 0.40;
  p.burst_window = 256;
  p.read_hot_fraction = 0.50;
  p.read_large_head_fraction = 0.05;
  p.large_recent_window = 2048;
  p.hot_medium_prob = 0.12;
  p.small_cold_fraction = 0.15;
  p.preexisting_cold_data = true;
  p.mean_interarrival_ns = 500 * kMicrosecond;
  return p;
}

WorkloadProfile lun_1() {
  WorkloadProfile p;
  p.name = "lun_1";
  p.total_requests = 1894391;
  p.seed = 0x1c3a5;
  p.write_ratio = 0.332;
  p.hot_extents = 50000;
  p.hot_slot_pages = 8;
  p.hot_slot_stride = 64;
  p.large_write_fraction = 0.117;
  p.small_write_mean_pages = 2.0;
  p.large_write_min_pages = 8;
  p.large_write_max_pages = 40;
  p.hot_zipf_theta = 0.30;
  p.burst_prob = 0.08;
  p.burst_window = 256;
  p.read_hot_fraction = 0.25;
  p.read_large_head_fraction = 0.05;
  p.large_recent_window = 1024;
  p.hot_medium_prob = 0.05;
  p.small_cold_fraction = 0.30;
  p.preexisting_cold_data = true;
  p.mean_interarrival_ns = 1 * kMillisecond;
  return p;
}

WorkloadProfile usr_0() {
  WorkloadProfile p;
  p.name = "usr_0";
  p.total_requests = 2237889;
  p.seed = 0x75a20;
  p.write_ratio = 0.596;
  p.hot_extents = 9000;
  p.hot_slot_pages = 6;
  p.hot_slot_stride = 64;
  p.large_write_fraction = 0.056;
  p.small_write_mean_pages = 1.8;
  p.large_write_min_pages = 8;
  p.large_write_max_pages = 24;
  p.hot_zipf_theta = 0.65;
  p.burst_prob = 0.35;
  p.burst_window = 256;
  p.read_hot_fraction = 0.60;
  p.read_large_head_fraction = 0.08;
  p.large_recent_window = 1024;
  p.hot_medium_prob = 0.10;
  p.small_cold_fraction = 0.20;
  p.preexisting_cold_data = true;
  p.mean_interarrival_ns = 1 * kMillisecond;
  return p;
}

WorkloadProfile src1_2() {
  WorkloadProfile p;
  p.name = "src1_2";
  p.total_requests = 1907773;
  p.seed = 0x51c12;
  p.write_ratio = 0.746;
  p.hot_extents = 20000;
  p.hot_slot_pages = 8;
  p.hot_slot_stride = 64;
  p.large_write_fraction = 0.198;
  p.small_write_mean_pages = 2.2;
  p.large_write_min_pages = 16;
  p.large_write_max_pages = 48;
  p.stream_rewrite_prob = 0.18;
  p.hot_zipf_theta = 0.60;
  p.burst_prob = 0.30;
  p.burst_window = 256;
  p.read_hot_fraction = 0.80;
  p.read_large_head_fraction = 0.25;
  p.large_recent_window = 2048;
  p.hot_medium_prob = 0.20;
  p.small_cold_fraction = 0.15;
  p.preexisting_cold_data = true;
  p.mean_interarrival_ns = 2 * kMillisecond;
  return p;
}

WorkloadProfile ts_0() {
  WorkloadProfile p;
  p.name = "ts_0";
  p.total_requests = 1801734;
  p.seed = 0x7500;
  p.write_ratio = 0.824;
  p.hot_extents = 8000;
  p.hot_slot_pages = 4;
  p.hot_slot_stride = 8;
  p.large_write_fraction = 0.048;
  p.small_write_mean_pages = 1.6;
  p.large_write_min_pages = 4;
  p.large_write_max_pages = 16;
  p.hot_zipf_theta = 0.60;
  p.burst_prob = 0.30;
  p.burst_window = 256;
  p.read_hot_fraction = 0.45;
  p.read_large_head_fraction = 0.08;
  p.large_recent_window = 1024;
  p.hot_medium_prob = 0.00;
  p.small_cold_fraction = 0.40;
  p.preexisting_cold_data = true;
  p.mean_interarrival_ns = 1 * kMillisecond;
  return p;
}

WorkloadProfile proj_0() {
  WorkloadProfile p;
  p.name = "proj_0";
  p.total_requests = 4224525;
  p.seed = 0x9a0b0;
  p.write_ratio = 0.875;
  p.hot_extents = 30000;
  p.hot_slot_pages = 8;
  p.hot_slot_stride = 64;
  p.large_write_fraction = 0.207;
  p.small_write_mean_pages = 2.4;
  p.large_write_min_pages = 16;
  p.large_write_max_pages = 64;
  p.stream_rewrite_prob = 0.18;
  p.hot_zipf_theta = 0.60;
  p.burst_prob = 0.30;
  p.burst_window = 256;
  p.read_hot_fraction = 0.65;
  p.read_large_head_fraction = 0.25;
  p.large_recent_window = 2048;
  p.hot_medium_prob = 0.20;
  p.small_cold_fraction = 0.15;
  p.preexisting_cold_data = true;
  p.mean_interarrival_ns = 2500 * kMicrosecond;
  return p;
}

std::vector<WorkloadProfile> all() {
  return {hm_1(), lun_1(), usr_0(), src1_2(), ts_0(), proj_0()};
}

PaperTraceStats paper_stats(const std::string& name) {
  if (name == "hm_1") return {609312, 0.047, 20.0, 0.461, 0.839};
  if (name == "lun_1") return {1894391, 0.332, 18.6, 0.124, 0.128};
  if (name == "usr_0") return {2237889, 0.596, 10.3, 0.529, 0.329};
  if (name == "src1_2") return {1907773, 0.746, 32.5, 0.796, 0.391};
  if (name == "ts_0") return {1801734, 0.824, 8.0, 0.430, 0.581};
  if (name == "proj_0") return {4224525, 0.875, 40.9, 0.625, 0.599};
  throw std::invalid_argument("unknown trace profile: " + name);
}

WorkloadProfile by_name(const std::string& name) {
  for (auto& p : all()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("unknown trace profile: " + name);
}

}  // namespace reqblock::profiles
