#include "trace/msr_trace.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/check.h"
#include "util/strings.h"

namespace reqblock {

namespace {
// MSR timestamps are Windows FILETIME: 100 ns ticks.
constexpr std::int64_t kTicksToNs = 100;
}  // namespace

std::optional<IoRequest> parse_msr_line(std::string_view line,
                                        const MsrParseOptions& opts) {
  line = trim(line);
  if (line.empty() || line.front() == '#') return std::nullopt;
  const auto fields = split(line, ',');
  if (fields.size() < 6) return std::nullopt;

  const auto ts = parse_u64(fields[0]);
  const auto offset = parse_u64(fields[4]);
  const auto size = parse_u64(fields[5]);
  if (!ts || !offset || !size) return std::nullopt;

  const std::string_view type_field = trim(fields[3]);
  IoType type;
  if (iequals(type_field, "Read") || iequals(type_field, "R")) {
    type = IoType::kRead;
  } else if (iequals(type_field, "Write") || iequals(type_field, "W")) {
    type = IoType::kWrite;
  } else {
    return std::nullopt;
  }

  const std::uint64_t page = opts.page_size;
  const Lpn first = *offset / page;
  // A zero-byte request still touches the page containing the offset.
  const std::uint64_t end_byte = *offset + (*size == 0 ? 1 : *size);
  const Lpn last = (end_byte - 1) / page;

  IoRequest req;
  req.arrival = static_cast<SimTime>(*ts) * kTicksToNs;
  req.type = type;
  req.lpn = first;
  req.pages = static_cast<std::uint32_t>(last - first + 1);
  return req;
}

std::vector<IoRequest> parse_msr_stream(std::istream& in,
                                        const MsrParseOptions& opts) {
  std::vector<IoRequest> out;
  std::string line;
  std::uint64_t id = 0;
  SimTime base = -1;
  while (std::getline(in, line)) {
    auto req = parse_msr_line(line, opts);
    if (!req) {
      if (trim(line).empty()) continue;
      if (!opts.skip_malformed) {
        throw std::runtime_error("malformed MSR trace line: " + line);
      }
      continue;
    }
    if (opts.rebase_time) {
      if (base < 0) base = req->arrival;
      req->arrival -= base;
    }
    req->id = id++;
    out.push_back(*req);
    if (opts.max_requests != 0 && out.size() >= opts.max_requests) break;
  }
  return out;
}

std::vector<IoRequest> parse_msr_file(const std::string& path,
                                      const MsrParseOptions& opts) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return parse_msr_stream(in, opts);
}

void write_msr_stream(std::ostream& out, const std::vector<IoRequest>& reqs,
                      std::uint64_t page_size, std::string_view hostname) {
  for (const auto& r : reqs) {
    out << (r.arrival / kTicksToNs) << ',' << hostname << ",0,"
        << to_string(r.type) << ',' << (r.lpn * page_size) << ','
        << (static_cast<std::uint64_t>(r.pages) * page_size) << ",0\n";
  }
}

}  // namespace reqblock
