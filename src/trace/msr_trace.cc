#include "trace/msr_trace.h"

#include <cerrno>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <system_error>

#include "util/check.h"
#include "util/strings.h"

namespace reqblock {

namespace {
// MSR timestamps are Windows FILETIME: 100 ns ticks.
constexpr std::int64_t kTicksToNs = 100;

// "<source>:<line>" prefix for parse errors, so a bad trace file points
// at the exact offending record.
std::string at(const std::string& source, std::uint64_t line_no) {
  return (source.empty() ? std::string("trace") : source) + ':' +
         std::to_string(line_no);
}

// Tick → ns without signed overflow: real FILETIME stamps (~1.28e17 ticks
// for a 2007 trace) exceed int64 nanoseconds, which used to make the
// multiplication undefined behaviour (caught by UBSan). Absolute times
// past the representable range saturate; exact arrivals come from
// rebasing in ticks first.
SimTime ticks_to_ns_saturating(std::uint64_t ticks) {
  constexpr std::uint64_t kMaxTicks =
      static_cast<std::uint64_t>(std::numeric_limits<SimTime>::max()) /
      static_cast<std::uint64_t>(kTicksToNs);
  if (ticks > kMaxTicks) return std::numeric_limits<SimTime>::max();
  return static_cast<SimTime>(ticks) * kTicksToNs;
}
}  // namespace

std::optional<IoRequest> parse_msr_line(std::string_view line,
                                        const MsrParseOptions& opts,
                                        std::uint64_t* raw_ticks) {
  line = trim(line);
  if (line.empty() || line.front() == '#') return std::nullopt;
  const auto fields = split(line, ',');
  if (fields.size() < 6) return std::nullopt;

  const auto ts = parse_u64(fields[0]);
  const auto offset = parse_u64(fields[4]);
  const auto size = parse_u64(fields[5]);
  if (!ts || !offset || !size) return std::nullopt;

  const std::string_view type_field = trim(fields[3]);
  IoType type;
  if (iequals(type_field, "Read") || iequals(type_field, "R")) {
    type = IoType::kRead;
  } else if (iequals(type_field, "Write") || iequals(type_field, "W")) {
    type = IoType::kWrite;
  } else {
    return std::nullopt;
  }

  const std::uint64_t page = opts.page_size;
  const Lpn first = *offset / page;
  // A zero-byte request still touches the page containing the offset.
  const std::uint64_t span = *size == 0 ? 1 : *size;
  // Reject byte ranges that wrap the 64-bit address space and page counts
  // that do not fit the request representation: they are corrupt input,
  // not giant requests (a wrapped end_byte used to produce garbage LPNs).
  if (*offset > std::numeric_limits<std::uint64_t>::max() - span) {
    return std::nullopt;
  }
  const std::uint64_t end_byte = *offset + span;
  const Lpn last = (end_byte - 1) / page;
  if (last - first >= std::numeric_limits<std::uint32_t>::max()) {
    return std::nullopt;
  }

  IoRequest req;
  if (raw_ticks != nullptr) *raw_ticks = *ts;
  req.arrival = ticks_to_ns_saturating(*ts);
  req.type = type;
  req.lpn = first;
  req.pages = static_cast<std::uint32_t>(last - first + 1);
  return req;
}

std::vector<IoRequest> parse_msr_stream(std::istream& in,
                                        const MsrParseOptions& opts) {
  std::vector<IoRequest> out;
  std::string line;
  std::uint64_t id = 0;
  std::uint64_t line_no = 0;
  bool have_base = false;
  std::uint64_t base_ticks = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // getline succeeding with eof set means the line had no trailing
    // newline — on a file, an unparsable one is a cut-off final record.
    const bool partial_tail = in.eof();
    std::uint64_t ticks = 0;
    auto req = parse_msr_line(line, opts, &ticks);
    if (!req) {
      const auto body = trim(line);
      if (body.empty() || body.front() == '#') continue;
      if (!opts.skip_malformed) {
        throw std::runtime_error(at(opts.source_name, line_no) +
                                 ": malformed MSR trace line: " + line);
      }
      if (opts.detect_truncation && partial_tail) {
        throw std::runtime_error(
            at(opts.source_name, line_no) +
            ": trace ends mid-record (truncated file?): " + line);
      }
      continue;
    }
    if (opts.rebase_time) {
      // Rebase in the tick domain so the ns conversion never overflows
      // for genuine FILETIME stamps. Traces are time-ordered; clamp any
      // stray out-of-order stamp to the base rather than wrapping.
      if (!have_base) {
        have_base = true;
        base_ticks = ticks;
      }
      req->arrival = ticks_to_ns_saturating(
          ticks >= base_ticks ? ticks - base_ticks : 0);
    }
    req->id = id++;
    out.push_back(*req);
    if (opts.max_requests != 0 && out.size() >= opts.max_requests) break;
  }
  if (in.bad()) {
    throw std::runtime_error(at(opts.source_name, line_no) +
                             ": I/O error while reading trace (short read)");
  }
  return out;
}

std::vector<IoRequest> parse_msr_file(const std::string& path,
                                      const MsrParseOptions& opts) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open trace file: " + path + " (" +
                             std::generic_category().message(errno) + ")");
  }
  MsrParseOptions file_opts = opts;
  if (file_opts.source_name.empty()) file_opts.source_name = path;
  file_opts.detect_truncation = true;
  return parse_msr_stream(in, file_opts);
}

void write_msr_stream(std::ostream& out, const std::vector<IoRequest>& reqs,
                      std::uint64_t page_size, std::string_view hostname) {
  for (const auto& r : reqs) {
    out << (r.arrival / kTicksToNs) << ',' << hostname << ",0,"
        << to_string(r.type) << ',' << (r.lpn * page_size) << ','
        << (static_cast<std::uint64_t>(r.pages) * page_size) << ",0\n";
  }
}

}  // namespace reqblock
