#include "telemetry/exporters.h"

#include <array>
#include <ostream>
#include <set>
#include <string>

#include "telemetry/attribution.h"
#include "util/strings.h"

namespace reqblock {
namespace {

constexpr const char* to_string(EventCategory c) {
  return c == EventCategory::kCache ? "cache" : "flash";
}

// Chrome-trace process ids (arbitrary but stable).
constexpr int kPidCache = 1;
constexpr int kPidChips = 2;
constexpr int kPidChannels = 3;
constexpr int kPidAttr = 4;

constexpr std::array<const char*, 5> kCacheTrackNames = {
    "manager", "IRL", "SRL", "DRL", "host"};

/// Microsecond timestamp with sub-ns kept as decimals (trace_event "ts").
std::string us(SimTime ns) {
  return format_double(static_cast<double>(ns) / 1000.0, 3);
}

void write_meta(std::ostream& os, int pid, int tid, const char* what,
                const std::string& name, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":")" << what << R"(","ph":"M","pid":)" << pid;
  if (tid >= 0) os << R"(,"tid":)" << tid;
  os << R"(,"args":{"name":")" << name << R"("}})";
}

void write_slice(std::ostream& os, const TraceEvent& e, int pid, int tid,
                 bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":")" << to_string(e.kind) << R"(","cat":")"
     << to_string(category_of(e.kind)) << R"(","pid":)" << pid << R"(,"tid":)"
     << tid << R"(,"ts":)" << us(e.at);
  if (e.dur > 0) {
    os << R"(,"ph":"X","dur":)" << us(e.dur);
  } else {
    os << R"(,"ph":"i","s":"t")";
  }
  os << R"(,"args":{"lpn":)" << e.lpn << R"(,"arg":)" << e.arg;
  if (category_of(e.kind) == EventCategory::kFlash) {
    os << R"(,"channel":)" << e.channel;
  }
  os << "}}";
}

}  // namespace

void write_events_jsonl(std::ostream& os,
                        std::span<const TraceEvent> events) {
  for (const TraceEvent& e : events) {
    os << R"({"ts":)" << e.at << R"(,"dur":)" << e.dur << R"(,"kind":")"
       << to_string(e.kind) << R"(","cat":")" << to_string(category_of(e.kind))
       << R"(","track":)" << e.track << R"(,"channel":)" << e.channel
       << R"(,"lpn":)" << e.lpn << R"(,"arg":)" << e.arg << "}\n";
  }
}

void write_chrome_trace(std::ostream& os,
                        std::span<const TraceEvent> events) {
  // Collect the tracks that actually carry events so the metadata block
  // names exactly the lanes Perfetto will show.
  std::set<std::uint16_t> cache_tracks, chips, channels, attr_tracks;
  for (const TraceEvent& e : events) {
    if (e.kind == EventKind::kAttrSpan) {
      attr_tracks.insert(e.track);
    } else if (category_of(e.kind) == EventCategory::kCache) {
      cache_tracks.insert(e.track);
    } else {
      chips.insert(e.track);
      if (e.kind == EventKind::kPageRead ||
          e.kind == EventKind::kPageProgram) {
        channels.insert(e.channel);
      }
    }
  }

  os << "{\"traceEvents\":[\n";
  bool first = true;
  if (!cache_tracks.empty()) {
    write_meta(os, kPidCache, -1, "process_name", "cache", first);
    for (const auto t : cache_tracks) {
      const char* name =
          t < kCacheTrackNames.size() ? kCacheTrackNames[t] : "track";
      write_meta(os, kPidCache, t, "thread_name", name, first);
    }
  }
  if (!chips.empty()) {
    write_meta(os, kPidChips, -1, "process_name", "flash chips", first);
    for (const auto t : chips) {
      write_meta(os, kPidChips, t, "thread_name",
                 "chip " + std::to_string(t), first);
    }
  }
  if (!channels.empty()) {
    write_meta(os, kPidChannels, -1, "process_name", "flash channels",
               first);
    for (const auto t : channels) {
      write_meta(os, kPidChannels, t, "thread_name",
                 "channel " + std::to_string(t), first);
    }
  }
  if (!attr_tracks.empty()) {
    write_meta(os, kPidAttr, -1, "process_name", "request attribution",
               first);
    for (const auto t : attr_tracks) {
      const char* name = t < kAttrComponents
                             ? to_string(static_cast<AttrComponent>(t))
                             : "component";
      write_meta(os, kPidAttr, t, "thread_name", name, first);
    }
  }

  for (const TraceEvent& e : events) {
    if (e.kind == EventKind::kAttrSpan) {
      // One lane per latency component; a served request's spans tile
      // [host arrival, completion] across the lanes.
      write_slice(os, e, kPidAttr, e.track, first);
      continue;
    }
    if (category_of(e.kind) == EventCategory::kCache) {
      write_slice(os, e, kPidCache, e.track, first);
      continue;
    }
    write_slice(os, e, kPidChips, e.track, first);
    // Mirror page transfers onto their channel lane: the bus is the
    // contended resource the paper's §4.2.2 colocation argument is about.
    if (e.kind == EventKind::kPageRead || e.kind == EventKind::kPageProgram) {
      write_slice(os, e, kPidChannels, e.channel, first);
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace reqblock
