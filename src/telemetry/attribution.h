// Per-request latency attribution.
//
// Every served request's end-to-end latency (completion - host arrival)
// is decomposed into eight disjoint sim-time components along the
// request's critical path:
//
//   queue_wait    admission wait in the bounded host queue
//   throttle      GC-pressure write stretch injected before admission
//   cache_lookup  DRAM access time of hits/inserts (cache_access_latency)
//   evict_stall   synchronous eviction-flush time a miss waited out
//   ftl_read      flash read service of read misses (sense + bus)
//   ftl_program   flash program service of cache-bypass writes
//   gc            extra wait because garbage collection held the chip
//   fault_retry   injected-fault machinery: program retries/backoffs,
//                 read re-senses, degraded-plane penalties, and the
//                 power-loss recovery clamp on arrival
//
// The decomposition is exact by construction: the serve path tracks the
// breakdown of whichever page operation achieved the running-max
// completion (the critical path — ties keep the first achiever, so the
// choice is deterministic), composite intervals subtract the known gc and
// fault portions, and the remainder lands in the composite's own bucket.
// The invariant `sum(components) == end-to-end latency` holds in integer
// sim-ns for every request and is audited per request under
// REQBLOCK_AUDIT=full.
//
// Aggregation is zero-allocation per request: one LogHistogram per
// component (nonzero contributions only) plus a (response-time bucket x
// component) matrix of summed sim-ns, sized once when attribution is
// enabled. The matrix keys rows by the same LogHistogram bucket the
// request's total latency is recorded into, so tail slices ("the slowest
// decile/percentile") come from walking bucket rows top-down.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/histogram.h"
#include "util/types.h"

namespace reqblock {

class SnapshotReader;
class SnapshotWriter;

enum class AttrComponent : std::uint8_t {
  kQueueWait = 0,
  kThrottle,
  kCacheLookup,
  kEvictStall,
  kFtlRead,
  kFtlProgram,
  kGc,
  kFaultRetry,
};

inline constexpr std::size_t kAttrComponents = 8;

constexpr const char* to_string(AttrComponent c) {
  switch (c) {
    case AttrComponent::kQueueWait: return "queue_wait";
    case AttrComponent::kThrottle: return "throttle";
    case AttrComponent::kCacheLookup: return "cache_lookup";
    case AttrComponent::kEvictStall: return "evict_stall";
    case AttrComponent::kFtlRead: return "ftl_read";
    case AttrComponent::kFtlProgram: return "ftl_program";
    case AttrComponent::kGc: return "gc";
    case AttrComponent::kFaultRetry: return "fault_retry";
  }
  return "?";
}

/// The portions of one FTL operation's service interval caused by garbage
/// collection and by injected-fault machinery. The FTL guarantees
/// gc + fault <= (completion - issue) for the operation that filled it,
/// so callers can attribute the remainder to their own bucket without
/// ever going negative.
struct OpAttribution {
  SimTime gc = 0;
  SimTime fault = 0;
};

/// One request's component breakdown, filled along the serve path.
struct RequestBreakdown {
  std::array<SimTime, kAttrComponents> ns{};

  SimTime& operator[](AttrComponent c) {
    return ns[static_cast<std::size_t>(c)];
  }
  SimTime at(AttrComponent c) const {
    return ns[static_cast<std::size_t>(c)];
  }
  SimTime sum() const {
    SimTime s = 0;
    for (const SimTime v : ns) s += v;
    return s;
  }
};

/// Aggregated attribution of one run. Value-typed (lives in RunResult);
/// prepare() sizes the matrix once, record() touches only preallocated
/// rows.
struct AttributionResult {
  bool enabled = false;
  /// Breakdowns recorded (== served measured requests).
  std::uint64_t requests = 0;
  /// Summed end-to-end latency of all recorded requests.
  std::uint64_t total_ns = 0;
  /// Per-component summed sim-ns across all recorded requests.
  std::array<std::uint64_t, kAttrComponents> component_ns{};
  /// Distribution of each component's *nonzero* contributions.
  std::array<LogHistogram, kAttrComponents> component_hist;
  /// Requests per response-time bucket (LogHistogram::bucket_index of the
  /// request's total latency).
  std::vector<std::uint64_t> bucket_requests;
  /// Per-bucket, per-component summed sim-ns;
  /// layout bucket * kAttrComponents + component.
  std::vector<std::uint64_t> bucket_component_ns;

  /// Sizes the matrix (idempotent) and marks attribution enabled.
  void prepare();
  /// Folds one request's breakdown in. `total` is its end-to-end latency;
  /// callers audit total == bd.sum() (exactness) before recording.
  void record(const RequestBreakdown& bd, SimTime total);
  /// Drops all recorded data, keeping `enabled` (warmup reset).
  void clear();

  /// Internal consistency: matrix row sums against the totals. Used by
  /// the session's full audit and the test suite.
  bool consistent() const;

  /// Snapshot section: writes/reads the enabled flag and, when enabled,
  /// the full aggregation state (byte-stable).
  void serialize(SnapshotWriter& w) const;
  void deserialize(SnapshotReader& r);
};

/// One tail slice of a run: the slowest `fraction` of requests, at bucket
/// resolution (the slice boundary snaps to a whole response-time bucket,
/// covering at least ceil(fraction * requests) requests when possible).
struct TailSlice {
  double fraction = 0.0;        // requested share of slowest requests
  std::uint64_t requests = 0;   // requests actually covered
  SimTime threshold_ns = 0;     // representative latency floor of the slice
  std::uint64_t total_ns = 0;   // summed latency inside the slice
  std::array<std::uint64_t, kAttrComponents> component_ns{};
};

/// Extracts the slowest-`fraction` slice by walking the bucket matrix
/// from the top. fraction in (0, 1]; an empty run yields an empty slice.
TailSlice tail_slice(const AttributionResult& a, double fraction);

/// Component indices of `slice` sorted by descending contribution (ties
/// break toward the lower component index, so the order is stable).
std::array<std::size_t, kAttrComponents> rank_components(
    const TailSlice& slice);

}  // namespace reqblock
