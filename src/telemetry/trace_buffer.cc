#include "telemetry/trace_buffer.h"

#include <cstdlib>

#include "util/check.h"
#include "util/strings.h"

namespace reqblock {

TraceLevel parse_trace_level(std::string_view text, TraceLevel fallback) {
  if (iequals(text, "off") || text == "0" || iequals(text, "none")) {
    return TraceLevel::kOff;
  }
  if (iequals(text, "cache")) return TraceLevel::kCache;
  if (iequals(text, "flash")) return TraceLevel::kFlash;
  if (iequals(text, "all") || iequals(text, "on") || text == "1") {
    return TraceLevel::kAll;
  }
  return fallback;
}

TraceLevel trace_level_from_env(TraceLevel fallback) {
  const char* env = std::getenv("REQBLOCK_TRACE");
  if (env == nullptr) return fallback;
  return parse_trace_level(env, fallback);
}

TraceBuffer::TraceBuffer(TraceConfig config) : config_(config) {
  REQB_CHECK_MSG(config_.capacity >= 1, "trace ring needs at least one slot");
  if (config_.sample_period == 0) config_.sample_period = 1;
  // Storage is reserved lazily in emit(): a buffer that never accepts an
  // event (level off, or nothing instrumented ran) costs zero allocations.
}

void TraceBuffer::emit(const TraceEvent& e) {
  const EventCategory cat = category_of(e.kind);
  if (!enabled(cat)) return;
  const std::size_t ci = cat == EventCategory::kCache ? 0 : 1;
  if (offered_[ci]++ % config_.sample_period != 0) {
    ++sampled_out_;
    return;
  }
  if (ring_.size() < config_.capacity) {
    ring_.push_back(e);
    ++size_;
  } else {
    ring_[next_] = e;  // overwrite the oldest event
  }
  next_ = (next_ + 1) % config_.capacity;
  ++emitted_;
}

std::vector<TraceEvent> TraceBuffer::drain() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  if (size_ < config_.capacity) {
    // Never wrapped: events sit in insertion order from slot 0.
    out.assign(ring_.begin(), ring_.end());
    return out;
  }
  // Wrapped: the oldest surviving event is at next_.
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  return out;
}

void TraceBuffer::clear() {
  ring_.clear();
  ring_.shrink_to_fit();
  next_ = 0;
  size_ = 0;
  emitted_ = 0;
  sampled_out_ = 0;
  offered_[0] = offered_[1] = 0;
}

}  // namespace reqblock
