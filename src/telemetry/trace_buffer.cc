#include "telemetry/trace_buffer.h"

#include <cstdlib>

#include "snapshot/snapshot.h"
#include "util/check.h"
#include "util/strings.h"

namespace reqblock {

TraceLevel parse_trace_level(std::string_view text, TraceLevel fallback) {
  if (iequals(text, "off") || text == "0" || iequals(text, "none")) {
    return TraceLevel::kOff;
  }
  if (iequals(text, "cache")) return TraceLevel::kCache;
  if (iequals(text, "flash")) return TraceLevel::kFlash;
  if (iequals(text, "all") || iequals(text, "on") || text == "1") {
    return TraceLevel::kAll;
  }
  return fallback;
}

TraceLevel trace_level_from_env(TraceLevel fallback) {
  // Read-only environment access; nothing in the process calls setenv.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("REQBLOCK_TRACE");
  if (env == nullptr) return fallback;
  return parse_trace_level(env, fallback);
}

TraceBuffer::TraceBuffer(TraceConfig config) : config_(config) {
  REQB_CHECK_MSG(config_.capacity >= 1, "trace ring needs at least one slot");
  if (config_.sample_period == 0) config_.sample_period = 1;
  // Storage is reserved lazily in emit(): a buffer that never accepts an
  // event (level off, or nothing instrumented ran) costs zero allocations.
}

void TraceBuffer::emit(const TraceEvent& e) {
  const EventCategory cat = category_of(e.kind);
  if (!enabled(cat)) return;
  const std::size_t ci = cat == EventCategory::kCache ? 0 : 1;
  if (offered_[ci]++ % config_.sample_period != 0) {
    ++sampled_out_;
    return;
  }
  if (ring_.size() < config_.capacity) {
    ring_.push_back(e);
    ++size_;
  } else {
    ring_[next_] = e;  // overwrite the oldest event
  }
  next_ = (next_ + 1) % config_.capacity;
  ++emitted_;
}

std::vector<TraceEvent> TraceBuffer::drain() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  if (size_ < config_.capacity) {
    // Never wrapped: events sit in insertion order from slot 0.
    out.assign(ring_.begin(), ring_.end());
    return out;
  }
  // Wrapped: the oldest surviving event is at next_.
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  return out;
}

void TraceBuffer::clear() {
  ring_.clear();
  ring_.shrink_to_fit();
  next_ = 0;
  size_ = 0;
  emitted_ = 0;
  sampled_out_ = 0;
  offered_[0] = offered_[1] = 0;
}

void TraceBuffer::serialize(SnapshotWriter& w) const {
  w.tag("trace_buffer");
  // Events go out oldest-first (drain order), which normalizes the ring
  // layout: two buffers holding the same events at different wrap
  // positions produce identical bytes.
  const std::vector<TraceEvent> events = drain();
  w.u64(events.size());
  for (const TraceEvent& e : events) {
    w.i64(e.at);
    w.i64(e.dur);
    w.u64(e.lpn);
    w.u64(e.arg);
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.u16(e.track);
    w.u16(e.channel);
  }
  w.u64(emitted_);
  w.u64(sampled_out_);
  w.u64(offered_[0]);
  w.u64(offered_[1]);
  w.i64(now_);
}

void TraceBuffer::deserialize(SnapshotReader& r) {
  r.tag("trace_buffer");
  REQB_CHECK_MSG(size_ == 0 && emitted_ == 0,
                 "deserialize into a non-fresh trace buffer");
  const std::uint64_t count = r.u64();
  if (count > config_.capacity) {
    throw SnapshotError("trace-buffer snapshot exceeds the ring capacity");
  }
  ring_.clear();
  ring_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceEvent e;
    e.at = r.i64();
    e.dur = r.i64();
    e.lpn = r.u64();
    e.arg = r.u64();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(EventKind::kAttrSpan)) {
      throw SnapshotError("trace-buffer snapshot has an unknown event kind");
    }
    e.kind = static_cast<EventKind>(kind);
    e.track = r.u16();
    e.channel = r.u16();
    ring_.push_back(e);
  }
  size_ = ring_.size();
  // Restoring in oldest-first order means the oldest event sits in slot 0;
  // when the ring is full the next emit must overwrite exactly there.
  next_ = size_ % config_.capacity;
  emitted_ = r.u64();
  sampled_out_ = r.u64();
  offered_[0] = r.u64();
  offered_[1] = r.u64();
  now_ = r.i64();
}

}  // namespace reqblock
