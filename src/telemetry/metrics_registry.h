// Named-metric registry and time-series snapshots.
//
// Components register named gauges — callbacks sampled on demand — once
// per run; the simulator then snapshots the whole registry periodically
// (every N requests or M sim-ns) into a MetricsSeries. This generalizes
// the hard-wired Fig. 13 occupancy probe to *any* metric: hit ratio, WAF,
// per-list sizes, free-block count all ride the same path and land in one
// CSV with a `request` + `sim_ns` spine.
//
// Names are dot-scoped ("cache.hit_ratio", "flash.waf", "list.irl_pages");
// duplicate registration throws (two components claiming one name is a
// wiring bug, not a runtime condition). Sampling order is deterministic:
// always ascending by name.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/types.h"

namespace reqblock {

class SnapshotReader;
class SnapshotWriter;

class MetricsRegistry {
 public:
  using Sampler = std::function<double()>;

  /// Registers a gauge sampled by calling `fn`. Throws std::invalid_argument
  /// when `name` is empty, contains a comma/newline (would corrupt the CSV),
  /// or is already registered.
  void register_gauge(std::string name, Sampler fn);

  /// Convenience: gauge over an integer counter that outlives the registry.
  void register_counter(std::string name, const std::uint64_t* counter);

  bool contains(const std::string& name) const {
    return gauges_.contains(name);
  }
  std::size_t size() const { return gauges_.size(); }

  /// Registered names, ascending.
  std::vector<std::string> names() const;

  /// Samples every gauge, in names() order.
  std::vector<double> sample() const;

 private:
  std::map<std::string, Sampler> gauges_;
};

/// Periodic whole-registry snapshots of one run.
struct MetricsSeries {
  struct Row {
    std::uint64_t request = 0;  // requests served when the row was taken
    SimTime sim_ns = 0;         // simulated time of the last completion
    std::vector<double> values; // one per column, in column order
  };

  std::vector<std::string> columns;  // metric names, ascending
  std::vector<Row> rows;

  bool empty() const { return rows.empty(); }
  /// Column index of `name`, or npos when absent.
  static constexpr std::size_t npos = ~static_cast<std::size_t>(0);
  std::size_t column_index(const std::string& name) const;

  /// Checkpoint: column names plus every sampled row.
  void serialize(SnapshotWriter& w) const;
  void deserialize(SnapshotReader& r);
};

/// Writes `request,sim_ns,<columns...>` followed by one line per row.
/// Values use fixed 6-decimal formatting (locale-independent).
void write_series_csv(std::ostream& os, const MetricsSeries& series);

}  // namespace reqblock
