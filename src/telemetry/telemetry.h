// Per-run telemetry bundle: event trace + metrics registry + profiler.
//
// One Telemetry instance belongs to one simulated run (runs parallelize
// at the experiment level, one bundle each; nothing here is shared or
// thread-safe). The simulator wires the three pillars into the stack:
//   * TraceBuffer    — structured events from CacheManager / policy / Ftl;
//   * MetricsRegistry— named gauges, snapshotted every N requests or
//                      M sim-ns into a MetricsSeries;
//   * Profiler       — wall-clock scoped timers around the hot loop.
//
// Runtime gates:
//   REQBLOCK_TRACE=off|cache|flash|all   event categories (default off)
//   --trace/--trace-buffer/--trace-sample, --snapshot-every,
//   --snapshot-every-ms, --profile       per-binary CLI (apply_cli)
#pragma once

#include <cstdint>
#include <string_view>

#include "telemetry/metrics_registry.h"
#include "telemetry/profiler.h"
#include "telemetry/trace_buffer.h"
#include "util/types.h"

namespace reqblock {

class ArgParser;

struct TelemetryOptions {
  TraceConfig trace;
  /// Snapshot the metrics registry every N measured requests (0 = off).
  std::uint64_t snapshot_every_requests = 0;
  /// ... and/or every M sim-ns of completion-time progress (0 = off).
  SimTime snapshot_every_ns = 0;
  /// Collect the wall-clock self-profile.
  bool profile = false;
  /// Per-request latency attribution: component histograms, the response
  /// bucket x component matrix behind tail root-cause reports, and (when
  /// the trace is on) kAttrSpan events for Chrome-trace span lanes. Off by
  /// default; runs without it are bit-identical to earlier builds.
  bool attribution = false;

  bool snapshots_enabled() const {
    return snapshot_every_requests > 0 || snapshot_every_ns > 0;
  }

  /// Overrides the trace level from REQBLOCK_TRACE when the variable is
  /// set (explicitly configured binaries call this last — or not at all).
  void apply_env() { trace.level = trace_level_from_env(trace.level); }

  /// Reads the standard CLI flags: --trace LEVEL, --trace-buffer EVENTS,
  /// --trace-sample N, --snapshot-every REQS, --snapshot-every-ms MS,
  /// --profile, --attribution. Flags the parser does not carry keep their
  /// current value. `prefix` namespaces every flag (binaries whose own
  /// flags collide pass e.g. "telemetry-" and expose --telemetry-trace,
  /// --telemetry-profile, ...); --attribution is always honored unprefixed
  /// as well, since no binary overloads it.
  void apply_cli(const ArgParser& args, std::string_view prefix = "");
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options)
      : options_(options),
        trace_(options.trace),
        profiler_(options.profile) {}

  const TelemetryOptions& options() const { return options_; }
  TraceBuffer& trace() { return trace_; }
  const TraceBuffer& trace() const { return trace_; }
  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  Profiler& profiler() { return profiler_; }
  const Profiler& profiler() const { return profiler_; }

 private:
  TelemetryOptions options_;
  TraceBuffer trace_;
  MetricsRegistry registry_;
  Profiler profiler_;
};

/// What a finished run hands back (drained, value-typed, thread-safe to
/// move across the experiment runner).
struct TelemetryResult {
  std::vector<TraceEvent> events;
  std::uint64_t events_emitted = 0;
  std::uint64_t events_dropped = 0;
  std::uint64_t events_sampled_out = 0;
  MetricsSeries snapshots;
  ProfileReport profile;

  bool empty() const {
    return events.empty() && snapshots.empty() && profile.empty();
  }
};

}  // namespace reqblock
