#include "telemetry/attribution.h"

#include <algorithm>
#include <cmath>

#include "snapshot/snapshot.h"
#include "util/check.h"

namespace reqblock {

void AttributionResult::prepare() {
  enabled = true;
  const std::size_t buckets = LogHistogram::bucket_count();
  if (bucket_requests.size() != buckets) {
    bucket_requests.assign(buckets, 0);
    bucket_component_ns.assign(buckets * kAttrComponents, 0);
  }
}

void AttributionResult::record(const RequestBreakdown& bd, SimTime total) {
  REQB_DCHECK(enabled && !bucket_requests.empty());
  ++requests;
  total_ns += static_cast<std::uint64_t>(total);
  const std::size_t bucket = LogHistogram::bucket_index(total);
  ++bucket_requests[bucket];
  const std::size_t row = bucket * kAttrComponents;
  for (std::size_t c = 0; c < kAttrComponents; ++c) {
    const SimTime v = bd.ns[c];
    if (v == 0) continue;
    component_ns[c] += static_cast<std::uint64_t>(v);
    component_hist[c].record(v);
    bucket_component_ns[row + c] += static_cast<std::uint64_t>(v);
  }
}

void AttributionResult::clear() {
  requests = 0;
  total_ns = 0;
  component_ns.fill(0);
  for (auto& h : component_hist) h.clear();
  std::fill(bucket_requests.begin(), bucket_requests.end(), 0);
  std::fill(bucket_component_ns.begin(), bucket_component_ns.end(), 0);
}

bool AttributionResult::consistent() const {
  if (!enabled) {
    return requests == 0 && total_ns == 0 && bucket_requests.empty();
  }
  std::uint64_t reqs = 0;
  std::array<std::uint64_t, kAttrComponents> per_component{};
  std::uint64_t matrix_total = 0;
  for (std::size_t b = 0; b < bucket_requests.size(); ++b) {
    reqs += bucket_requests[b];
    for (std::size_t c = 0; c < kAttrComponents; ++c) {
      const std::uint64_t v = bucket_component_ns[b * kAttrComponents + c];
      per_component[c] += v;
      matrix_total += v;
    }
  }
  if (reqs != requests || matrix_total != total_ns) return false;
  for (std::size_t c = 0; c < kAttrComponents; ++c) {
    if (per_component[c] != component_ns[c]) return false;
    if (component_hist[c].raw_sum() !=
        static_cast<double>(component_ns[c])) {
      // raw_sum is a double; component sums stay well under 2^53 sim-ns
      // for any run this simulator completes, so equality is exact.
      return false;
    }
  }
  return true;
}

void AttributionResult::serialize(SnapshotWriter& w) const {
  w.tag("attr");
  w.b(enabled);
  if (!enabled) return;
  w.u64(requests);
  w.u64(total_ns);
  for (const std::uint64_t v : component_ns) w.u64(v);
  for (const auto& h : component_hist) reqblock::serialize(w, h);
  w.vec_u64(bucket_requests);
  w.vec_u64(bucket_component_ns);
}

void AttributionResult::deserialize(SnapshotReader& r) {
  r.tag("attr");
  enabled = r.b();
  if (!enabled) {
    *this = AttributionResult{};
    return;
  }
  prepare();
  requests = r.u64();
  total_ns = r.u64();
  for (std::uint64_t& v : component_ns) v = r.u64();
  for (auto& h : component_hist) reqblock::deserialize(r, h);
  bucket_requests = r.vec_u64();
  bucket_component_ns = r.vec_u64();
  const std::size_t buckets = LogHistogram::bucket_count();
  if (bucket_requests.size() != buckets ||
      bucket_component_ns.size() != buckets * kAttrComponents ||
      !consistent()) {
    throw SnapshotError("attribution section is internally inconsistent");
  }
}

TailSlice tail_slice(const AttributionResult& a, double fraction) {
  TailSlice s;
  s.fraction = fraction;
  if (!a.enabled || a.requests == 0 || fraction <= 0.0) return s;
  fraction = std::min(fraction, 1.0);
  const auto want = static_cast<std::uint64_t>(std::ceil(
      fraction * static_cast<double>(a.requests)));
  for (std::size_t b = a.bucket_requests.size(); b > 0; --b) {
    const std::size_t bucket = b - 1;
    if (a.bucket_requests[bucket] == 0) continue;
    s.requests += a.bucket_requests[bucket];
    s.threshold_ns = LogHistogram::bucket_value(bucket);
    for (std::size_t c = 0; c < kAttrComponents; ++c) {
      const std::uint64_t v =
          a.bucket_component_ns[bucket * kAttrComponents + c];
      s.component_ns[c] += v;
      s.total_ns += v;
    }
    if (s.requests >= want) break;
  }
  return s;
}

std::array<std::size_t, kAttrComponents> rank_components(
    const TailSlice& slice) {
  std::array<std::size_t, kAttrComponents> order{};
  for (std::size_t i = 0; i < kAttrComponents; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return slice.component_ns[a] > slice.component_ns[b];
                   });
  return order;
}

}  // namespace reqblock
