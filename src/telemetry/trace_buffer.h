// Ring-buffered, gated event collector.
//
// The buffer is the single sink every instrumented component writes into.
// Two gates keep the hot path honest:
//   * category gate — REQBLOCK_TRACE=off|cache|flash|all (or TraceConfig)
//     selects which event categories are collected. Components cache an
//     `enabled(category)` check as a nullable pointer, so a disabled run
//     costs one branch per would-be event and allocates nothing (the ring
//     storage is only reserved on the first accepted event).
//   * sampling — keep 1 of every `sample_period` offered events (applied
//     per category so a chatty flash layer cannot starve cache events).
//
// Capacity is a hard bound: once the ring is full the oldest events are
// overwritten and counted in dropped(). drain() returns the surviving
// events oldest-first.
//
// The buffer is deliberately NOT thread-safe: one simulated run owns one
// buffer (runs parallelize at the experiment level, one buffer each).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "telemetry/event.h"
#include "util/types.h"

namespace reqblock {

class SnapshotReader;
class SnapshotWriter;

/// Bitmask of collected categories. kCache/kFlash are single bits so
/// `all` is their union.
enum class TraceLevel : std::uint8_t {
  kOff = 0,
  kCache = 1,
  kFlash = 2,
  kAll = 3,
};

constexpr const char* to_string(TraceLevel l) {
  switch (l) {
    case TraceLevel::kOff: return "off";
    case TraceLevel::kCache: return "cache";
    case TraceLevel::kFlash: return "flash";
    case TraceLevel::kAll: return "all";
  }
  return "?";
}

/// Parses "off"/"cache"/"flash"/"all" (also "0"/"1"/"on"), ASCII
/// case-insensitive; unrecognized text yields `fallback`.
TraceLevel parse_trace_level(std::string_view text, TraceLevel fallback);

/// The REQBLOCK_TRACE environment variable, or `fallback` when unset or
/// malformed.
TraceLevel trace_level_from_env(TraceLevel fallback = TraceLevel::kOff);

struct TraceConfig {
  TraceLevel level = TraceLevel::kOff;
  /// Ring capacity in events (48 B each); oldest events are overwritten.
  std::size_t capacity = 1u << 20;
  /// Keep 1 of every N offered events per category (1 = keep all).
  std::uint64_t sample_period = 1;
};

class TraceBuffer {
 public:
  explicit TraceBuffer(TraceConfig config = {});

  const TraceConfig& config() const { return config_; }

  /// True when events of `cat` pass the category gate. Components call
  /// this once at wiring time and keep a null pointer when disabled.
  bool enabled(EventCategory cat) const {
    return (static_cast<std::uint8_t>(config_.level) &
            static_cast<std::uint8_t>(cat)) != 0;
  }
  bool any_enabled() const { return config_.level != TraceLevel::kOff; }

  /// Current simulated time for emitters that have no timestamp of their
  /// own (policy-internal events). The cache manager sets it per request.
  void set_time(SimTime t) { now_ = t; }
  SimTime time() const { return now_; }

  /// Offers one event. Applies the category gate, then sampling, then
  /// ring placement. Safe to call with any kind at any level.
  void emit(const TraceEvent& e);

  /// Surviving events, oldest first. The buffer keeps its contents.
  std::vector<TraceEvent> drain() const;

  /// Events accepted into the ring (post-gate, post-sampling).
  std::uint64_t emitted() const { return emitted_; }
  /// Accepted events that were later overwritten by ring wraparound.
  std::uint64_t dropped() const {
    return emitted_ > size_ ? emitted_ - size_ : 0;
  }
  /// Events skipped by the sampler (gate-passing only).
  std::uint64_t sampled_out() const { return sampled_out_; }
  /// Events currently held.
  std::size_t size() const { return size_; }
  /// Ring storage actually reserved — stays 0 until the first accepted
  /// event, so disabled runs allocate nothing.
  std::size_t allocated_capacity() const { return ring_.capacity(); }

  void clear();

  /// Checkpoint: ring contents (oldest-first), cursors, and the sampling
  /// counters. deserialize() restores into a buffer constructed with the
  /// identical TraceConfig (the config is part of the run fingerprint).
  void serialize(SnapshotWriter& w) const;
  void deserialize(SnapshotReader& r);

 private:
  TraceConfig config_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  // ring slot the next event lands in
  std::size_t size_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t sampled_out_ = 0;
  std::uint64_t offered_[2] = {0, 0};  // per-category sampling counters
  SimTime now_ = 0;
};

}  // namespace reqblock
