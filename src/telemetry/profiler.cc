#include "telemetry/profiler.h"

namespace reqblock {

ProfileReport profile_report(const Profiler& profiler) {
  ProfileReport report;
  for (std::size_t i = 0; i < Profiler::kSections; ++i) {
    const auto s = static_cast<Profiler::Section>(i);
    if (profiler.calls(s) == 0) continue;
    report.entries.push_back(
        {Profiler::name(s), profiler.calls(s), profiler.total_ns(s)});
  }
  return report;
}

}  // namespace reqblock
