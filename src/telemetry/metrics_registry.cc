#include "telemetry/metrics_registry.h"

#include <ostream>
#include <stdexcept>
#include <utility>

#include "snapshot/snapshot.h"
#include "util/strings.h"

namespace reqblock {

void MetricsRegistry::register_gauge(std::string name, Sampler fn) {
  if (name.empty()) {
    throw std::invalid_argument("metric name must not be empty");
  }
  if (name.find(',') != std::string::npos ||
      name.find('\n') != std::string::npos) {
    throw std::invalid_argument("metric name '" + name +
                                "' contains a CSV delimiter");
  }
  if (fn == nullptr) {
    throw std::invalid_argument("metric '" + name + "' needs a sampler");
  }
  const auto [it, inserted] = gauges_.emplace(std::move(name), std::move(fn));
  if (!inserted) {
    throw std::invalid_argument("metric '" + it->first +
                                "' registered twice");
  }
}

void MetricsRegistry::register_counter(std::string name,
                                       const std::uint64_t* counter) {
  if (counter == nullptr) {
    throw std::invalid_argument("metric '" + name + "' needs a counter");
  }
  register_gauge(std::move(name),
                 [counter] { return static_cast<double>(*counter); });
}

std::vector<std::string> MetricsRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(gauges_.size());
  for (const auto& [name, fn] : gauges_) out.push_back(name);
  return out;
}

std::vector<double> MetricsRegistry::sample() const {
  std::vector<double> out;
  out.reserve(gauges_.size());
  for (const auto& [name, fn] : gauges_) out.push_back(fn());
  return out;
}

std::size_t MetricsSeries::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return i;
  }
  return npos;
}

void write_series_csv(std::ostream& os, const MetricsSeries& series) {
  os << "request,sim_ns";
  for (const auto& c : series.columns) os << ',' << c;
  os << '\n';
  for (const auto& row : series.rows) {
    os << row.request << ',' << row.sim_ns;
    for (const double v : row.values) os << ',' << format_double(v, 6);
    os << '\n';
  }
}

void MetricsSeries::serialize(SnapshotWriter& w) const {
  w.tag("metrics_series");
  w.u64(columns.size());
  for (const std::string& c : columns) w.str(c);
  w.u64(rows.size());
  for (const Row& row : rows) {
    w.u64(row.request);
    w.i64(row.sim_ns);
    w.u64(row.values.size());
    for (const double v : row.values) w.f64(v);
  }
}

void MetricsSeries::deserialize(SnapshotReader& r) {
  r.tag("metrics_series");
  columns.clear();
  columns.resize(r.count(4));
  for (std::string& c : columns) c = r.str();
  rows.clear();
  rows.resize(r.count(24));
  for (Row& row : rows) {
    row.request = r.u64();
    row.sim_ns = r.i64();
    const std::uint64_t n = r.u64();
    if (n != columns.size()) {
      throw SnapshotError("metrics-series row width disagrees with columns");
    }
    row.values.resize(n);
    for (double& v : row.values) v = r.f64();
  }
}

}  // namespace reqblock
