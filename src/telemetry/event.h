// Structured trace events.
//
// One TraceEvent records one thing that happened inside a simulated run —
// a cache lookup outcome, a Req-block structural move, a flash operation —
// stamped with simulated time. Events are plain 48-byte PODs so the ring
// buffer can hold millions without allocation churn; everything that is
// not a number (names, categories, track labels) is derived from the kind
// at export time, not stored per event.
//
// Field meaning by kind (see exporters.cc for the export mapping):
//   cache events   track = list track (0 manager, 1 IRL, 2 SRL, 3 DRL)
//   flash events   track = global chip index, channel = channel index
//   arg            kCacheHit/kCacheMiss: 1 for writes, 0 for reads
//                  kCacheEvict: victim pages, kCacheFlush: dirty pages
//                  kReqBlock*: pages in the affected block/batch
//                  kGcEnd: pages moved, kBlockErase: block index
//                  kPowerLoss: dirty pages lost
//                  kQueueEnqueue: queue slots in use after admission
//                  (dur = queue wait), kQueueTimeout: attempt number — one
//                  event per failed deadline check (dur = overshoot)
//                  kBgFlush: dirty pages flushed by the background batch
//                  kThrottle: arg unused (dur = injected delay)
//                  kProgramRetry: attempt number, kEraseFault/kBlockRetire:
//                  block index
//                  kAttrSpan: track = AttrComponent index, arg = measured
//                  request index, dur = component's share of the latency
//                  kReadDisturbMigrate/kRetentionScrub: pages relocated
//                  (lpn = block index), kWearThreshold: block index,
//                  kDegradedModeEnter/Exit: triggering plane index
//                  kEccCorrect: page's corrected-error count after this
//                  episode, kReadRetryStep: retry step number (dur = that
//                  step's re-sense time), kParityRebuild: peer pages read
//                  (= stripe size - 1), kUncorrectable: page's error count
//                  at loss, kPatrolScrub: pages relocated (lpn = block)
#pragma once

#include <cstdint>

#include "util/types.h"

namespace reqblock {

enum class EventKind : std::uint8_t {
  // Cache-manager events.
  kCacheHit = 0,
  kCacheMiss,
  kCacheInsert,
  kCacheEvict,
  kCacheFlush,
  kCacheBypass,
  // Req-block structural events (paper §3: Figs. 5-6).
  kReqBlockSplit,
  kReqBlockPromote,
  kReqBlockMerge,
  kReqBlockBatchEvict,
  // Injected power loss: the volatile write buffer is dropped.
  kPowerLoss,
  // Overload protection (host queue, background flush, GC throttle).
  kQueueEnqueue,
  kQueueTimeout,
  kBgFlush,
  kThrottle,
  // Flash-device events.
  kPageRead,
  kPageProgram,
  kBlockErase,
  kGcStart,
  kGcEnd,
  kGcMove,
  // Injected device faults (fault subsystem).
  kProgramRetry,
  kReadRetry,
  kEraseFault,
  kBlockRetire,
  // Latency attribution: one span per nonzero component of a served
  // request's breakdown, tiling [host arrival, completion].
  kAttrSpan,
  // Device aging (>= kPageRead, so they categorize as flash events).
  kReadDisturbMigrate,  // block refreshed after crossing the read limit
  kRetentionScrub,      // block relocated after its data aged out
  kWearThreshold,       // a block's P/E count crossed the rated cycles
  kDegradedModeEnter,   // device entered end-of-life read-mostly mode
  kDegradedModeExit,    // device recovered enough headroom to exit
  // Data integrity (>= kPageRead, so they categorize as flash events).
  kEccCorrect,          // raw bit errors fixed by the fast ECC decode
  kReadRetryStep,       // one escalated re-sense attempt
  kParityRebuild,       // page reconstructed from its parity stripe
  kUncorrectable,       // recovery exhausted; the page's data is lost
  kPatrolScrub,         // scrubber refreshed a block nearing the ECC limit
};

enum class EventCategory : std::uint8_t { kCache = 1, kFlash = 2 };

constexpr EventCategory category_of(EventKind k) {
  // kAttrSpan describes the host-visible request, so it gates and samples
  // with the cache category despite sitting after the flash kinds.
  if (k == EventKind::kAttrSpan) return EventCategory::kCache;
  return k >= EventKind::kPageRead ? EventCategory::kFlash
                                   : EventCategory::kCache;
}

constexpr const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kCacheHit: return "cache_hit";
    case EventKind::kCacheMiss: return "cache_miss";
    case EventKind::kCacheInsert: return "cache_insert";
    case EventKind::kCacheEvict: return "cache_evict";
    case EventKind::kCacheFlush: return "cache_flush";
    case EventKind::kCacheBypass: return "cache_bypass";
    case EventKind::kReqBlockSplit: return "reqblock_split";
    case EventKind::kReqBlockPromote: return "reqblock_promote";
    case EventKind::kReqBlockMerge: return "reqblock_merge";
    case EventKind::kReqBlockBatchEvict: return "reqblock_batch_evict";
    case EventKind::kPowerLoss: return "power_loss";
    case EventKind::kQueueEnqueue: return "queue_enqueue";
    case EventKind::kQueueTimeout: return "queue_timeout";
    case EventKind::kBgFlush: return "bg_flush";
    case EventKind::kThrottle: return "throttle";
    case EventKind::kPageRead: return "page_read";
    case EventKind::kPageProgram: return "page_program";
    case EventKind::kBlockErase: return "block_erase";
    case EventKind::kGcStart: return "gc_start";
    case EventKind::kGcEnd: return "gc_end";
    case EventKind::kGcMove: return "gc_move";
    case EventKind::kProgramRetry: return "program_retry";
    case EventKind::kReadRetry: return "read_retry";
    case EventKind::kEraseFault: return "erase_fault";
    case EventKind::kBlockRetire: return "block_retire";
    case EventKind::kAttrSpan: return "attr_span";
    case EventKind::kReadDisturbMigrate: return "read_disturb_migrate";
    case EventKind::kRetentionScrub: return "retention_scrub";
    case EventKind::kWearThreshold: return "wear_threshold";
    case EventKind::kDegradedModeEnter: return "degraded_mode_enter";
    case EventKind::kDegradedModeExit: return "degraded_mode_exit";
    case EventKind::kEccCorrect: return "ecc_correct";
    case EventKind::kReadRetryStep: return "read_retry_step";
    case EventKind::kParityRebuild: return "parity_rebuild";
    case EventKind::kUncorrectable: return "uncorrectable";
    case EventKind::kPatrolScrub: return "patrol_scrub";
  }
  return "?";
}

/// Cache-event track ids (Chrome export: one lane per list). kTrackHost
/// carries the host-side admission events (queue enqueue/timeout,
/// throttle) so they get their own lane instead of piling onto the
/// manager's.
enum CacheTrack : std::uint16_t {
  kTrackManager = 0,
  kTrackIrl = 1,
  kTrackSrl = 2,
  kTrackDrl = 3,
  kTrackHost = 4,
};

struct TraceEvent {
  SimTime at = 0;          // simulated start time, ns
  SimTime dur = 0;         // simulated duration, ns (0 = instant)
  Lpn lpn = 0;             // first logical page involved (0 if n/a)
  std::uint64_t arg = 0;   // kind-specific payload, see header comment
  EventKind kind = EventKind::kCacheHit;
  std::uint16_t track = 0;    // cache: CacheTrack; flash: global chip index
  /// Flash events: channel index. Host-queue events (kQueueEnqueue,
  /// kQueueTimeout, kThrottle): emitting tenant id (0 when single-tenant).
  std::uint16_t channel = 0;
};

}  // namespace reqblock
