// Event export: JSONL for scripts, Chrome trace_event JSON for humans.
//
// The Chrome export follows the trace_event format accepted by
// chrome://tracing and Perfetto: a {"traceEvents":[...]} object whose
// slices use microsecond timestamps. Tracks are laid out as three
// processes — "cache" (one thread per Req-block list plus the manager),
// "flash chips" (one thread per chip), "flash channels" (one thread per
// channel; page transfers are mirrored there so per-channel load is
// visible) — with thread_name metadata emitted only for tracks that
// actually carry events.
#pragma once

#include <iosfwd>
#include <span>

#include "telemetry/event.h"

namespace reqblock {

/// One JSON object per line:
/// {"ts":<ns>,"dur":<ns>,"kind":"...","cat":"cache|flash","track":N,
///  "channel":N,"lpn":N,"arg":N}
void write_events_jsonl(std::ostream& os, std::span<const TraceEvent> events);

/// Chrome trace_event JSON ready for chrome://tracing / Perfetto.
void write_chrome_trace(std::ostream& os, std::span<const TraceEvent> events);

}  // namespace reqblock
