#include "telemetry/telemetry.h"

#include <string>

#include "util/args.h"

namespace reqblock {

void TelemetryOptions::apply_cli(const ArgParser& args,
                                 std::string_view prefix) {
  const auto flag = [&](const char* name) {
    return std::string(prefix) + name;
  };
  if (const auto v = args.get(flag("trace"))) {
    trace.level = parse_trace_level(*v, trace.level);
  }
  trace.capacity = args.get_u64_or(flag("trace-buffer"), trace.capacity);
  trace.sample_period =
      args.get_u64_or(flag("trace-sample"), trace.sample_period);
  snapshot_every_requests =
      args.get_u64_or(flag("snapshot-every"), snapshot_every_requests);
  if (const auto v = args.get(flag("snapshot-every-ms"))) {
    snapshot_every_ns = static_cast<SimTime>(
        args.get_double_or(flag("snapshot-every-ms"), 0.0) * kMillisecond);
  }
  if (args.has(flag("profile"))) profile = true;
  if (args.has(flag("attribution")) || args.has("attribution")) {
    attribution = true;
  }
}

}  // namespace reqblock
