#include "telemetry/telemetry.h"

#include "util/args.h"

namespace reqblock {

void TelemetryOptions::apply_cli(const ArgParser& args) {
  if (const auto v = args.get("trace")) {
    trace.level = parse_trace_level(*v, trace.level);
  }
  trace.capacity = args.get_u64_or("trace-buffer", trace.capacity);
  trace.sample_period = args.get_u64_or("trace-sample", trace.sample_period);
  snapshot_every_requests =
      args.get_u64_or("snapshot-every", snapshot_every_requests);
  if (const auto v = args.get("snapshot-every-ms")) {
    snapshot_every_ns = static_cast<SimTime>(
        args.get_double_or("snapshot-every-ms", 0.0) * kMillisecond);
  }
  if (args.has("profile")) profile = true;
  if (args.has("attribution")) attribution = true;
}

}  // namespace reqblock
