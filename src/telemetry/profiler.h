// Wall-clock self-profiling of the simulator hot loop.
//
// The sections are fixed at compile time (an enum, not strings) so that a
// ScopedTimer costs two steady_clock reads and one array add — cheap
// enough to leave compiled in and gate at run time with a single branch.
// When disabled (the default), ScopedTimer never touches the clock.
//
// The output is a per-run self-profile: calls, total wall time, and share
// of the profiled total per section, so "where does simulation time go"
// has an answer before the next perf PR.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace reqblock {

class Profiler {
 public:
  enum class Section : std::uint8_t {
    kCacheServe = 0,  // CacheManager::serve, whole request
    kEvictFlush,      // victim selection + flush dispatch
    kFtlRead,         // Ftl::read_page
    kFtlProgram,      // Ftl::program_to_plane (host + padding writes)
    kGc,              // Ftl::maybe_collect when it actually collects
    kSnapshot,        // metrics-registry sampling
    kCount,
  };
  static constexpr std::size_t kSections =
      static_cast<std::size_t>(Section::kCount);

  static constexpr const char* name(Section s) {
    switch (s) {
      case Section::kCacheServe: return "cache_serve";
      case Section::kEvictFlush: return "evict_flush";
      case Section::kFtlRead: return "ftl_read";
      case Section::kFtlProgram: return "ftl_program";
      case Section::kGc: return "gc";
      case Section::kSnapshot: return "snapshot";
      case Section::kCount: break;
    }
    return "?";
  }

  explicit Profiler(bool enabled = false) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  void add(Section s, std::uint64_t ns) {
    auto& b = buckets_[static_cast<std::size_t>(s)];
    ++b.calls;
    b.total_ns += ns;
  }

  std::uint64_t calls(Section s) const {
    return buckets_[static_cast<std::size_t>(s)].calls;
  }
  std::uint64_t total_ns(Section s) const {
    return buckets_[static_cast<std::size_t>(s)].total_ns;
  }

  void clear() { buckets_.fill({}); }

 private:
  struct Bucket {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
  };
  std::array<Bucket, kSections> buckets_{};
  bool enabled_ = false;
};

/// Times a scope into `profiler` (null or disabled => no clock reads).
/// Sections nest: kCacheServe includes kEvictFlush includes kFtlProgram,
/// so shares are of the *outermost* section, not additive across rows.
class ScopedTimer {
 public:
  ScopedTimer(Profiler* profiler, Profiler::Section section)
      : profiler_(profiler != nullptr && profiler->enabled() ? profiler
                                                             : nullptr),
        section_(section) {
    // REQB_LINT_ALLOW(no-wallclock): profiler timings are diagnostics
    // only — excluded from snapshots, CSVs and every cmp-tested artifact.
    if (profiler_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (profiler_ == nullptr) return;
    // REQB_LINT_ALLOW(no-wallclock): see constructor — diagnostics only.
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    profiler_->add(section_, static_cast<std::uint64_t>(ns));
  }

 private:
  Profiler* profiler_;
  Profiler::Section section_;
  // REQB_LINT_ALLOW(no-wallclock): diagnostics-only timer state.
  std::chrono::steady_clock::time_point start_;
};

/// Frozen per-run profile carried in RunResult.
struct ProfileReport {
  struct Entry {
    std::string section;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
  };
  std::vector<Entry> entries;  // section order; zero-call sections omitted

  bool empty() const { return entries.empty(); }
};

/// Snapshot of every section with at least one call.
ProfileReport profile_report(const Profiler& profiler);

}  // namespace reqblock
