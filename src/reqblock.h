// Umbrella header: the full public API of the reqblock library.
//
//   #include <reqblock.h>     (installed)
//   #include "reqblock.h"     (in-tree)
//
// Layering (each header can also be included individually):
//   util/ -> telemetry/ -> trace/ -> ssd/ -> cache/ + core/ -> sim/
#pragma once

// Utilities
#include "util/args.h"
#include "util/check.h"
#include "util/histogram.h"
#include "util/intrusive_list.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/types.h"
#include "util/zipf.h"

// Telemetry: event tracing, metric snapshots, self-profiling
#include "telemetry/event.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/profiler.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_buffer.h"

// Workloads
#include "trace/io_request.h"
#include "trace/micro_workloads.h"
#include "trace/msr_trace.h"
#include "trace/profiles.h"
#include "trace/spc_trace.h"
#include "trace/synthetic.h"
#include "trace/trace_stats.h"
#include "trace/vector_source.h"

// SSD device model
#include "ssd/address.h"
#include "ssd/config.h"
#include "ssd/flash_array.h"
#include "ssd/ftl.h"
#include "ssd/timeline.h"

// Cache framework and policies
#include "cache/bplru.h"
#include "cache/cache_manager.h"
#include "cache/cflru.h"
#include "cache/fab.h"
#include "cache/fifo.h"
#include "cache/lfu.h"
#include "cache/lru.h"
#include "cache/policy_factory.h"
#include "cache/vbbms.h"
#include "cache/write_buffer.h"

// The paper's contribution
#include "core/freq.h"
#include "core/req_block.h"
#include "core/req_block_policy.h"

// Simulation harness
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/simulator.h"
