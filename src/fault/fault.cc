#include "fault/fault.h"

#include <stdexcept>
#include <string>

#include "util/args.h"

namespace reqblock {

namespace {

void check_prob(double p, const char* name) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument(std::string(name) +
                                " must be in [0, 1), got " +
                                std::to_string(p));
  }
}

}  // namespace

void FaultPlan::validate() const {
  check_prob(program_fail_prob, "program_fail_prob");
  check_prob(read_fail_prob, "read_fail_prob");
  check_prob(erase_fail_prob, "erase_fail_prob");
  if (max_program_retries == 0) {
    throw std::invalid_argument("max_program_retries must be >= 1");
  }
}

void FaultPlan::apply_cli(const ArgParser& args) {
  seed = args.get_u64_or("fault-seed", seed);
  program_fail_prob =
      args.get_double_or("fault-program-fail", program_fail_prob);
  read_fail_prob = args.get_double_or("fault-read-fail", read_fail_prob);
  erase_fail_prob = args.get_double_or("fault-erase-fail", erase_fail_prob);
  max_program_retries = static_cast<std::uint32_t>(
      args.get_u64_or("fault-retries", max_program_retries));
  spare_blocks_per_plane = static_cast<std::uint32_t>(
      args.get_u64_or("fault-spares", spare_blocks_per_plane));
  power_loss_every_requests =
      args.get_u64_or("fault-power-loss-every", power_loss_every_requests);
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), rng_(plan.seed) {
  plan_.validate();
  metrics_.enabled = plan_.enabled();
}

bool FaultInjector::inject_program_fault() {
  if (plan_.program_fail_prob <= 0.0) return false;
  if (!rng_.next_bool(plan_.program_fail_prob)) return false;
  ++metrics_.program_faults;
  return true;
}

bool FaultInjector::inject_read_fault() {
  if (plan_.read_fail_prob <= 0.0) return false;
  if (!rng_.next_bool(plan_.read_fail_prob)) return false;
  ++metrics_.read_faults;
  return true;
}

bool FaultInjector::inject_erase_fault() {
  if (plan_.erase_fail_prob <= 0.0) return false;
  if (!rng_.next_bool(plan_.erase_fail_prob)) return false;
  ++metrics_.erase_faults;
  return true;
}

SimTime FaultInjector::program_backoff(std::uint32_t chip) {
  if (chip_fail_streak_.size() <= chip) chip_fail_streak_.resize(chip + 1, 0);
  const std::uint32_t streak = chip_fail_streak_[chip]++;
  return plan_.retry_backoff << (streak < 6 ? streak : 6);
}

void FaultInjector::note_program_success(std::uint32_t chip) {
  if (chip < chip_fail_streak_.size()) chip_fail_streak_[chip] = 0;
}

void FaultInjector::reset_metrics() {
  const bool enabled = metrics_.enabled;
  // degraded_planes describes current device state (like cache contents,
  // it carries across the warmup boundary); the event counters reset.
  const std::uint64_t degraded = metrics_.degraded_planes;
  metrics_ = FaultMetrics{};
  metrics_.enabled = enabled;
  metrics_.degraded_planes = degraded;
}

}  // namespace reqblock
