#include "fault/fault.h"

#include <stdexcept>
#include <string>

#include "snapshot/snapshot.h"
#include "util/args.h"

namespace reqblock {

namespace {

void check_prob(double p, const char* name) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument(std::string(name) +
                                " must be in [0, 1), got " +
                                std::to_string(p));
  }
}

}  // namespace

void FaultPlan::validate() const {
  check_prob(program_fail_prob, "program_fail_prob");
  check_prob(read_fail_prob, "read_fail_prob");
  check_prob(erase_fail_prob, "erase_fail_prob");
  if (max_program_retries == 0) {
    throw std::invalid_argument("max_program_retries must be >= 1");
  }
  aging.validate();
  integrity.validate();
}

void FaultPlan::apply_cli(const ArgParser& args) {
  seed = args.get_u64_or("fault-seed", seed);
  program_fail_prob =
      args.get_double_or("fault-program-fail", program_fail_prob);
  read_fail_prob = args.get_double_or("fault-read-fail", read_fail_prob);
  erase_fail_prob = args.get_double_or("fault-erase-fail", erase_fail_prob);
  max_program_retries = static_cast<std::uint32_t>(
      args.get_u64_or("fault-retries", max_program_retries));
  spare_blocks_per_plane = static_cast<std::uint32_t>(
      args.get_u64_or("fault-spares", spare_blocks_per_plane));
  power_loss_every_requests =
      args.get_u64_or("fault-power-loss-every", power_loss_every_requests);
  aging.apply_cli(args);
  integrity.apply_cli(args);
}

namespace {

/// Combined base + aging probability, held below 1 so every bounded
/// retry/retire loop still terminates on a success branch.
double combined_prob(double base, double extra) {
  const double p = base + extra;
  return p < 0.999 ? p : 0.999;
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan),
      aging_(plan.aging),
      integrity_(plan.integrity),
      rng_(plan.seed) {
  plan_.validate();
  metrics_.enabled = plan_.enabled();
}

IntegrityModel::Outcome FaultInjector::integrity_read_outcome(
    std::uint32_t pe_cycles, std::uint32_t reads, SimTime age) {
  const double p = integrity_.detect_prob(pe_cycles, reads, age);
  const IntegrityModel::Outcome out =
      integrity_.resolve(rng_.next_double(), p);
  IntegrityMetrics& m = metrics_.integrity;
  switch (out.tier) {
    case IntegrityModel::Tier::kClean:
      break;
    case IntegrityModel::Tier::kEccCorrected:
      ++m.ecc_attempts;
      ++m.ecc_corrected;
      break;
    case IntegrityModel::Tier::kRetryCorrected:
      ++m.ecc_attempts;
      ++m.ecc_escalated;
      ++m.retry_corrected;
      m.retry_steps_total += out.retry_steps;
      break;
    case IntegrityModel::Tier::kParity:
      ++m.ecc_attempts;
      ++m.ecc_escalated;
      ++m.retry_escalated;
      m.retry_steps_total += out.retry_steps;
      break;
  }
  return out;
}

bool FaultInjector::inject_program_fault(double extra) {
  const double p = combined_prob(plan_.program_fail_prob, extra);
  if (p <= 0.0) return false;
  if (!rng_.next_bool(p)) return false;
  ++metrics_.program_faults;
  return true;
}

bool FaultInjector::inject_read_fault(double extra) {
  const double p = combined_prob(plan_.read_fail_prob, extra);
  if (p <= 0.0) return false;
  if (!rng_.next_bool(p)) return false;
  ++metrics_.read_faults;
  return true;
}

bool FaultInjector::inject_erase_fault(double extra) {
  const double p = combined_prob(plan_.erase_fail_prob, extra);
  if (p <= 0.0) return false;
  if (!rng_.next_bool(p)) return false;
  ++metrics_.erase_faults;
  return true;
}

SimTime FaultInjector::program_backoff(std::uint32_t chip) {
  if (chip_fail_streak_.size() <= chip) chip_fail_streak_.resize(chip + 1, 0);
  const std::uint32_t streak = chip_fail_streak_[chip]++;
  return plan_.retry_backoff << (streak < 6 ? streak : 6);
}

void FaultInjector::note_program_success(std::uint32_t chip) {
  if (chip < chip_fail_streak_.size()) chip_fail_streak_[chip] = 0;
}

void FaultInjector::reset_metrics() {
  const bool enabled = metrics_.enabled;
  // degraded_planes describes current device state (like cache contents,
  // it carries across the warmup boundary); the event counters reset.
  const std::uint64_t degraded = metrics_.degraded_planes;
  metrics_ = FaultMetrics{};
  metrics_.enabled = enabled;
  metrics_.degraded_planes = degraded;
}

void FaultMetrics::serialize(SnapshotWriter& w) const {
  w.tag("fault_metrics");
  w.b(enabled);
  w.u64(program_faults);
  w.u64(read_faults);
  w.u64(erase_faults);
  w.u64(blocks_retired);
  w.u64(retires_refused);
  w.u64(bad_block_marks);
  w.u64(degraded_planes);
  w.u64(power_loss_events);
  w.u64(lost_dirty_pages);
  w.i64(recovery_time_total);
  w.u64(read_disturb_migrations);
  w.u64(read_disturb_pages_moved);
  w.u64(retention_scrubs);
  w.u64(retention_pages_moved);
  w.u64(wear_threshold_crossings);
  w.u64(degraded_mode_enters);
  w.u64(degraded_mode_exits);
  w.u64(degraded_write_sheds);
  integrity.serialize(w);
}

void FaultMetrics::deserialize(SnapshotReader& r) {
  r.tag("fault_metrics");
  enabled = r.b();
  program_faults = r.u64();
  read_faults = r.u64();
  erase_faults = r.u64();
  blocks_retired = r.u64();
  retires_refused = r.u64();
  bad_block_marks = r.u64();
  degraded_planes = r.u64();
  power_loss_events = r.u64();
  lost_dirty_pages = r.u64();
  recovery_time_total = r.i64();
  read_disturb_migrations = r.u64();
  read_disturb_pages_moved = r.u64();
  retention_scrubs = r.u64();
  retention_pages_moved = r.u64();
  wear_threshold_crossings = r.u64();
  degraded_mode_enters = r.u64();
  degraded_mode_exits = r.u64();
  degraded_write_sheds = r.u64();
  integrity.deserialize(r);
}

void FaultInjector::serialize(SnapshotWriter& w) const {
  w.tag("fault_injector");
  reqblock::serialize(w, rng_);
  w.vec_u32(chip_fail_streak_);
  metrics_.serialize(w);
}

void FaultInjector::deserialize(SnapshotReader& r) {
  r.tag("fault_injector");
  reqblock::deserialize(r, rng_);
  chip_fail_streak_ = r.vec_u32();
  metrics_.deserialize(r);
}

}  // namespace reqblock
