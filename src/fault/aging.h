// Device aging: lifetime fault ramps over per-block wear state.
//
// An AgingPlan is the seeded-free, immutable description of how the
// device degrades over its life: an endurance curve that scales the
// injector's program/erase failure probabilities with per-block P/E
// cycles, a read-disturb ramp (re-sense faults plus forced migration
// once a block's read count since its last program crosses a limit), a
// retention ramp (read failures plus on-read relocation as data ages),
// and the end-of-life floors behind degraded read-mostly mode. The
// AgingModel precomputes the ramp reciprocals and answers pure
// probability/threshold queries; all randomness still flows through the
// FaultInjector's single xoshiro stream, so aged runs remain
// byte-reproducible at any experiment thread count.
//
// Per-block wear state (P/E counters, read counters since last program,
// data-age stamps) lives in FlashArray and is serialized into snapshots
// (format v5); this header holds only the immutable plan and the pure
// ramp math.
#pragma once

#include <cstdint>

#include "util/types.h"

namespace reqblock {

class ArgParser;

/// Immutable description of how the device ages. Folded into the config
/// fingerprint (when enabled) so a checkpoint taken under one aging
/// model cannot restore under another.
struct AgingPlan {
  // --- Endurance (P/E wear) --------------------------------------------
  /// Rated P/E cycles per block; the wear ramps reach their max extra
  /// probability here. 0 disables the endurance ramp.
  std::uint32_t rated_pe_cycles = 0;
  /// Extra program-failure probability at rated wear (quadratic ramp:
  /// extra = max * (pe / rated)^2, uncapped past rated).
  double wear_program_fail_max = 0.0;
  /// Extra erase-failure probability at rated wear (same ramp shape).
  double wear_erase_fail_max = 0.0;
  /// Pre-age: every block starts the run with this many P/E cycles
  /// already consumed, so a soak can open mid-life or near end-of-life.
  std::uint32_t initial_pe_cycles = 0;

  // --- Read disturb ----------------------------------------------------
  /// Reads a block tolerates since its last program before the FTL
  /// force-migrates its valid pages. 0 disables the disturb ramp.
  std::uint32_t read_disturb_limit = 0;
  /// Extra read-failure (re-sense) probability as the read count
  /// approaches the limit (linear ramp, saturates at the limit).
  double read_disturb_fail_max = 0.0;

  // --- Retention -------------------------------------------------------
  /// Data age after which a read triggers relocation (retention scrub).
  /// 0 disables the retention ramp.
  SimTime retention_age_limit = 0;
  /// Extra read-failure probability as data age approaches the limit
  /// (linear ramp, saturates at the limit).
  double retention_fail_max = 0.0;

  // --- End of life -----------------------------------------------------
  /// Reclaimable-block floor per plane below which the device enters
  /// degraded read-mostly mode. 0 = auto (GC threshold + 3, one block of
  /// slack above the allocator's hard capacity reserve).
  std::uint32_t eol_free_block_floor = 0;
  /// Extra reclaimable blocks (above the floor) every plane must regain
  /// before degraded mode exits; hysteresis against enter/exit flapping.
  std::uint32_t eol_exit_margin = 1;
  /// Device-wide spare-block floor: once the pool drops below this the
  /// device stays read-mostly for the rest of the run (spares never
  /// regrow). 0 disables the spare trigger.
  std::uint32_t eol_spare_floor = 0;

  /// True when any aging mechanism can fire. A disabled plan is never
  /// consulted: fault-free and aging-free hot paths stay bit-identical
  /// to builds without this subsystem.
  bool enabled() const {
    return rated_pe_cycles > 0 || read_disturb_limit > 0 ||
           retention_age_limit > 0 || eol_spare_floor > 0 ||
           initial_pe_cycles > 0;
  }

  /// Throws std::invalid_argument on out-of-range ramp maxima.
  void validate() const;

  /// Reads the standard CLI flags: --aging-rated-pe,
  /// --aging-wear-program-max, --aging-wear-erase-max, --aging-initial-pe,
  /// --aging-read-disturb-limit, --aging-read-disturb-max,
  /// --aging-retention-limit-ms, --aging-retention-max, --aging-eol-floor,
  /// --aging-eol-margin, --aging-eol-spare-floor. Flags the parser does
  /// not carry keep their current value.
  void apply_cli(const ArgParser& args);
};

/// Pure ramp math over an AgingPlan: maps per-block wear state to the
/// extra failure probability the injector folds into its single draw,
/// and answers the migration/relocation threshold predicates. Stateless
/// apart from precomputed reciprocals — nothing here touches an RNG or
/// needs serialization.
class AgingModel {
 public:
  AgingModel() = default;
  explicit AgingModel(const AgingPlan& plan);

  const AgingPlan& plan() const { return plan_; }
  bool enabled() const { return plan_.enabled(); }

  /// Extra program-failure probability for a block at `pe_cycles` wear.
  double program_fail_extra(std::uint32_t pe_cycles) const {
    if (plan_.wear_program_fail_max <= 0.0) return 0.0;
    return plan_.wear_program_fail_max * wear_square(pe_cycles);
  }

  /// Extra erase-failure probability for a block at `pe_cycles` wear.
  double erase_fail_extra(std::uint32_t pe_cycles) const {
    if (plan_.wear_erase_fail_max <= 0.0) return 0.0;
    return plan_.wear_erase_fail_max * wear_square(pe_cycles);
  }

  /// Extra read-failure (re-sense) probability for a page in a block
  /// with `reads` reads since its last program and data of age `age`.
  /// Disturb and retention ramps add (each saturates at its limit).
  double read_fail_extra(std::uint32_t reads, SimTime age) const {
    double extra = 0.0;
    if (plan_.read_disturb_fail_max > 0.0 && plan_.read_disturb_limit > 0) {
      double f = static_cast<double>(reads) * inv_disturb_;
      extra += plan_.read_disturb_fail_max * (f < 1.0 ? f : 1.0);
    }
    if (plan_.retention_fail_max > 0.0 && plan_.retention_age_limit > 0 &&
        age > 0) {
      double f = static_cast<double>(age) * inv_retention_;
      extra += plan_.retention_fail_max * (f < 1.0 ? f : 1.0);
    }
    return extra;
  }

  /// True when a block with `reads` reads since its last program must
  /// have its valid pages force-migrated (read-disturb refresh).
  bool read_disturb_migration_due(std::uint32_t reads) const {
    return plan_.read_disturb_limit > 0 && reads >= plan_.read_disturb_limit;
  }

  /// True when data of age `age` must be relocated on read (retention
  /// scrub).
  bool retention_scrub_due(SimTime age) const {
    return plan_.retention_age_limit > 0 && age >= plan_.retention_age_limit;
  }

 private:
  /// (pe / rated)^2, the endurance curve shape; 0 when the ramp is off.
  double wear_square(std::uint32_t pe_cycles) const {
    const double f = static_cast<double>(pe_cycles) * inv_rated_;
    return f * f;
  }

  AgingPlan plan_;
  double inv_rated_ = 0.0;
  double inv_disturb_ = 0.0;
  double inv_retention_ = 0.0;
};

}  // namespace reqblock
