#include "fault/aging.h"

#include <stdexcept>
#include <string>

#include "util/args.h"

namespace reqblock {

namespace {

void check_ramp_max(double p, const char* name) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument(std::string(name) +
                                " must be in [0, 1), got " +
                                std::to_string(p));
  }
}

}  // namespace

void AgingPlan::validate() const {
  check_ramp_max(wear_program_fail_max, "wear_program_fail_max");
  check_ramp_max(wear_erase_fail_max, "wear_erase_fail_max");
  check_ramp_max(read_disturb_fail_max, "read_disturb_fail_max");
  check_ramp_max(retention_fail_max, "retention_fail_max");
  if (retention_age_limit < 0) {
    throw std::invalid_argument("retention_age_limit must be >= 0");
  }
  if ((wear_program_fail_max > 0.0 || wear_erase_fail_max > 0.0) &&
      rated_pe_cycles == 0) {
    throw std::invalid_argument(
        "wear ramps need rated_pe_cycles > 0 to anchor the curve");
  }
  if (read_disturb_fail_max > 0.0 && read_disturb_limit == 0) {
    throw std::invalid_argument(
        "read_disturb_fail_max needs read_disturb_limit > 0");
  }
  if (retention_fail_max > 0.0 && retention_age_limit == 0) {
    throw std::invalid_argument(
        "retention_fail_max needs retention_age_limit > 0");
  }
}

void AgingPlan::apply_cli(const ArgParser& args) {
  rated_pe_cycles = static_cast<std::uint32_t>(
      args.get_u64_or("aging-rated-pe", rated_pe_cycles));
  wear_program_fail_max =
      args.get_double_or("aging-wear-program-max", wear_program_fail_max);
  wear_erase_fail_max =
      args.get_double_or("aging-wear-erase-max", wear_erase_fail_max);
  initial_pe_cycles = static_cast<std::uint32_t>(
      args.get_u64_or("aging-initial-pe", initial_pe_cycles));
  read_disturb_limit = static_cast<std::uint32_t>(
      args.get_u64_or("aging-read-disturb-limit", read_disturb_limit));
  read_disturb_fail_max =
      args.get_double_or("aging-read-disturb-max", read_disturb_fail_max);
  if (args.has("aging-retention-limit-ms")) {
    retention_age_limit = static_cast<SimTime>(args.get_u64_strict(
                              "aging-retention-limit-ms", 0)) *
                          kMillisecond;
  }
  retention_fail_max =
      args.get_double_or("aging-retention-max", retention_fail_max);
  eol_free_block_floor = static_cast<std::uint32_t>(
      args.get_u64_or("aging-eol-floor", eol_free_block_floor));
  eol_exit_margin = static_cast<std::uint32_t>(
      args.get_u64_or("aging-eol-margin", eol_exit_margin));
  eol_spare_floor = static_cast<std::uint32_t>(
      args.get_u64_or("aging-eol-spare-floor", eol_spare_floor));
}

AgingModel::AgingModel(const AgingPlan& plan) : plan_(plan) {
  plan_.validate();
  if (plan_.rated_pe_cycles > 0) {
    inv_rated_ = 1.0 / static_cast<double>(plan_.rated_pe_cycles);
  }
  if (plan_.read_disturb_limit > 0) {
    inv_disturb_ = 1.0 / static_cast<double>(plan_.read_disturb_limit);
  }
  if (plan_.retention_age_limit > 0) {
    inv_retention_ = 1.0 / static_cast<double>(plan_.retention_age_limit);
  }
}

}  // namespace reqblock
