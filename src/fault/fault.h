// Deterministic fault injection: plan + injector.
//
// A FaultPlan is the seeded, immutable description of every fault a run
// may experience: NAND program/read/erase failure probabilities, the
// bounded program-retry budget with per-chip backoff, the spare-block
// budget behind bad-block retirement, and the power-loss schedule. A
// FaultInjector is the per-run mutable state: one RNG stream (consulted in
// device-operation order, which is deterministic because each simulated
// run is single-threaded), per-chip consecutive-failure counters, and the
// fault accounting the report layer exposes.
//
// Determinism contract: with the same plan, a run produces bit-identical
// results at any experiment thread count (runs own private injectors);
// with every probability at zero and no power loss scheduled, the
// instrumented hot paths never consult the injector and behave exactly
// like a build without this subsystem.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace reqblock {

class ArgParser;
class SnapshotReader;
class SnapshotWriter;

/// Seeded, immutable description of the faults a run may inject.
struct FaultPlan {
  std::uint64_t seed = 1;

  // --- NAND operation failure probabilities (per attempt) -------------
  double program_fail_prob = 0.0;
  double read_fail_prob = 0.0;
  double erase_fail_prob = 0.0;

  // --- Program retry ---------------------------------------------------
  /// Failed program attempts tolerated per page write before the block is
  /// declared bad; the attempt after the last retry always succeeds (on a
  /// fresh block), bounding the retry loop.
  std::uint32_t max_program_retries = 3;
  /// Base chip backoff after a failed program; doubles per consecutive
  /// failure on the same chip (capped), resets on success.
  SimTime retry_backoff = 50 * kMicrosecond;

  // --- Bad-block retirement --------------------------------------------
  /// Blocks reserved per plane at wiring time. Retiring a block consumes
  /// one spare; when the pool is empty the plane runs degraded.
  std::uint32_t spare_blocks_per_plane = 8;
  /// Extra chip time per program on a degraded plane (read-retry / soft
  /// ECC overhead of running past the spare budget).
  SimTime degraded_program_penalty = 200 * kMicrosecond;

  // --- Power loss -------------------------------------------------------
  /// Drop the volatile write buffer after every N served requests
  /// (0 = never). Deterministic by construction — no RNG involved.
  std::uint64_t power_loss_every_requests = 0;
  /// Fixed controller restart cost charged per power-loss event.
  SimTime power_loss_downtime = 10 * kMillisecond;
  /// Recovery-replay cost per lost dirty page (mapping-journal scan and
  /// rebuild work is proportional to what was in flight).
  SimTime recovery_replay_per_page = 10 * kMicrosecond;

  /// True when any fault class can fire. Disabled plans are never wired,
  /// so the hot paths keep their fault-free behavior bit-for-bit.
  bool enabled() const {
    return program_fail_prob > 0.0 || read_fail_prob > 0.0 ||
           erase_fail_prob > 0.0 || power_loss_every_requests > 0;
  }

  /// Throws std::invalid_argument on out-of-range probabilities.
  void validate() const;

  /// Reads the standard CLI flags: --fault-seed, --fault-program-fail,
  /// --fault-read-fail, --fault-erase-fail, --fault-retries,
  /// --fault-spares, --fault-power-loss-every. Flags the parser does not
  /// carry keep their current value.
  void apply_cli(const ArgParser& args);
};

/// Everything the injector counted. Reconciled 1:1 against fault-class
/// TraceEvents and the report/CSV columns by the test suite.
struct FaultMetrics {
  bool enabled = false;
  std::uint64_t program_faults = 0;   // injected program-attempt failures
  std::uint64_t read_faults = 0;      // injected read failures (1 retry each)
  std::uint64_t erase_faults = 0;     // injected erase failures
  std::uint64_t blocks_retired = 0;   // blocks taken out of service
  std::uint64_t retires_refused = 0;  // retirement denied: no capacity slack
  std::uint64_t bad_block_marks = 0;  // blocks that exhausted their retries
  std::uint64_t degraded_planes = 0;  // planes running past the spare pool
  std::uint64_t power_loss_events = 0;
  std::uint64_t lost_dirty_pages = 0;  // dirty pages dropped by power loss
  SimTime recovery_time_total = 0;     // summed recovery-replay stalls

  void serialize(SnapshotWriter& w) const;
  void deserialize(SnapshotReader& r);
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  const FaultPlan& plan() const { return plan_; }

  /// Draws, in device-operation order, from the single stream. Each
  /// returns true when the fault fires and counts it. A zero probability
  /// never touches the RNG, so unrelated fault classes do not perturb
  /// each other's sequences when toggled off.
  bool inject_program_fault();
  bool inject_read_fault();
  bool inject_erase_fault();

  /// Chip backoff for the next retry after a failed program: the base
  /// doubles per consecutive failure on that chip (capped at 2^6x) and
  /// resets on success.
  SimTime program_backoff(std::uint32_t chip);
  void note_program_success(std::uint32_t chip);

  /// True when the power-loss schedule fires at this served-request count.
  bool power_loss_due(std::uint64_t served_requests) const {
    return plan_.power_loss_every_requests != 0 && served_requests != 0 &&
           served_requests % plan_.power_loss_every_requests == 0;
  }

  FaultMetrics& metrics() { return metrics_; }
  const FaultMetrics& metrics() const { return metrics_; }
  /// Clears the counters (RNG stream and chip state continue). Warmup.
  void reset_metrics();

  /// Checkpoint: RNG stream position, per-chip failure streaks, and the
  /// metrics. The plan itself is not stored — deserialize() restores into
  /// an injector constructed from the identical plan (the run's config
  /// fingerprint covers the plan, so a mismatch is refused upstream).
  void serialize(SnapshotWriter& w) const;
  void deserialize(SnapshotReader& r);

 private:
  FaultPlan plan_;
  Rng rng_;
  std::vector<std::uint32_t> chip_fail_streak_;
  FaultMetrics metrics_;
};

}  // namespace reqblock
