// Deterministic fault injection: plan + injector.
//
// A FaultPlan is the seeded, immutable description of every fault a run
// may experience: NAND program/read/erase failure probabilities, the
// bounded program-retry budget with per-chip backoff, the spare-block
// budget behind bad-block retirement, and the power-loss schedule. A
// FaultInjector is the per-run mutable state: one RNG stream (consulted in
// device-operation order, which is deterministic because each simulated
// run is single-threaded), per-chip consecutive-failure counters, and the
// fault accounting the report layer exposes.
//
// Determinism contract: with the same plan, a run produces bit-identical
// results at any experiment thread count (runs own private injectors);
// with every probability at zero and no power loss scheduled, the
// instrumented hot paths never consult the injector and behave exactly
// like a build without this subsystem.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/aging.h"
#include "fault/integrity.h"
#include "util/rng.h"
#include "util/types.h"

namespace reqblock {

class ArgParser;
class SnapshotReader;
class SnapshotWriter;

/// Seeded, immutable description of the faults a run may inject.
struct FaultPlan {
  std::uint64_t seed = 1;

  // --- NAND operation failure probabilities (per attempt) -------------
  double program_fail_prob = 0.0;
  double read_fail_prob = 0.0;
  double erase_fail_prob = 0.0;

  // --- Program retry ---------------------------------------------------
  /// Failed program attempts tolerated per page write before the block is
  /// declared bad; the attempt after the last retry always succeeds (on a
  /// fresh block), bounding the retry loop.
  std::uint32_t max_program_retries = 3;
  /// Base chip backoff after a failed program; doubles per consecutive
  /// failure on the same chip (capped), resets on success.
  SimTime retry_backoff = 50 * kMicrosecond;

  // --- Bad-block retirement --------------------------------------------
  /// Blocks reserved per plane at wiring time. Retiring a block consumes
  /// one spare; when the pool is empty the plane runs degraded.
  std::uint32_t spare_blocks_per_plane = 8;
  /// Extra chip time per program on a degraded plane (read-retry / soft
  /// ECC overhead of running past the spare budget).
  SimTime degraded_program_penalty = 200 * kMicrosecond;

  // --- Power loss -------------------------------------------------------
  /// Drop the volatile write buffer after every N served requests
  /// (0 = never). Deterministic by construction — no RNG involved.
  std::uint64_t power_loss_every_requests = 0;
  /// Fixed controller restart cost charged per power-loss event.
  SimTime power_loss_downtime = 10 * kMillisecond;
  /// Recovery-replay cost per lost dirty page (mapping-journal scan and
  /// rebuild work is proportional to what was in flight).
  SimTime recovery_replay_per_page = 10 * kMicrosecond;

  // --- Device aging -----------------------------------------------------
  /// Lifetime fault ramps and end-of-life behavior (src/fault/aging.h).
  /// Rides inside the fault plan so both share one seed, one injector,
  /// and one RNG stream.
  AgingPlan aging;

  // --- Data integrity ---------------------------------------------------
  /// Raw bit errors and the ECC/retry/parity/uncorrectable recovery
  /// hierarchy (src/fault/integrity.h). Rides inside the fault plan for
  /// the same reason aging does: one seed, one injector, one stream.
  IntegrityPlan integrity;

  /// True when any fault class can fire. Disabled plans are never wired,
  /// so the hot paths keep their fault-free behavior bit-for-bit.
  bool enabled() const {
    return program_fail_prob > 0.0 || read_fail_prob > 0.0 ||
           erase_fail_prob > 0.0 || power_loss_every_requests > 0 ||
           aging.enabled() || integrity.enabled();
  }

  /// Throws std::invalid_argument on out-of-range probabilities.
  void validate() const;

  /// Reads the standard CLI flags: --fault-seed, --fault-program-fail,
  /// --fault-read-fail, --fault-erase-fail, --fault-retries,
  /// --fault-spares, --fault-power-loss-every, plus every --aging-* flag
  /// (AgingPlan::apply_cli) and every --integrity-* flag
  /// (IntegrityPlan::apply_cli). Both drivers funnel through this one
  /// method, so trace_replay and run_matrix accept the identical flag
  /// set. Flags the parser does not carry keep their current value.
  void apply_cli(const ArgParser& args);
};

/// Everything the injector counted. Reconciled 1:1 against fault-class
/// TraceEvents and the report/CSV columns by the test suite.
struct FaultMetrics {
  bool enabled = false;
  std::uint64_t program_faults = 0;   // injected program-attempt failures
  std::uint64_t read_faults = 0;      // injected read failures (1 retry each)
  std::uint64_t erase_faults = 0;     // injected erase failures
  std::uint64_t blocks_retired = 0;   // blocks taken out of service
  std::uint64_t retires_refused = 0;  // retirement denied: no capacity slack
  std::uint64_t bad_block_marks = 0;  // blocks that exhausted their retries
  std::uint64_t degraded_planes = 0;  // planes running past the spare pool
  std::uint64_t power_loss_events = 0;
  std::uint64_t lost_dirty_pages = 0;  // dirty pages dropped by power loss
  SimTime recovery_time_total = 0;     // summed recovery-replay stalls

  // --- Aging (reconciled 1:1 against the aging EventKinds) -------------
  std::uint64_t read_disturb_migrations = 0;  // kReadDisturbMigrate events
  std::uint64_t read_disturb_pages_moved = 0;  // sum of their page args
  std::uint64_t retention_scrubs = 0;          // kRetentionScrub events
  std::uint64_t retention_pages_moved = 0;     // sum of their page args
  std::uint64_t wear_threshold_crossings = 0;  // kWearThreshold events
  std::uint64_t degraded_mode_enters = 0;      // kDegradedModeEnter events
  std::uint64_t degraded_mode_exits = 0;       // kDegradedModeExit events
  std::uint64_t degraded_write_sheds = 0;  // host writes shed in read-mostly

  // --- Data integrity (reconciled against the integrity EventKinds) ----
  IntegrityMetrics integrity;

  /// True when any aging mechanism left a trace in this run.
  bool any_aging() const {
    return read_disturb_migrations > 0 || retention_scrubs > 0 ||
           wear_threshold_crossings > 0 || degraded_mode_enters > 0 ||
           degraded_write_sheds > 0;
  }

  void serialize(SnapshotWriter& w) const;
  void deserialize(SnapshotReader& r);
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  const FaultPlan& plan() const { return plan_; }

  /// Ramp math for the plan's aging block (enabled() is false when the
  /// plan carries no aging).
  const AgingModel& aging() const { return aging_; }

  /// Threshold math for the plan's integrity block (enabled() is false
  /// when the plan carries no bit-error model).
  const IntegrityModel& integrity() const { return integrity_; }

  /// Draws, in device-operation order, from the single stream. Each
  /// returns true when the fault fires and counts it. `extra` is the
  /// age-dependent addition (AgingModel ramps) folded into the same
  /// single draw; the combined probability is clamped below 1 so the
  /// bounded retry/retire paths stay reachable. A zero combined
  /// probability never touches the RNG, so unrelated fault classes do
  /// not perturb each other's sequences when toggled off — and aged runs
  /// with zero base probabilities draw exactly one variate per
  /// instrumented operation, same as base-fault runs.
  bool inject_program_fault(double extra = 0.0);
  bool inject_read_fault(double extra = 0.0);
  bool inject_erase_fault(double extra = 0.0);

  /// Recovery cascade for one host page sense: exactly ONE draw from
  /// the single stream (the caller gates on integrity().enabled(), so
  /// disabled runs never reach the RNG), split by nested thresholds
  /// into clean / ECC-corrected / retry-corrected / parity-tier. Counts
  /// the ECC and retry tiers; the parity tier's split (rebuild vs
  /// uncorrectable) is counted by the FTL, which knows stripe state.
  IntegrityModel::Outcome integrity_read_outcome(std::uint32_t pe_cycles,
                                                 std::uint32_t reads,
                                                 SimTime age);

  /// Chip backoff for the next retry after a failed program: the base
  /// doubles per consecutive failure on that chip (capped at 2^6x) and
  /// resets on success.
  SimTime program_backoff(std::uint32_t chip);
  void note_program_success(std::uint32_t chip);

  /// True when the power-loss schedule fires at this served-request count.
  bool power_loss_due(std::uint64_t served_requests) const {
    return plan_.power_loss_every_requests != 0 && served_requests != 0 &&
           served_requests % plan_.power_loss_every_requests == 0;
  }

  FaultMetrics& metrics() { return metrics_; }
  const FaultMetrics& metrics() const { return metrics_; }
  /// Clears the counters (RNG stream and chip state continue). Warmup.
  void reset_metrics();

  /// Checkpoint: RNG stream position, per-chip failure streaks, and the
  /// metrics. The plan itself is not stored — deserialize() restores into
  /// an injector constructed from the identical plan (the run's config
  /// fingerprint covers the plan, so a mismatch is refused upstream).
  void serialize(SnapshotWriter& w) const;
  void deserialize(SnapshotReader& r);

 private:
  FaultPlan plan_;
  AgingModel aging_;
  IntegrityModel integrity_;
  Rng rng_;
  std::vector<std::uint32_t> chip_fail_streak_;
  FaultMetrics metrics_;
};

}  // namespace reqblock
