#include "fault/integrity.h"

#include <stdexcept>
#include <string>

#include "snapshot/snapshot.h"
#include "util/args.h"

namespace reqblock {

namespace {

void check_prob(double p, const char* name) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument(std::string(name) +
                                " must be in [0, 1), got " +
                                std::to_string(p));
  }
}

void check_fraction(double p, const char* name) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(std::string(name) +
                                " must be in [0, 1], got " +
                                std::to_string(p));
  }
}

void check_boost(double b, std::uint64_t anchor, const char* name,
                 const char* anchor_name) {
  if (b < 0.0) {
    throw std::invalid_argument(std::string(name) + " must be >= 0, got " +
                                std::to_string(b));
  }
  if (b > 0.0 && anchor == 0) {
    throw std::invalid_argument(std::string(name) + " needs " + anchor_name +
                                " > 0 to anchor the ramp");
  }
}

/// The clean branch of the cascade must stay reachable on any wear
/// state, mirroring the injector's combined-probability clamp.
constexpr double kMaxDetectProb = 0.999;

}  // namespace

void IntegrityPlan::validate() const {
  check_prob(rber_base, "rber_base");
  check_boost(rber_pe_boost, rber_pe_anchor, "rber_pe_boost",
              "rber_pe_anchor");
  check_boost(rber_read_boost, rber_read_anchor, "rber_read_boost",
              "rber_read_anchor");
  check_boost(rber_age_boost,
              static_cast<std::uint64_t>(rber_age_anchor > 0 ? 1 : 0),
              "rber_age_boost", "rber_age_anchor");
  if (rber_age_anchor < 0) {
    throw std::invalid_argument("rber_age_anchor must be >= 0");
  }
  check_fraction(ecc_escape, "ecc_escape");
  check_fraction(retry_relief, "retry_relief");
  if (retry_step_latency < 0) {
    throw std::invalid_argument("retry_step_latency must be >= 0");
  }
  check_fraction(scrub_rber_threshold, "scrub_rber_threshold");
  if (scrub_every_requests > 0) {
    if (!enabled()) {
      throw std::invalid_argument(
          "patrol scrub needs rber_base > 0 (nothing to predict without "
          "a bit-error model)");
    }
    if (scrub_time_budget <= 0) {
      throw std::invalid_argument(
          "patrol scrub needs scrub_time_budget > 0");
    }
    if (scrub_rber_threshold <= 0.0 && scrub_error_limit == 0) {
      throw std::invalid_argument(
          "patrol scrub needs scrub_rber_threshold > 0 or "
          "scrub_error_limit > 0 (a pass that can never refresh is a "
          "misconfiguration)");
    }
  }
}

void IntegrityPlan::apply_cli(const ArgParser& args) {
  rber_base = args.get_double_or("integrity-rber", rber_base);
  rber_pe_anchor = static_cast<std::uint32_t>(
      args.get_u64_or("integrity-rber-pe-anchor", rber_pe_anchor));
  rber_pe_boost =
      args.get_double_or("integrity-rber-pe-boost", rber_pe_boost);
  rber_read_anchor = static_cast<std::uint32_t>(
      args.get_u64_or("integrity-rber-read-anchor", rber_read_anchor));
  rber_read_boost =
      args.get_double_or("integrity-rber-read-boost", rber_read_boost);
  if (args.has("integrity-rber-age-anchor-ms")) {
    rber_age_anchor = static_cast<SimTime>(args.get_u64_strict(
                          "integrity-rber-age-anchor-ms", 0)) *
                      kMillisecond;
  }
  rber_age_boost =
      args.get_double_or("integrity-rber-age-boost", rber_age_boost);
  ecc_escape = args.get_double_or("integrity-ecc-escape", ecc_escape);
  read_retry_steps = static_cast<std::uint32_t>(
      args.get_u64_or("integrity-retry-steps", read_retry_steps));
  retry_relief = args.get_double_or("integrity-retry-relief", retry_relief);
  if (args.has("integrity-retry-step-us")) {
    retry_step_latency = static_cast<SimTime>(args.get_u64_strict(
                             "integrity-retry-step-us", 0)) *
                         kMicrosecond;
  }
  stripe_pages = static_cast<std::uint32_t>(
      args.get_u64_or("integrity-stripe-pages", stripe_pages));
  if (args.has("integrity-uncorrectable-shed")) uncorrectable_shed = true;
  scrub_every_requests =
      args.get_u64_or("integrity-scrub-every", scrub_every_requests);
  if (args.has("integrity-scrub-budget-us")) {
    scrub_time_budget = static_cast<SimTime>(args.get_u64_strict(
                            "integrity-scrub-budget-us", 0)) *
                        kMicrosecond;
  }
  scrub_rber_threshold =
      args.get_double_or("integrity-scrub-rber", scrub_rber_threshold);
  scrub_error_limit = static_cast<std::uint32_t>(
      args.get_u64_or("integrity-scrub-error-limit", scrub_error_limit));
}

IntegrityModel::IntegrityModel(const IntegrityPlan& plan) : plan_(plan) {
  plan_.validate();
  if (plan_.rber_pe_anchor > 0) {
    inv_pe_ = 1.0 / static_cast<double>(plan_.rber_pe_anchor);
  }
  if (plan_.rber_read_anchor > 0) {
    inv_read_ = 1.0 / static_cast<double>(plan_.rber_read_anchor);
  }
  if (plan_.rber_age_anchor > 0) {
    inv_age_ = 1.0 / static_cast<double>(plan_.rber_age_anchor);
  }
  relief_pow_.resize(plan_.read_retry_steps + 1);
  double pow = 1.0;
  for (std::uint32_t k = 0; k <= plan_.read_retry_steps; ++k) {
    relief_pow_[k] = pow;
    pow *= plan_.retry_relief;
  }
}

double IntegrityModel::detect_prob(std::uint32_t pe_cycles,
                                   std::uint32_t reads, SimTime age) const {
  if (plan_.rber_base <= 0.0) return 0.0;
  double boost = 0.0;
  if (plan_.rber_pe_boost > 0.0) {
    // Quadratic, uncapped past the anchor: the endurance curve keeps
    // climbing (the final clamp, not the ramp, bounds the probability).
    const double f = static_cast<double>(pe_cycles) * inv_pe_;
    boost += plan_.rber_pe_boost * f * f;
  }
  if (plan_.rber_read_boost > 0.0) {
    const double f = static_cast<double>(reads) * inv_read_;
    boost += plan_.rber_read_boost * (f < 1.0 ? f : 1.0);
  }
  if (plan_.rber_age_boost > 0.0 && age > 0) {
    const double f = static_cast<double>(age) * inv_age_;
    boost += plan_.rber_age_boost * (f < 1.0 ? f : 1.0);
  }
  const double p = plan_.rber_base * (1.0 + boost);
  return p < kMaxDetectProb ? p : kMaxDetectProb;
}

IntegrityModel::Outcome IntegrityModel::resolve(double u,
                                                double p_detect) const {
  Outcome out;
  if (u >= p_detect) return out;  // kClean
  // Nested slices: p_fail(k) = p_detect * ecc_escape * relief^k is the
  // probability mass still failing after k re-senses. u landing between
  // p_fail(k) and p_fail(k-1) means step k corrected it.
  const double p_fail_0 = p_detect * plan_.ecc_escape;
  if (u >= p_fail_0) {
    out.tier = Tier::kEccCorrected;
    return out;
  }
  for (std::uint32_t k = 1; k <= plan_.read_retry_steps; ++k) {
    if (u >= p_fail_0 * relief_pow_[k]) {
      out.tier = Tier::kRetryCorrected;
      out.retry_steps = k;
      return out;
    }
  }
  out.tier = Tier::kParity;
  out.retry_steps = plan_.read_retry_steps;
  return out;
}

void IntegrityMetrics::serialize(SnapshotWriter& w) const {
  w.tag("integrity_metrics");
  w.u64(ecc_attempts);
  w.u64(ecc_corrected);
  w.u64(ecc_escalated);
  w.u64(retry_corrected);
  w.u64(retry_escalated);
  w.u64(retry_steps_total);
  w.u64(parity_rebuilds);
  w.u64(parity_peer_reads);
  w.u64(uncorrectable);
  w.u64(host_reads_lost);
  w.u64(patrol_scrubs);
  w.u64(patrol_pages_moved);
  w.u64(patrol_pages_examined);
  w.i64(recovery_time_total);
}

void IntegrityMetrics::deserialize(SnapshotReader& r) {
  r.tag("integrity_metrics");
  ecc_attempts = r.u64();
  ecc_corrected = r.u64();
  ecc_escalated = r.u64();
  retry_corrected = r.u64();
  retry_escalated = r.u64();
  retry_steps_total = r.u64();
  parity_rebuilds = r.u64();
  parity_peer_reads = r.u64();
  uncorrectable = r.u64();
  host_reads_lost = r.u64();
  patrol_scrubs = r.u64();
  patrol_pages_moved = r.u64();
  patrol_pages_examined = r.u64();
  recovery_time_total = r.i64();
}

}  // namespace reqblock
