// End-to-end data integrity: raw bit errors and the recovery hierarchy.
//
// An IntegrityPlan is the seed-free, immutable description of how raw
// bit errors appear on page senses and what the device does about them.
// The raw-bit-error rate (RBER) is a pure function of the PR 9 wear
// state — P/E cycles, reads since last program, data age — so the model
// needs no randomness of its own: the FaultInjector folds the whole
// recovery cascade into ONE uniform draw per instrumented host read
// (nested thresholds along [0, 1)), keeping aged, error-riddled runs
// byte-identical at any experiment thread count.
//
// Recovery tiers, cheapest first:
//   1. fast ECC correct        — free, the engine rides the sense
//   2. read-retry              — up to N re-senses with escalating
//                                latency; each step shrinks the escape
//                                probability by `retry_relief`
//   3. plane-stripe parity     — RAIN: one parity page per
//                                `stripe_pages` data pages, maintained
//                                on program; a rebuild reads all
//                                stripe-size-1 peer pages through the
//                                normal chip timeline
//   4. uncorrectable           — the page's data is lost; the host sees
//                                a failed read (shed or error, per
//                                `uncorrectable_shed`)
//
// The patrol scrubber is prediction-only (it never draws or decodes):
// during idle windows it walks valid pages under a simulated-time
// budget and refreshes blocks whose predicted RBER nears the ECC limit
// or whose pages accumulated too many corrected errors. Its cursor,
// the stripe-parity map, and the per-page error counters serialize into
// snapshot format v6 and resume byte-identically.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace reqblock {

class ArgParser;
class SnapshotReader;
class SnapshotWriter;

/// Immutable description of the bit-error model and recovery hierarchy.
/// Folded into the config fingerprint (when enabled) so a checkpoint
/// taken under one integrity model cannot restore under another.
struct IntegrityPlan {
  // --- Raw bit-error model ---------------------------------------------
  /// Base probability that a page sense returns raw bit errors (before
  /// any wear boost). 0 disables the whole subsystem: no draws, no
  /// parity maintenance, no scrub — runs stay bit-identical to builds
  /// without it.
  double rber_base = 0.0;
  /// P/E cycles at which the wear boost contributes `rber_pe_boost`
  /// (quadratic in pe/anchor, uncapped past the anchor). 0 disables the
  /// endurance term.
  std::uint32_t rber_pe_anchor = 0;
  double rber_pe_boost = 0.0;
  /// Reads-since-program at which the disturb boost contributes
  /// `rber_read_boost` (linear, saturates at the anchor). 0 disables.
  std::uint32_t rber_read_anchor = 0;
  double rber_read_boost = 0.0;
  /// Data age at which the retention boost contributes `rber_age_boost`
  /// (linear, saturates at the anchor). 0 disables.
  SimTime rber_age_anchor = 0;
  double rber_age_boost = 0.0;

  // --- Tier 1: fast ECC ------------------------------------------------
  /// P(the fast ECC engine cannot correct | raw bit errors present).
  double ecc_escape = 0.05;

  // --- Tier 2: read retry ----------------------------------------------
  /// Re-sense attempts before escalating to the parity tier. 0 sends
  /// ECC escapes straight to parity.
  std::uint32_t read_retry_steps = 3;
  /// Escape-probability shrink factor per retry step (step k fails with
  /// ecc_escape * retry_relief^k, conditioned on raw errors).
  double retry_relief = 0.25;
  /// Chip time for the first re-sense; step k charges k * this
  /// (deeper retry voltages sense slower).
  SimTime retry_step_latency = 40 * kMicrosecond;

  // --- Tier 3: plane-stripe parity (RAIN) ------------------------------
  /// Data pages per parity stripe (consecutive physical pages of one
  /// block; the parity page lives in the modeled spare area, so the
  /// stripe *size* is stripe_pages + 1). 0 disables the parity tier:
  /// retry escapes become uncorrectable. Parity is programmed when the
  /// stripe's last data page programs, charging one real page program
  /// on the chip timeline.
  std::uint32_t stripe_pages = 0;

  // --- Tier 4: uncorrectable -------------------------------------------
  /// true: the failed host read is shed like a degraded-mode write
  /// (counted, excluded from the response histograms); false: it
  /// completes as a host-visible error after the full recovery cost and
  /// stays in the histograms.
  bool uncorrectable_shed = false;

  // --- Patrol scrub -----------------------------------------------------
  /// Attempt one scrub pass per this many served requests, during idle
  /// windows only (0 = no patrol).
  std::uint64_t scrub_every_requests = 0;
  /// Simulated chip time one pass may spend examining pages.
  SimTime scrub_time_budget = 2 * kMillisecond;
  /// Refresh a block once any valid page's predicted raw-bit-error
  /// probability reaches this (0 = trigger disabled).
  double scrub_rber_threshold = 0.0;
  /// Refresh a block once any page accumulated this many corrected
  /// errors (0 = trigger disabled).
  std::uint32_t scrub_error_limit = 0;

  /// True when the bit-error model can fire. Disabled plans are never
  /// consulted: error-free hot paths stay bit-identical to builds
  /// without this subsystem.
  bool enabled() const { return rber_base > 0.0; }

  /// Throws std::invalid_argument on out-of-range or inconsistent knobs.
  void validate() const;

  /// Reads the standard CLI flags: --integrity-rber,
  /// --integrity-rber-pe-anchor/-boost, --integrity-rber-read-anchor/
  /// -boost, --integrity-rber-age-anchor-ms/-boost,
  /// --integrity-ecc-escape, --integrity-retry-steps,
  /// --integrity-retry-relief, --integrity-retry-step-us,
  /// --integrity-stripe-pages, --integrity-uncorrectable-shed,
  /// --integrity-scrub-every, --integrity-scrub-budget-us,
  /// --integrity-scrub-rber, --integrity-scrub-error-limit. Flags the
  /// parser does not carry keep their current value.
  void apply_cli(const ArgParser& args);
};

/// Pure threshold math over an IntegrityPlan: maps wear state to the
/// detect probability and splits one uniform variate into a recovery
/// outcome. Stateless apart from precomputed reciprocals and relief
/// powers — nothing here touches an RNG or needs serialization.
class IntegrityModel {
 public:
  /// Where the cascade stopped. The parity tier's split (rebuild vs
  /// uncorrectable) depends on stripe state only the FTL knows, so the
  /// model stops at kParity.
  enum class Tier : std::uint8_t {
    kClean,           // no raw bit errors on this sense
    kEccCorrected,    // tier 1 fixed it, free
    kRetryCorrected,  // tier 2 fixed it after `retry_steps` re-senses
    kParity,          // retries exhausted; rebuild or lose the page
  };
  struct Outcome {
    Tier tier = Tier::kClean;
    /// Re-sense steps performed (for kRetryCorrected the last one
    /// succeeded; for kParity all plan.read_retry_steps failed).
    std::uint32_t retry_steps = 0;
  };

  IntegrityModel() = default;
  explicit IntegrityModel(const IntegrityPlan& plan);

  const IntegrityPlan& plan() const { return plan_; }
  bool enabled() const { return plan_.enabled(); }

  /// Predicted probability that a sense of a page with this wear state
  /// returns raw bit errors. Pure; also drives the patrol scrubber's
  /// refresh decisions. Clamped below 1 so the clean branch stays
  /// reachable.
  double detect_prob(std::uint32_t pe_cycles, std::uint32_t reads,
                     SimTime age) const;

  /// Splits one uniform draw u in [0, 1) into an outcome via nested
  /// thresholds: u >= p_detect is clean; below that, successively
  /// smaller slices escalate tier by tier. Monotone in u, so a fixed
  /// seed yields a fixed recovery mix.
  Outcome resolve(double u, double p_detect) const;

  /// Chip time of re-sense step `step` (1-based, escalating).
  SimTime retry_step_cost(std::uint32_t step) const {
    return plan_.retry_step_latency * static_cast<SimTime>(step);
  }

  /// Patrol decision: refresh a block whose worst page predicts
  /// `p_detect` and accumulated `page_errors` corrected errors.
  bool scrub_refresh_due(double p_detect, std::uint32_t page_errors) const {
    if (plan_.scrub_rber_threshold > 0.0 &&
        p_detect >= plan_.scrub_rber_threshold) {
      return true;
    }
    return plan_.scrub_error_limit > 0 &&
           page_errors >= plan_.scrub_error_limit;
  }

 private:
  IntegrityPlan plan_;
  double inv_pe_ = 0.0;
  double inv_read_ = 0.0;
  double inv_age_ = 0.0;
  /// retry_relief^k for k = 0..read_retry_steps.
  std::vector<double> relief_pow_;
};

/// Everything the recovery hierarchy counted. Reconciled 1:1 against
/// the integrity TraceEvents and the report/CSV columns by the test
/// suite. Conservation identities (tested):
///   ecc_attempts   == ecc_corrected   + ecc_escalated
///   ecc_escalated  == retry_corrected + retry_escalated
///   retry_escalated == parity_rebuilds + uncorrectable
///   uncorrectable  == host_reads_lost
///   parity_peer_reads == parity_rebuilds * stripe_pages
struct IntegrityMetrics {
  std::uint64_t ecc_attempts = 0;     // senses with raw bit errors
  std::uint64_t ecc_corrected = 0;    // kEccCorrect events
  std::uint64_t ecc_escalated = 0;    // escaped the fast engine
  std::uint64_t retry_corrected = 0;  // fixed within the retry budget
  std::uint64_t retry_escalated = 0;  // retries exhausted
  std::uint64_t retry_steps_total = 0;  // kReadRetryStep events
  std::uint64_t parity_rebuilds = 0;    // kParityRebuild events
  std::uint64_t parity_peer_reads = 0;  // sum of their peer-read args
  std::uint64_t uncorrectable = 0;      // kUncorrectable events
  std::uint64_t host_reads_lost = 0;    // reads reported lost to the host
  std::uint64_t patrol_scrubs = 0;      // kPatrolScrub events
  std::uint64_t patrol_pages_moved = 0;   // sum of their page args
  std::uint64_t patrol_pages_examined = 0;
  SimTime recovery_time_total = 0;  // retry + rebuild latency charged

  /// True when the run saw bit errors or patrol activity; gates the
  /// integrity CSV columns and summary so error-free exports keep the
  /// historical layout byte for byte.
  bool any() const {
    return ecc_attempts > 0 || patrol_scrubs > 0 ||
           patrol_pages_examined > 0;
  }

  void serialize(SnapshotWriter& w) const;
  void deserialize(SnapshotReader& r);
};

}  // namespace reqblock
