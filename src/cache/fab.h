// FAB (Flash-Aware Buffer, Jo et al., TCE'06).
//
// Groups cached pages by their logical flash block and always evicts the
// group holding the most pages (ignoring recency), which suits sequential
// media workloads. Included as an additional baseline from the paper's
// related-work discussion.
#pragma once

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "cache/write_buffer.h"

namespace reqblock {

class FabPolicy final : public WriteBufferPolicy {
 public:
  explicit FabPolicy(std::uint32_t pages_per_block);

  std::string name() const override { return "FAB"; }

  void on_hit(Lpn lpn, const IoRequest& req, bool is_write) override;
  void on_insert(Lpn lpn, const IoRequest& req, bool is_write) override;
  VictimBatch select_victim() override;
  std::size_t pages() const override { return total_pages_; }
  std::size_t metadata_bytes() const override {
    return groups_.size() * 24;  // block-granularity node
  }

  /// Cached page count of a logical block (tests).
  std::size_t group_size(Lpn block_id) const;

  void audit(AuditReport& report) const override;
  bool enumerate_pages(const std::function<void(Lpn)>& fn) const override;
  void serialize(SnapshotWriter& w) const override;
  void deserialize(SnapshotReader& r) override;

 private:
  struct Group {
    std::vector<Lpn> pages;
  };

  Lpn block_of(Lpn lpn) const { return lpn / pages_per_block_; }
  void reindex(Lpn block_id, std::size_t old_count, std::size_t new_count);

  std::uint32_t pages_per_block_;
  std::unordered_map<Lpn, Group> groups_;
  // count -> block ids with that many cached pages (ordered set for a
  // deterministic tie-break: the smallest block id is evicted first).
  std::map<std::size_t, std::set<Lpn>> by_count_;
  std::size_t total_pages_ = 0;
};

}  // namespace reqblock
