#include "cache/fab.h"

#include <algorithm>

#include "snapshot/snapshot.h"
#include "util/check.h"

namespace reqblock {

FabPolicy::FabPolicy(std::uint32_t pages_per_block)
    : pages_per_block_(pages_per_block) {
  REQB_CHECK_MSG(pages_per_block_ >= 1, "block must hold pages");
}

void FabPolicy::reindex(Lpn block_id, std::size_t old_count,
                        std::size_t new_count) {
  if (old_count != 0) {
    auto it = by_count_.find(old_count);
    REQB_DCHECK(it != by_count_.end());
    it->second.erase(block_id);
    if (it->second.empty()) by_count_.erase(it);
  }
  if (new_count != 0) by_count_[new_count].insert(block_id);
}

void FabPolicy::on_hit(Lpn lpn, const IoRequest&, bool) {
  // FAB considers only group size; hits change nothing.
  (void)lpn;
  REQB_DCHECK(groups_.contains(block_of(lpn)));
}

void FabPolicy::on_insert(Lpn lpn, const IoRequest&, bool) {
  Group& g = groups_[block_of(lpn)];
  reindex(block_of(lpn), g.pages.size(), g.pages.size() + 1);
  g.pages.push_back(lpn);
  ++total_pages_;
}

VictimBatch FabPolicy::select_victim() {
  VictimBatch batch;
  if (by_count_.empty()) return batch;
  const auto largest = std::prev(by_count_.end());
  REQB_DCHECK(!largest->second.empty());
  const Lpn block_id = *largest->second.begin();
  auto it = groups_.find(block_id);
  REQB_DCHECK(it != groups_.end());
  batch.pages = std::move(it->second.pages);
  reindex(block_id, batch.pages.size(), 0);
  groups_.erase(it);
  total_pages_ -= batch.pages.size();
  return batch;
}

std::size_t FabPolicy::group_size(Lpn block_id) const {
  const auto it = groups_.find(block_id);
  return it == groups_.end() ? 0 : it->second.pages.size();
}

void FabPolicy::audit(AuditReport& report) const {
  std::size_t pages = 0;
  for (const auto& [block_id, group] : groups_) {
    pages += group.pages.size();
    REQB_AUDIT_MSG(report, !group.pages.empty(),
                   "empty group for block " + std::to_string(block_id));
    for (const Lpn lpn : group.pages) {
      REQB_AUDIT_MSG(report, block_of(lpn) == block_id,
                     "page " + std::to_string(lpn) + " filed under block " +
                         std::to_string(block_id) + " but belongs to " +
                         std::to_string(block_of(lpn)));
    }
    const auto ct = by_count_.find(group.pages.size());
    REQB_AUDIT_MSG(report,
                   ct != by_count_.end() && ct->second.contains(block_id),
                   "block " + std::to_string(block_id) + " with " +
                       std::to_string(group.pages.size()) +
                       " pages missing from the size index");
  }
  REQB_AUDIT_MSG(report, pages == total_pages_,
                 "groups hold " + std::to_string(pages) +
                     " pages, counter says " + std::to_string(total_pages_));
  std::size_t indexed = 0;
  for (const auto& [count, blocks] : by_count_) {
    REQB_AUDIT_MSG(report, count >= 1 && !blocks.empty(),
                   "degenerate size-index class " + std::to_string(count));
    indexed += blocks.size();
    for (const Lpn block_id : blocks) {
      const auto it = groups_.find(block_id);
      REQB_AUDIT_MSG(report,
                     it != groups_.end() && it->second.pages.size() == count,
                     "size index lists block " + std::to_string(block_id) +
                         " at count " + std::to_string(count));
    }
  }
  REQB_AUDIT_MSG(report, indexed == groups_.size(),
                 "size index covers " + std::to_string(indexed) +
                     " blocks, group table holds " +
                     std::to_string(groups_.size()));
}

bool FabPolicy::enumerate_pages(const std::function<void(Lpn)>& fn) const {
  for (const auto& [block_id, group] : groups_) {
    for (const Lpn lpn : group.pages) fn(lpn);
  }
  return true;
}

void FabPolicy::serialize(SnapshotWriter& w) const {
  w.tag("fab");
  // Groups sorted by block id for byte determinism; the size index is
  // derived state and rebuilt on restore. Page order inside a group is
  // preserved (it is the flush order of the victim batch).
  std::vector<Lpn> ids;
  ids.reserve(groups_.size());
  for (const auto& [block_id, group] : groups_) ids.push_back(block_id);
  std::sort(ids.begin(), ids.end());
  w.u64(ids.size());
  for (const Lpn block_id : ids) {
    w.u64(block_id);
    const Group& g = groups_.at(block_id);
    w.u64(g.pages.size());
    for (const Lpn lpn : g.pages) w.u64(lpn);
  }
}

void FabPolicy::deserialize(SnapshotReader& r) {
  r.tag("fab");
  REQB_CHECK_MSG(groups_.empty(), "deserialize into a non-fresh FAB policy");
  const std::uint64_t group_count = r.u64();
  for (std::uint64_t gi = 0; gi < group_count; ++gi) {
    const Lpn block_id = r.u64();
    const std::uint64_t pages = r.count(8);
    if (pages == 0) throw SnapshotError("FAB snapshot has an empty group");
    auto [it, inserted] = groups_.try_emplace(block_id);
    if (!inserted) throw SnapshotError("FAB snapshot repeats a block");
    it->second.pages.reserve(pages);
    for (std::uint64_t i = 0; i < pages; ++i) {
      it->second.pages.push_back(r.u64());
    }
    reindex(block_id, 0, pages);
    total_pages_ += pages;
  }
}

}  // namespace reqblock
