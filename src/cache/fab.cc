#include "cache/fab.h"

#include "util/check.h"

namespace reqblock {

FabPolicy::FabPolicy(std::uint32_t pages_per_block)
    : pages_per_block_(pages_per_block) {
  REQB_CHECK_MSG(pages_per_block_ >= 1, "block must hold pages");
}

void FabPolicy::reindex(Lpn block_id, std::size_t old_count,
                        std::size_t new_count) {
  if (old_count != 0) {
    auto it = by_count_.find(old_count);
    REQB_DCHECK(it != by_count_.end());
    it->second.erase(block_id);
    if (it->second.empty()) by_count_.erase(it);
  }
  if (new_count != 0) by_count_[new_count].insert(block_id);
}

void FabPolicy::on_hit(Lpn lpn, const IoRequest&, bool) {
  // FAB considers only group size; hits change nothing.
  (void)lpn;
  REQB_DCHECK(groups_.contains(block_of(lpn)));
}

void FabPolicy::on_insert(Lpn lpn, const IoRequest&, bool) {
  Group& g = groups_[block_of(lpn)];
  reindex(block_of(lpn), g.pages.size(), g.pages.size() + 1);
  g.pages.push_back(lpn);
  ++total_pages_;
}

VictimBatch FabPolicy::select_victim() {
  VictimBatch batch;
  if (by_count_.empty()) return batch;
  const auto largest = std::prev(by_count_.end());
  REQB_DCHECK(!largest->second.empty());
  const Lpn block_id = *largest->second.begin();
  auto it = groups_.find(block_id);
  REQB_DCHECK(it != groups_.end());
  batch.pages = std::move(it->second.pages);
  reindex(block_id, batch.pages.size(), 0);
  groups_.erase(it);
  total_pages_ -= batch.pages.size();
  return batch;
}

std::size_t FabPolicy::group_size(Lpn block_id) const {
  const auto it = groups_.find(block_id);
  return it == groups_.end() ? 0 : it->second.pages.size();
}

void FabPolicy::audit(AuditReport& report) const {
  std::size_t pages = 0;
  for (const auto& [block_id, group] : groups_) {
    pages += group.pages.size();
    REQB_AUDIT_MSG(report, !group.pages.empty(),
                   "empty group for block " + std::to_string(block_id));
    for (const Lpn lpn : group.pages) {
      REQB_AUDIT_MSG(report, block_of(lpn) == block_id,
                     "page " + std::to_string(lpn) + " filed under block " +
                         std::to_string(block_id) + " but belongs to " +
                         std::to_string(block_of(lpn)));
    }
    const auto ct = by_count_.find(group.pages.size());
    REQB_AUDIT_MSG(report,
                   ct != by_count_.end() && ct->second.contains(block_id),
                   "block " + std::to_string(block_id) + " with " +
                       std::to_string(group.pages.size()) +
                       " pages missing from the size index");
  }
  REQB_AUDIT_MSG(report, pages == total_pages_,
                 "groups hold " + std::to_string(pages) +
                     " pages, counter says " + std::to_string(total_pages_));
  std::size_t indexed = 0;
  for (const auto& [count, blocks] : by_count_) {
    REQB_AUDIT_MSG(report, count >= 1 && !blocks.empty(),
                   "degenerate size-index class " + std::to_string(count));
    indexed += blocks.size();
    for (const Lpn block_id : blocks) {
      const auto it = groups_.find(block_id);
      REQB_AUDIT_MSG(report,
                     it != groups_.end() && it->second.pages.size() == count,
                     "size index lists block " + std::to_string(block_id) +
                         " at count " + std::to_string(count));
    }
  }
  REQB_AUDIT_MSG(report, indexed == groups_.size(),
                 "size index covers " + std::to_string(indexed) +
                     " blocks, group table holds " +
                     std::to_string(groups_.size()));
}

bool FabPolicy::enumerate_pages(const std::function<void(Lpn)>& fn) const {
  for (const auto& [block_id, group] : groups_) {
    for (const Lpn lpn : group.pages) fn(lpn);
  }
  return true;
}

}  // namespace reqblock
