#include "cache/fab.h"

#include "util/check.h"

namespace reqblock {

FabPolicy::FabPolicy(std::uint32_t pages_per_block)
    : pages_per_block_(pages_per_block) {
  REQB_CHECK_MSG(pages_per_block_ >= 1, "block must hold pages");
}

void FabPolicy::reindex(Lpn block_id, std::size_t old_count,
                        std::size_t new_count) {
  if (old_count != 0) {
    auto it = by_count_.find(old_count);
    REQB_DCHECK(it != by_count_.end());
    it->second.erase(block_id);
    if (it->second.empty()) by_count_.erase(it);
  }
  if (new_count != 0) by_count_[new_count].insert(block_id);
}

void FabPolicy::on_hit(Lpn lpn, const IoRequest&, bool) {
  // FAB considers only group size; hits change nothing.
  (void)lpn;
  REQB_DCHECK(groups_.contains(block_of(lpn)));
}

void FabPolicy::on_insert(Lpn lpn, const IoRequest&, bool) {
  Group& g = groups_[block_of(lpn)];
  reindex(block_of(lpn), g.pages.size(), g.pages.size() + 1);
  g.pages.push_back(lpn);
  ++total_pages_;
}

VictimBatch FabPolicy::select_victim() {
  VictimBatch batch;
  if (by_count_.empty()) return batch;
  const auto largest = std::prev(by_count_.end());
  REQB_DCHECK(!largest->second.empty());
  const Lpn block_id = *largest->second.begin();
  auto it = groups_.find(block_id);
  REQB_DCHECK(it != groups_.end());
  batch.pages = std::move(it->second.pages);
  reindex(block_id, batch.pages.size(), 0);
  groups_.erase(it);
  total_pages_ -= batch.pages.size();
  return batch;
}

std::size_t FabPolicy::group_size(Lpn block_id) const {
  const auto it = groups_.find(block_id);
  return it == groups_.end() ? 0 : it->second.pages.size();
}

}  // namespace reqblock
