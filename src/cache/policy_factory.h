// Construction of cache policies by name (CLI / experiment matrix glue).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/bplru.h"
#include "cache/vbbms.h"
#include "cache/write_buffer.h"
#include "core/req_block_policy.h"

namespace reqblock {

struct PolicyConfig {
  /// One of known_policy_names(): "lru", "fifo", "lfu", "cflru", "fab",
  /// "bplru", "vbbms", "reqblock".
  std::string name = "reqblock";
  std::uint64_t capacity_pages = 4096;
  /// Logical flash block size, used by block-granularity schemes.
  std::uint32_t pages_per_block = 64;

  ReqBlockOptions reqblock;
  VbbmsOptions vbbms;
  BplruOptions bplru;
  double cflru_window = 0.1;
};

/// Builds a policy; throws std::invalid_argument on an unknown name.
std::unique_ptr<WriteBufferPolicy> make_policy(const PolicyConfig& cfg);

/// All recognized policy names.
std::vector<std::string> known_policy_names();

/// The four policies compared throughout the paper's evaluation, in the
/// figures' order: LRU, BPLRU, VBBMS, Req-block.
std::vector<std::string> paper_policy_names();

}  // namespace reqblock
