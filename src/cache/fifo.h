// Page-granularity FIFO (insertion-order eviction; hits do not promote).
#pragma once

#include <unordered_map>

#include "cache/write_buffer.h"
#include "util/intrusive_list.h"

namespace reqblock {

class FifoPolicy final : public WriteBufferPolicy {
 public:
  std::string name() const override { return "FIFO"; }

  void on_hit(Lpn lpn, const IoRequest& req, bool is_write) override;
  void on_insert(Lpn lpn, const IoRequest& req, bool is_write) override;
  VictimBatch select_victim() override;
  std::size_t pages() const override { return nodes_.size(); }
  std::size_t metadata_bytes() const override { return nodes_.size() * 12; }
  void audit(AuditReport& report) const override;
  bool enumerate_pages(const std::function<void(Lpn)>& fn) const override;
  void serialize(SnapshotWriter& w) const override;
  void deserialize(SnapshotReader& r) override;

 private:
  struct Node {
    Lpn lpn = 0;
    ListHook hook;
  };

  std::unordered_map<Lpn, Node> nodes_;
  IntrusiveList<Node, &Node::hook> list_;
};

}  // namespace reqblock
