#include "cache/bplru.h"

#include <algorithm>

#include "snapshot/snapshot.h"
#include "util/check.h"

namespace reqblock {

BplruPolicy::BplruPolicy(std::uint32_t pages_per_block, BplruOptions options)
    : pages_per_block_(pages_per_block), options_(options) {
  REQB_CHECK_MSG(pages_per_block_ >= 1, "block must hold pages");
}

void BplruPolicy::on_hit(Lpn lpn, const IoRequest&, bool is_write) {
  const auto it = blocks_.find(block_of(lpn));
  REQB_CHECK_MSG(it != blocks_.end(), "BPLRU hit on untracked page");
  Block& b = it->second;
  if (is_write) {
    // A rewrite contradicts the "sequential data won't return" heuristic.
    b.sequential = false;
  }
  b.demoted = false;
  lru_.move_to_front(&b);
}

void BplruPolicy::on_insert(Lpn lpn, const IoRequest&, bool) {
  const Lpn id = block_of(lpn);
  auto [it, created] = blocks_.try_emplace(id);
  Block& b = it->second;
  if (created) {
    b.block_id = id;
    lru_.push_front(&b);
  }
  b.pages.push_back(lpn);
  ++total_pages_;

  const auto offset = static_cast<std::uint32_t>(lpn % pages_per_block_);
  if (b.sequential && offset == b.next_seq_offset) {
    ++b.next_seq_offset;
  } else {
    b.sequential = false;
  }
  if (b.sequential && b.next_seq_offset == pages_per_block_) {
    // LRU compensation: a fully sequentially written block goes straight
    // to the eviction end.
    b.demoted = true;
    lru_.move_to_back(&b);
  } else {
    b.demoted = false;
    lru_.move_to_front(&b);
  }
}

VictimBatch BplruPolicy::select_victim() {
  VictimBatch batch;
  Block* victim = lru_.pop_back();
  if (victim == nullptr) return batch;
  batch.pages = std::move(victim->pages);
  batch.colocate = true;
  if (options_.page_padding) {
    // Page padding: request the block's other pages; the manager reads the
    // ones that exist on flash and rewrites the whole block together.
    const Lpn first = victim->block_id * pages_per_block_;
    batch.padding_reads.reserve(pages_per_block_ - batch.pages.size());
    std::vector<bool> cached(pages_per_block_, false);
    for (const Lpn lpn : batch.pages) {
      cached[static_cast<std::size_t>(lpn - first)] = true;
    }
    for (std::uint32_t i = 0; i < pages_per_block_; ++i) {
      if (!cached[i]) batch.padding_reads.push_back(first + i);
    }
  }
  total_pages_ -= batch.pages.size();
  blocks_.erase(victim->block_id);
  return batch;
}

bool BplruPolicy::is_sequential_demoted(Lpn block_id) const {
  const auto it = blocks_.find(block_id);
  return it != blocks_.end() && it->second.demoted;
}

void BplruPolicy::audit(AuditReport& report) const {
  REQB_AUDIT(report, lru_.validate());
  REQB_AUDIT_MSG(report, lru_.size() == blocks_.size(),
                 "LRU lists " + std::to_string(lru_.size()) +
                     " blocks, table holds " + std::to_string(blocks_.size()));
  std::size_t pages = 0;
  for (const auto& [block_id, b] : blocks_) {
    pages += b.pages.size();
    REQB_AUDIT_MSG(report, b.block_id == block_id,
                   "table key " + std::to_string(block_id) +
                       " holds block id " + std::to_string(b.block_id));
    REQB_AUDIT_MSG(report, b.hook.linked(),
                   "block " + std::to_string(block_id) + " not on the LRU");
    REQB_AUDIT_MSG(report, !b.pages.empty(),
                   "empty block " + std::to_string(block_id));
    REQB_AUDIT_MSG(report,
                   b.pages.size() <= pages_per_block_ &&
                       b.next_seq_offset <= pages_per_block_,
                   "block " + std::to_string(block_id) + " holds " +
                       std::to_string(b.pages.size()) + " pages, seq offset " +
                       std::to_string(b.next_seq_offset));
    REQB_AUDIT_MSG(
        report,
        !b.demoted ||
            (b.sequential && b.next_seq_offset == pages_per_block_),
        "block " + std::to_string(block_id) +
            " demoted without a complete sequential write");
    std::vector<Lpn> sorted = b.pages;
    std::sort(sorted.begin(), sorted.end());
    REQB_AUDIT_MSG(report,
                   std::adjacent_find(sorted.begin(), sorted.end()) ==
                       sorted.end(),
                   "duplicate page in block " + std::to_string(block_id));
    for (const Lpn lpn : b.pages) {
      REQB_AUDIT_MSG(report, block_of(lpn) == block_id,
                     "page " + std::to_string(lpn) + " filed under block " +
                         std::to_string(block_id) + " but belongs to " +
                         std::to_string(block_of(lpn)));
    }
  }
  REQB_AUDIT_MSG(report, pages == total_pages_,
                 "blocks hold " + std::to_string(pages) +
                     " pages, counter says " + std::to_string(total_pages_));
}

bool BplruPolicy::enumerate_pages(const std::function<void(Lpn)>& fn) const {
  for (const auto& [block_id, b] : blocks_) {
    for (const Lpn lpn : b.pages) fn(lpn);
  }
  return true;
}

void BplruPolicy::serialize(SnapshotWriter& w) const {
  w.tag("bplru");
  w.u64(blocks_.size());
  lru_.for_each([&](const Block* b) {
    w.u64(b->block_id);
    w.u32(b->next_seq_offset);
    w.b(b->sequential);
    w.b(b->demoted);
    w.u64(b->pages.size());
    for (const Lpn lpn : b->pages) w.u64(lpn);
  });
}

void BplruPolicy::deserialize(SnapshotReader& r) {
  r.tag("bplru");
  REQB_CHECK_MSG(blocks_.empty(), "deserialize into a non-fresh BPLRU policy");
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const Lpn block_id = r.u64();
    auto [it, inserted] = blocks_.try_emplace(block_id);
    if (!inserted) throw SnapshotError("BPLRU snapshot repeats a block");
    Block& b = it->second;
    b.block_id = block_id;
    b.next_seq_offset = r.u32();
    b.sequential = r.b();
    b.demoted = r.b();
    const std::uint64_t pages = r.count(8);
    if (pages == 0) throw SnapshotError("BPLRU snapshot has an empty block");
    b.pages.reserve(pages);
    for (std::uint64_t p = 0; p < pages; ++p) b.pages.push_back(r.u64());
    total_pages_ += pages;
    lru_.push_back(&b);
  }
}

}  // namespace reqblock
