// Page-granularity LFU with LRU tie-breaking inside each frequency class
// (the classic O(1) frequency-list structure).
#pragma once

#include <list>
#include <map>
#include <unordered_map>

#include "cache/write_buffer.h"

namespace reqblock {

class LfuPolicy final : public WriteBufferPolicy {
 public:
  std::string name() const override { return "LFU"; }

  void on_hit(Lpn lpn, const IoRequest& req, bool is_write) override;
  void on_insert(Lpn lpn, const IoRequest& req, bool is_write) override;
  VictimBatch select_victim() override;
  std::size_t pages() const override { return index_.size(); }
  std::size_t metadata_bytes() const override {
    // Page node (12 B) plus a frequency counter (4 B) per page.
    return index_.size() * 16;
  }

  /// Access count of a cached page (0 if untracked) — used by tests.
  std::uint64_t frequency_of(Lpn lpn) const;

  void audit(AuditReport& report) const override;
  bool enumerate_pages(const std::function<void(Lpn)>& fn) const override;
  void serialize(SnapshotWriter& w) const override;
  void deserialize(SnapshotReader& r) override;

 private:
  struct Entry {
    std::uint64_t freq = 1;
    std::list<Lpn>::iterator pos;
  };

  void bump(Lpn lpn, Entry& e);

  // freq -> pages at that frequency, most recent at front.
  std::map<std::uint64_t, std::list<Lpn>> by_freq_;
  std::unordered_map<Lpn, Entry> index_;
};

}  // namespace reqblock
