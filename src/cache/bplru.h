// BPLRU (Block Padding LRU, Kim & Ahn, FAST'08).
//
// Manages the buffer as an LRU list of *logical flash blocks* (64 pages in
// Table 1). Three signature behaviours, all reproduced here:
//   * block-level LRU: any access to a page promotes its whole block;
//   * LRU compensation: a block written fully sequentially is moved to the
//     LRU tail (sequential data is unlikely to be rewritten soon);
//   * whole-block colocated flush: the victim block's pages are flushed to
//     one physical block (a single plane/chip — which is exactly why the
//     paper finds BPLRU underutilizes channel parallelism, §4.2.2).
//
// Page padding (reading the block's missing pages from flash and rewriting
// the full 64-page block) is available behind an option but defaults off:
// under a page-level FTL it is pure overhead — roughly 6x the program
// traffic — and the paper's SSDsim numbers (Figs. 8/11) are only consistent
// with a BPLRU that flushes the cached pages alone. bench_ablation_flush
// quantifies the difference.
#pragma once

#include <unordered_map>
#include <vector>

#include "cache/write_buffer.h"
#include "util/intrusive_list.h"

namespace reqblock {

struct BplruOptions {
  /// Read missing pages of the victim block and rewrite the whole block.
  bool page_padding = false;
  /// Account buffer space in whole block units (the original BPLRU RAM
  /// organization): a block with one cached page still occupies a full
  /// block-sized buffer slot. Off by default: the paper's BPLRU results
  /// (moderately below Req-block, Fig. 9) are only consistent with page
  /// accounting — unit allocation at their ~1.8 cached pages/block
  /// (Fig. 12) would shrink BPLRU's effective capacity to ~3% and is far
  /// harsher than anything they report. Kept as a study knob.
  bool block_unit_allocation = false;
};

class BplruPolicy final : public WriteBufferPolicy {
 public:
  explicit BplruPolicy(std::uint32_t pages_per_block,
                       BplruOptions options = {});

  std::string name() const override { return "BPLRU"; }

  void on_hit(Lpn lpn, const IoRequest& req, bool is_write) override;
  void on_insert(Lpn lpn, const IoRequest& req, bool is_write) override;
  VictimBatch select_victim() override;
  std::size_t pages() const override { return total_pages_; }
  std::size_t occupied_pages() const override {
    return options_.block_unit_allocation
               ? blocks_.size() * pages_per_block_
               : total_pages_;
  }
  std::size_t metadata_bytes() const override {
    return blocks_.size() * 24;  // paper Fig. 12: 24 B per block node
  }

  /// Whether a block is currently flagged as fully-sequentially written
  /// (and thus demoted to the LRU tail). Exposed for tests.
  bool is_sequential_demoted(Lpn block_id) const;

  void audit(AuditReport& report) const override;
  bool enumerate_pages(const std::function<void(Lpn)>& fn) const override;
  void serialize(SnapshotWriter& w) const override;
  void deserialize(SnapshotReader& r) override;

 private:
  struct Block {
    Lpn block_id = 0;
    std::vector<Lpn> pages;
    std::uint32_t next_seq_offset = 0;  // sequential-write detector
    bool sequential = true;
    bool demoted = false;
    ListHook hook;
  };

  Lpn block_of(Lpn lpn) const { return lpn / pages_per_block_; }

  std::uint32_t pages_per_block_;
  BplruOptions options_;
  std::unordered_map<Lpn, Block> blocks_;
  IntrusiveList<Block, &Block::hook> lru_;
  std::size_t total_pages_ = 0;
};

}  // namespace reqblock
