#include "cache/cache_manager.h"

#include <algorithm>

#include "snapshot/snapshot.h"
#include "util/check.h"

namespace reqblock {

CacheManager::CacheManager(const CacheOptions& options,
                           std::unique_ptr<WriteBufferPolicy> policy,
                           Ftl& ftl)
    : options_(options), policy_(std::move(policy)), ftl_(ftl) {
  REQB_CHECK_MSG(options_.capacity_pages >= 1, "cache must hold a page");
  REQB_CHECK(policy_ != nullptr);
  REQB_CHECK_MSG(options_.bg_flush_low_pages <= options_.bg_flush_high_pages,
                 "bg-flush low watermark above the high watermark");
  REQB_CHECK_MSG(options_.bg_flush_high_pages <= options_.capacity_pages,
                 "bg-flush high watermark exceeds cache capacity");
  const std::uint32_t buckets = options_.max_tracked_request_pages + 1;
  metrics_.inserts_by_req_size.assign(buckets, 0);
  metrics_.hits_by_req_size.assign(buckets, 0);
  metrics_.pages_retired_by_req_size.assign(buckets, 0);
  metrics_.pages_reused_by_req_size.assign(buckets, 0);
}

std::uint32_t CacheManager::size_bucket(std::uint32_t pages) const {
  // Bucket 0 aggregates requests larger than the tracked maximum.
  return pages <= options_.max_tracked_request_pages ? pages : 0;
}

std::uint64_t CacheManager::expected_version(Lpn lpn) const {
  const auto it = last_version_.find(lpn);
  return it == last_version_.end() ? 0 : it->second;
}

void CacheManager::sample_metadata() {
  if (++lookup_since_sample_ >= options_.metadata_sample_interval) {
    lookup_since_sample_ = 0;
    metrics_.metadata_bytes.record(
        static_cast<double>(policy_->metadata_bytes()));
  }
}

void CacheManager::retire_entry(Lpn /*lpn*/, const PageEntry& entry) {
  const std::uint32_t b = size_bucket(entry.insert_req_pages);
  ++metrics_.pages_retired_by_req_size[b];
  if (entry.reused) ++metrics_.pages_reused_by_req_size[b];
}

SimTime CacheManager::evict_once(SimTime now, bool& evicted,
                                 OpAttribution* span) {
  const ScopedTimer timer(profiler_, Profiler::Section::kEvictFlush);
  if (span != nullptr) *span = OpAttribution{};
  VictimBatch victim = policy_->select_victim();
  if (victim.empty()) {
    evicted = false;
    return now;
  }
  evicted = true;
  ++metrics_.evictions;

  std::vector<FlushPage> flush;
  flush.reserve(victim.pages.size() + victim.padding_reads.size());
  for (const Lpn lpn : victim.pages) {
    const auto it = pages_.find(lpn);
    REQB_CHECK_MSG(it != pages_.end(),
                   "policy evicted a page the cache does not hold");
    if (it->second.dirty) {
      flush.push_back(FlushPage{lpn, it->second.version});
      --dirty_pages_;
    }
    retire_entry(lpn, it->second);
    pages_.erase(it);
    ++metrics_.evicted_pages;
  }
  metrics_.flushed_pages += flush.size();  // dirty victim pages only

  // BPLRU page padding: read the block's missing (but previously written)
  // pages from flash and rewrite them together with the victim batch.
  // The padding reads all issue at `now` in parallel, so the one that
  // completes last is the padding phase's critical path.
  SimTime padding_done = now;
  OpAttribution padding_crit;
  OpAttribution read_attr;
  for (const Lpn lpn : victim.padding_reads) {
    if (!ftl_.is_mapped(lpn) || pages_.contains(lpn)) continue;
    const auto rr = ftl_.read_page(lpn, now, &read_attr);
    if (rr.complete > padding_done) {
      padding_done = rr.complete;
      padding_crit = read_attr;
    }
    if (rr.lost) {
      // The padding read came back uncorrectable: there is nothing to
      // rewrite. Roll the oracle back to what flash now holds (nothing)
      // and flush the block without this page; later reads of it verify
      // against the loss, not the vanished data.
      last_version_[lpn] = ftl_.version_of(lpn);
      continue;
    }
    flush.push_back(FlushPage{lpn, rr.version});
    ++metrics_.padding_pages;
  }

  // Fig. 10's "page number of each eviction" counts the pages the eviction
  // pushes to flash in one batch (victim pages + BPLRU padding).
  metrics_.eviction_batch.record(flush.size());

  OpAttribution batch_attr;
  const SimTime done = flush.empty()
                           ? now  // all-clean victim: space is free at once
                           : ftl_.program_batch(flush, padding_done,
                                                victim.colocate, &batch_attr);
  if (span != nullptr && !flush.empty()) {
    // [now, padding_done] carries the critical padding read's fault share;
    // [padding_done, done] carries the batch's critical-page GC/fault.
    // The sub-intervals tile [now, done], so the sums stay inside it.
    span->gc = batch_attr.gc;
    span->fault = padding_crit.fault + batch_attr.fault;
  }
  if (trace_ != nullptr) {
    const Lpn first = victim.pages.empty() ? 0 : victim.pages.front();
    trace_->emit({now, done - now, first, victim.pages.size(),
                  EventKind::kCacheEvict, kTrackManager, 0});
    if (!flush.empty()) {
      trace_->emit({now, done - now, first, flush.size(),
                    EventKind::kCacheFlush, kTrackManager, 0});
    }
  }
  return done;
}

void CacheManager::maybe_background_flush(SimTime now) {
  if (options_.bg_flush_high_pages == 0 ||
      dirty_pages_ < options_.bg_flush_high_pages) {
    return;
  }
  bool victimless = false;
  while (dirty_pages_ > options_.bg_flush_low_pages) {
    const std::uint64_t dirty_before = dirty_pages_;
    bool evicted = false;
    // The completion time is deliberately dropped: the flush occupies the
    // device timelines (future operations on the same chips queue behind
    // it) but no host request waits on it.
    evict_once(now, evicted);
    if (!evicted) {
      victimless = true;  // policy withheld everything (in-flight guards)
      break;
    }
    ++metrics_.bg_flush_batches;
    const std::uint64_t flushed = dirty_before - dirty_pages_;
    metrics_.bg_flush_pages += flushed;
    if (trace_ != nullptr) {
      trace_->emit({now, 0, 0, flushed, EventKind::kBgFlush,
                    kTrackManager, 0});
    }
  }
  run_audit("CacheManager (bg flush)", AuditLevel::kLight,
            [&](AuditReport& r) {
              REQB_AUDIT_MSG(
                  r, victimless ||
                         dirty_pages_ <= options_.bg_flush_low_pages,
                  "drain stopped at " + std::to_string(dirty_pages_) +
                      " dirty pages, above the low watermark " +
                      std::to_string(options_.bg_flush_low_pages));
            });
}

SimTime CacheManager::serve_write(const IoRequest& req, RequestBreakdown* bd) {
  // All of the request's page operations are issued at arrival; evictions
  // triggered by different pages proceed in parallel (striped across
  // channels by the FTL's round-robin allocator) and only the per-chip
  // FCFS timelines serialize them. A page that needed an eviction is
  // admitted when its victim's flush completes (synchronous eviction).
  //
  // Attribution follows the critical path: whichever page completes last
  // defines the request's latency, so `crit` holds that page's component
  // split of [issue, done]. Strict `>` keeps the first achiever on ties.
  const SimTime issue = req.arrival;
  SimTime done = issue;
  RequestBreakdown crit;
  for (std::uint32_t i = 0; i < req.pages; ++i) {
    const Lpn lpn = req.lpn + i;
    ++metrics_.page_lookups;
    sample_metadata();
    const std::uint64_t version = ++last_version_[lpn];

    const auto it = pages_.find(lpn);
    if (it != pages_.end()) {
      ++metrics_.page_hits;
      ++metrics_.write_hits;
      ++metrics_.hits_by_req_size[size_bucket(it->second.insert_req_pages)];
      it->second.version = version;
      if (!it->second.dirty) ++dirty_pages_;  // clean read-admit rewritten
      it->second.dirty = true;
      it->second.reused = true;
      if (trace_ != nullptr) {
        trace_->emit({issue, 0, lpn, 1, EventKind::kCacheHit,
                      kTrackManager, 0});
      }
      policy_->on_hit(lpn, req, /*is_write=*/true);
      const SimTime cand = issue + ftl_.config().cache_access_latency;
      if (cand > done) {
        done = cand;
        crit = RequestBreakdown{};
        crit[AttrComponent::kCacheLookup] = cand - issue;
      }
      continue;
    }
    if (trace_ != nullptr) {
      trace_->emit({issue, 0, lpn, 1, EventKind::kCacheMiss,
                    kTrackManager, 0});
    }

    // Miss: make room, then admit. Occupancy is measured at the policy's
    // allocation granularity (whole block units for BPLRU), so one insert
    // may need several evictions before space frees up.
    SimTime admit_at = issue;
    OpAttribution evict_crit;
    OpAttribution evict_span;
    bool space_ok = true;
    while (policy_->occupied_pages() >= options_.capacity_pages) {
      bool evicted = false;
      const SimTime space_at = evict_once(issue, evicted, &evict_span);
      if (!evicted) {
        // Nothing evictable (the in-flight request owns the whole cache):
        // bypass the buffer and program this page directly.
        space_ok = false;
        break;
      }
      // The evictions all issue at `issue` in parallel; the slowest one
      // gates admission and defines the stall's attribution.
      if (space_at > admit_at) {
        admit_at = space_at;
        evict_crit = evict_span;
      }
    }
    if (!space_ok) {
      ++metrics_.bypass_pages;
      if (trace_ != nullptr) {
        trace_->emit({issue, 0, lpn, 1, EventKind::kCacheBypass,
                      kTrackManager, 0});
      }
      OpAttribution prog;
      const SimTime cand = ftl_.program_page(lpn, version, issue, &prog);
      if (cand > done) {
        done = cand;
        crit = RequestBreakdown{};
        crit[AttrComponent::kGc] = prog.gc;
        crit[AttrComponent::kFaultRetry] = prog.fault;
        crit[AttrComponent::kFtlProgram] =
            (cand - issue) - prog.gc - prog.fault;
      }
      continue;
    }
    PageEntry entry;
    entry.version = version;
    entry.dirty = true;
    entry.insert_req_pages = req.pages;
    pages_.emplace(lpn, entry);
    ++dirty_pages_;
    ++metrics_.inserts;
    ++metrics_.inserts_by_req_size[size_bucket(req.pages)];
    if (trace_ != nullptr) {
      trace_->emit({admit_at, 0, lpn, 1, EventKind::kCacheInsert,
                    kTrackManager, 0});
    }
    policy_->on_insert(lpn, req, /*is_write=*/true);
    const SimTime cand = admit_at + ftl_.config().cache_access_latency;
    if (cand > done) {
      done = cand;
      crit = RequestBreakdown{};
      crit[AttrComponent::kGc] = evict_crit.gc;
      crit[AttrComponent::kFaultRetry] = evict_crit.fault;
      crit[AttrComponent::kEvictStall] =
          (admit_at - issue) - evict_crit.gc - evict_crit.fault;
      crit[AttrComponent::kCacheLookup] = cand - admit_at;
    }
  }
  REQB_DCHECK(pages_.size() <= options_.capacity_pages);
  if (bd != nullptr) {
    for (std::size_t c = 0; c < kAttrComponents; ++c) bd->ns[c] += crit.ns[c];
  }
  return done;
}

SimTime CacheManager::serve_read(const IoRequest& req, RequestBreakdown* bd,
                                 bool* data_lost) {
  // Attribution mirrors serve_write: the page completing last is the
  // request's critical path and `crit` holds its split of [arrival, done].
  SimTime done = req.arrival;
  RequestBreakdown crit;
  OpAttribution read_attr;
  OpAttribution evict_span;
  for (std::uint32_t i = 0; i < req.pages; ++i) {
    const Lpn lpn = req.lpn + i;
    ++metrics_.page_lookups;
    sample_metadata();

    const auto it = pages_.find(lpn);
    if (it != pages_.end()) {
      ++metrics_.page_hits;
      ++metrics_.read_hits;
      ++metrics_.hits_by_req_size[size_bucket(it->second.insert_req_pages)];
      it->second.reused = true;
      if (options_.verify_consistency) {
        REQB_CHECK_MSG(it->second.version == expected_version(lpn),
                       "cached version diverged from the write oracle");
      }
      if (trace_ != nullptr) {
        trace_->emit({req.arrival, 0, lpn, 0, EventKind::kCacheHit,
                      kTrackManager, 0});
      }
      policy_->on_hit(lpn, req, /*is_write=*/false);
      const SimTime cand = req.arrival + ftl_.config().cache_access_latency;
      if (cand > done) {
        done = cand;
        crit = RequestBreakdown{};
        crit[AttrComponent::kCacheLookup] = cand - req.arrival;
      }
      continue;
    }

    ++metrics_.read_misses;
    if (trace_ != nullptr) {
      trace_->emit({req.arrival, 0, lpn, 0, EventKind::kCacheMiss,
                    kTrackManager, 0});
    }
    const auto rr = ftl_.read_page(lpn, req.arrival, &read_attr);
    if (options_.verify_consistency) {
      // rr.version reports what the host asked for (captured before any
      // uncorrectable loss dropped the mapping), so the oracle check
      // holds even for reads that came back lost.
      REQB_CHECK_MSG(rr.version == expected_version(lpn),
                     "flash version diverged from the write oracle");
    }
    if (rr.lost) {
      // Recovery exhausted: the stored data is gone. Roll the oracle
      // back to what flash now holds (nothing) so later reads verify
      // against the loss instead of the vanished write, and surface the
      // failure to the session's shed-vs-error handling.
      last_version_[lpn] = ftl_.version_of(lpn);
      if (data_lost != nullptr) *data_lost = true;
    }
    SimTime cand = rr.complete;
    // The read-admission eviction chain runs sequentially after the flash
    // read, so GC/fault shares of its links sum within the chain interval.
    OpAttribution chain;
    bool chained = false;

    if (options_.cache_reads && rr.mapped && !rr.lost) {
      SimTime cursor = rr.complete;
      bool admitted = true;
      while (policy_->occupied_pages() >= options_.capacity_pages) {
        bool evicted = false;
        cursor = std::max(cursor, evict_once(cursor, evicted, &evict_span));
        if (!evicted) {
          admitted = false;
          break;
        }
        chain.gc += evict_span.gc;
        chain.fault += evict_span.fault;
      }
      if (admitted) {
        PageEntry entry;
        entry.version = rr.version;
        entry.dirty = false;
        entry.insert_req_pages = req.pages;
        pages_.emplace(lpn, entry);
        ++metrics_.inserts;
        ++metrics_.inserts_by_req_size[size_bucket(req.pages)];
        if (trace_ != nullptr) {
          trace_->emit({cursor, 0, lpn, 0, EventKind::kCacheInsert,
                        kTrackManager, 0});
        }
        policy_->on_insert(lpn, req, /*is_write=*/false);
        cand = cursor;
        chained = true;
      }
    }
    if (cand > done) {
      done = cand;
      crit = RequestBreakdown{};
      crit[AttrComponent::kGc] = read_attr.gc;
      crit[AttrComponent::kFaultRetry] = read_attr.fault;
      crit[AttrComponent::kFtlRead] =
          (rr.complete - req.arrival) - read_attr.gc - read_attr.fault;
      if (chained) {
        crit[AttrComponent::kGc] += chain.gc;
        crit[AttrComponent::kFaultRetry] += chain.fault;
        crit[AttrComponent::kEvictStall] =
            (cand - rr.complete) - chain.gc - chain.fault;
      }
    }
  }
  if (bd != nullptr) {
    for (std::size_t c = 0; c < kAttrComponents; ++c) bd->ns[c] += crit.ns[c];
  }
  return done;
}

SimTime CacheManager::serve(const IoRequest& req, RequestBreakdown* bd,
                            bool* data_lost) {
  REQB_CHECK_MSG(req.pages >= 1, "requests must touch at least one page");
  const ScopedTimer timer(profiler_, Profiler::Section::kCacheServe);
  if (trace_ != nullptr) trace_->set_time(req.arrival);
  policy_->begin_request(req);
  // Watermark drain first, with this request's eviction guards already in
  // place, so the background flusher never steals the blocks the request
  // is about to extend. Its flushes are not attributed to this request:
  // they only cost later requests time, through busier chip timelines
  // that surface in those requests' ftl/gc components.
  maybe_background_flush(req.arrival);
  const SimTime done = req.is_write() ? serve_write(req, bd)
                                      : serve_read(req, bd, data_lost);
  REQB_DCHECK(policy_->pages() == pages_.size());
  run_audit("CacheManager", AuditLevel::kLight,
            [this](AuditReport& r) { audit(r, audit_level()); });
  return done;
}

void CacheManager::audit(AuditReport& report, AuditLevel depth) const {
  // Counter cross-checks (cheap, every request at kLight).
  REQB_AUDIT_MSG(report, policy_->pages() == pages_.size(),
                 "policy tracks " + std::to_string(policy_->pages()) +
                     " pages, manager holds " + std::to_string(pages_.size()));
  REQB_AUDIT_MSG(report, policy_->occupied_pages() >= policy_->pages(),
                 "occupancy " + std::to_string(policy_->occupied_pages()) +
                     " below page count " + std::to_string(policy_->pages()));
  REQB_AUDIT_MSG(report, pages_.size() <= options_.capacity_pages,
                 "resident " + std::to_string(pages_.size()) +
                     " pages exceed capacity " +
                     std::to_string(options_.capacity_pages));
  REQB_AUDIT_MSG(report,
                 metrics_.read_hits + metrics_.write_hits ==
                     metrics_.page_hits,
                 "hit counters disagree");
  REQB_AUDIT(report, metrics_.page_hits <= metrics_.page_lookups);
  REQB_AUDIT_MSG(report, metrics_.flushed_pages <= metrics_.evicted_pages,
                 "flushed more dirty pages than were evicted");
  REQB_AUDIT_MSG(report, dirty_pages_ <= pages_.size(),
                 "dirty counter " + std::to_string(dirty_pages_) +
                     " exceeds residency " + std::to_string(pages_.size()));
  REQB_AUDIT_MSG(report, metrics_.bg_flush_pages <= metrics_.flushed_pages,
                 "background flushes exceed total flushes");
  REQB_AUDIT_MSG(report, metrics_.bg_flush_batches <= metrics_.evictions,
                 "background batches exceed total evictions");
  if (depth < AuditLevel::kFull) return;

  // The incrementally maintained dirty counter against a full recount:
  // every dirty transition (insert, rewrite of a clean page, eviction,
  // power-loss drop) must have been accounted.
  std::uint64_t dirty_recount = 0;
  for (const auto& [lpn, entry] : pages_) {
    if (entry.dirty) ++dirty_recount;
  }
  REQB_AUDIT_MSG(report, dirty_recount == dirty_pages_,
                 "dirty counter " + std::to_string(dirty_pages_) +
                     " disagrees with recount " +
                     std::to_string(dirty_recount));

  // Every resident entry must agree with the write oracle: a dirty page
  // holds the newest version outright; a clean page was admitted from
  // flash and every later write would have flipped it dirty in place.
  for (const auto& [lpn, entry] : pages_) {
    REQB_AUDIT_MSG(report, entry.version == expected_version(lpn),
                   "page " + std::to_string(lpn) + " cached at version " +
                       std::to_string(entry.version) + ", oracle says " +
                       std::to_string(expected_version(lpn)) +
                       (entry.dirty ? " (dirty)" : " (clean)"));
  }

  // Exact page-set equality: the policy tracks precisely the resident set
  // (so the dirty set, a subset of residency, is fully covered by
  // replacement bookkeeping).
  std::size_t policy_pages = 0;
  bool mismatch_logged = false;
  const bool enumerable = policy_->enumerate_pages([&](Lpn lpn) {
    ++policy_pages;
    if (!pages_.contains(lpn) && !mismatch_logged) {
      report.fail("policy page resident in manager",
                  "policy tracks page " + std::to_string(lpn) +
                      " the manager does not hold");
      mismatch_logged = true;  // one witness is enough; sizes close the set
    }
  });
  if (enumerable) {
    REQB_AUDIT_MSG(report, policy_pages == pages_.size(),
                   "policy enumerates " + std::to_string(policy_pages) +
                       " pages, manager holds " +
                       std::to_string(pages_.size()));
  }

  policy_->audit(report);
}

SimTime CacheManager::power_loss(SimTime at, FaultInjector& fault) {
  policy_->on_power_loss();  // release in-flight eviction guards
  std::uint64_t lost_dirty = 0;
  while (policy_->pages() > 0) {
    VictimBatch victim = policy_->select_victim();
    REQB_CHECK_MSG(!victim.empty(),
                   "policy withheld pages while draining after power loss");
    for (const Lpn lpn : victim.pages) {
      const auto it = pages_.find(lpn);
      REQB_CHECK_MSG(it != pages_.end(),
                     "policy evicted a page the cache does not hold");
      if (it->second.dirty) {
        // The only copy was volatile: the write is gone. Roll the oracle
        // back to the version flash still holds so post-recovery reads
        // verify against the surviving data instead of the lost write.
        ++lost_dirty;
        --dirty_pages_;
        last_version_[lpn] = ftl_.version_of(lpn);
      }
      retire_entry(lpn, it->second);
      pages_.erase(it);
    }
  }
  REQB_CHECK(pages_.empty());
  REQB_CHECK_MSG(dirty_pages_ == 0,
                 "dirty-page counter nonzero after a full drain");

  FaultMetrics& fm = fault.metrics();
  ++fm.power_loss_events;
  fm.lost_dirty_pages += lost_dirty;
  const SimTime recovery =
      fault.plan().power_loss_downtime +
      static_cast<SimTime>(lost_dirty) * fault.plan().recovery_replay_per_page;
  fm.recovery_time_total += recovery;
  if (trace_ != nullptr) {
    trace_->emit({at, recovery, 0, lost_dirty, EventKind::kPowerLoss,
                  kTrackManager, 0});
  }
  run_audit("CacheManager", AuditLevel::kLight,
            [this](AuditReport& r) { audit(r, audit_level()); });
  return at + recovery;
}

void CacheManager::finalize() {
  for (const auto& [lpn, entry] : pages_) retire_entry(lpn, entry);
}

void CacheManager::set_telemetry(TraceBuffer* trace, Profiler* profiler) {
  trace_ = trace != nullptr && trace->enabled(EventCategory::kCache)
               ? trace
               : nullptr;
  profiler_ = profiler;
  policy_->set_trace(trace);
}

void CacheManager::register_metrics(MetricsRegistry& registry) const {
  registry.register_counter("cache.page_lookups", &metrics_.page_lookups);
  registry.register_counter("cache.page_hits", &metrics_.page_hits);
  registry.register_counter("cache.read_hits", &metrics_.read_hits);
  registry.register_counter("cache.write_hits", &metrics_.write_hits);
  registry.register_counter("cache.inserts", &metrics_.inserts);
  registry.register_counter("cache.read_misses", &metrics_.read_misses);
  registry.register_counter("cache.bypass_pages", &metrics_.bypass_pages);
  registry.register_counter("cache.evictions", &metrics_.evictions);
  registry.register_counter("cache.evicted_pages", &metrics_.evicted_pages);
  registry.register_counter("cache.flushed_pages", &metrics_.flushed_pages);
  registry.register_gauge("cache.hit_ratio",
                          [this] { return metrics_.hit_ratio(); });
  registry.register_gauge("cache.resident_pages", [this] {
    return static_cast<double>(pages_.size());
  });
  registry.register_gauge("cache.dirty_pages", [this] {
    return static_cast<double>(dirty_pages_);
  });
  registry.register_counter("cache.bg_flush_batches",
                            &metrics_.bg_flush_batches);
  registry.register_counter("cache.bg_flush_pages",
                            &metrics_.bg_flush_pages);
  registry.register_gauge("cache.eviction_batch_mean", [this] {
    return metrics_.eviction_batch.mean();
  });
  policy_->register_metrics(registry);
}

void CacheManager::reset_metrics() {
  metrics_ = CacheMetrics{};
  const std::uint32_t buckets = options_.max_tracked_request_pages + 1;
  metrics_.inserts_by_req_size.assign(buckets, 0);
  metrics_.hits_by_req_size.assign(buckets, 0);
  metrics_.pages_retired_by_req_size.assign(buckets, 0);
  metrics_.pages_reused_by_req_size.assign(buckets, 0);
  lookup_since_sample_ = 0;
}

void CacheMetrics::serialize(SnapshotWriter& w) const {
  w.tag("cache_metrics");
  w.u64(page_lookups);
  w.u64(page_hits);
  w.u64(read_hits);
  w.u64(write_hits);
  w.u64(inserts);
  w.u64(read_misses);
  w.u64(bypass_pages);
  w.u64(evictions);
  w.u64(evicted_pages);
  w.u64(flushed_pages);
  w.u64(padding_pages);
  w.u64(bg_flush_batches);
  w.u64(bg_flush_pages);
  reqblock::serialize(w, eviction_batch);
  reqblock::serialize(w, metadata_bytes);
  w.vec_u64(inserts_by_req_size);
  w.vec_u64(hits_by_req_size);
  w.vec_u64(pages_retired_by_req_size);
  w.vec_u64(pages_reused_by_req_size);
}

void CacheMetrics::deserialize(SnapshotReader& r) {
  r.tag("cache_metrics");
  page_lookups = r.u64();
  page_hits = r.u64();
  read_hits = r.u64();
  write_hits = r.u64();
  inserts = r.u64();
  read_misses = r.u64();
  bypass_pages = r.u64();
  evictions = r.u64();
  evicted_pages = r.u64();
  flushed_pages = r.u64();
  padding_pages = r.u64();
  bg_flush_batches = r.u64();
  bg_flush_pages = r.u64();
  reqblock::deserialize(r, eviction_batch);
  reqblock::deserialize(r, metadata_bytes);
  inserts_by_req_size = r.vec_u64();
  hits_by_req_size = r.vec_u64();
  pages_retired_by_req_size = r.vec_u64();
  pages_reused_by_req_size = r.vec_u64();
}

void CacheManager::serialize(SnapshotWriter& w) const {
  w.tag("cache");
  // Page table and write oracle in sorted LPN order: the hash maps iterate
  // nondeterministically, but equal logical state must produce equal bytes.
  std::vector<Lpn> lpns;
  lpns.reserve(pages_.size());
  for (const auto& [lpn, entry] : pages_) lpns.push_back(lpn);
  std::sort(lpns.begin(), lpns.end());
  w.u64(lpns.size());
  for (const Lpn lpn : lpns) {
    const PageEntry& e = pages_.at(lpn);
    w.u64(lpn);
    w.u64(e.version);
    w.u32(e.insert_req_pages);
    w.b(e.dirty);
    w.b(e.reused);
  }
  lpns.clear();
  for (const auto& [lpn, version] : last_version_) lpns.push_back(lpn);
  std::sort(lpns.begin(), lpns.end());
  w.u64(lpns.size());
  for (const Lpn lpn : lpns) {
    w.u64(lpn);
    w.u64(last_version_.at(lpn));
  }
  metrics_.serialize(w);
  w.u64(lookup_since_sample_);
  policy_->serialize(w);
}

void CacheManager::deserialize(SnapshotReader& r) {
  r.tag("cache");
  REQB_CHECK_MSG(pages_.empty() && last_version_.empty(),
                 "deserialize into a non-fresh cache manager");
  const std::uint64_t resident = r.count(22);
  pages_.reserve(resident);
  for (std::uint64_t i = 0; i < resident; ++i) {
    const Lpn lpn = r.u64();
    PageEntry e;
    e.version = r.u64();
    e.insert_req_pages = r.u32();
    e.dirty = r.b();
    e.reused = r.b();
    if (!pages_.emplace(lpn, e).second) {
      throw SnapshotError("cache snapshot repeats a resident page");
    }
    if (e.dirty) ++dirty_pages_;  // derived, not stored
  }
  const std::uint64_t oracle = r.count(16);
  last_version_.reserve(oracle);
  for (std::uint64_t i = 0; i < oracle; ++i) {
    const Lpn lpn = r.u64();
    const std::uint64_t version = r.u64();
    if (!last_version_.emplace(lpn, version).second) {
      throw SnapshotError("cache snapshot repeats an oracle entry");
    }
  }
  metrics_.deserialize(r);
  lookup_since_sample_ = r.u64();
  policy_->deserialize(r);
}

}  // namespace reqblock
