// CacheManager: the DRAM data-cache layer between host requests and the FTL.
//
// Implements the main routine of the paper's Algorithm 1 generically over
// any WriteBufferPolicy:
//   * write page hit   -> update in place, policy->on_hit
//   * write page miss  -> evict (synchronously, batch-flushed via the FTL)
//                         until a slot is free, then admit, policy->on_insert
//   * read page hit    -> served from DRAM
//   * read page miss   -> flash read (optionally admitted when cache_reads)
//
// It also owns the instrumentation behind the paper's figures: hit/insert
// distributions by inserting-request size (Fig. 2), large-request reuse
// (Fig. 3), eviction batch sizes (Fig. 10), flush counts (Fig. 11) and the
// policy metadata footprint (Fig. 12).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/write_buffer.h"
#include "fault/fault.h"
#include "ssd/ftl.h"
#include "telemetry/attribution.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/profiler.h"
#include "telemetry/trace_buffer.h"
#include "trace/io_request.h"
#include "util/audit.h"
#include "util/histogram.h"
#include "util/stats.h"
#include "util/types.h"

namespace reqblock {

struct CacheOptions {
  std::uint64_t capacity_pages = 4096;  // 16 MB of 4 KB pages
  /// Admit read-miss data as clean pages (CFLRU extension; off in the
  /// paper's write-buffer setting).
  bool cache_reads = false;
  /// Verify the per-LPN version oracle on every read (cheap; keeps the
  /// whole stack honest). Disable only for profiling.
  bool verify_consistency = true;
  /// Sample policy metadata size every N page lookups for Fig. 12.
  std::uint32_t metadata_sample_interval = 1024;
  /// Cap of the per-request-size instrumentation arrays.
  std::uint32_t max_tracked_request_pages = 256;
  /// Watermark background flusher: when resident dirty pages reach
  /// bg_flush_high_pages at the start of a serve, victim batches are
  /// pre-drained (same select_victim/batch-flush path as synchronous
  /// eviction) until dirty occupancy is at or below bg_flush_low_pages, so
  /// a following burst admits into already-freed slots instead of stalling
  /// on its own flushes. 0 disables (the paper's reactive-only behavior).
  /// Derived from OverloadOptions watermark fractions by the session.
  std::uint64_t bg_flush_high_pages = 0;
  std::uint64_t bg_flush_low_pages = 0;
};

struct CacheMetrics {
  std::uint64_t page_lookups = 0;
  std::uint64_t page_hits = 0;
  std::uint64_t read_hits = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t inserts = 0;
  std::uint64_t read_misses = 0;   // pages read from flash
  std::uint64_t bypass_pages = 0;  // write pages sent straight to flash
  std::uint64_t evictions = 0;
  std::uint64_t evicted_pages = 0;
  std::uint64_t flushed_pages = 0;   // dirty pages programmed on eviction
  std::uint64_t padding_pages = 0;   // BPLRU padding reads+writes
  /// Watermark-driven background eviction batches (a subset of evictions)
  /// and the dirty pages they flushed (a subset of flushed_pages).
  std::uint64_t bg_flush_batches = 0;
  std::uint64_t bg_flush_pages = 0;

  /// Pages per eviction operation (Fig. 10).
  CountHistogram eviction_batch;
  /// Sampled policy metadata bytes (Fig. 12).
  RunningStat metadata_bytes;

  /// Fig. 2 instrumentation, indexed by the size (pages) of the write
  /// request that inserted the page; index 0 aggregates oversized requests.
  std::vector<std::uint64_t> inserts_by_req_size;
  std::vector<std::uint64_t> hits_by_req_size;
  /// Fig. 3 instrumentation: per inserting-request size, how many admitted
  /// pages were re-accessed at least once before leaving the cache.
  std::vector<std::uint64_t> pages_retired_by_req_size;
  std::vector<std::uint64_t> pages_reused_by_req_size;

  double hit_ratio() const {
    return page_lookups == 0 ? 0.0
                             : static_cast<double>(page_hits) /
                                   static_cast<double>(page_lookups);
  }

  void serialize(SnapshotWriter& w) const;
  void deserialize(SnapshotReader& r);
};

class CacheManager {
 public:
  CacheManager(const CacheOptions& options,
               std::unique_ptr<WriteBufferPolicy> policy, Ftl& ftl);

  /// Serves one host request starting at req.arrival; returns completion
  /// time. Must be called in nondecreasing arrival order. When `bd` is
  /// non-null, the critical-path components of the service interval
  /// [req.arrival, completion] are *added* into it (cache_lookup,
  /// evict_stall, ftl_read, ftl_program, gc, fault_retry), summing exactly
  /// to the interval length; timing is identical either way. `data_lost`
  /// (may be null) is set when any page read came back uncorrectable —
  /// the session decides whether the host sees a shed or an error.
  SimTime serve(const IoRequest& req, RequestBreakdown* bd = nullptr,
                bool* data_lost = nullptr);

  /// Injected power loss at `at`: drops the whole volatile buffer (clean
  /// and dirty pages alike), counts the dirty pages as lost into `fault`'s
  /// metrics, rolls the write oracle back to what flash actually holds for
  /// them (post-recovery reads then model the data loss consistently), and
  /// returns when the device is back up — `at` plus the fixed downtime plus
  /// the per-lost-page recovery replay.
  SimTime power_loss(SimTime at, FaultInjector& fault);

  /// Flushes instrumentation for pages still resident (call once at end of
  /// a run so Fig. 3 reuse stats cover the whole population).
  void finalize();

  const CacheMetrics& metrics() const { return metrics_; }
  const WriteBufferPolicy& policy() const { return *policy_; }
  WriteBufferPolicy& policy() { return *policy_; }
  std::uint64_t cached_pages() const { return pages_.size(); }
  std::uint64_t capacity_pages() const { return options_.capacity_pages; }
  /// Resident pages whose only up-to-date copy is in DRAM (the watermark
  /// flusher's control variable; maintained incrementally).
  std::uint64_t dirty_pages() const { return dirty_pages_; }

  /// Last written version per LPN (the consistency oracle).
  std::uint64_t expected_version(Lpn lpn) const;

  /// Clears the counters (cache contents stay). Used for warmup phases.
  void reset_metrics();

  /// Wires the run's telemetry into this layer and the policy. The trace
  /// pointer is only kept when cache events are enabled, so a disabled run
  /// pays one null check per would-be event. Either argument may be null.
  void set_telemetry(TraceBuffer* trace, Profiler* profiler);

  /// Registers the cache gauges (cache.* — hits, inserts, evictions,
  /// residency, hit ratio) plus the policy's own gauges for periodic
  /// snapshots. The registry must not outlive this manager.
  void register_metrics(MetricsRegistry& registry) const;

  /// Deep invariant audit of the cache layer at the given depth:
  ///   kLight — counter cross-checks (policy pages == resident pages,
  ///            occupancy ≥ residency, residency ≤ capacity, metric sums);
  ///   kFull  — additionally every resident entry against the write oracle,
  ///            exact policy↔manager page-set equality, and the policy's
  ///            own structural audit.
  /// serve() runs this automatically at the active audit level after every
  /// request (the mutation batch of this layer).
  void audit(AuditReport& report,
             AuditLevel depth = AuditLevel::kFull) const;

  /// Checkpoint: page table, write oracle, metrics, and the policy's own
  /// replacement state. deserialize() restores into a freshly constructed
  /// manager wired to the same policy type and FTL configuration.
  void serialize(SnapshotWriter& w) const;
  void deserialize(SnapshotReader& r);

 private:
  struct PageEntry {
    std::uint64_t version = 0;
    std::uint32_t insert_req_pages = 0;  // size of the inserting request
    bool dirty = false;
    bool reused = false;  // hit at least once since insertion
  };

  SimTime serve_write(const IoRequest& req, RequestBreakdown* bd);
  SimTime serve_read(const IoRequest& req, RequestBreakdown* bd,
                     bool* data_lost);
  /// Evicts one victim batch and flushes its dirty pages; returns the time
  /// the flush completes (== when the space is usable). Returns `now`
  /// unchanged and sets `evicted=false` when the policy had no victim.
  /// `span` (optional) receives the GC/fault share of [now, completion]:
  /// the critical padding read's fault plus the flush batch's critical
  /// page attribution, both provably inside the interval.
  SimTime evict_once(SimTime now, bool& evicted,
                     OpAttribution* span = nullptr);
  /// Watermark drain at the start of a serve: while dirty occupancy is at
  /// or above the high watermark, evict victim batches until it is at or
  /// below the low watermark (or the policy withholds everything). The
  /// flush latency lands on the device timelines but the current request
  /// does not wait for it — that is the whole point.
  void maybe_background_flush(SimTime now);
  void retire_entry(Lpn lpn, const PageEntry& entry);
  void sample_metadata();
  std::uint32_t size_bucket(std::uint32_t pages) const;

  CacheOptions options_;
  std::unique_ptr<WriteBufferPolicy> policy_;
  Ftl& ftl_;
  std::unordered_map<Lpn, PageEntry> pages_;
  std::unordered_map<Lpn, std::uint64_t> last_version_;
  std::uint64_t dirty_pages_ = 0;  // resident entries with dirty == true
  CacheMetrics metrics_;
  std::uint64_t lookup_since_sample_ = 0;
  TraceBuffer* trace_ = nullptr;  // non-null only when cache events are on
  Profiler* profiler_ = nullptr;
};

}  // namespace reqblock
