// VBBMS (Virtual-Block-Based buffer Management Strategy, Du et al., TCE'19).
//
// Splits the cache into a *random* region and a *sequential* region at a
// 3:2 capacity ratio (paper §4.1). Requests are classified by size;
// random-region pages are grouped into 3-page virtual blocks managed by
// LRU, sequential-region pages into 4-page virtual blocks managed by FIFO.
// Evictions flush a whole virtual block, striped across channels.
#pragma once

#include <unordered_map>

#include "cache/write_buffer.h"
#include "util/intrusive_list.h"

namespace reqblock {

struct VbbmsOptions {
  /// Fraction of capacity for the random region (paper: 3:2 split).
  double random_fraction = 0.6;
  std::uint32_t random_vb_pages = 3;
  std::uint32_t seq_vb_pages = 4;
  /// Requests with at least this many pages are "sequential".
  std::uint32_t seq_request_threshold = 5;
};

class VbbmsPolicy final : public WriteBufferPolicy {
 public:
  VbbmsPolicy(std::uint64_t capacity_pages, VbbmsOptions options = {});

  std::string name() const override { return "VBBMS"; }

  void on_hit(Lpn lpn, const IoRequest& req, bool is_write) override;
  void on_insert(Lpn lpn, const IoRequest& req, bool is_write) override;
  VictimBatch select_victim() override;
  std::size_t pages() const override {
    return random_pages_ + seq_pages_;
  }
  std::size_t metadata_bytes() const override {
    return (random_vbs_.size() + seq_vbs_.size()) * 24;  // virtual-block node
  }

  std::size_t random_pages() const { return random_pages_; }
  std::size_t seq_pages() const { return seq_pages_; }

  void audit(AuditReport& report) const override;
  bool enumerate_pages(const std::function<void(Lpn)>& fn) const override;
  void serialize(SnapshotWriter& w) const override;
  void deserialize(SnapshotReader& r) override;

 private:
  struct VBlock {
    std::uint64_t vb_id = 0;
    std::vector<Lpn> pages;
    ListHook hook;
  };

  VictimBatch evict_random();
  VictimBatch evict_sequential();

  VbbmsOptions opt_;
  std::uint64_t random_quota_;
  std::uint64_t seq_quota_;

  std::unordered_map<std::uint64_t, VBlock> random_vbs_;
  std::unordered_map<std::uint64_t, VBlock> seq_vbs_;
  IntrusiveList<VBlock, &VBlock::hook> random_lru_;
  IntrusiveList<VBlock, &VBlock::hook> seq_fifo_;
  std::unordered_map<Lpn, bool> page_is_seq_;
  std::size_t random_pages_ = 0;
  std::size_t seq_pages_ = 0;
};

}  // namespace reqblock
