#include "cache/vbbms.h"

#include <algorithm>

#include "util/check.h"

namespace reqblock {

VbbmsPolicy::VbbmsPolicy(std::uint64_t capacity_pages, VbbmsOptions options)
    : opt_(options) {
  REQB_CHECK_MSG(opt_.random_fraction > 0.0 && opt_.random_fraction < 1.0,
                 "random fraction must be in (0,1)");
  REQB_CHECK_MSG(opt_.random_vb_pages >= 1 && opt_.seq_vb_pages >= 1,
                 "virtual blocks must hold pages");
  random_quota_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(capacity_pages) *
                                    opt_.random_fraction));
  seq_quota_ = std::max<std::uint64_t>(1, capacity_pages - random_quota_);
}

void VbbmsPolicy::on_hit(Lpn lpn, const IoRequest&, bool) {
  const auto region = page_is_seq_.find(lpn);
  REQB_CHECK_MSG(region != page_is_seq_.end(), "VBBMS hit on untracked page");
  if (region->second) return;  // FIFO region: recency is ignored
  const std::uint64_t vb_id = lpn / opt_.random_vb_pages;
  const auto it = random_vbs_.find(vb_id);
  REQB_DCHECK(it != random_vbs_.end());
  random_lru_.move_to_front(&it->second);
}

void VbbmsPolicy::on_insert(Lpn lpn, const IoRequest& req, bool) {
  const bool seq = req.pages >= opt_.seq_request_threshold;
  page_is_seq_.emplace(lpn, seq);
  if (seq) {
    const std::uint64_t vb_id = lpn / opt_.seq_vb_pages;
    auto [it, created] = seq_vbs_.try_emplace(vb_id);
    if (created) {
      it->second.vb_id = vb_id;
      seq_fifo_.push_front(&it->second);
    }
    it->second.pages.push_back(lpn);
    ++seq_pages_;
  } else {
    const std::uint64_t vb_id = lpn / opt_.random_vb_pages;
    auto [it, created] = random_vbs_.try_emplace(vb_id);
    if (created) {
      it->second.vb_id = vb_id;
      random_lru_.push_front(&it->second);
    } else {
      random_lru_.move_to_front(&it->second);
    }
    it->second.pages.push_back(lpn);
    ++random_pages_;
  }
}

VictimBatch VbbmsPolicy::evict_random() {
  VictimBatch batch;
  VBlock* victim = random_lru_.pop_back();
  if (victim == nullptr) return batch;
  batch.pages = std::move(victim->pages);
  random_pages_ -= batch.pages.size();
  for (const Lpn lpn : batch.pages) page_is_seq_.erase(lpn);
  random_vbs_.erase(victim->vb_id);
  return batch;
}

VictimBatch VbbmsPolicy::evict_sequential() {
  VictimBatch batch;
  VBlock* victim = seq_fifo_.pop_back();  // FIFO: oldest out
  if (victim == nullptr) return batch;
  batch.pages = std::move(victim->pages);
  seq_pages_ -= batch.pages.size();
  for (const Lpn lpn : batch.pages) page_is_seq_.erase(lpn);
  seq_vbs_.erase(victim->vb_id);
  return batch;
}

VictimBatch VbbmsPolicy::select_victim() {
  // Evict from the region that overflows its share the most; fall back to
  // whichever region actually holds pages.
  const double random_load =
      static_cast<double>(random_pages_) / static_cast<double>(random_quota_);
  const double seq_load =
      static_cast<double>(seq_pages_) / static_cast<double>(seq_quota_);
  VictimBatch batch;
  if (seq_load >= random_load) {
    batch = evict_sequential();
    if (batch.empty()) batch = evict_random();
  } else {
    batch = evict_random();
    if (batch.empty()) batch = evict_sequential();
  }
  return batch;
}

}  // namespace reqblock
