#include "cache/vbbms.h"

#include <algorithm>

#include "snapshot/snapshot.h"
#include "util/check.h"

namespace reqblock {

VbbmsPolicy::VbbmsPolicy(std::uint64_t capacity_pages, VbbmsOptions options)
    : opt_(options) {
  REQB_CHECK_MSG(opt_.random_fraction > 0.0 && opt_.random_fraction < 1.0,
                 "random fraction must be in (0,1)");
  REQB_CHECK_MSG(opt_.random_vb_pages >= 1 && opt_.seq_vb_pages >= 1,
                 "virtual blocks must hold pages");
  random_quota_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(capacity_pages) *
                                    opt_.random_fraction));
  seq_quota_ = std::max<std::uint64_t>(1, capacity_pages - random_quota_);
}

void VbbmsPolicy::on_hit(Lpn lpn, const IoRequest&, bool) {
  const auto region = page_is_seq_.find(lpn);
  REQB_CHECK_MSG(region != page_is_seq_.end(), "VBBMS hit on untracked page");
  if (region->second) return;  // FIFO region: recency is ignored
  const std::uint64_t vb_id = lpn / opt_.random_vb_pages;
  const auto it = random_vbs_.find(vb_id);
  REQB_DCHECK(it != random_vbs_.end());
  random_lru_.move_to_front(&it->second);
}

void VbbmsPolicy::on_insert(Lpn lpn, const IoRequest& req, bool) {
  const bool seq = req.pages >= opt_.seq_request_threshold;
  page_is_seq_.emplace(lpn, seq);
  if (seq) {
    const std::uint64_t vb_id = lpn / opt_.seq_vb_pages;
    auto [it, created] = seq_vbs_.try_emplace(vb_id);
    if (created) {
      it->second.vb_id = vb_id;
      seq_fifo_.push_front(&it->second);
    }
    it->second.pages.push_back(lpn);
    ++seq_pages_;
  } else {
    const std::uint64_t vb_id = lpn / opt_.random_vb_pages;
    auto [it, created] = random_vbs_.try_emplace(vb_id);
    if (created) {
      it->second.vb_id = vb_id;
      random_lru_.push_front(&it->second);
    } else {
      random_lru_.move_to_front(&it->second);
    }
    it->second.pages.push_back(lpn);
    ++random_pages_;
  }
}

VictimBatch VbbmsPolicy::evict_random() {
  VictimBatch batch;
  VBlock* victim = random_lru_.pop_back();
  if (victim == nullptr) return batch;
  batch.pages = std::move(victim->pages);
  random_pages_ -= batch.pages.size();
  for (const Lpn lpn : batch.pages) page_is_seq_.erase(lpn);
  random_vbs_.erase(victim->vb_id);
  return batch;
}

VictimBatch VbbmsPolicy::evict_sequential() {
  VictimBatch batch;
  VBlock* victim = seq_fifo_.pop_back();  // FIFO: oldest out
  if (victim == nullptr) return batch;
  batch.pages = std::move(victim->pages);
  seq_pages_ -= batch.pages.size();
  for (const Lpn lpn : batch.pages) page_is_seq_.erase(lpn);
  seq_vbs_.erase(victim->vb_id);
  return batch;
}

void VbbmsPolicy::audit(AuditReport& report) const {
  REQB_AUDIT(report, random_lru_.validate());
  REQB_AUDIT(report, seq_fifo_.validate());
  REQB_AUDIT_MSG(report, random_lru_.size() == random_vbs_.size(),
                 "random LRU lists " + std::to_string(random_lru_.size()) +
                     " vblocks, table holds " +
                     std::to_string(random_vbs_.size()));
  REQB_AUDIT_MSG(report, seq_fifo_.size() == seq_vbs_.size(),
                 "sequential FIFO lists " + std::to_string(seq_fifo_.size()) +
                     " vblocks, table holds " +
                     std::to_string(seq_vbs_.size()));

  const auto walk = [&](const std::unordered_map<std::uint64_t, VBlock>& vbs,
                        std::uint32_t vb_pages, bool expect_seq,
                        const char* region) {
    std::size_t pages = 0;
    for (const auto& [vb_id, vb] : vbs) {
      pages += vb.pages.size();
      REQB_AUDIT_MSG(report, vb.vb_id == vb_id,
                     std::string(region) + " table key " +
                         std::to_string(vb_id) + " holds vblock id " +
                         std::to_string(vb.vb_id));
      REQB_AUDIT_MSG(report, vb.hook.linked(),
                     std::string(region) + " vblock " + std::to_string(vb_id) +
                         " not on its list");
      REQB_AUDIT_MSG(report, !vb.pages.empty(),
                     std::string(region) + " vblock " + std::to_string(vb_id) +
                         " is empty");
      for (const Lpn lpn : vb.pages) {
        REQB_AUDIT_MSG(report, lpn / vb_pages == vb_id,
                       "page " + std::to_string(lpn) + " filed under " +
                           region + " vblock " + std::to_string(vb_id));
        const auto it = page_is_seq_.find(lpn);
        REQB_AUDIT_MSG(report,
                       it != page_is_seq_.end() && it->second == expect_seq,
                       "page " + std::to_string(lpn) +
                           " region flag disagrees with its " + region +
                           " vblock");
      }
    }
    return pages;
  };
  const std::size_t random_seen =
      walk(random_vbs_, opt_.random_vb_pages, false, "random");
  const std::size_t seq_seen =
      walk(seq_vbs_, opt_.seq_vb_pages, true, "sequential");
  REQB_AUDIT_MSG(report, random_seen == random_pages_,
                 "random region holds " + std::to_string(random_seen) +
                     " pages, counter says " + std::to_string(random_pages_));
  REQB_AUDIT_MSG(report, seq_seen == seq_pages_,
                 "sequential region holds " + std::to_string(seq_seen) +
                     " pages, counter says " + std::to_string(seq_pages_));
  REQB_AUDIT_MSG(report,
                 page_is_seq_.size() == random_pages_ + seq_pages_,
                 "region map tracks " + std::to_string(page_is_seq_.size()) +
                     " pages, regions hold " +
                     std::to_string(random_pages_ + seq_pages_));
}

bool VbbmsPolicy::enumerate_pages(const std::function<void(Lpn)>& fn) const {
  for (const auto& [lpn, seq] : page_is_seq_) fn(lpn);
  return true;
}

void VbbmsPolicy::serialize(SnapshotWriter& w) const {
  w.tag("vbbms");
  // Each region is fully described by its list order plus per-vblock page
  // vectors; the page->region map and the page counters are derived.
  const auto write_region = [&w](const IntrusiveList<VBlock, &VBlock::hook>&
                                     list,
                                 std::size_t count) {
    w.u64(count);
    list.for_each([&](const VBlock* vb) {
      w.u64(vb->vb_id);
      w.u64(vb->pages.size());
      for (const Lpn lpn : vb->pages) w.u64(lpn);
    });
  };
  write_region(random_lru_, random_vbs_.size());
  write_region(seq_fifo_, seq_vbs_.size());
}

void VbbmsPolicy::deserialize(SnapshotReader& r) {
  r.tag("vbbms");
  REQB_CHECK_MSG(page_is_seq_.empty(),
                 "deserialize into a non-fresh VBBMS policy");
  const auto read_region =
      [this, &r](std::unordered_map<std::uint64_t, VBlock>& vbs,
                 IntrusiveList<VBlock, &VBlock::hook>& list, bool seq,
                 std::size_t& page_counter) {
        const std::uint64_t count = r.u64();
        for (std::uint64_t i = 0; i < count; ++i) {
          const std::uint64_t vb_id = r.u64();
          auto [it, inserted] = vbs.try_emplace(vb_id);
          if (!inserted) {
            throw SnapshotError("VBBMS snapshot repeats a virtual block");
          }
          VBlock& vb = it->second;
          vb.vb_id = vb_id;
          const std::uint64_t pages = r.count(8);
          if (pages == 0) {
            throw SnapshotError("VBBMS snapshot has an empty virtual block");
          }
          vb.pages.reserve(pages);
          for (std::uint64_t p = 0; p < pages; ++p) {
            const Lpn lpn = r.u64();
            vb.pages.push_back(lpn);
            if (!page_is_seq_.emplace(lpn, seq).second) {
              throw SnapshotError("VBBMS snapshot repeats a page");
            }
          }
          page_counter += pages;
          list.push_back(&vb);
        }
      };
  read_region(random_vbs_, random_lru_, false, random_pages_);
  read_region(seq_vbs_, seq_fifo_, true, seq_pages_);
}

VictimBatch VbbmsPolicy::select_victim() {
  // Evict from the region that overflows its share the most; fall back to
  // whichever region actually holds pages.
  const double random_load =
      static_cast<double>(random_pages_) / static_cast<double>(random_quota_);
  const double seq_load =
      static_cast<double>(seq_pages_) / static_cast<double>(seq_quota_);
  VictimBatch batch;
  if (seq_load >= random_load) {
    batch = evict_sequential();
    if (batch.empty()) batch = evict_random();
  } else {
    batch = evict_random();
    if (batch.empty()) batch = evict_sequential();
  }
  return batch;
}

}  // namespace reqblock
