// CFLRU (Clean-First LRU, Park et al., CASES'06).
//
// The LRU list's tail segment (the "clean-first region", a configurable
// fraction of capacity) prefers evicting *clean* pages, because they need
// no flash program on eviction. With read caching disabled (the paper's
// write-buffer configuration) every page is dirty and CFLRU degenerates to
// plain LRU — our tests pin both behaviours.
#pragma once

#include <unordered_map>

#include "cache/write_buffer.h"
#include "util/intrusive_list.h"

namespace reqblock {

class CflruPolicy final : public WriteBufferPolicy {
 public:
  /// window_fraction: portion of capacity forming the clean-first region.
  CflruPolicy(std::uint64_t capacity_pages, double window_fraction = 0.1);

  std::string name() const override { return "CFLRU"; }

  void on_hit(Lpn lpn, const IoRequest& req, bool is_write) override;
  void on_insert(Lpn lpn, const IoRequest& req, bool is_write) override;
  VictimBatch select_victim() override;
  std::size_t pages() const override { return nodes_.size(); }
  std::size_t metadata_bytes() const override {
    // Page node plus dirty flag.
    return nodes_.size() * 13;
  }
  void audit(AuditReport& report) const override;
  bool enumerate_pages(const std::function<void(Lpn)>& fn) const override;
  void serialize(SnapshotWriter& w) const override;
  void deserialize(SnapshotReader& r) override;

 private:
  struct Node {
    Lpn lpn = 0;
    bool dirty = false;
    ListHook hook;
  };

  std::unordered_map<Lpn, Node> nodes_;
  IntrusiveList<Node, &Node::hook> list_;
  std::size_t window_;
};

}  // namespace reqblock
