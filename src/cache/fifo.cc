#include "cache/fifo.h"

#include "util/check.h"

namespace reqblock {

void FifoPolicy::on_hit(Lpn lpn, const IoRequest&, bool) {
  REQB_CHECK_MSG(nodes_.contains(lpn), "FIFO hit on untracked page");
  // FIFO: recency does not matter.
}

void FifoPolicy::on_insert(Lpn lpn, const IoRequest&, bool) {
  auto [it, inserted] = nodes_.try_emplace(lpn);
  REQB_CHECK_MSG(inserted, "FIFO double insert");
  it->second.lpn = lpn;
  list_.push_front(&it->second);
}

VictimBatch FifoPolicy::select_victim() {
  VictimBatch batch;
  Node* tail = list_.pop_back();
  if (tail == nullptr) return batch;
  batch.pages.push_back(tail->lpn);
  nodes_.erase(tail->lpn);
  return batch;
}

}  // namespace reqblock
