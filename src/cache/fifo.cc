#include "cache/fifo.h"

#include "snapshot/snapshot.h"
#include "util/check.h"

namespace reqblock {

void FifoPolicy::on_hit(Lpn lpn, const IoRequest&, bool) {
  REQB_CHECK_MSG(nodes_.contains(lpn), "FIFO hit on untracked page");
  // FIFO: recency does not matter.
}

void FifoPolicy::on_insert(Lpn lpn, const IoRequest&, bool) {
  auto [it, inserted] = nodes_.try_emplace(lpn);
  REQB_CHECK_MSG(inserted, "FIFO double insert");
  it->second.lpn = lpn;
  list_.push_front(&it->second);
}

VictimBatch FifoPolicy::select_victim() {
  VictimBatch batch;
  Node* tail = list_.pop_back();
  if (tail == nullptr) return batch;
  batch.pages.push_back(tail->lpn);
  nodes_.erase(tail->lpn);
  return batch;
}

void FifoPolicy::audit(AuditReport& report) const {
  REQB_AUDIT(report, list_.validate());
  REQB_AUDIT_MSG(report, list_.size() == nodes_.size(),
                 "list holds " + std::to_string(list_.size()) +
                     " nodes, index holds " + std::to_string(nodes_.size()));
  for (const auto& [lpn, node] : nodes_) {
    REQB_AUDIT_MSG(report, node.lpn == lpn,
                   "index key " + std::to_string(lpn) + " maps to node lpn " +
                       std::to_string(node.lpn));
    REQB_AUDIT_MSG(report, node.hook.linked(),
                   "page " + std::to_string(lpn) + " indexed but unlinked");
  }
}

bool FifoPolicy::enumerate_pages(const std::function<void(Lpn)>& fn) const {
  for (const auto& [lpn, node] : nodes_) fn(lpn);
  return true;
}

void FifoPolicy::serialize(SnapshotWriter& w) const {
  w.tag("fifo");
  w.u64(nodes_.size());
  list_.for_each([&](const Node* n) { w.u64(n->lpn); });
}

void FifoPolicy::deserialize(SnapshotReader& r) {
  r.tag("fifo");
  REQB_CHECK_MSG(nodes_.empty(), "deserialize into a non-fresh FIFO policy");
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const Lpn lpn = r.u64();
    auto [it, inserted] = nodes_.try_emplace(lpn);
    if (!inserted) throw SnapshotError("FIFO snapshot repeats a page");
    it->second.lpn = lpn;
    list_.push_back(&it->second);
  }
}

}  // namespace reqblock
