#include "cache/policy_factory.h"

#include <stdexcept>

#include "cache/bplru.h"
#include "cache/cflru.h"
#include "cache/fab.h"
#include "cache/fifo.h"
#include "cache/lfu.h"
#include "cache/lru.h"
#include "util/strings.h"

namespace reqblock {

std::unique_ptr<WriteBufferPolicy> make_policy(const PolicyConfig& cfg) {
  const std::string& n = cfg.name;
  if (iequals(n, "lru")) return std::make_unique<LruPolicy>();
  if (iequals(n, "fifo")) return std::make_unique<FifoPolicy>();
  if (iequals(n, "lfu")) return std::make_unique<LfuPolicy>();
  if (iequals(n, "cflru")) {
    return std::make_unique<CflruPolicy>(cfg.capacity_pages,
                                         cfg.cflru_window);
  }
  if (iequals(n, "fab")) {
    return std::make_unique<FabPolicy>(cfg.pages_per_block);
  }
  if (iequals(n, "bplru")) {
    return std::make_unique<BplruPolicy>(cfg.pages_per_block, cfg.bplru);
  }
  if (iequals(n, "vbbms")) {
    return std::make_unique<VbbmsPolicy>(cfg.capacity_pages, cfg.vbbms);
  }
  if (iequals(n, "reqblock") || iequals(n, "req-block")) {
    return std::make_unique<ReqBlockPolicy>(cfg.reqblock);
  }
  throw std::invalid_argument("unknown cache policy: " + n);
}

std::vector<std::string> known_policy_names() {
  return {"lru", "fifo", "lfu", "cflru", "fab", "bplru", "vbbms", "reqblock"};
}

std::vector<std::string> paper_policy_names() {
  return {"lru", "bplru", "vbbms", "reqblock"};
}

}  // namespace reqblock
