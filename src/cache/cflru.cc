#include "cache/cflru.h"

#include <algorithm>

#include "snapshot/snapshot.h"
#include "util/check.h"

namespace reqblock {

CflruPolicy::CflruPolicy(std::uint64_t capacity_pages,
                         double window_fraction) {
  REQB_CHECK_MSG(window_fraction >= 0.0 && window_fraction <= 1.0,
                 "CFLRU window fraction must be in [0,1]");
  window_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(capacity_pages) *
                                  window_fraction));
}

void CflruPolicy::on_hit(Lpn lpn, const IoRequest&, bool is_write) {
  const auto it = nodes_.find(lpn);
  REQB_CHECK_MSG(it != nodes_.end(), "CFLRU hit on untracked page");
  if (is_write) it->second.dirty = true;
  list_.move_to_front(&it->second);
}

void CflruPolicy::on_insert(Lpn lpn, const IoRequest&, bool is_write) {
  auto [it, inserted] = nodes_.try_emplace(lpn);
  REQB_CHECK_MSG(inserted, "CFLRU double insert");
  it->second.lpn = lpn;
  it->second.dirty = is_write;
  list_.push_front(&it->second);
}

VictimBatch CflruPolicy::select_victim() {
  VictimBatch batch;
  if (list_.empty()) return batch;
  // Scan the clean-first window from the LRU end for a clean page.
  Node* candidate = list_.tail();
  std::size_t scanned = 0;
  for (Node* n = candidate; n != nullptr && scanned < window_;
       n = list_.prev(n), ++scanned) {
    if (!n->dirty) {
      candidate = n;
      break;
    }
  }
  // Fall back to the plain LRU tail when the window holds no clean page.
  if (candidate->dirty) candidate = list_.tail();
  batch.pages.push_back(candidate->lpn);
  list_.erase(candidate);
  nodes_.erase(candidate->lpn);
  return batch;
}

void CflruPolicy::audit(AuditReport& report) const {
  REQB_AUDIT(report, window_ >= 1);
  REQB_AUDIT(report, list_.validate());
  REQB_AUDIT_MSG(report, list_.size() == nodes_.size(),
                 "list holds " + std::to_string(list_.size()) +
                     " nodes, index holds " + std::to_string(nodes_.size()));
  for (const auto& [lpn, node] : nodes_) {
    REQB_AUDIT_MSG(report, node.lpn == lpn,
                   "index key " + std::to_string(lpn) + " maps to node lpn " +
                       std::to_string(node.lpn));
    REQB_AUDIT_MSG(report, node.hook.linked(),
                   "page " + std::to_string(lpn) + " indexed but unlinked");
  }
}

bool CflruPolicy::enumerate_pages(const std::function<void(Lpn)>& fn) const {
  for (const auto& [lpn, node] : nodes_) fn(lpn);
  return true;
}

void CflruPolicy::serialize(SnapshotWriter& w) const {
  w.tag("cflru");
  w.u64(nodes_.size());
  list_.for_each([&](const Node* n) {
    w.u64(n->lpn);
    w.b(n->dirty);
  });
}

void CflruPolicy::deserialize(SnapshotReader& r) {
  r.tag("cflru");
  REQB_CHECK_MSG(nodes_.empty(), "deserialize into a non-fresh CFLRU policy");
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const Lpn lpn = r.u64();
    const bool dirty = r.b();
    auto [it, inserted] = nodes_.try_emplace(lpn);
    if (!inserted) throw SnapshotError("CFLRU snapshot repeats a page");
    it->second.lpn = lpn;
    it->second.dirty = dirty;
    list_.push_back(&it->second);
  }
}

}  // namespace reqblock
