#include "cache/lfu.h"

#include "snapshot/snapshot.h"
#include "util/check.h"

namespace reqblock {

void LfuPolicy::bump(Lpn lpn, Entry& e) {
  auto list_it = by_freq_.find(e.freq);
  REQB_DCHECK(list_it != by_freq_.end());
  list_it->second.erase(e.pos);
  if (list_it->second.empty()) by_freq_.erase(list_it);
  ++e.freq;
  auto& next = by_freq_[e.freq];
  next.push_front(lpn);
  e.pos = next.begin();
}

void LfuPolicy::on_hit(Lpn lpn, const IoRequest&, bool) {
  const auto it = index_.find(lpn);
  REQB_CHECK_MSG(it != index_.end(), "LFU hit on untracked page");
  bump(lpn, it->second);
}

void LfuPolicy::on_insert(Lpn lpn, const IoRequest&, bool) {
  auto [it, inserted] = index_.try_emplace(lpn);
  REQB_CHECK_MSG(inserted, "LFU double insert");
  it->second.freq = 1;
  auto& lst = by_freq_[1];
  lst.push_front(lpn);
  it->second.pos = lst.begin();
}

VictimBatch LfuPolicy::select_victim() {
  VictimBatch batch;
  if (by_freq_.empty()) return batch;
  auto lowest = by_freq_.begin();
  REQB_DCHECK(!lowest->second.empty());
  const Lpn victim = lowest->second.back();  // least recent in class
  lowest->second.pop_back();
  if (lowest->second.empty()) by_freq_.erase(lowest);
  index_.erase(victim);
  batch.pages.push_back(victim);
  return batch;
}

std::uint64_t LfuPolicy::frequency_of(Lpn lpn) const {
  const auto it = index_.find(lpn);
  return it == index_.end() ? 0 : it->second.freq;
}

void LfuPolicy::audit(AuditReport& report) const {
  std::size_t listed = 0;
  for (const auto& [freq, lst] : by_freq_) {
    REQB_AUDIT_MSG(report, !lst.empty(),
                   "empty frequency class " + std::to_string(freq));
    REQB_AUDIT_MSG(report, freq >= 1,
                   "frequency class below 1: " + std::to_string(freq));
    for (const Lpn lpn : lst) {
      ++listed;
      const auto it = index_.find(lpn);
      if (!REQB_AUDIT_MSG(report, it != index_.end(),
                          "page " + std::to_string(lpn) +
                              " listed in class " + std::to_string(freq) +
                              " but not indexed")) {
        continue;
      }
      REQB_AUDIT_MSG(report, it->second.freq == freq,
                     "page " + std::to_string(lpn) + " listed in class " +
                         std::to_string(freq) + " but indexed at " +
                         std::to_string(it->second.freq));
      REQB_AUDIT_MSG(report, *it->second.pos == lpn,
                     "page " + std::to_string(lpn) +
                         " index iterator points at " +
                         std::to_string(*it->second.pos));
    }
  }
  REQB_AUDIT_MSG(report, listed == index_.size(),
                 "classes list " + std::to_string(listed) +
                     " pages, index holds " + std::to_string(index_.size()));
}

bool LfuPolicy::enumerate_pages(const std::function<void(Lpn)>& fn) const {
  for (const auto& [lpn, entry] : index_) fn(lpn);
  return true;
}

void LfuPolicy::serialize(SnapshotWriter& w) const {
  w.tag("lfu");
  // Frequency classes in ascending order, each front-to-back (MRU first):
  // the index iterators are rebuilt on restore.
  w.u64(by_freq_.size());
  for (const auto& [freq, lst] : by_freq_) {
    w.u64(freq);
    w.u64(lst.size());
    for (const Lpn lpn : lst) w.u64(lpn);
  }
}

void LfuPolicy::deserialize(SnapshotReader& r) {
  r.tag("lfu");
  REQB_CHECK_MSG(index_.empty(), "deserialize into a non-fresh LFU policy");
  const std::uint64_t classes = r.u64();
  for (std::uint64_t c = 0; c < classes; ++c) {
    const std::uint64_t freq = r.u64();
    const std::uint64_t pages = r.u64();
    if (freq < 1 || pages == 0) {
      throw SnapshotError("LFU snapshot has an invalid frequency class");
    }
    auto& lst = by_freq_[freq];
    for (std::uint64_t i = 0; i < pages; ++i) {
      const Lpn lpn = r.u64();
      lst.push_back(lpn);
      auto [it, inserted] = index_.try_emplace(lpn);
      if (!inserted) throw SnapshotError("LFU snapshot repeats a page");
      it->second.freq = freq;
      it->second.pos = std::prev(lst.end());
    }
  }
}

}  // namespace reqblock
