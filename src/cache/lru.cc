#include "cache/lru.h"

#include "snapshot/snapshot.h"
#include "util/check.h"

namespace reqblock {

void LruPolicy::on_hit(Lpn lpn, const IoRequest&, bool) {
  const auto it = nodes_.find(lpn);
  REQB_CHECK_MSG(it != nodes_.end(), "LRU hit on untracked page");
  list_.move_to_front(&it->second);
}

void LruPolicy::on_insert(Lpn lpn, const IoRequest&, bool) {
  auto [it, inserted] = nodes_.try_emplace(lpn);
  REQB_CHECK_MSG(inserted, "LRU double insert");
  it->second.lpn = lpn;
  list_.push_front(&it->second);
}

VictimBatch LruPolicy::select_victim() {
  VictimBatch batch;
  Node* tail = list_.pop_back();
  if (tail == nullptr) return batch;
  batch.pages.push_back(tail->lpn);
  nodes_.erase(tail->lpn);
  return batch;
}

void LruPolicy::audit(AuditReport& report) const {
  REQB_AUDIT(report, list_.validate());
  REQB_AUDIT_MSG(report, list_.size() == nodes_.size(),
                 "list holds " + std::to_string(list_.size()) +
                     " nodes, index holds " + std::to_string(nodes_.size()));
  for (const auto& [lpn, node] : nodes_) {
    REQB_AUDIT_MSG(report, node.lpn == lpn,
                   "index key " + std::to_string(lpn) + " maps to node lpn " +
                       std::to_string(node.lpn));
    REQB_AUDIT_MSG(report, node.hook.linked(),
                   "page " + std::to_string(lpn) + " indexed but unlinked");
  }
}

bool LruPolicy::enumerate_pages(const std::function<void(Lpn)>& fn) const {
  for (const auto& [lpn, node] : nodes_) fn(lpn);
  return true;
}

void LruPolicy::serialize(SnapshotWriter& w) const {
  w.tag("lru");
  w.u64(nodes_.size());
  // Head-to-tail list order is the entire replacement state.
  list_.for_each([&](const Node* n) { w.u64(n->lpn); });
}

void LruPolicy::deserialize(SnapshotReader& r) {
  r.tag("lru");
  REQB_CHECK_MSG(nodes_.empty(), "deserialize into a non-fresh LRU policy");
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const Lpn lpn = r.u64();
    auto [it, inserted] = nodes_.try_emplace(lpn);
    if (!inserted) throw SnapshotError("LRU snapshot repeats a page");
    it->second.lpn = lpn;
    list_.push_back(&it->second);
  }
}

}  // namespace reqblock
