#include "cache/lru.h"

#include "util/check.h"

namespace reqblock {

void LruPolicy::on_hit(Lpn lpn, const IoRequest&, bool) {
  const auto it = nodes_.find(lpn);
  REQB_CHECK_MSG(it != nodes_.end(), "LRU hit on untracked page");
  list_.move_to_front(&it->second);
}

void LruPolicy::on_insert(Lpn lpn, const IoRequest&, bool) {
  auto [it, inserted] = nodes_.try_emplace(lpn);
  REQB_CHECK_MSG(inserted, "LRU double insert");
  it->second.lpn = lpn;
  list_.push_front(&it->second);
}

VictimBatch LruPolicy::select_victim() {
  VictimBatch batch;
  Node* tail = list_.pop_back();
  if (tail == nullptr) return batch;
  batch.pages.push_back(tail->lpn);
  nodes_.erase(tail->lpn);
  return batch;
}

}  // namespace reqblock
