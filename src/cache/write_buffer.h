// Write-buffer policy interface.
//
// The DRAM data cache inside the SSD is primarily a *write buffer*: write
// data is admitted page by page, reads probe it, and when it fills the
// policy picks a victim batch to flush to flash (paper §3.4). A policy
// owns only replacement bookkeeping; page data state (dirty bits, versions)
// lives in the CacheManager, which also drives flush timing via the FTL.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "telemetry/metrics_registry.h"
#include "telemetry/trace_buffer.h"
#include "trace/io_request.h"
#include "util/audit.h"
#include "util/types.h"

namespace reqblock {

class SnapshotReader;
class SnapshotWriter;

/// What the policy wants evicted. All pages must currently be cached.
struct VictimBatch {
  std::vector<Lpn> pages;
  /// Flush the whole batch to a single plane derived from the first page's
  /// logical block (BPLRU whole-block semantics); otherwise the batch is
  /// striped round-robin across channels.
  bool colocate = false;
  /// Pages the policy wants read from flash and written back together with
  /// the batch (BPLRU page padding). The manager drops entries that were
  /// never written to the device.
  std::vector<Lpn> padding_reads;

  bool empty() const { return pages.empty(); }
};

class WriteBufferPolicy {
 public:
  virtual ~WriteBufferPolicy() = default;

  virtual std::string name() const = 0;

  /// Called once before a request's pages are processed. Policies that
  /// track per-request state (Req-block's insertion/split targets) hook
  /// this; the default is a no-op.
  virtual void begin_request(const IoRequest& req) { (void)req; }

  /// `lpn` is cached and was just accessed by `req`.
  virtual void on_hit(Lpn lpn, const IoRequest& req, bool is_write) = 0;

  /// `lpn` was just admitted (the manager guarantees free space).
  virtual void on_insert(Lpn lpn, const IoRequest& req, bool is_write) = 0;

  /// Chooses pages to evict. Returning an empty batch means "nothing is
  /// evictable right now" (e.g. everything belongs to the in-flight
  /// request); the manager then bypasses the cache for the pending page.
  virtual VictimBatch select_victim() = 0;

  /// The volatile buffer is about to be dropped (injected power loss).
  /// Policies that withhold victims for the in-flight request must release
  /// those guards so the manager can drain every page via select_victim.
  virtual void on_power_loss() {}

  /// Pages the policy currently tracks. Cross-checked against the
  /// manager's page table by the test suite.
  virtual std::size_t pages() const = 0;

  /// Buffer space occupied, in pages, at the policy's allocation
  /// granularity. Page-granularity schemes return pages(); BPLRU manages
  /// the RAM in whole block units (Kim & Ahn §3), so sparsely filled
  /// blocks waste buffer space — the "lower cache utilization" the paper
  /// blames for BPLRU's ts_0 regression. The manager evicts while this
  /// meets/exceeds capacity.
  virtual std::size_t occupied_pages() const { return pages(); }

  /// Replacement-metadata footprint, using the paper's Fig. 12 node-size
  /// model (LRU 12 B/page node, block schemes 24 B/block node, Req-block
  /// 32 B/request-block node).
  virtual std::size_t metadata_bytes() const = 0;

  /// Deep structural self-check: appends every violated invariant (list ↔
  /// index cross-consistency, counter sums, membership rules) to `report`.
  /// O(tracked pages); called between operations, never mid-mutation.
  virtual void audit(AuditReport& report) const { (void)report; }

  /// Calls `fn` once per tracked page, in unspecified order. Returns false
  /// when the policy cannot enumerate (the audit layer then skips the
  /// manager↔policy page-set comparison). Every built-in policy supports
  /// it.
  virtual bool enumerate_pages(const std::function<void(Lpn)>& fn) const {
    (void)fn;
    return false;
  }

  /// Checkpoint: writes the full replacement state (list orders, counters,
  /// in-flight guards) so that deserialize() on a *freshly constructed*
  /// policy with the same configuration continues bit-identically.
  /// Deterministic: equal logical state always produces equal bytes.
  virtual void serialize(SnapshotWriter& w) const = 0;

  /// Restores state written by serialize(). Must only be called on a fresh
  /// instance; throws SnapshotError on malformed input.
  virtual void deserialize(SnapshotReader& r) = 0;

  /// Hands the policy the run's event sink for structural events
  /// (Req-block split/promote/merge/batch-evict). The buffer outlives the
  /// policy; null or cache-gated-off means "emit nothing". Default: the
  /// policy has no structural events.
  virtual void set_trace(TraceBuffer* trace) { (void)trace; }

  /// Registers replacement-state gauges under "policy." (and, for list
  /// schemes, "list.") for periodic snapshots. The registry must not
  /// outlive the policy.
  virtual void register_metrics(MetricsRegistry& registry) const {
    registry.register_gauge("policy.pages",
                            [this] { return static_cast<double>(pages()); });
    registry.register_gauge("policy.occupied_pages", [this] {
      return static_cast<double>(occupied_pages());
    });
    registry.register_gauge("policy.metadata_bytes", [this] {
      return static_cast<double>(metadata_bytes());
    });
  }
};

}  // namespace reqblock
