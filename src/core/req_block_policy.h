// Req-block: request-granularity DRAM cache management (the paper's
// contribution, §3 and Algorithm 1).
//
// Semantics implemented:
//  * every write request's admitted pages form a request block at the head
//    of IRL (create_req_blk groups the pages of one request);
//  * hit on a block with <= delta pages (any list) -> promote to SRL head,
//    access_cnt++ (Fig. 5b);
//  * hit on a block with  > delta pages -> split: the hit page moves into a
//    new block at the DRL head (one per triggering request), remembering
//    its origin block (Fig. 5a);
//  * eviction compares Eq. 1 over the three list tails and evicts the
//    minimum; if the victim was split from a block still in IRL, both are
//    merged and evicted as one batch (downgraded merging, Fig. 6);
//  * the batch is flushed striped across channels (batch eviction, §3.3).
//
// Guards beyond the paper's pseudocode (all unit-tested):
//  * the block currently being assembled by the in-flight request is never
//    its own victim; if nothing else is evictable the policy reports "no
//    victim" and the cache manager bypasses the buffer for that page;
//  * tie-breaks on equal Freq are deterministic (IRL, then DRL, then SRL).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "cache/write_buffer.h"
#include "core/freq.h"
#include "core/req_block.h"
#include "util/intrusive_list.h"

namespace reqblock {

struct ReqBlockOptions {
  /// Size limit (pages) of blocks eligible for SRL — the paper's delta.
  /// The sensitivity study (Fig. 7) selects 5 as the default.
  std::uint32_t delta = 5;
  /// Downgraded merging of split blocks with their IRL origin (Fig. 6).
  bool merge_on_evict = true;
  /// Eq. 1 variant (ablation hook; the paper uses kFull).
  FreqMode freq_mode = FreqMode::kFull;
  /// Ablation: flush victim batches colocated (single channel) instead of
  /// striped across channels. The paper's §4.2.4 argues striping is what
  /// makes batch eviction pay off; this knob quantifies that.
  bool colocate_flush = false;
};

class ReqBlockPolicy final : public WriteBufferPolicy {
 public:
  explicit ReqBlockPolicy(ReqBlockOptions options = {});

  std::string name() const override { return "Req-block"; }

  void begin_request(const IoRequest& req) override;
  void on_hit(Lpn lpn, const IoRequest& req, bool is_write) override;
  void on_insert(Lpn lpn, const IoRequest& req, bool is_write) override;
  VictimBatch select_victim() override;
  /// Drops the in-flight request's eviction guards: after a power loss
  /// there is no request to protect and the manager must be able to drain
  /// the whole buffer.
  void on_power_loss() override {
    current_req_id_ = ~0ULL;
    guard_insert_block_ = 0;
    guard_split_block_ = 0;
  }
  std::size_t pages() const override { return page_to_block_.size(); }
  std::size_t metadata_bytes() const override {
    return blocks_.size() * 32;  // paper Fig. 12: 32 B per request block
  }

  /// Fig. 13 probe: pages/blocks currently on each list.
  ListOccupancy occupancy() const;

  /// Structural events (split/promote/merge/batch-evict) into the run's
  /// trace buffer, stamped with the buffer's current sim time.
  void set_trace(TraceBuffer* trace) override;

  /// Adds the per-list occupancy gauges (list.{irl,srl,drl}_{pages,blocks},
  /// policy.blocks) on top of the base policy gauges. One snapshot costs
  /// one list walk: the six gauges share a memo keyed on a mutation
  /// counter.
  void register_metrics(MetricsRegistry& registry) const override;

  const ReqBlockOptions& options() const { return opt_; }
  Tick now() const { return tick_; }

  // --- Introspection for tests -------------------------------------------
  /// The block holding a page (nullptr if the page is not cached).
  const ReqBlock* block_of(Lpn lpn) const;
  /// List tails as the eviction candidates the policy would compare.
  const ReqBlock* tail_of(ReqList list) const;
  std::size_t block_count() const { return blocks_.size(); }
  /// Whether the block is shielded from eviction because it belongs to the
  /// in-flight request. Exposed so the brute-force reference victim
  /// selector can replicate the eviction scan exactly.
  bool is_guarded(const ReqBlock* blk) const { return guarded(blk); }
  /// The neighbour of `blk` toward the head of its list (nullptr at the
  /// head) — the direction the victim scan walks past guarded blocks.
  const ReqBlock* prev_in_list(const ReqBlock* blk) const;

  // --- Invariant audit ---------------------------------------------------
  /// Deep structural self-check (paper §3 invariants): three-level list ↔
  /// page-table cross-consistency, Eq. 1 counter bounds, per-list
  /// δ-membership rules, split-origin backpointer integrity, and
  /// no-block-on-two-lists. O(blocks + pages).
  void audit(AuditReport& report) const override;
  bool enumerate_pages(const std::function<void(Lpn)>& fn) const override;
  void serialize(SnapshotWriter& w) const override;
  void deserialize(SnapshotReader& r) override;
  /// Full structural dump (lists, blocks, guards) attached to failed
  /// audits.
  std::string dump_structure() const;
  /// Test-only: mutable access to the block holding `lpn`, so negative
  /// tests can corrupt one field and assert the audit reports it.
  ReqBlock* mutable_block_for_tests(Lpn lpn);

 private:
  using BlockList = IntrusiveList<ReqBlock, &ReqBlock::hook>;

  BlockList& list_for(ReqList level);
  /// Detaches from its current list and pushes to the head of `level`.
  void move_block(ReqBlock* blk, ReqList level);
  /// Destroys a block (must already be unlinked and have no pages mapped).
  void destroy_block(ReqBlock* blk);
  /// Removes every page mapping of `blk` and unlinks + destroys it,
  /// appending its pages to `out`.
  void consume_block(ReqBlock* blk, std::vector<Lpn>& out);
  ReqBlock* create_block(std::uint64_t req_id, ReqList level,
                         std::uint64_t origin_id);
  /// True if the block must not be evicted right now (it is the in-flight
  /// request's insertion or split target).
  bool guarded(const ReqBlock* blk) const;

  ReqBlockOptions opt_;
  std::unordered_map<std::uint64_t, std::unique_ptr<ReqBlock>> blocks_;
  std::unordered_map<Lpn, ReqBlock*> page_to_block_;
  std::array<BlockList, 3> lists_;
  Tick tick_ = 0;
  std::uint64_t next_block_id_ = 1;
  /// Blocks belonging to the in-flight request (insertion / split target).
  std::uint64_t current_req_id_ = ~0ULL;
  std::uint64_t guard_insert_block_ = 0;
  std::uint64_t guard_split_block_ = 0;

  /// occupancy() memo for the snapshot gauges, keyed on mutations_.
  const ListOccupancy& occupancy_memo() const;
  TraceBuffer* trace_ = nullptr;  // non-null only when cache events are on
  std::uint64_t mutations_ = 0;   // bumped on every structural change
  mutable std::uint64_t occ_memo_mutations_ = ~0ULL;
  mutable ListOccupancy occ_memo_;
};

}  // namespace reqblock
